#include "src/db/database.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/db/errors.h"
#include "src/sim/check.h"
#include "src/sim/crc32.h"

namespace rldb {

using rlsim::Task;
using rlsim::TimePoint;
using rlstor::BlockStatus;
using rlstor::kSectorSize;

std::string ToString(DbStatus s) {
  switch (s) {
    case DbStatus::kOk:
      return "ok";
    case DbStatus::kNotFound:
      return "not-found";
    case DbStatus::kLockTimeout:
      return "lock-timeout";
    case DbStatus::kTxnNotActive:
      return "txn-not-active";
  }
  return "unknown";
}

namespace {

// Journal header page payload (after the 32-byte page header):
//   [u64 seq][u32 count][count * u64 page_id][serialised MetaContent sector]
constexpr size_t kJournalSeqOff = kPageHeaderBytes;
constexpr size_t kJournalCountOff = kJournalSeqOff + 8;
constexpr size_t kJournalIdsOff = kJournalCountOff + 4;

constexpr uint64_t kJournalHeaderPage = 0;

// Page-id entries that fit in one journal header page alongside the
// embedded metadata sector.
uint32_t JournalHeaderCapacity(uint32_t page_bytes) {
  return static_cast<uint32_t>(
      (page_bytes - kJournalIdsOff - rlstor::kSectorSize) / 8);
}

}  // namespace

Database::Database(rlsim::Simulator& sim, CpuContext& cpu,
                   rlstor::BlockDevice& data_dev,
                   rlstor::BlockDevice& log_dev, DbOptions options)
    : sim_(sim),
      cpu_(cpu),
      data_dev_(data_dev),
      log_dev_(log_dev),
      options_(std::move(options)) {
  RL_CHECK_MSG(options_.journal_pages >
                   options_.profile.checkpoint_dirty_pages,
               "journal must be able to hold a full checkpoint");
  RL_CHECK_MSG(options_.pool_pages > options_.profile.checkpoint_dirty_pages,
               "pool must be able to hold the dirty threshold");
  pool_ = std::make_unique<BufferPool>(sim_, data_dev_,
                                       options_.profile.page_bytes,
                                       options_.pool_pages);
  wal_ = std::make_unique<LogWriter>(sim_, log_dev_, options_.profile,
                                     options_.durability);
  locks_ = std::make_unique<LockManager>(sim_, options_.profile.lock_timeout);
  apply_mutex_ = std::make_unique<rlsim::SimMutex>(sim_);
  checkpoint_mutex_ = std::make_unique<rlsim::SimMutex>(sim_);
  checkpoint_done_ = std::make_unique<rlsim::WaitQueue>(sim_);

  // A checkpoint's dirty set must fit the journal region AND its header
  // page; commits throttle safely below that, and the automatic checkpoint
  // threshold sits below the throttle so the stall is normally never hit.
  const uint32_t capacity =
      std::min<uint32_t>(JournalHeaderCapacity(options_.profile.page_bytes),
                         options_.journal_pages - 1);
  dirty_throttle_pages_ = std::min(capacity - capacity / 8,
                                   options_.pool_pages * 3 / 4);
  RL_CHECK_MSG(options_.profile.checkpoint_dirty_pages < dirty_throttle_pages_,
               "checkpoint threshold must sit below the dirty throttle ("
                   << dirty_throttle_pages_ << " pages)");
}

Task<void> Database::ThrottleDirtyPages() {
  while (pool_->dirty_count() >= dirty_throttle_pages_) {
    if (closing_ || wal_->halted()) {
      // A halted WAL can never satisfy a checkpoint's Force(), so waiting
      // here would respawn failing checkpoints in a zero-time loop.
      throw EngineHalted();
    }
    MaybeScheduleCheckpoint();
    co_await checkpoint_done_->Wait();
  }
}

Database::~Database() = default;

Task<void> Database::Close() {
  closing_ = true;
  // Begin the WAL shutdown first: a pending checkpoint may be blocked inside
  // Force(), and the shutdown signal is what unwinds it. Then wake every
  // other place a client coroutine can be parked — lock queues and the
  // dirty-page throttle — so nothing still references this object (or gets
  // resumed into it by a stale timeout event) after we return.
  wal_->BeginShutdown();
  locks_->Shutdown();
  checkpoint_done_->NotifyAll();
  while (checkpoint_pending_) {
    co_await checkpoint_done_->Wait();
  }
  co_await wal_->Shutdown();
  // One settle tick: waiters woken above run before Close() returns.
  co_await sim_.Sleep(rlsim::Duration::Zero());
}

Task<std::unique_ptr<Database>> Database::Open(rlsim::Simulator& sim,
                                               CpuContext& cpu,
                                               rlstor::BlockDevice& data_dev,
                                               rlstor::BlockDevice& log_dev,
                                               DbOptions options) {
  std::unique_ptr<Database> db(
      // simlint: new-ok (private constructor; immediately owned)
      new Database(sim, cpu, data_dev, log_dev, std::move(options)));
  std::exception_ptr failure;
  try {
    co_await db->Recover();
  } catch (...) {
    failure = std::current_exception();
  }
  if (failure) {
    // Recovery died under us (power cut or device fault mid-open). The WAL
    // flusher task may still be parked inside a device request; destroying
    // the engine before it unwinds would leave it resuming into freed
    // memory. Signal shutdown and wait for it to exit, then propagate.
    co_await db->wal_->Shutdown();
    std::rethrow_exception(failure);
  }
  co_return db;
}

// --- Metadata & journal ------------------------------------------------------

Task<std::optional<MetaContent>> Database::ReadBestMeta() {
  std::optional<MetaContent> best;
  for (uint64_t sector : {kMetaSectorA, kMetaSectorB}) {
    std::vector<uint8_t> buf(kSectorSize);
    const BlockStatus st = co_await data_dev_.Read(sector, buf);
    if (st != BlockStatus::kOk) {
      continue;
    }
    const auto meta = DeserializeMeta(buf);
    if (meta.has_value() && (!best.has_value() || meta->seq > best->seq)) {
      best = meta;
    }
  }
  co_return best;
}

Task<void> Database::WriteMeta(const MetaContent& meta) {
  const std::vector<uint8_t> buf = SerializeMeta(meta);
  const uint64_t sector = (meta.seq % 2 == 0) ? kMetaSectorA : kMetaSectorB;
  const BlockStatus st = co_await data_dev_.Write(sector, buf, /*fua=*/true);
  if (st != BlockStatus::kOk) {
    throw EngineHalted();
  }
}

Task<bool> Database::ReplayJournalIfNewer(uint64_t meta_seq,
                                          MetaContent* meta_out) {
  const uint32_t page_bytes = options_.profile.page_bytes;
  std::vector<uint8_t> header(page_bytes);
  const bool ok = co_await pool_->ReadPageDirect(kJournalHeaderPage, header);
  if (!ok || !PageValid(header, kJournalHeaderPage)) {
    co_return false;
  }
  if (ReadPageHeader(header).type != PageType::kJournalHeader) {
    co_return false;
  }
  const uint64_t jseq = LoadScalar<uint64_t>(header, kJournalSeqOff);
  if (jseq <= meta_seq) {
    co_return false;  // journal is from a completed (or older) checkpoint
  }
  const uint32_t count = LoadScalar<uint32_t>(header, kJournalCountOff);
  RL_CHECK(kJournalIdsOff + count * 8ull + kSectorSize <= page_bytes);

  // The checkpoint committed but its in-place writes may be incomplete:
  // copy every journaled page image into place.
  std::vector<uint8_t> image(page_bytes);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t page_id =
        LoadScalar<uint64_t>(header, kJournalIdsOff + i * 8ull);
    const uint64_t slot = 1 + i;
    const bool read_ok = co_await pool_->ReadPageDirect(slot, image);
    if (!read_ok) {
      // Device died mid-recovery (power cut or disk fault during replay):
      // machine death, not corruption. The journal is untouched, so the
      // next recovery attempt replays it from the start.
      throw EngineHalted();
    }
    RL_CHECK_MSG(PageValid(image, page_id),
                 "journal slot " << slot << " corrupt for page " << page_id);
    const bool write_ok =
        co_await pool_->WritePageDirect(page_id, image, /*fua=*/false);
    if (!write_ok) {
      throw EngineHalted();
    }
    stats_.repaired_from_journal.Add();
  }
  co_await data_dev_.Flush();

  // The journal header embeds the metadata of the committed checkpoint.
  const auto meta = DeserializeMeta(std::span<const uint8_t>(
      header.data() + kJournalIdsOff + count * 8ull, kSectorSize));
  RL_CHECK_MSG(meta.has_value(), "journal meta corrupt");
  *meta_out = *meta;
  // Persist it into the regular slots so the next open is clean.
  co_await WriteMeta(*meta_out);
  co_return true;
}

// --- Recovery ----------------------------------------------------------------

Task<void> Database::FormatFresh() {
  meta_ = MetaContent{};
  meta_.seq = 1;
  meta_.root_page = 0;
  meta_.next_free_page = options_.journal_pages;  // data pages follow journal
  meta_.replay_block = 0;
  meta_.replay_lsn = 1;
  meta_.page_bytes = options_.profile.page_bytes;
  co_await WriteMeta(meta_);
  co_await data_dev_.Flush();
  root_ = 0;
  next_free_page_ = meta_.next_free_page;
  wal_->ResumeAt(/*next_block=*/0, /*next_lsn=*/1);
}

Task<void> Database::Recover() {
  tree_ = std::make_unique<BTree>(*pool_, options_.profile.value_bytes,
                                  &next_free_page_);
  auto meta = co_await ReadBestMeta();
  MetaContent journal_meta;
  if (co_await ReplayJournalIfNewer(meta.has_value() ? meta->seq : 0,
                                    &journal_meta)) {
    meta = journal_meta;
  }
  if (!meta.has_value()) {
    co_await FormatFresh();
    co_return;
  }
  RL_CHECK_MSG(meta->page_bytes == options_.profile.page_bytes,
               "page size mismatch: on-disk " << meta->page_bytes
                                              << ", profile "
                                              << options_.profile.page_bytes);
  meta_ = *meta;
  root_ = meta_.root_page;
  next_free_page_ = meta_.next_free_page;

  // Replay the committed suffix of the WAL. kPrepare records whose txn has
  // neither a commit nor an abort record are in doubt: their write-sets are
  // rebuilt (not applied) and held under locks until the 2PC coordinator's
  // decision arrives (presumed abort when it never does).
  const LogScanResult scan =
      co_await ScanLog(log_dev_, options_.profile, meta_.replay_block);
  std::unordered_set<uint64_t> committed;
  std::unordered_set<uint64_t> aborted;
  std::map<uint64_t, uint64_t> prepared;  // txn id -> global id
  uint64_t max_txn_id = 0;
  for (const LogRecord& rec : scan.records) {
    max_txn_id = std::max(max_txn_id, rec.txn_id);
    switch (rec.type) {
      case LogRecordType::kCommit:
        committed.insert(rec.txn_id);
        break;
      case LogRecordType::kAbort:
        aborted.insert(rec.txn_id);
        break;
      case LogRecordType::kPrepare:
        prepared.emplace(rec.txn_id, rec.key);
        break;
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        break;
    }
  }
  std::map<uint64_t, Txn> in_doubt;
  for (const auto& [txn_id, global_id] : prepared) {
    if (committed.contains(txn_id) || aborted.contains(txn_id)) {
      continue;
    }
    Txn t;
    t.id = txn_id;
    t.prepared = true;
    t.global_id = global_id;
    in_doubt.emplace(txn_id, std::move(t));
  }
  for (const LogRecord& rec : scan.records) {
    const auto doubt = in_doubt.find(rec.txn_id);
    if (doubt != in_doubt.end()) {
      // Rebuild the in-doubt write-set instead of applying it.
      Txn& t = doubt->second;
      if (t.first_lsn == 0) {
        t.first_lsn = rec.lsn;  // records arrive in LSN order
      }
      if (rec.type == LogRecordType::kUpdate ||
          rec.type == LogRecordType::kDelete) {
        WriteOp op;
        op.is_delete = rec.type == LogRecordType::kDelete;
        op.key = rec.key;
        op.value = rec.value;
        t.ops.push_back(std::move(op));
      }
      continue;
    }
    if (rec.type != LogRecordType::kUpdate &&
        rec.type != LogRecordType::kDelete) {
      continue;
    }
    if (!committed.contains(rec.txn_id)) {
      continue;
    }
    co_await ApplyRecord(rec);
    stats_.recovered_records.Add();
    if (pool_->dirty_count() >= dirty_throttle_pages_) {
      auto guard = co_await apply_mutex_->Lock();
      co_await CheckpointLocked();
    }
  }
  wal_->ResumeAt(scan.next_block, scan.next_lsn);

  // Adopt the in-doubt txns before any checkpoint runs: their first_lsn
  // values are what hold the replay point at (or before) their prepare
  // records, and their locks must be in place before new clients arrive.
  // Ids never collide with fresh txns because next_txn_id_ starts past every
  // id still visible in the replayable log region (reusing a resident
  // in-doubt id would misattribute its old records at the next replay).
  next_txn_id_ = std::max(next_txn_id_, max_txn_id + 1);
  for (auto& [id, t] : in_doubt) {
    for (const WriteOp& op : t.ops) {
      const bool got = co_await locks_->Acquire(id, op.key);
      RL_CHECK_MSG(got, "in-doubt lock re-acquisition cannot contend");
    }
    stats_.in_doubt_recovered.Add();
    txns_.emplace(id, std::move(t));
  }

  // Persist the recovered state so the next crash replays less.
  if (!scan.records.empty() || pool_->dirty_count() > 0) {
    auto guard = co_await apply_mutex_->Lock();
    co_await CheckpointLocked();
  }
}

Task<void> Database::ApplyRecord(const LogRecord& rec) {
  switch (rec.type) {
    case LogRecordType::kUpdate:
      root_ = co_await tree_->Put(root_, rec.key, rec.value);
      break;
    case LogRecordType::kDelete:
      root_ = co_await tree_->Remove(root_, rec.key);
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kPrepare:
    case LogRecordType::kAbort:
      break;  // control records carry no tree mutation
  }
}

// --- Transactions ------------------------------------------------------------

uint64_t Database::Begin() {
  const uint64_t id = next_txn_id_++;
  Txn t;
  t.id = id;
  txns_.emplace(id, std::move(t));
  return id;
}

Task<DbStatus> Database::Get(uint64_t txn, uint64_t key,
                             std::vector<uint8_t>* value_out) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  co_await cpu_.Compute(options_.profile.cpu_per_get);
  if (!co_await locks_->Acquire(txn, key)) {
    co_await Abort(txn);
    co_return DbStatus::kLockTimeout;
  }
  // Read-your-writes: newest op in the write-set wins.
  for (auto op = it->second.ops.rbegin(); op != it->second.ops.rend(); ++op) {
    if (op->key == key) {
      if (op->is_delete) {
        co_return DbStatus::kNotFound;
      }
      if (value_out != nullptr) {
        *value_out = op->value;
      }
      co_return DbStatus::kOk;
    }
  }
  const bool found = co_await tree_->Get(root_, key, value_out);
  co_return found ? DbStatus::kOk : DbStatus::kNotFound;
}

Task<DbStatus> Database::Put(uint64_t txn, uint64_t key,
                             std::span<const uint8_t> value) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  RL_CHECK(value.size() == options_.profile.value_bytes);
  co_await cpu_.Compute(options_.profile.cpu_per_put);
  if (!co_await locks_->Acquire(txn, key)) {
    co_await Abort(txn);
    co_return DbStatus::kLockTimeout;
  }
  WriteOp op;
  op.key = key;
  op.value.assign(value.begin(), value.end());
  it->second.ops.push_back(std::move(op));
  co_return DbStatus::kOk;
}

Task<DbStatus> Database::Remove(uint64_t txn, uint64_t key) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  co_await cpu_.Compute(options_.profile.cpu_per_put);
  if (!co_await locks_->Acquire(txn, key)) {
    co_await Abort(txn);
    co_return DbStatus::kLockTimeout;
  }
  WriteOp op;
  op.is_delete = true;
  op.key = key;
  it->second.ops.push_back(std::move(op));
  co_return DbStatus::kOk;
}

Task<DbStatus> Database::Commit(uint64_t txn) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  Txn& t = it->second;
  RL_CHECK_MSG(!t.prepared,
               "Commit() on a prepared txn; decisions go through "
               "CommitPrepared/Abort/ResolveInDoubt");
  const TimePoint start = sim_.now();
  co_await cpu_.Compute(options_.profile.cpu_per_commit);

  if (t.ops.empty()) {
    locks_->ReleaseAll(txn);
    txns_.erase(it);
    stats_.commits.Add();
    stats_.commit_latency.RecordDuration(sim_.now() - start);
    co_return DbStatus::kOk;
  }

  t.committing = true;
  // Log every operation, then the commit record.
  for (const WriteOp& op : t.ops) {
    LogRecord rec;
    rec.type = op.is_delete ? LogRecordType::kDelete : LogRecordType::kUpdate;
    rec.txn_id = txn;
    rec.key = op.key;
    rec.value = op.value;
    const uint64_t lsn = wal_->Append(std::move(rec));
    if (t.first_lsn == 0) {
      t.first_lsn = lsn;
    }
  }
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn_id = txn;
  const uint64_t commit_lsn = wal_->Append(std::move(commit));

  co_await wal_->WaitDurable(commit_lsn);

  // Dirty-page throttle: never let the apply outrun what a checkpoint can
  // journal (InnoDB-style furious-flushing backstop).
  co_await ThrottleDirtyPages();

  // Apply the write-set to the tree under the apply/checkpoint mutex.
  {
    auto guard = co_await apply_mutex_->Lock();
    for (const WriteOp& op : t.ops) {
      if (op.is_delete) {
        root_ = co_await tree_->Remove(root_, op.key);
      } else {
        root_ = co_await tree_->Put(root_, op.key, op.value);
      }
    }
  }

  locks_->ReleaseAll(txn);
  txns_.erase(it);
  stats_.commits.Add();
  stats_.commit_latency.RecordDuration(sim_.now() - start);
  MaybeScheduleCheckpoint();
  co_return DbStatus::kOk;
}

Task<void> Database::Abort(uint64_t txn) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return;
  }
  if (it->second.prepared) {
    // Best-effort resolution record: never waited on (presumed abort makes
    // its loss safe), but when it lands, the next recovery skips re-entering
    // doubt — and re-querying the coordinator — for this txn.
    LogRecord rec;
    rec.type = LogRecordType::kAbort;
    rec.txn_id = txn;
    rec.key = it->second.global_id;
    wal_->Append(std::move(rec));
  }
  locks_->ReleaseAll(txn);
  txns_.erase(it);
  stats_.aborts.Add();
}

// --- Two-phase commit (participant half) -------------------------------------

Task<DbStatus> Database::Prepare(uint64_t txn, uint64_t global_id) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  Txn& t = it->second;
  RL_CHECK_MSG(!t.prepared, "double Prepare on txn " << txn);
  co_await cpu_.Compute(options_.profile.cpu_per_commit);

  // Log the write-set followed by the prepare record; the durable prepare IS
  // the yes-vote. An empty write-set still logs the prepare: the vote must
  // survive a crash, because the coordinator may commit on the strength of
  // it.
  for (const WriteOp& op : t.ops) {
    LogRecord rec;
    rec.type = op.is_delete ? LogRecordType::kDelete : LogRecordType::kUpdate;
    rec.txn_id = txn;
    rec.key = op.key;
    rec.value = op.value;
    const uint64_t lsn = wal_->Append(std::move(rec));
    if (t.first_lsn == 0) {
      t.first_lsn = lsn;
    }
  }
  LogRecord prep;
  prep.type = LogRecordType::kPrepare;
  prep.txn_id = txn;
  prep.key = global_id;
  const uint64_t prep_lsn = wal_->Append(std::move(prep));
  if (t.first_lsn == 0) {
    t.first_lsn = prep_lsn;
  }
  co_await wal_->WaitDurable(prep_lsn);

  t.prepared = true;
  t.global_id = global_id;
  stats_.prepares.Add();
  co_return DbStatus::kOk;
}

Task<DbStatus> Database::CommitPrepared(uint64_t txn) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  Txn& t = it->second;
  RL_CHECK_MSG(t.prepared, "CommitPrepared on an unprepared txn " << txn);
  if (t.deciding) {
    co_return DbStatus::kTxnNotActive;  // duplicate decision mid-apply
  }
  t.deciding = true;
  const TimePoint start = sim_.now();

  // The write-set is already durable behind the prepare record; only the
  // commit record is new.
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn_id = txn;
  const uint64_t commit_lsn = wal_->Append(std::move(commit));
  co_await wal_->WaitDurable(commit_lsn);
  co_await ThrottleDirtyPages();

  {
    auto guard = co_await apply_mutex_->Lock();
    for (const WriteOp& op : t.ops) {
      if (op.is_delete) {
        root_ = co_await tree_->Remove(root_, op.key);
      } else {
        root_ = co_await tree_->Put(root_, op.key, op.value);
      }
    }
  }

  locks_->ReleaseAll(txn);
  txns_.erase(it);
  stats_.commits.Add();
  stats_.commit_latency.RecordDuration(sim_.now() - start);
  MaybeScheduleCheckpoint();
  co_return DbStatus::kOk;
}

std::vector<uint64_t> Database::InDoubtGlobalIds() const {
  std::vector<uint64_t> ids;
  for (const auto& [id, t] : txns_) {
    if (t.prepared && !t.deciding) {
      ids.push_back(t.global_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Task<DbStatus> Database::ResolveInDoubt(uint64_t global_id, bool commit) {
  uint64_t local = 0;
  bool found = false;
  for (const auto& [id, t] : txns_) {
    if (t.prepared && !t.deciding && t.global_id == global_id) {
      local = id;
      found = true;
      break;
    }
  }
  if (!found) {
    co_return DbStatus::kTxnNotActive;
  }
  if (commit) {
    co_return co_await CommitPrepared(local);
  }
  co_await Abort(local);
  co_return DbStatus::kOk;
}

// --- Checkpoint ----------------------------------------------------------------

void Database::MaybeScheduleCheckpoint() {
  if (closing_ || wal_->halted() || checkpoint_pending_ ||
      pool_->dirty_count() < options_.profile.checkpoint_dirty_pages) {
    return;
  }
  checkpoint_pending_ = true;
  sim_.Spawn(
      [](Database& db) -> Task<void> {
        try {
          co_await db.Checkpoint();
        } catch (...) {
          // Machine died mid-checkpoint; the journal makes this safe and the
          // harness will reopen the database.
        }
        db.checkpoint_pending_ = false;
        db.checkpoint_done_->NotifyAll();
      }(*this),
      "db-checkpoint");
}

Task<void> Database::Checkpoint() {
  auto ckpt_guard = co_await checkpoint_mutex_->Lock();
  StagedCheckpoint staged;
  {
    auto guard = co_await apply_mutex_->Lock();
    staged = StageCheckpoint();
  }
  // Write-ahead rule for the checkpoint: the log covering everything staged
  // must be durable before the staged pages overwrite old state.
  co_await wal_->Force();
  co_await PersistCheckpoint(std::move(staged));
}

Task<void> Database::CheckpointLocked() {
  // Recovery path: the caller already holds the apply mutex and runs alone.
  StagedCheckpoint staged = StageCheckpoint();
  co_await wal_->Force();
  co_await PersistCheckpoint(std::move(staged));
}

Database::StagedCheckpoint Database::StageCheckpoint() {
  StagedCheckpoint staged;
  std::vector<BufferPool::Frame*> dirty = pool_->DirtyFrames();
  RL_CHECK_MSG(dirty.size() + 1 <= options_.journal_pages,
               "checkpoint dirty set exceeds journal capacity");
  RL_CHECK_MSG(dirty.size() <=
                   JournalHeaderCapacity(options_.profile.page_bytes),
               "checkpoint dirty set exceeds journal header capacity");

  // Replay point: everything applied so far is captured by this snapshot;
  // transactions whose records are logged but not yet applied must replay.
  uint64_t replay_lsn = wal_->next_lsn();
  for (const auto& [id, t] : txns_) {
    if (t.first_lsn != 0) {
      replay_lsn = std::min(replay_lsn, t.first_lsn);
    }
  }
  // Block bound: exact when no transaction is mid-commit; otherwise fall
  // back to the previous checkpoint's start (correct because replay is
  // idempotent, merely conservative).
  const uint64_t replay_block = (replay_lsn == wal_->next_lsn())
                                    ? wal_->current_block_index()
                                    : meta_.replay_block;

  staged.meta = meta_;
  staged.meta.seq = meta_.seq + 1;
  staged.meta.root_page = root_;
  staged.meta.next_free_page = next_free_page_;
  staged.meta.replay_block = replay_block;
  staged.meta.replay_lsn = replay_lsn;
  staged.meta.page_bytes = options_.profile.page_bytes;

  staged.pages.reserve(dirty.size());
  for (BufferPool::Frame* f : dirty) {
    std::vector<uint8_t> image = f->data;
    SealPage(image, f->page_id);
    f->in_checkpoint = true;  // pin the frame contents against eviction
    pool_->MarkClean(f);
    staged.pages.emplace_back(f, std::move(image));
  }
  return staged;
}

Task<void> Database::PersistCheckpoint(StagedCheckpoint staged) {
  const uint32_t page_bytes = options_.profile.page_bytes;
  auto clear_flags = [&staged] {
    for (auto& [frame, image] : staged.pages) {
      frame->in_checkpoint = false;
    }
  };
  try {
    // 1. Page images into the journal slots.
    for (size_t i = 0; i < staged.pages.size(); ++i) {
      const uint64_t slot = 1 + i;
      const bool ok = co_await pool_->WritePageDirect(
          slot, staged.pages[i].second, /*fua=*/false);
      if (!ok) {
        throw EngineHalted();
      }
    }
    co_await data_dev_.Flush();

    // 2. Journal header (commits the checkpoint).
    std::vector<uint8_t> header(page_bytes, 0);
    PageHeader jh;
    jh.page_id = kJournalHeaderPage;
    jh.type = PageType::kJournalHeader;
    WritePageHeader(header, jh);
    StoreScalar<uint64_t>(header, kJournalSeqOff, staged.meta.seq);
    StoreScalar<uint32_t>(header, kJournalCountOff,
                          static_cast<uint32_t>(staged.pages.size()));
    for (size_t i = 0; i < staged.pages.size(); ++i) {
      StoreScalar<uint64_t>(header, kJournalIdsOff + i * 8,
                            staged.pages[i].first->page_id);
    }
    const std::vector<uint8_t> meta_blob = SerializeMeta(staged.meta);
    std::copy(meta_blob.begin(), meta_blob.end(),
              header.begin() + static_cast<ptrdiff_t>(
                                   kJournalIdsOff + staged.pages.size() * 8));
    SealPage(header, kJournalHeaderPage);
    {
      const bool ok = co_await pool_->WritePageDirect(kJournalHeaderPage,
                                                      header, /*fua=*/true);
      if (!ok) {
        throw EngineHalted();
      }
    }

    // 3. Pages in place, from the staged images.
    for (const auto& [frame, image] : staged.pages) {
      const bool ok = co_await pool_->WritePageDirect(frame->page_id, image,
                                                      /*fua=*/false);
      if (!ok) {
        throw EngineHalted();
      }
    }
    co_await data_dev_.Flush();

    // 4. Metadata flips to the new checkpoint.
    co_await WriteMeta(staged.meta);
    co_await data_dev_.Flush();
  } catch (...) {
    clear_flags();
    throw;
  }
  clear_flags();
  meta_ = staged.meta;
  stats_.checkpoints.Add();
}

// --- Introspection -------------------------------------------------------------

Task<bool> Database::ReadCommitted(uint64_t key, std::vector<uint8_t>* out) {
  co_return co_await tree_->Get(root_, key, out);
}

Task<uint64_t> Database::CommittedCount() {
  co_return co_await tree_->Count(root_);
}

Task<void> Database::CheckTreeStructure() {
  co_await tree_->CheckStructure(root_);
}

}  // namespace rldb

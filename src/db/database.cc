#include "src/db/database.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/db/errors.h"
#include "src/sim/check.h"
#include "src/sim/crc32.h"
#include "src/sim/sync.h"

namespace rldb {

using rlsim::Task;
using rlsim::TimePoint;
using rlstor::BlockStatus;
using rlstor::kSectorSize;

std::string ToString(DbStatus s) {
  switch (s) {
    case DbStatus::kOk:
      return "ok";
    case DbStatus::kNotFound:
      return "not-found";
    case DbStatus::kLockTimeout:
      return "lock-timeout";
    case DbStatus::kTxnNotActive:
      return "txn-not-active";
  }
  return "unknown";
}

namespace {

// Journal header page payload (after the 32-byte page header):
//   [u64 seq][u32 count][kRedoSlices * u64 horizon][count * u64 page_id]
//   [serialised MetaContent sector]
// The horizon array is the fuzzy-checkpoint metadata: per-slice low-water
// LSNs, valid for redo only when the header's seq matches the recovered
// checkpoint's seq (any torn or stale header degrades recovery to the
// global replay point, never to wrong data).
constexpr size_t kJournalSeqOff = kPageHeaderBytes;
constexpr size_t kJournalCountOff = kJournalSeqOff + 8;
constexpr size_t kJournalHorizonOff = kJournalCountOff + 4;
constexpr size_t kJournalIdsOff = kJournalHorizonOff + kRedoSlices * 8;

constexpr uint64_t kJournalHeaderPage = 0;

// Page-id entries that fit in one journal header page alongside the
// embedded metadata sector.
uint32_t JournalHeaderCapacity(uint32_t page_bytes) {
  return static_cast<uint32_t>(
      (page_bytes - kJournalIdsOff - rlstor::kSectorSize) / 8);
}

}  // namespace

Database::Database(rlsim::Simulator& sim, CpuContext& cpu,
                   rlstor::BlockDevice& data_dev,
                   rlstor::BlockDevice& log_dev, DbOptions options)
    : sim_(sim),
      cpu_(cpu),
      data_dev_(data_dev),
      log_dev_(log_dev),
      options_(std::move(options)) {
  RL_CHECK_MSG(options_.journal_pages >
                   options_.profile.checkpoint_dirty_pages,
               "journal must be able to hold a full checkpoint");
  RL_CHECK_MSG(options_.pool_pages > options_.profile.checkpoint_dirty_pages,
               "pool must be able to hold the dirty threshold");
  pool_ = std::make_unique<BufferPool>(sim_, data_dev_,
                                       options_.profile.page_bytes,
                                       options_.pool_pages);
  wal_ = std::make_unique<LogWriter>(sim_, log_dev_, options_.profile,
                                     options_.durability);
  locks_ = std::make_unique<LockManager>(sim_, options_.profile.lock_timeout);
  apply_mutex_ = std::make_unique<rlsim::SimMutex>(sim_);
  checkpoint_mutex_ = std::make_unique<rlsim::SimMutex>(sim_);
  checkpoint_done_ = std::make_unique<rlsim::WaitQueue>(sim_);

  // A checkpoint's dirty set must fit the journal region AND its header
  // page; commits throttle safely below that, and the automatic checkpoint
  // threshold sits below the throttle so the stall is normally never hit.
  const uint32_t capacity =
      std::min<uint32_t>(JournalHeaderCapacity(options_.profile.page_bytes),
                         options_.journal_pages - 1);
  dirty_throttle_pages_ = std::min(capacity - capacity / 8,
                                   options_.pool_pages * 3 / 4);
  RL_CHECK_MSG(options_.profile.checkpoint_dirty_pages < dirty_throttle_pages_,
               "checkpoint threshold must sit below the dirty throttle ("
                   << dirty_throttle_pages_ << " pages)");
}

Task<void> Database::ThrottleDirtyPages() {
  while (pool_->dirty_count() >= dirty_throttle_pages_) {
    if (closing_ || wal_->halted()) {
      // A halted WAL can never satisfy a checkpoint's Force(), so waiting
      // here would respawn failing checkpoints in a zero-time loop.
      throw EngineHalted();
    }
    MaybeScheduleCheckpoint();
    co_await checkpoint_done_->Wait();
  }
}

Database::~Database() = default;

Task<void> Database::Close() {
  closing_ = true;
  // Begin the WAL shutdown first: a pending checkpoint may be blocked inside
  // Force(), and the shutdown signal is what unwinds it. Then wake every
  // other place a client coroutine can be parked — lock queues and the
  // dirty-page throttle — so nothing still references this object (or gets
  // resumed into it by a stale timeout event) after we return.
  wal_->BeginShutdown();
  locks_->Shutdown();
  checkpoint_done_->NotifyAll();
  while (checkpoint_pending_) {
    co_await checkpoint_done_->Wait();
  }
  co_await wal_->Shutdown();
  // One settle tick: waiters woken above run before Close() returns.
  co_await sim_.Sleep(rlsim::Duration::Zero());
}

Task<std::unique_ptr<Database>> Database::Open(rlsim::Simulator& sim,
                                               CpuContext& cpu,
                                               rlstor::BlockDevice& data_dev,
                                               rlstor::BlockDevice& log_dev,
                                               DbOptions options) {
  std::unique_ptr<Database> db(
      // simlint: new-ok (private constructor; immediately owned)
      new Database(sim, cpu, data_dev, log_dev, std::move(options)));
  std::exception_ptr failure;
  try {
    co_await db->Recover();
  } catch (...) {
    failure = std::current_exception();
  }
  if (failure) {
    // Recovery died under us (power cut or device fault mid-open). The WAL
    // flusher task may still be parked inside a device request; destroying
    // the engine before it unwinds would leave it resuming into freed
    // memory. Signal shutdown and wait for it to exit, then propagate.
    co_await db->wal_->Shutdown();
    std::rethrow_exception(failure);
  }
  co_return db;
}

// --- Metadata & journal ------------------------------------------------------

Task<std::optional<MetaContent>> Database::ReadBestMeta() {
  std::optional<MetaContent> best;
  for (uint64_t sector : {kMetaSectorA, kMetaSectorB}) {
    std::vector<uint8_t> buf(kSectorSize);
    const BlockStatus st = co_await data_dev_.Read(sector, buf);
    if (st != BlockStatus::kOk) {
      continue;
    }
    const auto meta = DeserializeMeta(buf);
    if (meta.has_value() && (!best.has_value() || meta->seq > best->seq)) {
      best = meta;
    }
  }
  co_return best;
}

Task<void> Database::WriteMeta(const MetaContent& meta) {
  const std::vector<uint8_t> buf = SerializeMeta(meta);
  const uint64_t sector = (meta.seq % 2 == 0) ? kMetaSectorA : kMetaSectorB;
  const BlockStatus st = co_await data_dev_.Write(sector, buf, /*fua=*/true);
  if (st != BlockStatus::kOk) {
    throw EngineHalted();
  }
}

Task<Database::JournalHeaderInfo> Database::ReadJournalHeader() {
  JournalHeaderInfo info;
  stats_.journal_header_reads.Add();
  const uint32_t page_bytes = options_.profile.page_bytes;
  std::vector<uint8_t> header(page_bytes);
  const bool ok = co_await pool_->ReadPageDirect(kJournalHeaderPage, header);
  if (!ok || !PageValid(header, kJournalHeaderPage) ||
      ReadPageHeader(header).type != PageType::kJournalHeader) {
    co_return info;  // fresh device, torn header, or not a journal header
  }
  const uint32_t count = LoadScalar<uint32_t>(header, kJournalCountOff);
  RL_CHECK(kJournalIdsOff + count * 8ull + kSectorSize <= page_bytes);
  info.page_ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    info.page_ids.push_back(
        LoadScalar<uint64_t>(header, kJournalIdsOff + i * 8ull));
  }
  for (uint32_t s = 0; s < kRedoSlices; ++s) {
    info.horizons[s] =
        LoadScalar<uint64_t>(header, kJournalHorizonOff + s * 8ull);
  }
  // The header embeds the metadata of the checkpoint that wrote it; the page
  // CRC already passed, so a corrupt blob here is real corruption.
  const auto meta = DeserializeMeta(std::span<const uint8_t>(
      header.data() + kJournalIdsOff + count * 8ull, kSectorSize));
  RL_CHECK_MSG(meta.has_value(), "journal meta corrupt");
  info.meta = *meta;
  info.valid = true;
  co_return info;
}

Task<void> Database::ReplayJournal(const JournalHeaderInfo& header) {
  // The checkpoint committed but its in-place writes may be incomplete:
  // copy every journaled page image into place.
  const uint32_t page_bytes = options_.profile.page_bytes;
  std::vector<uint8_t> image(page_bytes);
  for (size_t i = 0; i < header.page_ids.size(); ++i) {
    const uint64_t page_id = header.page_ids[i];
    const uint64_t slot = 1 + i;
    const bool read_ok = co_await pool_->ReadPageDirect(slot, image);
    if (!read_ok) {
      // Device died mid-recovery (power cut or disk fault during replay):
      // machine death, not corruption. The journal is untouched, so the
      // next recovery attempt replays it from the start.
      throw EngineHalted();
    }
    RL_CHECK_MSG(PageValid(image, page_id),
                 "journal slot " << slot << " corrupt for page " << page_id);
    const bool write_ok =
        co_await pool_->WritePageDirect(page_id, image, /*fua=*/false);
    if (!write_ok) {
      throw EngineHalted();
    }
    stats_.repaired_from_journal.Add();
  }
  co_await data_dev_.Flush();
  // Persist the embedded metadata into the regular slots so the next open is
  // clean even if this one dies before its post-recovery checkpoint.
  co_await WriteMeta(header.meta);
}

// --- Recovery ----------------------------------------------------------------

Task<void> Database::FormatFresh() {
  meta_ = MetaContent{};
  meta_.seq = 1;
  meta_.root_page = 0;
  meta_.next_free_page = options_.journal_pages;  // data pages follow journal
  meta_.replay_block = 0;
  meta_.replay_lsn = 1;
  meta_.page_bytes = options_.profile.page_bytes;
  co_await WriteMeta(meta_);
  co_await data_dev_.Flush();
  root_ = 0;
  next_free_page_ = meta_.next_free_page;
  wal_->ResumeAt(/*next_block=*/0, /*next_lsn=*/1);
}

Task<void> Database::Recover() {
  rlsim::SpanScope recover_span(sim_, "db", "recover", 0);
  tree_ = std::make_unique<BTree>(*pool_, options_.profile.value_bytes,
                                  &next_free_page_);
  auto meta = co_await ReadBestMeta();
  // The journal header page is read exactly once per recovery; the parsed
  // result feeds the replay decision, the embedded metadata, and the fuzzy
  // redo horizons below.
  const JournalHeaderInfo jh = co_await ReadJournalHeader();
  if (jh.valid && jh.meta.seq > (meta.has_value() ? meta->seq : 0)) {
    co_await ReplayJournal(jh);
    meta = jh.meta;
  }
  if (!meta.has_value()) {
    co_await FormatFresh();
    co_return;
  }
  RL_CHECK_MSG(meta->page_bytes == options_.profile.page_bytes,
               "page size mismatch: on-disk " << meta->page_bytes
                                              << ", profile "
                                              << options_.profile.page_bytes);
  meta_ = *meta;
  root_ = meta_.root_page;
  next_free_page_ = meta_.next_free_page;

  // Replay the committed suffix of the WAL. kPrepare records whose txn has
  // neither a commit nor an abort record are in doubt: their write-sets are
  // rebuilt (not applied) and held under locks until the 2PC coordinator's
  // decision arrives (presumed abort when it never does).
  const uint64_t scan_span =
      sim_.EmitSpanBegin("db", "recover-scan", meta_.replay_block);
  const LogScanResult scan =
      co_await ScanLog(log_dev_, options_.profile, meta_.replay_block);
  sim_.EmitSpanEnd(scan_span, "db", "recover-scan", scan.records.size());
  std::unordered_set<uint64_t> committed;
  std::unordered_set<uint64_t> aborted;
  std::map<uint64_t, uint64_t> prepared;  // txn id -> global id
  uint64_t max_txn_id = 0;
  for (const LogRecord& rec : scan.records) {
    max_txn_id = std::max(max_txn_id, rec.txn_id);
    switch (rec.type) {
      case LogRecordType::kCommit:
        committed.insert(rec.txn_id);
        break;
      case LogRecordType::kAbort:
        aborted.insert(rec.txn_id);
        break;
      case LogRecordType::kPrepare:
        prepared.emplace(rec.txn_id, rec.key);
        break;
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        break;
    }
  }
  std::map<uint64_t, Txn> in_doubt;
  for (const auto& [txn_id, global_id] : prepared) {
    if (committed.contains(txn_id) || aborted.contains(txn_id)) {
      continue;
    }
    Txn t;
    t.id = txn_id;
    t.prepared = true;
    t.global_id = global_id;
    in_doubt.emplace(txn_id, std::move(t));
  }
  // Pass 2: rebuild in-doubt write-sets (never horizon-gated — their ops
  // were not applied, so no checkpoint captured them) and collect the redo
  // candidates: committed data records, in scan (= LSN) order.
  std::vector<size_t> candidates;
  candidates.reserve(scan.records.size());
  for (size_t i = 0; i < scan.records.size(); ++i) {
    const LogRecord& rec = scan.records[i];
    const auto doubt = in_doubt.find(rec.txn_id);
    if (doubt != in_doubt.end()) {
      // Rebuild the in-doubt write-set instead of applying it.
      Txn& t = doubt->second;
      if (t.first_lsn == 0) {
        t.first_lsn = rec.lsn;  // records arrive in LSN order
      }
      if (rec.type == LogRecordType::kUpdate ||
          rec.type == LogRecordType::kDelete) {
        WriteOp op;
        op.is_delete = rec.type == LogRecordType::kDelete;
        op.key = rec.key;
        op.value = rec.value;
        t.ops.push_back(std::move(op));
      }
      continue;
    }
    if (rec.type != LogRecordType::kUpdate &&
        rec.type != LogRecordType::kDelete) {
      continue;
    }
    if (!committed.contains(rec.txn_id)) {
      continue;
    }
    candidates.push_back(i);
  }

  // Redo horizons: a candidate at or below its slice's horizon is already
  // captured by the recovered checkpoint's pages. The fuzzy per-slice array
  // from the journal header is usable only when that header belongs to the
  // checkpoint we actually recovered (seq match); anything else degrades to
  // the global replay point, which is always sound (replay is idempotent).
  std::array<uint64_t, kRedoSlices> horizons;
  horizons.fill(meta_.replay_lsn > 0 ? meta_.replay_lsn - 1 : 0);
  if (options_.recovery.use_fuzzy_horizons && jh.valid &&
      jh.meta.seq == meta_.seq) {
    horizons = jh.horizons;
  }

  if (options_.recovery.partitions <= 1) {
    co_await RedoSequential(scan.records, candidates, horizons);
  } else {
    co_await RedoPartitioned(scan.records, candidates, horizons);
  }
  wal_->ResumeAt(scan.next_block, scan.next_lsn);

  // Adopt the in-doubt txns before any checkpoint runs: their first_lsn
  // values are what hold the replay point at (or before) their prepare
  // records, and their locks must be in place before new clients arrive.
  // Ids never collide with fresh txns because next_txn_id_ starts past every
  // id still visible in the replayable log region (reusing a resident
  // in-doubt id would misattribute its old records at the next replay).
  next_txn_id_ = std::max(next_txn_id_, max_txn_id + 1);
  for (auto& [id, t] : in_doubt) {
    for (const WriteOp& op : t.ops) {
      const bool got = co_await locks_->Acquire(id, op.key);
      RL_CHECK_MSG(got, "in-doubt lock re-acquisition cannot contend");
    }
    stats_.in_doubt_recovered.Add();
    txns_.emplace(id, std::move(t));
  }

  // Persist the recovered state so the next crash replays less.
  if (!scan.records.empty() || pool_->dirty_count() > 0) {
    // rapicheck: lock-ok (the apparent locks_ -> apply_mutex_ inversion is
    // a name merge: Commit's apply-section calls BTree::Remove, which
    // rapicheck conflates with Database::Remove's lock acquisition)
    auto guard = co_await apply_mutex_->Lock();
    co_await CheckpointLocked();
  }
}

Task<void> Database::ApplyRecord(const LogRecord& rec) {
  switch (rec.type) {
    case LogRecordType::kUpdate:
      root_ = co_await tree_->Put(root_, rec.key, rec.value);
      break;
    case LogRecordType::kDelete:
      root_ = co_await tree_->Remove(root_, rec.key);
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kPrepare:
    case LogRecordType::kAbort:
      break;  // control records carry no tree mutation
  }
}

Task<void> Database::RedoSequential(
    const std::vector<LogRecord>& records,
    const std::vector<size_t>& candidates,
    const std::array<uint64_t, kRedoSlices>& horizons) {
  rlsim::SpanScope span(sim_, "db", "redo-sequential", candidates.size());
  for (const size_t idx : candidates) {
    const LogRecord& rec = records[idx];
    // Decode cost is paid per candidate: the key must be decoded before the
    // horizon can rule the record out.
    co_await cpu_.Compute(options_.profile.cpu_per_redo);
    if (rec.lsn <= horizons[RedoSliceOf(rec.key)]) {
      stats_.redo_skipped_by_horizon.Add();
      continue;
    }
    co_await ApplyRecord(rec);
    stats_.recovered_records.Add();
    stats_.redo_installed_ops.Add();
    if (pool_->dirty_count() >= dirty_throttle_pages_) {
      auto guard = co_await apply_mutex_->Lock();
      co_await CheckpointLocked();
    }
  }
}

Task<void> Database::RedoPartitioned(
    const std::vector<LogRecord>& records,
    const std::vector<size_t>& candidates,
    const std::array<uint64_t, kRedoSlices>& horizons) {
  // Phase A — partition and reduce. Candidates are bucketed by key slice
  // into K streams (contiguous slice ranges, so the persisted per-slice
  // horizons apply unchanged at any K); worker coroutines then reduce each
  // stream to its net effect: the last record for a key wins. All records
  // of a key share one slice, hence one stream and one horizon, so
  // filter-then-reduce equals reduce-then-filter and the net-op set is
  // independent of K and of the worker count.
  const uint32_t streams =
      std::min(std::max<uint32_t>(options_.recovery.partitions, 2),
               kRedoSlices);
  rlsim::SpanScope span(sim_, "db", "redo-partitioned", streams);
  struct Stream {
    std::vector<size_t> candidates;            // indices, LSN order
    std::map<uint64_t, const LogRecord*> net;  // key -> winning record
    uint64_t replayed = 0;
    uint64_t skipped = 0;
  };
  std::vector<Stream> plan(streams);
  for (const size_t idx : candidates) {
    const uint32_t slice = RedoSliceOf(records[idx].key);
    plan[slice * streams / kRedoSlices].candidates.push_back(idx);
  }

  const uint32_t workers =
      options_.recovery.jobs == 0
          ? streams
          : std::min(options_.recovery.jobs, streams);
  size_t next_stream = 0;
  rlsim::TaskGroup group(sim_);
  for (uint32_t w = 0; w < workers; ++w) {
    group.Spawn(
        [](Database& db, const std::vector<LogRecord>& records,
           const std::array<uint64_t, kRedoSlices>& horizons,
           std::vector<Stream>& plan, size_t& next_stream) -> Task<void> {
          while (next_stream < plan.size()) {
            Stream& s = plan[next_stream++];
            for (const size_t idx : s.candidates) {
              const LogRecord& rec = records[idx];
              co_await db.cpu_.Compute(db.options_.profile.cpu_per_redo);
              if (rec.lsn <= horizons[RedoSliceOf(rec.key)]) {
                ++s.skipped;
                continue;
              }
              s.net[rec.key] = &rec;  // later record for the key wins
              ++s.replayed;
            }
          }
        }(*this, records, horizons, plan, next_stream),
        "redo-stream");
  }
  co_await group.Join();

  // Phase B — canonical install. Stream key sets are disjoint (a key maps
  // to exactly one stream), so merging the net-op maps and applying them in
  // ascending key order yields one fixed tree: byte-identical at any
  // partition or worker count >= 2, content-identical to sequential replay.
  std::map<uint64_t, const LogRecord*> net;
  for (Stream& s : plan) {
    stats_.recovered_records.Add(static_cast<int64_t>(s.replayed));
    stats_.redo_skipped_by_horizon.Add(static_cast<int64_t>(s.skipped));
    net.merge(s.net);
  }
  rlsim::SpanScope install_span(sim_, "db", "redo-install", net.size());
  for (const auto& [key, rec] : net) {
    co_await ApplyRecord(*rec);
    stats_.redo_installed_ops.Add();
    if (pool_->dirty_count() >= dirty_throttle_pages_) {
      auto guard = co_await apply_mutex_->Lock();
      co_await CheckpointLocked();
    }
  }
}

// --- Transactions ------------------------------------------------------------

uint64_t Database::Begin() {
  const uint64_t id = next_txn_id_++;
  Txn t;
  t.id = id;
  txns_.emplace(id, std::move(t));
  return id;
}

Task<DbStatus> Database::Get(uint64_t txn, uint64_t key,
                             std::vector<uint8_t>* value_out) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  co_await cpu_.Compute(options_.profile.cpu_per_get);
  if (!co_await locks_->Acquire(txn, key)) {
    co_await Abort(txn);
    co_return DbStatus::kLockTimeout;
  }
  // Read-your-writes: newest op in the write-set wins.
  for (auto op = it->second.ops.rbegin(); op != it->second.ops.rend(); ++op) {
    if (op->key == key) {
      if (op->is_delete) {
        co_return DbStatus::kNotFound;
      }
      if (value_out != nullptr) {
        *value_out = op->value;
      }
      co_return DbStatus::kOk;
    }
  }
  const bool found = co_await tree_->Get(root_, key, value_out);
  co_return found ? DbStatus::kOk : DbStatus::kNotFound;
}

Task<DbStatus> Database::Put(uint64_t txn, uint64_t key,
                             std::span<const uint8_t> value) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  RL_CHECK(value.size() == options_.profile.value_bytes);
  co_await cpu_.Compute(options_.profile.cpu_per_put);
  if (!co_await locks_->Acquire(txn, key)) {
    co_await Abort(txn);
    co_return DbStatus::kLockTimeout;
  }
  WriteOp op;
  op.key = key;
  op.value.assign(value.begin(), value.end());
  it->second.ops.push_back(std::move(op));
  co_return DbStatus::kOk;
}

Task<DbStatus> Database::Remove(uint64_t txn, uint64_t key) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  co_await cpu_.Compute(options_.profile.cpu_per_put);
  if (!co_await locks_->Acquire(txn, key)) {
    co_await Abort(txn);
    co_return DbStatus::kLockTimeout;
  }
  WriteOp op;
  op.is_delete = true;
  op.key = key;
  it->second.ops.push_back(std::move(op));
  co_return DbStatus::kOk;
}

Task<DbStatus> Database::Commit(uint64_t txn) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  Txn& t = it->second;
  RL_CHECK_MSG(!t.prepared,
               "Commit() on a prepared txn; decisions go through "
               "CommitPrepared/Abort/ResolveInDoubt");
  const TimePoint start = sim_.now();
  co_await cpu_.Compute(options_.profile.cpu_per_commit);

  if (t.ops.empty()) {
    locks_->ReleaseAll(txn);
    txns_.erase(it);
    // rapicheck: ack-ok (read-only commit: no records were written, so
    // there is nothing to make durable before acknowledging)
    stats_.commits.Add();
    stats_.commit_latency.RecordDuration(sim_.now() - start);
    co_return DbStatus::kOk;
  }

  t.committing = true;
  // Log every operation, then the commit record.
  for (const WriteOp& op : t.ops) {
    LogRecord rec;
    rec.type = op.is_delete ? LogRecordType::kDelete : LogRecordType::kUpdate;
    rec.txn_id = txn;
    rec.key = op.key;
    rec.value = op.value;
    const uint64_t lsn = wal_->Append(std::move(rec));
    if (t.first_lsn == 0) {
      t.first_lsn = lsn;
    }
  }
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn_id = txn;
  const uint64_t commit_lsn = wal_->Append(std::move(commit));

  co_await wal_->WaitDurable(commit_lsn);

  // Dirty-page throttle: never let the apply outrun what a checkpoint can
  // journal (InnoDB-style furious-flushing backstop).
  co_await ThrottleDirtyPages();

  // Apply the write-set to the tree under the apply/checkpoint mutex.
  {
    auto guard = co_await apply_mutex_->Lock();
    for (const WriteOp& op : t.ops) {
      if (op.is_delete) {
        root_ = co_await tree_->Remove(root_, op.key);
      } else {
        root_ = co_await tree_->Put(root_, op.key, op.value);
      }
    }
  }

  locks_->ReleaseAll(txn);
  txns_.erase(it);
  stats_.commits.Add();
  stats_.commit_latency.RecordDuration(sim_.now() - start);
  MaybeScheduleCheckpoint();
  co_return DbStatus::kOk;
}

Task<void> Database::Abort(uint64_t txn) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return;
  }
  if (it->second.prepared) {
    // Best-effort resolution record: never waited on (presumed abort makes
    // its loss safe), but when it lands, the next recovery skips re-entering
    // doubt — and re-querying the coordinator — for this txn.
    LogRecord rec;
    rec.type = LogRecordType::kAbort;
    rec.txn_id = txn;
    rec.key = it->second.global_id;
    wal_->Append(std::move(rec));
  }
  locks_->ReleaseAll(txn);
  txns_.erase(it);
  stats_.aborts.Add();
}

// --- Two-phase commit (participant half) -------------------------------------

Task<DbStatus> Database::Prepare(uint64_t txn, uint64_t global_id) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  Txn& t = it->second;
  RL_CHECK_MSG(!t.prepared, "double Prepare on txn " << txn);
  co_await cpu_.Compute(options_.profile.cpu_per_commit);

  // Log the write-set followed by the prepare record; the durable prepare IS
  // the yes-vote. An empty write-set still logs the prepare: the vote must
  // survive a crash, because the coordinator may commit on the strength of
  // it.
  for (const WriteOp& op : t.ops) {
    LogRecord rec;
    rec.type = op.is_delete ? LogRecordType::kDelete : LogRecordType::kUpdate;
    rec.txn_id = txn;
    rec.key = op.key;
    rec.value = op.value;
    const uint64_t lsn = wal_->Append(std::move(rec));
    if (t.first_lsn == 0) {
      t.first_lsn = lsn;
    }
  }
  LogRecord prep;
  prep.type = LogRecordType::kPrepare;
  prep.txn_id = txn;
  prep.key = global_id;
  const uint64_t prep_lsn = wal_->Append(std::move(prep));
  if (t.first_lsn == 0) {
    t.first_lsn = prep_lsn;
  }
  co_await wal_->WaitDurable(prep_lsn);

  t.prepared = true;
  t.global_id = global_id;
  stats_.prepares.Add();
  co_return DbStatus::kOk;
}

Task<DbStatus> Database::CommitPrepared(uint64_t txn) {
  const auto it = txns_.find(txn);
  if (it == txns_.end()) {
    co_return DbStatus::kTxnNotActive;
  }
  Txn& t = it->second;
  RL_CHECK_MSG(t.prepared, "CommitPrepared on an unprepared txn " << txn);
  if (t.deciding) {
    co_return DbStatus::kTxnNotActive;  // duplicate decision mid-apply
  }
  t.deciding = true;
  const TimePoint start = sim_.now();

  // The write-set is already durable behind the prepare record; only the
  // commit record is new.
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn_id = txn;
  const uint64_t commit_lsn = wal_->Append(std::move(commit));
  co_await wal_->WaitDurable(commit_lsn);
  co_await ThrottleDirtyPages();

  {
    auto guard = co_await apply_mutex_->Lock();
    for (const WriteOp& op : t.ops) {
      if (op.is_delete) {
        root_ = co_await tree_->Remove(root_, op.key);
      } else {
        root_ = co_await tree_->Put(root_, op.key, op.value);
      }
    }
  }

  locks_->ReleaseAll(txn);
  txns_.erase(it);
  stats_.commits.Add();
  stats_.commit_latency.RecordDuration(sim_.now() - start);
  MaybeScheduleCheckpoint();
  co_return DbStatus::kOk;
}

std::vector<uint64_t> Database::InDoubtGlobalIds() const {
  std::vector<uint64_t> ids;
  for (const auto& [id, t] : txns_) {
    if (t.prepared && !t.deciding) {
      ids.push_back(t.global_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Task<DbStatus> Database::ResolveInDoubt(uint64_t global_id, bool commit) {
  uint64_t local = 0;
  bool found = false;
  for (const auto& [id, t] : txns_) {
    if (t.prepared && !t.deciding && t.global_id == global_id) {
      local = id;
      found = true;
      break;
    }
  }
  if (!found) {
    co_return DbStatus::kTxnNotActive;
  }
  if (commit) {
    co_return co_await CommitPrepared(local);
  }
  co_await Abort(local);
  co_return DbStatus::kOk;
}

// --- Checkpoint ----------------------------------------------------------------

void Database::MaybeScheduleCheckpoint() {
  if (closing_ || wal_->halted() || checkpoint_pending_ ||
      pool_->dirty_count() < options_.profile.checkpoint_dirty_pages) {
    return;
  }
  checkpoint_pending_ = true;
  sim_.Spawn(
      [](Database& db) -> Task<void> {
        try {
          co_await db.Checkpoint();
        } catch (...) {
          // Machine died mid-checkpoint; the journal makes this safe and the
          // harness will reopen the database.
        }
        db.checkpoint_pending_ = false;
        db.checkpoint_done_->NotifyAll();
      }(*this),
      "db-checkpoint");
}

Task<void> Database::Checkpoint() {
  auto ckpt_guard = co_await checkpoint_mutex_->Lock();
  StagedCheckpoint staged;
  {
    auto guard = co_await apply_mutex_->Lock();
    staged = StageCheckpoint();
  }
  // Write-ahead rule for the checkpoint: the log covering everything staged
  // must be durable before the staged pages overwrite old state.
  co_await wal_->Force();
  co_await PersistCheckpoint(std::move(staged));
}

Task<void> Database::CheckpointLocked() {
  // Recovery path: the caller already holds the apply mutex and runs alone.
  StagedCheckpoint staged = StageCheckpoint();
  co_await wal_->Force();
  co_await PersistCheckpoint(std::move(staged));
}

Database::StagedCheckpoint Database::StageCheckpoint() {
  StagedCheckpoint staged;
  std::vector<BufferPool::Frame*> dirty = pool_->DirtyFrames();
  RL_CHECK_MSG(dirty.size() + 1 <= options_.journal_pages,
               "checkpoint dirty set exceeds journal capacity");
  RL_CHECK_MSG(dirty.size() <=
                   JournalHeaderCapacity(options_.profile.page_bytes),
               "checkpoint dirty set exceeds journal header capacity");

  // Replay point: everything applied so far is captured by this snapshot;
  // transactions whose records are logged but not yet applied must replay.
  uint64_t replay_lsn = wal_->next_lsn();
  for (const auto& [id, t] : txns_) {
    if (t.first_lsn != 0) {
      replay_lsn = std::min(replay_lsn, t.first_lsn);
    }
  }
  // Block bound: exact when no transaction is mid-commit; otherwise fall
  // back to the previous checkpoint's start (correct because replay is
  // idempotent, merely conservative).
  const uint64_t replay_block = (replay_lsn == wal_->next_lsn())
                                    ? wal_->current_block_index()
                                    : meta_.replay_block;

  staged.meta = meta_;
  staged.meta.seq = meta_.seq + 1;
  staged.meta.root_page = root_;
  staged.meta.next_free_page = next_free_page_;
  staged.meta.replay_block = replay_block;
  staged.meta.replay_lsn = replay_lsn;
  staged.meta.page_bytes = options_.profile.page_bytes;

  // Fuzzy redo horizons: per slice, the highest LSN this snapshot fully
  // captures. Everything applied so far is in the staged pages, so every
  // slice starts at next_lsn - 1; a resident transaction with logged but
  // unapplied records (mid-commit or prepared in-doubt — the latter pin the
  // global replay point arbitrarily far back) drags down only the slices
  // its keys actually touch. Untouched slices keep the high horizon, which
  // is exactly the recovery-time win over the global replay point.
  const uint64_t captured = wal_->next_lsn() > 0 ? wal_->next_lsn() - 1 : 0;
  staged.horizons.fill(captured);
  for (const auto& [id, t] : txns_) {
    if (t.first_lsn == 0) {
      continue;
    }
    for (const WriteOp& op : t.ops) {
      const uint32_t s = RedoSliceOf(op.key);
      staged.horizons[s] = std::min(staged.horizons[s], t.first_lsn - 1);
    }
  }

  staged.pages.reserve(dirty.size());
  for (BufferPool::Frame* f : dirty) {
    std::vector<uint8_t> image = f->data;
    SealPage(image, f->page_id);
    f->in_checkpoint = true;  // pin the frame contents against eviction
    pool_->MarkClean(f);
    staged.pages.emplace_back(f, std::move(image));
  }
  return staged;
}

Task<void> Database::PersistCheckpoint(StagedCheckpoint staged) {
  const uint32_t page_bytes = options_.profile.page_bytes;
  auto clear_flags = [&staged] {
    for (auto& [frame, image] : staged.pages) {
      frame->in_checkpoint = false;
    }
  };
  try {
    // 1. Page images into the journal slots.
    for (size_t i = 0; i < staged.pages.size(); ++i) {
      const uint64_t slot = 1 + i;
      const bool ok = co_await pool_->WritePageDirect(
          slot, staged.pages[i].second, /*fua=*/false);
      if (!ok) {
        throw EngineHalted();
      }
    }
    co_await data_dev_.Flush();

    // 2. Journal header (commits the checkpoint).
    std::vector<uint8_t> header(page_bytes, 0);
    PageHeader jh;
    jh.page_id = kJournalHeaderPage;
    jh.type = PageType::kJournalHeader;
    WritePageHeader(header, jh);
    StoreScalar<uint64_t>(header, kJournalSeqOff, staged.meta.seq);
    StoreScalar<uint32_t>(header, kJournalCountOff,
                          static_cast<uint32_t>(staged.pages.size()));
    for (uint32_t s = 0; s < kRedoSlices; ++s) {
      StoreScalar<uint64_t>(header, kJournalHorizonOff + s * 8,
                            staged.horizons[s]);
    }
    for (size_t i = 0; i < staged.pages.size(); ++i) {
      StoreScalar<uint64_t>(header, kJournalIdsOff + i * 8,
                            staged.pages[i].first->page_id);
    }
    const std::vector<uint8_t> meta_blob = SerializeMeta(staged.meta);
    std::copy(meta_blob.begin(), meta_blob.end(),
              header.begin() + static_cast<ptrdiff_t>(
                                   kJournalIdsOff + staged.pages.size() * 8));
    SealPage(header, kJournalHeaderPage);
    {
      const bool ok = co_await pool_->WritePageDirect(kJournalHeaderPage,
                                                      header, /*fua=*/true);
      if (!ok) {
        throw EngineHalted();
      }
    }

    // 3. Pages in place, from the staged images.
    for (const auto& [frame, image] : staged.pages) {
      const bool ok = co_await pool_->WritePageDirect(frame->page_id, image,
                                                      /*fua=*/false);
      if (!ok) {
        throw EngineHalted();
      }
    }
    co_await data_dev_.Flush();

    // 4. Metadata flips to the new checkpoint.
    co_await WriteMeta(staged.meta);
    co_await data_dev_.Flush();
  } catch (...) {
    clear_flags();
    throw;
  }
  clear_flags();
  meta_ = staged.meta;
  stats_.checkpoints.Add();
}

// --- Introspection -------------------------------------------------------------

Task<bool> Database::ReadCommitted(uint64_t key, std::vector<uint8_t>* out) {
  co_return co_await tree_->Get(root_, key, out);
}

Task<uint64_t> Database::CommittedCount() {
  co_return co_await tree_->Count(root_);
}

Task<void> Database::CheckTreeStructure() {
  co_await tree_->CheckStructure(root_);
}

Task<uint64_t> Database::ContentHash() {
  // FNV-1a over (key, value) pairs in ascending key order. Depends only on
  // the committed contents, not the physical page layout — sequential and
  // partitioned redo build structurally different trees from the same log.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](const uint8_t* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      hash ^= data[i];
      hash *= 1099511628211ull;
    }
  };
  co_await tree_->Scan(
      root_, 0, UINT64_MAX,
      [&mix](uint64_t key, std::span<const uint8_t> value) {
        // Keys are mixed in explicit little-endian byte order so the hash
        // is a property of the contents, not the host representation.
        uint8_t key_bytes[sizeof(key)];
        for (size_t i = 0; i < sizeof(key); ++i) {
          key_bytes[i] = static_cast<uint8_t>(key >> (8 * i));
        }
        mix(key_bytes, sizeof(key));
        mix(value.data(), value.size());
        return true;
      });
  co_return hash;
}

}  // namespace rldb

#include "src/db/btree.h"

#include <algorithm>
#include <cstring>

#include "src/db/layout.h"
#include "src/sim/check.h"

namespace rldb {

using rlsim::Task;

namespace {

// --- In-page node accessors --------------------------------------------------

uint64_t LeafKey(std::span<const uint8_t> page, uint32_t value_bytes,
                 uint32_t i) {
  return LoadScalar<uint64_t>(page,
                              kPageHeaderBytes + i * (8ull + value_bytes));
}

std::span<const uint8_t> LeafValue(std::span<const uint8_t> page,
                                   uint32_t value_bytes, uint32_t i) {
  return page.subspan(kPageHeaderBytes + i * (8ull + value_bytes) + 8,
                      value_bytes);
}

void LeafSetEntry(std::span<uint8_t> page, uint32_t value_bytes, uint32_t i,
                  uint64_t key, std::span<const uint8_t> value) {
  const size_t off = kPageHeaderBytes + i * (8ull + value_bytes);
  StoreScalar<uint64_t>(page, off, key);
  std::memcpy(page.data() + off + 8, value.data(), value_bytes);
}

void LeafShiftRight(std::span<uint8_t> page, uint32_t value_bytes,
                    uint32_t from, uint32_t count) {
  const size_t entry = 8ull + value_bytes;
  const size_t off = kPageHeaderBytes + from * entry;
  std::memmove(page.data() + off + entry, page.data() + off, count * entry);
}

void LeafShiftLeft(std::span<uint8_t> page, uint32_t value_bytes,
                   uint32_t from, uint32_t count) {
  const size_t entry = 8ull + value_bytes;
  const size_t off = kPageHeaderBytes + from * entry;
  std::memmove(page.data() + off - entry, page.data() + off, count * entry);
}

uint64_t InternalChild(std::span<const uint8_t> page, uint32_t i) {
  // child0 at header end; pair j = [key, child_{j+1}] at 8 + j*16.
  if (i == 0) {
    return LoadScalar<uint64_t>(page, kPageHeaderBytes);
  }
  return LoadScalar<uint64_t>(page,
                              kPageHeaderBytes + 8 + (i - 1) * 16ull + 8);
}

uint64_t InternalKey(std::span<const uint8_t> page, uint32_t j) {
  return LoadScalar<uint64_t>(page, kPageHeaderBytes + 8 + j * 16ull);
}

void InternalSetChild(std::span<uint8_t> page, uint32_t i, uint64_t child) {
  if (i == 0) {
    StoreScalar<uint64_t>(page, kPageHeaderBytes, child);
  } else {
    StoreScalar<uint64_t>(page, kPageHeaderBytes + 8 + (i - 1) * 16ull + 8,
                          child);
  }
}

void InternalSetKey(std::span<uint8_t> page, uint32_t j, uint64_t key) {
  StoreScalar<uint64_t>(page, kPageHeaderBytes + 8 + j * 16ull, key);
}

// Number of children in the subtree rooted at child i is keys+1.
uint32_t InternalUpperBound(std::span<const uint8_t> page, uint16_t nkeys,
                            uint64_t key) {
  // First key strictly greater than `key` determines the child.
  uint32_t lo = 0;
  uint32_t hi = nkeys;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // child index
}

uint32_t LeafLowerBound(std::span<const uint8_t> page, uint32_t value_bytes,
                        uint16_t nkeys, uint64_t key) {
  uint32_t lo = 0;
  uint32_t hi = nkeys;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (LeafKey(page, value_bytes, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BTree::BTree(BufferPool& pool, uint32_t value_bytes,
             uint64_t* next_free_page)
    : pool_(pool), value_bytes_(value_bytes), next_free_page_(next_free_page) {
  RL_CHECK(next_free_page_ != nullptr);
  const uint32_t payload = pool_.page_bytes() - kPageHeaderBytes;
  leaf_capacity_ = payload / (8 + value_bytes_);
  internal_capacity_ = (payload - 8) / 16;
  RL_CHECK_MSG(leaf_capacity_ >= 4 && internal_capacity_ >= 4,
               "page too small for value size " << value_bytes_);
}

uint64_t BTree::AllocPage() { return (*next_free_page_)++; }

uint64_t BTree::CreateEmpty() {
  const uint64_t pid = AllocPage();
  BufferPool::Frame* f = pool_.Create(pid);
  PageHeader h;
  h.page_id = pid;
  h.type = PageType::kLeaf;
  h.level = 0;
  h.nkeys = 0;
  h.next_leaf = 0;
  WritePageHeader(f->data, h);
  pool_.Unpin(f, /*mark_dirty=*/true);
  return pid;
}

Task<uint64_t> BTree::DescendToLeaf(uint64_t root, uint64_t key,
                                    std::vector<PathEntry>* path) {
  uint64_t pid = root;
  while (true) {
    BufferPool::Frame* f = co_await pool_.Fetch(pid);
    const PageHeader h = ReadPageHeader(f->data);
    if (h.type == PageType::kLeaf) {
      pool_.Unpin(f, false);
      co_return pid;
    }
    RL_CHECK_MSG(h.type == PageType::kInternal,
                 "unexpected page type on descent");
    const uint32_t child_idx = InternalUpperBound(f->data, h.nkeys, key);
    const uint64_t child = InternalChild(f->data, child_idx);
    pool_.Unpin(f, false);
    if (path != nullptr) {
      path->push_back(PathEntry{pid, child_idx});
    }
    pid = child;
  }
}

Task<bool> BTree::Get(uint64_t root, uint64_t key,
                      std::vector<uint8_t>* value_out) {
  if (root == 0) {
    co_return false;
  }
  const uint64_t leaf = co_await DescendToLeaf(root, key, nullptr);
  BufferPool::Frame* f = co_await pool_.Fetch(leaf);
  const PageHeader h = ReadPageHeader(f->data);
  const uint32_t pos = LeafLowerBound(f->data, value_bytes_, h.nkeys, key);
  bool found = false;
  if (pos < h.nkeys && LeafKey(f->data, value_bytes_, pos) == key) {
    found = true;
    if (value_out != nullptr) {
      const auto v = LeafValue(f->data, value_bytes_, pos);
      value_out->assign(v.begin(), v.end());
    }
  }
  pool_.Unpin(f, false);
  co_return found;
}

Task<uint64_t> BTree::InsertIntoParents(uint64_t root,
                                        std::vector<PathEntry> path,
                                        uint64_t sep_key,
                                        uint64_t new_child) {
  while (true) {
    if (path.empty()) {
      // Split reached the root: grow the tree by one level.
      const uint64_t new_root = AllocPage();
      BufferPool::Frame* f = pool_.Create(new_root);
      BufferPool::Frame* old = co_await pool_.Fetch(root);
      const uint8_t child_level = ReadPageHeader(old->data).level;
      pool_.Unpin(old, false);
      PageHeader h;
      h.page_id = new_root;
      h.type = PageType::kInternal;
      h.level = static_cast<uint8_t>(child_level + 1);
      h.nkeys = 1;
      WritePageHeader(f->data, h);
      InternalSetChild(f->data, 0, root);
      InternalSetKey(f->data, 0, sep_key);
      InternalSetChild(f->data, 1, new_child);
      pool_.Unpin(f, true);
      co_return new_root;
    }

    const PathEntry at = path.back();
    path.pop_back();
    BufferPool::Frame* f = co_await pool_.Fetch(at.page_id);
    PageHeader h = ReadPageHeader(f->data);
    RL_CHECK(h.type == PageType::kInternal);

    if (h.nkeys < internal_capacity_) {
      // Shift pairs right of the insertion point.
      for (uint32_t j = h.nkeys; j > at.child_index; --j) {
        InternalSetKey(f->data, j, InternalKey(f->data, j - 1));
        InternalSetChild(f->data, j + 1, InternalChild(f->data, j));
      }
      InternalSetKey(f->data, at.child_index, sep_key);
      InternalSetChild(f->data, at.child_index + 1, new_child);
      h.nkeys = static_cast<uint16_t>(h.nkeys + 1);
      WritePageHeader(f->data, h);
      pool_.Unpin(f, true);
      co_return root;
    }

    // Split the internal node. Build the logical key/child sequence with
    // the new separator inserted, then distribute around the median.
    std::vector<uint64_t> keys;
    std::vector<uint64_t> children;
    keys.reserve(h.nkeys + 1u);
    children.reserve(h.nkeys + 2u);
    for (uint32_t j = 0; j < h.nkeys; ++j) {
      keys.push_back(InternalKey(f->data, j));
    }
    for (uint32_t j = 0; j <= h.nkeys; ++j) {
      children.push_back(InternalChild(f->data, j));
    }
    keys.insert(keys.begin() + at.child_index, sep_key);
    children.insert(children.begin() + at.child_index + 1, new_child);

    const uint32_t total_keys = static_cast<uint32_t>(keys.size());
    const uint32_t mid = total_keys / 2;
    const uint64_t promote = keys[mid];

    const uint64_t right_pid = AllocPage();
    BufferPool::Frame* rf = pool_.Create(right_pid);

    // Left keeps keys [0, mid) and children [0, mid].
    PageHeader lh = h;
    lh.nkeys = static_cast<uint16_t>(mid);
    WritePageHeader(f->data, lh);
    for (uint32_t j = 0; j < mid; ++j) {
      InternalSetKey(f->data, j, keys[j]);
    }
    for (uint32_t j = 0; j <= mid; ++j) {
      InternalSetChild(f->data, j, children[j]);
    }

    // Right takes keys (mid, end) and children [mid+1, end].
    PageHeader rh;
    rh.page_id = right_pid;
    rh.type = PageType::kInternal;
    rh.level = h.level;
    rh.nkeys = static_cast<uint16_t>(total_keys - mid - 1);
    WritePageHeader(rf->data, rh);
    for (uint32_t j = mid + 1; j < total_keys; ++j) {
      InternalSetKey(rf->data, j - mid - 1, keys[j]);
    }
    for (uint32_t j = mid + 1; j <= total_keys; ++j) {
      InternalSetChild(rf->data, j - mid - 1, children[j]);
    }

    pool_.Unpin(f, true);
    pool_.Unpin(rf, true);

    // Continue inserting `promote` -> right_pid into the grandparent.
    sep_key = promote;
    new_child = right_pid;
  }
}

Task<uint64_t> BTree::Put(uint64_t root, uint64_t key,
                          std::span<const uint8_t> value) {
  RL_CHECK_MSG(value.size() == value_bytes_,
               "value size " << value.size() << " != slot size "
                             << value_bytes_);
  if (root == 0) {
    root = CreateEmpty();
  }
  std::vector<PathEntry> path;
  const uint64_t leaf_pid = co_await DescendToLeaf(root, key, &path);
  BufferPool::Frame* f = co_await pool_.Fetch(leaf_pid);
  PageHeader h = ReadPageHeader(f->data);
  const uint32_t pos = LeafLowerBound(f->data, value_bytes_, h.nkeys, key);

  if (pos < h.nkeys && LeafKey(f->data, value_bytes_, pos) == key) {
    LeafSetEntry(f->data, value_bytes_, pos, key, value);  // overwrite
    pool_.Unpin(f, true);
    co_return root;
  }

  if (h.nkeys < leaf_capacity_) {
    LeafShiftRight(f->data, value_bytes_, pos, h.nkeys - pos);
    LeafSetEntry(f->data, value_bytes_, pos, key, value);
    h.nkeys = static_cast<uint16_t>(h.nkeys + 1);
    WritePageHeader(f->data, h);
    pool_.Unpin(f, true);
    co_return root;
  }

  // Leaf split.
  const uint64_t right_pid = AllocPage();
  BufferPool::Frame* rf = pool_.Create(right_pid);
  const uint32_t mid = (h.nkeys + 1) / 2;

  PageHeader rh;
  rh.page_id = right_pid;
  rh.type = PageType::kLeaf;
  rh.level = 0;
  rh.nkeys = static_cast<uint16_t>(h.nkeys - mid);
  rh.next_leaf = h.next_leaf;
  // Copy upper half to the right leaf.
  const size_t entry = 8ull + value_bytes_;
  std::memcpy(rf->data.data() + kPageHeaderBytes,
              f->data.data() + kPageHeaderBytes + mid * entry,
              (h.nkeys - mid) * entry);
  WritePageHeader(rf->data, rh);

  h.nkeys = static_cast<uint16_t>(mid);
  h.next_leaf = right_pid;
  WritePageHeader(f->data, h);

  // Insert into the correct half.
  const uint64_t right_first = LeafKey(rf->data, value_bytes_, 0);
  if (key < right_first) {
    const uint32_t p = LeafLowerBound(f->data, value_bytes_, h.nkeys, key);
    LeafShiftRight(f->data, value_bytes_, p, h.nkeys - p);
    LeafSetEntry(f->data, value_bytes_, p, key, value);
    h.nkeys = static_cast<uint16_t>(h.nkeys + 1);
    WritePageHeader(f->data, h);
  } else {
    const uint32_t p = LeafLowerBound(rf->data, value_bytes_, rh.nkeys, key);
    LeafShiftRight(rf->data, value_bytes_, p, rh.nkeys - p);
    LeafSetEntry(rf->data, value_bytes_, p, key, value);
    rh.nkeys = static_cast<uint16_t>(rh.nkeys + 1);
    WritePageHeader(rf->data, rh);
  }

  const uint64_t sep = LeafKey(rf->data, value_bytes_, 0);
  pool_.Unpin(f, true);
  pool_.Unpin(rf, true);
  co_return co_await InsertIntoParents(root, std::move(path), sep, right_pid);
}

Task<uint64_t> BTree::Remove(uint64_t root, uint64_t key) {
  if (root == 0) {
    co_return root;
  }
  const uint64_t leaf_pid = co_await DescendToLeaf(root, key, nullptr);
  BufferPool::Frame* f = co_await pool_.Fetch(leaf_pid);
  PageHeader h = ReadPageHeader(f->data);
  const uint32_t pos = LeafLowerBound(f->data, value_bytes_, h.nkeys, key);
  if (pos < h.nkeys && LeafKey(f->data, value_bytes_, pos) == key) {
    LeafShiftLeft(f->data, value_bytes_, pos + 1, h.nkeys - pos - 1);
    h.nkeys = static_cast<uint16_t>(h.nkeys - 1);
    WritePageHeader(f->data, h);
    pool_.Unpin(f, true);
  } else {
    pool_.Unpin(f, false);
  }
  co_return root;
}

Task<void> BTree::Scan(
    uint64_t root, uint64_t from, uint64_t to,
    const std::function<bool(uint64_t, std::span<const uint8_t>)>& visit) {
  if (root == 0) {
    co_return;
  }
  uint64_t pid = co_await DescendToLeaf(root, from, nullptr);
  while (pid != 0) {
    BufferPool::Frame* f = co_await pool_.Fetch(pid);
    const PageHeader h = ReadPageHeader(f->data);
    uint32_t pos = LeafLowerBound(f->data, value_bytes_, h.nkeys, from);
    for (; pos < h.nkeys; ++pos) {
      const uint64_t k = LeafKey(f->data, value_bytes_, pos);
      if (k > to) {
        pool_.Unpin(f, false);
        co_return;
      }
      if (!visit(k, LeafValue(f->data, value_bytes_, pos))) {
        pool_.Unpin(f, false);
        co_return;
      }
    }
    const uint64_t next = h.next_leaf;
    pool_.Unpin(f, false);
    pid = next;
  }
}

Task<uint64_t> BTree::Count(uint64_t root) {
  uint64_t count = 0;
  co_await Scan(root, 0, UINT64_MAX,
                [&count](uint64_t, std::span<const uint8_t>) {
                  ++count;
                  return true;
                });
  co_return count;
}

Task<void> BTree::CheckStructure(uint64_t root) {
  if (root == 0) {
    co_return;
  }
  // Walk the leaf chain: keys strictly increasing globally.
  uint64_t prev = 0;
  bool first = true;
  co_await Scan(root, 0, UINT64_MAX,
                [&](uint64_t k, std::span<const uint8_t>) {
                  if (!first) {
                    RL_CHECK_MSG(k > prev, "leaf chain out of order");
                  }
                  first = false;
                  prev = k;
                  return true;
                });
  // Verify internal separators bound their subtrees.
  struct Item {
    uint64_t pid;
    uint64_t lo;
    uint64_t hi;
  };
  std::vector<Item> stack{{root, 0, UINT64_MAX}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    BufferPool::Frame* f = co_await pool_.Fetch(item.pid);
    const PageHeader h = ReadPageHeader(f->data);
    if (h.type == PageType::kLeaf) {
      for (uint32_t i = 0; i < h.nkeys; ++i) {
        const uint64_t k = LeafKey(f->data, value_bytes_, i);
        RL_CHECK_MSG(k >= item.lo && k <= item.hi, "leaf key out of bounds");
      }
    } else {
      RL_CHECK(h.type == PageType::kInternal);
      uint64_t lo = item.lo;
      for (uint32_t j = 0; j < h.nkeys; ++j) {
        const uint64_t sep = InternalKey(f->data, j);
        RL_CHECK_MSG(sep >= item.lo && sep <= item.hi,
                     "separator out of bounds");
        RL_CHECK_MSG(sep > 0, "zero separator");
        stack.push_back(Item{InternalChild(f->data, j), lo, sep - 1});
        lo = sep;
      }
      stack.push_back(Item{InternalChild(f->data, h.nkeys), lo, item.hi});
    }
    pool_.Unpin(f, false);
  }
}

}  // namespace rldb

// The storage engine façade: transactions over the B+-tree with write-ahead
// logging, journaled (atomic) checkpoints, and crash recovery.
//
// Concurrency & recovery design (details in DESIGN.md):
//   * deferred update — a transaction's writes live in its write-set and are
//     applied to the tree only after its commit record is durable, so pages
//     never contain uncommitted data (no-steal, no undo);
//   * redo-only logical WAL — recovery replays SET/DELETE operations of
//     committed transactions since the last checkpoint (idempotent);
//   * sharp, journaled checkpoints — all dirty pages go to the on-disk
//     journal first, then in place, then the metadata flips; a crash at any
//     point yields either the complete old or complete new page set, so the
//     tree recovery starts from is always structurally consistent.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/db/btree.h"
#include "src/db/buffer_pool.h"
#include "src/db/cpu_context.h"
#include "src/db/layout.h"
#include "src/db/lock_manager.h"
#include "src/db/profile.h"
#include "src/db/wal.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace rldb {

enum class DbStatus {
  kOk,
  kNotFound,
  kLockTimeout,  // transaction was aborted; caller should retry it
  kTxnNotActive,
};

std::string ToString(DbStatus s);

// How crash recovery replays the committed WAL suffix. Every setting yields
// the same recovered contents (asserted by the recovery-equivalence oracle);
// the knobs trade virtual recovery time only.
struct RecoveryOptions {
  // Redo streams. <= 1 replays the classic way: one sequential pass in LSN
  // order. >= 2 partitions redo records by key slice (layout.h RedoSliceOf)
  // into this many streams, overlaps their decode CPU in virtual time, and
  // installs the resulting net-ops in canonical ascending-key order — so the
  // recovered tree is byte-identical at any partition/worker count >= 2 and
  // content-identical to the sequential replay.
  uint32_t partitions = 1;
  // Concurrent redo worker coroutines draining the streams (simulated
  // recovery cores). 0 = one worker per stream. Affects only virtual time.
  uint32_t jobs = 0;
  // Use the per-slice low-water LSNs persisted in the journal header to skip
  // records a checkpoint already captured. Off = every slice falls back to
  // the global replay point (strictly more records replayed; same result).
  bool use_fuzzy_horizons = true;
};

struct DbOptions {
  EngineProfile profile;
  DurabilityMode durability = DurabilityMode::kSync;
  uint32_t pool_pages = 4096;
  // Journal region size in pages; must exceed profile.checkpoint_dirty_pages
  // plus headroom for pages dirtied while a checkpoint is pending.
  uint32_t journal_pages = 2048;
  RecoveryOptions recovery;
};

class Database {
 public:
  struct Stats {
    rlsim::Counter commits;
    rlsim::Counter aborts;
    rlsim::Counter checkpoints;
    rlsim::Counter recovered_records;   // redo records replayed (post-horizon)
    rlsim::Counter redo_skipped_by_horizon;  // redo records a horizon retired
    rlsim::Counter redo_installed_ops;  // tree mutations the redo performed
    rlsim::Counter journal_header_reads;  // journal header page reads/recovery
    rlsim::Counter repaired_from_journal;
    rlsim::Counter prepares;            // durable 2PC yes-votes
    rlsim::Counter in_doubt_recovered;  // prepared txns rebuilt at recovery
    rlsim::Histogram commit_latency;  // ns, Commit() call to return
  };

  // Opens the database on the given devices, running recovery (journal
  // replay + WAL replay) or formatting a fresh database as appropriate.
  static rlsim::Task<std::unique_ptr<Database>> Open(
      rlsim::Simulator& sim, CpuContext& cpu, rlstor::BlockDevice& data_dev,
      rlstor::BlockDevice& log_dev, DbOptions options);

  ~Database();

  // Drains internal background work (pending checkpoint, WAL flusher) so the
  // object can be destroyed safely even after a crash or power fault left
  // I/O in flight. Client transactions that are parked forever (e.g. waiting
  // on durability that will never come) are abandoned — their frames are
  // reclaimed at simulator teardown.
  rlsim::Task<void> Close();

  // --- Transactions ----------------------------------------------------------

  uint64_t Begin();

  rlsim::Task<DbStatus> Get(uint64_t txn, uint64_t key,
                            std::vector<uint8_t>* value_out);
  rlsim::Task<DbStatus> Put(uint64_t txn, uint64_t key,
                            std::span<const uint8_t> value);
  rlsim::Task<DbStatus> Remove(uint64_t txn, uint64_t key);

  // Durably commits (in kSync mode the returned ack implies the commit
  // record is on stable storage — or buffered by RapiLog, which is the
  // paper's durability-equivalent). kLockTimeout is never returned here.
  rlsim::Task<DbStatus> Commit(uint64_t txn);

  // Aborts and forgets the transaction. A prepared transaction additionally
  // gets a best-effort kAbort record so the next recovery can skip re-doubt.
  rlsim::Task<void> Abort(uint64_t txn);

  // --- Two-phase commit (participant half; see src/shard) --------------------

  // Durably logs the transaction's write-set plus a prepare record carrying
  // `global_id`, keeps its locks, and votes yes by returning kOk. The
  // transaction then stays resident (pinning the WAL replay point) until a
  // coordinator decision arrives via CommitPrepared/Abort/ResolveInDoubt.
  rlsim::Task<DbStatus> Prepare(uint64_t txn, uint64_t global_id);

  // Applies the coordinator's commit decision to a prepared transaction:
  // durable commit record, then the write-set lands in the tree.
  rlsim::Task<DbStatus> CommitPrepared(uint64_t txn);

  // Global ids of every prepared-but-undecided transaction (recovered
  // in-doubt txns and live prepared ones alike), ascending.
  std::vector<uint64_t> InDoubtGlobalIds() const;

  // Routes a coordinator decision by global id (the recovery/resolver path,
  // where the local txn id of the old incarnation is meaningless). Returns
  // kTxnNotActive when no prepared txn carries `global_id` — already
  // resolved, decision already applied, or the prepare never became durable.
  rlsim::Task<DbStatus> ResolveInDoubt(uint64_t global_id, bool commit);

  // --- Maintenance -----------------------------------------------------------

  rlsim::Task<void> Checkpoint();

  // Non-transactional read of committed state (checkers/tests).
  rlsim::Task<bool> ReadCommitted(uint64_t key, std::vector<uint8_t>* out);
  rlsim::Task<uint64_t> CommittedCount();
  rlsim::Task<void> CheckTreeStructure();

  // FNV-1a over every (key, value) pair in ascending key order: the
  // canonical content fingerprint the recovery-equivalence oracles compare.
  // Deliberately independent of physical page layout — sequential and
  // partitioned redo produce different trees, identical contents.
  rlsim::Task<uint64_t> ContentHash();

  const Stats& stats() const { return stats_; }
  const LogWriter& log_writer() const { return *wal_; }
  LogWriter& log_writer() { return *wal_; }
  const BufferPool& pool() const { return *pool_; }
  const LockManager& locks() const { return *locks_; }
  const DbOptions& options() const { return options_; }
  uint64_t active_txns() const { return txns_.size(); }

 private:
  struct WriteOp {
    bool is_delete = false;
    uint64_t key = 0;
    std::vector<uint8_t> value;
  };
  struct Txn {
    uint64_t id = 0;
    uint64_t first_lsn = 0;  // 0 until the first record is logged
    std::vector<WriteOp> ops;
    bool committing = false;
    // 2PC: set once the prepare record is durable; the txn holds its locks
    // and pins the replay point until a decision arrives.
    bool prepared = false;
    // A decision (commit or abort) is being applied right now; duplicate
    // decisions arriving mid-apply must not double-apply the write-set.
    bool deciding = false;
    uint64_t global_id = 0;  // kPrepare record payload
  };

  Database(rlsim::Simulator& sim, CpuContext& cpu,
           rlstor::BlockDevice& data_dev, rlstor::BlockDevice& log_dev,
           DbOptions options);

  // A consistent snapshot taken under the apply mutex: sealed page images
  // plus the metadata describing them. Staging copies memory only (zero
  // simulated time), so commits never observe a checkpoint stall; the I/O
  // happens afterwards from the staged images.
  struct StagedCheckpoint {
    MetaContent meta;
    // Per-slice low-water LSNs: records at or below horizons[s] whose key
    // falls in slice s are fully captured by this checkpoint's page images,
    // so a later recovery may skip re-applying them.
    std::array<uint64_t, kRedoSlices> horizons{};
    std::vector<std::pair<BufferPool::Frame*, std::vector<uint8_t>>> pages;
  };

  // The journal header page, read and parsed once per recovery and shared by
  // every consumer (journal-replay decision, embedded metadata, fuzzy
  // horizons) — the page is never re-read.
  struct JournalHeaderInfo {
    bool valid = false;      // page present, CRC-clean, right type
    MetaContent meta;        // checkpoint metadata embedded in the header
    std::vector<uint64_t> page_ids;  // journaled page ids, slot order
    std::array<uint64_t, kRedoSlices> horizons{};  // per-slice low-water LSN
  };

  rlsim::Task<void> Recover();
  rlsim::Task<void> FormatFresh();
  rlsim::Task<std::optional<MetaContent>> ReadBestMeta();
  rlsim::Task<void> WriteMeta(const MetaContent& meta);
  rlsim::Task<JournalHeaderInfo> ReadJournalHeader();
  rlsim::Task<void> ReplayJournal(const JournalHeaderInfo& header);
  rlsim::Task<void> ApplyRecord(const LogRecord& rec);
  rlsim::Task<void> RedoSequential(const std::vector<LogRecord>& records,
                                   const std::vector<size_t>& candidates,
                                   const std::array<uint64_t, kRedoSlices>&
                                       horizons);
  rlsim::Task<void> RedoPartitioned(const std::vector<LogRecord>& records,
                                    const std::vector<size_t>& candidates,
                                    const std::array<uint64_t, kRedoSlices>&
                                        horizons);
  rlsim::Task<void> ThrottleDirtyPages();
  StagedCheckpoint StageCheckpoint();  // caller must hold apply_mutex_
  rlsim::Task<void> PersistCheckpoint(StagedCheckpoint staged);
  rlsim::Task<void> CheckpointLocked();
  void MaybeScheduleCheckpoint();

  rlsim::Simulator& sim_;
  CpuContext& cpu_;
  rlstor::BlockDevice& data_dev_;
  rlstor::BlockDevice& log_dev_;
  DbOptions options_;

  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LogWriter> wal_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<BTree> tree_;

  MetaContent meta_;            // current (in-memory) metadata
  uint64_t root_ = 0;           // live tree root
  uint64_t next_free_page_ = 0; // page allocator watermark

  uint64_t next_txn_id_ = 1;
  std::map<uint64_t, Txn> txns_;

  // Dirty-page throttling: commits stall once this many pages are dirty,
  // until a checkpoint retires them. Derived from the journal header's id
  // capacity and the pool size.
  uint32_t dirty_throttle_pages_ = 0;
  // Set by Close(): parked client operations unwind with EngineHalted.
  bool closing_ = false;

  // Serialises tree mutation (commit apply) against checkpoints.
  std::unique_ptr<rlsim::SimMutex> apply_mutex_;
  // Serialises whole checkpoints against each other.
  std::unique_ptr<rlsim::SimMutex> checkpoint_mutex_;
  bool checkpoint_pending_ = false;
  std::unique_ptr<rlsim::WaitQueue> checkpoint_done_;

  Stats stats_;
};

}  // namespace rldb

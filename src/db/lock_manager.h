// Per-key exclusive lock table with FIFO queuing and a timeout safety net
// (the engine aborts a transaction whose lock wait times out, which also
// breaks any deadlock cycle).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"

namespace rldb {

class LockManager {
 public:
  struct Stats {
    rlsim::Counter acquisitions;
    rlsim::Counter waits;
    rlsim::Counter timeouts;
    rlsim::Histogram wait_time;  // ns, only for waits
  };

  LockManager(rlsim::Simulator& sim, rlsim::Duration timeout);

  // Acquires the exclusive lock on `key` for `txn_id`. Re-entrant for the
  // holder. Returns false on timeout (caller must abort the transaction).
  rlsim::Task<bool> Acquire(uint64_t txn_id, uint64_t key);

  // Releases every lock held by the transaction.
  void ReleaseAll(uint64_t txn_id);

  // Engine teardown: every queued waiter is woken with "denied" so no
  // coroutine stays parked inside this object (or resumes into it later via
  // its timeout event) after the engine is destroyed.
  void Shutdown();

  size_t held_count(uint64_t txn_id) const;
  const Stats& stats() const { return stats_; }

 private:
  struct Waiter {
    uint64_t txn_id;
    std::shared_ptr<rlsim::Completion<bool>> granted;
  };
  struct LockEntry {
    uint64_t holder = 0;  // 0 = free
    std::deque<Waiter> waiters;
  };

  void Release(uint64_t txn_id, uint64_t key);

  rlsim::Simulator& sim_;
  rlsim::Duration timeout_;
  std::unordered_map<uint64_t, LockEntry> table_;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> held_;
  Stats stats_;
};

}  // namespace rldb

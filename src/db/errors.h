// Engine-level failure signalling.
#pragma once

#include <exception>

namespace rldb {

// Thrown when the engine cannot continue because its devices stopped
// responding (power loss under the machine). Workload drivers catch this —
// together with rlvmm::GuestCrashed — as "the machine died"; recovery then
// happens through a fresh Database::Open.
class EngineHalted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "storage engine halted: device failure (power loss)";
  }
};

}  // namespace rldb

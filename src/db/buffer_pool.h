// Buffer pool: fixed set of page frames over the data device.
//
// Eviction policy is CLOCK over *clean, unpinned* frames only: dirty pages
// are never written back individually (in-place page writes happen solely
// inside the journaled checkpoint, which is what makes recovery see a
// structurally consistent B+-tree — see Database::Checkpoint). The engine
// checkpoints before the dirty set can exhaust the pool.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/storage/block_device.h"

namespace rldb {

class BufferPool {
 public:
  struct Frame {
    uint64_t page_id = 0;
    bool valid = false;
    bool dirty = false;
    // Set while a checkpoint has staged this frame's image but not yet
    // persisted it in place: the frame must not be evicted (a re-fetch from
    // the device would resurrect the pre-checkpoint version).
    bool in_checkpoint = false;
    int pins = 0;
    bool referenced = false;  // CLOCK bit
    std::vector<uint8_t> data;
  };

  struct Stats {
    rlsim::Counter fetches;
    rlsim::Counter hits;
    rlsim::Counter misses;
    rlsim::Counter evictions;
    rlsim::Counter page_reads;
    rlsim::Counter page_writes;
    rlsim::Histogram read_latency;  // ns, device reads only
  };

  BufferPool(rlsim::Simulator& sim, rlstor::BlockDevice& device,
             uint32_t page_bytes, uint32_t frame_count);

  // Pins the page (reading it from the device on a miss). Page contents are
  // CRC-validated on read; a mismatch is a fatal CheckFailure (recovery must
  // repair pages before the pool touches them).
  rlsim::Task<Frame*> Fetch(uint64_t page_id);

  // Pins a fresh all-zero frame for a newly allocated page (no device read).
  Frame* Create(uint64_t page_id);

  void Unpin(Frame* frame, bool mark_dirty);

  // Pinned lookup without I/O; nullptr if not resident.
  Frame* FindResident(uint64_t page_id);

  // All dirty frames (checkpoint input).
  std::vector<Frame*> DirtyFrames();
  size_t dirty_count() const { return dirty_count_; }

  // Marks a frame clean (checkpoint wrote it out).
  void MarkClean(Frame* frame);

  // Drops every frame (crash simulation: the guest's memory is gone).
  void Reset();

  uint32_t page_bytes() const { return page_bytes_; }
  uint32_t frame_count() const { return static_cast<uint32_t>(frames_.size()); }
  const Stats& stats() const { return stats_; }

  // Direct device I/O helpers used by checkpoint/recovery (bypass frames).
  rlsim::Task<bool> WritePageDirect(uint64_t page_id,
                                    std::span<const uint8_t> image,
                                    bool fua);
  rlsim::Task<bool> ReadPageDirect(uint64_t page_id,
                                   std::span<uint8_t> out);
  rlstor::BlockDevice& device() { return device_; }

 private:
  Frame* EvictOne();

  rlsim::Simulator& sim_;
  rlstor::BlockDevice& device_;
  uint32_t page_bytes_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> page_to_frame_;
  // In-flight reads so concurrent fetches of one page issue one device read.
  std::unordered_map<uint64_t, std::shared_ptr<rlsim::Completion<bool>>>
      pending_reads_;
  size_t clock_hand_ = 0;
  size_t dirty_count_ = 0;
  Stats stats_;
};

}  // namespace rldb

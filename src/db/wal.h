// Write-ahead log: record format, group-committing writer, and the recovery
// reader.
//
// The log is a sequence of fixed-size blocks on the log device. Each block
// carries {magic, block index, used bytes, crc}; records are packed
// back-to-back in the payload and never span blocks. The writer keeps a
// partially-filled tail block and rewrites it as records accumulate — the
// access pattern whose synchronous-durability cost RapiLog eliminates.
//
// Recovery scans blocks from a checkpoint-recorded start until the first
// invalid block; because commits are only acknowledged after a device flush
// (or a RapiLog ack), every acknowledged commit lies inside the valid
// prefix.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/db/profile.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/storage/block_device.h"

namespace rldb {

enum class LogRecordType : uint8_t {
  kUpdate = 1,
  kDelete = 2,
  kCommit = 3,
  // Two-phase commit (src/shard): a participant's durable yes-vote. The
  // record's `key` field carries the distributed transaction's global id.
  // A prepared transaction whose decision is unknown at recovery is held
  // in doubt (locks re-acquired, writes unapplied) until the coordinator
  // answers — or presumed aborted when the coordinator has no decision.
  kPrepare = 4,
  // A resolved abort for a previously-prepared transaction. Best-effort
  // (never waited on): losing it only means the transaction re-enters doubt
  // at the next recovery and is presumed-aborted again.
  kAbort = 5,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kUpdate;
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  uint64_t key = 0;  // kUpdate/kDelete: row key; kPrepare/kAbort: global id
  std::vector<uint8_t> value;  // kUpdate only
};

// Wire encoding: [u32 payload_len][payload][u32 crc(payload)], where
// payload = [u8 type][u64 lsn][u64 txn][u64 key][u16 vlen][value].
std::vector<uint8_t> EncodeRecord(const LogRecord& rec);
// Decodes one record at `offset`; advances `offset`. Returns nullopt at a
// clean end (not enough bytes for another record).
std::optional<LogRecord> DecodeRecord(std::span<const uint8_t> buf,
                                      size_t* offset);

class LogWriter {
 public:
  struct Stats {
    rlsim::Counter records_appended;
    rlsim::Counter flush_cycles;
    rlsim::Counter blocks_written;
    rlsim::Counter bytes_written;
    rlsim::Histogram flush_latency;     // ns per device flush cycle
    rlsim::Histogram commit_wait;       // ns a WaitDurable spent blocked
    rlsim::Histogram records_per_cycle;
  };

  LogWriter(rlsim::Simulator& sim, rlstor::BlockDevice& device,
            const EngineProfile& profile, DurabilityMode durability);

  // Continues an existing log (after recovery): next block index and LSN.
  void ResumeAt(uint64_t next_block, uint64_t next_lsn);

  // Assigns the record's LSN, buffers it, and returns the LSN.
  uint64_t Append(LogRecord rec);

  // Blocks until everything up to and including `lsn` is on stable storage
  // (in kAsyncUnsafe mode this returns immediately — that is the unsafety).
  rlsim::Task<void> WaitDurable(uint64_t lsn);

  // Forces everything appended so far to stable storage (checkpoint path).
  rlsim::Task<void> Force();

  // Initiates shutdown without blocking: parked durability waiters are woken
  // and unwind with EngineHalted; the flusher exits its loop.
  void BeginShutdown();

  // BeginShutdown() plus waiting for the flusher to exit (including any
  // in-flight device I/O). Must complete before the LogWriter is destroyed
  // if the writer was ever used on a device that can stall mid-request.
  rlsim::Task<void> Shutdown();

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t durable_lsn() const { return durable_lsn_; }
  // True once a flush cycle failed (device off, I/O error, guest death).
  // The writer is then permanently dead: durability can never be promised
  // again on this incarnation, because blocks dropped by the failed cycle
  // would leave holes behind any later durable_lsn advance. Waiters unwind
  // with EngineHalted; the harness recovers by reopening the database.
  bool halted() const { return halted_; }
  // Block that would hold the next appended record (checkpoint replay start).
  uint64_t current_block_index() const { return tail_index_; }

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  rlsim::Task<void> FlusherLoop();
  size_t PayloadCapacity() const;
  void SealTail();
  std::vector<uint8_t> RenderBlock(uint64_t index,
                                   std::span<const uint8_t> payload) const;

  rlsim::Simulator& sim_;
  rlstor::BlockDevice& device_;
  EngineProfile profile_;
  DurabilityMode durability_;

  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  uint64_t appended_lsn_ = 0;

  struct SealedBlock {
    uint64_t index;
    std::vector<uint8_t> payload;
  };
  std::deque<SealedBlock> sealed_;
  uint64_t tail_index_ = 0;
  std::vector<uint8_t> tail_payload_;
  bool tail_written_since_change_ = false;

  bool flush_in_progress_ = false;
  bool shutdown_ = false;
  bool halted_ = false;
  bool flusher_exited_ = false;
  rlsim::WaitQueue work_wake_;
  rlsim::WaitQueue durable_wake_;
  rlsim::WaitQueue exited_wake_;

  Stats stats_;
};

// Result of scanning the log at recovery.
struct LogScanResult {
  std::vector<LogRecord> records;  // in LSN order
  uint64_t next_block = 0;         // first invalid/unwritten block
  uint64_t next_lsn = 1;           // 1 + highest LSN seen
};

// Reads the valid prefix of the log starting at `start_block`.
rlsim::Task<LogScanResult> ScanLog(rlstor::BlockDevice& device,
                                   const EngineProfile& profile,
                                   uint64_t start_block);

}  // namespace rldb

// Persisted B+-tree over the buffer pool.
//
// Keys are uint64 (callers encode a table id in the high bits); values are
// fixed-size byte slots (EngineProfile::value_bytes). Leaves are chained for
// range scans. Deletions leave nodes underfull rather than merging (the
// usual engineering simplification; documented in DESIGN.md).
//
// Node layout inside a page (after the 32-byte page header):
//   leaf:      n entries of [key u64][value V bytes]
//   internal:  child0 u64, then n entries of [key u64][child u64];
//              subtree under child i holds keys < key[i] (and >= key[i-1]).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/db/buffer_pool.h"
#include "src/sim/task.h"

namespace rldb {

class BTree {
 public:
  // `next_free_page` is the engine's page allocator watermark; the tree
  // bumps it when it needs new pages.
  BTree(BufferPool& pool, uint32_t value_bytes, uint64_t* next_free_page);

  // Allocates an empty root leaf; returns its page id.
  uint64_t CreateEmpty();

  // Returns false if the key is absent.
  rlsim::Task<bool> Get(uint64_t root, uint64_t key,
                        std::vector<uint8_t>* value_out);

  // Inserts or overwrites. Returns the (possibly new) root page id.
  rlsim::Task<uint64_t> Put(uint64_t root, uint64_t key,
                            std::span<const uint8_t> value);

  // Removes the key if present. Returns the root (unchanged structure).
  rlsim::Task<uint64_t> Remove(uint64_t root, uint64_t key);

  // Visits entries with from <= key <= to in order; the visitor returns
  // false to stop early.
  rlsim::Task<void> Scan(
      uint64_t root, uint64_t from, uint64_t to,
      const std::function<bool(uint64_t, std::span<const uint8_t>)>& visit);

  // Total number of entries (full leaf walk; tests/checkers only).
  rlsim::Task<uint64_t> Count(uint64_t root);

  // Structural invariant check: key ordering within and across nodes, child
  // separators, leaf-chain order. Throws CheckFailure on violation.
  rlsim::Task<void> CheckStructure(uint64_t root);

  uint32_t leaf_capacity() const { return leaf_capacity_; }
  uint32_t internal_capacity() const { return internal_capacity_; }

 private:
  struct PathEntry {
    uint64_t page_id;
    uint32_t child_index;
  };

  uint64_t AllocPage();
  rlsim::Task<uint64_t> DescendToLeaf(uint64_t root, uint64_t key,
                                      std::vector<PathEntry>* path);
  rlsim::Task<uint64_t> InsertIntoParents(uint64_t root,
                                          std::vector<PathEntry> path,
                                          uint64_t sep_key,
                                          uint64_t new_child);

  BufferPool& pool_;
  uint32_t value_bytes_;
  uint64_t* next_free_page_;
  uint32_t leaf_capacity_;
  uint32_t internal_capacity_;
};

}  // namespace rldb

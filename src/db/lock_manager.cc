#include "src/db/lock_manager.h"

#include "src/sim/check.h"
#include "src/sim/ordered.h"

namespace rldb {

using rlsim::Task;

LockManager::LockManager(rlsim::Simulator& sim, rlsim::Duration timeout)
    : sim_(sim), timeout_(timeout) {}

Task<bool> LockManager::Acquire(uint64_t txn_id, uint64_t key) {
  RL_CHECK(txn_id != 0);
  LockEntry& entry = table_[key];
  if (entry.holder == txn_id) {
    co_return true;  // re-entrant
  }
  if (entry.holder == 0 && entry.waiters.empty()) {
    entry.holder = txn_id;
    held_[txn_id].insert(key);
    stats_.acquisitions.Add();
    co_return true;
  }

  stats_.waits.Add();
  const rlsim::TimePoint start = sim_.now();
  auto granted = std::make_shared<rlsim::Completion<bool>>(sim_);
  entry.waiters.push_back(Waiter{txn_id, granted});
  sim_.Schedule(timeout_, [granted] {
    if (!granted->completed()) {
      granted->Complete(false);
    }
  });
  const bool ok = co_await granted->Wait();
  stats_.wait_time.RecordDuration(sim_.now() - start);
  if (!ok) {
    // Timed out: remove ourselves from the queue if still there.
    LockEntry& e = table_[key];
    for (auto it = e.waiters.begin(); it != e.waiters.end(); ++it) {
      if (it->granted == granted) {
        e.waiters.erase(it);
        break;
      }
    }
    stats_.timeouts.Add();
    co_return false;
  }
  // Release() handed us the lock and already updated the tables.
  co_return true;
}

void LockManager::Release(uint64_t txn_id, uint64_t key) {
  auto it = table_.find(key);
  RL_CHECK(it != table_.end());
  LockEntry& entry = it->second;
  RL_CHECK_MSG(entry.holder == txn_id, "releasing a lock held by another txn");
  entry.holder = 0;
  while (!entry.waiters.empty()) {
    Waiter w = entry.waiters.front();
    entry.waiters.pop_front();
    if (w.granted->completed()) {
      continue;  // timed out while queued
    }
    entry.holder = w.txn_id;
    held_[w.txn_id].insert(key);
    stats_.acquisitions.Add();
    w.granted->Complete(true);
    return;
  }
  if (entry.waiters.empty() && entry.holder == 0) {
    table_.erase(it);
  }
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  const auto it = held_.find(txn_id);
  if (it == held_.end()) {
    return;
  }
  // Release in ascending key order: Release() hands each lock to the next
  // waiter, so hash-iteration order here would decide which blocked
  // transactions wake first — an ordering leak into the event stream.
  const std::vector<uint64_t> keys = rlsim::SortedKeys(it->second);
  held_.erase(it);
  for (uint64_t key : keys) {
    Release(txn_id, key);
  }
}

void LockManager::Shutdown() {
  // Sorted snapshot: completing a waiter schedules its wakeup, so the
  // completion order must not follow hash-table iteration order.
  for (const uint64_t key : rlsim::SortedKeys(table_)) {
    for (Waiter& w : table_.at(key).waiters) {
      if (!w.granted->completed()) {
        w.granted->Complete(false);
      }
    }
  }
}

size_t LockManager::held_count(uint64_t txn_id) const {
  const auto it = held_.find(txn_id);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace rldb

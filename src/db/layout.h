// On-disk layout of the data device and helpers for page headers and the
// metadata sectors.
//
// Data device:
//   sector 0, 1        — two alternating metadata slots (pick highest valid
//                        sequence number at open; a torn meta write leaves
//                        the other slot intact)
//   page 0             — checkpoint-journal header page
//   pages 1..J-1       — checkpoint-journal data pages (page images)
//   pages J..          — B+-tree pages
// where page p starts at sector kFirstPageSector + p * (page_bytes / 512).
//
// Every page embeds {page_id, crc} in its header so torn pages are detected
// at read time and repairable from the checkpoint journal.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/crc32.h"
#include "src/storage/block.h"

namespace rldb {

inline constexpr uint64_t kMetaSectorA = 0;
inline constexpr uint64_t kMetaSectorB = 1;
inline constexpr uint64_t kFirstPageSector = 16;

// Page types.
enum class PageType : uint8_t {
  kFree = 0,
  kLeaf = 1,
  kInternal = 2,
  kJournalHeader = 3,
  kJournalData = 4,
};

// Fixed 32-byte page header.
struct PageHeader {
  uint64_t page_id = 0;
  uint32_t crc = 0;  // over the page with this field zeroed
  PageType type = PageType::kFree;
  uint8_t level = 0;
  uint16_t nkeys = 0;
  uint64_t next_leaf = 0;
};

inline constexpr size_t kPageHeaderBytes = 32;

// Little-endian scalar accessors.
template <typename T>
T LoadScalar(std::span<const uint8_t> buf, size_t offset) {
  T v;
  RL_CHECK(offset + sizeof(T) <= buf.size());
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  return v;
}

template <typename T>
void StoreScalar(std::span<uint8_t> buf, size_t offset, T v) {
  RL_CHECK(offset + sizeof(T) <= buf.size());
  std::memcpy(buf.data() + offset, &v, sizeof(T));
}

inline PageHeader ReadPageHeader(std::span<const uint8_t> page) {
  PageHeader h;
  h.page_id = LoadScalar<uint64_t>(page, 0);
  h.crc = LoadScalar<uint32_t>(page, 8);
  h.type = static_cast<PageType>(LoadScalar<uint8_t>(page, 12));
  h.level = LoadScalar<uint8_t>(page, 13);
  h.nkeys = LoadScalar<uint16_t>(page, 14);
  h.next_leaf = LoadScalar<uint64_t>(page, 16);
  return h;
}

inline void WritePageHeader(std::span<uint8_t> page, const PageHeader& h) {
  StoreScalar<uint64_t>(page, 0, h.page_id);
  StoreScalar<uint32_t>(page, 8, h.crc);
  StoreScalar<uint8_t>(page, 12, static_cast<uint8_t>(h.type));
  StoreScalar<uint8_t>(page, 13, h.level);
  StoreScalar<uint16_t>(page, 14, h.nkeys);
  StoreScalar<uint64_t>(page, 16, h.next_leaf);
}

// Computes the page CRC with the stored crc field treated as zero.
inline uint32_t ComputePageCrc(std::span<const uint8_t> page) {
  uint32_t crc = rlsim::Crc32c(page.subspan(0, 8));
  const uint32_t zero = 0;
  crc = rlsim::Crc32c(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&zero), 4),
      crc);
  crc = rlsim::Crc32c(page.subspan(12), crc);
  return crc;
}

// Stamps page_id + crc into the page image (call just before writing out).
inline void SealPage(std::span<uint8_t> page, uint64_t page_id) {
  StoreScalar<uint64_t>(page, 0, page_id);
  StoreScalar<uint32_t>(page, 8, 0);
  StoreScalar<uint32_t>(page, 8, ComputePageCrc(page));
}

inline bool PageValid(std::span<const uint8_t> page, uint64_t expect_id) {
  const PageHeader h = ReadPageHeader(page);
  return h.page_id == expect_id && h.crc == ComputePageCrc(page);
}

// Database metadata, persisted in a 512-byte sector slot.
struct MetaContent {
  uint64_t seq = 0;              // checkpoint sequence number
  uint64_t root_page = 0;        // 0 = empty tree
  uint64_t next_free_page = 0;   // page allocator watermark
  uint64_t replay_block = 0;     // first log block recovery must scan
  uint64_t replay_lsn = 0;       // informational lower bound
  uint32_t page_bytes = 0;       // engine page size (sanity-checked at open)
};

inline std::vector<uint8_t> SerializeMeta(const MetaContent& m) {
  std::vector<uint8_t> buf(rlstor::kSectorSize, 0);
  StoreScalar<uint32_t>(buf, 0, 0x524C4442);  // "RLDB"
  StoreScalar<uint64_t>(buf, 4, m.seq);
  StoreScalar<uint64_t>(buf, 12, m.root_page);
  StoreScalar<uint64_t>(buf, 20, m.next_free_page);
  StoreScalar<uint64_t>(buf, 28, m.replay_block);
  StoreScalar<uint64_t>(buf, 36, m.replay_lsn);
  StoreScalar<uint32_t>(buf, 44, m.page_bytes);
  const uint32_t crc =
      rlsim::Crc32c(std::span<const uint8_t>(buf.data(), 48));
  StoreScalar<uint32_t>(buf, 48, crc);
  return buf;
}

inline std::optional<MetaContent> DeserializeMeta(
    std::span<const uint8_t> buf) {
  if (buf.size() < 52 || LoadScalar<uint32_t>(buf, 0) != 0x524C4442) {
    return std::nullopt;
  }
  const uint32_t crc = rlsim::Crc32c(buf.subspan(0, 48));
  if (crc != LoadScalar<uint32_t>(buf, 48)) {
    return std::nullopt;
  }
  MetaContent m;
  m.seq = LoadScalar<uint64_t>(buf, 4);
  m.root_page = LoadScalar<uint64_t>(buf, 12);
  m.next_free_page = LoadScalar<uint64_t>(buf, 20);
  m.replay_block = LoadScalar<uint64_t>(buf, 28);
  m.replay_lsn = LoadScalar<uint64_t>(buf, 36);
  m.page_bytes = LoadScalar<uint32_t>(buf, 44);
  return m;
}

// First sector of page `page_id`.
inline uint64_t PageLba(uint64_t page_id, uint32_t page_bytes) {
  return kFirstPageSector + page_id * (page_bytes / rlstor::kSectorSize);
}

// --- Redo partitioning -------------------------------------------------------
//
// Redo records are partitioned by a fixed hash of the row key into
// kRedoSlices slices; a recovery with K redo streams groups the slices into
// K contiguous ranges. The slice count is an on-disk constant: the journal
// header page persists one low-water LSN per slice (the "fuzzy horizon"),
// so it cannot change without a format change.
inline constexpr uint32_t kRedoSlices = 64;

// Deterministic key -> slice map (splitmix-style finalizer). Must be stable
// across builds and platforms: the persisted per-slice horizons are only
// meaningful if recovery buckets keys exactly as the checkpoint did.
inline uint32_t RedoSliceOf(uint64_t key) {
  uint64_t x = key + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x & (kRedoSlices - 1));
}

}  // namespace rldb

#include "src/db/wal.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/db/errors.h"
#include "src/db/layout.h"
#include "src/sim/check.h"
#include "src/sim/crc32.h"

namespace rldb {

using rlsim::Duration;
using rlsim::Task;
using rlsim::TimePoint;
using rlstor::BlockStatus;
using rlstor::kSectorSize;

namespace {

constexpr uint32_t kBlockMagic = 0x524C574C;  // "RLWL"
constexpr size_t kBlockHeaderBytes = 32;

// Block header: [u32 magic][u64 index][u16 used][u32 crc(payload[0..used))],
// rest of the 32 bytes reserved.

}  // namespace

std::vector<uint8_t> EncodeRecord(const LogRecord& rec) {
  const uint16_t vlen = static_cast<uint16_t>(rec.value.size());
  const uint32_t payload_len = 1 + 8 + 8 + 8 + 2 + vlen;
  std::vector<uint8_t> buf(4 + payload_len + 4);
  StoreScalar<uint32_t>(buf, 0, payload_len);
  StoreScalar<uint8_t>(buf, 4, static_cast<uint8_t>(rec.type));
  StoreScalar<uint64_t>(buf, 5, rec.lsn);
  StoreScalar<uint64_t>(buf, 13, rec.txn_id);
  StoreScalar<uint64_t>(buf, 21, rec.key);
  StoreScalar<uint16_t>(buf, 29, vlen);
  std::copy(rec.value.begin(), rec.value.end(), buf.begin() + 31);
  const uint32_t crc = rlsim::Crc32c(
      std::span<const uint8_t>(buf.data() + 4, payload_len));
  StoreScalar<uint32_t>(buf, 4 + payload_len, crc);
  return buf;
}

std::optional<LogRecord> DecodeRecord(std::span<const uint8_t> buf,
                                      size_t* offset) {
  if (*offset + 4 > buf.size()) {
    return std::nullopt;
  }
  const uint32_t payload_len = LoadScalar<uint32_t>(buf, *offset);
  if (payload_len < 27 || *offset + 4 + payload_len + 4 > buf.size()) {
    return std::nullopt;
  }
  const auto payload = buf.subspan(*offset + 4, payload_len);
  const uint32_t crc = LoadScalar<uint32_t>(buf, *offset + 4 + payload_len);
  if (rlsim::Crc32c(payload) != crc) {
    return std::nullopt;
  }
  LogRecord rec;
  rec.type = static_cast<LogRecordType>(payload[0]);
  rec.lsn = LoadScalar<uint64_t>(payload, 1);
  rec.txn_id = LoadScalar<uint64_t>(payload, 9);
  rec.key = LoadScalar<uint64_t>(payload, 17);
  const uint16_t vlen = LoadScalar<uint16_t>(payload, 25);
  if (27u + vlen != payload_len) {
    return std::nullopt;
  }
  rec.value.assign(payload.begin() + 27, payload.begin() + 27 + vlen);
  *offset += 4 + payload_len + 4;
  return rec;
}

LogWriter::LogWriter(rlsim::Simulator& sim, rlstor::BlockDevice& device,
                     const EngineProfile& profile, DurabilityMode durability)
    : sim_(sim),
      device_(device),
      profile_(profile),
      durability_(durability),
      work_wake_(sim),
      durable_wake_(sim),
      exited_wake_(sim) {
  RL_CHECK(profile_.log_block_bytes % kSectorSize == 0);
  RL_CHECK(profile_.log_block_bytes > kBlockHeaderBytes + 64);
  sim_.Spawn(FlusherLoop(), "wal-flusher");
}

void LogWriter::ResumeAt(uint64_t next_block, uint64_t next_lsn) {
  RL_CHECK(sealed_.empty() && tail_payload_.empty());
  tail_index_ = next_block;
  next_lsn_ = next_lsn;
  durable_lsn_ = next_lsn - 1;
  appended_lsn_ = next_lsn - 1;
}

size_t LogWriter::PayloadCapacity() const {
  return profile_.log_block_bytes - kBlockHeaderBytes;
}

void LogWriter::SealTail() {
  sealed_.push_back(SealedBlock{tail_index_, std::move(tail_payload_)});
  tail_payload_.clear();
  ++tail_index_;
}

uint64_t LogWriter::Append(LogRecord rec) {
  rec.lsn = next_lsn_++;
  const std::vector<uint8_t> wire = EncodeRecord(rec);
  RL_CHECK_MSG(wire.size() <= PayloadCapacity(),
               "log record larger than a log block");
  if (tail_payload_.size() + wire.size() > PayloadCapacity()) {
    SealTail();
  }
  tail_payload_.insert(tail_payload_.end(), wire.begin(), wire.end());
  appended_lsn_ = rec.lsn;
  stats_.records_appended.Add();
  work_wake_.NotifyAll();
  return rec.lsn;
}

Task<void> LogWriter::WaitDurable(uint64_t lsn) {
  if (durability_ == DurabilityMode::kAsyncUnsafe) {
    co_return;  // the unsafe fast path: trust that the flusher catches up
  }
  rlsim::SpanScope span(sim_, "wal", "commit-wait",
                        static_cast<int64_t>(lsn));
  const TimePoint start = sim_.now();
  work_wake_.NotifyAll();
  while (durable_lsn_ < lsn) {
    if (shutdown_ || halted_) {
      throw EngineHalted();
    }
    co_await durable_wake_.Wait();
  }
  stats_.commit_wait.RecordDuration(sim_.now() - start);
}

Task<void> LogWriter::Force() {
  const uint64_t target = appended_lsn_;
  work_wake_.NotifyAll();
  while (durable_lsn_ < target) {
    if (shutdown_ || halted_) {
      throw EngineHalted();
    }
    co_await durable_wake_.Wait();
  }
}

std::vector<uint8_t> LogWriter::RenderBlock(
    uint64_t index, std::span<const uint8_t> payload) const {
  std::vector<uint8_t> block(profile_.log_block_bytes, 0);
  StoreScalar<uint32_t>(block, 0, kBlockMagic);
  StoreScalar<uint64_t>(block, 4, index);
  StoreScalar<uint16_t>(block, 12, static_cast<uint16_t>(payload.size()));
  StoreScalar<uint32_t>(block, 14, rlsim::Crc32c(payload));
  std::copy(payload.begin(), payload.end(),
            block.begin() + kBlockHeaderBytes);
  return block;
}

void LogWriter::BeginShutdown() {
  shutdown_ = true;
  durable_wake_.NotifyAll();
  work_wake_.NotifyAll();
}

Task<void> LogWriter::Shutdown() {
  BeginShutdown();
  while (!flusher_exited_) {
    co_await exited_wake_.Wait();
  }
}

Task<void> LogWriter::FlusherLoop() {
  while (!shutdown_) {
    const bool work_pending = durable_lsn_ < appended_lsn_;
    if (!work_pending) {
      co_await work_wake_.Wait();
      continue;
    }
    if (durability_ == DurabilityMode::kAsyncUnsafe) {
      co_await sim_.Sleep(profile_.async_flush_interval);
    } else if (profile_.group_commit_window > Duration::Zero()) {
      co_await sim_.Sleep(profile_.group_commit_window);
    }
    if (shutdown_) {
      // Teardown began while we were batching: abandon the cycle. Close() is
      // a post-fault teardown, not a clean flush — pending bytes represent
      // volatile state that the simulated crash already destroyed.
      break;
    }
    const TimePoint cycle_start = sim_.now();
    const uint64_t flush_upto = appended_lsn_;
    const int64_t durable_before = static_cast<int64_t>(durable_lsn_);
    // End arg: how many records this cycle made durable (0 if it halted).
    rlsim::SpanScope cycle_span(sim_, "wal", "flush-cycle", 0);

    // Snapshot what must go out: all sealed blocks plus the current tail.
    std::vector<SealedBlock> batch;
    while (!sealed_.empty()) {
      batch.push_back(std::move(sealed_.front()));
      sealed_.pop_front();
    }
    const uint64_t tail_index_snapshot = tail_index_;
    const std::vector<uint8_t> tail_snapshot = tail_payload_;

    bool ok = true;
    const uint64_t sectors_per_block =
        profile_.log_block_bytes / kSectorSize;
    // The flusher must survive the machine dying under it (device failure,
    // or a guest crash unwinding a paravirtual request): the failure halts
    // the writer instead of propagating.
    try {
      for (const SealedBlock& sb : batch) {
        const std::vector<uint8_t> img = RenderBlock(sb.index, sb.payload);
        const BlockStatus st =
            co_await device_.Write(sb.index * sectors_per_block, img, false);
        ok = ok && st == BlockStatus::kOk;
        stats_.blocks_written.Add();
        stats_.bytes_written.Add(static_cast<int64_t>(img.size()));
      }
      if (!tail_snapshot.empty()) {
        const std::vector<uint8_t> img =
            RenderBlock(tail_index_snapshot, tail_snapshot);
        const BlockStatus st = co_await device_.Write(
            tail_index_snapshot * sectors_per_block, img, false);
        ok = ok && st == BlockStatus::kOk;
        stats_.blocks_written.Add();
        stats_.bytes_written.Add(static_cast<int64_t>(img.size()));
      }
      if (ok) {
        const BlockStatus st = co_await device_.Flush();
        ok = st == BlockStatus::kOk;
      }
    } catch (...) {
      ok = false;
    }
    if (ok) {
      durable_lsn_ = flush_upto;
      stats_.flush_cycles.Add();
      stats_.flush_latency.RecordDuration(sim_.now() - cycle_start);
      stats_.records_per_cycle.Record(static_cast<int64_t>(flush_upto) -
                                      durable_before);
      cycle_span.set_end_arg(static_cast<int64_t>(flush_upto) -
                             durable_before);
      durable_wake_.NotifyAll();
    } else {
      // Device unavailable (power loss, injected I/O fault, guest death).
      // The batch moved out of sealed_ above is gone; retrying a later cycle
      // would advance durable_lsn_ over blocks that were never written. The
      // only safe outcome is a permanent halt: waiters unwind with
      // EngineHalted and the harness reopens the database, whose recovery
      // scan re-establishes the true durable prefix.
      halted_ = true;
      durable_wake_.NotifyAll();
      break;
    }
  }
  flusher_exited_ = true;
  exited_wake_.NotifyAll();
}

Task<LogScanResult> ScanLog(rlstor::BlockDevice& device,
                            const EngineProfile& profile,
                            uint64_t start_block) {
  LogScanResult result;
  result.next_block = start_block;
  const uint64_t sectors_per_block = profile.log_block_bytes / kSectorSize;
  std::vector<uint8_t> block(profile.log_block_bytes);
  for (uint64_t index = start_block;; ++index) {
    const uint64_t lba = index * sectors_per_block;
    if (lba + sectors_per_block > device.geometry().sector_count) {
      break;
    }
    const BlockStatus st = co_await device.Read(lba, block);
    if (st != BlockStatus::kOk) {
      break;
    }
    if (LoadScalar<uint32_t>(block, 0) != kBlockMagic ||
        LoadScalar<uint64_t>(block, 4) != index) {
      break;
    }
    const size_t capacity = profile.log_block_bytes - kBlockHeaderBytes;
    const uint16_t used = std::min<uint16_t>(
        LoadScalar<uint16_t>(block, 12), static_cast<uint16_t>(capacity));
    const auto payload =
        std::span<const uint8_t>(block.data() + kBlockHeaderBytes, used);
    const bool block_crc_ok =
        rlsim::Crc32c(payload) == LoadScalar<uint32_t>(block, 14);
    // Whether or not the block checksum holds, salvage the valid record
    // prefix (records carry their own CRCs). A torn in-place rewrite of the
    // tail block leaves exactly the old, previously-durable prefix intact —
    // payload bytes are append-only within a block — so acknowledged
    // records survive even when the block-level CRC does not.
    size_t offset = 0;
    while (auto rec = DecodeRecord(payload, &offset)) {
      result.next_lsn = std::max(result.next_lsn, rec->lsn + 1);
      result.records.push_back(std::move(*rec));
    }
    result.next_block = index + 1;
    if (!block_crc_ok) {
      break;  // torn tail: the log ends here
    }
  }
  co_return result;
}

}  // namespace rldb

// Where the engine's CPU work is charged: directly to the simulator when
// running "native", or to a VirtualMachine (overhead factor, crash unwinding)
// when running inside a guest.
#pragma once

#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/vmm/vm.h"

namespace rldb {

class CpuContext {
 public:
  virtual ~CpuContext() = default;
  virtual rlsim::Task<void> Compute(rlsim::Duration work) = 0;
};

class NativeCpu : public CpuContext {
 public:
  explicit NativeCpu(rlsim::Simulator& sim) : sim_(sim) {}

  rlsim::Task<void> Compute(rlsim::Duration work) override {
    co_await sim_.Sleep(work);
  }

 private:
  rlsim::Simulator& sim_;
};

class GuestCpu : public CpuContext {
 public:
  explicit GuestCpu(rlvmm::VirtualMachine& vm) : vm_(vm) {}

  rlsim::Task<void> Compute(rlsim::Duration work) override {
    co_await vm_.Compute(work);
  }

 private:
  rlvmm::VirtualMachine& vm_;
};

}  // namespace rldb

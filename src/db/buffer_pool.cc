#include "src/db/buffer_pool.h"

#include <algorithm>

#include "src/db/errors.h"
#include "src/db/layout.h"
#include "src/sim/check.h"

namespace rldb {

using rlsim::Task;
using rlstor::BlockStatus;

BufferPool::BufferPool(rlsim::Simulator& sim, rlstor::BlockDevice& device,
                       uint32_t page_bytes, uint32_t frame_count)
    : sim_(sim), device_(device), page_bytes_(page_bytes) {
  RL_CHECK(page_bytes_ % rlstor::kSectorSize == 0);
  RL_CHECK(frame_count >= 8);
  frames_.resize(frame_count);
  for (Frame& f : frames_) {
    f.data.resize(page_bytes_);
  }
}

BufferPool::Frame* BufferPool::FindResident(uint64_t page_id) {
  const auto it = page_to_frame_.find(page_id);
  if (it == page_to_frame_.end()) {
    return nullptr;
  }
  Frame* f = &frames_[it->second];
  ++f->pins;
  f->referenced = true;
  return f;
}

BufferPool::Frame* BufferPool::EvictOne() {
  // CLOCK over clean, unpinned, valid frames; invalid frames are free.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& f = frames_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % n;
    if (!f.valid) {
      return &f;
    }
    if (f.pins > 0 || f.dirty || f.in_checkpoint) {
      continue;
    }
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    page_to_frame_.erase(f.page_id);
    f.valid = false;
    stats_.evictions.Add();
    return &f;
  }
  RL_UNREACHABLE(
      "buffer pool exhausted: every frame is pinned or dirty — the engine "
      "must checkpoint before the dirty set fills the pool");
}

Task<BufferPool::Frame*> BufferPool::Fetch(uint64_t page_id) {
  stats_.fetches.Add();
  while (true) {
    if (Frame* f = FindResident(page_id)) {
      stats_.hits.Add();
      co_return f;
    }
    // Someone else already reading this page? Wait, then retry the lookup.
    if (auto it = pending_reads_.find(page_id); it != pending_reads_.end()) {
      auto completion = it->second;
      co_await completion->Wait();
      continue;
    }
    break;
  }
  stats_.misses.Add();
  auto completion = std::make_shared<rlsim::Completion<bool>>(sim_);
  pending_reads_.emplace(page_id, completion);

  Frame* f = EvictOne();
  const rlsim::TimePoint start = sim_.now();
  bool ok = false;
  try {
    ok = co_await ReadPageDirect(page_id, f->data);
  } catch (...) {
    // The machine died under the read (e.g. guest crash unwinding the
    // paravirtual request). Resolve the pending-read record so waiters do
    // not park forever on a completion nobody will ever fire — each retries
    // and unwinds through its own failure path.
    pending_reads_.erase(page_id);
    completion->Complete(false);
    throw;
  }
  if (!ok) {
    pending_reads_.erase(page_id);
    completion->Complete(false);
    throw EngineHalted();
  }
  RL_CHECK_MSG(PageValid(f->data, page_id),
               "corrupt page " << page_id
                               << " reached the buffer pool (recovery must "
                                  "repair pages first)");
  stats_.read_latency.RecordDuration(sim_.now() - start);
  stats_.page_reads.Add();

  f->page_id = page_id;
  f->valid = true;
  f->dirty = false;
  f->pins = 1;
  f->referenced = true;
  page_to_frame_[page_id] = static_cast<size_t>(f - frames_.data());
  pending_reads_.erase(page_id);
  completion->Complete(true);
  co_return f;
}

BufferPool::Frame* BufferPool::Create(uint64_t page_id) {
  RL_CHECK_MSG(page_to_frame_.find(page_id) == page_to_frame_.end(),
               "Create of resident page " << page_id);
  Frame* f = EvictOne();
  std::fill(f->data.begin(), f->data.end(), uint8_t{0});
  f->page_id = page_id;
  f->valid = true;
  f->dirty = true;
  ++dirty_count_;
  f->pins = 1;
  f->referenced = true;
  page_to_frame_[page_id] = static_cast<size_t>(f - frames_.data());
  return f;
}

void BufferPool::Unpin(Frame* frame, bool mark_dirty) {
  RL_CHECK(frame != nullptr && frame->pins > 0);
  if (mark_dirty && !frame->dirty) {
    frame->dirty = true;
    ++dirty_count_;
  }
  --frame->pins;
}

std::vector<BufferPool::Frame*> BufferPool::DirtyFrames() {
  std::vector<Frame*> out;
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      out.push_back(&f);
    }
  }
  return out;
}

void BufferPool::MarkClean(Frame* frame) {
  if (frame->dirty) {
    frame->dirty = false;
    RL_CHECK(dirty_count_ > 0);
    --dirty_count_;
  }
}

void BufferPool::Reset() {
  for (Frame& f : frames_) {
    f.valid = false;
    f.dirty = false;
    f.in_checkpoint = false;
    f.pins = 0;
    f.referenced = false;
  }
  page_to_frame_.clear();
  pending_reads_.clear();
  dirty_count_ = 0;
}

Task<bool> BufferPool::WritePageDirect(uint64_t page_id,
                                       std::span<const uint8_t> image,
                                       bool fua) {
  RL_CHECK(image.size() == page_bytes_);
  const BlockStatus st =
      co_await device_.Write(PageLba(page_id, page_bytes_), image, fua);
  if (st == BlockStatus::kOk) {
    stats_.page_writes.Add();
  }
  co_return st == BlockStatus::kOk;
}

Task<bool> BufferPool::ReadPageDirect(uint64_t page_id,
                                      std::span<uint8_t> out) {
  RL_CHECK(out.size() == page_bytes_);
  const BlockStatus st =
      co_await device_.Read(PageLba(page_id, page_bytes_), out);
  co_return st == BlockStatus::kOk;
}

}  // namespace rldb

// Engine profiles: parameter sets that make the one storage engine behave
// like the different DBMSes the paper evaluates (PostgreSQL, MySQL/InnoDB,
// and a commercial engine), chiefly in how they write their log.
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace rldb {

// How the engine treats commit durability.
enum class DurabilityMode {
  // Wait until the commit record is on stable storage before acknowledging
  // (the correct setting; what native/virt/rapilog configurations all use —
  // under RapiLog the wait just becomes cheap).
  kSync,
  // Acknowledge without waiting (PostgreSQL synchronous_commit=off /
  // InnoDB flush_log_at_trx_commit=0). Fast and unsafe: the upper bound the
  // ablation compares against.
  kAsyncUnsafe,
};

struct EngineProfile {
  std::string name = "pg-like";

  // Page geometry.
  uint32_t page_bytes = 8192;
  uint32_t value_bytes = 96;  // fixed-size row slot in the B+tree

  // Log geometry.
  uint32_t log_block_bytes = 8192;

  // Group commit: how long the log writer lingers to batch commits before
  // forcing the log. Zero = force immediately on first waiter.
  rlsim::Duration group_commit_window = rlsim::Duration::Zero();

  // In kAsyncUnsafe mode, how often the background flusher forces the log
  // (real engines run this on a coarse timer — PostgreSQL's wal_writer_delay,
  // InnoDB's once-per-second flush — which is exactly why async commit loses
  // acknowledged transactions on power failure).
  rlsim::Duration async_flush_interval = rlsim::Duration::Millis(200);

  // CPU costs (charged to the guest CPU).
  rlsim::Duration cpu_per_get = rlsim::Duration::Micros(4);
  rlsim::Duration cpu_per_put = rlsim::Duration::Micros(6);
  rlsim::Duration cpu_per_commit = rlsim::Duration::Micros(10);
  // Recovery: decode + re-apply cost per replayed WAL record. Cheaper than
  // cpu_per_put (no locking, no logging); partitioned redo overlaps this
  // cost across its streams, which is where its recovery-time win comes
  // from (the log devices themselves are single-actuator).
  rlsim::Duration cpu_per_redo = rlsim::Duration::Micros(3);

  // Checkpoint trigger: flush when this many pages are dirty.
  uint32_t checkpoint_dirty_pages = 512;

  // Lock wait before giving up and aborting (deadlock safety net).
  rlsim::Duration lock_timeout = rlsim::Duration::Millis(500);
};

// PostgreSQL-flavoured: 8 KiB pages, 8 KiB WAL blocks, no commit delay
// (every commit forces the log; the OS groups whatever is pending).
inline EngineProfile PostgresLikeProfile() {
  EngineProfile p;
  p.name = "pg-like";
  p.page_bytes = 8192;
  p.log_block_bytes = 8192;
  p.group_commit_window = rlsim::Duration::Zero();
  return p;
}

// InnoDB-flavoured: 16 KiB pages, 512-byte log blocks, slight group-commit
// accumulation window.
inline EngineProfile InnodbLikeProfile() {
  EngineProfile p;
  p.name = "innodb-like";
  p.page_bytes = 16384;
  p.log_block_bytes = 512;
  p.group_commit_window = rlsim::Duration::Micros(100);
  p.cpu_per_put = rlsim::Duration::Micros(7);
  return p;
}

// Commercial-engine-flavoured: 4 KiB pages, aggressive batching.
inline EngineProfile CommercialLikeProfile() {
  EngineProfile p;
  p.name = "commercial-like";
  p.page_bytes = 4096;
  p.log_block_bytes = 4096;
  p.group_commit_window = rlsim::Duration::Micros(500);
  p.cpu_per_get = rlsim::Duration::Micros(3);
  p.cpu_per_put = rlsim::Duration::Micros(5);
  p.cpu_per_commit = rlsim::Duration::Micros(8);
  p.cpu_per_redo = rlsim::Duration::Micros(2);
  return p;
}

}  // namespace rldb

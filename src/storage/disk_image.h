// The persistent medium: byte-accurate sector contents with a persistence
// ledger distinguishing durable bytes (survive power loss) from bytes that
// only exist in a volatile write cache.
//
// Sparse: unwritten sectors read as zeros and consume no memory.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/storage/block.h"

namespace rlstor {

// Persistence state of one sector.
enum class SectorState {
  kUnwritten,       // never written; reads as zeros; durable by definition
  kDurable,         // on the medium; survives power loss
  kCachedVolatile,  // newest contents only in volatile cache
  kTorn,            // write interrupted by power loss; contents undefined
};

class DiskImage {
 public:
  explicit DiskImage(uint64_t sector_count);

  uint64_t sector_count() const { return sector_count_; }

  // Newest contents, regardless of durability (read-your-writes: the cache
  // shadows the medium). A torn sector reads as its corrupted pattern.
  void Read(uint64_t sector, std::span<uint8_t> out) const;

  // Writes into the volatile cache (not durable until hardened).
  void WriteCached(uint64_t sector, std::span<const uint8_t> data);

  // Writes straight to the medium (durable at once).
  void WriteDurable(uint64_t sector, std::span<const uint8_t> data);

  // Moves a cached sector's contents onto the medium. No-op if not cached.
  void Harden(uint64_t sector);

  // Hardens every cached sector.
  void HardenAll();

  // Drops the volatile cache, as a power cut does. `torn_sector`, if
  // non-negative, marks a sector whose in-flight write was interrupted: its
  // durable contents are replaced by a recognisable corruption pattern.
  void PowerLoss(int64_t torn_sector = -1);

  SectorState state(uint64_t sector) const;
  bool IsDurable(uint64_t sector) const;

  // Number of sectors currently held only in the volatile cache.
  size_t cached_sector_count() const { return cache_.size(); }
  uint64_t cached_bytes() const { return cache_.size() * kSectorSize; }

  // Reads only what is on the durable medium (what recovery would see after
  // a power cut), ignoring the volatile cache.
  void ReadDurable(uint64_t sector, std::span<uint8_t> out) const;

  // Every sector with durable medium contents, ascending (deterministic
  // iteration over the sparse image — for disk-to-disk restore tooling).
  std::vector<uint64_t> DurableSectorList() const;

 private:
  using Sector = std::array<uint8_t, kSectorSize>;

  void CheckRange(uint64_t sector) const;

  uint64_t sector_count_;
  std::unordered_map<uint64_t, Sector> durable_;
  std::unordered_map<uint64_t, Sector> cache_;
  std::unordered_map<uint64_t, bool> torn_;  // value unused; presence = torn
};

}  // namespace rlstor

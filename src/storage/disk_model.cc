#include "src/storage/disk_model.h"

#include <cmath>

#include "src/sim/check.h"
#include "src/storage/block.h"

namespace rlstor {

using rlsim::Duration;
using rlsim::TimePoint;

HddModel::HddModel(HddParams params) : params_(params) {
  RL_CHECK(params_.rpm > 0);
  RL_CHECK(params_.sectors_per_track > 0);
  RL_CHECK(params_.cylinders > 0);
}

Duration HddModel::SeekTime(uint64_t from_cyl, uint64_t to_cyl) const {
  if (from_cyl == to_cyl) {
    return Duration::Zero();
  }
  const uint64_t dist = from_cyl > to_cyl ? from_cyl - to_cyl : to_cyl - from_cyl;
  const double fraction =
      static_cast<double>(dist) / static_cast<double>(params_.cylinders);
  // Concave seek curve: short seeks dominated by settle time, long seeks by
  // the arm's coast phase (classic sqrt model).
  return params_.track_to_track_seek +
         (params_.max_seek - params_.track_to_track_seek) * std::sqrt(fraction);
}

double HddModel::AngleAt(TimePoint t) const {
  const int64_t period = params_.RotationPeriod().nanos();
  const int64_t phase = t.nanos() % period;
  return static_cast<double>(phase) / static_cast<double>(period);
}

Duration HddModel::AccessTime(TimePoint now, uint64_t lba, uint32_t sectors) {
  RL_CHECK(sectors > 0);
  // Media-rate transfer: the platter must rotate past every sector accessed.
  const Duration transfer =
      params_.RotationPeriod() *
      (static_cast<double>(sectors) /
       static_cast<double>(params_.sectors_per_track));

  // Sequential stream: continues exactly where the previous access ended and
  // arrives before the drive's skew/buffer slack runs out.
  if (has_last_access_ && lba == last_end_lba_ &&
      now <= last_end_time_ + params_.sequential_slack) {
    last_end_lba_ = lba + sectors;
    last_end_time_ = now + transfer;
    head_cylinder_ = (last_end_lba_ / params_.sectors_per_track) %
                     params_.cylinders;
    return params_.controller_overhead + transfer;
  }

  const uint64_t cylinder = lba / params_.sectors_per_track;
  const double target_angle =
      static_cast<double>(lba % params_.sectors_per_track) /
      static_cast<double>(params_.sectors_per_track);

  const Duration seek = SeekTime(head_cylinder_, cylinder % params_.cylinders);
  // Controller overhead overlaps with positioning (it is added to the total
  // below but deliberately not to the platter-position computation), so a
  // request that lands exactly behind the previous one streams at media rate
  // instead of missing its sector by the overhead and losing a revolution.
  const TimePoint on_track = now + seek;

  // Wait for the platter to bring the target sector under the head.
  const double angle = AngleAt(on_track);
  double wait_fraction = target_angle - angle;
  if (wait_fraction < 0) {
    // simlint: float-ok (single wrap-around adjustment, not an accumulator)
    wait_fraction += 1.0;
  }
  const Duration rotational = params_.RotationPeriod() * wait_fraction;

  head_cylinder_ =
      ((lba + sectors) / params_.sectors_per_track) % params_.cylinders;
  last_end_lba_ = lba + sectors;
  last_end_time_ = on_track + rotational + transfer;
  has_last_access_ = true;
  return params_.controller_overhead + seek + rotational + transfer;
}

Duration HddModel::ReadTime(TimePoint now, uint64_t lba, uint32_t sectors) {
  return AccessTime(now, lba, sectors);
}

Duration HddModel::WriteTime(TimePoint now, uint64_t lba, uint32_t sectors) {
  return AccessTime(now, lba, sectors);
}

Duration HddModel::CacheTransferTime(uint32_t sectors) const {
  const double bytes = static_cast<double>(sectors) * kSectorSize;
  return params_.controller_overhead +
         Duration::SecondsF(bytes / (params_.cache_transfer_mbps * 1e6));
}

SsdModel::SsdModel(SsdParams params) : params_(params) {}

Duration SsdModel::TransferTime(uint32_t sectors) const {
  const double bytes = static_cast<double>(sectors) * kSectorSize;
  return Duration::SecondsF(bytes / (params_.transfer_mbps * 1e6));
}

Duration SsdModel::ReadTime(TimePoint /*now*/, uint64_t /*lba*/,
                            uint32_t sectors) {
  return params_.controller_overhead + params_.read_latency +
         TransferTime(sectors);
}

Duration SsdModel::WriteTime(TimePoint /*now*/, uint64_t /*lba*/,
                             uint32_t sectors) {
  return params_.controller_overhead + params_.program_latency +
         TransferTime(sectors);
}

Duration SsdModel::CacheTransferTime(uint32_t sectors) const {
  return params_.controller_overhead + TransferTime(sectors);
}

std::unique_ptr<DiskModel> MakeDefaultHdd() {
  return std::make_unique<HddModel>(HddParams{});
}

std::unique_ptr<DiskModel> MakeDefaultSsd() {
  return std::make_unique<SsdModel>(SsdParams{});
}

}  // namespace rlstor

// A partition: a contiguous LBA window onto a parent device. Lets the data
// area and the log area share one physical spindle (the paper's
// "shared disk" configuration) while upper layers keep independent devices.
#pragma once

#include "src/storage/block_device.h"

namespace rlstor {

class PartitionDevice : public BlockDevice {
 public:
  PartitionDevice(BlockDevice& parent, uint64_t first_lba,
                  uint64_t sector_count)
      : parent_(parent),
        first_lba_(first_lba),
        geometry_{.sector_count = sector_count} {
    RL_CHECK(first_lba + sector_count <= parent.geometry().sector_count);
  }

  const Geometry& geometry() const override { return geometry_; }

  rlsim::Task<BlockStatus> Read(uint64_t lba,
                                std::span<uint8_t> out) override {
    if (!RangeOk(lba, out.size())) {
      co_return BlockStatus::kOutOfRange;
    }
    co_return co_await parent_.Read(first_lba_ + lba, out);
  }

  rlsim::Task<BlockStatus> Write(uint64_t lba, std::span<const uint8_t> data,
                                 bool fua) override {
    if (!RangeOk(lba, data.size())) {
      co_return BlockStatus::kOutOfRange;
    }
    co_return co_await parent_.Write(first_lba_ + lba, data, fua);
  }

  rlsim::Task<BlockStatus> Flush() override {
    co_return co_await parent_.Flush();
  }

  void EnterEmergencyMode() override { parent_.EnterEmergencyMode(); }

 private:
  bool RangeOk(uint64_t lba, size_t bytes) const {
    if (bytes == 0 || bytes % kSectorSize != 0) {
      return false;
    }
    const uint64_t sectors = bytes / kSectorSize;
    return lba < geometry_.sector_count &&
           sectors <= geometry_.sector_count - lba;
  }

  BlockDevice& parent_;
  uint64_t first_lba_;
  Geometry geometry_;
};

}  // namespace rlstor

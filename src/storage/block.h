// Basic block-layer types shared by all storage models.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace rlstor {

inline constexpr uint32_t kSectorSize = 512;

// Result of a block operation.
enum class BlockStatus {
  kOk,
  kDeviceOff,    // device lost power (or was never powered)
  kOutOfRange,   // sector range exceeds device capacity
  kTornWrite,    // write was interrupted by power loss mid-transfer
  kIoError,      // medium error (fault injection); request may be partial
};

std::string ToString(BlockStatus s);

enum class BlockOp { kRead, kWrite, kFlush };

struct Geometry {
  uint64_t sector_count = 0;
  uint32_t sector_size = kSectorSize;

  uint64_t capacity_bytes() const { return sector_count * sector_size; }
};

// How durable is a completed, acknowledged write?
enum class WriteCachePolicy {
  // Writes land in the device's volatile cache and are acknowledged
  // immediately; they are lost on power failure unless flushed.
  kWriteBack,
  // Every write goes to the medium before acknowledgement (no volatile
  // caching). Equivalent to the cache being disabled.
  kWriteThrough,
  // Battery-backed write-back (RAID controller with BBWC): writes are
  // acknowledged at cache speed and are already durable (the battery
  // preserves the cache across power loss); destaging to the medium only
  // matters for sustained-throughput back-pressure.
  kBatteryBackedWriteBack,
};

std::string ToString(WriteCachePolicy p);

}  // namespace rlstor

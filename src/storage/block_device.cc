#include "src/storage/block_device.h"

#include <algorithm>
#include <utility>

#include "src/sim/check.h"
#include "src/sim/crc32.h"

namespace rlstor {

using rlsim::Duration;
using rlsim::Task;
using rlsim::TimePoint;

namespace {

// Longest contiguous run destaged as one medium write.
constexpr uint32_t kMaxDestageRun = 256;

// Payload digest for trace events: CRC-32C of the data bytes, seeded with a
// CRC of the LBA so the same contents at different addresses differ.
uint32_t TraceCrc(uint64_t lba, std::span<const uint8_t> data) {
  uint8_t lba_bytes[8];
  for (int i = 0; i < 8; ++i) {
    lba_bytes[i] = static_cast<uint8_t>(lba >> (i * 8));
  }
  return rlsim::Crc32c(data, rlsim::Crc32c(lba_bytes));
}

uint32_t TraceCrc(uint64_t a, uint64_t b) {
  uint8_t bytes[16];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(a >> (i * 8));
    bytes[8 + i] = static_cast<uint8_t>(b >> (i * 8));
  }
  return rlsim::Crc32c(bytes);
}

}  // namespace

SimBlockDevice::SimBlockDevice(rlsim::Simulator& sim, Options options,
                               std::unique_ptr<DiskModel> model)
    : sim_(sim),
      options_(std::move(options)),
      model_(std::move(model)),
      image_(options_.geometry.sector_count),
      actuator_(sim),
      destage_wake_(sim),
      space_available_(sim),
      flush_done_(sim) {
  RL_CHECK(model_ != nullptr);
  RL_CHECK(options_.geometry.sector_size == kSectorSize);
  if (options_.cache_policy != WriteCachePolicy::kWriteThrough) {
    sim_.Spawn(DestageLoop(), options_.name + "-destage");
  }
}

bool SimBlockDevice::RangeOk(uint64_t lba, size_t bytes) const {
  if (bytes == 0 || bytes % kSectorSize != 0) {
    return false;
  }
  const uint64_t sectors = bytes / kSectorSize;
  return lba < options_.geometry.sector_count &&
         sectors <= options_.geometry.sector_count - lba;
}

void SimBlockDevice::MarkDirty(uint64_t lba) {
  if (dirty_set_.insert(lba).second) {
    dirty_fifo_.push_back(lba);
  }
}

Task<BlockStatus> SimBlockDevice::Read(uint64_t lba, std::span<uint8_t> out) {
  if (!RangeOk(lba, out.size())) {
    stats_.failed_requests.Add();
    co_return BlockStatus::kOutOfRange;
  }
  if (!powered_) {
    stats_.failed_requests.Add();
    co_return BlockStatus::kDeviceOff;
  }
  const TimePoint start = sim_.now();
  rlsim::SpanScope span(sim_, options_.name, "io-read",
                        static_cast<int64_t>(lba));
  const uint32_t sectors = static_cast<uint32_t>(out.size() / kSectorSize);

  bool all_cached = options_.cache_policy != WriteCachePolicy::kWriteThrough;
  for (uint32_t i = 0; i < sectors && all_cached; ++i) {
    all_cached = dirty_set_.contains(lba + i);
  }

  if (all_cached) {
    co_await sim_.Sleep(model_->CacheTransferTime(sectors));
  } else {
    if (emergency_mode_) {
      stats_.failed_requests.Add();
      co_return BlockStatus::kDeviceOff;
    }
    auto guard = co_await actuator_.Lock();
    if (!powered_ || emergency_mode_) {
      stats_.failed_requests.Add();
      co_return BlockStatus::kDeviceOff;
    }
    co_await sim_.Sleep(model_->ReadTime(sim_.now(), lba, sectors));
  }
  if (!powered_) {
    stats_.failed_requests.Add();
    co_return BlockStatus::kDeviceOff;
  }
  for (uint32_t i = 0; i < sectors; ++i) {
    image_.Read(lba + i, out.subspan(static_cast<size_t>(i) * kSectorSize,
                                     kSectorSize));
  }
  stats_.reads.Add();
  stats_.read_latency.RecordDuration(sim_.now() - start);
  co_return BlockStatus::kOk;
}

Task<BlockStatus> SimBlockDevice::Write(uint64_t lba,
                                        std::span<const uint8_t> data,
                                        bool fua) {
  if (!RangeOk(lba, data.size())) {
    stats_.failed_requests.Add();
    co_return BlockStatus::kOutOfRange;
  }
  if (!powered_) {
    stats_.failed_requests.Add();
    co_return BlockStatus::kDeviceOff;
  }
  if (emergency_mode_ && !fua) {
    stats_.failed_requests.Add();
    co_return BlockStatus::kDeviceOff;
  }
  if (write_faults_pending_ > 0) {
    --write_faults_pending_;
    const uint32_t sectors = static_cast<uint32_t>(data.size() / kSectorSize);
    co_await sim_.Sleep(model_->CacheTransferTime(sectors));
    // Like a power cut mid-request: a sector prefix lands durably (sector
    // writes are atomic, so a single-sector request applies nothing).
    const uint32_t applied = sectors / 2;
    for (uint32_t i = 0; i < applied; ++i) {
      image_.WriteDurable(
          lba + i,
          data.subspan(static_cast<size_t>(i) * kSectorSize, kSectorSize));
    }
    stats_.failed_requests.Add();
    if (sim_.tracer() != nullptr) {
      sim_.EmitTrace(options_.name, "torn-write", TraceCrc(lba, applied));
    }
    co_return BlockStatus::kIoError;
  }
  const TimePoint start = sim_.now();
  rlsim::SpanScope span(sim_, options_.name, "io-write",
                        static_cast<int64_t>(lba));
  BlockStatus status;
  if (options_.cache_policy == WriteCachePolicy::kWriteThrough || fua) {
    status = co_await WriteThroughPath(lba, data, fua);
  } else {
    status = co_await CachedPath(lba, data);
  }
  span.set_end_arg(static_cast<int64_t>(status));
  if (status == BlockStatus::kOk) {
    stats_.writes.Add();
    stats_.write_latency.RecordDuration(sim_.now() - start);
  } else {
    stats_.failed_requests.Add();
  }
  co_return status;
}

Task<BlockStatus> SimBlockDevice::WriteThroughPath(
    uint64_t lba, std::span<const uint8_t> data, bool fua) {
  const uint32_t sectors = static_cast<uint32_t>(data.size() / kSectorSize);
  auto guard = co_await actuator_.Lock();
  if (!powered_ || (emergency_mode_ && !fua)) {
    // Sealed for the emergency flush: a queued non-FUA request abandons the
    // actuator immediately instead of costing a mechanical access.
    co_return BlockStatus::kDeviceOff;
  }
  const Duration latency = model_->WriteTime(sim_.now(), lba, sectors);
  inflight_medium_write_ =
      InflightWrite{.lba = lba, .sectors = sectors, .data = data};
  co_await sim_.Sleep(latency);
  inflight_medium_write_.reset();
  if (!powered_) {
    // Power was cut mid-write; PowerLoss() applied a sector prefix.
    co_return BlockStatus::kTornWrite;
  }
  for (uint32_t i = 0; i < sectors; ++i) {
    image_.WriteDurable(
        lba + i,
        data.subspan(static_cast<size_t>(i) * kSectorSize, kSectorSize));
  }
  if (sim_.tracer() != nullptr) {
    sim_.EmitTrace(options_.name, "medium-write", TraceCrc(lba, data));
  }
  co_return BlockStatus::kOk;
}

Task<BlockStatus> SimBlockDevice::CachedPath(uint64_t lba,
                                             std::span<const uint8_t> data) {
  const uint32_t sectors = static_cast<uint32_t>(data.size() / kSectorSize);
  const uint64_t cache_capacity_sectors =
      options_.cache_capacity_bytes / kSectorSize;
  while (powered_ &&
         dirty_fifo_.size() + sectors > cache_capacity_sectors) {
    co_await space_available_.Wait();
  }
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  co_await sim_.Sleep(model_->CacheTransferTime(sectors));
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  const bool battery =
      options_.cache_policy == WriteCachePolicy::kBatteryBackedWriteBack;
  for (uint32_t i = 0; i < sectors; ++i) {
    const auto chunk =
        data.subspan(static_cast<size_t>(i) * kSectorSize, kSectorSize);
    if (battery) {
      // Battery preserves the cache across power loss: durable on ack.
      image_.WriteDurable(lba + i, chunk);
    } else {
      image_.WriteCached(lba + i, chunk);
    }
    MarkDirty(lba + i);
  }
  destage_wake_.NotifyAll();
  co_return BlockStatus::kOk;
}

Task<BlockStatus> SimBlockDevice::Flush() {
  if (!powered_ || emergency_mode_) {
    stats_.failed_requests.Add();
    co_return BlockStatus::kDeviceOff;
  }
  const TimePoint start = sim_.now();
  rlsim::SpanScope span(sim_, options_.name, "io-flush", 0);
  if (options_.cache_policy == WriteCachePolicy::kWriteBack) {
    while (powered_ && (!dirty_fifo_.empty() || destage_active_)) {
      co_await flush_done_.Wait();
    }
    if (!powered_) {
      stats_.failed_requests.Add();
      co_return BlockStatus::kDeviceOff;
    }
  } else {
    // Write-through has nothing volatile; BBWC cache is already durable.
    co_await sim_.Sleep(model_->CacheTransferTime(1));
  }
  stats_.flushes.Add();
  stats_.flush_latency.RecordDuration(sim_.now() - start);
  co_return BlockStatus::kOk;
}

Task<void> SimBlockDevice::DestageLoop() {
  while (true) {
    if (!powered_ || emergency_mode_ || dirty_fifo_.empty()) {
      co_await destage_wake_.Wait();
      continue;
    }
    // Gather a contiguous run starting at the oldest dirty sector, so
    // sequential dirtied regions destage as large medium writes.
    const uint64_t start_lba = dirty_fifo_.front();
    dirty_fifo_.pop_front();
    dirty_set_.erase(start_lba);
    uint32_t run = 1;
    while (run < kMaxDestageRun && dirty_set_.contains(start_lba + run)) {
      dirty_set_.erase(start_lba + run);
      std::erase(dirty_fifo_, start_lba + run);
      ++run;
    }

    destage_active_ = true;
    {
      auto guard = co_await actuator_.Lock();
      if (powered_ && !emergency_mode_) {
        const Duration latency = model_->WriteTime(sim_.now(), start_lba, run);
        inflight_medium_write_ = InflightWrite{
            .lba = start_lba, .sectors = run, .from_cache = true};
        co_await sim_.Sleep(latency);
        inflight_medium_write_.reset();
        if (powered_) {
          if (options_.cache_policy == WriteCachePolicy::kWriteBack) {
            for (uint32_t i = 0; i < run; ++i) {
              image_.Harden(start_lba + i);
            }
          }
          stats_.destaged_sectors.Add(run);
          if (sim_.tracer() != nullptr) {
            sim_.EmitTrace(options_.name, "destage",
                           TraceCrc(start_lba, run));
          }
        }
      }
    }
    destage_active_ = false;
    space_available_.NotifyAll();
    flush_done_.NotifyAll();
  }
}

void SimBlockDevice::PowerLoss() {
  if (!powered_) {
    return;
  }
  powered_ = false;
  // An interrupted medium write lands a prefix of its sectors (drives write
  // a request front to back and each sector write is atomic). The exact cut
  // point is unknowable; half way is the representative worst case for
  // multi-sector requests, and zero sectors for single-sector ones — so a
  // 512-byte write is all-or-nothing, as real hardware behaves.
  if (inflight_medium_write_.has_value() &&
      options_.cache_policy != WriteCachePolicy::kBatteryBackedWriteBack) {
    const InflightWrite& w = *inflight_medium_write_;
    const uint32_t applied = w.sectors / 2;
    for (uint32_t i = 0; i < applied; ++i) {
      if (w.from_cache) {
        image_.Harden(w.lba + i);
      } else {
        image_.WriteDurable(
            w.lba + i,
            w.data.subspan(static_cast<size_t>(i) * kSectorSize,
                           kSectorSize));
      }
    }
  }
  if (sim_.tracer() != nullptr) {
    sim_.EmitTrace(options_.name, "power-loss",
                   TraceCrc(image_.cached_sector_count(),
                            inflight_medium_write_.has_value()
                                ? inflight_medium_write_->lba + 1
                                : 0));
  }
  image_.PowerLoss(-1);
  // Unblock everything so waiters observe powered_ == false.
  destage_wake_.NotifyAll();
  space_available_.NotifyAll();
  flush_done_.NotifyAll();
}

void SimBlockDevice::PowerRestore() {
  emergency_mode_ = false;
  write_faults_pending_ = 0;
  if (powered_) {
    return;
  }
  powered_ = true;
  sim_.EmitTrace(options_.name, "power-restore", 0);
  if (options_.cache_policy != WriteCachePolicy::kBatteryBackedWriteBack) {
    // Volatile cache contents were lost; forget the destage backlog.
    dirty_fifo_.clear();
    dirty_set_.clear();
  }
  destage_wake_.NotifyAll();
}

}  // namespace rlstor

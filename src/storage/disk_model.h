// Device timing models.
//
// A DiskModel answers "how long does this medium access take, starting now?"
// and tracks the mechanical state that question depends on (head position,
// platter angle). It is pure timing — data movement lives in DiskImage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/time.h"

namespace rlstor {

class DiskModel {
 public:
  virtual ~DiskModel() = default;

  // Time to read `sectors` starting at `lba`, beginning at instant `now`.
  // Updates mechanical state as if the access completed.
  virtual rlsim::Duration ReadTime(rlsim::TimePoint now, uint64_t lba,
                                   uint32_t sectors) = 0;

  // Time to write `sectors` at `lba` to the medium, beginning at `now`.
  virtual rlsim::Duration WriteTime(rlsim::TimePoint now, uint64_t lba,
                                    uint32_t sectors) = 0;

  // Time for the device to move data between host and its cache/controller
  // (what a cached write costs before the medium is involved).
  virtual rlsim::Duration CacheTransferTime(uint32_t sectors) const = 0;

  virtual std::string name() const = 0;
};

// Rotating disk. The platter angle is derived from the global clock (the
// spindle never stops), so the model naturally reproduces the two classic
// regimes the paper's results hinge on:
//   * back-to-back sequential writes stream at near media rate, while
//   * paced synchronous commits each wait most of a rotation, capping a
//     write-through log at roughly one commit per revolution.
struct HddParams {
  uint32_t rpm = 7200;
  uint32_t sectors_per_track = 2048;         // ~1 MiB per revolution
  uint64_t cylinders = 100'000;
  rlsim::Duration track_to_track_seek = rlsim::Duration::Micros(500);
  rlsim::Duration max_seek = rlsim::Duration::Millis(16);
  rlsim::Duration controller_overhead = rlsim::Duration::Micros(30);
  // Host <-> drive cache bandwidth (SATA-ish).
  double cache_transfer_mbps = 300.0;
  // A request that continues exactly where the previous one ended, arriving
  // within this window, streams at media rate (drive firmware absorbs the
  // gap with track skew and its sector buffer instead of losing a whole
  // revolution).
  rlsim::Duration sequential_slack = rlsim::Duration::Micros(200);

  rlsim::Duration RotationPeriod() const {
    return rlsim::Duration::Nanos(60ll * 1'000'000'000ll / rpm);
  }
};

class HddModel : public DiskModel {
 public:
  explicit HddModel(HddParams params);

  rlsim::Duration ReadTime(rlsim::TimePoint now, uint64_t lba,
                           uint32_t sectors) override;
  rlsim::Duration WriteTime(rlsim::TimePoint now, uint64_t lba,
                            uint32_t sectors) override;
  rlsim::Duration CacheTransferTime(uint32_t sectors) const override;
  std::string name() const override { return "hdd"; }

  const HddParams& params() const { return params_; }

 private:
  rlsim::Duration AccessTime(rlsim::TimePoint now, uint64_t lba,
                             uint32_t sectors);
  rlsim::Duration SeekTime(uint64_t from_cyl, uint64_t to_cyl) const;
  // Fraction of a revolution [0,1) the platter is at, at instant `t`.
  double AngleAt(rlsim::TimePoint t) const;

  HddParams params_;
  uint64_t head_cylinder_ = 0;
  // End of the last medium transfer, for sequential-stream detection.
  uint64_t last_end_lba_ = 0;
  rlsim::TimePoint last_end_time_ = rlsim::TimePoint::Origin();
  bool has_last_access_ = false;
};

// Flash SSD (paper-era SATA SSD by default). No mechanical state; writes to
// the medium model the flash program latency.
struct SsdParams {
  rlsim::Duration read_latency = rlsim::Duration::Micros(60);
  rlsim::Duration program_latency = rlsim::Duration::Micros(250);
  rlsim::Duration controller_overhead = rlsim::Duration::Micros(15);
  double transfer_mbps = 450.0;
};

class SsdModel : public DiskModel {
 public:
  explicit SsdModel(SsdParams params);

  rlsim::Duration ReadTime(rlsim::TimePoint now, uint64_t lba,
                           uint32_t sectors) override;
  rlsim::Duration WriteTime(rlsim::TimePoint now, uint64_t lba,
                            uint32_t sectors) override;
  rlsim::Duration CacheTransferTime(uint32_t sectors) const override;
  std::string name() const override { return "ssd"; }

 private:
  rlsim::Duration TransferTime(uint32_t sectors) const;

  SsdParams params_;
};

std::unique_ptr<DiskModel> MakeDefaultHdd();
std::unique_ptr<DiskModel> MakeDefaultSsd();

}  // namespace rlstor

#include "src/storage/disk_image.h"

#include <algorithm>
#include <cstring>

#include "src/sim/check.h"

namespace rlstor {

namespace {

// Pattern written into a torn sector so corruption is recognisable (and so
// checksum verification in upper layers reliably fails).
constexpr uint8_t kTornFill = 0xDB;

}  // namespace

DiskImage::DiskImage(uint64_t sector_count) : sector_count_(sector_count) {
  RL_CHECK(sector_count > 0);
}

void DiskImage::CheckRange(uint64_t sector) const {
  RL_CHECK_MSG(sector < sector_count_,
               "sector " << sector << " beyond capacity " << sector_count_);
}

void DiskImage::Read(uint64_t sector, std::span<uint8_t> out) const {
  CheckRange(sector);
  RL_CHECK(out.size() == kSectorSize);
  if (auto it = cache_.find(sector); it != cache_.end()) {
    std::copy(it->second.begin(), it->second.end(), out.begin());
    return;
  }
  ReadDurable(sector, out);
}

void DiskImage::ReadDurable(uint64_t sector, std::span<uint8_t> out) const {
  CheckRange(sector);
  RL_CHECK(out.size() == kSectorSize);
  if (auto it = durable_.find(sector); it != durable_.end()) {
    std::copy(it->second.begin(), it->second.end(), out.begin());
  } else {
    std::fill(out.begin(), out.end(), uint8_t{0});
  }
}

void DiskImage::WriteCached(uint64_t sector, std::span<const uint8_t> data) {
  CheckRange(sector);
  RL_CHECK(data.size() == kSectorSize);
  Sector& s = cache_[sector];
  std::copy(data.begin(), data.end(), s.begin());
  torn_.erase(sector);
}

void DiskImage::WriteDurable(uint64_t sector, std::span<const uint8_t> data) {
  CheckRange(sector);
  RL_CHECK(data.size() == kSectorSize);
  Sector& s = durable_[sector];
  std::copy(data.begin(), data.end(), s.begin());
  cache_.erase(sector);  // the medium now holds the newest contents
  torn_.erase(sector);
}

void DiskImage::Harden(uint64_t sector) {
  auto it = cache_.find(sector);
  if (it == cache_.end()) {
    return;
  }
  durable_[sector] = it->second;
  cache_.erase(it);
  torn_.erase(sector);
}

void DiskImage::HardenAll() {
  // simlint: ordered-ok (pure state fold: every cached sector moves to the
  // durable map; no I/O, no events, and the result is order-independent)
  for (const auto& [sector, data] : cache_) {
    durable_[sector] = data;
    torn_.erase(sector);
  }
  cache_.clear();
}

void DiskImage::PowerLoss(int64_t torn_sector) {
  cache_.clear();
  if (torn_sector >= 0) {
    const uint64_t sector = static_cast<uint64_t>(torn_sector);
    CheckRange(sector);
    Sector& s = durable_[sector];
    s.fill(kTornFill);
    torn_[sector] = true;
  }
}

SectorState DiskImage::state(uint64_t sector) const {
  CheckRange(sector);
  if (cache_.contains(sector)) {
    return SectorState::kCachedVolatile;
  }
  if (torn_.contains(sector)) {
    return SectorState::kTorn;
  }
  if (durable_.contains(sector)) {
    return SectorState::kDurable;
  }
  return SectorState::kUnwritten;
}

bool DiskImage::IsDurable(uint64_t sector) const {
  const SectorState s = state(sector);
  return s == SectorState::kDurable || s == SectorState::kUnwritten;
}

std::vector<uint64_t> DiskImage::DurableSectorList() const {
  std::vector<uint64_t> sectors;
  sectors.reserve(durable_.size());
  // simlint: ordered-ok (collected set is sorted before it is returned)
  for (const auto& [sector, contents] : durable_) {
    if (!torn_.contains(sector)) {
      sectors.push_back(sector);
    }
  }
  std::sort(sectors.begin(), sectors.end());
  return sectors;
}

}  // namespace rlstor

#include "src/storage/block.h"

namespace rlstor {

std::string ToString(BlockStatus s) {
  switch (s) {
    case BlockStatus::kOk:
      return "ok";
    case BlockStatus::kDeviceOff:
      return "device-off";
    case BlockStatus::kOutOfRange:
      return "out-of-range";
    case BlockStatus::kTornWrite:
      return "torn-write";
    case BlockStatus::kIoError:
      return "io-error";
  }
  return "unknown";
}

std::string ToString(WriteCachePolicy p) {
  switch (p) {
    case WriteCachePolicy::kWriteBack:
      return "write-back";
    case WriteCachePolicy::kWriteThrough:
      return "write-through";
    case WriteCachePolicy::kBatteryBackedWriteBack:
      return "bbwc";
  }
  return "unknown";
}

}  // namespace rlstor

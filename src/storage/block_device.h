// Simulated block devices.
//
// BlockDevice is the host-facing interface (what an OS block layer sees).
// SimBlockDevice combines a DiskImage (data + persistence ledger) with a
// DiskModel (timing) and a write-cache policy, services requests through a
// single-actuator mutex, destages its cache in the background, and reacts to
// power loss like real hardware: volatile cache dropped, an in-flight medium
// write torn, every later request failing with kDeviceOff.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/storage/block.h"
#include "src/storage/disk_image.h"
#include "src/storage/disk_model.h"

namespace rlstor {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual const Geometry& geometry() const = 0;

  // out.size() must be a positive multiple of the sector size.
  virtual rlsim::Task<BlockStatus> Read(uint64_t lba,
                                        std::span<uint8_t> out) = 0;

  // data.size() must be a positive multiple of the sector size. With
  // fua=true the write bypasses any volatile cache (durable on completion).
  virtual rlsim::Task<BlockStatus> Write(uint64_t lba,
                                         std::span<const uint8_t> data,
                                         bool fua) = 0;

  // Completes once every previously acknowledged write is durable.
  virtual rlsim::Task<BlockStatus> Flush() = 0;

  // Trusted-layer emergency seal (power failing): the driver discards queued
  // and future requests except forced-unit-access writes, dedicating the
  // device to an emergency flush. Cleared by power restore. No-op by
  // default (only devices owned by a trusted driver support it).
  virtual void EnterEmergencyMode() {}
};

class SimBlockDevice : public BlockDevice {
 public:
  struct Options {
    Geometry geometry{.sector_count = 4 * 1024 * 1024};  // 2 GiB
    WriteCachePolicy cache_policy = WriteCachePolicy::kWriteBack;
    uint64_t cache_capacity_bytes = 32ull * 1024 * 1024;
    std::string name = "disk";
  };

  struct Stats {
    rlsim::Counter reads;
    rlsim::Counter writes;
    rlsim::Counter flushes;
    rlsim::Counter destaged_sectors;
    rlsim::Counter failed_requests;
    rlsim::Histogram read_latency;   // nanoseconds
    rlsim::Histogram write_latency;  // nanoseconds
    rlsim::Histogram flush_latency;  // nanoseconds
  };

  SimBlockDevice(rlsim::Simulator& sim, Options options,
                 std::unique_ptr<DiskModel> model);

  const Geometry& geometry() const override { return options_.geometry; }

  rlsim::Task<BlockStatus> Read(uint64_t lba,
                                std::span<uint8_t> out) override;
  rlsim::Task<BlockStatus> Write(uint64_t lba, std::span<const uint8_t> data,
                                 bool fua) override;
  rlsim::Task<BlockStatus> Flush() override;

  // Power events (called by the power substrate or by fault injection).
  void PowerLoss();
  void PowerRestore();
  bool powered() const { return powered_; }

  // Fault injection (chaos testing): the next `count` writes fail with
  // kIoError after durably applying a prefix of their sectors — a torn
  // multi-sector write, exactly the partial-application semantics of a
  // power cut mid-request. Single-sector writes stay all-or-nothing.
  // The pending budget is cleared by PowerRestore (the power cycle is the
  // repair action the storage stack already understands).
  void InjectWriteFaults(uint32_t count) { write_faults_pending_ += count; }
  uint32_t write_faults_pending() const { return write_faults_pending_; }

  void EnterEmergencyMode() override { emergency_mode_ = true; }
  void ExitEmergencyMode() { emergency_mode_ = false; }
  bool emergency_mode() const { return emergency_mode_; }

  // For recovery code and durability checkers.
  DiskImage& image() { return image_; }
  const DiskImage& image() const { return image_; }

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }
  const Options& options() const { return options_; }
  uint64_t dirty_sectors() const { return dirty_fifo_.size(); }

 private:
  rlsim::Task<void> DestageLoop();
  rlsim::Task<BlockStatus> WriteThroughPath(uint64_t lba,
                                            std::span<const uint8_t> data,
                                            bool fua);
  rlsim::Task<BlockStatus> CachedPath(uint64_t lba,
                                      std::span<const uint8_t> data);
  bool RangeOk(uint64_t lba, size_t bytes) const;
  void MarkDirty(uint64_t lba);

  rlsim::Simulator& sim_;
  Options options_;
  std::unique_ptr<DiskModel> model_;
  DiskImage image_;

  bool powered_ = true;
  // While set, only FUA writes are serviced (see EnterEmergencyMode).
  bool emergency_mode_ = false;
  uint32_t write_faults_pending_ = 0;
  rlsim::SimMutex actuator_;
  // A medium write in flight. Sector writes are atomic (as real drives
  // guarantee); a power cut mid-request applies a prefix of its sectors.
  struct InflightWrite {
    uint64_t lba = 0;
    uint32_t sectors = 0;
    // Data source: either the caller's buffer (write-through path) ...
    std::span<const uint8_t> data;
    // ... or the device's own cache contents (destage path).
    bool from_cache = false;
  };
  std::optional<InflightWrite> inflight_medium_write_;

  std::deque<uint64_t> dirty_fifo_;
  std::unordered_set<uint64_t> dirty_set_;
  bool destage_active_ = false;
  rlsim::WaitQueue destage_wake_;
  rlsim::WaitQueue space_available_;
  rlsim::WaitQueue flush_done_;

  Stats stats_;
};

}  // namespace rlstor

// RapiLog: the paper's contribution.
//
// A RapiLogDevice is a virtual disk for a DBMS log partition, implemented in
// the trusted layer (outside the guest OS). It acknowledges writes as soon
// as they are buffered in trusted memory and drains them to the physical
// disk asynchronously, in order, with forced-unit-access writes. The
// acknowledged data is durable-equivalent because the only two ways volatile
// trusted memory can die are covered:
//
//   * guest OS / DBMS crash — the buffer lives below the guest, keeps
//     draining, and everything reaches the disk ("eventual durability");
//   * power failure — the PowerGuard sizes the buffer so that it can always
//     be flushed within the PSU hold-up window that follows the power-fail
//     warning, and performs that emergency flush.
//
// The trusted layer itself not crashing is the verification assumption the
// paper's title refers to (modelled here by construction: RapiLog and the
// kernel under it are exempt from fault injection).
//
// The device is intended for WAL-style partitions: write absorption assumes
// the guest only ever rewrites the *tail* block of its append stream, which
// is exactly what group-committing WAL implementations do.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "src/power/power.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/storage/block_device.h"

namespace rapilog {

struct RapiLogOptions {
  // Worst-case sustained rate at which the drain can push buffered data to
  // the physical disk (used only for the admission budget; the real rate is
  // whatever the device model yields).
  double worst_case_drain_mbps = 40.0;
  // Fraction of the guaranteed post-warning window the budget may assume.
  double safety_factor = 0.5;
  // Overrides the power-derived budget when non-zero (testing/ablation).
  uint64_t max_buffer_bytes_override = 0;
  // Ablation switch: with the guard disabled the device ignores the
  // power-fail warning, so a power cut can destroy buffered data — this is
  // the "async commit without RapiLog" failure mode.
  bool enable_power_guard = true;
  // Buffer insert cost: fixed part plus DRAM copy at ~10 GiB/s.
  rlsim::Duration ack_base_cost = rlsim::Duration::Nanos(500);
  // Budget reserve for getting the emergency drain started: one in-flight
  // guest request plus the drain's own worst-case seek+rotation must fit in
  // the hold-up window before any buffered byte moves.
  rlsim::Duration drain_start_reserve = rlsim::Duration::Millis(20);
  // How long the drain lingers before writing out the buffer tail, giving
  // tail-block rewrites a chance to be absorbed instead of each version
  // paying a physical write. Skipped during an emergency flush.
  rlsim::Duration drain_linger = rlsim::Duration::Micros(200);
};

class RapiLogDevice : public rlstor::BlockDevice, public rlpow::PowerSink {
 public:
  struct Stats {
    rlsim::Counter acked_writes;
    rlsim::Counter acked_bytes;
    rlsim::Counter absorbed_writes;  // tail-block rewrites merged in place
    rlsim::Counter drained_writes;
    rlsim::Counter drained_bytes;
    rlsim::Counter flush_calls;
    rlsim::Counter emergency_flushes;
    rlsim::Counter lost_bytes;  // buffered bytes destroyed by a power cut
    rlsim::Histogram ack_latency;       // ns
    rlsim::Histogram buffer_occupancy;  // bytes, sampled at each ack
  };

  // Registers itself with `psu`. `log_disk` must outlive the device.
  RapiLogDevice(rlsim::Simulator& sim, rlpow::PowerSupply& psu,
                rlstor::BlockDevice& log_disk, RapiLogOptions options);

  // --- rlstor::BlockDevice ---------------------------------------------------

  const rlstor::Geometry& geometry() const override {
    return log_disk_.geometry();
  }

  // Buffered-ack write: returns once the data sits in trusted memory (or
  // blocks while the admission budget is exhausted). `fua` is accepted and
  // ignored — buffered data already carries the durability contract.
  rlsim::Task<rlstor::BlockStatus> Write(uint64_t lba,
                                         std::span<const uint8_t> data,
                                         bool fua) override;

  // The point of the paper: a log-disk flush costs next to nothing.
  rlsim::Task<rlstor::BlockStatus> Flush() override;

  // Read-your-writes: newest buffered contents shadow the disk.
  rlsim::Task<rlstor::BlockStatus> Read(uint64_t lba,
                                        std::span<uint8_t> out) override;

  // --- rlpow::PowerSink ------------------------------------------------------

  void OnPowerFailWarning(rlsim::Duration time_remaining) override;
  void OnPowerDown() override;
  void OnPowerRestore() override;
  void OnOutageAbsorbed() override;

  // --- RapiLog-specific ------------------------------------------------------

  // Completes once every acknowledged write has reached the physical disk.
  // Recovery runs after this ("eventual durability" realised).
  rlsim::Task<void> Quiesce();

  uint64_t buffered_bytes() const { return buffered_bytes_; }
  uint64_t max_buffer_bytes() const { return max_buffer_bytes_; }
  bool emergency() const { return emergency_; }
  // True iff a power cut ever destroyed acknowledged-but-unwritten data
  // (impossible with the guard enabled and an honest budget).
  bool lost_data() const { return stats_.lost_bytes.value() > 0; }

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  struct Entry {
    uint64_t lba = 0;
    std::vector<uint8_t> data;
  };

  rlsim::Task<void> DrainLoop();
  uint64_t ComputeBudget(const rlpow::PowerSupply& psu) const;

  rlsim::Simulator& sim_;
  rlstor::BlockDevice& log_disk_;
  RapiLogOptions options_;
  uint64_t max_buffer_bytes_;

  std::deque<Entry> fifo_;
  uint64_t buffered_bytes_ = 0;
  bool emergency_ = false;
  bool powered_ = true;

  rlsim::WaitQueue drain_wake_;
  rlsim::WaitQueue space_available_;
  rlsim::WaitQueue drained_;

  Stats stats_;
};

}  // namespace rapilog

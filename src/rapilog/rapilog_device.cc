#include "src/rapilog/rapilog_device.h"

#include <algorithm>
#include <utility>

#include "src/sim/check.h"

namespace rapilog {

using rlsim::Duration;
using rlsim::Task;
using rlstor::BlockStatus;
using rlstor::kSectorSize;

RapiLogDevice::RapiLogDevice(rlsim::Simulator& sim, rlpow::PowerSupply& psu,
                             rlstor::BlockDevice& log_disk,
                             RapiLogOptions options)
    : sim_(sim),
      log_disk_(log_disk),
      options_(options),
      max_buffer_bytes_(ComputeBudget(psu)),
      drain_wake_(sim),
      space_available_(sim),
      drained_(sim) {
  RL_CHECK(max_buffer_bytes_ >= kSectorSize);
  psu.Register(this);
  sim_.Spawn(DrainLoop(), "rapilog-drain");
}

uint64_t RapiLogDevice::ComputeBudget(const rlpow::PowerSupply& psu) const {
  if (options_.max_buffer_bytes_override != 0) {
    return options_.max_buffer_bytes_override;
  }
  const rlsim::Duration usable =
      psu.GuaranteedWindowAfterWarning() - options_.drain_start_reserve;
  if (usable <= rlsim::Duration::Zero()) {
    return kSectorSize;  // degenerate window: effectively synchronous
  }
  const double window_s = usable.ToSecondsF() * options_.safety_factor;
  const double budget = options_.worst_case_drain_mbps * 1e6 * window_s;
  return std::max<uint64_t>(kSectorSize, static_cast<uint64_t>(budget));
}

Task<BlockStatus> RapiLogDevice::Write(uint64_t lba,
                                       std::span<const uint8_t> data,
                                       bool fua) {
  (void)fua;  // buffered data already carries the durability contract
  if (data.empty() || data.size() % kSectorSize != 0) {
    co_return BlockStatus::kOutOfRange;
  }
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  const rlsim::TimePoint start = sim_.now();
  // Guest-facing cost of a buffered write: admission wait + ack latency.
  rlsim::SpanScope span(sim_, "rapilog", "buffer-ack",
                        static_cast<int64_t>(data.size()));

  // Tail-block absorption: the WAL rewrites its last partially-filled block;
  // superseding it in place avoids draining every intermediate version.
  if (!fifo_.empty() && fifo_.back().lba == lba &&
      fifo_.back().data.size() == data.size()) {
    fifo_.back().data.assign(data.begin(), data.end());
    stats_.absorbed_writes.Add();
    co_await sim_.Sleep(options_.ack_base_cost +
                        Duration::Nanos(static_cast<int64_t>(data.size() / 10)));
    stats_.acked_writes.Add();
    stats_.acked_bytes.Add(static_cast<int64_t>(data.size()));
    stats_.ack_latency.RecordDuration(sim_.now() - start);
    stats_.buffer_occupancy.Record(static_cast<int64_t>(buffered_bytes_));
    co_return BlockStatus::kOk;
  }

  // Admission control: never hold more than the power budget can flush.
  while (powered_ && !emergency_ &&
         buffered_bytes_ + data.size() > max_buffer_bytes_) {
    co_await space_available_.Wait();
  }
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  if (emergency_) {
    // Mains are gone; the guest is living on borrowed time and no new
    // durability promises are made. The writer never gets an ack.
    while (emergency_ && powered_) {
      co_await space_available_.Wait();
    }
    co_return BlockStatus::kDeviceOff;
  }

  Entry entry;
  entry.lba = lba;
  entry.data.assign(data.begin(), data.end());
  buffered_bytes_ += entry.data.size();
  fifo_.push_back(std::move(entry));
  drain_wake_.NotifyAll();

  co_await sim_.Sleep(options_.ack_base_cost +
                      Duration::Nanos(static_cast<int64_t>(data.size() / 10)));
  stats_.acked_writes.Add();
  stats_.acked_bytes.Add(static_cast<int64_t>(data.size()));
  stats_.ack_latency.RecordDuration(sim_.now() - start);
  stats_.buffer_occupancy.Record(static_cast<int64_t>(buffered_bytes_));
  co_return BlockStatus::kOk;
}

Task<BlockStatus> RapiLogDevice::Flush() {
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  stats_.flush_calls.Add();
  // Everything buffered is already covered by the durability contract; the
  // flush only costs its hypercall handling.
  co_await sim_.Sleep(options_.ack_base_cost);
  co_return BlockStatus::kOk;
}

Task<BlockStatus> RapiLogDevice::Read(uint64_t lba, std::span<uint8_t> out) {
  if (out.empty() || out.size() % kSectorSize != 0) {
    co_return BlockStatus::kOutOfRange;
  }
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  const BlockStatus st = co_await log_disk_.Read(lba, out);
  if (st != BlockStatus::kOk) {
    co_return st;
  }
  // Overlay buffered (newer) contents, oldest entry first.
  const uint64_t first = lba;
  const uint64_t count = out.size() / kSectorSize;
  for (const Entry& e : fifo_) {
    const uint64_t e_first = e.lba;
    const uint64_t e_count = e.data.size() / kSectorSize;
    const uint64_t lo = std::max(first, e_first);
    const uint64_t hi = std::min(first + count, e_first + e_count);
    for (uint64_t s = lo; s < hi; ++s) {
      std::copy_n(e.data.begin() +
                      static_cast<ptrdiff_t>((s - e_first) * kSectorSize),
                  kSectorSize,
                  out.begin() + static_cast<ptrdiff_t>((s - first) *
                                                       kSectorSize));
    }
  }
  co_return BlockStatus::kOk;
}

Task<void> RapiLogDevice::DrainLoop() {
  bool lingered = false;
  while (true) {
    if (!powered_ || fifo_.empty()) {
      drained_.NotifyAll();
      lingered = false;
      co_await drain_wake_.Wait();
      continue;
    }
    // Linger briefly before chasing the live tail: an imminent rewrite of
    // the same block is then absorbed in memory instead of costing another
    // physical write. Never linger in an emergency or once over half full.
    if (!emergency_ && !lingered &&
        options_.drain_linger > Duration::Zero() &&
        buffered_bytes_ < max_buffer_bytes_ / 2) {
      lingered = true;
      co_await sim_.Sleep(options_.drain_linger);
      continue;
    }
    lingered = false;
    // Coalesce a run of physically contiguous entries into one disk write
    // (log appends are contiguous by construction, so under load the drain
    // streams at media rate instead of paying per-entry actuator trips).
    // Entries are peeked, not popped: they must stay visible to reads and
    // to the occupancy accounting until they are actually on the disk.
    constexpr size_t kMaxRunEntries = 64;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> run;
    {
      uint64_t next_lba = fifo_.front().lba;
      for (const Entry& e : fifo_) {
        if (run.size() >= kMaxRunEntries || e.lba != next_lba) {
          break;
        }
        run.emplace_back(e.lba, e.data);
        next_lba = e.lba + e.data.size() / kSectorSize;
      }
    }
    std::vector<uint8_t> payload;
    for (const auto& [lba, data] : run) {
      payload.insert(payload.end(), data.begin(), data.end());
    }
    const uint64_t run_lba = run.front().first;
    BlockStatus st;
    {
      // The hold-up-critical physical write behind the guest's back.
      rlsim::SpanScope drain_span(sim_, "rapilog", "drain-write",
                                  static_cast<int64_t>(payload.size()));
      st = co_await log_disk_.Write(run_lba, payload, /*fua=*/true);
    }
    if (!powered_) {
      continue;  // rails dropped mid-write; OnPowerDown handles the fallout
    }
    if (st != BlockStatus::kOk) {
      // Physical write failed (transient medium error, or the disk lost
      // power first). Back off briefly and retry rather than parking on
      // drain_wake_: during an emergency flush no new admissions arrive to
      // wake us, and the hold-up window is ticking.
      co_await sim_.Sleep(Duration::Micros(200));
      continue;
    }
    // Retire the written prefix. The last entry of the run may have been
    // absorbed (superseded) while we were writing; retire it only if it
    // still holds what we wrote.
    for (const auto& [lba, data] : run) {
      if (fifo_.empty() || fifo_.front().lba != lba ||
          fifo_.front().data != data) {
        break;
      }
      buffered_bytes_ -= fifo_.front().data.size();
      fifo_.pop_front();
      stats_.drained_writes.Add();
      stats_.drained_bytes.Add(static_cast<int64_t>(data.size()));
    }
    space_available_.NotifyAll();
    if (fifo_.empty()) {
      drained_.NotifyAll();
    }
  }
}

void RapiLogDevice::OnPowerFailWarning(rlsim::Duration time_remaining) {
  (void)time_remaining;
  if (!options_.enable_power_guard) {
    return;
  }
  emergency_ = true;
  stats_.emergency_flushes.Add();
  sim_.EmitTrace("rapilog", "emergency-flush",
                 static_cast<uint32_t>(buffered_bytes_));
  // Seal the disk for the emergency flush: the trusted driver discards the
  // dead guest's queued requests so the drain is not stuck behind them.
  log_disk_.EnterEmergencyMode();
  // The drain loop is already eager; the flag only stops new admissions.
  drain_wake_.NotifyAll();
}

void RapiLogDevice::OnOutageAbsorbed() {
  // Mains returned inside the hold-up window: stand down.
  emergency_ = false;
  drain_wake_.NotifyAll();
  space_available_.NotifyAll();
}

void RapiLogDevice::OnPowerDown() {
  powered_ = false;
  sim_.EmitTrace("rapilog", "power-down",
                 static_cast<uint32_t>(buffered_bytes_));
  if (buffered_bytes_ > 0) {
    // Acknowledged data died in volatile memory — the failure RapiLog
    // exists to prevent. Recorded, not thrown: the ablation experiments
    // measure exactly this.
    stats_.lost_bytes.Add(static_cast<int64_t>(buffered_bytes_));
  }
  fifo_.clear();
  buffered_bytes_ = 0;
  drain_wake_.NotifyAll();
  space_available_.NotifyAll();
  drained_.NotifyAll();
}

void RapiLogDevice::OnPowerRestore() {
  powered_ = true;
  emergency_ = false;
  drain_wake_.NotifyAll();
  space_available_.NotifyAll();
}

Task<void> RapiLogDevice::Quiesce() {
  while (powered_ && !fifo_.empty()) {
    co_await drained_.Wait();
  }
}

}  // namespace rapilog

#include "src/harness/testbed.h"

#include <array>
#include <string>
#include <utility>

#include "src/sim/check.h"
#include "src/storage/disk_image.h"

namespace rlharness {

using rlkern::CapRights;
using rlkern::KernelStatus;
using rlkern::ObjectType;
using rlkern::SlotAddr;
using rlsim::Task;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

std::string ToString(DeploymentMode m) {
  switch (m) {
    case DeploymentMode::kNative:
      return "native";
    case DeploymentMode::kVirt:
      return "virt";
    case DeploymentMode::kRapiLog:
      return "rapilog";
    case DeploymentMode::kUnsafeAsync:
      return "unsafe-async";
  }
  return "unknown";
}

std::string ToString(DiskSetup d) {
  switch (d) {
    case DiskSetup::kSharedHdd:
      return "shared-hdd";
    case DiskSetup::kSeparateHdd:
      return "separate-hdd";
    case DiskSetup::kBbwc:
      return "bbwc";
    case DiskSetup::kSsdLog:
      return "ssd-log";
  }
  return "unknown";
}

// Powers a physical disk with the rails.
class Testbed::DiskPowerSink : public rlpow::PowerSink {
 public:
  explicit DiskPowerSink(SimBlockDevice& dev) : dev_(dev) {}
  void OnPowerDown() override { dev_.PowerLoss(); }
  void OnPowerRestore() override { dev_.PowerRestore(); }
  void OnOutageAbsorbed() override { dev_.ExitEmergencyMode(); }

 private:
  SimBlockDevice& dev_;
};

// The guest is stopped at the power-fail warning (it is doomed anyway, and
// killing it immediately dedicates the remaining hold-up energy — and the
// disk's full bandwidth — to RapiLog's emergency flush, as in the paper).
class Testbed::GuestPowerSink : public rlpow::PowerSink {
 public:
  GuestPowerSink(rlvmm::VirtualMachine& vm, bool crash_on_warning)
      : vm_(vm), crash_on_warning_(crash_on_warning) {}
  void OnPowerFailWarning(rlsim::Duration /*remaining*/) override {
    if (crash_on_warning_) {
      vm_.Crash();
    }
  }
  void OnPowerDown() override { vm_.Crash(); }

 private:
  rlvmm::VirtualMachine& vm_;
  // Part of RapiLog's guard: stopping the doomed guest at the warning
  // dedicates the hold-up energy (and the disk) to the emergency flush.
  // Without the guard (ablation) nothing reacts to the warning and the
  // guest runs until the rails drop.
  bool crash_on_warning_;
};

// The shipper rides the primary's rails: its window and cursors are volatile
// primary memory. (The replicas and the fabric are other failure domains and
// are deliberately NOT wired to this PSU.)
class Testbed::ShipperPowerSink : public rlpow::PowerSink {
 public:
  explicit ShipperPowerSink(rlrep::LogShipper& shipper) : shipper_(shipper) {}
  void OnPowerDown() override { shipper_.PowerLoss(); }
  void OnPowerRestore() override { shipper_.PowerRestore(); }

 private:
  rlrep::LogShipper& shipper_;
};

Testbed::Testbed(rlsim::Simulator& sim, TestbedOptions options)
    : sim_(sim), options_(std::move(options)) {
  psu_ = std::make_unique<rlpow::PowerSupply>(sim_, options_.psu);
  BuildDevices();
  if (options_.mode != DeploymentMode::kNative) {
    BuildGuestStack();
  } else {
    cpu_ = std::make_unique<rldb::NativeCpu>(sim_);
  }
  // Register disk power sinks after RapiLog (which registered itself during
  // BuildDevices): the guard must see the warning before the disks see the
  // rails drop — matching reality, where all of them ride the same rails and
  // the drain finishes inside the hold-up window.
  for (auto& sink : power_sinks_) {
    psu_->Register(sink.get());
  }
}

Testbed::~Testbed() = default;

void Testbed::BuildDevices() {
  // 2 GiB data spindle; the log area is the first 256 MiB when shared.
  constexpr uint64_t kDiskSectors = 4ull * 1024 * 1024;
  constexpr uint64_t kLogSectors = 512ull * 1024;

  const bool bbwc = options_.disks == DiskSetup::kBbwc;
  const WriteCachePolicy policy = bbwc
                                      ? WriteCachePolicy::kBatteryBackedWriteBack
                                      : WriteCachePolicy::kWriteBack;

  SimBlockDevice::Options data_opts;
  data_opts.geometry.sector_count = kDiskSectors;
  data_opts.cache_policy = policy;
  data_opts.name = "data-hdd";
  data_disk_ =
      std::make_unique<SimBlockDevice>(sim_, data_opts, rlstor::MakeDefaultHdd());

  rlstor::BlockDevice* log_physical = nullptr;
  switch (options_.disks) {
    case DiskSetup::kSharedHdd: {
      // Log and data partitions on the one spindle.
      log_partition_ = std::make_unique<rlstor::PartitionDevice>(
          *data_disk_, 0, kLogSectors);
      data_partition_ = std::make_unique<rlstor::PartitionDevice>(
          *data_disk_, kLogSectors, kDiskSectors - kLogSectors);
      log_physical = log_partition_.get();
      break;
    }
    case DiskSetup::kSeparateHdd:
    case DiskSetup::kBbwc:
    case DiskSetup::kSsdLog: {
      SimBlockDevice::Options log_opts;
      log_opts.geometry.sector_count = kLogSectors;
      log_opts.cache_policy = policy;
      log_opts.name = "log-disk";
      separate_log_disk_ = std::make_unique<SimBlockDevice>(
          sim_, log_opts,
          options_.disks == DiskSetup::kSsdLog ? rlstor::MakeDefaultSsd()
                                               : rlstor::MakeDefaultHdd());
      data_partition_ = std::make_unique<rlstor::PartitionDevice>(
          *data_disk_, 0, kDiskSectors);
      log_physical = separate_log_disk_.get();
      break;
    }
  }

  if (options_.mode == DeploymentMode::kRapiLog) {
    // Calibrate the admission budget's worst-case drain rate to the log
    // device, as the paper does by measuring its disk. Left alone if the
    // caller chose a non-default rate (e.g. the overstated-budget ablation).
    if (options_.rapilog.worst_case_drain_mbps ==
        rapilog::RapiLogOptions{}.worst_case_drain_mbps) {
      switch (options_.disks) {
        case DiskSetup::kSsdLog:
          options_.rapilog.worst_case_drain_mbps = 150.0;
          break;
        case DiskSetup::kBbwc:
          options_.rapilog.worst_case_drain_mbps = 100.0;
          break;
        case DiskSetup::kSharedHdd:
        case DiskSetup::kSeparateHdd:
          break;  // the conservative default fits a rotating log disk
      }
    }
    // RapiLog registers itself with the PSU here — before the disk sinks.
    rapilog_ = std::make_unique<rapilog::RapiLogDevice>(
        sim_, *psu_, *log_physical, options_.rapilog);
  }

  log_sector_count_ = kLogSectors;
  if (options_.replication.enabled) {
    BuildReplication(rapilog_ != nullptr
                         ? static_cast<rlstor::BlockDevice&>(*rapilog_)
                         : *log_physical);
  }

  power_sinks_.push_back(std::make_unique<DiskPowerSink>(*data_disk_));
  if (separate_log_disk_ != nullptr) {
    power_sinks_.push_back(std::make_unique<DiskPowerSink>(*separate_log_disk_));
  }
}

void Testbed::BuildReplication(rlstor::BlockDevice& local_log) {
  const ReplicationOptions& rep = options_.replication;
  RL_CHECK_MSG(rep.replicas >= 1, "replication needs >= 1 replica");
  RL_CHECK_MSG(rep.replica.sector_count >= log_sector_count_,
               "replica disks must cover the primary log's sector range");

  fabric_ = std::make_unique<rlnet::NetworkFabric>(sim_);
  std::vector<std::string> names;
  names.reserve(rep.replicas);
  for (size_t r = 0; r < rep.replicas; ++r) {
    names.push_back("replica-" + std::to_string(r));
    replicas_.push_back(std::make_unique<rlrep::ReplicaNode>(
        sim_, *fabric_, names.back(), "primary", rep.replica));
  }
  shipper_ = std::make_unique<rlrep::LogShipper>(
      sim_, *fabric_, "primary", names, local_log, rep.shipper);
  for (const std::string& name : names) {
    fabric_->Connect("primary", name, rep.link);
  }
  power_sinks_.push_back(std::make_unique<ShipperPowerSink>(*shipper_));
}

rlstor::BlockDevice& Testbed::LogTarget() {
  if (shipper_ != nullptr) {
    return *shipper_;
  }
  if (rapilog_ != nullptr) {
    return *rapilog_;
  }
  if (separate_log_disk_ != nullptr) {
    return *separate_log_disk_;
  }
  return *log_partition_;
}

void Testbed::BuildGuestStack() {
  kernel_ = std::make_unique<rlkern::Kernel>(sim_);
  vm_ = std::make_unique<rlvmm::VirtualMachine>(sim_, options_.vm);
  power_sinks_.push_back(std::make_unique<GuestPowerSink>(
      *vm_, rapilog_ != nullptr && options_.rapilog.enable_power_guard));

  root_cnode_ = kernel_->BootstrapCNode(64);
  RL_CHECK(kernel_->BootstrapUntyped(root_cnode_, 0, 1 << 20) ==
           KernelStatus::kOk);
  RL_CHECK(kernel_->Retype(SlotAddr{root_cnode_, 0}, ObjectType::kEndpoint, 0,
                           root_cnode_, 1, 2) == KernelStatus::kOk);
  const SlotAddr data_ep{root_cnode_, 1};
  const SlotAddr log_ep{root_cnode_, 2};

  rlstor::BlockDevice* log_target = &LogTarget();

  data_backend_ = std::make_unique<rlvmm::BlockBackend>(
      sim_, *kernel_, data_ep, *data_partition_, "data-backend");
  log_backend_ = std::make_unique<rlvmm::BlockBackend>(
      sim_, *kernel_, log_ep, *log_target, "log-backend");
  data_backend_->Start();
  log_backend_->Start();

  guest_data_dev_ = std::make_unique<rlvmm::VirtualBlockDevice>(
      sim_, *vm_, *kernel_, data_ep, data_partition_->geometry(),
      "guest-data-vblk");
  guest_log_dev_ = std::make_unique<rlvmm::VirtualBlockDevice>(
      sim_, *vm_, *kernel_, log_ep, log_target->geometry(),
      "guest-log-vblk");

  cpu_ = std::make_unique<rldb::GuestCpu>(*vm_);
}

Task<void> Testbed::OpenDatabase() {
  rldb::DbOptions db_opts = options_.db;
  if (options_.mode == DeploymentMode::kUnsafeAsync) {
    db_opts.durability = rldb::DurabilityMode::kAsyncUnsafe;
  }
  rlstor::BlockDevice* data_dev;
  rlstor::BlockDevice* log_dev;
  if (options_.mode == DeploymentMode::kNative) {
    data_dev = data_partition_.get();
    log_dev = &LogTarget();
  } else {
    data_dev = guest_data_dev_.get();
    log_dev = guest_log_dev_.get();
  }
  db_ = co_await rldb::Database::Open(sim_, *cpu_, *data_dev, *log_dev,
                                      db_opts);
}

Task<void> Testbed::Start() { co_await OpenDatabase(); }

void Testbed::CutPower() {
  sim_.EmitTrace("testbed", "cut-power", 0);
  psu_->CutMains();
}

Task<void> Testbed::RestorePowerAndRecover() {
  // Settle: give every in-flight guest operation time to complete its
  // device-level leg and unwind while the engine object is still alive.
  co_await sim_.Sleep(rlsim::Duration::Millis(300));
  if (db_ != nullptr) {
    co_await db_->Close();
    db_.reset();
  }
  psu_->RestoreMains();
  if (vm_ != nullptr && !vm_->running()) {
    vm_->Reset();
  }
  co_await OpenDatabase();
}

Task<void> Testbed::RestorePowerAndRecoverFromReplica() {
  RL_CHECK_MSG(shipper_ != nullptr,
               "replica restore needs replication enabled");
  co_await sim_.Sleep(rlsim::Duration::Millis(300));
  if (db_ != nullptr) {
    co_await db_->Close();
    db_.reset();
  }
  psu_->RestoreMains();

  // Pick the most advanced replica (in a real failover: highest-cursor
  // survivor) and splice its log image onto the primary's physical log disk,
  // replacing whatever the dead primary held there.
  size_t best = 0;
  for (size_t r = 1; r < replicas_.size(); ++r) {
    if (replicas_[r]->cursor() > replicas_[best]->cursor()) {
      best = r;
    }
  }
  const rlstor::DiskImage& src = replicas_[best]->disk().image();
  rlstor::DiskImage& dst = log_disk_physical().image();
  // In every DiskSetup the log occupies physical sectors [0, log sectors):
  // either a dedicated device or the first partition of the shared spindle.
  // A restore wipes that range first — the replacement log must not be
  // contaminated by the dead primary's locally-durable-but-unreplicated tail.
  std::array<uint8_t, rlstor::kSectorSize> buf{};
  for (const uint64_t sector : dst.DurableSectorList()) {
    if (sector < log_sector_count_) {
      dst.WriteDurable(sector, buf);
    }
  }
  for (const uint64_t sector : src.DurableSectorList()) {
    RL_CHECK(sector < log_sector_count_);
    src.ReadDurable(sector, buf);
    dst.WriteDurable(sector, buf);
  }

  if (vm_ != nullptr && !vm_->running()) {
    vm_->Reset();
  }
  co_await OpenDatabase();
}

void Testbed::PartitionReplica(size_t r) {
  RL_CHECK(fabric_ != nullptr);
  sim_.EmitTrace("testbed", "partition-replica", static_cast<uint32_t>(r));
  fabric_->SetLinkUp("primary", replicas_.at(r)->name(), false);
}

void Testbed::HealReplica(size_t r) {
  RL_CHECK(fabric_ != nullptr);
  sim_.EmitTrace("testbed", "heal-replica", static_cast<uint32_t>(r));
  fabric_->SetLinkUp("primary", replicas_.at(r)->name(), true);
}

void Testbed::SetReplicaLinkLoss(size_t r, double drop_probability) {
  RL_CHECK(fabric_ != nullptr);
  sim_.EmitTrace("testbed", "set-link-loss", static_cast<uint32_t>(r));
  fabric_->SetLinkLoss("primary", replicas_.at(r)->name(), drop_probability);
}

void Testbed::KillReplica(size_t r) {
  RL_CHECK(fabric_ != nullptr);
  sim_.EmitTrace("testbed", "kill-replica", static_cast<uint32_t>(r));
  replicas_.at(r)->disk().PowerLoss();
  fabric_->SetLinkUp("primary", replicas_.at(r)->name(), false);
}

void Testbed::ReviveReplica(size_t r) {
  RL_CHECK(fabric_ != nullptr);
  sim_.EmitTrace("testbed", "revive-replica", static_cast<uint32_t>(r));
  replicas_.at(r)->disk().PowerRestore();
  fabric_->SetLinkUp("primary", replicas_.at(r)->name(), true);
}

void Testbed::InjectLogDiskWriteFaults(uint32_t count) {
  log_disk_physical().InjectWriteFaults(count);
}

void Testbed::InjectDataDiskWriteFaults(uint32_t count) {
  data_disk().InjectWriteFaults(count);
}

void Testbed::RegisterReplicationStats(rlsim::StatsRegistry& registry) const {
  if (fabric_ == nullptr) {
    return;
  }
  fabric_->RegisterStats(registry, options_.instance + "net.");
  shipper_->RegisterStats(registry, options_.instance + "ship.");
  for (const auto& replica : replicas_) {
    replica->RegisterStats(registry, options_.instance + replica->name() + ".");
  }
}

void Testbed::CrashGuest() {
  RL_CHECK_MSG(vm_ != nullptr, "native deployment has no guest to crash");
  sim_.EmitTrace("testbed", "crash-guest", 0);
  vm_->Crash();
}

Task<void> Testbed::RecoverAfterGuestCrash() {
  co_await sim_.Sleep(rlsim::Duration::Millis(300));
  if (db_ != nullptr) {
    co_await db_->Close();
    db_.reset();
  }
  if (rapilog_ != nullptr) {
    // Below-the-guest drain: everything the dead DBMS was promised reaches
    // the disk before the new incarnation recovers.
    co_await rapilog_->Quiesce();
  }
  if (vm_ != nullptr && !vm_->running()) {
    vm_->Reset();
  }
  co_await OpenDatabase();
}

}  // namespace rlharness

// Deterministic fan-out of independent simulation jobs.
//
// The evaluation is a matrix of independent seeded runs (chaos episodes,
// bench sweep cells, divergence-audit pairs, nightly seed walks). Each job
// constructs its own Simulator/Testbed from its own (seed, config) — no
// shared mutable state by construction — so jobs can execute on real OS
// threads without touching the single-threaded determinism of any one
// simulation. Determinism of the *aggregate* comes from the reduction, not
// the execution order: results land in a slot indexed by job number and are
// consumed in job-index order, so output is byte-identical for --jobs 1 and
// --jobs 32.
//
// This is deliberately not a work-stealing scheduler: workers pull the next
// job index from one atomic counter and write only to their own result slot.
// There is nothing to steal, no locks, and no cross-job communication — the
// whole point is that the no-shared-state claim is checkable (simlint SL007
// bans threads everywhere else in src/; TSan runs the chaos driver in CI).
//
// Threads are allowed in THIS file only (and tools/); see SL007.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace rlharness {

// Worker-thread count for --jobs 0 / "use the machine": hardware
// concurrency, at least 1.
int DefaultJobs();

// Runs fn(0) .. fn(n-1) on min(max(jobs, 1), n) threads (jobs <= 1 runs
// inline on the caller with no threads at all). Every job runs exactly once
// regardless of other jobs' failures; if any job threw, the exception of the
// LOWEST job index is rethrown after all jobs finish — the same exception a
// sequential loop that kept going would surface. fn must not share mutable
// state across invocations.
void RunIndexedJobs(int jobs, size_t n, const std::function<void(size_t)>& fn);

// Typed fan-out: results[i] = fn(i), merged in job-index order. R must be
// default-constructible and movable.
template <typename R, typename Fn>
std::vector<R> RunJobs(int jobs, size_t n, Fn&& fn) {
  std::vector<R> results(n);
  RunIndexedJobs(jobs, n, [&results, &fn](size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace rlharness

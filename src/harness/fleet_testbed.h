// A fleet of shard testbeds behind a 2PC coordinator — the E13 topology.
//
// Each shard is a full Testbed (its own PSU, disks, microkernel, VMM,
// RapiLog device and database engine — an independent failure domain); the
// coordinator is a separate node with a durable decision log on its own
// disk. One deterministic NetworkFabric carries all coordinator<->shard
// traffic ("coord" <-> "shard-i" links), distinct from any per-shard
// replication fabric.
//
// Fault surface: kill/recover a shard (power), crash/reboot its guest,
// partition/heal a shard's link, kill/recover the coordinator. All
// idempotent and safe to fire in any order — the protocol's timeouts,
// retransmissions and in-doubt resolution absorb every interleaving.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/net/network_fabric.h"
#include "src/shard/shard_directory.h"
#include "src/shard/shard_node.h"
#include "src/shard/txn_coordinator.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/harness/testbed.h"

namespace rlharness {

struct FleetOptions {
  size_t shards = 2;
  // Flat key space the directory partitions. Workload keys must stay below
  // this.
  uint64_t key_space = 1 << 20;
  // Template for every shard's testbed; `instance` is overwritten with
  // "shard-i." per shard.
  TestbedOptions shard;
  // Coordinator <-> shard link characteristics.
  rlnet::LinkParams link;
  rlshard::CoordinatorOptions coordinator;
  rlshard::ShardNodeOptions node;
};

class FleetTestbed {
 public:
  FleetTestbed(rlsim::Simulator& sim, FleetOptions options);
  ~FleetTestbed();

  // Boots every shard testbed, recovers the coordinator's decision log and
  // starts the protocol agents.
  rlsim::Task<void> Start();

  // Drains in-flight protocol state so the simulator can tear down: closes
  // shard databases and the decision log writer.
  rlsim::Task<void> Shutdown();

  const rlshard::ShardDirectory& directory() const { return directory_; }
  rlshard::TxnCoordinator& coordinator() { return *coordinator_; }
  rlnet::NetworkFabric& fabric() { return fabric_; }
  size_t shard_count() const { return beds_.size(); }
  Testbed& shard(size_t i) { return *beds_.at(i); }
  rlshard::ShardNode& node(size_t i) { return *nodes_.at(i); }
  // The shard's live engine, or nullptr while the shard machine is down.
  rldb::Database* shard_db(size_t i);

  // --- Fault injection ------------------------------------------------------

  void KillShard(size_t i);                      // power cut
  rlsim::Task<void> RecoverShard(size_t i);      // power + crash recovery
  void CrashShardGuest(size_t i);                // guest OS dies, power stays
  rlsim::Task<void> RecoverShardGuest(size_t i);
  void PartitionShard(size_t i);                 // coord<->shard link down
  void HealShard(size_t i);
  void KillCoordinator();                        // volatile state + disk power
  rlsim::Task<void> RecoverCoordinator();

  bool shard_powered(size_t i) const { return beds_.at(i)->psu().mains_on(); }
  bool shard_partitioned(size_t i) const;
  bool coordinator_alive() const { return coordinator_->alive(); }

  // Waits (polling) until no shard holds an in-doubt transaction and the
  // coordinator has no decision pushes outstanding. Returns false if
  // `budget` elapsed first. Call with the fleet fully healed.
  rlsim::Task<bool> ResolveAllInDoubt(rlsim::Duration budget);

  // Registers coordinator ("coord."), per-node ("shard-i.2pc."), fleet
  // fabric ("fleet.net.") and per-shard replication stats.
  void RegisterStats(rlsim::StatsRegistry& registry) const;

 private:
  rlsim::Simulator& sim_;
  FleetOptions options_;
  rlshard::ShardDirectory directory_;
  rlnet::NetworkFabric fabric_;

  std::vector<std::unique_ptr<Testbed>> beds_;
  std::unique_ptr<rlstor::SimBlockDevice> coord_disk_;
  std::unique_ptr<rlshard::TxnCoordinator> coordinator_;
  std::vector<std::unique_ptr<rlshard::ShardNode>> nodes_;
};

}  // namespace rlharness

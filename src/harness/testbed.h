// The full experimental testbed: composes power supply, physical disks,
// microkernel, VMM, RapiLog and the database engine into the deployment
// configurations the paper compares, and provides the fault-injection and
// recovery entry points the experiments drive.
//
//   kNative      DBMS on bare metal, synchronous durable log writes.
//   kVirt        DBMS in a guest VM, paravirtual disks, synchronous writes
//                (isolates the virtualisation overhead).
//   kRapiLog     Like kVirt, but the log disk's backend is a RapiLogDevice —
//                the guest and DBMS are unmodified.
//   kUnsafeAsync Like kVirt with asynchronous (non-durable) commit: the
//                performance upper bound RapiLog is measured against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/power/power.h"
#include "src/rapilog/rapilog_device.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"
#include "src/storage/partition.h"
#include "src/vmm/virtual_block_device.h"
#include "src/vmm/vm.h"

namespace rlharness {

enum class DeploymentMode { kNative, kVirt, kRapiLog, kUnsafeAsync };
enum class DiskSetup {
  kSharedHdd,    // one spindle, log and data partitions share it
  kSeparateHdd,  // dedicated log spindle
  kBbwc,         // battery-backed write cache in front of both disks
  kSsdLog,       // HDD data, SSD log
};

std::string ToString(DeploymentMode m);
std::string ToString(DiskSetup d);

struct TestbedOptions {
  DeploymentMode mode = DeploymentMode::kRapiLog;
  DiskSetup disks = DiskSetup::kSharedHdd;
  rldb::DbOptions db;
  rlpow::PsuParams psu;
  rapilog::RapiLogOptions rapilog;
  rlvmm::VmParams vm;
};

class Testbed {
 public:
  Testbed(rlsim::Simulator& sim, TestbedOptions options);
  ~Testbed();

  // Builds the stack and opens (or recovers) the database.
  rlsim::Task<void> Start();

  rldb::Database& db() { return *db_; }
  bool db_open() const { return db_ != nullptr; }

  // --- Fault injection ------------------------------------------------------

  // Pulls the plug. The PSU warns the trusted layer, RapiLog drains, the
  // rails drop, devices lose their volatile caches, the guest dies.
  void CutPower();

  // Mains return; devices power up; the database recovers from disk.
  rlsim::Task<void> RestorePowerAndRecover();

  // Kills the guest OS/DBMS only (trusted layer and devices unaffected).
  void CrashGuest();

  // Reboots the guest: waits for RapiLog to drain its buffer ("eventual
  // durability" realised), then re-opens the database.
  rlsim::Task<void> RecoverAfterGuestCrash();

  // --- Introspection ----------------------------------------------------------

  rapilog::RapiLogDevice* rapilog() { return rapilog_.get(); }
  rlpow::PowerSupply& psu() { return *psu_; }
  rlvmm::VirtualMachine* vm() { return vm_.get(); }
  rlstor::SimBlockDevice& data_disk() { return *data_disk_; }
  rlstor::SimBlockDevice& log_disk_physical() {
    return separate_log_disk_ ? *separate_log_disk_ : *data_disk_;
  }
  const TestbedOptions& options() const { return options_; }

 private:
  class DiskPowerSink;
  class GuestPowerSink;

  rlsim::Task<void> OpenDatabase();
  void BuildDevices();
  void BuildGuestStack();

  rlsim::Simulator& sim_;
  TestbedOptions options_;

  std::unique_ptr<rlpow::PowerSupply> psu_;

  // Physical storage.
  std::unique_ptr<rlstor::SimBlockDevice> data_disk_;
  std::unique_ptr<rlstor::SimBlockDevice> separate_log_disk_;
  std::unique_ptr<rlstor::PartitionDevice> data_partition_;
  std::unique_ptr<rlstor::PartitionDevice> log_partition_;

  // Trusted layer.
  std::unique_ptr<rapilog::RapiLogDevice> rapilog_;
  std::unique_ptr<rlkern::Kernel> kernel_;
  std::unique_ptr<rlvmm::VirtualMachine> vm_;
  std::unique_ptr<rlvmm::BlockBackend> data_backend_;
  std::unique_ptr<rlvmm::BlockBackend> log_backend_;
  rlkern::ObjectId root_cnode_ = rlkern::kNullObject;

  // Guest-visible devices.
  std::unique_ptr<rlvmm::VirtualBlockDevice> guest_data_dev_;
  std::unique_ptr<rlvmm::VirtualBlockDevice> guest_log_dev_;

  std::unique_ptr<rldb::CpuContext> cpu_;
  std::unique_ptr<rldb::Database> db_;

  std::vector<std::unique_ptr<rlpow::PowerSink>> power_sinks_;
};

}  // namespace rlharness

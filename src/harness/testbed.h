// The full experimental testbed: composes power supply, physical disks,
// microkernel, VMM, RapiLog and the database engine into the deployment
// configurations the paper compares, and provides the fault-injection and
// recovery entry points the experiments drive.
//
//   kNative      DBMS on bare metal, synchronous durable log writes.
//   kVirt        DBMS in a guest VM, paravirtual disks, synchronous writes
//                (isolates the virtualisation overhead).
//   kRapiLog     Like kVirt, but the log disk's backend is a RapiLogDevice —
//                the guest and DBMS are unmodified.
//   kUnsafeAsync Like kVirt with asynchronous (non-durable) commit: the
//                performance upper bound RapiLog is measured against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/net/network_fabric.h"
#include "src/power/power.h"
#include "src/rapilog/rapilog_device.h"
#include "src/replica/log_shipper.h"
#include "src/replica/replica_node.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/storage/block_device.h"
#include "src/storage/partition.h"
#include "src/vmm/virtual_block_device.h"
#include "src/vmm/vm.h"

namespace rlharness {

enum class DeploymentMode { kNative, kVirt, kRapiLog, kUnsafeAsync };
enum class DiskSetup {
  kSharedHdd,    // one spindle, log and data partitions share it
  kSeparateHdd,  // dedicated log spindle
  kBbwc,         // battery-backed write cache in front of both disks
  kSsdLog,       // HDD data, SSD log
};

std::string ToString(DeploymentMode m);
std::string ToString(DiskSetup d);

// Replicated topology: a LogShipper interposed on the primary's log path,
// streaming to `replicas` ReplicaNodes ("replica-0"...) over a NetworkFabric.
// The replicas are separate failure domains (their disks do not ride the
// primary's PSU).
struct ReplicationOptions {
  bool enabled = false;
  size_t replicas = 2;
  rlnet::LinkParams link;          // primary <-> each replica
  rlrep::ShipperOptions shipper;
  rlrep::ReplicaOptions replica;
};

struct TestbedOptions {
  // Stats namespace for this testbed instance (e.g. "shard-0."). Prefixed
  // to every name RegisterReplicationStats registers, so multiple testbeds
  // can share one StatsRegistry without colliding on "net." / "ship." /
  // "replica-N.". Empty (the single-testbed default) keeps historic names.
  std::string instance;
  DeploymentMode mode = DeploymentMode::kRapiLog;
  DiskSetup disks = DiskSetup::kSharedHdd;
  rldb::DbOptions db;
  rlpow::PsuParams psu;
  rapilog::RapiLogOptions rapilog;
  rlvmm::VmParams vm;
  ReplicationOptions replication;
};

class Testbed {
 public:
  Testbed(rlsim::Simulator& sim, TestbedOptions options);
  ~Testbed();

  // Builds the stack and opens (or recovers) the database.
  rlsim::Task<void> Start();

  rldb::Database& db() { return *db_; }
  bool db_open() const { return db_ != nullptr; }

  // --- Fault injection ------------------------------------------------------

  // Pulls the plug. The PSU warns the trusted layer, RapiLog drains, the
  // rails drop, devices lose their volatile caches, the guest dies.
  void CutPower();

  // Mains return; devices power up; the database recovers from disk.
  rlsim::Task<void> RestorePowerAndRecover();

  // Mains return, but the primary's log disk is treated as lost with the
  // machine: before recovery, its image is replaced by the most advanced
  // replica's log image (the disk-to-disk restore a failover would do). The
  // database then recovers from the replicated log. Requires replication.
  rlsim::Task<void> RestorePowerAndRecoverFromReplica();

  // Partitions (heals) the link between the primary and replica `r`.
  void PartitionReplica(size_t r);
  void HealReplica(size_t r);

  // Degrades (restores) the primary<->replica link to the given random-loss
  // probability without taking it down.
  void SetReplicaLinkLoss(size_t r, double drop_probability);

  // Kills replica `r` outright: its disk loses power and its link drops.
  // Revive powers the disk back up and heals the link; the shipper's
  // go-back-N retransmission then catches the replica up. Both idempotent.
  void KillReplica(size_t r);
  void ReviveReplica(size_t r);

  // Arms the next `count` writes against the physical log/data disk to fail
  // with kIoError after landing a torn sector prefix (see
  // SimBlockDevice::InjectWriteFaults). Cleared by the next power cycle.
  void InjectLogDiskWriteFaults(uint32_t count);
  void InjectDataDiskWriteFaults(uint32_t count);

  // Kills the guest OS/DBMS only (trusted layer and devices unaffected).
  void CrashGuest();

  // Reboots the guest: waits for RapiLog to drain its buffer ("eventual
  // durability" realised), then re-opens the database.
  rlsim::Task<void> RecoverAfterGuestCrash();

  // --- Introspection ----------------------------------------------------------

  rapilog::RapiLogDevice* rapilog() { return rapilog_.get(); }
  rlpow::PowerSupply& psu() { return *psu_; }
  rlvmm::VirtualMachine* vm() { return vm_.get(); }
  // Null in kNative mode (no guest stack). The per-stage latency benches
  // read its request_latency histogram for the VMM leg of the commit path.
  rlvmm::VirtualBlockDevice* guest_log_dev() { return guest_log_dev_.get(); }
  rlstor::SimBlockDevice& data_disk() { return *data_disk_; }
  rlstor::SimBlockDevice& log_disk_physical() {
    return separate_log_disk_ ? *separate_log_disk_ : *data_disk_;
  }
  // Physical layout for disk-image tooling (the recovery-equivalence oracle
  // clones crash states): where the engine's data LBA 0 sits on data_disk(),
  // and how many sectors of log_disk_physical() the log region occupies.
  uint64_t data_first_lba() const {
    return separate_log_disk_ ? 0 : log_sector_count_;
  }
  uint64_t log_sector_count() const { return log_sector_count_; }
  rlrep::LogShipper* shipper() { return shipper_.get(); }
  const rlrep::LogShipper* shipper() const { return shipper_.get(); }
  rlrep::ReplicaNode& replica(size_t r) { return *replicas_.at(r); }
  size_t replica_count() const { return replicas_.size(); }
  rlnet::NetworkFabric* fabric() { return fabric_.get(); }

  // Registers fabric/shipper/replica stats under "net." / "ship." /
  // "replica-N." for uniform bench reporting. No-op without replication.
  void RegisterReplicationStats(rlsim::StatsRegistry& registry) const;

  const TestbedOptions& options() const { return options_; }

 private:
  class DiskPowerSink;
  class GuestPowerSink;
  class ShipperPowerSink;

  rlsim::Task<void> OpenDatabase();
  void BuildDevices();
  void BuildReplication(rlstor::BlockDevice& local_log);
  void BuildGuestStack();
  // The DBMS-facing log device: shipper if replicated, else RapiLog, else
  // the raw log disk/partition.
  rlstor::BlockDevice& LogTarget();

  rlsim::Simulator& sim_;
  TestbedOptions options_;

  std::unique_ptr<rlpow::PowerSupply> psu_;

  // Physical storage.
  std::unique_ptr<rlstor::SimBlockDevice> data_disk_;
  std::unique_ptr<rlstor::SimBlockDevice> separate_log_disk_;
  std::unique_ptr<rlstor::PartitionDevice> data_partition_;
  std::unique_ptr<rlstor::PartitionDevice> log_partition_;

  // Replication (optional).
  std::unique_ptr<rlnet::NetworkFabric> fabric_;
  std::vector<std::unique_ptr<rlrep::ReplicaNode>> replicas_;
  std::unique_ptr<rlrep::LogShipper> shipper_;
  uint64_t log_sector_count_ = 0;  // log LBA range on the physical disk

  // Trusted layer.
  std::unique_ptr<rapilog::RapiLogDevice> rapilog_;
  std::unique_ptr<rlkern::Kernel> kernel_;
  std::unique_ptr<rlvmm::VirtualMachine> vm_;
  std::unique_ptr<rlvmm::BlockBackend> data_backend_;
  std::unique_ptr<rlvmm::BlockBackend> log_backend_;
  rlkern::ObjectId root_cnode_ = rlkern::kNullObject;

  // Guest-visible devices.
  std::unique_ptr<rlvmm::VirtualBlockDevice> guest_data_dev_;
  std::unique_ptr<rlvmm::VirtualBlockDevice> guest_log_dev_;

  std::unique_ptr<rldb::CpuContext> cpu_;
  std::unique_ptr<rldb::Database> db_;

  std::vector<std::unique_ptr<rlpow::PowerSink>> power_sinks_;
};

}  // namespace rlharness

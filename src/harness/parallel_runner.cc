#include "src/harness/parallel_runner.h"

#include <atomic>
#include <exception>
#include <thread>

namespace rlharness {

int DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void RunIndexedJobs(int jobs, size_t n,
                    const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const size_t workers =
      std::min(static_cast<size_t>(jobs < 1 ? 1 : jobs), n);

  // One exception slot per job, filled by whichever worker ran it; the
  // lowest-index failure is rethrown after the pool drains, so the surfaced
  // error does not depend on thread scheduling.
  std::vector<std::exception_ptr> errors(n);

  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<size_t> next{0};
    const auto worker = [&next, &errors, &fn, n] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) {
      std::rethrow_exception(e);
    }
  }
}

}  // namespace rlharness

#include "src/harness/fleet_testbed.h"

#include <utility>

#include "src/sim/check.h"
#include "src/storage/disk_model.h"

namespace rlharness {

namespace {
constexpr char kCoordEndpoint[] = "coord";
}  // namespace

FleetTestbed::FleetTestbed(rlsim::Simulator& sim, FleetOptions options)
    : sim_(sim),
      options_(std::move(options)),
      directory_(options_.shards, options_.key_space),
      fabric_(sim) {
  std::vector<std::string> shard_endpoints;
  shard_endpoints.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shard_endpoints.push_back(rlshard::ShardDirectory::EndpointName(i));
  }

  // The coordinator's decision log rides a small dedicated SSD.
  rlstor::SimBlockDevice::Options disk_opts;
  disk_opts.geometry.sector_count = 512ull * 1024;  // 256 MiB
  disk_opts.name = "coord-log";
  coord_disk_ = std::make_unique<rlstor::SimBlockDevice>(
      sim_, disk_opts, std::make_unique<rlstor::SsdModel>(rlstor::SsdParams{}));

  coordinator_ = std::make_unique<rlshard::TxnCoordinator>(
      sim_, fabric_, kCoordEndpoint, shard_endpoints, *coord_disk_,
      options_.shard.db.profile, options_.coordinator);

  for (size_t i = 0; i < options_.shards; ++i) {
    TestbedOptions bed_opts = options_.shard;
    bed_opts.instance = shard_endpoints[i] + ".";
    beds_.push_back(std::make_unique<Testbed>(sim_, bed_opts));
    // The provider re-fetches the engine on every use: recovery replaces the
    // Database object, and a powered-off machine must read as "down" (nullptr)
    // rather than as a halted engine.
    Testbed* bed = beds_.back().get();
    nodes_.push_back(std::make_unique<rlshard::ShardNode>(
        sim_, fabric_, shard_endpoints[i], kCoordEndpoint,
        [bed]() -> rldb::Database* {
          return bed->db_open() && bed->psu().mains_on() ? &bed->db() : nullptr;
        },
        options_.node));
    fabric_.Connect(kCoordEndpoint, shard_endpoints[i], options_.link);
  }
}

FleetTestbed::~FleetTestbed() = default;

rlsim::Task<void> FleetTestbed::Start() {
  for (auto& bed : beds_) {
    co_await bed->Start();
  }
  co_await coordinator_->Start();
  for (auto& node : nodes_) {
    node->Start();
  }
}

rlsim::Task<void> FleetTestbed::Shutdown() {
  for (auto& node : nodes_) {
    node->Stop();
  }
  for (auto& bed : beds_) {
    if (bed->db_open()) {
      co_await bed->db().Close();
    }
  }
  co_await coordinator_->Shutdown();
}

rldb::Database* FleetTestbed::shard_db(size_t i) {
  Testbed& bed = *beds_.at(i);
  return bed.db_open() && bed.psu().mains_on() ? &bed.db() : nullptr;
}

void FleetTestbed::KillShard(size_t i) {
  if (!beds_.at(i)->psu().mains_on()) {
    return;
  }
  beds_[i]->CutPower();
}

rlsim::Task<void> FleetTestbed::RecoverShard(size_t i) {
  if (beds_.at(i)->psu().mains_on()) {
    co_return;
  }
  co_await beds_[i]->RestorePowerAndRecover();
}

void FleetTestbed::CrashShardGuest(size_t i) {
  if (!beds_.at(i)->psu().mains_on()) {
    return;
  }
  beds_[i]->CrashGuest();
}

rlsim::Task<void> FleetTestbed::RecoverShardGuest(size_t i) {
  co_await beds_.at(i)->RecoverAfterGuestCrash();
}

void FleetTestbed::PartitionShard(size_t i) {
  fabric_.SetLinkUp(kCoordEndpoint, rlshard::ShardDirectory::EndpointName(i),
                    false);
}

void FleetTestbed::HealShard(size_t i) {
  fabric_.SetLinkUp(kCoordEndpoint, rlshard::ShardDirectory::EndpointName(i),
                    true);
}

bool FleetTestbed::shard_partitioned(size_t i) const {
  return !fabric_.link_up(kCoordEndpoint,
                          rlshard::ShardDirectory::EndpointName(i));
}

void FleetTestbed::KillCoordinator() {
  if (!coordinator_->alive()) {
    return;
  }
  // Disk first so an in-flight decision write fails like real hardware, then
  // the volatile state.
  coord_disk_->PowerLoss();
  coordinator_->Crash();
}

rlsim::Task<void> FleetTestbed::RecoverCoordinator() {
  if (coordinator_->alive()) {
    co_return;
  }
  coord_disk_->PowerRestore();
  co_await coordinator_->Recover();
}

rlsim::Task<bool> FleetTestbed::ResolveAllInDoubt(rlsim::Duration budget) {
  const rlsim::TimePoint deadline = sim_.now() + budget;
  while (true) {
    bool quiet =
        coordinator_->alive() && coordinator_->pushes_outstanding() == 0;
    for (size_t i = 0; quiet && i < beds_.size(); ++i) {
      rldb::Database* db = shard_db(i);
      if (db == nullptr || !db->InDoubtGlobalIds().empty()) {
        quiet = false;
      }
    }
    if (quiet) {
      co_return true;
    }
    if (sim_.now() >= deadline) {
      co_return false;
    }
    co_await sim_.Sleep(rlsim::Duration::Millis(50));
  }
}

void FleetTestbed::RegisterStats(rlsim::StatsRegistry& registry) const {
  coordinator_->RegisterStats(registry, "coord.");
  fabric_.RegisterStats(registry, "fleet.net.");
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->RegisterStats(
        registry, rlshard::ShardDirectory::EndpointName(i) + ".2pc.");
    beds_[i]->RegisterReplicationStats(registry);
  }
}

}  // namespace rlharness

// DivergenceAuditor: the dynamic half of the determinism discipline.
//
// The static half (tools/simlint) bans the *sources* of nondeterminism; this
// auditor checks the *property* end to end: run any Testbed/chaos scenario
// twice from the same seed, record the trace-event stream each run emits
// (src/sim/trace.h — virtual timestamp, actor, kind, payload CRC-32C), fold
// each stream into per-epoch digests, and if the runs disagree, report the
// first diverging event. "Replay broke" becomes a pinpointed diff — which
// component, at which virtual time, produced different bytes — instead of a
// mystery hash mismatch at the end of a run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/trace.h"

namespace rlharness {

struct TraceEvent {
  int64_t at_ns = 0;  // virtual time
  std::string actor;
  std::string kind;
  uint32_t payload_crc = 0;

  bool operator==(const TraceEvent&) const = default;
  std::string ToString() const;
};

// Collects the trace stream of one run. Install with Simulator::set_tracer.
class TraceRecorder : public rlsim::TraceEventSink {
 public:
  void OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                    std::string_view kind, uint32_t payload_crc) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

// One virtual-time window's digest: an FNV-1a chain over every event in
// [epoch_index * epoch_ns, (epoch_index + 1) * epoch_ns).
struct EpochDigest {
  int64_t epoch_index = 0;
  uint64_t digest = 0;
  uint64_t events = 0;

  bool operator==(const EpochDigest&) const = default;
};

std::vector<EpochDigest> FoldEpochs(const std::vector<TraceEvent>& events,
                                    int64_t epoch_ns);

struct DivergenceReport {
  bool identical = true;
  size_t events_a = 0;
  size_t events_b = 0;
  int64_t epoch_ns = 0;
  // First epoch whose digests disagree (virtual-time window index), and the
  // index of the first event where the two streams differ. When one stream
  // is a strict prefix of the other, the index is the shorter length.
  int64_t first_bad_epoch = -1;
  size_t first_diverging_event = 0;
  std::string event_a;  // rendered diverging event ("<end of stream>" if
  std::string event_b;  // one run stopped emitting first)

  // Multi-line human report; single "identical" line when runs agree.
  std::string Summary() const;
};

class DivergenceAuditor {
 public:
  // Epoch width in virtual nanoseconds. 100ms folds a sub-second chaos
  // episode into a handful of digests without hiding where the split is.
  explicit DivergenceAuditor(int64_t epoch_ns = 100'000'000)
      : epoch_ns_(epoch_ns) {}

  // Runs the scenario twice with a fresh recorder each time and compares.
  // The scenario must be a pure function of its own inputs (seed, config):
  // anything else IS the nondeterminism this auditor exists to catch. With
  // jobs >= 2 the two runs execute on concurrent worker threads
  // (src/harness/parallel_runner) — legitimate precisely because the
  // scenario is required to be pure; the comparison is unchanged.
  using RunFn = std::function<void(rlsim::TraceEventSink& sink)>;
  DivergenceReport RunTwice(const RunFn& run, int jobs = 1) const;

  DivergenceReport Compare(const std::vector<TraceEvent>& a,
                           const std::vector<TraceEvent>& b) const;

 private:
  int64_t epoch_ns_;
};

}  // namespace rlharness

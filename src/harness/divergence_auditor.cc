#include "src/harness/divergence_auditor.h"

#include <algorithm>
#include <cstdio>

#include "src/harness/parallel_runner.h"
#include "src/sim/check.h"
#include "src/sim/crc32.h"

namespace rlharness {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t MixEvent(uint64_t h, const TraceEvent& e) {
  h = FnvMix(h, static_cast<uint64_t>(e.at_ns));
  h = FnvMix(h, rlsim::Crc32c(
                    {reinterpret_cast<const uint8_t*>(e.actor.data()),
                     e.actor.size()}));
  h = FnvMix(h, rlsim::Crc32c(
                    {reinterpret_cast<const uint8_t*>(e.kind.data()),
                     e.kind.size()}));
  h = FnvMix(h, e.payload_crc);
  return h;
}

}  // namespace

std::string TraceEvent::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "[%10lld us] %s %s crc=%08x",
                static_cast<long long>(at_ns / 1000), actor.c_str(),
                kind.c_str(), payload_crc);
  return buf;
}

void TraceRecorder::OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                                 std::string_view kind,
                                 uint32_t payload_crc) {
  events_.push_back(TraceEvent{(at - rlsim::TimePoint::Origin()).nanos(),
                               std::string(actor), std::string(kind),
                               payload_crc});
}

std::vector<EpochDigest> FoldEpochs(const std::vector<TraceEvent>& events,
                                    int64_t epoch_ns) {
  RL_CHECK(epoch_ns > 0);
  std::vector<EpochDigest> epochs;
  for (const TraceEvent& e : events) {
    const int64_t idx = e.at_ns / epoch_ns;
    if (epochs.empty() || epochs.back().epoch_index != idx) {
      // Trace events arrive in nondecreasing virtual time, so epochs close
      // in order; empty windows are simply absent.
      RL_CHECK(epochs.empty() || epochs.back().epoch_index < idx);
      epochs.push_back(EpochDigest{idx, kFnvOffset, 0});
    }
    epochs.back().digest = MixEvent(epochs.back().digest, e);
    ++epochs.back().events;
  }
  return epochs;
}

std::string DivergenceReport::Summary() const {
  char buf[256];
  if (identical) {
    std::snprintf(buf, sizeof(buf),
                  "identical: %zu events, digests agree in every epoch",
                  events_a);
    return buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "DIVERGED at event %zu (epoch %lld, %lld us window):\n"
      "  run 1: %s\n  run 2: %s\n  (%zu vs %zu events total)",
      first_diverging_event, static_cast<long long>(first_bad_epoch),
      static_cast<long long>(epoch_ns / 1000), event_a.c_str(),
      event_b.c_str(), events_a, events_b);
  return buf;
}

DivergenceReport DivergenceAuditor::Compare(
    const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b) const {
  DivergenceReport report;
  report.events_a = a.size();
  report.events_b = b.size();
  report.epoch_ns = epoch_ns_;
  if (FoldEpochs(a, epoch_ns_) == FoldEpochs(b, epoch_ns_)) {
    // Digest equality over every epoch implies (modulo CRC collisions) the
    // streams agree; skip the per-event scan.
    return report;
  }
  report.identical = false;
  const size_t common = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < common && a[i] == b[i]) {
    ++i;
  }
  report.first_diverging_event = i;
  report.event_a = i < a.size() ? a[i].ToString() : "<end of stream>";
  report.event_b = i < b.size() ? b[i].ToString() : "<end of stream>";
  const int64_t at_ns =
      i < a.size() ? a[i].at_ns : (i < b.size() ? b[i].at_ns : 0);
  report.first_bad_epoch = at_ns / epoch_ns_;
  return report;
}

DivergenceReport DivergenceAuditor::RunTwice(const RunFn& run,
                                             int jobs) const {
  TraceRecorder recorders[2];
  RunIndexedJobs(jobs, 2,
                 [&run, &recorders](size_t i) { run(recorders[i]); });
  return Compare(recorders[0].events(), recorders[1].events());
}

}  // namespace rlharness

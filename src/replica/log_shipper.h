// LogShipper: hooks the primary's durable-log write path and streams every
// sealed log block to a set of ReplicaNodes over the network fabric.
//
// The shipper is a BlockDevice interposer: it sits between the DBMS-facing
// log device and the local durable path (the RapiLogDevice in a RapiLog
// deployment, the raw log disk otherwise). Every Write is assigned a dense
// sequence number, CRC-framed, and sent to each replica; the local write
// proceeds concurrently, so shipping costs the primary no mechanical time.
//
// Two replication modes:
//   * kAsync      the primary never blocks on the network: Write/Flush
//                 complete on local durability alone, and replication lag
//                 (blocks shipped but not yet quorum-durable) is tracked as
//                 a statistic. Durability across primary loss is bounded by
//                 that lag.
//   * kQuorumAck  Flush — the WAL's durability point — and FUA writes
//                 complete only once a majority of replicas have reported
//                 the data durable on their own disks. Commit latency then
//                 tracks the majority link RTT; in exchange, every
//                 acknowledged commit survives even the total loss of the
//                 primary's volatile state AND its disks.
//
// Reliability over the lossy fabric is go-back-N: replicas ack with a
// cumulative cursor; a retransmission timer (exponential backoff, capped)
// resends from the lowest unacked cursor, which is also what catches a
// replica up after a partition heals. After a primary power cycle the
// in-memory window is gone, so the shipper instead sends RESET(next_seq):
// replicas fast-forward across the unrecoverable gap and resume (a real
// deployment would re-ship from the local log; the epoch jump keeps the
// model small and is visible in the replica's `resets` counter).
//
// For the durability oracle (src/faults), the shipper keeps an append-only
// audit log of per-sector CRCs for everything it ever shipped, plus a
// snapshot of the quorum cursor taken when the rails drop. That metadata is
// checker state, not system state: it survives power loss by design.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/net/network_fabric.h"
#include "src/obs/trace_context.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/storage/block_device.h"

namespace rlrep {

enum class ShipMode { kAsync, kQuorumAck };

std::string ToString(ShipMode m);

struct ShipperOptions {
  ShipMode mode = ShipMode::kAsync;
  // Base retransmission timeout: no cursor progress for this long (while
  // data is outstanding) triggers a resend from the replica's cursor. Must
  // comfortably exceed link RTT + replica apply time.
  rlsim::Duration retransmit_timeout = rlsim::Duration::Millis(15);
  // Granularity of the retransmission timer.
  rlsim::Duration retransmit_tick = rlsim::Duration::Millis(1);
  // Exponential backoff cap: timeout * 2^k with k <= this.
  int max_backoff_doublings = 4;
  // Blocks re-sent per peer per timer firing.
  size_t max_resend_batch = 64;
};

// Everything ever shipped, for block-level durability auditing.
struct ShippedBlockMeta {
  uint64_t seq = 0;
  uint64_t lba = 0;
  std::vector<uint32_t> sector_crcs;  // CRC-32C per 512-byte sector
};

class LogShipper : public rlstor::BlockDevice {
 public:
  struct Stats {
    rlsim::Counter blocks_shipped;
    rlsim::Counter bytes_shipped;
    rlsim::Counter retransmits;   // frames re-sent (data + RESET)
    rlsim::Counter acks_received;
    rlsim::Counter garbage_frames;
    rlsim::Histogram lag_blocks;         // shipped-not-quorum, sampled/ship
    rlsim::Histogram quorum_ack_latency;  // ns, ship -> quorum durable
    rlsim::Histogram quorum_wait;         // ns, stall inside Write/Flush
  };

  // `self_name` must already exist as a fabric endpoint is created here; the
  // replicas must each have an endpoint and a link to `self_name` before
  // traffic flows. `local` is the primary's own durable path and must
  // outlive the shipper.
  LogShipper(rlsim::Simulator& sim, rlnet::NetworkFabric& fabric,
             const std::string& self_name,
             std::vector<std::string> replica_names,
             rlstor::BlockDevice& local, ShipperOptions options);

  // --- rlstor::BlockDevice ---------------------------------------------------

  const rlstor::Geometry& geometry() const override {
    return local_.geometry();
  }

  // Ships the block to every replica, then performs the local write. In
  // quorum mode a FUA write additionally waits for majority durability.
  rlsim::Task<rlstor::BlockStatus> Write(uint64_t lba,
                                         std::span<const uint8_t> data,
                                         bool fua) override;

  // Local flush; in quorum mode additionally waits until everything shipped
  // so far is majority-durable (this is the WAL's commit durability point).
  rlsim::Task<rlstor::BlockStatus> Flush() override;

  rlsim::Task<rlstor::BlockStatus> Read(uint64_t lba,
                                        std::span<uint8_t> out) override;

  void EnterEmergencyMode() override { local_.EnterEmergencyMode(); }

  // --- power (wired by the harness; the shipper rides the primary's rails) --

  void PowerLoss();
  void PowerRestore();
  bool powered() const { return powered_; }

  // --- introspection ---------------------------------------------------------

  ShipMode mode() const { return options_.mode; }
  // Next sequence number to be assigned (== blocks shipped so far).
  uint64_t next_seq() const { return next_seq_; }
  // Blocks [0, quorum_cursor) are durable on a majority of replicas.
  uint64_t quorum_cursor() const { return quorum_cursor_; }
  // Replica r's durable prefix as last acknowledged.
  uint64_t peer_cursor(size_t r) const { return peers_[r].cursor; }
  size_t replica_count() const { return peers_.size(); }
  size_t quorum_size() const { return peers_.size() / 2 + 1; }

  // The quorum cursor to audit against: frozen at the instant of the last
  // power loss (the durability promise outstanding when the machine died),
  // or live if the primary never lost power.
  uint64_t audit_quorum_cursor() const {
    return had_power_loss_ ? cut_quorum_cursor_ : quorum_cursor_;
  }
  const std::vector<ShippedBlockMeta>& shipped_blocks() const {
    return audit_log_;
  }

  // Seq ranges [lo, hi) the quorum accounting jumped over via RESET after a
  // primary power cycle. Blocks inside were never genuinely
  // quorum-acknowledged — the cursor crossing them is an epoch artifact, not
  // a durability promise — so the oracles must not demand them back.
  const std::vector<std::pair<uint64_t, uint64_t>>& reset_gaps() const {
    return reset_gaps_;
  }

  const Stats& stats() const { return stats_; }
  void RegisterStats(rlsim::StatsRegistry& registry,
                     const std::string& prefix) const;

 private:
  struct Peer {
    std::string name;
    uint64_t cursor = 0;
    rlsim::TimePoint last_activity;  // last progress or resend attempt
    int backoff_doublings = 0;
  };
  struct WindowEntry {
    uint64_t seq = 0;
    std::vector<uint8_t> frame;  // encoded SHIP, resent verbatim
    // Encoded TraceContext of the original ship (empty when untraced);
    // retransmits carry it so late replica-apply spans still join the
    // block's causal tree.
    std::vector<uint8_t> ext;
    rlsim::TimePoint shipped_at;
  };

  void Ship(uint64_t lba, std::span<const uint8_t> data);
  // Recomputes the quorum cursor from peer cursors, records ack latencies
  // for newly quorum-durable blocks, wakes waiters, trims the window.
  void AdvanceQuorum();
  void ResendTo(Peer& peer);
  bool AllCaughtUp() const;
  // Returns false if power was lost while waiting.
  rlsim::Task<bool> WaitQuorumUpTo(uint64_t target);

  rlsim::Task<void> AckLoop();
  rlsim::Task<void> RetransmitLoop();

  rlsim::Simulator& sim_;
  rlnet::NetworkFabric& fabric_;
  std::string self_name_;
  rlnet::Endpoint& endpoint_;
  rlstor::BlockDevice& local_;
  ShipperOptions options_;

  std::vector<Peer> peers_;
  std::deque<WindowEntry> window_;
  uint64_t next_seq_ = 0;
  uint64_t quorum_cursor_ = 0;
  // Sequence floor after a primary power cycle: peers below it are caught up
  // via RESET rather than retransmission (the data is gone).
  uint64_t reset_floor_ = 0;

  bool powered_ = true;
  bool had_power_loss_ = false;
  uint64_t cut_quorum_cursor_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> reset_gaps_;

  rlsim::WaitQueue quorum_wake_;
  rlsim::WaitQueue retrans_wake_;

  std::vector<ShippedBlockMeta> audit_log_;
  Stats stats_;
};

}  // namespace rlrep

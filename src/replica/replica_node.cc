#include "src/replica/replica_node.h"

#include <utility>

#include "src/obs/trace_context.h"
#include "src/replica/frame.h"
#include "src/sim/check.h"
#include "src/storage/disk_model.h"

namespace rlrep {

using rlsim::Task;
using rlstor::BlockStatus;
using rlstor::kSectorSize;

ReplicaNode::ReplicaNode(rlsim::Simulator& sim, rlnet::NetworkFabric& fabric,
                         std::string name, std::string primary_name,
                         ReplicaOptions options)
    : sim_(sim),
      fabric_(fabric),
      name_(std::move(name)),
      primary_name_(std::move(primary_name)),
      endpoint_(fabric.CreateEndpoint(name_)) {
  rlstor::SimBlockDevice::Options disk_opts;
  disk_opts.geometry.sector_count = options.sector_count;
  disk_opts.cache_policy = rlstor::WriteCachePolicy::kWriteBack;
  disk_opts.name = name_ + "-disk";
  disk_ = std::make_unique<rlstor::SimBlockDevice>(
      sim_, disk_opts,
      options.ssd ? rlstor::MakeDefaultSsd() : rlstor::MakeDefaultHdd());
  sim_.Spawn(ReceiveLoop(), name_ + "-recv");
}

Task<void> ReplicaNode::ReceiveLoop() {
  while (true) {
    rlnet::Message msg = co_await endpoint_.Receive();
    const auto type = PeekFrameType(msg.payload);
    if (!type.has_value()) {
      stats_.crc_failures.Add();
      continue;
    }
    switch (*type) {
      case FrameType::kShip: {
        const rlsim::TimePoint received_at = sim_.now();
        auto ship = DecodeShip(msg.payload);
        if (!ship.has_value()) {
          stats_.crc_failures.Add();
          break;
        }
        if (ship->seq < next_expected_) {
          // Already durable here; the ack must have been lost.
          stats_.duplicates.Add();
        } else if (ship->seq > next_expected_) {
          // A predecessor was lost; go-back-N discards until it arrives.
          stats_.gaps.Add();
        } else {
          // Child of the shipper's replicate-block span (context rides the
          // frame extension, including on retransmits): the apply cost of
          // this block on this replica in the causal tree.
          const rlobs::TraceContext ctx = rlobs::TraceContext::Decode(msg.ext);
          rlsim::SpanScope span(sim_, name_, "replica-apply",
                                static_cast<int64_t>(ship->seq),
                                ctx.parent_span);
          RL_CHECK_MSG(!ship->payload.empty() &&
                           ship->payload.size() % kSectorSize == 0,
                       "shipped block not sector-aligned");
          const BlockStatus st =
              co_await disk_->Write(ship->lba, ship->payload, /*fua=*/true);
          if (st != BlockStatus::kOk) {
            // Replica disk refused (it has its own failure domain); do not
            // advance — the shipper will retransmit.
            break;
          }
          ++next_expected_;
          stats_.blocks_applied.Add();
          stats_.bytes_applied.Add(static_cast<int64_t>(ship->payload.size()));
          stats_.apply_latency.RecordDuration(sim_.now() - received_at);
        }
        fabric_.Send(name_, primary_name_, EncodeAck(next_expected_));
        break;
      }
      case FrameType::kReset: {
        const auto reset = DecodeReset(msg.payload);
        if (!reset.has_value()) {
          stats_.crc_failures.Add();
          break;
        }
        if (reset->next_seq > next_expected_) {
          next_expected_ = reset->next_seq;
          stats_.resets.Add();
        }
        fabric_.Send(name_, primary_name_, EncodeAck(next_expected_));
        break;
      }
      case FrameType::kAck:
        // Replicas do not receive acks; a misrouted frame is dropped.
        stats_.crc_failures.Add();
        break;
    }
  }
}

void ReplicaNode::RegisterStats(rlsim::StatsRegistry& registry,
                                const std::string& prefix) const {
  registry.RegisterCounter(prefix + "blocks_applied", &stats_.blocks_applied);
  registry.RegisterCounter(prefix + "bytes_applied", &stats_.bytes_applied);
  registry.RegisterCounter(prefix + "duplicates", &stats_.duplicates);
  registry.RegisterCounter(prefix + "gaps", &stats_.gaps);
  registry.RegisterCounter(prefix + "crc_failures", &stats_.crc_failures);
  registry.RegisterCounter(prefix + "resets", &stats_.resets);
  registry.RegisterHistogram(prefix + "apply_latency", &stats_.apply_latency,
                             /*as_duration=*/true);
}

}  // namespace rlrep

// A replica machine: receives sealed log blocks from the primary's
// LogShipper over the network fabric and persists them on its own simulated
// disk, at the same LBAs the primary's log device uses — so its disk image
// is, sector for sector, a (possibly lagging) copy of the primary's log.
//
// Protocol (go-back-N receiver):
//   * in-sequence SHIP  -> apply durably (FUA write), advance cursor, ACK;
//   * duplicate SHIP    -> re-ACK (the ack that retired it was lost);
//   * gap SHIP          -> discard, ACK the current cursor (the shipper's
//                          retransmission timer closes the gap);
//   * CRC mismatch      -> discard and count; indistinguishable from loss;
//   * RESET             -> fast-forward the cursor (primary power-cycled and
//                          cannot retransmit the gap; see log_shipper.h).
//
// The replica is a different failure domain: it is NOT registered with the
// primary's PSU, so a primary power cut leaves replica disks intact — that
// is the whole point of shipping the log.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/net/network_fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/storage/block_device.h"

namespace rlrep {

struct ReplicaOptions {
  // Must cover the primary log device's sector range.
  uint64_t sector_count = 512ull * 1024;
  // Replica log stores are flash by default: apply latency then stays small
  // next to the link RTT, which is the regime E11 measures.
  bool ssd = true;
};

class ReplicaNode {
 public:
  struct Stats {
    rlsim::Counter blocks_applied;
    rlsim::Counter bytes_applied;
    rlsim::Counter duplicates;     // SHIP below the cursor
    rlsim::Counter gaps;           // SHIP above the cursor (a loss upstream)
    rlsim::Counter crc_failures;   // malformed or corrupt frames
    rlsim::Counter resets;
    rlsim::Histogram apply_latency;  // ns, receive -> durable on medium
  };

  // Creates this node's fabric endpoint `name`. The caller connects it to
  // the primary (fabric.Connect) before traffic flows.
  ReplicaNode(rlsim::Simulator& sim, rlnet::NetworkFabric& fabric,
              std::string name, std::string primary_name,
              ReplicaOptions options);

  const std::string& name() const { return name_; }

  // Lowest sequence number not yet durable here; blocks [0, cursor) are on
  // this replica's medium.
  uint64_t cursor() const { return next_expected_; }

  rlstor::SimBlockDevice& disk() { return *disk_; }
  const rlstor::SimBlockDevice& disk() const { return *disk_; }

  const Stats& stats() const { return stats_; }
  void RegisterStats(rlsim::StatsRegistry& registry,
                     const std::string& prefix) const;

 private:
  rlsim::Task<void> ReceiveLoop();

  rlsim::Simulator& sim_;
  rlnet::NetworkFabric& fabric_;
  std::string name_;
  std::string primary_name_;
  rlnet::Endpoint& endpoint_;
  std::unique_ptr<rlstor::SimBlockDevice> disk_;
  uint64_t next_expected_ = 0;
  Stats stats_;
};

}  // namespace rlrep

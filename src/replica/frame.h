// Wire format for log replication (src/replica).
//
// Three frame types travel between the primary's LogShipper and its
// ReplicaNodes over the network fabric:
//
//   SHIP   primary -> replica   one sealed log block
//          [u8 type][u64 seq][u64 lba][u32 payload_len][u32 crc][payload]
//   ACK    replica -> primary   cumulative acknowledgement
//          [u8 type][u64 cursor]        cursor = lowest seq not yet durable
//   RESET  primary -> replica   epoch jump after a primary power cycle
//          [u8 type][u64 next_seq]      replica fast-forwards its cursor
//
// SHIP payloads are CRC-32C framed; a replica never applies a block whose
// checksum does not match (a corrupt or truncated frame is treated exactly
// like a lost one — the shipper's retransmission recovers it). Sequence
// numbers are assigned by the shipper in block-ship order and are dense, so
// a cumulative cursor fully describes a replica's durable prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace rlrep {

enum class FrameType : uint8_t {
  kShip = 1,
  kAck = 2,
  kReset = 3,
};

struct ShipFrame {
  uint64_t seq = 0;
  uint64_t lba = 0;
  uint32_t crc = 0;
  std::vector<uint8_t> payload;
};

struct AckFrame {
  uint64_t cursor = 0;
};

struct ResetFrame {
  uint64_t next_seq = 0;
};

inline constexpr size_t kShipHeaderBytes = 1 + 8 + 8 + 4 + 4;

// Returns the type byte, or nullopt for an empty buffer.
std::optional<FrameType> PeekFrameType(std::span<const uint8_t> buffer);

std::vector<uint8_t> EncodeShip(uint64_t seq, uint64_t lba,
                                std::span<const uint8_t> payload);
std::vector<uint8_t> EncodeAck(uint64_t cursor);
std::vector<uint8_t> EncodeReset(uint64_t next_seq);

// Decoders return nullopt on malformed frames (wrong type byte, short
// buffer, or — for SHIP — a payload CRC mismatch).
std::optional<ShipFrame> DecodeShip(std::span<const uint8_t> buffer);
std::optional<AckFrame> DecodeAck(std::span<const uint8_t> buffer);
std::optional<ResetFrame> DecodeReset(std::span<const uint8_t> buffer);

}  // namespace rlrep

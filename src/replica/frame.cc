#include "src/replica/frame.h"

#include <cstring>

#include "src/sim/crc32.h"

namespace rlrep {

namespace {

// Fixed little-endian field codec: the frame bytes are a wire format, so
// they are spelled out shift-by-shift instead of memcpy'd through object
// representations (host endianness must not leak into the stream).
template <typename T>
void Store(std::vector<uint8_t>& buf, size_t offset, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

template <typename T>
T Load(std::span<const uint8_t> buf, size_t offset) {
  T value = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(buf[offset + i]) << (8 * i);
  }
  return value;
}

}  // namespace

std::optional<FrameType> PeekFrameType(std::span<const uint8_t> buffer) {
  if (buffer.empty()) {
    return std::nullopt;
  }
  const uint8_t t = buffer[0];
  if (t < static_cast<uint8_t>(FrameType::kShip) ||
      t > static_cast<uint8_t>(FrameType::kReset)) {
    return std::nullopt;
  }
  return static_cast<FrameType>(t);
}

std::vector<uint8_t> EncodeShip(uint64_t seq, uint64_t lba,
                                std::span<const uint8_t> payload) {
  std::vector<uint8_t> buf(kShipHeaderBytes + payload.size());
  buf[0] = static_cast<uint8_t>(FrameType::kShip);
  Store<uint64_t>(buf, 1, seq);
  Store<uint64_t>(buf, 9, lba);
  Store<uint32_t>(buf, 17, static_cast<uint32_t>(payload.size()));
  Store<uint32_t>(buf, 21, rlsim::Crc32c(payload));
  std::memcpy(buf.data() + kShipHeaderBytes, payload.data(), payload.size());
  return buf;
}

std::vector<uint8_t> EncodeAck(uint64_t cursor) {
  std::vector<uint8_t> buf(1 + 8);
  buf[0] = static_cast<uint8_t>(FrameType::kAck);
  Store<uint64_t>(buf, 1, cursor);
  return buf;
}

std::vector<uint8_t> EncodeReset(uint64_t next_seq) {
  std::vector<uint8_t> buf(1 + 8);
  buf[0] = static_cast<uint8_t>(FrameType::kReset);
  Store<uint64_t>(buf, 1, next_seq);
  return buf;
}

std::optional<ShipFrame> DecodeShip(std::span<const uint8_t> buffer) {
  if (buffer.size() < kShipHeaderBytes ||
      buffer[0] != static_cast<uint8_t>(FrameType::kShip)) {
    return std::nullopt;
  }
  ShipFrame frame;
  frame.seq = Load<uint64_t>(buffer, 1);
  frame.lba = Load<uint64_t>(buffer, 9);
  const uint32_t len = Load<uint32_t>(buffer, 17);
  frame.crc = Load<uint32_t>(buffer, 21);
  if (buffer.size() != kShipHeaderBytes + len) {
    return std::nullopt;
  }
  const auto payload = buffer.subspan(kShipHeaderBytes);
  if (rlsim::Crc32c(payload) != frame.crc) {
    return std::nullopt;
  }
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

std::optional<AckFrame> DecodeAck(std::span<const uint8_t> buffer) {
  if (buffer.size() != 1 + 8 ||
      buffer[0] != static_cast<uint8_t>(FrameType::kAck)) {
    return std::nullopt;
  }
  return AckFrame{.cursor = Load<uint64_t>(buffer, 1)};
}

std::optional<ResetFrame> DecodeReset(std::span<const uint8_t> buffer) {
  if (buffer.size() != 1 + 8 ||
      buffer[0] != static_cast<uint8_t>(FrameType::kReset)) {
    return std::nullopt;
  }
  return ResetFrame{.next_seq = Load<uint64_t>(buffer, 1)};
}

}  // namespace rlrep

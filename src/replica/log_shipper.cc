#include "src/replica/log_shipper.h"

#include <algorithm>
#include <utility>

#include "src/replica/frame.h"
#include "src/sim/check.h"
#include "src/sim/crc32.h"

namespace rlrep {

using rlsim::Duration;
using rlsim::Task;
using rlsim::TimePoint;
using rlstor::BlockStatus;
using rlstor::kSectorSize;

std::string ToString(ShipMode m) {
  switch (m) {
    case ShipMode::kAsync:
      return "async";
    case ShipMode::kQuorumAck:
      return "quorum-ack";
  }
  return "unknown";
}

LogShipper::LogShipper(rlsim::Simulator& sim, rlnet::NetworkFabric& fabric,
                       const std::string& self_name,
                       std::vector<std::string> replica_names,
                       rlstor::BlockDevice& local, ShipperOptions options)
    : sim_(sim),
      fabric_(fabric),
      self_name_(self_name),
      endpoint_(fabric.CreateEndpoint(self_name)),
      local_(local),
      options_(options),
      quorum_wake_(sim),
      retrans_wake_(sim) {
  RL_CHECK_MSG(!replica_names.empty(), "LogShipper needs >= 1 replica");
  RL_CHECK(options_.max_backoff_doublings >= 0);
  RL_CHECK(options_.max_resend_batch >= 1);
  for (std::string& name : replica_names) {
    peers_.push_back(Peer{.name = std::move(name),
                          .cursor = 0,
                          .last_activity = sim_.now(),
                          .backoff_doublings = 0});
  }
  sim_.Spawn(AckLoop(), self_name_ + "-acks");
  sim_.Spawn(RetransmitLoop(), self_name_ + "-retransmit");
}

void LogShipper::Ship(uint64_t lba, std::span<const uint8_t> data) {
  const uint64_t seq = next_seq_++;
  std::vector<uint8_t> frame = EncodeShip(seq, lba, data);

  ShippedBlockMeta meta{.seq = seq, .lba = lba, .sector_crcs = {}};
  meta.sector_crcs.reserve(data.size() / kSectorSize);
  for (size_t off = 0; off < data.size(); off += kSectorSize) {
    meta.sector_crcs.push_back(rlsim::Crc32c(data.subspan(off, kSectorSize)));
  }
  audit_log_.push_back(std::move(meta));

  stats_.blocks_shipped.Add();
  stats_.bytes_shipped.Add(static_cast<int64_t>(data.size()));
  stats_.lag_blocks.Record(static_cast<int64_t>(next_seq_ - quorum_cursor_));
  sim_.EmitTrace(self_name_, "ship-block", static_cast<uint32_t>(seq));

  // Root of the block's replication tree: each replica's apply span parents
  // under it via the frame-extension context, which also rides every
  // retransmit of this block (same tree, however late the frame lands).
  const uint64_t ship_span = sim_.EmitSpanBegin(self_name_, "replicate-block",
                                                static_cast<int64_t>(seq));
  const rlobs::TraceContext ctx{ship_span, ship_span, sim_.now().nanos()};
  std::vector<uint8_t> ext = ctx.Encode();
  for (const Peer& peer : peers_) {
    fabric_.Send(self_name_, peer.name, frame, ext);
  }
  sim_.EmitSpanEnd(ship_span, self_name_, "replicate-block");
  window_.push_back(WindowEntry{.seq = seq,
                                .frame = std::move(frame),
                                .ext = std::move(ext),
                                .shipped_at = sim_.now()});
  retrans_wake_.NotifyAll();
}

Task<BlockStatus> LogShipper::Write(uint64_t lba,
                                    std::span<const uint8_t> data, bool fua) {
  if (data.empty() || data.size() % kSectorSize != 0) {
    co_return BlockStatus::kOutOfRange;
  }
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  Ship(lba, data);
  const uint64_t shipped_upto = next_seq_;
  const BlockStatus st = co_await local_.Write(lba, data, fua);
  if (st != BlockStatus::kOk) {
    co_return st;
  }
  if (options_.mode == ShipMode::kQuorumAck && fua) {
    // FUA is a durability point: honour it across the quorum as well.
    rlsim::SpanScope span(sim_, self_name_, "quorum-wait",
                          static_cast<int64_t>(shipped_upto));
    const TimePoint t0 = sim_.now();
    const bool ok = co_await WaitQuorumUpTo(shipped_upto);
    stats_.quorum_wait.RecordDuration(sim_.now() - t0);
    if (!ok) {
      co_return BlockStatus::kDeviceOff;
    }
  }
  co_return BlockStatus::kOk;
}

Task<BlockStatus> LogShipper::Flush() {
  if (!powered_) {
    co_return BlockStatus::kDeviceOff;
  }
  const uint64_t shipped_upto = next_seq_;
  const BlockStatus st = co_await local_.Flush();
  if (st != BlockStatus::kOk) {
    co_return st;
  }
  if (options_.mode == ShipMode::kQuorumAck && shipped_upto > 0) {
    rlsim::SpanScope span(sim_, self_name_, "quorum-wait",
                          static_cast<int64_t>(shipped_upto));
    const TimePoint t0 = sim_.now();
    const bool ok = co_await WaitQuorumUpTo(shipped_upto);
    stats_.quorum_wait.RecordDuration(sim_.now() - t0);
    if (!ok) {
      co_return BlockStatus::kDeviceOff;
    }
  }
  co_return BlockStatus::kOk;
}

Task<BlockStatus> LogShipper::Read(uint64_t lba, std::span<uint8_t> out) {
  co_return co_await local_.Read(lba, out);
}

Task<bool> LogShipper::WaitQuorumUpTo(uint64_t target) {
  while (powered_ && quorum_cursor_ < target) {
    co_await quorum_wake_.Wait();
  }
  co_return quorum_cursor_ >= target;
}

void LogShipper::AdvanceQuorum() {
  std::vector<uint64_t> cursors;
  cursors.reserve(peers_.size());
  for (const Peer& peer : peers_) {
    cursors.push_back(peer.cursor);
  }
  std::sort(cursors.begin(), cursors.end(), std::greater<>());
  const uint64_t new_quorum = cursors[quorum_size() - 1];
  if (new_quorum > quorum_cursor_) {
    // Record ship->quorum-durable latency for each newly covered block that
    // is still in the window (epoch jumps after a power cycle are not).
    const TimePoint now = sim_.now();
    if (!window_.empty()) {
      const uint64_t base = window_.front().seq;
      for (uint64_t seq = std::max(quorum_cursor_, base);
           seq < std::min(new_quorum, base + window_.size()); ++seq) {
        stats_.quorum_ack_latency.RecordDuration(
            now - window_[seq - base].shipped_at);
      }
    }
    quorum_cursor_ = new_quorum;
    quorum_wake_.NotifyAll();
  }
  // Entries below every peer's cursor can never be resent again.
  const uint64_t min_cursor =
      std::min_element(peers_.begin(), peers_.end(),
                       [](const Peer& a, const Peer& b) {
                         return a.cursor < b.cursor;
                       })
          ->cursor;
  while (!window_.empty() && window_.front().seq < min_cursor) {
    window_.pop_front();
  }
}

Task<void> LogShipper::AckLoop() {
  while (true) {
    rlnet::Message msg = co_await endpoint_.Receive();
    const auto ack = DecodeAck(msg.payload);
    if (!ack.has_value()) {
      stats_.garbage_frames.Add();
      continue;
    }
    stats_.acks_received.Add();
    if (!powered_) {
      // The primary is dark; its replication state is frozen for the
      // post-mortem audit. Replica cursors resync via RESET on restore.
      continue;
    }
    const auto it =
        std::find_if(peers_.begin(), peers_.end(),
                     [&](const Peer& p) { return p.name == msg.from; });
    if (it == peers_.end()) {
      stats_.garbage_frames.Add();
      continue;
    }
    if (ack->cursor > it->cursor) {
      it->cursor = ack->cursor;
      it->last_activity = sim_.now();
      it->backoff_doublings = 0;
      AdvanceQuorum();
    }
  }
}

bool LogShipper::AllCaughtUp() const {
  return std::all_of(peers_.begin(), peers_.end(), [&](const Peer& p) {
    return p.cursor >= next_seq_;
  });
}

void LogShipper::ResendTo(Peer& peer) {
  if (peer.cursor < reset_floor_) {
    // The data below the floor died with the previous power epoch; jump the
    // replica across the gap instead of retransmitting.
    fabric_.Send(self_name_, peer.name, EncodeReset(reset_floor_));
    stats_.retransmits.Add();
    return;
  }
  if (window_.empty()) {
    return;
  }
  const uint64_t base = window_.front().seq;
  RL_CHECK_MSG(peer.cursor >= base,
               "window trimmed past an unacked cursor for " << peer.name);
  const uint64_t end =
      std::min(next_seq_, peer.cursor + options_.max_resend_batch);
  if (end > peer.cursor) {
    sim_.EmitTrace(self_name_, "retransmit",
                   static_cast<uint32_t>(end - peer.cursor));
  }
  for (uint64_t seq = peer.cursor; seq < end; ++seq) {
    fabric_.Send(self_name_, peer.name, window_[seq - base].frame,
                 window_[seq - base].ext);
    stats_.retransmits.Add();
  }
}

Task<void> LogShipper::RetransmitLoop() {
  while (true) {
    if (!powered_ || AllCaughtUp()) {
      co_await retrans_wake_.Wait();
      continue;
    }
    co_await sim_.Sleep(options_.retransmit_tick);
    if (!powered_) {
      continue;
    }
    const TimePoint now = sim_.now();
    for (Peer& peer : peers_) {
      if (peer.cursor >= next_seq_) {
        continue;
      }
      const Duration timeout =
          options_.retransmit_timeout *
          (int64_t{1} << std::min(peer.backoff_doublings,
                                  options_.max_backoff_doublings));
      if (now - peer.last_activity < timeout) {
        continue;
      }
      ResendTo(peer);
      peer.last_activity = now;
      if (peer.backoff_doublings < options_.max_backoff_doublings) {
        ++peer.backoff_doublings;
      }
    }
  }
}

void LogShipper::PowerLoss() {
  if (!powered_) {
    return;
  }
  powered_ = false;
  had_power_loss_ = true;
  cut_quorum_cursor_ = quorum_cursor_;
  // The window is volatile primary memory; the audit log is oracle state.
  window_.clear();
  quorum_wake_.NotifyAll();
  retrans_wake_.NotifyAll();
}

void LogShipper::PowerRestore() {
  if (powered_) {
    return;
  }
  powered_ = true;
  reset_floor_ = next_seq_;
  if (quorum_cursor_ < reset_floor_) {
    // Everything shipped but not quorum-acked before the cut is now
    // unrecoverable from the primary: RESETs will fast-forward peer cursors
    // across it, which advances quorum_cursor_ without the data having
    // landed anywhere. Record the range so the audits exclude it.
    reset_gaps_.emplace_back(quorum_cursor_, reset_floor_);
  }
  const TimePoint now = sim_.now();
  for (Peer& peer : peers_) {
    peer.backoff_doublings = 0;
    peer.last_activity = now;
    if (peer.cursor < reset_floor_) {
      fabric_.Send(self_name_, peer.name, EncodeReset(reset_floor_));
    }
  }
  retrans_wake_.NotifyAll();
}

void LogShipper::RegisterStats(rlsim::StatsRegistry& registry,
                               const std::string& prefix) const {
  registry.RegisterCounter(prefix + "blocks_shipped", &stats_.blocks_shipped);
  registry.RegisterCounter(prefix + "bytes_shipped", &stats_.bytes_shipped);
  registry.RegisterCounter(prefix + "retransmits", &stats_.retransmits);
  registry.RegisterCounter(prefix + "acks_received", &stats_.acks_received);
  registry.RegisterCounter(prefix + "garbage_frames", &stats_.garbage_frames);
  registry.RegisterHistogram(prefix + "lag_blocks", &stats_.lag_blocks);
  registry.RegisterHistogram(prefix + "quorum_ack_latency",
                             &stats_.quorum_ack_latency, /*as_duration=*/true);
  registry.RegisterHistogram(prefix + "quorum_wait", &stats_.quorum_wait,
                             /*as_duration=*/true);
}

}  // namespace rlrep

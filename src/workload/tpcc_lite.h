// TPC-C-lite: an OLTP workload over the engine's KV interface with the
// transaction mix and access pattern of TPC-C (hot district rows, random
// customer/stock touches, order inserts) scaled to simulation size.
//
// Keys pack (table, warehouse, district, id) into a uint64; values are the
// engine's fixed-size row slots filled from a per-write seed so the
// durability checker can verify exact contents.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/db/database.h"
#include "src/faults/durability_checker.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace rlwork {

enum class Table : uint8_t {
  kDistrict = 1,
  kCustomer = 2,
  kStock = 3,
  kOrder = 4,
  kOrderLine = 5,
  kHistory = 6,
};

uint64_t MakeKey(Table table, uint64_t warehouse, uint64_t district,
                 uint64_t id);

// Deterministic row image for (key, seed) at the engine's slot size.
std::vector<uint8_t> RowValue(uint32_t value_bytes, uint64_t key,
                              uint64_t seed);

struct TpccConfig {
  uint32_t warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 60;
  uint32_t items = 2000;
  // Client think/keying time between transactions.
  rlsim::Duration think_time = rlsim::Duration::Micros(300);
  // Transaction mix (TPC-C-ish weights).
  double new_order_weight = 0.45;
  double payment_weight = 0.43;
  double order_status_weight = 0.04;
  double delivery_weight = 0.04;
  double stock_level_weight = 0.04;
};

class TpccLite {
 public:
  struct Stats {
    rlsim::Counter committed;
    rlsim::Counter new_orders;
    rlsim::Counter payments;
    rlsim::Counter read_only;
    rlsim::Counter lock_aborts;
    rlsim::Counter machine_deaths;  // clients unwound by crash/power-cut
    rlsim::Histogram txn_latency;   // ns, commit-acked transactions
    rlsim::Histogram new_order_latency;
  };

  TpccLite(rlsim::Simulator& sim, TpccConfig config);

  // Populates districts, customers and stock (one bulk transaction per
  // district). Run once on a fresh database.
  rlsim::Task<void> LoadInitial(rldb::Database& db);

  // One client loop: runs transactions until *stop becomes true or the
  // machine dies under it. `checker` (optional) is fed every commit for
  // later durability verification.
  rlsim::Task<void> RunClient(rldb::Database& db, int client_id,
                              const bool* stop,
                              rlfault::DurabilityChecker* checker);

  Stats& stats() { return stats_; }
  const TpccConfig& config() const { return config_; }

 private:
  struct TxnWrites {
    std::vector<rlfault::TrackedWrite> writes;
  };

  rlsim::Task<bool> NewOrder(rldb::Database& db, rlsim::Rng& rng,
                             uint64_t* order_seq,
                             rlfault::DurabilityChecker* checker);
  rlsim::Task<bool> Payment(rldb::Database& db, rlsim::Rng& rng,
                            uint64_t* history_seq,
                            rlfault::DurabilityChecker* checker);
  rlsim::Task<bool> OrderStatus(rldb::Database& db, rlsim::Rng& rng);
  rlsim::Task<bool> Delivery(rldb::Database& db, rlsim::Rng& rng,
                             rlfault::DurabilityChecker* checker);
  rlsim::Task<bool> StockLevel(rldb::Database& db, rlsim::Rng& rng);

  // Commits txn, feeding the checker. Returns false on lock abort.
  rlsim::Task<bool> FinishTxn(rldb::Database& db, uint64_t txn,
                              TxnWrites writes, uint64_t token,
                              rlfault::DurabilityChecker* checker);

  rlsim::Simulator& sim_;
  TpccConfig config_;
  Stats stats_;
  uint64_t next_token_ = 1;
};

}  // namespace rlwork

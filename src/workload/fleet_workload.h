// Cross-shard transaction mix for the fleet topology (E13).
//
// Each client is homed on one shard and issues blind multi-key write
// transactions through the TxnCoordinator: with probability
// `cross_shard_probability` a transaction reaches into one other shard's
// key range (exercising the full 2PC path), otherwise it stays home and
// rides the single-shard fast path. Every attempt is reported to the
// FleetChecker before it is handed to the coordinator, so unknown outcomes
// (coordinator crash mid-2PC) stay pending until the post-recovery verify
// resolves them.
#pragma once

#include <cstdint>

#include "src/faults/fleet_checker.h"
#include "src/shard/shard_directory.h"
#include "src/shard/txn_coordinator.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace rlwork {

struct FleetConfig {
  // Probability a transaction includes remote-shard keys.
  double cross_shard_probability = 0.3;
  uint32_t ops_per_txn = 4;
  // In a cross-shard transaction, how many of the ops go remote (clamped to
  // ops_per_txn - 1 so the home shard always participates).
  uint32_t remote_ops = 1;
  uint32_t value_bytes = 96;
  rlsim::Duration think_time = rlsim::Duration::Micros(200);
};

class FleetWorkload {
 public:
  struct Stats {
    rlsim::Counter started;
    rlsim::Counter committed;
    rlsim::Counter aborted;
    rlsim::Counter unknown;
    rlsim::Counter cross_started;
    rlsim::Counter cross_committed;
    rlsim::Counter cross_aborted;
    rlsim::Counter cross_unknown;
    // Client-observed Execute latency (ns), resettable for warmup exclusion
    // (the coordinator's own histogram is not).
    rlsim::Histogram txn_latency;
  };

  FleetWorkload(rlsim::Simulator& sim, FleetConfig config)
      : sim_(sim), config_(config) {}

  // Drives transactions until *stop. `client_id` determines the home shard
  // (client_id mod shards), the RNG stream, and the global-id namespace —
  // ids are (client_id + 1) << 40 | seq, unique fleet-wide and across
  // recoveries. `checker` may be null (pure benchmarking).
  rlsim::Task<void> RunClient(rlshard::TxnCoordinator& coordinator,
                              const rlshard::ShardDirectory& directory,
                              int client_id, const bool* stop,
                              rlfault::FleetChecker* checker);

  Stats& stats() { return stats_; }

 private:
  rlsim::Simulator& sim_;
  FleetConfig config_;
  Stats stats_;
};

}  // namespace rlwork

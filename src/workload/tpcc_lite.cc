#include "src/workload/tpcc_lite.h"

#include <utility>

#include "src/db/errors.h"
#include "src/sim/check.h"
#include "src/vmm/vm.h"

namespace rlwork {

using rldb::Database;
using rldb::DbStatus;
using rlfault::TrackedWrite;
using rlsim::Duration;
using rlsim::Rng;
using rlsim::Task;
using rlsim::TimePoint;

uint64_t MakeKey(Table table, uint64_t warehouse, uint64_t district,
                 uint64_t id) {
  return (static_cast<uint64_t>(table) << 56) | (warehouse << 44) |
         (district << 36) | (id & 0xFFFFFFFFFull);
}

std::vector<uint8_t> RowValue(uint32_t value_bytes, uint64_t key,
                              uint64_t seed) {
  std::vector<uint8_t> v(value_bytes);
  uint64_t state = key * 0x9E3779B97f4A7C15ULL ^ seed;
  for (size_t i = 0; i < v.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v[i] = static_cast<uint8_t>(state >> 56);
  }
  return v;
}

TpccLite::TpccLite(rlsim::Simulator& sim, TpccConfig config)
    : sim_(sim), config_(config) {}

Task<void> TpccLite::LoadInitial(Database& db) {
  const uint32_t value_bytes = db.options().profile.value_bytes;
  for (uint64_t w = 0; w < config_.warehouses; ++w) {
    for (uint64_t d = 0; d < config_.districts_per_warehouse; ++d) {
      const uint64_t txn = db.Begin();
      const uint64_t dk = MakeKey(Table::kDistrict, w, d, 0);
      RL_CHECK(co_await db.Put(txn, dk, RowValue(value_bytes, dk, 0)) ==
               DbStatus::kOk);
      for (uint64_t c = 0; c < config_.customers_per_district; ++c) {
        const uint64_t ck = MakeKey(Table::kCustomer, w, d, c);
        RL_CHECK(co_await db.Put(txn, ck, RowValue(value_bytes, ck, 0)) ==
                 DbStatus::kOk);
      }
      RL_CHECK(co_await db.Commit(txn) == DbStatus::kOk);
    }
    // Stock is per-warehouse.
    for (uint64_t base = 0; base < config_.items;
         base += 500) {  // chunked bulk transactions
      const uint64_t txn = db.Begin();
      const uint64_t end = std::min<uint64_t>(base + 500, config_.items);
      for (uint64_t i = base; i < end; ++i) {
        const uint64_t sk = MakeKey(Table::kStock, w, 0, i);
        RL_CHECK(co_await db.Put(txn, sk, RowValue(value_bytes, sk, 0)) ==
                 DbStatus::kOk);
      }
      RL_CHECK(co_await db.Commit(txn) == DbStatus::kOk);
    }
  }
}

Task<bool> TpccLite::FinishTxn(Database& db, uint64_t txn, TxnWrites writes,
                               uint64_t token,
                               rlfault::DurabilityChecker* checker) {
  if (checker != nullptr) {
    checker->OnCommitAttempt(token, std::move(writes.writes));
  }
  const DbStatus st = co_await db.Commit(txn);
  if (st == DbStatus::kOk) {
    if (checker != nullptr) {
      checker->OnCommitAcked(token);
    }
    co_return true;
  }
  if (checker != nullptr) {
    checker->OnAborted(token);
  }
  co_return false;
}

Task<bool> TpccLite::NewOrder(Database& db, Rng& rng, uint64_t* order_seq,
                              rlfault::DurabilityChecker* checker) {
  const uint32_t value_bytes = db.options().profile.value_bytes;
  const uint64_t w = rng.NextBelow(config_.warehouses);
  const uint64_t d = rng.NextBelow(config_.districts_per_warehouse);
  const uint64_t c = rng.NextBelow(config_.customers_per_district);
  const uint64_t n_items = 5 + rng.NextBelow(11);  // 5..15
  const uint64_t seed = rng.Next();
  const uint64_t token = next_token_++;

  const uint64_t txn = db.Begin();
  TxnWrites tw;
  auto put = [&](uint64_t key, uint64_t write_seed) -> Task<bool> {
    const auto value = RowValue(value_bytes, key, write_seed);
    const DbStatus st = co_await db.Put(txn, key, value);
    if (st != DbStatus::kOk) {
      co_return false;
    }
    tw.writes.push_back(TrackedWrite{.key = key, .value = value});
    co_return true;
  };

  // Read customer; read+update the (hot) district row.
  if (co_await db.Get(txn, MakeKey(Table::kCustomer, w, d, c), nullptr) ==
      DbStatus::kLockTimeout) {
    co_return false;
  }
  const uint64_t dk = MakeKey(Table::kDistrict, w, d, 0);
  if (co_await db.Get(txn, dk, nullptr) == DbStatus::kLockTimeout) {
    co_return false;
  }
  if (!co_await put(dk, seed)) {
    co_return false;
  }

  // Items: read + update stock, insert order line.
  const uint64_t order_id = (*order_seq)++;
  for (uint64_t i = 0; i < n_items; ++i) {
    const uint64_t item = rng.NextBelow(config_.items);
    const uint64_t sk = MakeKey(Table::kStock, w, 0, item);
    if (co_await db.Get(txn, sk, nullptr) == DbStatus::kLockTimeout) {
      co_return false;
    }
    if (!co_await put(sk, seed + i)) {
      co_return false;
    }
    if (!co_await put(MakeKey(Table::kOrderLine, w, d,
                              order_id * 16 + i),
                      seed ^ i)) {
      co_return false;
    }
  }
  if (!co_await put(MakeKey(Table::kOrder, w, d, order_id), seed)) {
    co_return false;
  }
  co_return co_await FinishTxn(db, txn, std::move(tw), token, checker);
}

Task<bool> TpccLite::Payment(Database& db, Rng& rng, uint64_t* history_seq,
                             rlfault::DurabilityChecker* checker) {
  const uint32_t value_bytes = db.options().profile.value_bytes;
  const uint64_t w = rng.NextBelow(config_.warehouses);
  const uint64_t d = rng.NextBelow(config_.districts_per_warehouse);
  const uint64_t c = rng.NextBelow(config_.customers_per_district);
  const uint64_t seed = rng.Next();
  const uint64_t token = next_token_++;

  const uint64_t txn = db.Begin();
  TxnWrites tw;
  const uint64_t ck = MakeKey(Table::kCustomer, w, d, c);
  if (co_await db.Get(txn, ck, nullptr) == DbStatus::kLockTimeout) {
    co_return false;
  }
  const auto customer_value = RowValue(value_bytes, ck, seed);
  if (co_await db.Put(txn, ck, customer_value) != DbStatus::kOk) {
    co_return false;
  }
  tw.writes.push_back(TrackedWrite{.key = ck, .value = customer_value});
  const uint64_t hk = MakeKey(Table::kHistory, w, d, (*history_seq)++);
  const auto history_value = RowValue(value_bytes, hk, seed);
  if (co_await db.Put(txn, hk, history_value) != DbStatus::kOk) {
    co_return false;
  }
  tw.writes.push_back(TrackedWrite{.key = hk, .value = history_value});
  co_return co_await FinishTxn(db, txn, std::move(tw), token, checker);
}

Task<bool> TpccLite::OrderStatus(Database& db, Rng& rng) {
  const uint64_t w = rng.NextBelow(config_.warehouses);
  const uint64_t d = rng.NextBelow(config_.districts_per_warehouse);
  const uint64_t c = rng.NextBelow(config_.customers_per_district);
  const uint64_t txn = db.Begin();
  if (co_await db.Get(txn, MakeKey(Table::kCustomer, w, d, c), nullptr) ==
      DbStatus::kLockTimeout) {
    co_return false;
  }
  co_return co_await db.Commit(txn) == DbStatus::kOk;
}

Task<bool> TpccLite::Delivery(Database& db, Rng& rng,
                              rlfault::DurabilityChecker* checker) {
  const uint32_t value_bytes = db.options().profile.value_bytes;
  const uint64_t w = rng.NextBelow(config_.warehouses);
  const uint64_t d = rng.NextBelow(config_.districts_per_warehouse);
  const uint64_t c = rng.NextBelow(config_.customers_per_district);
  const uint64_t seed = rng.Next();
  const uint64_t token = next_token_++;
  const uint64_t txn = db.Begin();
  TxnWrites tw;
  const uint64_t ck = MakeKey(Table::kCustomer, w, d, c);
  if (co_await db.Get(txn, ck, nullptr) == DbStatus::kLockTimeout) {
    co_return false;
  }
  const auto value = RowValue(value_bytes, ck, seed);
  if (co_await db.Put(txn, ck, value) != DbStatus::kOk) {
    co_return false;
  }
  tw.writes.push_back(TrackedWrite{.key = ck, .value = value});
  co_return co_await FinishTxn(db, txn, std::move(tw), token, checker);
}

Task<bool> TpccLite::StockLevel(Database& db, Rng& rng) {
  const uint64_t w = rng.NextBelow(config_.warehouses);
  const uint64_t txn = db.Begin();
  for (int i = 0; i < 8; ++i) {
    const uint64_t item = rng.NextBelow(config_.items);
    if (co_await db.Get(txn, MakeKey(Table::kStock, w, 0, item), nullptr) ==
        DbStatus::kLockTimeout) {
      co_return false;
    }
  }
  co_return co_await db.Commit(txn) == DbStatus::kOk;
}

Task<void> TpccLite::RunClient(Database& db, int client_id, const bool* stop,
                               rlfault::DurabilityChecker* checker) {
  Rng rng(static_cast<uint64_t>(client_id) * 7919 + 101);
  const rlsim::DiscreteDistribution mix(
      {config_.new_order_weight, config_.payment_weight,
       config_.order_status_weight, config_.delivery_weight,
       config_.stock_level_weight});
  // Per-client id spaces keep order/history inserts conflict-free.
  uint64_t order_seq = static_cast<uint64_t>(client_id) << 22;
  uint64_t history_seq = static_cast<uint64_t>(client_id) << 22;

  try {
    while (!*stop) {
      co_await sim_.Sleep(
          Duration::Nanos(static_cast<int64_t>(rng.Exponential(
              static_cast<double>(config_.think_time.nanos())))));
      const TimePoint start = sim_.now();
      bool ok = false;
      const size_t pick = mix.Next(rng);
      switch (pick) {
        case 0:
          ok = co_await NewOrder(db, rng, &order_seq, checker);
          if (ok) {
            stats_.new_orders.Add();
            stats_.new_order_latency.RecordDuration(sim_.now() - start);
          }
          break;
        case 1:
          ok = co_await Payment(db, rng, &history_seq, checker);
          if (ok) {
            stats_.payments.Add();
          }
          break;
        case 2:
          ok = co_await OrderStatus(db, rng);
          if (ok) {
            stats_.read_only.Add();
          }
          break;
        case 3:
          ok = co_await Delivery(db, rng, checker);
          if (ok) {
            stats_.payments.Add();
          }
          break;
        default:
          ok = co_await StockLevel(db, rng);
          if (ok) {
            stats_.read_only.Add();
          }
          break;
      }
      if (ok) {
        stats_.committed.Add();
        stats_.txn_latency.RecordDuration(sim_.now() - start);
      } else {
        stats_.lock_aborts.Add();
      }
    }
  } catch (const rlvmm::GuestCrashed&) {
    stats_.machine_deaths.Add();
  } catch (const rldb::EngineHalted&) {
    stats_.machine_deaths.Add();
  }
}

}  // namespace rlwork

#include "src/workload/kv_workload.h"

#include "src/db/errors.h"
#include "src/sim/check.h"
#include "src/vmm/vm.h"
#include "src/workload/tpcc_lite.h"  // RowValue

namespace rlwork {

using rldb::Database;
using rldb::DbStatus;
using rlsim::Duration;
using rlsim::Rng;
using rlsim::Task;
using rlsim::TimePoint;

KvWorkload::KvWorkload(rlsim::Simulator& sim, KvConfig config)
    : sim_(sim), config_(config), zipf_(config.key_space, config.zipf_theta) {}

Task<void> KvWorkload::Load(Database& db, uint64_t count) {
  const uint32_t value_bytes = db.options().profile.value_bytes;
  for (uint64_t base = 0; base < count; base += 500) {
    const uint64_t txn = db.Begin();
    const uint64_t end = std::min(base + 500, count);
    for (uint64_t k = base; k < end; ++k) {
      RL_CHECK(co_await db.Put(txn, k, RowValue(value_bytes, k, 0)) ==
               DbStatus::kOk);
    }
    RL_CHECK(co_await db.Commit(txn) == DbStatus::kOk);
  }
}

Task<void> KvWorkload::RunClient(Database& db, int client_id,
                                 const bool* stop,
                                 rlfault::DurabilityChecker* checker) {
  Rng rng(static_cast<uint64_t>(client_id) * 31337 + 7);
  const uint32_t value_bytes = db.options().profile.value_bytes;
  try {
    while (!*stop) {
      co_await sim_.Sleep(
          Duration::Nanos(static_cast<int64_t>(rng.Exponential(
              static_cast<double>(config_.think_time.nanos())))));
      const TimePoint start = sim_.now();
      const uint64_t txn = db.Begin();
      const uint64_t token = next_token_++;
      std::vector<rlfault::TrackedWrite> writes;
      bool aborted = false;
      for (uint32_t i = 0; i < config_.ops_per_txn && !aborted; ++i) {
        const uint64_t key = zipf_.Next(rng);
        if (rng.NextDouble() < config_.write_fraction) {
          const auto value = RowValue(value_bytes, key, rng.Next());
          if (co_await db.Put(txn, key, value) != DbStatus::kOk) {
            aborted = true;
            break;
          }
          // Later writes to the same key within the txn supersede earlier
          // ones; keep only the last.
          std::erase_if(writes, [key](const rlfault::TrackedWrite& w) {
            return w.key == key;
          });
          writes.push_back(rlfault::TrackedWrite{.key = key, .value = value});
        } else {
          if (co_await db.Get(txn, key, nullptr) == DbStatus::kLockTimeout) {
            aborted = true;
            break;
          }
        }
      }
      if (aborted) {
        stats_.lock_aborts.Add();
        continue;
      }
      if (checker != nullptr) {
        checker->OnCommitAttempt(token, writes);
      }
      const DbStatus st = co_await db.Commit(txn);
      if (st == DbStatus::kOk) {
        if (checker != nullptr) {
          checker->OnCommitAcked(token);
        }
        stats_.committed.Add();
        stats_.txn_latency.RecordDuration(sim_.now() - start);
      } else {
        if (checker != nullptr) {
          checker->OnAborted(token);
        }
        stats_.lock_aborts.Add();
      }
    }
  } catch (const rlvmm::GuestCrashed&) {
    stats_.machine_deaths.Add();
  } catch (const rldb::EngineHalted&) {
    stats_.machine_deaths.Add();
  }
}

Task<void> LogStress::RunClient(Database& db, int client_id,
                                const bool* stop) {
  Rng rng(static_cast<uint64_t>(client_id) + 4242);
  const uint32_t value_bytes = db.options().profile.value_bytes;
  // Disjoint keys per client: the measurement is pure logging cost.
  const uint64_t base = static_cast<uint64_t>(client_id) << 32;
  try {
    while (!*stop) {
      const TimePoint start = sim_.now();
      const uint64_t txn = db.Begin();
      const uint64_t key = base + rng.NextBelow(1000);
      if (co_await db.Put(txn, key, RowValue(value_bytes, key, rng.Next())) !=
          DbStatus::kOk) {
        continue;
      }
      if (co_await db.Commit(txn) == DbStatus::kOk) {
        stats_.committed.Add();
        stats_.commit_latency.RecordDuration(sim_.now() - start);
      }
    }
  } catch (const rlvmm::GuestCrashed&) {
  } catch (const rldb::EngineHalted&) {
  }
}

}  // namespace rlwork

// Simple key-value workloads: a zipfian read/write mix (microbenchmarks,
// crash campaigns) and a commit-rate stress of tiny update transactions
// (the synchronous-logging cost experiment).
#pragma once

#include <cstdint>

#include "src/db/database.h"
#include "src/faults/durability_checker.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace rlwork {

struct KvConfig {
  uint64_t key_space = 100'000;
  double zipf_theta = 0.8;
  double write_fraction = 0.5;
  // Operations per transaction.
  uint32_t ops_per_txn = 4;
  rlsim::Duration think_time = rlsim::Duration::Micros(100);
};

class KvWorkload {
 public:
  struct Stats {
    rlsim::Counter committed;
    rlsim::Counter lock_aborts;
    rlsim::Counter machine_deaths;
    rlsim::Histogram txn_latency;  // ns
  };

  KvWorkload(rlsim::Simulator& sim, KvConfig config);

  // Preloads `count` keys.
  rlsim::Task<void> Load(rldb::Database& db, uint64_t count);

  rlsim::Task<void> RunClient(rldb::Database& db, int client_id,
                              const bool* stop,
                              rlfault::DurabilityChecker* checker);

  Stats& stats() { return stats_; }

 private:
  rlsim::Simulator& sim_;
  KvConfig config_;
  rlsim::ZipfianGenerator zipf_;
  Stats stats_;
  uint64_t next_token_ = 1;
};

// Tiny-transaction commit-rate stress: one update + commit per transaction,
// zero think time. Measures the commit ceiling a durability scheme allows.
class LogStress {
 public:
  struct Stats {
    rlsim::Counter committed;
    rlsim::Histogram commit_latency;  // ns
  };

  explicit LogStress(rlsim::Simulator& sim) : sim_(sim) {}

  rlsim::Task<void> RunClient(rldb::Database& db, int client_id,
                              const bool* stop);

  Stats& stats() { return stats_; }

 private:
  rlsim::Simulator& sim_;
  Stats stats_;
};

}  // namespace rlwork

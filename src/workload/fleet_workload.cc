#include "src/workload/fleet_workload.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/workload/tpcc_lite.h"  // RowValue

namespace rlwork {

using rlsim::Task;

Task<void> FleetWorkload::RunClient(rlshard::TxnCoordinator& coordinator,
                                    const rlshard::ShardDirectory& directory,
                                    int client_id, const bool* stop,
                                    rlfault::FleetChecker* checker) {
  rlsim::Rng rng((static_cast<uint64_t>(client_id) + 1) *
                 0x9e3779b97f4a7c15ull);
  const size_t shards = directory.shards();
  const size_t home = static_cast<size_t>(client_id) % shards;
  const std::string client_name = "client-" + std::to_string(client_id);
  uint64_t seq = 0;

  const auto range_key = [&](size_t shard) {
    const uint64_t lo = directory.RangeBegin(shard);
    return lo + rng.NextBelow(directory.RangeEnd(shard) - lo);
  };

  while (!*stop) {
    if (!coordinator.alive()) {
      // No point piling unknowns onto a dead coordinator; back off until
      // the fault schedule revives it.
      co_await sim_.Sleep(rlsim::Duration::Millis(10));
      continue;
    }
    const uint64_t global_id =
        (static_cast<uint64_t>(client_id) + 1) << 40 | ++seq;

    const bool want_cross =
        shards > 1 && rng.NextDouble() < config_.cross_shard_probability;
    uint32_t remote_ops = 0;
    size_t remote_shard = home;
    if (want_cross) {
      remote_ops = std::min(config_.remote_ops, config_.ops_per_txn - 1);
      remote_ops = remote_ops == 0 ? 1 : remote_ops;
      remote_shard = (home + 1 + rng.NextBelow(shards - 1)) % shards;
    }

    // Distinct keys per transaction: a duplicate key would make the
    // checker's write list ambiguous about which value should survive.
    std::set<uint64_t> used;
    std::map<size_t, std::vector<rlshard::WireOp>> by_shard;
    std::vector<rlfault::TrackedWrite> tracked;
    for (uint32_t i = 0; i < config_.ops_per_txn; ++i) {
      const size_t shard = i < remote_ops ? remote_shard : home;
      uint64_t key = range_key(shard);
      while (!used.insert(key).second) {
        key = range_key(shard);
      }
      rlshard::WireOp op;
      op.key = key;
      op.value = RowValue(config_.value_bytes, key, rng.Next());
      tracked.push_back(rlfault::TrackedWrite{.key = key,
                                              .is_delete = false,
                                              .value = op.value});
      by_shard[shard].push_back(std::move(op));
    }
    std::vector<rlshard::ShardOps> parts;
    parts.reserve(by_shard.size());
    for (auto& [shard, ops] : by_shard) {
      parts.push_back(rlshard::ShardOps{.shard = shard, .ops = std::move(ops)});
    }
    const bool is_cross = parts.size() > 1;

    stats_.started.Add();
    if (is_cross) {
      stats_.cross_started.Add();
    }
    if (checker != nullptr) {
      checker->OnTxnAttempt(global_id, std::move(tracked));
    }
    const rlsim::TimePoint exec_start = sim_.now();
    // Top of the transaction's causal tree: the coordinator's 2pc-execute
    // span parents under this one, so assembled traces and critical paths
    // start at the client's submit, not at the coordinator's entry.
    rlshard::TxnOutcome outcome;
    {
      rlsim::SpanScope client_span(sim_, client_name, "client-txn",
                                   static_cast<int64_t>(global_id));
      outcome = co_await coordinator.Execute(global_id, std::move(parts),
                                             client_span.id());
    }
    stats_.txn_latency.RecordDuration(sim_.now() - exec_start);
    switch (outcome) {
      case rlshard::TxnOutcome::kCommitted:
        if (checker != nullptr) {
          checker->OnCommitAcked(global_id);
        }
        stats_.committed.Add();
        if (is_cross) {
          stats_.cross_committed.Add();
        }
        break;
      case rlshard::TxnOutcome::kAborted:
        if (checker != nullptr) {
          checker->OnAborted(global_id);
        }
        stats_.aborted.Add();
        if (is_cross) {
          stats_.cross_aborted.Add();
        }
        break;
      case rlshard::TxnOutcome::kUnknown:
        // Leave the checker entry pending: the post-recovery verify promotes
        // it if the decision turns out to have been commit.
        stats_.unknown.Add();
        if (is_cross) {
          stats_.cross_unknown.Add();
        }
        break;
    }
    co_await sim_.Sleep(config_.think_time);
  }
}

}  // namespace rlwork

#include "src/sim/rng.h"

#include <cmath>
#include <numbers>

#include "src/sim/check.h"

namespace rlsim {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  RL_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded generation with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RL_CHECK_MSG(lo <= hi, "UniformInt(" << lo << ", " << hi << ")");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  RL_CHECK(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Chance(double probability) { return NextDouble() < probability; }

Rng Rng::Fork() { return Rng(Next()); }

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    // simlint: float-ok (fixed loop order: same n and theta give the same
    // rounding on every run; this is a one-shot precomputation, not a
    // long-lived accumulator)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  RL_CHECK(n > 0);
  RL_CHECK(theta > 0 && theta < 1);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double nd = static_cast<double>(n_);
  const uint64_t v = static_cast<uint64_t>(
      nd * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  RL_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    RL_CHECK(w >= 0);
    total += w;  // simlint: float-ok (fixed order over the caller's vector)
  }
  RL_CHECK(total > 0);
  cumulative_.reserve(weights.size());
  double running = 0;
  for (double w : weights) {
    running += w / total;  // simlint: float-ok (fixed order, one-shot setup)
    cumulative_.push_back(running);
  }
  cumulative_.back() = 1.0;
}

size_t DiscreteDistribution::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) {
      return i;
    }
  }
  return cumulative_.size() - 1;
}

}  // namespace rlsim

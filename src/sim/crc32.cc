#include "src/sim/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace rlsim {

namespace {

// The 8-byte fast path consumes each loaded word low-byte-first, which is
// only the input's byte order on a little-endian host.
static_assert(std::endian::native == std::endian::little,
              "Crc32c slice-by-8 assumes a little-endian host");

constexpr uint32_t kPolynomial = 0x82F63B78;  // CRC-32C, reflected

// kTables[0] is the classic byte table; kTables[k][b] extends the CRC of
// byte b by k additional zero bytes, which is what lets eight bytes be
// combined in one step: the CRC of an 8-byte word is the XOR of each byte
// looked up in the table that accounts for its distance from the end.
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables BuildTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    tables[0][i] = crc;
  }
  for (int t = 1; t < 8; ++t) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[t - 1][i];
      tables[t][i] = (prev >> 8) ^ tables[0][prev & 0xFF];
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables kTables = BuildTables();
  return kTables;
}

}  // namespace

uint32_t Crc32cTableDriven(std::span<const uint8_t> data, uint32_t seed) {
  const auto& table = Tables()[0];
  uint32_t crc = ~seed;
  for (uint8_t byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) {
  const SliceTables& t = Tables();
  uint32_t crc = ~seed;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    // Unaligned loads are folded by memcpy; byte order is handled by
    // consuming the word little-endian, matching the reflected polynomial.
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  const auto& table = t[0];
  while (n > 0) {
    crc = (crc >> 8) ^ table[(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace rlsim

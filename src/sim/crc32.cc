#include "src/sim/crc32.h"

#include <array>

namespace rlsim {

namespace {

constexpr uint32_t kPolynomial = 0x82F63B78;  // CRC-32C, reflected

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = ~seed;
  for (uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

}  // namespace rlsim

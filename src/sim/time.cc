#include "src/sim/time.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace rlsim {

std::string ToString(Duration d) {
  char buf[64];
  const int64_t ns = d.nanos();
  const int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns < 1'000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  } else if (abs_ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", d.ToMicrosF());
  } else if (abs_ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", d.ToMillisF());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", d.ToSecondsF());
  }
  return buf;
}

std::string ToString(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", t.ToSecondsF());
  return buf;
}

}  // namespace rlsim

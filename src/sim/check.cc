#include "src/sim/check.h"

#include <sstream>

namespace rlsim {

void FailCheck(const char* file, int line, const char* condition,
               const std::string& message) {
  std::ostringstream oss;
  oss << "CHECK failed at " << file << ":" << line << ": " << condition;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckFailure(oss.str());
}

}  // namespace rlsim

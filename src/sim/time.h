// Strongly-typed simulated time.
//
// The simulation clock is a signed 64-bit nanosecond counter, which covers
// ~292 simulated years — far beyond any experiment. Duration and TimePoint
// are distinct types so that "an instant" and "a span" cannot be confused.
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <string>

namespace rlsim {

// A span of simulated time. Nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration Micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Millis(int64_t ms) {
    return Duration(ms * 1'000'000);
  }
  static constexpr Duration Seconds(int64_t s) {
    return Duration(s * 1'000'000'000);
  }
  // Fractional seconds, e.g. Duration::SecondsF(4.16e-3).
  static constexpr Duration SecondsF(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1'000'000; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToMicrosF() const { return static_cast<double>(ns_) / 1e3; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  template <std::integral I>
  constexpr Duration operator*(I k) const {
    return Duration(ns_ * static_cast<int64_t>(k));
  }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr Duration operator-() const { return Duration(-ns_); }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// An instant on the simulated clock (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromNanos(int64_t ns) { return TimePoint(ns); }
  static constexpr TimePoint Origin() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ns_ + d.nanos());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ns_ - d.nanos());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Nanos(ns_ - o.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.nanos();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// Human-readable rendering, e.g. "1.250ms", "3.2s".
std::string ToString(Duration d);
std::string ToString(TimePoint t);

}  // namespace rlsim

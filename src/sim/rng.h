// Deterministic random number generation for the simulator.
//
// xoshiro256++ seeded via SplitMix64. Every stochastic component takes an Rng
// (usually forked from the simulator's root Rng), so runs are reproducible
// bit-for-bit from a single seed.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlsim {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 uniform bits.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Normally distributed (Box–Muller).
  double Normal(double mean, double stddev);

  // Bernoulli trial.
  bool Chance(double probability);

  // A statistically independent child generator. Use to give each component
  // its own stream so adding randomness in one place does not perturb others.
  Rng Fork();

 private:
  std::array<uint64_t, 4> s_;
};

// Zipfian distribution over [0, n) with skew theta (Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases"). theta in (0, 1);
// theta -> 0 approaches uniform, typical hot-spot workloads use ~0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

// Picks an index according to a fixed discrete weight vector.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  size_t Next(Rng& rng) const;

 private:
  std::vector<double> cumulative_;  // normalised running sums, last == 1.0
};

}  // namespace rlsim

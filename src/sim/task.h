// Coroutine task type for the discrete-event simulator.
//
// Task<T> is a lazily-started coroutine. Awaiting a Task starts it and
// suspends the awaiter until the task completes; the task's return value (or
// exception) is propagated to the awaiter. Root tasks are handed to
// Simulator::Spawn, which starts them and owns their frames.
//
// The whole simulation is single-threaded, so no synchronisation is needed
// anywhere in this file.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "src/sim/check.h"

namespace rlsim {

template <typename T>
class Task;

namespace internal {

class TaskPromiseBase {
 public:
  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Symmetric transfer to whoever awaited this task, if anyone.
      auto continuation = h.promise().continuation_;
      return continuation ? continuation : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }

  void set_continuation(std::coroutine_handle<> h) noexcept {
    continuation_ = h;
  }

 protected:
  std::coroutine_handle<> continuation_;
};

}  // namespace internal

// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }

    void return_value(T value) {
      result_.template emplace<1>(std::move(value));
    }

    void unhandled_exception() {
      result_.template emplace<2>(std::current_exception());
    }

    T TakeResult() {
      if (result_.index() == 2) {
        std::rethrow_exception(std::get<2>(result_));
      }
      RL_CHECK_MSG(result_.index() == 1, "task awaited before completion");
      return std::move(std::get<1>(result_));
    }

    std::variant<std::monostate, T, std::exception_ptr> result_;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }

  // Starts a detached task. Only Simulator::Spawn should call this; awaited
  // tasks are started by the awaiter via symmetric transfer.
  void Start() {
    RL_CHECK(handle_ && !handle_.done());
    handle_.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() const noexcept { return !handle || handle.done(); }

      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().set_continuation(awaiting);
        return handle;  // start the child
      }

      T await_resume() { return handle.promise().TakeResult(); }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// Specialisation for tasks with no result.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }

    void return_void() {}

    void unhandled_exception() { exception_ = std::current_exception(); }

    void TakeResult() {
      if (exception_) {
        std::rethrow_exception(exception_);
      }
    }

    std::exception_ptr exception_;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }

  void Start() {
    RL_CHECK(handle_ && !handle_.done());
    handle_.resume();
  }

  // Rethrows the task's exception, if it ended with one. Only meaningful
  // once done().
  void Rethrow() {
    if (handle_) {
      handle_.promise().TakeResult();
    }
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() const noexcept { return !handle || handle.done(); }

      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().set_continuation(awaiting);
        return handle;
      }

      void await_resume() { handle.promise().TakeResult(); }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace rlsim

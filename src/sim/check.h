// Invariant-checking macros used across the simulation stack.
//
// RL_CHECK fires in every build type (the simulator is a correctness tool;
// silently continuing past a broken invariant would invalidate experiment
// results). Failures throw rlsim::CheckFailure so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rlsim {

// Thrown when an RL_CHECK fails. Derives from std::logic_error: a failed
// check is always a programming error, never an expected runtime condition.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void FailCheck(const char* file, int line, const char* condition,
                            const std::string& message);

}  // namespace rlsim

#define RL_CHECK(cond)                                  \
  do {                                                  \
    if (!(cond)) {                                      \
      ::rlsim::FailCheck(__FILE__, __LINE__, #cond, ""); \
    }                                                   \
  } while (0)

#define RL_CHECK_MSG(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream rl_check_oss_;                           \
      rl_check_oss_ << msg;                                       \
      ::rlsim::FailCheck(__FILE__, __LINE__, #cond,               \
                         rl_check_oss_.str());                    \
    }                                                             \
  } while (0)

#define RL_UNREACHABLE(msg)                                             \
  ::rlsim::FailCheck(__FILE__, __LINE__, "unreachable", (msg))

// Deterministic-iteration helpers for hash containers.
//
// Iterating a std::unordered_map/set directly makes the visit order an
// implementation detail of the hash table (bucket count, insertion history,
// library version). When that order feeds anything observable — lock grant
// order, scheduled wakeups, I/O issue order — replay determinism silently
// depends on it. These helpers snapshot the keys and sort them so the caller
// iterates in a defined order; simlint's unordered-iter rule points here.
#pragma once

#include <algorithm>
#include <vector>

namespace rlsim {

// Ascending copy of an associative container's keys. Works for both map-like
// (iterates pairs) and set-like (iterates keys) containers.
template <typename Container>
std::vector<typename Container::key_type> SortedKeys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  // simlint: ordered-ok (order-independent collection; sorted below)
  for (const auto& entry : c) {
    if constexpr (requires { entry.first; }) {
      keys.push_back(entry.first);
    } else {
      keys.push_back(entry);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace rlsim

// Deterministic execution tracing.
//
// Components emit (virtual timestamp, actor, kind, payload CRC) events into
// an optional sink hung off the Simulator. With no sink installed tracing is
// a null check and costs nothing, so the instrumentation can stay on in
// every build. The DivergenceAuditor (src/harness) runs a scenario twice
// from the same seed and compares the two event streams to pinpoint the
// first nondeterministic event — the dynamic cross-check behind the simlint
// static determinism rules.
//
// Besides instant events, sinks can observe *spans*: begin/end pairs carrying
// an actor, a kind, a simulator-assigned span id and a small integer
// argument. Spans decompose a commit's virtual-time cost into per-stage
// durations (guest WAL wait -> VMM transit -> RapiLog buffer -> physical
// medium -> ack); src/obs/span_tracer.h records them and
// src/obs/chrome_trace.h exports them as Chrome trace-event JSON for
// Perfetto. The span hooks default to no-ops so digest-only sinks (the
// DivergenceAuditor's recorder) are unaffected.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/sim/time.h"

namespace rlsim {

class TraceEventSink {
 public:
  virtual ~TraceEventSink() = default;

  // `actor` names the emitting component (e.g. "log-disk", "testbed"),
  // `kind` the event (e.g. "medium-write"), and `payload_crc` a CRC-32C
  // digest of whatever payload identifies the event's effect (data bytes,
  // LBA, replica index). Emission order is the simulator's deterministic
  // execution order; the sink must not re-enter the simulator.
  virtual void OnTraceEvent(TimePoint at, std::string_view actor,
                            std::string_view kind, uint32_t payload_crc) = 0;

  // Span protocol. `span_id` pairs a begin with its end and is unique per
  // simulator; `parent` is the id of the causally-enclosing span (0 = root),
  // which is what stitches per-node span fragments into one distributed
  // tree — a TraceContext carried in a frame extension hands the sender's
  // span id to the receiving node, which opens its handler span with that id
  // as `parent`. `arg` is whatever small integer identifies the operation
  // (bytes, LBA, record count, transaction gid). The same prohibition
  // applies: a sink must not re-enter the simulator from these callbacks.
  virtual void OnSpanBegin(TimePoint at, std::string_view actor,
                           std::string_view kind, uint64_t span_id,
                           uint64_t parent, int64_t arg) {
    (void)at;
    (void)actor;
    (void)kind;
    (void)span_id;
    (void)parent;
    (void)arg;
  }
  virtual void OnSpanEnd(TimePoint at, std::string_view actor,
                         std::string_view kind, uint64_t span_id,
                         int64_t arg) {
    (void)at;
    (void)actor;
    (void)kind;
    (void)span_id;
    (void)arg;
  }
};

}  // namespace rlsim

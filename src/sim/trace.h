// Deterministic execution tracing.
//
// Components emit (virtual timestamp, actor, kind, payload CRC) events into
// an optional sink hung off the Simulator. With no sink installed tracing is
// a null check and costs nothing, so the instrumentation can stay on in
// every build. The DivergenceAuditor (src/harness) runs a scenario twice
// from the same seed and compares the two event streams to pinpoint the
// first nondeterministic event — the dynamic cross-check behind the simlint
// static determinism rules.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/sim/time.h"

namespace rlsim {

class TraceEventSink {
 public:
  virtual ~TraceEventSink() = default;

  // `actor` names the emitting component (e.g. "log-disk", "testbed"),
  // `kind` the event (e.g. "medium-write"), and `payload_crc` a CRC-32C
  // digest of whatever payload identifies the event's effect (data bytes,
  // LBA, replica index). Emission order is the simulator's deterministic
  // execution order; the sink must not re-enter the simulator.
  virtual void OnTraceEvent(TimePoint at, std::string_view actor,
                            std::string_view kind, uint32_t payload_crc) = 0;
};

}  // namespace rlsim

#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "src/sim/check.h"

namespace rlsim {

Histogram::Histogram()
    : buckets_(static_cast<size_t>(kMagnitudes) * kSubBuckets, 0) {}

size_t Histogram::BucketIndex(int64_t value) {
  RL_CHECK_MSG(value >= 0, "Histogram only records non-negative values, got "
                               << value);
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<size_t>(v);
  }
  const int magnitude = 63 - std::countl_zero(v);  // floor(log2(v))
  const int shift = magnitude - kSubBucketBits + 1;
  const uint64_t sub = (v >> shift) - (kSubBuckets / 2);
  const size_t base = static_cast<size_t>(magnitude - kSubBucketBits + 1) *
                      (kSubBuckets / 2);
  return static_cast<size_t>(kSubBuckets) + base + static_cast<size_t>(sub) -
         (kSubBuckets / 2);
}

int64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) {
    return static_cast<int64_t>(index);
  }
  const size_t past = index - kSubBuckets;
  const size_t half = kSubBuckets / 2;
  const size_t magnitude_step = past / half;
  const size_t sub = past % half;
  const int shift = static_cast<int>(magnitude_step) + 1;
  const uint64_t base = static_cast<uint64_t>(half + sub) << shift;
  const uint64_t width = 1ULL << shift;
  return static_cast<int64_t>(base + width - 1);
}

void Histogram::Record(int64_t value) {
  const size_t idx = BucketIndex(value);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  AddSquares(static_cast<double>(value) * static_cast<double>(value));
}

void Histogram::AddSquares(double value) {
  // Kahan summation: the carry recovers the low-order bits a plain += would
  // drop once sum_squares_ dwarfs the addend.
  const double y = value - sum_squares_carry_;
  const double t = sum_squares_ + y;
  sum_squares_carry_ = (t - sum_squares_) - y;
  sum_squares_ = t;
}

int64_t Histogram::min() const {
  RL_CHECK_MSG(count_ > 0, "Histogram::min() on empty histogram");
  return min_;
}
int64_t Histogram::max() const {
  RL_CHECK_MSG(count_ > 0, "Histogram::max() on empty histogram");
  return max_;
}

double Histogram::Mean() const {
  return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                    : 0.0;
}

double Histogram::StdDev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double mean = Mean();
  const double var =
      sum_squares_ / static_cast<double>(count_) - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

int64_t Histogram::Percentile(double p) const {
  RL_CHECK(p >= 0 && p <= 100);
  if (count_ == 0) {
    return 0;
  }
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  sum_squares_carry_ = 0;
  min_ = 0;
  max_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  AddSquares(other.sum_squares_);
}

std::string Histogram::Summary() const {
  if (count_ == 0) {
    return "n=0 (empty)";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
                static_cast<long long>(count_), Mean(),
                static_cast<long long>(Percentile(50)),
                static_cast<long long>(Percentile(95)),
                static_cast<long long>(Percentile(99)),
                static_cast<long long>(max()));
  return buf;
}

void StatsRegistry::RegisterCounter(const std::string& name,
                                    const Counter* counter) {
  RL_CHECK_MSG(counter != nullptr, "null counter registered as " << name);
  RL_CHECK_MSG(!counters_.contains(name) && !histograms_.contains(name),
               "duplicate stat name " << name);
  counters_[name] = counter;
}

void StatsRegistry::RegisterHistogram(const std::string& name,
                                      const Histogram* histogram,
                                      bool as_duration) {
  RL_CHECK_MSG(histogram != nullptr, "null histogram registered as " << name);
  RL_CHECK_MSG(!counters_.contains(name) && !histograms_.contains(name),
               "duplicate stat name " << name);
  histograms_[name] = HistogramEntry{histogram, as_duration};
}

void StatsRegistry::UnregisterPrefix(const std::string& prefix) {
  std::erase_if(counters_, [&](const auto& kv) {
    return kv.first.starts_with(prefix);
  });
  std::erase_if(histograms_, [&](const auto& kv) {
    return kv.first.starts_with(prefix);
  });
}

std::string StatsRegistry::Format() const {
  // std::map iteration is name-sorted, so output order is deterministic and
  // independent of registration order. Counters and histograms interleave in
  // one global name order.
  std::string out;
  auto c = counters_.begin();
  auto h = histograms_.begin();
  char line[256];
  while (c != counters_.end() || h != histograms_.end()) {
    const bool take_counter =
        h == histograms_.end() ||
        (c != counters_.end() && c->first < h->first);
    if (take_counter) {
      std::snprintf(line, sizeof(line), "%-40s %lld\n", c->first.c_str(),
                    static_cast<long long>(c->second->value()));
      out += line;
      ++c;
    } else {
      std::snprintf(line, sizeof(line), "%-40s %s\n", h->first.c_str(),
                    h->second.as_duration
                        ? h->second.histogram->DurationSummary().c_str()
                        : h->second.histogram->Summary().c_str());
      out += line;
      ++h;
    }
  }
  return out;
}

void StatsRegistry::Print() const { std::fputs(Format().c_str(), stdout); }

namespace {

void AppendJsonKey(std::string& out, const std::string& name) {
  // Stat names are component-chosen identifiers ("wal.commit_wait"); escape
  // the two JSON-hostile characters anyway so a stray quote can't produce an
  // unparsable snapshot.
  out += '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

std::string StatsRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  char buf[64];
  auto sep = [&out, &first] {
    if (!first) {
      out += ',';
    }
    first = false;
  };
  // Same merged name-sorted walk as Format(), so JSON key order matches the
  // human-readable block line for line.
  auto c = counters_.begin();
  auto h = histograms_.begin();
  while (c != counters_.end() || h != histograms_.end()) {
    const bool take_counter =
        h == histograms_.end() ||
        (c != counters_.end() && c->first < h->first);
    sep();
    if (take_counter) {
      AppendJsonKey(out, c->first);
      std::snprintf(buf, sizeof(buf), ":%lld",
                    static_cast<long long>(c->second->value()));
      out += buf;
      ++c;
    } else {
      const Histogram& hist = *h->second.histogram;
      AppendJsonKey(out, h->first);
      if (hist.empty()) {
        out += ":{\"count\":0}";
      } else {
        std::snprintf(buf, sizeof(buf), ":{\"count\":%lld",
                      static_cast<long long>(hist.count()));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"mean\":%.6g", hist.Mean());
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"min\":%lld",
                      static_cast<long long>(hist.min()));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"max\":%lld",
                      static_cast<long long>(hist.max()));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"p50\":%lld",
                      static_cast<long long>(hist.Percentile(50)));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"p95\":%lld",
                      static_cast<long long>(hist.Percentile(95)));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"p99\":%lld}",
                      static_cast<long long>(hist.Percentile(99)));
        out += buf;
      }
      ++h;
    }
  }
  out += '}';
  return out;
}

std::string Histogram::DurationSummary() const {
  if (count_ == 0) {
    return "n=0 (empty)";
  }
  char buf[200];
  std::snprintf(
      buf, sizeof(buf), "n=%lld mean=%s p50=%s p95=%s p99=%s max=%s",
      static_cast<long long>(count_),
      ToString(Duration::Nanos(static_cast<int64_t>(Mean()))).c_str(),
      ToString(PercentileDuration(50)).c_str(),
      ToString(PercentileDuration(95)).c_str(),
      ToString(PercentileDuration(99)).c_str(),
      ToString(Duration::Nanos(max())).c_str());
  return buf;
}

}  // namespace rlsim

// Coroutine synchronisation primitives for the simulator.
//
// All wakeups go through the simulator's event queue (at the current
// timestamp), never by direct resumption, so waiters observe a consistent
// "runs strictly after the notifier's current event" ordering and recursion
// depth stays bounded.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace rlsim {

// Condition-variable-like queue of suspended coroutines. Waiters must
// re-check their predicate after waking (standard CV discipline):
//
//   while (!predicate) { co_await queue.Wait(); }
class WaitQueue {
 public:
  explicit WaitQueue(Simulator& sim) : sim_(sim) {}

  auto Wait() {
    struct Awaiter {
      WaitQueue& queue;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        queue.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void NotifyOne() {
    if (waiters_.empty()) {
      return;
    }
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_.Schedule(Duration::Zero(), [h] { h.resume(); });
  }

  void NotifyAll() {
    while (!waiters_.empty()) {
      NotifyOne();
    }
  }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Manual-reset broadcast event.
class SimEvent {
 public:
  explicit SimEvent(Simulator& sim) : waiters_(sim) {}

  bool is_set() const { return set_; }

  void Set() {
    if (set_) {
      return;
    }
    set_ = true;
    waiters_.NotifyAll();
  }

  void Reset() { set_ = false; }

  // Resumes once the event is set. (If the event is reset between the wakeup
  // being scheduled and running, the waiter re-parks — CV discipline.)
  Task<void> Wait() {
    while (!set_) {
      co_await waiters_.Wait();
    }
  }

 private:
  bool set_ = false;
  WaitQueue waiters_;
};

// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int64_t initial) : sim_(sim), count_(initial) {
    RL_CHECK(initial >= 0);
  }

  auto Acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  // Non-blocking acquire attempt.
  bool TryAcquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!waiters_.empty()) {
      // Hand the permit straight to the oldest waiter.
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.Schedule(Duration::Zero(), [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

  int64_t available() const { return count_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// FIFO mutex with RAII guard:  auto guard = co_await mutex.Lock();
class SimMutex {
 public:
  explicit SimMutex(Simulator& sim) : sem_(sim, 1) {}

  class Guard {
   public:
    Guard() = default;
    explicit Guard(SimMutex* mutex) : mutex_(mutex) {}
    Guard(Guard&& other) noexcept
        : mutex_(std::exchange(other.mutex_, nullptr)) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        mutex_ = std::exchange(other.mutex_, nullptr);
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    void Release() {
      if (mutex_ != nullptr) {
        mutex_->sem_.Release();
        mutex_ = nullptr;
      }
    }

   private:
    SimMutex* mutex_ = nullptr;
  };

  // Awaitable returning a Guard that unlocks on destruction.
  Task<Guard> Lock() {
    co_await sem_.Acquire();
    co_return Guard(this);
  }

  bool locked() const { return sem_.available() == 0; }

 private:
  friend class Guard;
  Semaphore sem_;
};

// One-shot future. Complete() must be called exactly once; any number of
// waiters (before or after completion) observe the value.
template <typename T>
class Completion {
 public:
  explicit Completion(Simulator& sim) : waiters_(sim) {}

  bool completed() const { return value_.has_value(); }

  void Complete(T value) {
    RL_CHECK_MSG(!value_.has_value(), "Completion completed twice");
    value_ = std::move(value);
    waiters_.NotifyAll();
  }

  // Awaitable; resumes once completed. Returns a const reference to the
  // stored value (the Completion must outlive the use of the reference).
  Task<const T*> WaitPtr() {
    while (!value_.has_value()) {
      co_await waiters_.Wait();
    }
    co_return &*value_;
  }

  // Convenience: copies the value out.
  Task<T> Wait() {
    const T* v = co_await WaitPtr();
    co_return *v;
  }

  const T& value() const {
    RL_CHECK(value_.has_value());
    return *value_;
  }

 private:
  std::optional<T> value_;
  WaitQueue waiters_;
};

// Bounded FIFO channel. Close() causes Receive() to return nullopt once
// drained; Send() on a closed channel is a programming error.
template <typename T>
class Channel {
 public:
  Channel(Simulator& sim, size_t capacity)
      : capacity_(capacity), senders_(sim), receivers_(sim) {
    RL_CHECK(capacity >= 1);
  }

  Task<void> Send(T item) {
    while (items_.size() >= capacity_) {
      RL_CHECK_MSG(!closed_, "Send on closed channel");
      co_await senders_.Wait();
    }
    RL_CHECK_MSG(!closed_, "Send on closed channel");
    items_.push_back(std::move(item));
    receivers_.NotifyOne();
  }

  // Non-blocking send; returns false if full or closed.
  bool TrySend(T item) {
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    receivers_.NotifyOne();
    return true;
  }

  Task<std::optional<T>> Receive() {
    while (items_.empty() && !closed_) {
      co_await receivers_.Wait();
    }
    if (items_.empty()) {
      co_return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    senders_.NotifyOne();
    co_return std::optional<T>(std::move(item));
  }

  void Close() {
    closed_ = true;
    receivers_.NotifyAll();
  }

  size_t size() const { return items_.size(); }
  bool closed() const { return closed_; }

 private:
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  WaitQueue senders_;
  WaitQueue receivers_;
};

// Fork/join helper: spawn N child tasks, then `co_await group.Join()`.
// The first child exception (if any) is rethrown from Join().
class TaskGroup {
 public:
  explicit TaskGroup(Simulator& sim) : sim_(sim), done_(sim) {}

  void Spawn(Task<void> task, std::string name = "group-task") {
    ++outstanding_;
    sim_.Spawn(Wrap(std::move(task)), std::move(name));
  }

  Task<void> Join() {
    while (outstanding_ > 0) {
      co_await done_.Wait();
    }
    if (first_exception_) {
      std::rethrow_exception(first_exception_);
    }
  }

  size_t outstanding() const { return outstanding_; }

 private:
  Task<void> Wrap(Task<void> inner) {
    try {
      co_await std::move(inner);
    } catch (...) {
      if (!first_exception_) {
        first_exception_ = std::current_exception();
      }
    }
    --outstanding_;
    done_.NotifyAll();
  }

  Simulator& sim_;
  WaitQueue done_;
  size_t outstanding_ = 0;
  std::exception_ptr first_exception_;
};

}  // namespace rlsim

// Measurement primitives: counters and log-linear histograms.
//
// Histogram uses HdrHistogram-style log-linear bucketing: values are grouped
// into 16 linear sub-buckets per power-of-two magnitude, giving <= 6.25%
// relative error at any magnitude with a small fixed memory footprint.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace rlsim {

class Counter {
 public:
  void Add(int64_t delta = 1) { value_ += delta; }
  void Reset() { value_ = 0; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void RecordDuration(Duration d) { Record(d.nanos()); }

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // min()/max() are only defined over at least one observation; calling them
  // on an empty histogram is a checked error (the old behaviour silently
  // reported the zero-initialised defaults as if they were data).
  int64_t min() const;
  int64_t max() const;
  double Mean() const;
  // p in [0, 100]. Returns an upper bound of the bucket containing the
  // p-th percentile observation.
  int64_t Percentile(double p) const;
  Duration PercentileDuration(double p) const {
    return Duration::Nanos(Percentile(p));
  }
  double StdDev() const;

  void Reset();
  void Merge(const Histogram& other);

  // One-line summary: count/mean/p50/p95/p99/max ("n=0 (empty)" when no
  // observations were recorded).
  std::string Summary() const;
  // Same, formatted as durations.
  std::string DurationSummary() const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per magnitude
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMagnitudes = 64 - kSubBucketBits;

  static size_t BucketIndex(int64_t value);
  static int64_t BucketUpperBound(size_t index);

  // Kahan-compensated accumulation: squared nanosecond values overflow the
  // 53-bit double mantissa after a few million samples, and the naive
  // running sum would then make StdDev depend on accumulation order.
  void AddSquares(double value);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  double sum_squares_ = 0;
  double sum_squares_carry_ = 0;  // Kahan compensation term
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Uniform reporting surface: components register their named counters and
// histograms once, and benches/harnesses print the whole set in one
// deterministically-ordered (name-sorted) block instead of hand-rolling a
// printf per stat. The registry does not own the registered objects; they
// must outlive it (or be Unregistered by prefix first).
class StatsRegistry {
 public:
  void RegisterCounter(const std::string& name, const Counter* counter);
  // `as_duration` renders the histogram with Duration formatting (ns values).
  void RegisterHistogram(const std::string& name, const Histogram* histogram,
                         bool as_duration = false);
  // Drops every entry whose name starts with `prefix` (component teardown).
  void UnregisterPrefix(const std::string& prefix);

  // "name value" / "name <histogram summary>" lines, sorted by name.
  // Counters with value 0 and empty histograms are included: a zero is
  // evidence (e.g. zero retransmits), not noise.
  std::string Format() const;
  void Print() const;  // Format() to stdout

  // Machine-readable snapshot, name-sorted like Format(): counters render as
  // integers, histograms as {"count","mean","min","max","p50","p95","p99"}
  // objects (just {"count":0} when empty). Deterministic for a given set of
  // stat values — std::map iteration order, fixed %.6g float formatting.
  std::string ToJson() const;

  size_t size() const { return counters_.size() + histograms_.size(); }

 private:
  struct HistogramEntry {
    const Histogram* histogram;
    bool as_duration;
  };
  std::map<std::string, const Counter*> counters_;
  std::map<std::string, HistogramEntry> histograms_;
};

// Throughput helper: counts events over a window of simulated time.
class RateMeter {
 public:
  void Start(TimePoint now) {
    start_ = now;
    events_ = 0;
    started_ = true;
  }
  void Tick(int64_t n = 1) { events_ += n; }
  int64_t events() const { return events_; }
  bool started() const { return started_; }
  // nullopt when there is no measurement window (Start() never called, or
  // `now` has not advanced past the start); 0.0 means a real measured rate
  // of zero events over a positive window. The old API returned 0.0 for
  // both, making "meter misused" indistinguishable from "nothing happened".
  std::optional<double> PerSecond(TimePoint now) const {
    if (!started_) {
      return std::nullopt;
    }
    const double secs = (now - start_).ToSecondsF();
    if (secs <= 0) {
      return std::nullopt;
    }
    return static_cast<double>(events_) / secs;
  }

 private:
  TimePoint start_ = TimePoint::Origin();
  int64_t events_ = 0;
  bool started_ = false;
};

}  // namespace rlsim

// CRC-32C (Castagnoli), table-driven. Used by the DB engine to detect torn
// sectors/pages/log records after crashes.
#pragma once

#include <cstdint>
#include <span>

namespace rlsim {

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

}  // namespace rlsim

// CRC-32C (Castagnoli). Used by the DB engine to detect torn
// sectors/pages/log records after crashes, and by the trace/divergence
// machinery to digest payloads — which puts it on the hot path of every
// traced run, hence the slice-by-8 implementation.
#pragma once

#include <cstdint>
#include <span>

namespace rlsim {

// Slice-by-8: processes 8 input bytes per step through 8 derived tables.
// Same polynomial, same output as the classic table-driven form for every
// input (pinned by sim_crc_test against Crc32cTableDriven).
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

// The classic one-byte-at-a-time table-driven form. Kept as the reference
// implementation for the equivalence test and as the baseline the CRC
// throughput benchmark measures speedup against; production code calls
// Crc32c.
uint32_t Crc32cTableDriven(std::span<const uint8_t> data, uint32_t seed = 0);

}  // namespace rlsim

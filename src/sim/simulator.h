// The discrete-event simulation core.
//
// A Simulator owns a virtual clock and an event queue. Work is expressed as
// coroutines (rlsim::Task) that co_await timers and synchronisation objects;
// the simulator resumes them in deterministic timestamp order (ties broken by
// insertion sequence). Everything runs on a single OS thread; simulated
// concurrency costs no real threads, and a given seed always produces the
// same execution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/rng.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace rlsim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 42);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  TimePoint now() const { return now_; }

  // Root RNG. Prefer rng().Fork() per component.
  Rng& rng() { return rng_; }

  // Enqueues fn to run `delay` from now (delay >= 0).
  void Schedule(Duration delay, std::function<void()> fn);
  void ScheduleAt(TimePoint at, std::function<void()> fn);

  // Awaitable that resumes the caller `d` from now. Sleep(Zero) still yields
  // through the event queue (a cooperative reschedule).
  auto Sleep(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration delay;

      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.Schedule(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // Starts a detached root task. The simulator owns its frame; if the task
  // ends with an uncaught exception, Run() rethrows it.
  void Spawn(Task<void> task, std::string name = "task");

  // Runs events until the queue is empty or Stop() is called. Returns the
  // number of events processed.
  size_t Run();

  // Runs events with timestamp <= deadline. The clock ends at exactly
  // `deadline` even if the queue drains early.
  size_t RunUntil(TimePoint deadline);
  size_t RunFor(Duration d) { return RunUntil(now_ + d); }

  // Makes Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }

  // Number of root tasks that have not yet completed.
  size_t pending_tasks() const;

  // Optional execution-trace sink (see src/sim/trace.h). Not owned; the
  // caller must clear it before the sink dies. Null = tracing off.
  TraceEventSink* tracer() const { return tracer_; }
  void set_tracer(TraceEventSink* tracer) { tracer_ = tracer; }

  // Emits one trace event at the current virtual time. Callers computing a
  // non-trivial payload CRC should guard on tracer() != nullptr first.
  void EmitTrace(std::string_view actor, std::string_view kind,
                 uint32_t payload_crc) {
    if (tracer_ != nullptr) {
      tracer_->OnTraceEvent(now_, actor, kind, payload_crc);
    }
  }

  // Opens a span at the current virtual time and returns its id (0 with no
  // tracer installed — the null fast path costs one branch, and no id is
  // allocated, so a run that later installs a tracer sees the same id
  // sequence as one traced from the start). `parent` is the id of the
  // causally-enclosing span, 0 for a root; a parent id received over the
  // wire (TraceContext) is valid here because every node shares this
  // simulator's id space. Span ids are observability state only: they never
  // feed back into the simulation, so behaviour is identical with tracing
  // on or off.
  uint64_t EmitSpanBegin(std::string_view actor, std::string_view kind,
                         int64_t arg = 0, uint64_t parent = 0) {
    if (tracer_ == nullptr) {
      return 0;
    }
    const uint64_t id = ++next_span_id_;
    tracer_->OnSpanBegin(now_, actor, kind, id, parent, arg);
    return id;
  }

  // Closes a span previously opened with EmitSpanBegin. Accepts id 0 (span
  // was never opened because no tracer was installed) as a no-op.
  void EmitSpanEnd(uint64_t span_id, std::string_view actor,
                   std::string_view kind, int64_t arg = 0) {
    if (tracer_ == nullptr || span_id == 0) {
      return;
    }
    RL_CHECK_MSG(span_id <= next_span_id_,
                 "span id was never allocated by this simulator");
    tracer_->OnSpanEnd(now_, actor, kind, span_id, arg);
  }

  // Total span ids handed out so far. Regression hook for the "no tracer =>
  // no ids" invariant: after any untraced stretch this must not have moved.
  uint64_t span_ids_allocated() const { return next_span_id_; }

 private:
  // Event storage is split hot/cold to keep per-event cost off the schedule
  // path. The heap orders small POD entries (24 bytes — cheap to sift);
  // each entry points at a pooled node holding the std::function. Nodes are
  // slab-allocated and recycled through a free list, so steady-state
  // scheduling does no heap allocation at all (beyond what a captured
  // closure too big for the function's small-buffer optimisation needs).
  struct EventNode {
    std::function<void()> fn;
    EventNode* next_free = nullptr;
  };
  struct HeapEntry {
    TimePoint at;
    uint64_t seq;  // FIFO order among same-timestamp events
    EventNode* node;
  };
  struct EventLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  struct RootTask {
    Task<void> task;
    std::string name;
  };

  // Pops and runs one event. Returns false if the queue is empty, the next
  // event is beyond `deadline`, or Stop() was called.
  bool Step(TimePoint deadline);
  void ReapFinishedTasks();

  EventNode* AllocNode();
  void FreeNode(EventNode* node);

  TimePoint now_ = TimePoint::Origin();
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
  // Binary heap over heap_ (std::push_heap/pop_heap with EventLater), with
  // capacity reserved up front and retained across Run()s.
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<EventNode[]>> slabs_;
  EventNode* free_list_ = nullptr;
  std::vector<RootTask> roots_;
  Rng rng_;
  TraceEventSink* tracer_ = nullptr;
  uint64_t next_span_id_ = 0;
};

// RAII span: begins on construction, ends on destruction — including when a
// coroutine frame unwinds through an exception (a commit that dies mid-path
// still closes its spans at the unwind's virtual time). The actor and kind
// string storage must outlive the scope (string literals and long-lived
// component names both qualify).
class SpanScope {
 public:
  SpanScope(Simulator& sim, std::string_view actor, std::string_view kind,
            int64_t arg = 0, uint64_t parent = 0)
      : sim_(sim),
        actor_(actor),
        kind_(kind),
        id_(sim.EmitSpanBegin(actor, kind, arg, parent)),
        end_arg_(arg) {}
  ~SpanScope() { sim_.EmitSpanEnd(id_, actor_, kind_, end_arg_); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Overrides the argument reported on the end event (e.g. a status code or
  // the number of records the cycle actually flushed).
  void set_end_arg(int64_t arg) { end_arg_ = arg; }

  // The span's id (0 when no tracer is installed). Callers use it to parent
  // child spans or to stamp a TraceContext into an outgoing frame.
  uint64_t id() const { return id_; }

 private:
  Simulator& sim_;
  std::string_view actor_;
  std::string_view kind_;
  uint64_t id_;
  int64_t end_arg_;
};

}  // namespace rlsim

#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/sim/check.h"

namespace rlsim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() {
  // Drop queued events before destroying still-suspended root frames so that
  // no queued callback can reference a destroyed frame. (Destruction order of
  // members alone would destroy roots_ first.)
  while (!queue_.empty()) {
    queue_.pop();
  }
  roots_.clear();
}

void Simulator::Schedule(Duration delay, std::function<void()> fn) {
  RL_CHECK_MSG(delay >= Duration::Zero(),
               "cannot schedule in the past: " << ToString(delay));
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(TimePoint at, std::function<void()> fn) {
  RL_CHECK_MSG(at >= now_, "cannot schedule in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::Spawn(Task<void> task, std::string name) {
  RL_CHECK(task.valid());
  roots_.push_back(RootTask{std::move(task), std::move(name)});
  roots_.back().task.Start();
}

bool Simulator::Step(TimePoint deadline) {
  if (stopped_ || queue_.empty()) {
    return false;
  }
  const Event& top = queue_.top();
  if (top.at > deadline) {
    return false;
  }
  // Copy out before pop: fn may schedule new events.
  Event ev{top.at, top.seq, std::move(const_cast<Event&>(top).fn)};
  queue_.pop();
  RL_CHECK(ev.at >= now_);
  now_ = ev.at;
  ev.fn();
  return true;
}

size_t Simulator::Run() {
  stopped_ = false;
  size_t n = 0;
  while (Step(TimePoint::Max())) {
    ++n;
    if ((n & 0xFFF) == 0) {
      ReapFinishedTasks();
    }
  }
  ReapFinishedTasks();
  return n;
}

size_t Simulator::RunUntil(TimePoint deadline) {
  stopped_ = false;
  size_t n = 0;
  while (Step(deadline)) {
    ++n;
    if ((n & 0xFFF) == 0) {
      ReapFinishedTasks();
    }
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
  ReapFinishedTasks();
  return n;
}

size_t Simulator::pending_tasks() const {
  return static_cast<size_t>(
      std::count_if(roots_.begin(), roots_.end(),
                    [](const RootTask& r) { return !r.task.done(); }));
}

void Simulator::ReapFinishedTasks() {
  for (auto it = roots_.begin(); it != roots_.end();) {
    if (it->task.done()) {
      it->task.Rethrow();  // propagate uncaught task exceptions to Run()
      it = roots_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rlsim

#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/sim/check.h"

namespace rlsim {

namespace {

// Events per pool slab. One slab covers most unit-test workloads; sustained
// workloads settle at the high-water mark of in-flight events.
constexpr size_t kSlabEvents = 256;

// Initial heap capacity, reserved once so early scheduling never reallocates.
constexpr size_t kInitialHeapCapacity = 1024;

}  // namespace

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  heap_.reserve(kInitialHeapCapacity);
}

Simulator::~Simulator() {
  // Drop queued events before destroying still-suspended root frames so that
  // no queued callback can reference a destroyed frame. (Destruction order of
  // members alone would destroy roots_ first.) The pooled closures must be
  // destroyed explicitly: slab storage only dies with the member vectors.
  for (HeapEntry& e : heap_) {
    e.node->fn = nullptr;
  }
  heap_.clear();
  roots_.clear();
}

Simulator::EventNode* Simulator::AllocNode() {
  if (free_list_ == nullptr) {
    slabs_.push_back(std::make_unique<EventNode[]>(kSlabEvents));
    EventNode* slab = slabs_.back().get();
    for (size_t i = 0; i < kSlabEvents; ++i) {
      slab[i].next_free = free_list_;
      free_list_ = &slab[i];
    }
  }
  EventNode* node = free_list_;
  free_list_ = node->next_free;
  node->next_free = nullptr;
  return node;
}

void Simulator::FreeNode(EventNode* node) {
  node->next_free = free_list_;
  free_list_ = node;
}

void Simulator::Schedule(Duration delay, std::function<void()> fn) {
  RL_CHECK_MSG(delay >= Duration::Zero(),
               "cannot schedule in the past: " << ToString(delay));
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(TimePoint at, std::function<void()> fn) {
  RL_CHECK_MSG(at >= now_, "cannot schedule in the past");
  EventNode* node = AllocNode();
  node->fn = std::move(fn);
  heap_.push_back(HeapEntry{at, next_seq_++, node});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

void Simulator::Spawn(Task<void> task, std::string name) {
  RL_CHECK(task.valid());
  roots_.push_back(RootTask{std::move(task), std::move(name)});
  roots_.back().task.Start();
}

bool Simulator::Step(TimePoint deadline) {
  if (stopped_ || heap_.empty()) {
    return false;
  }
  if (heap_.front().at > deadline) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  const HeapEntry ev = heap_.back();
  heap_.pop_back();
  // Move the closure out and recycle the node before running: fn may
  // schedule new events, which may take the node straight back.
  std::function<void()> fn = std::move(ev.node->fn);
  ev.node->fn = nullptr;
  FreeNode(ev.node);
  RL_CHECK(ev.at >= now_);
  now_ = ev.at;
  fn();
  return true;
}

size_t Simulator::Run() {
  stopped_ = false;
  size_t n = 0;
  while (Step(TimePoint::Max())) {
    ++n;
    if ((n & 0xFFF) == 0) {
      ReapFinishedTasks();
    }
  }
  ReapFinishedTasks();
  return n;
}

size_t Simulator::RunUntil(TimePoint deadline) {
  stopped_ = false;
  size_t n = 0;
  while (Step(deadline)) {
    ++n;
    if ((n & 0xFFF) == 0) {
      ReapFinishedTasks();
    }
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
  ReapFinishedTasks();
  return n;
}

size_t Simulator::pending_tasks() const {
  return static_cast<size_t>(
      std::count_if(roots_.begin(), roots_.end(),
                    [](const RootTask& r) { return !r.task.done(); }));
}

void Simulator::ReapFinishedTasks() {
  for (auto it = roots_.begin(); it != roots_.end();) {
    if (it->task.done()) {
      it->task.Rethrow();  // propagate uncaught task exceptions to Run()
      it = roots_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rlsim

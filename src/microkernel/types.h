// Core types of the seL4-like microkernel model.
//
// The model reproduces the structures the paper's trust argument rests on: a
// small kernel whose state obeys machine-checkable invariants (here enforced
// with runtime checks and exercised by fuzz tests), capabilities as the only
// naming/authority mechanism, and synchronous rendezvous IPC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rlkern {

// Index into the kernel object table; 0 is the null object.
using ObjectId = uint64_t;
inline constexpr ObjectId kNullObject = 0;

// Slot index within a CNode.
using CPtr = uint64_t;

// Opaque word stamped onto minted endpoint capabilities; delivered to the
// receiver so one endpoint can serve many clients.
using Badge = uint64_t;

enum class ObjectType : uint8_t {
  kUntyped,
  kCNode,
  kTcb,
  kEndpoint,
  kNotification,
  kFrame,
};

std::string ToString(ObjectType t);

// Subset of seL4 rights relevant here.
struct CapRights {
  bool read = false;   // receive / map readable
  bool write = false;  // send / map writable
  bool grant = false;  // transfer capabilities over IPC

  static constexpr CapRights All() { return {true, true, true}; }
  static constexpr CapRights ReadOnly() { return {true, false, false}; }
  static constexpr CapRights WriteOnly() { return {false, true, false}; }

  // True if `this` is a (non-strict) subset of `other` — minting may only
  // shrink authority.
  bool SubsetOf(const CapRights& other) const {
    return (!read || other.read) && (!write || other.write) &&
           (!grant || other.grant);
  }
  bool operator==(const CapRights&) const = default;
};

// A capability as stored in a CNode slot.
struct Capability {
  ObjectId object = kNullObject;
  ObjectType type = ObjectType::kUntyped;
  CapRights rights;
  Badge badge = 0;

  bool null() const { return object == kNullObject; }
};

// Global address of a capability slot.
struct SlotAddr {
  ObjectId cnode = kNullObject;
  CPtr index = 0;

  bool operator==(const SlotAddr&) const = default;
};

struct SlotAddrHash {
  size_t operator()(const SlotAddr& s) const {
    return std::hash<uint64_t>()(s.cnode * 0x9E3779B97f4A7C15ULL ^ s.index);
  }
};

enum class KernelStatus {
  kOk,
  kInvalidSlot,      // slot address does not name a valid slot
  kEmptySlot,        // expected a capability, slot is empty
  kSlotOccupied,     // destination slot already holds a capability
  kTypeMismatch,     // capability names an object of the wrong type
  kNoRights,         // capability lacks the required right
  kOutOfMemory,      // untyped exhausted
  kInvalidArgument,
  kDeadObject,       // capability names a destroyed object
};

std::string ToString(KernelStatus s);

// An IPC message: a label plus untyped machine words. `payload` stands in
// for data that real systems move through shared frames; modelling it inline
// keeps the I/O path simple while the simulated transfer cost stays explicit
// at the call site.
struct IpcMessage {
  uint64_t label = 0;
  std::vector<uint64_t> words;
  std::vector<uint8_t> payload;
  // Filled in by the kernel on delivery.
  Badge sender_badge = 0;
};

}  // namespace rlkern

// The seL4-like kernel: object table, capability operations with a
// derivation tree, synchronous endpoint IPC and notifications.
//
// "Verification" is modelled by construction (see DESIGN.md): this component
// is part of the trusted computing base, is exempt from fault injection, and
// asserts its own invariants — CheckInvariants() validates the full kernel
// state and is called liberally from tests (including randomised operation
// fuzzing).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/microkernel/types.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace rlkern {

// Timing parameters for kernel entry and IPC, defaults in the vicinity of
// published seL4 numbers on period hardware.
struct KernelParams {
  rlsim::Duration syscall_overhead = rlsim::Duration::Nanos(300);
  rlsim::Duration ipc_transfer = rlsim::Duration::Nanos(700);
  // Cost per payload byte moved through IPC (models shared-frame copies).
  rlsim::Duration per_payload_byte = rlsim::Duration::Nanos(0);
};

// Handle a receiver uses to answer a Call. Single-use.
class ReplyToken {
 public:
  ReplyToken() = default;

  bool valid() const { return completion_ != nullptr; }

 private:
  friend class Kernel;
  explicit ReplyToken(std::shared_ptr<rlsim::Completion<IpcMessage>> c)
      : completion_(std::move(c)) {}
  std::shared_ptr<rlsim::Completion<IpcMessage>> completion_;
};

// Result of a successful Recv.
struct Received {
  IpcMessage message;
  // Valid iff the sender used Call and awaits a reply.
  ReplyToken reply;
};

class Kernel {
 public:
  explicit Kernel(rlsim::Simulator& sim, KernelParams params = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Bootstrap (no capability checks; used to set up the initial task) ---

  // Creates an untyped region of the given size and returns a CNode holding
  // its root capability in slot `untyped_slot_out`.
  ObjectId BootstrapCNode(size_t slots);
  KernelStatus BootstrapUntyped(ObjectId cnode, CPtr dest, size_t bytes);

  // --- Capability-space operations -----------------------------------------

  // seL4_Untyped_Retype: carves `count` objects of `type` out of the untyped
  // capability at `untyped`, placing original capabilities into consecutive
  // slots starting at `dest`. `obj_bytes` is the per-object footprint
  // (ignored for endpoints/notifications which have a fixed cost).
  KernelStatus Retype(SlotAddr untyped, ObjectType type, size_t obj_bytes,
                      ObjectId dest_cnode, CPtr dest_first, size_t count);

  // Copies the capability at src to dst with reduced-or-equal rights and a
  // new badge (endpoints/notifications only may be badged). The new
  // capability is a CDT child of src.
  KernelStatus Mint(SlotAddr src, SlotAddr dst, CapRights rights, Badge badge);

  // Mint preserving rights and badge.
  KernelStatus Copy(SlotAddr src, SlotAddr dst);

  // Removes the capability at `slot`. CDT children are reparented to the
  // deleted capability's parent. Destroys the object when its last
  // capability goes away.
  KernelStatus Delete(SlotAddr slot);

  // Deletes every capability derived from `slot` (the whole CDT subtree,
  // excluding `slot` itself). For untyped capabilities this also destroys
  // all objects retyped from the region and resets its watermark.
  KernelStatus Revoke(SlotAddr slot);

  // Looks up a capability (validity + liveness checked).
  KernelStatus Lookup(SlotAddr slot, Capability* out) const;

  // --- IPC -----------------------------------------------------------------

  // Blocking send: rendezvous with a receiver. Requires write rights.
  rlsim::Task<KernelStatus> Send(SlotAddr ep_cap, IpcMessage msg);

  // Non-blocking send: delivered only if a receiver is already waiting.
  KernelStatus NbSend(SlotAddr ep_cap, IpcMessage msg);

  // Blocking receive. Requires read rights.
  rlsim::Task<KernelStatus> Recv(SlotAddr ep_cap, Received* out);

  // Call: send and block for the receiver's Reply.
  rlsim::Task<KernelStatus> Call(SlotAddr ep_cap, IpcMessage msg,
                                 IpcMessage* reply_out);

  // Answers a Call; consumes the token.
  KernelStatus Reply(ReplyToken& token, IpcMessage msg);

  // --- Notifications ---------------------------------------------------------

  // Signal: OR the badge into the notification word, wake one waiter.
  KernelStatus Signal(SlotAddr ntfn_cap);

  // Wait: block until the word is non-zero, then fetch-and-clear it.
  rlsim::Task<KernelStatus> Wait(SlotAddr ntfn_cap, uint64_t* bits_out);

  // Poll: non-blocking fetch-and-clear.
  KernelStatus Poll(SlotAddr ntfn_cap, uint64_t* bits_out);

  // --- Introspection ---------------------------------------------------------

  // Validates every kernel invariant; throws rlsim::CheckFailure on
  // violation. Cheap enough to call after every operation in tests.
  void CheckInvariants() const;

  bool ObjectAlive(ObjectId id) const;
  ObjectType TypeOf(ObjectId id) const;
  size_t live_object_count() const;
  uint64_t ipc_count() const { return ipc_count_; }

 private:
  struct Object;
  struct CNodeData;
  struct UntypedData;
  struct EndpointData;
  struct NotificationData;
  struct PendingSend;

  Object& Obj(ObjectId id);
  const Object& Obj(ObjectId id) const;
  ObjectId AllocateObject(ObjectType type, size_t bytes);
  void DestroyObject(ObjectId id);
  KernelStatus ResolveSlot(SlotAddr slot, bool must_hold_cap,
                           Capability** cap_out) const;
  void PlaceCap(SlotAddr dst, const Capability& cap,
                std::optional<SlotAddr> parent);
  void RemoveCapAt(SlotAddr slot, bool reparent_children);
  void CollectSubtree(SlotAddr root, std::vector<SlotAddr>* out) const;
  KernelStatus CheckEndpointCap(SlotAddr slot, bool need_write,
                                bool need_read, Capability* cap_out);

  rlsim::Simulator& sim_;
  KernelParams params_;

  std::vector<std::unique_ptr<Object>> objects_;  // index = ObjectId - 1

  // Capability derivation tree.
  std::unordered_map<SlotAddr, SlotAddr, SlotAddrHash> cdt_parent_;
  std::unordered_map<SlotAddr, std::vector<SlotAddr>, SlotAddrHash>
      cdt_children_;

  uint64_t ipc_count_ = 0;
};

}  // namespace rlkern

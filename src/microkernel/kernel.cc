#include "src/microkernel/kernel.h"

#include <algorithm>
#include <utility>

#include "src/sim/check.h"

namespace rlkern {

using rlsim::Completion;
using rlsim::Duration;
using rlsim::Task;
using rlsim::WaitQueue;

std::string ToString(ObjectType t) {
  switch (t) {
    case ObjectType::kUntyped:
      return "untyped";
    case ObjectType::kCNode:
      return "cnode";
    case ObjectType::kTcb:
      return "tcb";
    case ObjectType::kEndpoint:
      return "endpoint";
    case ObjectType::kNotification:
      return "notification";
    case ObjectType::kFrame:
      return "frame";
  }
  return "unknown";
}

std::string ToString(KernelStatus s) {
  switch (s) {
    case KernelStatus::kOk:
      return "ok";
    case KernelStatus::kInvalidSlot:
      return "invalid-slot";
    case KernelStatus::kEmptySlot:
      return "empty-slot";
    case KernelStatus::kSlotOccupied:
      return "slot-occupied";
    case KernelStatus::kTypeMismatch:
      return "type-mismatch";
    case KernelStatus::kNoRights:
      return "no-rights";
    case KernelStatus::kOutOfMemory:
      return "out-of-memory";
    case KernelStatus::kInvalidArgument:
      return "invalid-argument";
    case KernelStatus::kDeadObject:
      return "dead-object";
  }
  return "unknown";
}

namespace {

// Memory footprint of fixed-size kernel objects.
size_t FixedObjectBytes(ObjectType type, size_t requested) {
  switch (type) {
    case ObjectType::kEndpoint:
    case ObjectType::kNotification:
      return 16;
    case ObjectType::kTcb:
      return 1024;
    case ObjectType::kCNode:
    case ObjectType::kFrame:
    case ObjectType::kUntyped:
      return requested;
  }
  return requested;
}

constexpr size_t kBytesPerCNodeSlot = 32;

}  // namespace

struct Kernel::CNodeData {
  std::vector<std::optional<Capability>> slots;
};

struct Kernel::UntypedData {
  size_t bytes = 0;
  size_t watermark = 0;
  std::vector<ObjectId> children;
};

struct Kernel::PendingSend {
  IpcMessage msg;
  // Non-null iff the sender used Call.
  std::shared_ptr<Completion<IpcMessage>> reply;
  // Non-null iff the sender blocks until delivery (Send/Call, not NbSend).
  std::shared_ptr<Completion<bool>> delivered;
};

struct Kernel::EndpointData {
  std::deque<std::shared_ptr<PendingSend>> senders;
  std::unique_ptr<WaitQueue> recv_wait;
};

struct Kernel::NotificationData {
  uint64_t word = 0;
  std::unique_ptr<WaitQueue> wait;
};

struct Kernel::Object {
  ObjectId id = kNullObject;
  ObjectType type = ObjectType::kUntyped;
  bool alive = true;
  size_t cap_count = 0;
  size_t bytes = 0;
  ObjectId parent_untyped = kNullObject;

  std::unique_ptr<CNodeData> cnode;
  std::unique_ptr<UntypedData> untyped;
  std::unique_ptr<EndpointData> endpoint;
  std::unique_ptr<NotificationData> notification;
};

Kernel::Kernel(rlsim::Simulator& sim, KernelParams params)
    : sim_(sim), params_(params) {}

Kernel::~Kernel() = default;

Kernel::Object& Kernel::Obj(ObjectId id) {
  RL_CHECK_MSG(id != kNullObject && id <= objects_.size(),
               "bad object id " << id);
  return *objects_[id - 1];
}

const Kernel::Object& Kernel::Obj(ObjectId id) const {
  RL_CHECK_MSG(id != kNullObject && id <= objects_.size(),
               "bad object id " << id);
  return *objects_[id - 1];
}

ObjectId Kernel::AllocateObject(ObjectType type, size_t bytes) {
  auto obj = std::make_unique<Object>();
  obj->id = objects_.size() + 1;
  obj->type = type;
  obj->bytes = bytes;
  switch (type) {
    case ObjectType::kCNode:
      obj->cnode = std::make_unique<CNodeData>();
      obj->cnode->slots.resize(std::max<size_t>(1, bytes / kBytesPerCNodeSlot));
      break;
    case ObjectType::kUntyped:
      obj->untyped = std::make_unique<UntypedData>();
      obj->untyped->bytes = bytes;
      break;
    case ObjectType::kEndpoint:
      obj->endpoint = std::make_unique<EndpointData>();
      obj->endpoint->recv_wait = std::make_unique<WaitQueue>(sim_);
      break;
    case ObjectType::kNotification:
      obj->notification = std::make_unique<NotificationData>();
      obj->notification->wait = std::make_unique<WaitQueue>(sim_);
      break;
    case ObjectType::kTcb:
    case ObjectType::kFrame:
      break;
  }
  objects_.push_back(std::move(obj));
  return objects_.size();
}

void Kernel::DestroyObject(ObjectId id) {
  Object& obj = Obj(id);
  if (!obj.alive) {
    return;
  }
  if (obj.type == ObjectType::kEndpoint) {
    RL_CHECK_MSG(obj.endpoint->senders.empty() &&
                     obj.endpoint->recv_wait->waiter_count() == 0,
                 "destroying endpoint with blocked threads");
  }
  obj.alive = false;
  // Unlink from the retype parent's child list.
  if (obj.parent_untyped != kNullObject) {
    Object& parent = Obj(obj.parent_untyped);
    if (parent.alive && parent.untyped != nullptr) {
      std::erase(parent.untyped->children, id);
    }
  }
  // A dying CNode drops every capability it holds.
  if (obj.type == ObjectType::kCNode) {
    for (CPtr i = 0; i < obj.cnode->slots.size(); ++i) {
      if (obj.cnode->slots[i].has_value()) {
        RemoveCapAt(SlotAddr{id, i}, /*reparent_children=*/true);
      }
    }
  }
}

KernelStatus Kernel::ResolveSlot(SlotAddr slot, bool must_hold_cap,
                                 Capability** cap_out) const {
  if (slot.cnode == kNullObject || slot.cnode > objects_.size()) {
    return KernelStatus::kInvalidSlot;
  }
  const Object& cn = Obj(slot.cnode);
  if (!cn.alive || cn.type != ObjectType::kCNode) {
    return KernelStatus::kInvalidSlot;
  }
  if (slot.index >= cn.cnode->slots.size()) {
    return KernelStatus::kInvalidSlot;
  }
  auto& entry = const_cast<Object&>(cn).cnode->slots[slot.index];
  if (must_hold_cap && !entry.has_value()) {
    return KernelStatus::kEmptySlot;
  }
  if (!must_hold_cap && entry.has_value()) {
    return KernelStatus::kSlotOccupied;
  }
  if (cap_out != nullptr && entry.has_value()) {
    *cap_out = &*entry;
  }
  return KernelStatus::kOk;
}

void Kernel::PlaceCap(SlotAddr dst, const Capability& cap,
                      std::optional<SlotAddr> parent) {
  Object& cn = Obj(dst.cnode);
  RL_CHECK(cn.type == ObjectType::kCNode);
  RL_CHECK(!cn.cnode->slots[dst.index].has_value());
  cn.cnode->slots[dst.index] = cap;
  ++Obj(cap.object).cap_count;
  if (parent.has_value()) {
    cdt_parent_[dst] = *parent;
    cdt_children_[*parent].push_back(dst);
  }
}

void Kernel::RemoveCapAt(SlotAddr slot, bool reparent_children) {
  Object& cn = Obj(slot.cnode);
  auto& entry = cn.cnode->slots[slot.index];
  RL_CHECK(entry.has_value());
  const ObjectId target = entry->object;
  entry.reset();

  // CDT maintenance.
  const auto parent_it = cdt_parent_.find(slot);
  std::optional<SlotAddr> parent;
  if (parent_it != cdt_parent_.end()) {
    parent = parent_it->second;
    auto& siblings = cdt_children_[*parent];
    std::erase(siblings, slot);
    if (siblings.empty()) {
      cdt_children_.erase(*parent);
    }
    cdt_parent_.erase(parent_it);
  }
  if (auto kids_it = cdt_children_.find(slot); kids_it != cdt_children_.end()) {
    RL_CHECK_MSG(reparent_children, "removing cap with live CDT children");
    const std::vector<SlotAddr> kids = kids_it->second;
    cdt_children_.erase(kids_it);
    for (const SlotAddr& kid : kids) {
      if (parent.has_value()) {
        cdt_parent_[kid] = *parent;
        cdt_children_[*parent].push_back(kid);
      } else {
        cdt_parent_.erase(kid);
      }
    }
  }

  Object& obj = Obj(target);
  RL_CHECK(obj.cap_count > 0);
  if (--obj.cap_count == 0 && obj.alive) {
    DestroyObject(target);
  }
}

ObjectId Kernel::BootstrapCNode(size_t slots) {
  RL_CHECK(slots > 0);
  return AllocateObject(ObjectType::kCNode, slots * kBytesPerCNodeSlot);
}

KernelStatus Kernel::BootstrapUntyped(ObjectId cnode, CPtr dest,
                                      size_t bytes) {
  if (bytes == 0) {
    return KernelStatus::kInvalidArgument;
  }
  const SlotAddr dst{cnode, dest};
  if (KernelStatus st = ResolveSlot(dst, /*must_hold_cap=*/false, nullptr);
      st != KernelStatus::kOk) {
    return st;
  }
  const ObjectId id = AllocateObject(ObjectType::kUntyped, bytes);
  PlaceCap(dst,
           Capability{.object = id,
                      .type = ObjectType::kUntyped,
                      .rights = CapRights::All()},
           std::nullopt);
  return KernelStatus::kOk;
}

KernelStatus Kernel::Retype(SlotAddr untyped, ObjectType type,
                            size_t obj_bytes, ObjectId dest_cnode,
                            CPtr dest_first, size_t count) {
  if (count == 0 || type == ObjectType::kUntyped) {
    return KernelStatus::kInvalidArgument;
  }
  Capability* ut_cap = nullptr;
  if (KernelStatus st = ResolveSlot(untyped, true, &ut_cap);
      st != KernelStatus::kOk) {
    return st;
  }
  if (ut_cap->type != ObjectType::kUntyped) {
    return KernelStatus::kTypeMismatch;
  }
  Object& ut_obj = Obj(ut_cap->object);
  if (!ut_obj.alive) {
    return KernelStatus::kDeadObject;
  }
  const size_t per_obj = FixedObjectBytes(type, obj_bytes);
  if (per_obj == 0) {
    return KernelStatus::kInvalidArgument;
  }
  UntypedData& ut = *ut_obj.untyped;
  if (ut.watermark + per_obj * count > ut.bytes) {
    return KernelStatus::kOutOfMemory;
  }
  // All destination slots must exist and be empty.
  for (size_t i = 0; i < count; ++i) {
    const SlotAddr dst{dest_cnode, dest_first + i};
    if (KernelStatus st = ResolveSlot(dst, false, nullptr);
        st != KernelStatus::kOk) {
      return st;
    }
  }
  for (size_t i = 0; i < count; ++i) {
    const ObjectId id = AllocateObject(type, per_obj);
    Obj(id).parent_untyped = ut_cap->object;
    ut.children.push_back(id);
    ut.watermark += per_obj;
    PlaceCap(SlotAddr{dest_cnode, dest_first + i},
             Capability{.object = id, .type = type,
                        .rights = CapRights::All()},
             untyped);
  }
  return KernelStatus::kOk;
}

KernelStatus Kernel::Mint(SlotAddr src, SlotAddr dst, CapRights rights,
                          Badge badge) {
  Capability* src_cap = nullptr;
  if (KernelStatus st = ResolveSlot(src, true, &src_cap);
      st != KernelStatus::kOk) {
    return st;
  }
  if (!Obj(src_cap->object).alive) {
    return KernelStatus::kDeadObject;
  }
  if (!rights.SubsetOf(src_cap->rights)) {
    return KernelStatus::kNoRights;
  }
  if (badge != 0 && src_cap->type != ObjectType::kEndpoint &&
      src_cap->type != ObjectType::kNotification) {
    return KernelStatus::kInvalidArgument;
  }
  if (badge != 0 && src_cap->badge != 0) {
    // Re-badging a badged capability is not allowed (seL4 semantics).
    return KernelStatus::kInvalidArgument;
  }
  if (KernelStatus st = ResolveSlot(dst, false, nullptr);
      st != KernelStatus::kOk) {
    return st;
  }
  Capability minted = *src_cap;
  minted.rights = rights;
  if (badge != 0) {
    minted.badge = badge;
  }
  PlaceCap(dst, minted, src);
  return KernelStatus::kOk;
}

KernelStatus Kernel::Copy(SlotAddr src, SlotAddr dst) {
  Capability* src_cap = nullptr;
  if (KernelStatus st = ResolveSlot(src, true, &src_cap);
      st != KernelStatus::kOk) {
    return st;
  }
  return Mint(src, dst, src_cap->rights, 0);
}

KernelStatus Kernel::Delete(SlotAddr slot) {
  if (KernelStatus st = ResolveSlot(slot, true, nullptr);
      st != KernelStatus::kOk) {
    return st;
  }
  RemoveCapAt(slot, /*reparent_children=*/true);
  return KernelStatus::kOk;
}

void Kernel::CollectSubtree(SlotAddr root, std::vector<SlotAddr>* out) const {
  const auto it = cdt_children_.find(root);
  if (it == cdt_children_.end()) {
    return;
  }
  for (const SlotAddr& child : it->second) {
    out->push_back(child);
    CollectSubtree(child, out);
  }
}

KernelStatus Kernel::Revoke(SlotAddr slot) {
  Capability* cap = nullptr;
  if (KernelStatus st = ResolveSlot(slot, true, &cap);
      st != KernelStatus::kOk) {
    return st;
  }
  std::vector<SlotAddr> subtree;
  CollectSubtree(slot, &subtree);
  // Remove leaves first so no cap is removed while it still has children.
  for (auto it = subtree.rbegin(); it != subtree.rend(); ++it) {
    RemoveCapAt(*it, /*reparent_children=*/false);
  }
  // Revoking an untyped's root capability reclaims the region.
  if (cap->type == ObjectType::kUntyped) {
    Object& ut_obj = Obj(cap->object);
    if (ut_obj.alive) {
      RL_CHECK_MSG(ut_obj.untyped->children.empty(),
                   "retyped objects survived revoke");
      ut_obj.untyped->watermark = 0;
    }
  }
  return KernelStatus::kOk;
}

KernelStatus Kernel::Lookup(SlotAddr slot, Capability* out) const {
  Capability* cap = nullptr;
  if (KernelStatus st = ResolveSlot(slot, true, &cap);
      st != KernelStatus::kOk) {
    return st;
  }
  if (!Obj(cap->object).alive) {
    return KernelStatus::kDeadObject;
  }
  if (out != nullptr) {
    *out = *cap;
  }
  return KernelStatus::kOk;
}

KernelStatus Kernel::CheckEndpointCap(SlotAddr slot, bool need_write,
                                      bool need_read, Capability* cap_out) {
  Capability* cap = nullptr;
  if (KernelStatus st = ResolveSlot(slot, true, &cap);
      st != KernelStatus::kOk) {
    return st;
  }
  if (cap->type != ObjectType::kEndpoint) {
    return KernelStatus::kTypeMismatch;
  }
  if (!Obj(cap->object).alive) {
    return KernelStatus::kDeadObject;
  }
  if ((need_write && !cap->rights.write) || (need_read && !cap->rights.read)) {
    return KernelStatus::kNoRights;
  }
  *cap_out = *cap;
  return KernelStatus::kOk;
}

Task<KernelStatus> Kernel::Send(SlotAddr ep_cap, IpcMessage msg) {
  Capability cap;
  if (KernelStatus st = CheckEndpointCap(ep_cap, true, false, &cap);
      st != KernelStatus::kOk) {
    co_return st;
  }
  co_await sim_.Sleep(params_.syscall_overhead);
  EndpointData& ep = *Obj(cap.object).endpoint;
  auto record = std::make_shared<PendingSend>();
  record->msg = std::move(msg);
  record->msg.sender_badge = cap.badge;
  record->delivered = std::make_shared<Completion<bool>>(sim_);
  ep.senders.push_back(record);
  ep.recv_wait->NotifyOne();
  co_await record->delivered->Wait();
  co_return KernelStatus::kOk;
}

KernelStatus Kernel::NbSend(SlotAddr ep_cap, IpcMessage msg) {
  Capability cap;
  if (KernelStatus st = CheckEndpointCap(ep_cap, true, false, &cap);
      st != KernelStatus::kOk) {
    return st;
  }
  EndpointData& ep = *Obj(cap.object).endpoint;
  if (ep.recv_wait->waiter_count() == 0) {
    return KernelStatus::kOk;  // no receiver ready: silently dropped
  }
  auto record = std::make_shared<PendingSend>();
  record->msg = std::move(msg);
  record->msg.sender_badge = cap.badge;
  ep.senders.push_back(record);
  ep.recv_wait->NotifyOne();
  return KernelStatus::kOk;
}

Task<KernelStatus> Kernel::Recv(SlotAddr ep_cap, Received* out) {
  RL_CHECK(out != nullptr);
  Capability cap;
  if (KernelStatus st = CheckEndpointCap(ep_cap, false, true, &cap);
      st != KernelStatus::kOk) {
    co_return st;
  }
  co_await sim_.Sleep(params_.syscall_overhead);
  Object& ep_obj = Obj(cap.object);
  EndpointData& ep = *ep_obj.endpoint;
  while (ep_obj.alive && ep.senders.empty()) {
    co_await ep.recv_wait->Wait();
  }
  if (!ep_obj.alive) {
    co_return KernelStatus::kDeadObject;
  }
  auto record = ep.senders.front();
  ep.senders.pop_front();
  const Duration transfer =
      params_.ipc_transfer +
      params_.per_payload_byte *
          static_cast<int64_t>(record->msg.payload.size());
  co_await sim_.Sleep(transfer);
  out->message = std::move(record->msg);
  out->reply = record->reply ? ReplyToken(record->reply) : ReplyToken();
  if (record->delivered) {
    record->delivered->Complete(true);
  }
  ++ipc_count_;
  co_return KernelStatus::kOk;
}

Task<KernelStatus> Kernel::Call(SlotAddr ep_cap, IpcMessage msg,
                                IpcMessage* reply_out) {
  RL_CHECK(reply_out != nullptr);
  Capability cap;
  if (KernelStatus st = CheckEndpointCap(ep_cap, true, false, &cap);
      st != KernelStatus::kOk) {
    co_return st;
  }
  co_await sim_.Sleep(params_.syscall_overhead);
  EndpointData& ep = *Obj(cap.object).endpoint;
  auto record = std::make_shared<PendingSend>();
  record->msg = std::move(msg);
  record->msg.sender_badge = cap.badge;
  record->reply = std::make_shared<Completion<IpcMessage>>(sim_);
  ep.senders.push_back(record);
  ep.recv_wait->NotifyOne();
  *reply_out = co_await record->reply->Wait();
  co_return KernelStatus::kOk;
}

KernelStatus Kernel::Reply(ReplyToken& token, IpcMessage msg) {
  if (!token.valid()) {
    return KernelStatus::kInvalidArgument;
  }
  token.completion_->Complete(std::move(msg));
  token.completion_.reset();
  ++ipc_count_;
  return KernelStatus::kOk;
}

KernelStatus Kernel::Signal(SlotAddr ntfn_cap) {
  Capability* cap = nullptr;
  if (KernelStatus st = ResolveSlot(ntfn_cap, true, &cap);
      st != KernelStatus::kOk) {
    return st;
  }
  if (cap->type != ObjectType::kNotification) {
    return KernelStatus::kTypeMismatch;
  }
  Object& obj = Obj(cap->object);
  if (!obj.alive) {
    return KernelStatus::kDeadObject;
  }
  if (!cap->rights.write) {
    return KernelStatus::kNoRights;
  }
  obj.notification->word |= (cap->badge != 0 ? cap->badge : 1);
  obj.notification->wait->NotifyOne();
  return KernelStatus::kOk;
}

Task<KernelStatus> Kernel::Wait(SlotAddr ntfn_cap, uint64_t* bits_out) {
  RL_CHECK(bits_out != nullptr);
  Capability* cap = nullptr;
  if (KernelStatus st = ResolveSlot(ntfn_cap, true, &cap);
      st != KernelStatus::kOk) {
    co_return st;
  }
  if (cap->type != ObjectType::kNotification) {
    co_return KernelStatus::kTypeMismatch;
  }
  if (!cap->rights.read) {
    co_return KernelStatus::kNoRights;
  }
  Object& obj = Obj(cap->object);
  co_await sim_.Sleep(params_.syscall_overhead);
  while (obj.alive && obj.notification->word == 0) {
    co_await obj.notification->wait->Wait();
  }
  if (!obj.alive) {
    co_return KernelStatus::kDeadObject;
  }
  *bits_out = obj.notification->word;
  obj.notification->word = 0;
  co_return KernelStatus::kOk;
}

KernelStatus Kernel::Poll(SlotAddr ntfn_cap, uint64_t* bits_out) {
  RL_CHECK(bits_out != nullptr);
  Capability* cap = nullptr;
  if (KernelStatus st = ResolveSlot(ntfn_cap, true, &cap);
      st != KernelStatus::kOk) {
    return st;
  }
  if (cap->type != ObjectType::kNotification) {
    return KernelStatus::kTypeMismatch;
  }
  if (!cap->rights.read) {
    return KernelStatus::kNoRights;
  }
  Object& obj = Obj(cap->object);
  if (!obj.alive) {
    return KernelStatus::kDeadObject;
  }
  *bits_out = obj.notification->word;
  obj.notification->word = 0;
  return KernelStatus::kOk;
}

bool Kernel::ObjectAlive(ObjectId id) const {
  return id != kNullObject && id <= objects_.size() && Obj(id).alive;
}

ObjectType Kernel::TypeOf(ObjectId id) const { return Obj(id).type; }

size_t Kernel::live_object_count() const {
  return static_cast<size_t>(
      std::count_if(objects_.begin(), objects_.end(),
                    [](const auto& o) { return o->alive; }));
}

void Kernel::CheckInvariants() const {
  std::unordered_map<ObjectId, size_t> cap_tallies;
  for (const auto& obj : objects_) {
    if (!obj->alive || obj->type != ObjectType::kCNode) {
      continue;
    }
    for (CPtr i = 0; i < obj->cnode->slots.size(); ++i) {
      const auto& entry = obj->cnode->slots[i];
      if (!entry.has_value()) {
        continue;
      }
      const SlotAddr here{obj->id, i};
      // I1: every capability names a live object of the recorded type.
      RL_CHECK_MSG(entry->object != kNullObject &&
                       entry->object <= objects_.size(),
                   "dangling capability");
      const Object& target = Obj(entry->object);
      RL_CHECK_MSG(target.alive, "capability to dead object "
                                     << entry->object << " in slot "
                                     << here.index);
      RL_CHECK_MSG(target.type == entry->type,
                   "capability type mismatch on object " << entry->object);
      // I2: badges only on endpoints/notifications.
      RL_CHECK_MSG(entry->badge == 0 ||
                       entry->type == ObjectType::kEndpoint ||
                       entry->type == ObjectType::kNotification,
                   "badge on non-IPC capability");
      ++cap_tallies[entry->object];
      // I3: CDT linkage is symmetric.
      if (auto it = cdt_parent_.find(here); it != cdt_parent_.end()) {
        const auto kids = cdt_children_.find(it->second);
        RL_CHECK_MSG(kids != cdt_children_.end() &&
                         std::find(kids->second.begin(), kids->second.end(),
                                   here) != kids->second.end(),
                     "CDT parent does not list child");
      }
    }
  }
  for (const auto& obj : objects_) {
    if (!obj->alive) {
      continue;
    }
    // I4: reference counts match the actual number of capabilities.
    const auto it = cap_tallies.find(obj->id);
    const size_t actual = it == cap_tallies.end() ? 0 : it->second;
    RL_CHECK_MSG(obj->cap_count == actual,
                 "cap_count " << obj->cap_count << " != tally " << actual
                              << " for object " << obj->id);
    // I5: untyped accounting.
    if (obj->type == ObjectType::kUntyped) {
      RL_CHECK_MSG(obj->untyped->watermark <= obj->untyped->bytes,
                   "untyped watermark beyond region");
      for (ObjectId child : obj->untyped->children) {
        RL_CHECK_MSG(Obj(child).alive, "untyped lists dead child");
        RL_CHECK_MSG(Obj(child).parent_untyped == obj->id,
                     "untyped child parent mismatch");
      }
    }
  }
  // I6: every CDT edge endpoint is an occupied slot.
  // simlint: ordered-ok (universally-quantified fail-stop check: no effect
  // unless an invariant is broken, and then the run aborts)
  for (const auto& [child, parent] : cdt_parent_) {
    Capability tmp;
    RL_CHECK_MSG(Lookup(child, &tmp) != KernelStatus::kInvalidSlot,
                 "CDT child is not a valid slot");
  }
}

}  // namespace rlkern

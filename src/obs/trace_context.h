// Wire-carried trace context: what stitches per-node span fragments into
// one distributed causal tree.
//
// A sender that holds an open span encodes {trace id, parent span id,
// virtual-time origin} into a small byte blob and attaches it to the
// outgoing frame's *extension* field (rlnet::Message::ext) — never the
// payload, so the bytes are invisible to bandwidth/latency modelling,
// divergence digests and corpus hashes (see DESIGN.md "Distributed causal
// tracing"). The receiver decodes it and opens its handler span with
// `parent_span` as the parent; because every node in the fleet shares one
// Simulator, span ids are globally unique and the parent link resolves
// without any per-node id translation.
//
// A context is only ever produced when a tracer is installed (span ids are 0
// otherwise, and a zero trace id encodes to an empty blob), so untraced runs
// ship byte-for-byte empty extensions.
#pragma once

#include <cstdint>
#include <vector>

namespace rlobs {

struct TraceContext {
  uint64_t trace_id = 0;     // root span id of the causal tree
  uint64_t parent_span = 0;  // span the receiver parents its handler under
  int64_t origin_ns = 0;     // virtual time the root span opened

  bool valid() const { return trace_id != 0; }

  // 28-byte little-endian blob (magic + trace + parent + origin); an
  // invalid context encodes to an empty vector so untraced frames carry no
  // extension at all.
  std::vector<uint8_t> Encode() const;

  // Inverse of Encode. Anything that is not a well-formed 28-byte blob
  // (including the empty extension of an untraced frame) decodes to an
  // invalid context — the receiver then opens root spans, which with no
  // tracer installed costs nothing.
  static TraceContext Decode(const std::vector<uint8_t>& ext);
};

inline bool operator==(const TraceContext& a, const TraceContext& b) {
  return a.trace_id == b.trace_id && a.parent_span == b.parent_span &&
         a.origin_ns == b.origin_ns;
}

}  // namespace rlobs

// Critical-path analysis over assembled causal span trees.
//
// Once trace contexts stitch coordinator, shard and replica spans into one
// tree per transaction (see trace_context.h), the interesting question is
// where the *client-visible* latency of each transaction class actually
// went: the longest causally-ordered chain from the root's begin to its end
// — client → coordinator → slowest prepare → decision-log fsync → decision
// fanout → ack. This module computes that chain per root and aggregates the
// per-edge time by root kind ("transaction class").
//
// Algorithm: for each root, walk backwards from the root's end. At each
// node, pick the child that finished last at or before the cursor; the gap
// between that child's end and the cursor is the node's own critical time
// (its "self" segment — e.g. the coordinator's decision-log fsync between
// the slowest vote and the decision fanout), then descend into the child
// with the cursor moved to the child's end. A node with no remaining child
// before the cursor contributes its [begin, cursor] stretch and the walk
// resumes at its parent — so after the decision fanout is spent, the
// slowest prepare still gets its share. Segments sum exactly to the root's
// duration, ties break on span id, and inputs come from a deterministic
// tracer — so the breakdown is byte-identical run to run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/span_tracer.h"

namespace rlobs {

// One closed span lifted out of a SpanTracer record stream.
struct SpanNode {
  uint64_t id = 0;
  uint64_t parent = 0;
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  std::string actor;
  std::string kind;
};

// Pairs begin/end records into SpanNodes; spans still open at the end of
// the recording are closed at the last recorded timestamp (same convention
// as the Chrome exporter). Instants are ignored.
std::vector<SpanNode> CollectSpans(const SpanTracer& tracer);

// Aggregated time one span kind contributed to a class's critical paths.
struct CriticalEdge {
  std::string kind;
  uint64_t count = 0;    // critical-path segments attributed to this kind
  int64_t total_ns = 0;  // summed segment time across all roots of the class
};

// All roots of one kind (e.g. every "2pc-execute" in the run).
struct CriticalPathClass {
  std::string root_kind;
  uint64_t roots = 0;
  int64_t total_ns = 0;  // summed root durations == summed edge time
  std::vector<CriticalEdge> edges;  // sorted by total_ns desc, then kind
};

struct CriticalPathReport {
  std::vector<CriticalPathClass> classes;  // sorted by root_kind
};

// Roots are spans with no resolvable parent. Deterministic for a
// deterministic input.
CriticalPathReport AnalyzeCriticalPaths(const std::vector<SpanNode>& spans);

// Plain-text table, one block per class:
//   critical path: 2pc-execute (137 roots, total 1.92s)
//     2pc-prepare        137   820.1ms   42.7%   mean 5.99ms
// Used by the benches and by `tracecheck --critical-path`.
std::string FormatCriticalPath(const CriticalPathReport& report);

// Machine-readable form:
// {"critical_path":[{"class":...,"roots":N,"total_ns":T,
//   "edges":[{"kind":...,"count":N,"total_ns":T,"mean_ns":M,"share":S}]}]}
std::string CriticalPathJson(const CriticalPathReport& report);

}  // namespace rlobs

// In-memory span recorder.
//
// SpanTracer is the full-fidelity TraceEventSink: it keeps every instant,
// span-begin and span-end event a run emits, with actor/kind strings interned
// once so a multi-million-event run stores 40-byte POD records, not strings.
// The recorded stream is what src/obs/chrome_trace.h serialises to Chrome
// trace-event JSON for Perfetto.
//
// Determinism: the tracer is purely passive (never re-enters the simulator),
// interning uses a sorted std::map, and record order is exactly the
// simulator's deterministic emission order — recording a run twice from the
// same seed yields byte-identical exports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/trace.h"

namespace rlobs {

class SpanTracer : public rlsim::TraceEventSink {
 public:
  enum class EventType : uint8_t {
    kInstant = 0,
    kBegin = 1,
    kEnd = 2,
  };

  struct Record {
    int64_t at_ns;
    uint64_t span_id;  // 0 for instants
    uint64_t parent;   // parent span id on begins, 0 for roots/instants/ends
    int64_t arg;       // payload CRC for instants, caller arg for spans
    uint16_t actor;    // index into names()
    uint16_t kind;     // index into names()
    EventType type;
  };

  void OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                    std::string_view kind, uint32_t payload_crc) override;
  void OnSpanBegin(rlsim::TimePoint at, std::string_view actor,
                   std::string_view kind, uint64_t span_id, uint64_t parent,
                   int64_t arg) override;
  void OnSpanEnd(rlsim::TimePoint at, std::string_view actor,
                 std::string_view kind, uint64_t span_id,
                 int64_t arg) override;

  const std::vector<Record>& records() const { return records_; }
  const std::string& name(uint16_t index) const { return names_[index]; }
  size_t name_count() const { return names_.size(); }

  void Clear();

 private:
  uint16_t Intern(std::string_view s);

  // Interning table: name -> index into names_. std::less<> enables lookup
  // by string_view without constructing a std::string per event.
  std::map<std::string, uint16_t, std::less<>> index_;
  std::vector<std::string> names_;
  std::vector<Record> records_;
};

}  // namespace rlobs

// Bounded flight recorder: the last N trace events, always affordable.
//
// Unlike SpanTracer (unbounded, string-interning, meant for deliberate trace
// captures), FlightRecorder is a fixed-size ring of POD entries preallocated
// up front — cheap enough for the chaos explorer to keep one armed on every
// episode. When an oracle fails, Dump() reconstructs the "last N events
// before death" post-mortem without the episode having been traced at all.
//
// TeeSink fans one simulator trace stream out to two sinks, so the flight
// recorder can ride alongside a user-supplied tracer (or the divergence
// auditor's digest recorder) without either knowing about the other.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/trace.h"

namespace rlobs {

class FlightRecorder : public rlsim::TraceEventSink {
 public:
  explicit FlightRecorder(size_t capacity = 256);

  void OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                    std::string_view kind, uint32_t payload_crc) override;
  void OnSpanBegin(rlsim::TimePoint at, std::string_view actor,
                   std::string_view kind, uint64_t span_id, uint64_t parent,
                   int64_t arg) override;
  void OnSpanEnd(rlsim::TimePoint at, std::string_view actor,
                 std::string_view kind, uint64_t span_id,
                 int64_t arg) override;

  // Events currently held (<= capacity).
  size_t size() const;
  // Events ever observed, including those the ring has overwritten.
  uint64_t total_events() const { return total_; }
  size_t capacity() const { return ring_.size(); }

  // Oldest-to-newest, one line per event:
  //   "  +1.250ms      I  log-disk/medium-write arg=123456"
  // (I = instant, B = span begin, E = span end). Prefixed with a header
  // noting how many earlier events the ring dropped.
  std::string Dump() const;

  // Post-mortem causal slice: every span event still in the ring whose
  // causal tree contains a begin with `arg` (spans carry the transaction gid
  // or block seq as their arg). Roots are resolved by following parent links
  // among ring entries, so the dump shows the whole distributed chain —
  // coordinator phase, shard handlers, decision fanout — of the matching
  // operation. Returns "" when nothing in the ring matches (e.g. the chain
  // was overwritten or the run was never span-traced).
  std::string DumpCausalChain(int64_t arg) const;

  void Clear();

 private:
  // Fixed-width name copies keep entries POD; component names in this repo
  // are short and a truncated name is still unambiguous in a post-mortem.
  struct Entry {
    int64_t at_ns;
    uint64_t span_id;
    uint64_t parent;  // begins only; 0 elsewhere
    int64_t arg;
    char actor[24];
    char kind[28];
    char type;  // 'I' / 'B' / 'E'
  };

  void Push(char type, rlsim::TimePoint at, std::string_view actor,
            std::string_view kind, uint64_t span_id, uint64_t parent,
            int64_t arg);
  std::string FormatEntry(const Entry& e) const;

  std::vector<Entry> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

// Forwards every event to `primary` and `secondary`; either may be null.
class TeeSink : public rlsim::TraceEventSink {
 public:
  TeeSink(rlsim::TraceEventSink* primary, rlsim::TraceEventSink* secondary)
      : primary_(primary), secondary_(secondary) {}

  void OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                    std::string_view kind, uint32_t payload_crc) override;
  void OnSpanBegin(rlsim::TimePoint at, std::string_view actor,
                   std::string_view kind, uint64_t span_id, uint64_t parent,
                   int64_t arg) override;
  void OnSpanEnd(rlsim::TimePoint at, std::string_view actor,
                 std::string_view kind, uint64_t span_id,
                 int64_t arg) override;

 private:
  rlsim::TraceEventSink* primary_;
  rlsim::TraceEventSink* secondary_;
};

}  // namespace rlobs

#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>

#include "src/sim/check.h"

namespace rlobs {

namespace {

void CopyName(char* dst, size_t dst_size, std::string_view src) {
  const size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) : ring_(capacity) {
  RL_CHECK_MSG(capacity > 0, "FlightRecorder needs capacity >= 1");
}

void FlightRecorder::Push(char type, rlsim::TimePoint at,
                          std::string_view actor, std::string_view kind,
                          uint64_t span_id, uint64_t parent, int64_t arg) {
  Entry& e = ring_[next_];
  e.at_ns = at.nanos();
  e.span_id = span_id;
  e.parent = parent;
  e.arg = arg;
  CopyName(e.actor, sizeof(e.actor), actor);
  CopyName(e.kind, sizeof(e.kind), kind);
  e.type = type;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

void FlightRecorder::OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                                  std::string_view kind,
                                  uint32_t payload_crc) {
  Push('I', at, actor, kind, 0, 0, static_cast<int64_t>(payload_crc));
}

void FlightRecorder::OnSpanBegin(rlsim::TimePoint at, std::string_view actor,
                                 std::string_view kind, uint64_t span_id,
                                 uint64_t parent, int64_t arg) {
  Push('B', at, actor, kind, span_id, parent, arg);
}

void FlightRecorder::OnSpanEnd(rlsim::TimePoint at, std::string_view actor,
                               std::string_view kind, uint64_t span_id,
                               int64_t arg) {
  Push('E', at, actor, kind, span_id, 0, arg);
}

size_t FlightRecorder::size() const {
  return total_ < ring_.size() ? static_cast<size_t>(total_) : ring_.size();
}

std::string FlightRecorder::FormatEntry(const Entry& e) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "  %-14s %c  %s/%s",
                rlsim::ToString(rlsim::TimePoint::FromNanos(e.at_ns)).c_str(),
                e.type, e.actor, e.kind);
  out += line;
  if (e.span_id != 0) {
    std::snprintf(line, sizeof(line), " span=%llu",
                  static_cast<unsigned long long>(e.span_id));
    out += line;
  }
  if (e.parent != 0) {
    std::snprintf(line, sizeof(line), " parent=%llu",
                  static_cast<unsigned long long>(e.parent));
    out += line;
  }
  std::snprintf(line, sizeof(line), " arg=%lld\n",
                static_cast<long long>(e.arg));
  out += line;
  return out;
}

std::string FlightRecorder::Dump() const {
  const size_t held = size();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "flight recorder: last %zu of %llu events\n", held,
                static_cast<unsigned long long>(total_));
  out += line;
  // Oldest entry: with a full ring, next_ points at it; otherwise index 0.
  const size_t start = total_ > ring_.size() ? next_ : 0;
  for (size_t i = 0; i < held; ++i) {
    out += FormatEntry(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::DumpCausalChain(int64_t arg) const {
  const size_t held = size();
  const size_t start = total_ > ring_.size() ? next_ : 0;
  // Parent links from the begins still in the ring; a parent whose own
  // begin was overwritten terminates the walk at that id.
  std::map<uint64_t, uint64_t> parent_of;
  for (size_t i = 0; i < held; ++i) {
    const Entry& e = ring_[(start + i) % ring_.size()];
    if (e.type == 'B' && e.span_id != 0) {
      parent_of[e.span_id] = e.parent;
    }
  }
  const auto root_of = [&parent_of](uint64_t id) {
    // Bounded walk: parent ids strictly precede children in allocation
    // order, so chains are finite, but cap it anyway against a corrupt ring.
    for (int hops = 0; hops < 64; ++hops) {
      const auto it = parent_of.find(id);
      if (it == parent_of.end() || it->second == 0) {
        return id;
      }
      id = it->second;
    }
    return id;
  };
  // Causal trees of interest: roots of every span whose begin carried `arg`.
  std::set<uint64_t> roots;
  for (size_t i = 0; i < held; ++i) {
    const Entry& e = ring_[(start + i) % ring_.size()];
    if (e.type == 'B' && e.span_id != 0 && e.arg == arg) {
      roots.insert(root_of(e.span_id));
    }
  }
  if (roots.empty()) {
    return "";
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "causal chain for arg=%lld (%zu tree%s in ring):\n",
                static_cast<long long>(arg), roots.size(),
                roots.size() == 1 ? "" : "s");
  out += line;
  for (size_t i = 0; i < held; ++i) {
    const Entry& e = ring_[(start + i) % ring_.size()];
    if (e.span_id == 0 || roots.count(root_of(e.span_id)) == 0) {
      continue;
    }
    out += FormatEntry(e);
  }
  return out;
}

void FlightRecorder::Clear() {
  next_ = 0;
  total_ = 0;
}

void TeeSink::OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                           std::string_view kind, uint32_t payload_crc) {
  if (primary_ != nullptr) {
    primary_->OnTraceEvent(at, actor, kind, payload_crc);
  }
  if (secondary_ != nullptr) {
    secondary_->OnTraceEvent(at, actor, kind, payload_crc);
  }
}

void TeeSink::OnSpanBegin(rlsim::TimePoint at, std::string_view actor,
                          std::string_view kind, uint64_t span_id,
                          uint64_t parent, int64_t arg) {
  if (primary_ != nullptr) {
    primary_->OnSpanBegin(at, actor, kind, span_id, parent, arg);
  }
  if (secondary_ != nullptr) {
    secondary_->OnSpanBegin(at, actor, kind, span_id, parent, arg);
  }
}

void TeeSink::OnSpanEnd(rlsim::TimePoint at, std::string_view actor,
                        std::string_view kind, uint64_t span_id, int64_t arg) {
  if (primary_ != nullptr) {
    primary_->OnSpanEnd(at, actor, kind, span_id, arg);
  }
  if (secondary_ != nullptr) {
    secondary_->OnSpanEnd(at, actor, kind, span_id, arg);
  }
}

}  // namespace rlobs

#include "src/obs/metrics_snapshot.h"

#include <cstdio>

#include "src/sim/check.h"

namespace rlobs {

void MetricsSnapshotter::Start(const bool* stop) {
  RL_CHECK_MSG(interval_ > rlsim::Duration::Zero(),
               "MetricsSnapshotter interval must be positive");
  sim_.Spawn(Loop(stop), "metrics-snapshotter");
}

rlsim::Task<void> MetricsSnapshotter::Loop(const bool* stop) {
  while (!*stop) {
    co_await sim_.Sleep(interval_);
    if (*stop) {
      break;
    }
    snapshots_.push_back(Snapshot{sim_.now().nanos(), registry_.ToJson()});
  }
}

std::string MetricsSnapshotter::ToJson() const {
  std::string out = "[";
  char buf[48];
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '\n';
    std::snprintf(buf, sizeof(buf), "{\"t_ns\":%lld,\"stats\":",
                  static_cast<long long>(snapshots_[i].at_ns));
    out += buf;
    out += snapshots_[i].json;
    out += '}';
  }
  out += "\n]";
  return out;
}

}  // namespace rlobs

// Periodic virtual-time metrics snapshots.
//
// MetricsSnapshotter samples a StatsRegistry every `interval` of simulated
// time and keeps (timestamp, JSON) pairs, turning end-of-run aggregates into
// a coarse time series ("what did p99 look like during the outage window?").
// Sampling happens on the simulator's own event queue, so snapshot instants
// are deterministic; reading the registry mutates nothing, so a run with a
// snapshotter attached is behaviourally identical to one without — except
// for the snapshot events themselves, which is why the loop honours the same
// stop-flag protocol as the workload clients (the simulator runs until its
// queue drains; an unconditional periodic task would keep it alive forever).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace rlobs {

class MetricsSnapshotter {
 public:
  struct Snapshot {
    int64_t at_ns;
    std::string json;  // StatsRegistry::ToJson() at that instant
  };

  MetricsSnapshotter(rlsim::Simulator& sim,
                     const rlsim::StatsRegistry& registry,
                     rlsim::Duration interval)
      : sim_(sim), registry_(registry), interval_(interval) {}

  // Spawns the sampling loop; it exits at the first tick where *stop is
  // true. `stop` must outlive the simulation.
  void Start(const bool* stop);

  const std::vector<Snapshot>& snapshots() const { return snapshots_; }

  // [{"t_ns":...,"stats":{...}},...] — one line per snapshot.
  std::string ToJson() const;

 private:
  rlsim::Task<void> Loop(const bool* stop);

  rlsim::Simulator& sim_;
  const rlsim::StatsRegistry& registry_;
  rlsim::Duration interval_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace rlobs

#include "src/obs/span_tracer.h"

#include "src/sim/check.h"

namespace rlobs {

uint16_t SpanTracer::Intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) {
    return it->second;
  }
  RL_CHECK_MSG(names_.size() < UINT16_MAX,
               "SpanTracer interning table overflow");
  const uint16_t id = static_cast<uint16_t>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), id);
  return id;
}

void SpanTracer::OnTraceEvent(rlsim::TimePoint at, std::string_view actor,
                              std::string_view kind, uint32_t payload_crc) {
  records_.push_back(Record{at.nanos(), 0, 0,
                            static_cast<int64_t>(payload_crc), Intern(actor),
                            Intern(kind), EventType::kInstant});
}

void SpanTracer::OnSpanBegin(rlsim::TimePoint at, std::string_view actor,
                             std::string_view kind, uint64_t span_id,
                             uint64_t parent, int64_t arg) {
  records_.push_back(Record{at.nanos(), span_id, parent, arg, Intern(actor),
                            Intern(kind), EventType::kBegin});
}

void SpanTracer::OnSpanEnd(rlsim::TimePoint at, std::string_view actor,
                           std::string_view kind, uint64_t span_id,
                           int64_t arg) {
  records_.push_back(Record{at.nanos(), span_id, 0, arg, Intern(actor),
                            Intern(kind), EventType::kEnd});
}

void SpanTracer::Clear() {
  index_.clear();
  names_.clear();
  records_.clear();
}

}  // namespace rlobs

#include "src/obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

namespace rlobs {

namespace {

// Virtual nanoseconds -> microsecond timestamp string with full ns
// precision, integer math only ("12345" ns -> "12.345").
std::string FormatMicros(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

struct Span {
  int64_t begin_ns;
  int64_t end_ns;
  int64_t begin_arg;
  int64_t end_arg;
  uint64_t span_id;
  uint64_t parent;   // causal parent span id, 0 for roots
  size_t begin_seq;  // emission order of the begin record (sort tie-break)
  uint16_t actor;
  uint16_t kind;
  int tid = 0;  // lane, assigned per pid
};

}  // namespace

std::string ExportChromeTrace(const SpanTracer& tracer) {
  const std::vector<SpanTracer::Record>& records = tracer.records();

  // pid per actor, in sorted actor-name order (not first-emission order).
  std::map<std::string, uint16_t> actors;  // name -> intern index
  for (const SpanTracer::Record& r : records) {
    actors.emplace(tracer.name(r.actor), r.actor);
  }
  std::vector<int> pid_of(tracer.name_count(), 0);
  int next_pid = 1;
  for (const auto& [name, intern_idx] : actors) {
    pid_of[intern_idx] = next_pid++;
  }

  // Pair begins with ends; close leftovers at the last recorded timestamp.
  int64_t last_ns = 0;
  std::vector<Span> spans;
  std::map<uint64_t, Span> open;  // span_id -> half-built span
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanTracer::Record& r = records[i];
    last_ns = std::max(last_ns, r.at_ns);
    if (r.type == SpanTracer::EventType::kBegin) {
      open[r.span_id] = Span{r.at_ns, r.at_ns, r.arg,    r.arg, r.span_id,
                             r.parent, i,       r.actor, r.kind};
    } else if (r.type == SpanTracer::EventType::kEnd) {
      const auto it = open.find(r.span_id);
      if (it != open.end()) {
        it->second.end_ns = r.at_ns;
        it->second.end_arg = r.arg;
        spans.push_back(it->second);
        open.erase(it);
      }
    }
  }
  for (auto& [id, span] : open) {  // sorted by span_id: deterministic
    span.end_ns = last_ns;
    spans.push_back(span);
  }

  // Greedy lane assignment per pid: walk spans in begin order and put each
  // on the first lane that is free, so no two spans on one (pid, tid)
  // overlap (what makes the "X" rendering legible and tracecheck-valid).
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.begin_ns != b.begin_ns) {
      return a.begin_ns < b.begin_ns;
    }
    return a.begin_seq < b.begin_seq;
  });
  std::map<int, std::vector<int64_t>> lanes;  // pid -> last end per lane
  for (Span& span : spans) {
    std::vector<int64_t>& pid_lanes = lanes[pid_of[span.actor]];
    size_t lane = 0;
    while (lane < pid_lanes.size() && pid_lanes[lane] > span.begin_ns) {
      ++lane;
    }
    if (lane == pid_lanes.size()) {
      pid_lanes.push_back(0);
    }
    pid_lanes[lane] = span.end_ns;
    span.tid = static_cast<int>(lane) + 1;
  }

  // Emit: metadata first, then all events in timestamp order (stable within
  // a timestamp by emission order), one JSON object per line.
  std::vector<std::string> lines;
  char buf[320];
  for (const auto& [name, intern_idx] : actors) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                  pid_of[intern_idx], JsonEscape(name).c_str());
    lines.emplace_back(buf);
  }

  struct Out {
    int64_t ts_ns;
    size_t seq;
    std::string json;
  };
  std::vector<Out> events;
  events.reserve(spans.size() + records.size() / 4);
  for (const Span& span : spans) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,"
        "\"dur\":%s,\"args\":{\"arg\":%lld,\"end_arg\":%lld,"
        "\"span_id\":%llu,\"parent\":%llu}}",
        JsonEscape(tracer.name(span.kind)).c_str(), pid_of[span.actor],
        span.tid, FormatMicros(span.begin_ns).c_str(),
        FormatMicros(span.end_ns - span.begin_ns).c_str(),
        static_cast<long long>(span.begin_arg),
        static_cast<long long>(span.end_arg),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent));
    events.push_back(Out{span.begin_ns, span.begin_seq, buf});
  }
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanTracer::Record& r = records[i];
    if (r.type != SpanTracer::EventType::kInstant) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                  "\"tid\":0,\"ts\":%s,\"args\":{\"crc\":%lld}}",
                  JsonEscape(tracer.name(r.kind)).c_str(), pid_of[r.actor],
                  FormatMicros(r.at_ns).c_str(),
                  static_cast<long long>(r.arg));
    events.push_back(Out{r.at_ns, i, buf});
  }
  std::sort(events.begin(), events.end(), [](const Out& a, const Out& b) {
    if (a.ts_ns != b.ts_ns) {
      return a.ts_ns < b.ts_ns;
    }
    return a.seq < b.seq;
  });
  for (Out& e : events) {
    lines.push_back(std::move(e.json));
  }

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) {
      out += ',';
    }
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool WriteChromeTrace(const SpanTracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << ExportChromeTrace(tracer);
  return true;
}

}  // namespace rlobs

#include "src/obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/sim/time.h"

namespace rlobs {

std::vector<SpanNode> CollectSpans(const SpanTracer& tracer) {
  const std::vector<SpanTracer::Record>& records = tracer.records();
  std::vector<SpanNode> spans;
  std::map<uint64_t, size_t> open;  // span_id -> index into spans
  int64_t last_ns = 0;
  for (const SpanTracer::Record& r : records) {
    last_ns = std::max(last_ns, r.at_ns);
    if (r.type == SpanTracer::EventType::kBegin) {
      open[r.span_id] = spans.size();
      spans.push_back(SpanNode{r.span_id, r.parent, r.at_ns, r.at_ns,
                               tracer.name(r.actor), tracer.name(r.kind)});
    } else if (r.type == SpanTracer::EventType::kEnd) {
      const auto it = open.find(r.span_id);
      if (it != open.end()) {
        spans[it->second].end_ns = r.at_ns;
        open.erase(it);
      }
    }
  }
  for (const auto& [id, index] : open) {
    spans[index].end_ns = last_ns;
  }
  return spans;
}

namespace {

struct Walk {
  const std::vector<SpanNode>& spans;
  // parent id -> children indices, each list sorted by (end, begin, id) so
  // "latest-finishing child before the cursor" is a deterministic pick.
  std::map<uint64_t, std::vector<size_t>> children;

  explicit Walk(const std::vector<SpanNode>& s) : spans(s) {
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i].parent != 0) {
        children[s[i].parent].push_back(i);
      }
    }
    for (auto& [id, kids] : children) {
      std::sort(kids.begin(), kids.end(), [&s](size_t a, size_t b) {
        if (s[a].end_ns != s[b].end_ns) {
          return s[a].end_ns < s[b].end_ns;
        }
        if (s[a].begin_ns != s[b].begin_ns) {
          return s[a].begin_ns < s[b].begin_ns;
        }
        return s[a].id < s[b].id;
      });
    }
  }

};

}  // namespace

CriticalPathReport AnalyzeCriticalPaths(const std::vector<SpanNode>& spans) {
  Walk walk(spans);

  // A root is any span whose parent does not resolve (0, or opened under a
  // span the tracer never saw — e.g. tracing enabled mid-run).
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) {
    by_id.emplace(spans[i].id, i);
  }

  struct ClassAccum {
    uint64_t roots = 0;
    int64_t total_ns = 0;
    std::map<std::string, CriticalEdge> edges;
  };
  std::map<std::string, ClassAccum> classes;

  for (const SpanNode& root : spans) {
    if (root.parent != 0 && by_id.contains(root.parent)) {
      continue;
    }
    ClassAccum& acc = classes[root.kind];
    ++acc.roots;
    acc.total_ns += root.end_ns - root.begin_ns;

    const auto attribute = [&acc](const std::string& kind, int64_t self_ns) {
      CriticalEdge& edge = acc.edges[kind];
      edge.kind = kind;
      ++edge.count;
      edge.total_ns += self_ns;
    };

    // Backward walk with an explicit ancestor stack: consuming a child moves
    // the cursor to that child's end, and once the child's subtree is spent
    // the walk RESUMES at the parent (earlier siblings — e.g. the slowest
    // prepare behind the decision fanout — still get their share). `next`
    // caps the sibling scan at the previously picked child so a
    // zero-duration child is consumed exactly once and the walk always
    // terminates.
    struct Frame {
      const SpanNode* node;
      size_t next;  // exclusive upper bound into the sorted child list
    };
    const auto kid_count = [&walk](uint64_t id) {
      const auto it = walk.children.find(id);
      return it == walk.children.end() ? size_t{0} : it->second.size();
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{&root, kid_count(root.id)});
    int64_t cursor = root.end_ns;
    while (!stack.empty()) {
      Frame& top = stack.back();
      // Latest-finishing unconsumed child with end <= cursor.
      size_t pick = SIZE_MAX;
      const auto it = walk.children.find(top.node->id);
      if (it != walk.children.end()) {
        const std::vector<size_t>& kids = it->second;
        for (size_t i = std::min(top.next, kids.size()); i-- > 0;) {
          if (spans[kids[i]].end_ns <= cursor) {
            pick = i;
            break;
          }
        }
      }
      if (pick == SIZE_MAX) {
        // Nothing left below the cursor: the node itself ran this stretch.
        attribute(top.node->kind,
                  std::max<int64_t>(0, cursor - top.node->begin_ns));
        cursor = std::min(cursor, top.node->begin_ns);
        stack.pop_back();
        continue;
      }
      const size_t child = it->second[pick];
      attribute(top.node->kind,
                std::max<int64_t>(0, cursor - spans[child].end_ns));
      top.next = pick;
      cursor = spans[child].end_ns;
      stack.push_back(Frame{&spans[child], kid_count(spans[child].id)});
    }
  }

  CriticalPathReport report;
  for (auto& [kind, acc] : classes) {
    CriticalPathClass cls;
    cls.root_kind = kind;
    cls.roots = acc.roots;
    cls.total_ns = acc.total_ns;
    for (auto& [edge_kind, edge] : acc.edges) {
      cls.edges.push_back(std::move(edge));
    }
    std::sort(cls.edges.begin(), cls.edges.end(),
              [](const CriticalEdge& a, const CriticalEdge& b) {
                if (a.total_ns != b.total_ns) {
                  return a.total_ns > b.total_ns;
                }
                return a.kind < b.kind;
              });
    report.classes.push_back(std::move(cls));
  }
  return report;
}

std::string FormatCriticalPath(const CriticalPathReport& report) {
  std::string out;
  char line[256];
  if (report.classes.empty()) {
    return "critical path: no spans recorded\n";
  }
  for (const CriticalPathClass& cls : report.classes) {
    std::snprintf(
        line, sizeof(line), "critical path: %s (%llu root%s, total %s)\n",
        cls.root_kind.c_str(), static_cast<unsigned long long>(cls.roots),
        cls.roots == 1 ? "" : "s",
        rlsim::ToString(rlsim::Duration::Nanos(cls.total_ns)).c_str());
    out += line;
    for (const CriticalEdge& edge : cls.edges) {
      const double share =
          cls.total_ns > 0
              ? 100.0 * static_cast<double>(edge.total_ns) /
                    static_cast<double>(cls.total_ns)
              : 0.0;
      const int64_t mean_ns =
          edge.count > 0 ? edge.total_ns / static_cast<int64_t>(edge.count)
                         : 0;
      std::snprintf(
          line, sizeof(line), "  %-22s %6llu  %10s  %5.1f%%  mean %s\n",
          edge.kind.c_str(), static_cast<unsigned long long>(edge.count),
          rlsim::ToString(rlsim::Duration::Nanos(edge.total_ns)).c_str(),
          share,
          rlsim::ToString(rlsim::Duration::Nanos(mean_ns)).c_str());
      out += line;
    }
  }
  return out;
}

std::string CriticalPathJson(const CriticalPathReport& report) {
  std::string out = "{\"critical_path\":[";
  char buf[256];
  for (size_t c = 0; c < report.classes.size(); ++c) {
    const CriticalPathClass& cls = report.classes[c];
    if (c > 0) {
      out += ',';
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"class\":\"%s\",\"roots\":%llu,\"total_ns\":%lld,"
                  "\"edges\":[",
                  cls.root_kind.c_str(),
                  static_cast<unsigned long long>(cls.roots),
                  static_cast<long long>(cls.total_ns));
    out += buf;
    for (size_t e = 0; e < cls.edges.size(); ++e) {
      const CriticalEdge& edge = cls.edges[e];
      if (e > 0) {
        out += ',';
      }
      const double share =
          cls.total_ns > 0
              ? static_cast<double>(edge.total_ns) /
                    static_cast<double>(cls.total_ns)
              : 0.0;
      const int64_t mean_ns =
          edge.count > 0 ? edge.total_ns / static_cast<int64_t>(edge.count)
                         : 0;
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\":\"%s\",\"count\":%llu,\"total_ns\":%lld,"
                    "\"mean_ns\":%lld,\"share\":%.4f}",
                    edge.kind.c_str(),
                    static_cast<unsigned long long>(edge.count),
                    static_cast<long long>(edge.total_ns),
                    static_cast<long long>(mean_ns), share);
      out += buf;
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

}  // namespace rlobs

// Chrome trace-event JSON export (Perfetto-loadable).
//
// Maps a recorded SpanTracer stream onto the Chrome trace-event format:
//   - one pid per actor (pids assigned in sorted actor-name order, so the
//     export is independent of which actor happened to emit first);
//   - matched begin/end pairs become "X" (complete) events — Chrome's "B"/"E"
//     duration events demand strict per-thread nesting, which overlapping
//     simulated operations violate, so each pid instead gets greedy tid
//     "lanes": a span goes on the first lane whose previous span has ended;
//   - instants become "i" events on tid 0;
//   - a "process_name" metadata event labels each pid.
// Timestamps are virtual microseconds rendered with nanosecond precision via
// integer math ("%lld.%03lld"), never a float accumulator. One event object
// per line, so tools/tracecheck can parse the file line-wise.
#pragma once

#include <string>

#include "src/obs/span_tracer.h"

namespace rlobs {

// Serialises the tracer's records. Unmatched span-begins (run ended with the
// operation in flight) are closed at the last recorded timestamp.
std::string ExportChromeTrace(const SpanTracer& tracer);

// ExportChromeTrace to a file. Returns false (and prints to stderr) on I/O
// failure.
bool WriteChromeTrace(const SpanTracer& tracer, const std::string& path);

}  // namespace rlobs

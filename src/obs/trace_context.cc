#include "src/obs/trace_context.h"

#include <cstddef>

namespace rlobs {

namespace {

// "RLTC" little-endian.
constexpr uint32_t kMagic = 0x43544C52u;
constexpr size_t kEncodedSize = 4 + 8 + 8 + 8;

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<uint8_t> TraceContext::Encode() const {
  std::vector<uint8_t> out;
  if (!valid()) {
    return out;
  }
  out.reserve(kEncodedSize);
  PutU32(out, kMagic);
  PutU64(out, trace_id);
  PutU64(out, parent_span);
  PutU64(out, static_cast<uint64_t>(origin_ns));
  return out;
}

TraceContext TraceContext::Decode(const std::vector<uint8_t>& ext) {
  TraceContext ctx;
  if (ext.size() != kEncodedSize || GetU32(ext.data()) != kMagic) {
    return ctx;
  }
  ctx.trace_id = GetU64(ext.data() + 4);
  ctx.parent_span = GetU64(ext.data() + 12);
  ctx.origin_ns = static_cast<int64_t>(GetU64(ext.data() + 20));
  return ctx;
}

}  // namespace rlobs

#include "src/shard/wire.h"

namespace rlshard {

namespace {

void PutU16(std::vector<uint8_t>& buf, uint16_t v) {
  buf.push_back(static_cast<uint8_t>(v));
  buf.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> buf) : buf_(buf) {}

  bool U8(uint8_t* out) {
    if (pos_ + 1 > buf_.size()) {
      return false;
    }
    *out = buf_[pos_++];
    return true;
  }

  bool U16(uint16_t* out) {
    if (pos_ + 2 > buf_.size()) {
      return false;
    }
    *out = static_cast<uint16_t>(buf_[pos_] | (buf_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool U32(uint32_t* out) {
    if (pos_ + 4 > buf_.size()) {
      return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool U64(uint64_t* out) {
    if (pos_ + 8 > buf_.size()) {
      return false;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }

  bool Bytes(size_t n, std::vector<uint8_t>* out) {
    if (pos_ + n > buf_.size()) {
      return false;
    }
    out->assign(buf_.begin() + pos_, buf_.begin() + pos_ + n);
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  std::span<const uint8_t> buf_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeMessage(const WireMessage& msg) {
  std::vector<uint8_t> buf;
  buf.push_back(static_cast<uint8_t>(msg.type));
  PutU64(buf, msg.global_id);
  buf.push_back(msg.flag);
  PutU32(buf, static_cast<uint32_t>(msg.ops.size()));
  for (const WireOp& op : msg.ops) {
    buf.push_back(op.is_delete ? 1 : 0);
    PutU64(buf, op.key);
    PutU16(buf, static_cast<uint16_t>(op.value.size()));
    buf.insert(buf.end(), op.value.begin(), op.value.end());
  }
  return buf;
}

bool DecodeMessage(std::span<const uint8_t> buf, WireMessage* out) {
  Reader r(buf);
  uint8_t type = 0;
  if (!r.U8(&type) || type < 1 ||
      type > static_cast<uint8_t>(MsgType::kQueryResp)) {
    return false;
  }
  out->type = static_cast<MsgType>(type);
  uint8_t flag = 0;
  uint32_t n_ops = 0;
  if (!r.U64(&out->global_id) || !r.U8(&flag) || !r.U32(&n_ops)) {
    return false;
  }
  out->flag = flag;
  // Each op takes at least 11 bytes; reject counts the frame cannot hold.
  if (n_ops > buf.size() / 11) {
    return false;
  }
  out->ops.clear();
  out->ops.reserve(n_ops);
  for (uint32_t i = 0; i < n_ops; ++i) {
    WireOp op;
    uint8_t is_delete = 0;
    uint16_t vlen = 0;
    if (!r.U8(&is_delete) || !r.U64(&op.key) || !r.U16(&vlen) ||
        !r.Bytes(vlen, &op.value)) {
      return false;
    }
    op.is_delete = is_delete != 0;
    out->ops.push_back(std::move(op));
  }
  return r.AtEnd();
}

std::string ToString(MsgType type) {
  switch (type) {
    case MsgType::kPrepareReq:
      return "prepare";
    case MsgType::kVote:
      return "vote";
    case MsgType::kExecuteReq:
      return "execute";
    case MsgType::kExecuteResp:
      return "execute-resp";
    case MsgType::kDecision:
      return "decision";
    case MsgType::kDecisionAck:
      return "decision-ack";
    case MsgType::kQuery:
      return "query";
    case MsgType::kQueryResp:
      return "query-resp";
  }
  return "unknown";
}

}  // namespace rlshard

// Wire protocol between the transaction coordinator and shard nodes.
//
// Messages ride rlnet::NetworkFabric frames, which are lossy and unordered
// across links — every protocol obligation here is therefore end-to-end:
// votes answer prepares, acks answer decisions, and anything lost is
// re-driven by the coordinator's decision pusher or the shard's in-doubt
// resolver, never by the fabric.
//
// Encoding is explicit little-endian bytes (no struct memcpy) so frames are
// platform-independent and a torn/garbage frame decodes to false rather
// than UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rlshard {

enum class MsgType : uint8_t {
  // coordinator -> shard: log + prepare this write-set under the global id.
  kPrepareReq = 1,
  // shard -> coordinator: yes/no vote (flag). A yes vote is only sent after
  // the prepare record is durable, so a received yes is a binding promise.
  kVote = 2,
  // coordinator -> shard: single-shard fast path — execute and commit the
  // write-set locally in one round trip, no prepare state left behind.
  kExecuteReq = 3,
  // shard -> coordinator: fast-path result (flag = committed).
  kExecuteResp = 4,
  // coordinator -> shard: the decision (flag = commit). Retransmitted until
  // acked; shards apply it idempotently.
  kDecision = 5,
  // shard -> coordinator: decision applied (or already resolved).
  kDecisionAck = 6,
  // shard -> coordinator: what became of this global id? Sent by the
  // in-doubt resolver for prepared transactions whose decision never came.
  kQuery = 7,
  // coordinator -> shard: answer (flag = QueryAnswer).
  kQueryResp = 8,
};

// kQueryResp flag values. Presumed abort: the coordinator answers kCommit
// only from its durable decision log, kPending only for a transaction it is
// actively driving, and kAbort otherwise — an in-doubt transaction with no
// logged decision and no live coordinator state can never commit.
enum class QueryAnswer : uint8_t {
  kAbort = 0,
  kCommit = 1,
  kPending = 2,
};

struct WireOp {
  bool is_delete = false;
  uint64_t key = 0;
  std::vector<uint8_t> value;  // empty for deletes
};

struct WireMessage {
  MsgType type = MsgType::kPrepareReq;
  uint64_t global_id = 0;
  uint8_t flag = 0;          // vote yes / decision commit / QueryAnswer
  std::vector<WireOp> ops;   // kPrepareReq / kExecuteReq only

  static WireMessage Make(MsgType type, uint64_t global_id,
                          uint8_t flag = 0) {
    WireMessage m;
    m.type = type;
    m.global_id = global_id;
    m.flag = flag;
    return m;
  }
};

// [u8 type][u64 global_id][u8 flag][u32 n_ops] then per op
// [u8 is_delete][u64 key][u16 vlen][vlen bytes].
std::vector<uint8_t> EncodeMessage(const WireMessage& msg);

// Strict decode: returns false on short, oversized, or trailing-garbage
// frames. `out` is unspecified on failure.
bool DecodeMessage(std::span<const uint8_t> buf, WireMessage* out);

std::string ToString(MsgType type);

}  // namespace rlshard

// Two-phase-commit transaction coordinator.
//
// Protocol (presumed abort):
//   * single-shard transactions skip 2PC entirely — one kExecuteReq round
//     trip, the shard commits locally through its own trusted log;
//   * cross-shard transactions fan kPrepareReq out to every participant,
//     wait for unanimous yes-votes (each vote backed by a durable prepare
//     record on that shard), make the COMMIT decision durable in the
//     decision log *before* returning to the client, then push kDecision
//     messages until every participant acks;
//   * any no-vote, vote timeout, or coordinator crash before the decision
//     record is durable aborts the transaction — without logging anything,
//     because absence of a commit record IS the abort decision.
//
// Crash model: Crash() wipes all volatile state (in-flight transactions
// resolve to kUnknown, decision retransmission stops); Recover() rebuilds
// the committed-decision set from the decision log's valid prefix. Shards
// stuck in doubt across a coordinator crash re-learn outcomes through the
// kQuery protocol — answered kCommit only from the durable log, kPending
// only for a transaction the live coordinator is still driving, kAbort
// otherwise.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/db/profile.h"
#include "src/net/network_fabric.h"
#include "src/obs/trace_context.h"
#include "src/shard/decision_log.h"
#include "src/shard/wire.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/storage/block_device.h"

namespace rlshard {

struct CoordinatorOptions {
  // How long Execute waits for votes (or the fast-path response) before
  // presuming abort. Must comfortably exceed a prepare's worst-case
  // durability latency or healthy transactions start aborting.
  rlsim::Duration vote_timeout = rlsim::Duration::Millis(400);
  // Decision retransmission cadence and budget. Exhausting the budget is
  // not a protocol failure — the shard's in-doubt resolver takes over.
  rlsim::Duration decision_resend_interval = rlsim::Duration::Millis(100);
  int decision_resend_max = 30;
};

enum class TxnOutcome : uint8_t {
  kCommitted = 0,
  kAborted = 1,
  // The coordinator crashed (or was unreachable) before this client learned
  // a decision. The transaction may still have committed — callers must
  // treat it as unresolved, never as aborted.
  kUnknown = 2,
};

std::string ToString(TxnOutcome outcome);

// One participant's slice of a distributed transaction.
struct ShardOps {
  size_t shard = 0;
  std::vector<WireOp> ops;
};

class TxnCoordinator {
 public:
  struct Stats {
    rlsim::Counter started;
    rlsim::Counter committed;
    rlsim::Counter aborted;
    rlsim::Counter unknown;
    rlsim::Counter single_shard;
    rlsim::Counter cross_shard;
    rlsim::Counter votes_no;
    rlsim::Counter vote_timeouts;
    rlsim::Counter decision_resends;
    rlsim::Counter queries_answered;
    rlsim::Counter crashes;
    rlsim::Counter unexpected_msgs;  // shard-bound kinds sent to us
    rlsim::Histogram txn_latency;  // ns, Execute entry to outcome
  };

  // Creates the coordinator's fabric endpoint `name`. `shard_endpoints[i]`
  // is shard i's endpoint. The decision log lives on `decision_dev`, whose
  // power is managed by the caller (see Crash()/Recover()).
  TxnCoordinator(rlsim::Simulator& sim, rlnet::NetworkFabric& fabric,
                 std::string name, std::vector<std::string> shard_endpoints,
                 rlstor::BlockDevice& decision_dev,
                 rldb::EngineProfile decision_profile,
                 CoordinatorOptions options = {});

  // Recovers the decision log and starts serving. Must complete before the
  // first Execute.
  rlsim::Task<void> Start();

  // Runs one distributed transaction. `global_id` must be globally unique
  // and never reused (the workload packs client id and sequence number).
  // `parent_span` optionally hangs the transaction's causal tree under a
  // caller-side span (the workload's per-client span), so assembled traces
  // start at the client rather than at the coordinator.
  rlsim::Task<TxnOutcome> Execute(uint64_t global_id,
                                  std::vector<ShardOps> parts,
                                  uint64_t parent_span = 0);

  // Volatile-state death. The caller should cut the decision device's power
  // first so an in-flight decision write fails like real hardware. Pending
  // Executes resolve kUnknown; messages are dropped until Recover().
  void Crash();

  // Restores service after Crash(): caller restores device power, then this
  // rescans the decision log. In-doubt shards re-sync via kQuery.
  rlsim::Task<void> Recover();

  // Stops serving and drains the decision log writer (teardown path — the
  // simulator reclaims the parked receive loop).
  rlsim::Task<void> Shutdown();

  bool alive() const { return alive_; }
  // Decision pushes still being retransmitted (drain hook for tests).
  size_t pushes_outstanding() const { return pushes_.size(); }

  const Stats& stats() const { return stats_; }
  const DecisionLog& decision_log() const { return dlog_; }

  void RegisterStats(rlsim::StatsRegistry& registry,
                     const std::string& prefix) const;

 private:
  struct Pending {
    bool single = false;            // fast path (kExecuteReq)
    std::set<size_t> votes_outstanding;
    bool vote_no = false;
    bool timed_out = false;
    bool resp_received = false;     // fast path response arrived
    bool resp_commit = false;
    bool done = false;              // crash resolved this txn to kUnknown
    std::unique_ptr<rlsim::WaitQueue> wake;
  };
  struct Push {
    bool commit = false;
    std::set<size_t> unacked;
    // Trace context of the deciding Execute; retransmitted pushes carry it
    // so late decision spans still land in the transaction's causal tree.
    rlobs::TraceContext ctx;
  };

  rlsim::Task<void> ReceiveLoop();
  rlsim::Task<void> TimeoutTask(uint64_t global_id, uint64_t epoch);
  rlsim::Task<void> PusherTask(uint64_t global_id, uint64_t epoch);
  void HandleMessage(const rlnet::Message& raw);
  void SendToShard(size_t shard, const WireMessage& msg,
                   const rlobs::TraceContext& ctx = {});
  void StartPush(uint64_t global_id, bool commit,
                 const std::vector<ShardOps>& parts,
                 const rlobs::TraceContext& ctx);

  rlsim::Simulator& sim_;
  rlnet::NetworkFabric& fabric_;
  rlnet::Endpoint& endpoint_;
  std::string name_;
  std::vector<std::string> shards_;
  std::map<std::string, size_t> shard_index_;  // endpoint name -> index
  DecisionLog dlog_;
  CoordinatorOptions options_;

  bool alive_ = false;
  bool loop_started_ = false;
  // Bumped by Crash(); parked timer/pusher tasks from the old incarnation
  // notice the mismatch and exit instead of acting on stale state.
  uint64_t epoch_ = 0;
  std::map<uint64_t, Pending> pending_;
  std::map<uint64_t, Push> pushes_;

  Stats stats_;
};

}  // namespace rlshard

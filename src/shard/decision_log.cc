#include "src/shard/decision_log.h"

#include <utility>

#include "src/db/errors.h"

namespace rlshard {

rlsim::Task<void> DecisionLog::Recover() {
  if (writer_ != nullptr) {
    co_await writer_->Shutdown();
    writer_.reset();
  }
  // Volatile state is rebuilt from the log alone: decisions are only acted
  // on after they are durable, so nothing acknowledged can be missing here.
  committed_.clear();
  rldb::LogScanResult scan = co_await rldb::ScanLog(device_, profile_, 0);
  for (const rldb::LogRecord& rec : scan.records) {
    if (rec.type == rldb::LogRecordType::kCommit) {
      if (committed_.insert(rec.txn_id).second) {
        stats_.decisions_recovered.Add();
      }
    }
  }
  writer_ = std::make_unique<rldb::LogWriter>(
      sim_, device_, profile_, rldb::DurabilityMode::kSync);
  writer_->ResumeAt(scan.next_block, scan.next_lsn);
}

rlsim::Task<void> DecisionLog::LogCommit(uint64_t global_id) {
  if (committed_.count(global_id) > 0) {
    co_return;  // already durable (resolver re-drove a decided txn)
  }
  if (halted()) {
    throw rldb::EngineHalted();
  }
  rldb::LogRecord rec;
  rec.type = rldb::LogRecordType::kCommit;
  rec.txn_id = global_id;
  const uint64_t lsn = writer_->Append(std::move(rec));
  co_await writer_->WaitDurable(lsn);  // throws EngineHalted on device death
  committed_.insert(global_id);
  stats_.decisions_logged.Add();
}

rlsim::Task<void> DecisionLog::Shutdown() {
  if (writer_ != nullptr) {
    co_await writer_->Shutdown();
  }
}

}  // namespace rlshard

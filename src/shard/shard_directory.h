// Static key-range partitioning of the flat KV/TPC-C key space across N
// shards. The directory is pure arithmetic — no state, no ownership — so
// every component (coordinator, workload, oracle) can route a key to its
// owning shard without coordination. Partitioning is by contiguous range,
// matching how tpcc_lite packs the warehouse id into the key's high bits:
// a warehouse's rows land on one shard, and "remote warehouse" becomes
// "remote shard".
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/check.h"

namespace rlshard {

class ShardDirectory {
 public:
  // `key_space` keys split into `shards` contiguous ranges. The last shard
  // absorbs the remainder when the division is not exact.
  ShardDirectory(size_t shards, uint64_t key_space)
      : shards_(shards), key_space_(key_space) {
    RL_CHECK_MSG(shards_ >= 1, "directory needs at least one shard");
    RL_CHECK_MSG(key_space_ >= shards_, "fewer keys than shards");
    keys_per_shard_ = key_space_ / shards_;
  }

  size_t shards() const { return shards_; }
  uint64_t key_space() const { return key_space_; }

  size_t ShardOf(uint64_t key) const {
    RL_CHECK_MSG(key < key_space_, "key " << key << " outside directory");
    const size_t s = static_cast<size_t>(key / keys_per_shard_);
    return s < shards_ ? s : shards_ - 1;
  }

  // Owned range [RangeBegin, RangeEnd) of a shard.
  uint64_t RangeBegin(size_t shard) const {
    RL_CHECK(shard < shards_);
    return shard * keys_per_shard_;
  }
  uint64_t RangeEnd(size_t shard) const {
    RL_CHECK(shard < shards_);
    return shard + 1 == shards_ ? key_space_ : (shard + 1) * keys_per_shard_;
  }

  // Canonical fabric endpoint name of a shard ("shard-0", "shard-1", ...).
  static std::string EndpointName(size_t shard) {
    return "shard-" + std::to_string(shard);
  }

 private:
  size_t shards_;
  uint64_t key_space_;
  uint64_t keys_per_shard_;
};

}  // namespace rlshard

#include "src/shard/shard_node.h"

#include <utility>
#include <vector>

#include "src/db/errors.h"
#include "src/vmm/vm.h"

namespace rlshard {

ShardNode::ShardNode(rlsim::Simulator& sim, rlnet::NetworkFabric& fabric,
                     std::string name, std::string coordinator,
                     DbProvider provider, ShardNodeOptions options)
    : sim_(sim),
      fabric_(fabric),
      endpoint_(fabric.CreateEndpoint(name)),
      name_(std::move(name)),
      coordinator_(std::move(coordinator)),
      provider_(std::move(provider)),
      options_(options) {}

void ShardNode::Start() {
  RL_CHECK_MSG(!started_, "ShardNode started twice");
  started_ = true;
  sim_.Spawn(ReceiveLoop(), name_ + "-recv");
  sim_.Spawn(ResolverLoop(), name_ + "-resolver");
}

void ShardNode::Reply(const WireMessage& msg, const rlobs::TraceContext& ctx) {
  fabric_.Send(name_, coordinator_, EncodeMessage(msg), ctx.Encode());
}

rlsim::Task<void> ShardNode::ReceiveLoop() {
  while (true) {
    rlnet::Message raw = co_await endpoint_.Receive();
    if (provider_() == nullptr) {
      continue;  // machine down: frames fall on the floor
    }
    WireMessage msg;
    if (!DecodeMessage(raw.payload, &msg) || raw.from != coordinator_) {
      continue;
    }
    // Decoded from the out-of-band extension, never the payload: dispatch
    // below must not (and cannot) branch on it.
    const rlobs::TraceContext ctx = rlobs::TraceContext::Decode(raw.ext);
    switch (msg.type) {
      case MsgType::kPrepareReq:
        sim_.Spawn(HandlePrepare(std::move(msg), ctx), name_ + "-prepare");
        break;
      case MsgType::kExecuteReq:
        sim_.Spawn(HandleExecute(std::move(msg), ctx), name_ + "-execute");
        break;
      case MsgType::kDecision:
        sim_.Spawn(HandleDecision(msg.global_id, msg.flag != 0, ctx),
                   name_ + "-decision");
        break;
      case MsgType::kQueryResp:
        sim_.Spawn(HandleQueryResp(msg.global_id,
                                   static_cast<QueryAnswer>(msg.flag), ctx),
                   name_ + "-resolve");
        break;
      case MsgType::kVote:
      case MsgType::kExecuteResp:
      case MsgType::kDecisionAck:
      case MsgType::kQuery:
        // Coordinator-bound kinds arriving at a shard: a peer bug, not a
        // silent drop — counted so tests and chaos runs can assert zero.
        stats_.unexpected_msgs.Add();
        break;
    }
  }
}

rlsim::Task<uint64_t> ShardNode::ApplyOps(rldb::Database& db,
                                          const std::vector<WireOp>& ops) {
  const uint64_t txn = db.Begin();
  for (const WireOp& op : ops) {
    const rldb::DbStatus st =
        op.is_delete ? co_await db.Remove(txn, op.key)
                     : co_await db.Put(txn, op.key, op.value);
    if (st != rldb::DbStatus::kOk) {
      co_return 0;  // lock timeout: the engine already aborted the txn
    }
  }
  co_return txn;
}

rlsim::Task<void> ShardNode::HandlePrepare(WireMessage msg,
                                           rlobs::TraceContext ctx) {
  stats_.prepares_handled.Add();
  // Child of the coordinator's 2pc-prepare phase span: its duration is this
  // shard's apply + durable-prepare cost as seen from the causal tree.
  rlsim::SpanScope span(sim_, name_, "shard-prepare",
                        static_cast<int64_t>(msg.global_id),
                        ctx.parent_span);
  try {
    rldb::Database* db = provider_();
    if (db == nullptr) {
      co_return;
    }
    const uint64_t txn = co_await ApplyOps(*db, msg.ops);
    bool yes = false;
    if (txn != 0) {
      // The vote is only "yes" once the prepare record is durable — the
      // whole point: a yes vote must survive any subsequent crash.
      yes = (co_await db->Prepare(txn, msg.global_id)) == rldb::DbStatus::kOk;
    }
    (yes ? stats_.votes_yes : stats_.votes_no).Add();
    Reply(WireMessage::Make(MsgType::kVote, msg.global_id, yes ? 1 : 0));
  } catch (const rldb::EngineHalted&) {
    stats_.machine_deaths.Add();  // died before voting: counts as no answer
  } catch (const rlvmm::GuestCrashed&) {
    stats_.machine_deaths.Add();
  }
}

rlsim::Task<void> ShardNode::HandleExecute(WireMessage msg,
                                           rlobs::TraceContext ctx) {
  stats_.executes_handled.Add();
  rlsim::SpanScope span(sim_, name_, "shard-execute",
                        static_cast<int64_t>(msg.global_id),
                        ctx.parent_span);
  try {
    rldb::Database* db = provider_();
    if (db == nullptr) {
      co_return;
    }
    const uint64_t txn = co_await ApplyOps(*db, msg.ops);
    bool committed = false;
    if (txn != 0) {
      committed = (co_await db->Commit(txn)) == rldb::DbStatus::kOk;
    }
    if (committed) {
      stats_.execute_commits.Add();
    }
    Reply(WireMessage::Make(MsgType::kExecuteResp, msg.global_id,
                            committed ? 1 : 0));
  } catch (const rldb::EngineHalted&) {
    stats_.machine_deaths.Add();
  } catch (const rlvmm::GuestCrashed&) {
    stats_.machine_deaths.Add();
  }
}

rlsim::Task<void> ShardNode::HandleDecision(uint64_t global_id, bool commit,
                                            rlobs::TraceContext ctx) {
  rlsim::SpanScope span(sim_, name_, "shard-decision",
                        static_cast<int64_t>(global_id), ctx.parent_span);
  try {
    rldb::Database* db = provider_();
    if (db == nullptr) {
      co_return;
    }
    const rldb::DbStatus st = co_await db->ResolveInDoubt(global_id, commit);
    if (st == rldb::DbStatus::kOk) {
      stats_.decisions_applied.Add();
    } else {
      // Already resolved (duplicate push), decision raced an in-progress
      // apply, or the prepare never became durable here. All safe to ack:
      // a COMMIT decision only exists for transactions whose prepare this
      // shard made durable before voting yes.
      stats_.decision_dupes.Add();
    }
    Reply(WireMessage::Make(MsgType::kDecisionAck, global_id));
  } catch (const rldb::EngineHalted&) {
    stats_.machine_deaths.Add();  // no ack; the pusher or resolver re-drives
  } catch (const rlvmm::GuestCrashed&) {
    stats_.machine_deaths.Add();
  }
}

rlsim::Task<void> ShardNode::HandleQueryResp(uint64_t global_id,
                                             QueryAnswer answer,
                                             rlobs::TraceContext ctx) {
  bool commit = false;
  switch (answer) {
    case QueryAnswer::kPending:
      co_return;  // coordinator is still driving it; keep waiting
    case QueryAnswer::kCommit:
      commit = true;
      break;
    case QueryAnswer::kAbort:
      commit = false;  // presumed abort: no durable decision exists
      break;
  }
  // Parented under this shard's own query span (echoed back by the
  // coordinator), closing the resolve round trip in the causal tree.
  rlsim::SpanScope span(sim_, name_, "shard-resolve",
                        static_cast<int64_t>(global_id), ctx.parent_span);
  try {
    rldb::Database* db = provider_();
    if (db == nullptr) {
      co_return;
    }
    const rldb::DbStatus st =
        co_await db->ResolveInDoubt(global_id, commit);
    if (st == rldb::DbStatus::kOk) {
      stats_.resolved_by_query.Add();
    }
  } catch (const rldb::EngineHalted&) {
    stats_.machine_deaths.Add();
  } catch (const rlvmm::GuestCrashed&) {
    stats_.machine_deaths.Add();
  }
}

rlsim::Task<void> ShardNode::ResolverLoop() {
  while (!stopped_) {
    co_await sim_.Sleep(options_.resolve_interval);
    if (stopped_) {
      co_return;
    }
    rldb::Database* db = provider_();
    if (db == nullptr) {
      doubt_last_round_.clear();  // down: start the grace period over
      continue;
    }
    const std::vector<uint64_t> in_doubt = db->InDoubtGlobalIds();
    for (const uint64_t gid : in_doubt) {
      if (doubt_last_round_.count(gid) > 0) {
        stats_.queries_sent.Add();
        // Root of a resolve round trip: the coordinator echoes this context
        // on its kQueryResp, so the eventual shard-resolve span parents
        // under the query that caused it.
        const uint64_t qspan = sim_.EmitSpanBegin(
            name_, "shard-query", static_cast<int64_t>(gid));
        Reply(WireMessage::Make(MsgType::kQuery, gid),
              rlobs::TraceContext{qspan, qspan, sim_.now().nanos()});
        sim_.EmitSpanEnd(qspan, name_, "shard-query");
      }
    }
    doubt_last_round_ = std::set<uint64_t>(in_doubt.begin(), in_doubt.end());
  }
}

void ShardNode::RegisterStats(rlsim::StatsRegistry& registry,
                              const std::string& prefix) const {
  registry.RegisterCounter(prefix + "prepares_handled",
                           &stats_.prepares_handled);
  registry.RegisterCounter(prefix + "votes_yes", &stats_.votes_yes);
  registry.RegisterCounter(prefix + "votes_no", &stats_.votes_no);
  registry.RegisterCounter(prefix + "executes_handled",
                           &stats_.executes_handled);
  registry.RegisterCounter(prefix + "execute_commits",
                           &stats_.execute_commits);
  registry.RegisterCounter(prefix + "decisions_applied",
                           &stats_.decisions_applied);
  registry.RegisterCounter(prefix + "decision_dupes", &stats_.decision_dupes);
  registry.RegisterCounter(prefix + "queries_sent", &stats_.queries_sent);
  registry.RegisterCounter(prefix + "resolved_by_query",
                           &stats_.resolved_by_query);
  registry.RegisterCounter(prefix + "machine_deaths", &stats_.machine_deaths);
}

}  // namespace rlshard

// The coordinator's durable decision log.
//
// Presumed abort means only COMMIT decisions are ever logged: a global id
// absent from this log (and from the coordinator's in-flight table) is an
// abort by definition. That keeps the common abort path free of I/O and
// makes the log a monotonically growing set of commit records.
//
// Reuses the engine's WAL machinery (LogWriter / ScanLog / LogRecord) on a
// dedicated block device: records are {type=kCommit, txn_id=global id}, and
// the same torn-tail rules apply — a decision is only acted on (client
// acked, DECISION messages sent) after WaitDurable returns, so every
// acknowledged decision survives any crash.
#pragma once

#include <cstdint>
#include <memory>
#include <set>

#include "src/db/profile.h"
#include "src/db/wal.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/storage/block_device.h"

namespace rlshard {

class DecisionLog {
 public:
  struct Stats {
    rlsim::Counter decisions_logged;
    rlsim::Counter decisions_recovered;
  };

  DecisionLog(rlsim::Simulator& sim, rlstor::BlockDevice& device,
              rldb::EngineProfile profile)
      : sim_(sim), device_(device), profile_(profile) {}

  // (Re)builds the committed set from the log's valid prefix and installs a
  // fresh writer resuming at the scan end. Call once before first use and
  // again after every power restore — a halted LogWriter is permanently
  // dead and must be replaced, never reused.
  rlsim::Task<void> Recover();

  // Durably records a commit decision for `global_id`. Throws EngineHalted
  // if the device dies first — in which case the decision was NOT made and
  // the transaction will be presumed aborted unless the record landed and a
  // later recovery finds it (either way is a valid 2PC outcome, because no
  // ack was sent).
  rlsim::Task<void> LogCommit(uint64_t global_id);

  bool IsCommitted(uint64_t global_id) const {
    return committed_.count(global_id) > 0;
  }

  bool halted() const { return writer_ == nullptr || writer_->halted(); }

  // Drains the writer so the object (and the simulator) can tear down with
  // I/O possibly in flight.
  rlsim::Task<void> Shutdown();

  const Stats& stats() const { return stats_; }

 private:
  rlsim::Simulator& sim_;
  rlstor::BlockDevice& device_;
  rldb::EngineProfile profile_;

  std::set<uint64_t> committed_;
  std::unique_ptr<rldb::LogWriter> writer_;
  Stats stats_;
};

}  // namespace rlshard

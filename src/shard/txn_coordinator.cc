#include "src/shard/txn_coordinator.h"

#include <utility>

#include "src/db/errors.h"
#include "src/sim/check.h"

namespace rlshard {

std::string ToString(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kAborted:
      return "aborted";
    case TxnOutcome::kUnknown:
      return "unknown";
  }
  return "invalid";
}

TxnCoordinator::TxnCoordinator(rlsim::Simulator& sim,
                               rlnet::NetworkFabric& fabric, std::string name,
                               std::vector<std::string> shard_endpoints,
                               rlstor::BlockDevice& decision_dev,
                               rldb::EngineProfile decision_profile,
                               CoordinatorOptions options)
    : sim_(sim),
      fabric_(fabric),
      endpoint_(fabric.CreateEndpoint(name)),
      name_(std::move(name)),
      shards_(std::move(shard_endpoints)),
      dlog_(sim, decision_dev, decision_profile),
      options_(options) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    shard_index_[shards_[i]] = i;
  }
}

rlsim::Task<void> TxnCoordinator::Start() {
  co_await dlog_.Recover();
  alive_ = true;
  if (!loop_started_) {
    loop_started_ = true;
    sim_.Spawn(ReceiveLoop(), name_ + "-recv");
  }
}

void TxnCoordinator::SendToShard(size_t shard, const WireMessage& msg,
                                 const rlobs::TraceContext& ctx) {
  // The trace context rides in the frame extension, never the payload: an
  // invalid context (untraced run) encodes to an empty ext, so the frames a
  // shard sees are byte-identical with tracing on or off.
  fabric_.Send(name_, shards_[shard], EncodeMessage(msg), ctx.Encode());
}

rlsim::Task<TxnOutcome> TxnCoordinator::Execute(uint64_t global_id,
                                                std::vector<ShardOps> parts,
                                                uint64_t parent_span) {
  if (!alive_ || parts.empty()) {
    co_return TxnOutcome::kUnknown;
  }
  RL_CHECK_MSG(pending_.find(global_id) == pending_.end(),
               "global id " << global_id << " reused while in flight");
  stats_.started.Add();
  const uint64_t epoch = epoch_;
  const rlsim::TimePoint start = sim_.now();
  // Root of the transaction's causal tree; every frame this Execute (and its
  // pusher) sends carries a TraceContext pointing back into it, so shard and
  // replica handler spans assemble under this root across the whole fleet.
  rlsim::SpanScope span(sim_, name_, "2pc-execute",
                        static_cast<int64_t>(global_id), parent_span);
  const rlobs::TraceContext root_ctx{span.id(), span.id(), start.nanos()};

  Pending& p = pending_[global_id];
  p.wake = std::make_unique<rlsim::WaitQueue>(sim_);
  p.single = parts.size() == 1;
  (p.single ? stats_.single_shard : stats_.cross_shard).Add();

  uint64_t prep_span = 0;
  if (p.single) {
    WireMessage req = WireMessage::Make(MsgType::kExecuteReq, global_id);
    req.ops = std::move(parts[0].ops);
    SendToShard(parts[0].shard, req, root_ctx);
  } else {
    // The prepare phase span covers fan-out *and* the vote wait below, so
    // its critical-path share is "time until the slowest prepare resolved",
    // with the shard-side prepare spans as its children.
    prep_span = sim_.EmitSpanBegin(name_, "2pc-prepare",
                                   static_cast<int64_t>(global_id), span.id());
    const rlobs::TraceContext prep_ctx{
        span.id(), prep_span != 0 ? prep_span : span.id(), start.nanos()};
    for (ShardOps& part : parts) {
      p.votes_outstanding.insert(part.shard);
      WireMessage req = WireMessage::Make(MsgType::kPrepareReq, global_id);
      req.ops = std::move(part.ops);
      SendToShard(part.shard, req, prep_ctx);
    }
  }
  sim_.Spawn(TimeoutTask(global_id, epoch), name_ + "-timeout");

  // Wait for resolution: every vote in / fast-path response / a no-vote /
  // timeout / crash. `p` stays valid across waits — Crash() marks entries
  // done instead of erasing them, and only this coroutine erases its own.
  while (!p.done && !p.vote_no && !p.timed_out && !p.resp_received &&
         !(p.single ? false : p.votes_outstanding.empty())) {
    co_await p.wake->Wait();
  }
  sim_.EmitSpanEnd(prep_span, name_, "2pc-prepare");

  TxnOutcome outcome;
  if (p.done) {
    outcome = TxnOutcome::kUnknown;  // crashed out from under us
  } else if (p.single) {
    if (p.resp_received) {
      outcome = p.resp_commit ? TxnOutcome::kCommitted : TxnOutcome::kAborted;
    } else {
      // Timed out: the response frame may be lost but the shard may well
      // have committed. Unknown, never "aborted".
      outcome = TxnOutcome::kUnknown;
    }
  } else if (p.vote_no || p.timed_out) {
    // Presumed abort: no log write. Push the abort so prepared participants
    // release locks promptly; stragglers recover via kQuery.
    outcome = TxnOutcome::kAborted;
    StartPush(global_id, /*commit=*/false, parts, root_ctx);
  } else {
    // Unanimous yes. The decision exists once (and only once) its record is
    // durable; only then may the client be acked.
    const uint64_t decide_span = sim_.EmitSpanBegin(
        name_, "2pc-decide", static_cast<int64_t>(global_id), span.id());
    bool logged = false;
    try {
      co_await dlog_.LogCommit(global_id);
      logged = true;
    } catch (const rldb::EngineHalted&) {
      // Device died mid-write. The record may or may not have landed; either
      // way no ack was sent, so both futures are consistent: a later
      // recovery either finds the commit record (commit stands) or does not
      // (presumed abort).
    }
    sim_.EmitSpanEnd(decide_span, name_, "2pc-decide");
    if (!logged || epoch_ != epoch) {
      outcome = TxnOutcome::kUnknown;
    } else {
      outcome = TxnOutcome::kCommitted;
      StartPush(global_id, /*commit=*/true, parts, root_ctx);
    }
  }

  pending_.erase(global_id);
  switch (outcome) {
    case TxnOutcome::kCommitted:
      stats_.committed.Add();
      break;
    case TxnOutcome::kAborted:
      stats_.aborted.Add();
      break;
    case TxnOutcome::kUnknown:
      stats_.unknown.Add();
      break;
  }
  stats_.txn_latency.RecordDuration(sim_.now() - start);
  co_return outcome;
}

void TxnCoordinator::StartPush(uint64_t global_id, bool commit,
                               const std::vector<ShardOps>& parts,
                               const rlobs::TraceContext& ctx) {
  Push& push = pushes_[global_id];
  push.commit = commit;
  push.ctx = ctx;
  for (const ShardOps& part : parts) {
    push.unacked.insert(part.shard);
  }
  sim_.Spawn(PusherTask(global_id, epoch_), name_ + "-push");
}

rlsim::Task<void> TxnCoordinator::PusherTask(uint64_t global_id,
                                             uint64_t epoch) {
  for (int round = 0; round < options_.decision_resend_max; ++round) {
    if (epoch_ != epoch) {
      co_return;  // crash wiped the push table; do not recreate state
    }
    auto it = pushes_.find(global_id);
    if (it == pushes_.end() || it->second.unacked.empty()) {
      break;
    }
    const WireMessage msg = WireMessage::Make(MsgType::kDecision, global_id,
                                              it->second.commit ? 1 : 0);
    for (size_t shard : it->second.unacked) {
      SendToShard(shard, msg, it->second.ctx);
      if (round > 0) {
        stats_.decision_resends.Add();
      }
    }
    co_await sim_.Sleep(options_.decision_resend_interval);
  }
  if (epoch_ == epoch) {
    // Budget exhausted or fully acked; unreached shards will pull the
    // outcome through the query protocol.
    pushes_.erase(global_id);
  }
}

rlsim::Task<void> TxnCoordinator::TimeoutTask(uint64_t global_id,
                                              uint64_t epoch) {
  co_await sim_.Sleep(options_.vote_timeout);
  if (epoch_ != epoch) {
    co_return;
  }
  auto it = pending_.find(global_id);
  if (it == pending_.end() || it->second.done) {
    co_return;
  }
  it->second.timed_out = true;
  stats_.vote_timeouts.Add();
  it->second.wake->NotifyAll();
}

rlsim::Task<void> TxnCoordinator::ReceiveLoop() {
  while (true) {
    rlnet::Message raw = co_await endpoint_.Receive();
    if (!alive_) {
      continue;  // a dead coordinator drops everything on the floor
    }
    HandleMessage(raw);
  }
}

void TxnCoordinator::HandleMessage(const rlnet::Message& raw) {
  WireMessage msg;
  if (!DecodeMessage(raw.payload, &msg)) {
    return;
  }
  auto shard_it = shard_index_.find(raw.from);
  if (shard_it == shard_index_.end()) {
    return;  // not a shard we know
  }
  const size_t shard = shard_it->second;

  switch (msg.type) {
    case MsgType::kVote: {
      auto it = pending_.find(msg.global_id);
      if (it == pending_.end() || it->second.done || it->second.single) {
        return;  // decision already taken; pusher/query handles the shard
      }
      Pending& p = it->second;
      if (msg.flag != 0) {
        p.votes_outstanding.erase(shard);
        if (p.votes_outstanding.empty()) {
          p.wake->NotifyAll();
        }
      } else {
        p.vote_no = true;
        stats_.votes_no.Add();
        p.wake->NotifyAll();
      }
      return;
    }
    case MsgType::kExecuteResp: {
      auto it = pending_.find(msg.global_id);
      if (it == pending_.end() || it->second.done || !it->second.single) {
        return;
      }
      it->second.resp_received = true;
      it->second.resp_commit = msg.flag != 0;
      it->second.wake->NotifyAll();
      return;
    }
    case MsgType::kDecisionAck: {
      auto it = pushes_.find(msg.global_id);
      if (it != pushes_.end()) {
        it->second.unacked.erase(shard);
      }
      return;
    }
    case MsgType::kQuery: {
      QueryAnswer answer;
      if (dlog_.IsCommitted(msg.global_id)) {
        answer = QueryAnswer::kCommit;
      } else {
        auto it = pending_.find(msg.global_id);
        const bool in_flight = it != pending_.end() && !it->second.done;
        answer = in_flight ? QueryAnswer::kPending : QueryAnswer::kAbort;
      }
      stats_.queries_answered.Add();
      WireMessage resp = WireMessage::Make(MsgType::kQueryResp, msg.global_id, static_cast<uint8_t>(answer));
      // Echo the querying shard's trace context so its resolution span
      // parents under the shard's query root, not a disconnected fragment.
      fabric_.Send(name_, raw.from, EncodeMessage(resp),
                   rlobs::TraceContext::Decode(raw.ext).Encode());
      return;
    }
    case MsgType::kPrepareReq:
    case MsgType::kExecuteReq:
    case MsgType::kDecision:
    case MsgType::kQueryResp:
      // Shard-bound kinds arriving at the coordinator: a peer bug, not a
      // silent drop — counted so tests and chaos runs can assert zero.
      stats_.unexpected_msgs.Add();
      return;
  }
}

void TxnCoordinator::Crash() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  ++epoch_;
  stats_.crashes.Add();
  // Resolve every in-flight Execute to kUnknown. Entries are marked rather
  // than erased so waiting coroutines (which hold references) wake safely
  // and erase their own.
  // simlint: ordered-ok (this pending_ is the coordinator's std::map, not
  // the unordered fleet_checker member of the same name)
  for (auto& [gid, p] : pending_) {
    if (!p.done) {
      p.done = true;
      p.wake->NotifyAll();
    }
  }
  pushes_.clear();
}

rlsim::Task<void> TxnCoordinator::Shutdown() {
  alive_ = false;
  co_await dlog_.Shutdown();
}

rlsim::Task<void> TxnCoordinator::Recover() {
  RL_CHECK_MSG(!alive_, "Recover() on a live coordinator");
  co_await dlog_.Recover();
  alive_ = true;
}

void TxnCoordinator::RegisterStats(rlsim::StatsRegistry& registry,
                                   const std::string& prefix) const {
  registry.RegisterCounter(prefix + "txns_started", &stats_.started);
  registry.RegisterCounter(prefix + "committed", &stats_.committed);
  registry.RegisterCounter(prefix + "aborted", &stats_.aborted);
  registry.RegisterCounter(prefix + "unknown", &stats_.unknown);
  registry.RegisterCounter(prefix + "single_shard", &stats_.single_shard);
  registry.RegisterCounter(prefix + "cross_shard", &stats_.cross_shard);
  registry.RegisterCounter(prefix + "votes_no", &stats_.votes_no);
  registry.RegisterCounter(prefix + "vote_timeouts", &stats_.vote_timeouts);
  registry.RegisterCounter(prefix + "decision_resends",
                           &stats_.decision_resends);
  registry.RegisterCounter(prefix + "queries_answered",
                           &stats_.queries_answered);
  registry.RegisterCounter(prefix + "crashes", &stats_.crashes);
  registry.RegisterCounter(prefix + "decisions_logged",
                           &dlog_.stats().decisions_logged);
  registry.RegisterCounter(prefix + "decisions_recovered",
                           &dlog_.stats().decisions_recovered);
  registry.RegisterHistogram(prefix + "txn_latency", &stats_.txn_latency,
                             /*as_duration=*/true);
}

}  // namespace rlshard

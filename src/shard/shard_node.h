// A shard's protocol agent: the glue between the coordinator's messages and
// the shard's local storage engine.
//
// The node owns no engine — it borrows the current Database through a
// provider callback, which returns nullptr whenever the shard machine is
// down (power cut, guest crashed, recovery in progress). A down shard
// simply drops frames, exactly like a dead machine; the coordinator's
// timeouts and retransmissions, plus this node's in-doubt resolver, supply
// all the reliability.
//
// Handlers run as spawned tasks so a prepare waiting on log durability
// never head-of-line-blocks an unrelated decision. Anything that dies
// mid-handler (EngineHalted / GuestCrashed) is swallowed silently — no
// vote, no ack — which to the coordinator is indistinguishable from a lost
// frame, the failure it already handles.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "src/db/database.h"
#include "src/net/network_fabric.h"
#include "src/obs/trace_context.h"
#include "src/shard/wire.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace rlshard {

struct ShardNodeOptions {
  // In-doubt resolver cadence. A prepared transaction is only queried once
  // it has been in doubt for a full interval (freshly prepared transactions
  // are still being driven by the coordinator — querying them would just
  // earn a kPending).
  rlsim::Duration resolve_interval = rlsim::Duration::Millis(300);
};

class ShardNode {
 public:
  struct Stats {
    rlsim::Counter prepares_handled;
    rlsim::Counter votes_yes;
    rlsim::Counter votes_no;
    rlsim::Counter executes_handled;
    rlsim::Counter execute_commits;
    rlsim::Counter decisions_applied;
    rlsim::Counter decision_dupes;  // decision for an already-resolved txn
    rlsim::Counter queries_sent;
    rlsim::Counter resolved_by_query;
    rlsim::Counter machine_deaths;  // handler died with the shard
    rlsim::Counter unexpected_msgs;  // coordinator-bound kinds sent to us
  };

  // Returns the shard's live engine, or nullptr while the machine is down.
  using DbProvider = std::function<rldb::Database*()>;

  ShardNode(rlsim::Simulator& sim, rlnet::NetworkFabric& fabric,
            std::string name, std::string coordinator, DbProvider provider,
            ShardNodeOptions options = {});

  // Spawns the receive and resolver loops. Call exactly once.
  void Start();

  // Stops the periodic resolver (teardown path — without this the resolver's
  // eternal timer keeps the simulator's event queue alive forever). The
  // receive loop needs no stop: it parks on the endpoint, eventless.
  void Stop() { stopped_ = true; }

  const Stats& stats() const { return stats_; }
  void RegisterStats(rlsim::StatsRegistry& registry,
                     const std::string& prefix) const;

 private:
  rlsim::Task<void> ReceiveLoop();
  rlsim::Task<void> ResolverLoop();
  // Handlers take the frame's decoded TraceContext so their spans parent
  // under the coordinator-side phase span that caused them (invalid context
  // = untraced run = the spans never open).
  rlsim::Task<void> HandlePrepare(WireMessage msg, rlobs::TraceContext ctx);
  rlsim::Task<void> HandleExecute(WireMessage msg, rlobs::TraceContext ctx);
  rlsim::Task<void> HandleDecision(uint64_t global_id, bool commit,
                                   rlobs::TraceContext ctx);
  rlsim::Task<void> HandleQueryResp(uint64_t global_id, QueryAnswer answer,
                                    rlobs::TraceContext ctx);
  // Begins a local txn, applies the wire ops, returns the txn id or 0 when
  // a lock timeout already aborted it.
  rlsim::Task<uint64_t> ApplyOps(rldb::Database& db,
                                 const std::vector<WireOp>& ops);
  void Reply(const WireMessage& msg, const rlobs::TraceContext& ctx = {});

  rlsim::Simulator& sim_;
  rlnet::NetworkFabric& fabric_;
  rlnet::Endpoint& endpoint_;
  std::string name_;
  std::string coordinator_;
  DbProvider provider_;
  ShardNodeOptions options_;
  bool started_ = false;
  bool stopped_ = false;

  // Global ids seen in doubt by the previous resolver round; only these are
  // queried this round (one-interval grace period).
  std::set<uint64_t> doubt_last_round_;

  Stats stats_;
};

}  // namespace rlshard

#include "src/vmm/virtual_block_device.h"

#include <utility>
#include <vector>

#include "src/sim/check.h"

namespace rlvmm {

using rlkern::IpcMessage;
using rlkern::KernelStatus;
using rlkern::Received;
using rlsim::Task;
using rlstor::BlockStatus;
using rlstor::kSectorSize;

BlockBackend::BlockBackend(rlsim::Simulator& sim, rlkern::Kernel& kernel,
                           rlkern::SlotAddr service_ep,
                           rlstor::BlockDevice& target, std::string name)
    : sim_(sim),
      kernel_(kernel),
      service_ep_(service_ep),
      target_(target),
      name_(std::move(name)) {}

void BlockBackend::Start() { sim_.Spawn(ServiceLoop(), name_); }

rlsim::Task<void> BlockBackend::ServiceLoop() {
  while (true) {
    Received request;
    const KernelStatus st = co_await kernel_.Recv(service_ep_, &request);
    if (st != KernelStatus::kOk) {
      co_return;  // endpoint destroyed — backend retires
    }
    sim_.Spawn(HandleRequest(std::move(request)), name_ + "-req");
  }
}

rlsim::Task<void> BlockBackend::HandleRequest(Received request) {
  IpcMessage& msg = request.message;
  IpcMessage reply;
  BlockStatus status = BlockStatus::kOutOfRange;
  RL_CHECK_MSG(msg.words.size() >= 3, "malformed block request");
  const uint64_t lba = msg.words[0];
  const uint64_t sectors = msg.words[1];
  const bool fua = msg.words[2] != 0;

  switch (msg.label) {
    case kBlkRead: {
      std::vector<uint8_t> buf(sectors * kSectorSize);
      status = co_await target_.Read(lba, buf);
      reply.payload = std::move(buf);
      break;
    }
    case kBlkWrite:
      RL_CHECK(msg.payload.size() == sectors * kSectorSize);
      status = co_await target_.Write(lba, msg.payload, fua);
      break;
    case kBlkFlush:
      status = co_await target_.Flush();
      break;
    default:
      RL_UNREACHABLE("unknown block opcode");
  }
  reply.words = {static_cast<uint64_t>(status)};
  ++requests_served_;
  kernel_.Reply(request.reply, std::move(reply));
}

VirtualBlockDevice::VirtualBlockDevice(rlsim::Simulator& sim,
                                       VirtualMachine& vm,
                                       rlkern::Kernel& kernel,
                                       rlkern::SlotAddr backend_ep,
                                       rlstor::Geometry geometry,
                                       std::string name)
    : sim_(sim),
      vm_(vm),
      kernel_(kernel),
      backend_ep_(backend_ep),
      geometry_(geometry),
      name_(std::move(name)) {}

Task<BlockStatus> VirtualBlockDevice::Transact(IpcMessage msg,
                                               std::span<uint8_t> read_out,
                                               std::string_view kind,
                                               int64_t arg) {
  // Covers the whole guest-observed request: VM exit, backend IPC, physical
  // I/O, and completion-interrupt injection.
  rlsim::SpanScope span(sim_, name_, kind, arg);
  const uint64_t incarnation = vm_.incarnation();
  const rlsim::TimePoint start = sim_.now();
  co_await vm_.VmExit();

  IpcMessage reply;
  const KernelStatus st = co_await kernel_.Call(backend_ep_, std::move(msg),
                                                &reply);
  RL_CHECK_MSG(st == KernelStatus::kOk,
               "backend IPC failed: " << rlkern::ToString(st));

  // The physical effect (if any) has happened; now deliver the completion to
  // the guest — which may have died in the meantime.
  vm_.CheckAlive(incarnation);
  co_await vm_.InjectIrq();
  vm_.CheckAlive(incarnation);

  if (!read_out.empty()) {
    RL_CHECK(reply.payload.size() == read_out.size());
    std::copy(reply.payload.begin(), reply.payload.end(), read_out.begin());
  }
  stats_.request_latency.RecordDuration(sim_.now() - start);
  co_return static_cast<BlockStatus>(reply.words.at(0));
}

Task<BlockStatus> VirtualBlockDevice::Read(uint64_t lba,
                                           std::span<uint8_t> out) {
  IpcMessage msg;
  msg.label = kBlkRead;
  msg.words = {lba, out.size() / kSectorSize, 0};
  stats_.reads.Add();
  co_return co_await Transact(std::move(msg), out, "vblk-read",
                              static_cast<int64_t>(lba));
}

Task<BlockStatus> VirtualBlockDevice::Write(uint64_t lba,
                                            std::span<const uint8_t> data,
                                            bool fua) {
  IpcMessage msg;
  msg.label = kBlkWrite;
  msg.words = {lba, data.size() / kSectorSize, fua ? 1u : 0u};
  msg.payload.assign(data.begin(), data.end());
  stats_.writes.Add();
  co_return co_await Transact(std::move(msg), {}, "vblk-write",
                              static_cast<int64_t>(lba));
}

Task<BlockStatus> VirtualBlockDevice::Flush() {
  IpcMessage msg;
  msg.label = kBlkFlush;
  msg.words = {0, 0, 0};
  stats_.flushes.Add();
  co_return co_await Transact(std::move(msg), {}, "vblk-flush", 0);
}

}  // namespace rlvmm

// Guest virtual machine container.
//
// A VirtualMachine does not interpret instructions; it accounts for guest
// execution (CPU work is charged through Compute(), inflated by the
// virtualisation overhead factor) and owns the guest's failure domain:
// Crash() bumps the incarnation counter, and guest-side code carries the
// incarnation it started under — when they disagree, that code's effects
// must be discarded (the coroutine unwinds at its next Compute/IO point).
// The trusted layer below the VM (microkernel, VMM, RapiLog) is unaffected
// by guest crashes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace rlvmm {

// Thrown inside guest coroutines when the guest they belong to has crashed;
// harnesses catch it at the top of each guest task.
class GuestCrashed : public std::exception {
 public:
  const char* what() const noexcept override { return "guest crashed"; }
};

struct VmParams {
  // Multiplier on guest CPU time (1.0 = bare metal, 1.05 = 5% overhead —
  // the ballpark the paper attributes to virtualisation).
  double cpu_overhead = 1.05;
  // Cost of a VM exit + entry pair (paravirtual I/O kick).
  rlsim::Duration vmexit_cost = rlsim::Duration::Micros(2);
  // Cost of injecting a completion interrupt into the guest.
  rlsim::Duration irq_inject_cost = rlsim::Duration::Micros(1);
  std::string name = "guest";
};

class VirtualMachine {
 public:
  VirtualMachine(rlsim::Simulator& sim, VmParams params);

  // Charges `work` of guest CPU time (scaled by the overhead factor).
  // Throws GuestCrashed if the calling code's guest no longer exists.
  rlsim::Task<void> Compute(rlsim::Duration work);

  // Charges one VM exit/entry pair.
  rlsim::Task<void> VmExit();

  // Charges the completion-interrupt path.
  rlsim::Task<void> InjectIrq();

  // Kills the guest OS (or the whole VM): all in-flight guest work unwinds
  // with GuestCrashed at its next cancellation point.
  void Crash();

  // Boots a fresh incarnation after a crash.
  void Reset();

  bool running() const { return running_; }
  uint64_t incarnation() const { return incarnation_; }

  // Throws GuestCrashed unless the guest is running in the same incarnation.
  void CheckAlive(uint64_t incarnation) const;

  // Invoked (in registration order) when the guest crashes — how the VMM
  // layer learns that outstanding guest requests are abandoned.
  void OnCrash(std::function<void()> callback);

  const VmParams& params() const { return params_; }

 private:
  rlsim::Simulator& sim_;
  VmParams params_;
  bool running_ = true;
  uint64_t incarnation_ = 1;
  std::vector<std::function<void()>> crash_callbacks_;
};

// RAII-style helper capturing the incarnation a guest activity started in.
class GuestContext {
 public:
  explicit GuestContext(VirtualMachine& vm)
      : vm_(vm), incarnation_(vm.incarnation()) {}

  // Cancellation point: throws GuestCrashed if the guest died.
  void Check() const { vm_.CheckAlive(incarnation_); }
  bool alive() const {
    return vm_.running() && vm_.incarnation() == incarnation_;
  }

  rlsim::Task<void> Compute(rlsim::Duration work) {
    Check();
    co_await vm_.Compute(work);
    Check();
  }

  VirtualMachine& vm() { return vm_; }
  uint64_t incarnation() const { return incarnation_; }

 private:
  VirtualMachine& vm_;
  uint64_t incarnation_;
};

}  // namespace rlvmm

#include "src/vmm/vm.h"

#include "src/sim/check.h"

namespace rlvmm {

using rlsim::Duration;
using rlsim::Task;

VirtualMachine::VirtualMachine(rlsim::Simulator& sim, VmParams params)
    : sim_(sim), params_(params) {
  RL_CHECK(params_.cpu_overhead >= 1.0);
}

Task<void> VirtualMachine::Compute(Duration work) {
  if (!running_) {
    throw GuestCrashed();
  }
  const uint64_t started = incarnation_;
  co_await sim_.Sleep(work * params_.cpu_overhead);
  CheckAlive(started);
}

Task<void> VirtualMachine::VmExit() {
  if (!running_) {
    throw GuestCrashed();
  }
  co_await sim_.Sleep(params_.vmexit_cost);
}

Task<void> VirtualMachine::InjectIrq() {
  co_await sim_.Sleep(params_.irq_inject_cost);
}

void VirtualMachine::Crash() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (const auto& cb : crash_callbacks_) {
    cb();
  }
}

void VirtualMachine::Reset() {
  RL_CHECK_MSG(!running_, "Reset() of a running guest");
  running_ = true;
  ++incarnation_;
}

void VirtualMachine::CheckAlive(uint64_t incarnation) const {
  if (!running_ || incarnation_ != incarnation) {
    throw GuestCrashed();
  }
}

void VirtualMachine::OnCrash(std::function<void()> callback) {
  crash_callbacks_.push_back(std::move(callback));
}

}  // namespace rlvmm

// The paravirtual block path.
//
// Guest side: VirtualBlockDevice implements rlstor::BlockDevice; each
// request costs a VM exit, a microkernel IPC Call to the host-side backend
// component, and a completion-interrupt injection — the virtualisation
// overhead the paper measures.
//
// Host side: BlockBackend is a trusted component that serves one endpoint
// and forwards requests to any rlstor::BlockDevice. Pointing it at a
// physical SimBlockDevice gives the "virt" configuration; pointing the log
// disk's backend at a rapilog::RapiLogDevice gives the "rapilog"
// configuration — the guest is unmodified either way, exactly as in the
// paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/microkernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/storage/block_device.h"
#include "src/vmm/vm.h"

namespace rlvmm {

// IPC message labels of the block protocol.
inline constexpr uint64_t kBlkRead = 1;
inline constexpr uint64_t kBlkWrite = 2;
inline constexpr uint64_t kBlkFlush = 3;

// Host-side backend component: serves `service_ep` forever, forwarding to
// `target`. Each request is handled in its own task, so requests the target
// can overlap (cache hits) do overlap.
class BlockBackend {
 public:
  BlockBackend(rlsim::Simulator& sim, rlkern::Kernel& kernel,
               rlkern::SlotAddr service_ep, rlstor::BlockDevice& target,
               std::string name = "blk-backend");

  // Spawns the service loop on the simulator.
  void Start();

  uint64_t requests_served() const { return requests_served_; }

 private:
  rlsim::Task<void> ServiceLoop();
  rlsim::Task<void> HandleRequest(rlkern::Received request);

  rlsim::Simulator& sim_;
  rlkern::Kernel& kernel_;
  rlkern::SlotAddr service_ep_;
  rlstor::BlockDevice& target_;
  std::string name_;
  uint64_t requests_served_ = 0;
};

// Guest-side virtual disk.
class VirtualBlockDevice : public rlstor::BlockDevice {
 public:
  struct Stats {
    rlsim::Counter reads;
    rlsim::Counter writes;
    rlsim::Counter flushes;
    rlsim::Histogram request_latency;  // ns, guest-observed
  };

  // `name` labels this device's trace spans ("guest-log-vblk" etc.), so a
  // testbed with several virtual disks stays distinguishable in a trace.
  VirtualBlockDevice(rlsim::Simulator& sim, VirtualMachine& vm,
                     rlkern::Kernel& kernel, rlkern::SlotAddr backend_ep,
                     rlstor::Geometry geometry, std::string name = "vblk");

  const rlstor::Geometry& geometry() const override { return geometry_; }

  rlsim::Task<rlstor::BlockStatus> Read(uint64_t lba,
                                        std::span<uint8_t> out) override;
  rlsim::Task<rlstor::BlockStatus> Write(uint64_t lba,
                                         std::span<const uint8_t> data,
                                         bool fua) override;
  rlsim::Task<rlstor::BlockStatus> Flush() override;

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  rlsim::Task<rlstor::BlockStatus> Transact(rlkern::IpcMessage msg,
                                            std::span<uint8_t> read_out,
                                            std::string_view kind,
                                            int64_t arg);

  rlsim::Simulator& sim_;
  VirtualMachine& vm_;
  rlkern::Kernel& kernel_;
  rlkern::SlotAddr backend_ep_;
  rlstor::Geometry geometry_;
  std::string name_;
  Stats stats_;
};

}  // namespace rlvmm

// Deterministic network model for the discrete-event simulator.
//
// A NetworkFabric connects named endpoints with point-to-point links. Each
// link direction has its own latency/bandwidth/jitter parameters and its own
// RNG stream (forked from the simulator's root RNG at Connect time), so runs
// are bit-for-bit reproducible from a single seed and adding traffic on one
// link never perturbs another's randomness.
//
// Delivery is via simulator events: Send() computes
//   departure  = max(now, link busy-until)          (serialisation queueing)
//   tx time    = bytes / bandwidth
//   arrival    = departure + tx + base latency + jitter
// and clamps arrival to never precede the link's previous arrival, so a link
// is strictly in-order (TCP-like) even with jitter. Messages are dropped with
// a configurable per-link probability (lossy fabric) and unconditionally
// while the link is down — SetLinkUp is the hook `src/faults` and the harness
// use to inject and heal network partitions.
//
// The fabric models the wire, not a protocol: no acks, no retransmission, no
// corruption (dropped frames simply vanish). Reliability is the sender's
// problem (see src/replica/log_shipper.h).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace rlnet {

struct LinkParams {
  // One-way propagation delay.
  rlsim::Duration base_latency = rlsim::Duration::Micros(100);
  // Serialisation rate; a message occupies the link for bytes/bandwidth.
  double bandwidth_mbps = 1000.0;
  // Extra per-message delay, uniform in [0, jitter).
  rlsim::Duration jitter = rlsim::Duration::Zero();
  // Probability a message silently vanishes (checked while the link is up).
  double drop_probability = 0.0;
};

struct Message {
  std::string from;
  std::string to;
  std::vector<uint8_t> payload;
  // Optional out-of-band frame extension (trace context; see
  // src/obs/trace_context.h). Deliberately NOT part of the modelled frame:
  // it contributes nothing to bandwidth/serialisation time or to
  // bytes_sent, so attaching it can never perturb the simulation — the
  // determinism contract behind "tracing on vs off is byte-identical".
  // Protocol codecs must never read behaviour out of it.
  std::vector<uint8_t> ext;
  rlsim::TimePoint sent_at;
};

// A named receiver. Created and owned by the fabric; holds the inbound queue.
class Endpoint {
 public:
  const std::string& name() const { return name_; }

  // Next message, waiting if none is pending. FIFO across all inbound links
  // (arrival order; ties resolved by the simulator's deterministic event
  // order).
  rlsim::Task<Message> Receive();

  // Non-blocking variant; returns false if the inbox is empty.
  bool TryReceive(Message* out);

  size_t pending() const { return inbox_.size(); }

 private:
  friend class NetworkFabric;
  Endpoint(rlsim::Simulator& sim, std::string name)
      : name_(std::move(name)), arrived_(sim) {}

  void Deliver(Message message);

  std::string name_;
  std::deque<Message> inbox_;
  rlsim::WaitQueue arrived_;
};

class NetworkFabric {
 public:
  struct Stats {
    rlsim::Counter messages_sent;
    rlsim::Counter messages_delivered;
    rlsim::Counter messages_dropped;     // random loss on an up link
    rlsim::Counter messages_blackholed;  // link down (partition)
    rlsim::Counter bytes_sent;
    rlsim::Histogram delivery_latency;  // ns, send -> delivery
  };

  explicit NetworkFabric(rlsim::Simulator& sim) : sim_(sim) {}

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  // Name must be unique. The returned endpoint lives as long as the fabric.
  Endpoint& CreateEndpoint(const std::string& name);
  Endpoint* endpoint(const std::string& name);

  // Creates the pair of directed links a->b and b->a with the same
  // parameters (each direction still has independent state and RNG).
  void Connect(const std::string& a, const std::string& b, LinkParams params);

  // Enqueues a message for delivery. Returns true if a delivery event was
  // scheduled, false if the message was dropped (lossy link or link down).
  // Either way the caller must not rely on the outcome for correctness —
  // that is what end-to-end acks are for. The `ext` overload attaches an
  // out-of-band frame extension that rides along untimed and unaccounted
  // (see Message::ext); drops and blackholes discard it with the frame.
  bool Send(const std::string& from, const std::string& to,
            std::vector<uint8_t> payload);
  bool Send(const std::string& from, const std::string& to,
            std::vector<uint8_t> payload, std::vector<uint8_t> ext);

  // Partition control: takes both directions between a and b up or down.
  // Messages already in flight still arrive (they are on the wire); new
  // sends are blackholed until the link comes back up.
  void SetLinkUp(const std::string& a, const std::string& b, bool up);
  bool link_up(const std::string& a, const std::string& b) const;

  // Degrades (or restores) both directions between a and b to the given
  // random-loss probability. Fault-injection hook: a flaky link rather than
  // a hard partition.
  void SetLinkLoss(const std::string& a, const std::string& b,
                   double drop_probability);

  const Stats& stats() const { return stats_; }

  // Registers this fabric's stats under `prefix` (e.g. "net.") for uniform
  // bench reporting.
  void RegisterStats(rlsim::StatsRegistry& registry,
                     const std::string& prefix) const;

 private:
  struct Link {
    LinkParams params;
    rlsim::Rng rng;
    bool up = true;
    rlsim::TimePoint busy_until;    // end of the last serialisation
    rlsim::TimePoint last_arrival;  // in-order floor for the next arrival
  };

  Link* FindLink(const std::string& from, const std::string& to);
  const Link* FindLink(const std::string& from, const std::string& to) const;

  rlsim::Simulator& sim_;
  // Ordered maps: iteration (and thus any derived behaviour) is independent
  // of insertion order and hashing, keeping runs reproducible.
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::pair<std::string, std::string>, Link> links_;
  Stats stats_;
};

}  // namespace rlnet

#include "src/net/network_fabric.h"

#include <algorithm>

#include "src/sim/check.h"

namespace rlnet {

using rlsim::Duration;
using rlsim::Task;
using rlsim::TimePoint;

Task<Message> Endpoint::Receive() {
  while (inbox_.empty()) {
    co_await arrived_.Wait();
  }
  Message m = std::move(inbox_.front());
  inbox_.pop_front();
  co_return m;
}

bool Endpoint::TryReceive(Message* out) {
  if (inbox_.empty()) {
    return false;
  }
  *out = std::move(inbox_.front());
  inbox_.pop_front();
  return true;
}

void Endpoint::Deliver(Message message) {
  inbox_.push_back(std::move(message));
  arrived_.NotifyAll();
}

Endpoint& NetworkFabric::CreateEndpoint(const std::string& name) {
  RL_CHECK_MSG(!endpoints_.contains(name), "duplicate endpoint " << name);
  // simlint: new-ok (private constructor; immediately owned by unique_ptr)
  auto ep = std::unique_ptr<Endpoint>(new Endpoint(sim_, name));
  Endpoint& ref = *ep;
  endpoints_.emplace(name, std::move(ep));
  return ref;
}

Endpoint* NetworkFabric::endpoint(const std::string& name) {
  const auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

void NetworkFabric::Connect(const std::string& a, const std::string& b,
                            LinkParams params) {
  RL_CHECK_MSG(endpoints_.contains(a), "Connect: unknown endpoint " << a);
  RL_CHECK_MSG(endpoints_.contains(b), "Connect: unknown endpoint " << b);
  RL_CHECK_MSG(a != b, "Connect: self-link at " << a);
  RL_CHECK(params.bandwidth_mbps > 0);
  RL_CHECK(params.drop_probability >= 0 && params.drop_probability < 1.0);
  for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const auto key = std::pair{from, to};
    RL_CHECK_MSG(!links_.contains(key),
                 "link " << from << "->" << to << " already exists");
    links_.emplace(key, Link{.params = params,
                             .rng = sim_.rng().Fork(),
                             .up = true,
                             .busy_until = sim_.now(),
                             .last_arrival = sim_.now()});
  }
}

NetworkFabric::Link* NetworkFabric::FindLink(const std::string& from,
                                             const std::string& to) {
  const auto it = links_.find(std::pair{from, to});
  return it == links_.end() ? nullptr : &it->second;
}

const NetworkFabric::Link* NetworkFabric::FindLink(
    const std::string& from, const std::string& to) const {
  const auto it = links_.find(std::pair{from, to});
  return it == links_.end() ? nullptr : &it->second;
}

bool NetworkFabric::Send(const std::string& from, const std::string& to,
                         std::vector<uint8_t> payload) {
  return Send(from, to, std::move(payload), {});
}

bool NetworkFabric::Send(const std::string& from, const std::string& to,
                         std::vector<uint8_t> payload,
                         std::vector<uint8_t> ext) {
  Link* link = FindLink(from, to);
  RL_CHECK_MSG(link != nullptr, "Send on unknown link " << from << "->" << to);
  Endpoint* dest = endpoint(to);
  RL_CHECK(dest != nullptr);

  stats_.messages_sent.Add();
  stats_.bytes_sent.Add(static_cast<int64_t>(payload.size()));

  if (!link->up) {
    stats_.messages_blackholed.Add();
    return false;
  }
  if (link->params.drop_probability > 0 &&
      link->rng.Chance(link->params.drop_probability)) {
    stats_.messages_dropped.Add();
    return false;
  }

  const TimePoint now = sim_.now();
  const TimePoint departure = std::max(now, link->busy_until);
  const double tx_seconds = static_cast<double>(payload.size()) /
                            (link->params.bandwidth_mbps * 1e6);
  link->busy_until = departure + Duration::SecondsF(tx_seconds);
  TimePoint arrival = link->busy_until + link->params.base_latency;
  if (link->params.jitter > Duration::Zero()) {
    arrival += link->params.jitter * link->rng.NextDouble();
  }
  // In-order guarantee: jitter never reorders a link.
  arrival = std::max(arrival, link->last_arrival);
  link->last_arrival = arrival;

  // `ext` joins the Message here, after all timing/accounting above — the
  // extension is observability freight, not modelled bytes.
  Message message{.from = from,
                  .to = to,
                  .payload = std::move(payload),
                  .ext = std::move(ext),
                  .sent_at = now};
  sim_.ScheduleAt(arrival, [this, dest, m = std::move(message)]() mutable {
    stats_.messages_delivered.Add();
    stats_.delivery_latency.RecordDuration(sim_.now() - m.sent_at);
    dest->Deliver(std::move(m));
  });
  return true;
}

void NetworkFabric::SetLinkUp(const std::string& a, const std::string& b,
                              bool up) {
  Link* ab = FindLink(a, b);
  Link* ba = FindLink(b, a);
  RL_CHECK_MSG(ab != nullptr && ba != nullptr,
               "SetLinkUp on unknown link " << a << "<->" << b);
  ab->up = up;
  ba->up = up;
}

void NetworkFabric::SetLinkLoss(const std::string& a, const std::string& b,
                                double drop_probability) {
  RL_CHECK(drop_probability >= 0 && drop_probability < 1.0);
  Link* ab = FindLink(a, b);
  Link* ba = FindLink(b, a);
  RL_CHECK_MSG(ab != nullptr && ba != nullptr,
               "SetLinkLoss on unknown link " << a << "<->" << b);
  ab->params.drop_probability = drop_probability;
  ba->params.drop_probability = drop_probability;
}

bool NetworkFabric::link_up(const std::string& a, const std::string& b) const {
  const Link* link = FindLink(a, b);
  RL_CHECK_MSG(link != nullptr, "link_up on unknown link " << a << "->" << b);
  return link->up;
}

void NetworkFabric::RegisterStats(rlsim::StatsRegistry& registry,
                                  const std::string& prefix) const {
  registry.RegisterCounter(prefix + "messages_sent", &stats_.messages_sent);
  registry.RegisterCounter(prefix + "messages_delivered",
                           &stats_.messages_delivered);
  registry.RegisterCounter(prefix + "messages_dropped",
                           &stats_.messages_dropped);
  registry.RegisterCounter(prefix + "messages_blackholed",
                           &stats_.messages_blackholed);
  registry.RegisterCounter(prefix + "bytes_sent", &stats_.bytes_sent);
  registry.RegisterHistogram(prefix + "delivery_latency",
                             &stats_.delivery_latency, /*as_duration=*/true);
}

}  // namespace rlnet

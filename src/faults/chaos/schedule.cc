#include "src/faults/chaos/schedule.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "src/sim/rng.h"

namespace rlchaos {

using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlrep::ShipMode;

std::string ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kPowerCut:
      return "power-cut";
    case FaultKind::kPowerRestore:
      return "power-restore";
    case FaultKind::kGuestCrash:
      return "guest-crash";
    case FaultKind::kGuestRecover:
      return "guest-recover";
    case FaultKind::kLogDiskFault:
      return "log-disk-fault";
    case FaultKind::kDataDiskFault:
      return "data-disk-fault";
    case FaultKind::kPartitionReplica:
      return "partition-replica";
    case FaultKind::kHealReplica:
      return "heal-replica";
    case FaultKind::kKillReplica:
      return "kill-replica";
    case FaultKind::kReviveReplica:
      return "revive-replica";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kLinkRestore:
      return "link-restore";
    case FaultKind::kKillShard:
      return "kill-shard";
    case FaultKind::kRecoverShard:
      return "recover-shard";
    case FaultKind::kPartitionShard:
      return "partition-shard";
    case FaultKind::kHealShard:
      return "heal-shard";
    case FaultKind::kKillCoordinator:
      return "kill-coordinator";
    case FaultKind::kRecoverCoordinator:
      return "recover-coordinator";
  }
  return "unknown";
}

namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::kPowerCut,         FaultKind::kPowerRestore,
    FaultKind::kGuestCrash,       FaultKind::kGuestRecover,
    FaultKind::kLogDiskFault,     FaultKind::kDataDiskFault,
    FaultKind::kPartitionReplica, FaultKind::kHealReplica,
    FaultKind::kKillReplica,      FaultKind::kReviveReplica,
    FaultKind::kLinkDegrade,      FaultKind::kLinkRestore,
    FaultKind::kKillShard,        FaultKind::kRecoverShard,
    FaultKind::kPartitionShard,   FaultKind::kHealShard,
    FaultKind::kKillCoordinator,  FaultKind::kRecoverCoordinator,
};

bool ModeFromString(const std::string& s, DeploymentMode* out) {
  for (const DeploymentMode m :
       {DeploymentMode::kNative, DeploymentMode::kVirt,
        DeploymentMode::kRapiLog, DeploymentMode::kUnsafeAsync}) {
    if (rlharness::ToString(m) == s) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool DisksFromString(const std::string& s, DiskSetup* out) {
  for (const DiskSetup d : {DiskSetup::kSharedHdd, DiskSetup::kSeparateHdd,
                            DiskSetup::kBbwc, DiskSetup::kSsdLog}) {
    if (rlharness::ToString(d) == s) {
      *out = d;
      return true;
    }
  }
  return false;
}

bool ShipFromString(const std::string& s, ShipMode* out) {
  for (const ShipMode m : {ShipMode::kAsync, ShipMode::kQuorumAck}) {
    if (rlrep::ToString(m) == s) {
      *out = m;
      return true;
    }
  }
  return false;
}

}  // namespace

bool FaultKindFromString(const std::string& s, FaultKind* out) {
  for (const FaultKind k : kAllKinds) {
    if (ToString(k) == s) {
      *out = k;
      return true;
    }
  }
  return false;
}

void SortEvents(std::vector<FaultEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tuple(a.at_us, static_cast<int>(a.kind), a.arg) <
                     std::tuple(b.at_us, static_cast<int>(b.kind), b.arg);
            });
}

std::string Serialize(const EpisodeConfig& cfg) {
  std::ostringstream out;
  // Fleet episodes need the v2 keys; plain schedules keep emitting the v1
  // format byte-for-byte so every existing recorded schedule still diffs
  // clean against a re-serialisation.
  const bool fleet = cfg.fleet_shards > 0;
  out << (fleet ? "rapilog-chaos-schedule v2\n" : "rapilog-chaos-schedule v1\n");
  out << "seed " << cfg.seed << "\n";
  out << "mode " << rlharness::ToString(cfg.mode) << "\n";
  out << "disks " << rlharness::ToString(cfg.disks) << "\n";
  out << "replicas " << cfg.replicas << "\n";
  out << "ship "
      << (cfg.replicas == 0 ? std::string("none")
                            : rlrep::ToString(cfg.ship_mode))
      << "\n";
  out << "restore-from-replica " << (cfg.restore_from_replica ? 1 : 0) << "\n";
  out << "power-guard " << (cfg.power_guard ? 1 : 0) << "\n";
  out << "run-us " << cfg.run_us << "\n";
  if (fleet) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.4f", cfg.cross_ratio);
    out << "fleet-shards " << cfg.fleet_shards << "\n";
    out << "cross-ratio " << ratio << "\n";
  }
  for (const FaultEvent& e : cfg.events) {
    out << "event " << e.at_us << " " << ToString(e.kind) << " " << e.arg
        << "\n";
  }
  out << "end\n";
  return out.str();
}

bool Parse(const std::string& text, EpisodeConfig* out, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || (line != "rapilog-chaos-schedule v1" &&
                                  line != "rapilog-chaos-schedule v2")) {
    return fail("bad header (want 'rapilog-chaos-schedule v1' or 'v2')");
  }
  EpisodeConfig cfg;
  cfg.events.clear();
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "seed") {
      if (!(fields >> cfg.seed)) {
        return fail("bad seed line: " + line);
      }
    } else if (key == "mode") {
      std::string v;
      fields >> v;
      if (!ModeFromString(v, &cfg.mode)) {
        return fail("unknown mode: " + v);
      }
    } else if (key == "disks") {
      std::string v;
      fields >> v;
      if (!DisksFromString(v, &cfg.disks)) {
        return fail("unknown disks: " + v);
      }
    } else if (key == "replicas") {
      if (!(fields >> cfg.replicas)) {
        return fail("bad replicas line: " + line);
      }
    } else if (key == "ship") {
      std::string v;
      fields >> v;
      if (v != "none" && !ShipFromString(v, &cfg.ship_mode)) {
        return fail("unknown ship mode: " + v);
      }
    } else if (key == "restore-from-replica") {
      int v = 0;
      if (!(fields >> v)) {
        return fail("bad restore-from-replica line: " + line);
      }
      cfg.restore_from_replica = v != 0;
    } else if (key == "power-guard") {
      int v = 0;
      if (!(fields >> v)) {
        return fail("bad power-guard line: " + line);
      }
      cfg.power_guard = v != 0;
    } else if (key == "run-us") {
      if (!(fields >> cfg.run_us) || cfg.run_us <= 0) {
        return fail("bad run-us line: " + line);
      }
    } else if (key == "fleet-shards") {
      if (!(fields >> cfg.fleet_shards)) {
        return fail("bad fleet-shards line: " + line);
      }
    } else if (key == "cross-ratio") {
      if (!(fields >> cfg.cross_ratio) || cfg.cross_ratio < 0 ||
          cfg.cross_ratio > 1) {
        return fail("bad cross-ratio line: " + line);
      }
    } else if (key == "event") {
      FaultEvent e;
      std::string kind;
      if (!(fields >> e.at_us >> kind >> e.arg) || e.at_us < 0) {
        return fail("bad event line: " + line);
      }
      if (!FaultKindFromString(kind, &e.kind)) {
        return fail("unknown fault kind: " + kind);
      }
      cfg.events.push_back(e);
    } else {
      return fail("unknown key: " + key);
    }
  }
  if (!saw_end) {
    return fail("missing 'end' terminator");
  }
  SortEvents(&cfg.events);
  *out = cfg;
  return true;
}

EpisodeConfig GenerateEpisode(uint64_t seed, const GeneratorOptions& opts) {
  // The generator's randomness is independent of the simulator's: the
  // schedule is fixed before the episode starts, exactly as a replayed file
  // would be.
  rlsim::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  EpisodeConfig cfg;
  cfg.seed = seed;
  cfg.power_guard = opts.power_guard;
  cfg.run_us = rng.UniformInt(opts.run_us_min, opts.run_us_max);

  if (opts.fleet_shards > 0) {
    // Fleet episode (E13): N shard testbeds behind a 2PC coordinator. The
    // motifs target the protocol's message boundaries — a kill landing
    // between prepare and decision is the interesting schedule, and with
    // events drawn uniformly across the window while hundreds of
    // transactions run, every boundary gets hit across a seed sweep.
    cfg.fleet_shards = opts.fleet_shards;
    cfg.mode = DeploymentMode::kRapiLog;
    constexpr DiskSetup kFleetDisks[] = {DiskSetup::kSharedHdd,
                                         DiskSetup::kSsdLog};
    cfg.disks = kFleetDisks[rng.NextBelow(2)];
    if (opts.cross_ratio >= 0) {
      cfg.cross_ratio = opts.cross_ratio;
    } else {
      constexpr double kRatios[] = {0.1, 0.3, 0.6};
      cfg.cross_ratio = kRatios[rng.NextBelow(3)];
    }
    const int motifs =
        static_cast<int>(rng.UniformInt(opts.min_faults, opts.max_faults));
    for (int m = 0; m < motifs; ++m) {
      const int64_t t = rng.UniformInt(10'000, cfg.run_us);
      const auto shard =
          static_cast<uint32_t>(rng.NextBelow(opts.fleet_shards));
      enum FleetMotif { kShardCycle, kShardPartition, kCoordCycle };
      switch (static_cast<FleetMotif>(rng.NextBelow(3))) {
        case kShardCycle:
          cfg.events.push_back({t, FaultKind::kKillShard, shard});
          cfg.events.push_back({t + rng.UniformInt(30'000, 200'000),
                                FaultKind::kRecoverShard, shard});
          break;
        case kShardPartition:
          cfg.events.push_back({t, FaultKind::kPartitionShard, shard});
          cfg.events.push_back({t + rng.UniformInt(30'000, 250'000),
                                FaultKind::kHealShard, shard});
          break;
        case kCoordCycle:
          cfg.events.push_back({t, FaultKind::kKillCoordinator, 0});
          cfg.events.push_back({t + rng.UniformInt(30'000, 200'000),
                                FaultKind::kRecoverCoordinator, 0});
          break;
      }
    }
    SortEvents(&cfg.events);
    return cfg;
  }

  if (opts.force_rapilog) {
    cfg.mode = DeploymentMode::kRapiLog;
  } else {
    // Bias toward the headline deployment; kUnsafeAsync is excluded because
    // it legitimately loses data (no oracle applies).
    constexpr DeploymentMode kModes[] = {
        DeploymentMode::kNative, DeploymentMode::kVirt,
        DeploymentMode::kRapiLog, DeploymentMode::kRapiLog};
    cfg.mode = kModes[rng.NextBelow(4)];
  }
  constexpr DiskSetup kDiskSetups[] = {DiskSetup::kSharedHdd,
                                       DiskSetup::kSeparateHdd,
                                       DiskSetup::kBbwc, DiskSetup::kSsdLog};
  cfg.disks = kDiskSetups[rng.NextBelow(4)];
  if (opts.allow_replication && rng.Chance(0.45)) {
    if (rng.Chance(0.5)) {
      cfg.replicas = 3;
      cfg.ship_mode = ShipMode::kQuorumAck;
    } else {
      cfg.replicas = 2;
      cfg.ship_mode = ShipMode::kAsync;
    }
  }

  const int motifs =
      static_cast<int>(rng.UniformInt(opts.min_faults, opts.max_faults));
  bool replica_disruption = false;
  bool power_cycle = false;
  for (int m = 0; m < motifs; ++m) {
    const int64_t t = rng.UniformInt(10'000, cfg.run_us);
    // Motifs valid for this topology.
    enum Motif { kCycle, kGuest, kDisk, kPartition, kKill, kDegrade };
    std::vector<Motif> valid = {kCycle, kDisk};
    if (cfg.mode != DeploymentMode::kNative) {
      valid.push_back(kGuest);
    }
    if (cfg.replicas > 0) {
      valid.push_back(kPartition);
      valid.push_back(kKill);
      valid.push_back(kDegrade);
    }
    switch (valid[rng.NextBelow(valid.size())]) {
      case kCycle: {
        power_cycle = true;
        const int64_t restore = t + rng.UniformInt(20'000, 150'000);
        cfg.events.push_back({t, FaultKind::kPowerCut, 0});
        cfg.events.push_back({restore, FaultKind::kPowerRestore, 0});
        if (rng.Chance(0.35)) {
          // A second cut aimed at the recovery window (recovery itself takes
          // a few hundred virtual ms): faults-during-recovery coverage.
          const int64_t again = restore + rng.UniformInt(10'000, 350'000);
          cfg.events.push_back({again, FaultKind::kPowerCut, 0});
          cfg.events.push_back({again + rng.UniformInt(20'000, 150'000),
                                FaultKind::kPowerRestore, 0});
        }
        break;
      }
      case kGuest: {
        cfg.events.push_back({t, FaultKind::kGuestCrash, 0});
        cfg.events.push_back(
            {t + rng.UniformInt(20'000, 120'000), FaultKind::kGuestRecover, 0});
        break;
      }
      case kDisk: {
        const FaultKind k = rng.Chance(0.6) ? FaultKind::kLogDiskFault
                                            : FaultKind::kDataDiskFault;
        cfg.events.push_back(
            {t, k, static_cast<uint32_t>(rng.UniformInt(1, 4))});
        break;
      }
      case kPartition: {
        replica_disruption = true;
        const auto r = static_cast<uint32_t>(rng.NextBelow(cfg.replicas));
        cfg.events.push_back({t, FaultKind::kPartitionReplica, r});
        cfg.events.push_back(
            {t + rng.UniformInt(30'000, 200'000), FaultKind::kHealReplica, r});
        break;
      }
      case kKill: {
        replica_disruption = true;
        const auto r = static_cast<uint32_t>(rng.NextBelow(cfg.replicas));
        cfg.events.push_back({t, FaultKind::kKillReplica, r});
        cfg.events.push_back(
            {t + rng.UniformInt(30'000, 200'000), FaultKind::kReviveReplica, r});
        break;
      }
      case kDegrade: {
        replica_disruption = true;
        const auto r = static_cast<uint32_t>(rng.NextBelow(cfg.replicas));
        cfg.events.push_back({t, FaultKind::kLinkDegrade, r});
        cfg.events.push_back(
            {t + rng.UniformInt(50'000, 250'000), FaultKind::kLinkRestore, r});
        break;
      }
    }
  }

  // Restore-from-replica is only a sound recovery strategy when the primary
  // dies in its first power epoch with an undisturbed quorum: a mid-episode
  // power cycle RESETs the replicas across a sequence gap, which can leave
  // LBA holes in their log images, and async mode's loss is legitimately
  // bounded, not zero. Shrinking only removes events, so the property is
  // preserved under minimisation.
  cfg.restore_from_replica = cfg.replicas > 0 &&
                             cfg.ship_mode == ShipMode::kQuorumAck &&
                             !replica_disruption && !power_cycle;
  SortEvents(&cfg.events);
  return cfg;
}

}  // namespace rlchaos

#include "src/faults/chaos/chaos_explorer.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/db/errors.h"
#include "src/faults/durability_checker.h"
#include "src/faults/recovery_oracle.h"
#include "src/harness/parallel_runner.h"
#include "src/obs/flight_recorder.h"
#include "src/sim/check.h"
#include "src/sim/simulator.h"
#include "src/vmm/vm.h"
#include "src/workload/kv_workload.h"

namespace rlchaos {

using rlharness::DeploymentMode;
using rlharness::Testbed;
using rlharness::TestbedOptions;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;

namespace {

// --trace (RunOptions::trace) prints each applied event and recovery outcome
// with its virtual timestamp — the first thing to reach for when a shrunken
// schedule needs a human explanation. Printing never affects the episode.
void Trace(bool enabled, const rlsim::Simulator& sim, const char* fmt, ...) {
  if (!enabled) {
    return;
  }
  std::fprintf(stderr, "[chaos %10lld us] ",
               static_cast<long long>(
                   (sim.now() - rlsim::TimePoint::Origin()).nanos() / 1000));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// Everything one episode's coroutines share. Lives on RunEpisode's stack and
// outlives the simulator run.
struct EpisodeState {
  Simulator& sim;
  Testbed& bed;
  rlwork::KvWorkload& kv;
  const EpisodeConfig& cfg;
  const RunOptions& run;
  EpisodeOutcome& out;
  rlfault::DurabilityChecker checker;
  // Stop flag of the currently running client fleet; replaced (and the old
  // one latched true) whenever a recovery spawns a fresh fleet.
  std::shared_ptr<bool> stop;
  bool recovering = false;
  int next_client_id = 0;
  rlsim::WaitQueue rec_done;

  EpisodeState(Simulator& s, Testbed& b, rlwork::KvWorkload& k,
               const EpisodeConfig& c, const RunOptions& r, EpisodeOutcome& o)
      : sim(s), bed(b), kv(k), cfg(c), run(r), out(o),
        stop(std::make_shared<bool>(true)), rec_done(s) {}
};

// RunClient already absorbs machine deaths (EngineHalted, GuestCrashed).
// Under data-disk fault injection a torn in-place page can additionally trip
// a page-validity RL_CHECK on a live fetch; the engine's response to media
// corruption is fail-stop, so the chaos harness treats CheckFailure from a
// client like a machine death — the post-recovery oracles (journal replay
// repairs the page) are the arbiters of whether data actually survived.
Task<void> ClientTask(EpisodeState& st, int id, std::shared_ptr<bool> stop) {
  try {
    co_await st.kv.RunClient(st.bed.db(), id, stop.get(), &st.checker);
  } catch (const rlsim::CheckFailure&) {
    ++st.out.check_failures;
  }
}

void SpawnClients(EpisodeState& st) {
  st.stop = std::make_shared<bool>(false);
  for (int c = 0; c < 4; ++c) {
    st.sim.Spawn(ClientTask(st, st.next_client_id++, st.stop),
                 "chaos-client");
  }
}

// Post-recovery oracles: the durability checker's model against the
// recovered store, then the B-tree structural walk. Runs after EVERY
// successful recovery (not just the final one) so in-flight commits are
// resolved against the store that actually recovered them.
Task<void> RunOracles(EpisodeState& st, const std::string& when) {
  if (!st.bed.db_open()) {
    co_return;
  }
  bool verified = false;
  try {
    const rlfault::VerifyResult v =
        co_await st.checker.VerifyAfterRecovery(st.bed.db());
    st.out.keys_checked += v.keys_checked;
    st.out.lost_writes += v.lost_writes;
    st.out.atomicity_violations += v.atomicity_violations;
    st.out.promoted_pending += v.promoted_pending;
    if (!v.ok()) {
      st.out.violations.push_back(when + ": " + v.Summary());
    }
    verified = true;
  } catch (...) {
    // The machine died again mid-verification — inconclusive, not a
    // verdict. A later recovery re-checks the (partially resolved) model.
  }
  if (verified) {
    try {
      co_await st.bed.db().CheckTreeStructure();
    } catch (const rlsim::CheckFailure& e) {
      st.out.violations.push_back(when + ": tree invariant: " + e.what());
    } catch (...) {
      // Died mid-walk: inconclusive.
    }
  }
}

Task<void> PowerRecoveryTask(EpisodeState& st) {
  st.recovering = true;
  *st.stop = true;
  bool ok = false;
  try {
    co_await st.bed.RestorePowerAndRecover();
    ok = true;
  } catch (...) {
    // A fault landed on the recovery itself (mid-recovery cut, disk fault
    // during the journal replay). The database stays closed; a later
    // power-restore event — or the episode's final normalisation — retries.
  }
  Trace(st.run.trace, st.sim, "power recovery %s",
        ok ? "succeeded" : "failed");
  st.sim.EmitTrace("chaos", ok ? "power-recovery-ok" : "power-recovery-failed",
                   0);
  if (ok) {
    ++st.out.recoveries;
    co_await RunOracles(st, "after power recovery");
    SpawnClients(st);
  }
  st.recovering = false;
  st.rec_done.NotifyAll();
}

Task<void> GuestRecoveryTask(EpisodeState& st) {
  st.recovering = true;
  *st.stop = true;
  bool ok = false;
  try {
    co_await st.bed.RecoverAfterGuestCrash();
    ok = true;
  } catch (...) {
  }
  if (ok) {
    ++st.out.recoveries;
    co_await RunOracles(st, "after guest recovery");
    SpawnClients(st);
  }
  st.recovering = false;
  st.rec_done.NotifyAll();
}

// Applies one schedule event, guarded against states where it cannot apply
// (so shrinking — which drops events — can never build a nonsense schedule).
void ApplyEvent(EpisodeState& st, const FaultEvent& e) {
  Testbed& bed = st.bed;
  const bool has_replicas = bed.replica_count() > 0;
  Trace(st.run.trace, st.sim,
        "event %s arg=%u (mains=%d db_open=%d recovering=%d)",
        ToString(e.kind).c_str(), e.arg, bed.psu().mains_on() ? 1 : 0,
        bed.db_open() ? 1 : 0, st.recovering ? 1 : 0);
  st.sim.EmitTrace("chaos", ToString(e.kind), e.arg);
  switch (e.kind) {
    case FaultKind::kPowerCut:
      if (bed.psu().mains_on()) {
        bed.CutPower();
        *st.stop = true;
      }
      break;
    case FaultKind::kPowerRestore:
      // Also fires as a retry when a previous recovery died with mains up.
      if (!st.recovering && (!bed.psu().mains_on() || !bed.db_open())) {
        st.sim.Spawn(PowerRecoveryTask(st), "chaos-power-recovery");
      }
      break;
    case FaultKind::kGuestCrash:
      if (bed.vm() != nullptr && bed.vm()->running() && !st.recovering) {
        bed.CrashGuest();
        *st.stop = true;
      }
      break;
    case FaultKind::kGuestRecover:
      if (bed.vm() != nullptr && !bed.vm()->running() &&
          bed.psu().mains_on() && !st.recovering) {
        st.sim.Spawn(GuestRecoveryTask(st), "chaos-guest-recovery");
      }
      break;
    case FaultKind::kLogDiskFault:
      bed.InjectLogDiskWriteFaults(e.arg);
      break;
    case FaultKind::kDataDiskFault:
      bed.InjectDataDiskWriteFaults(e.arg);
      break;
    case FaultKind::kPartitionReplica:
      if (has_replicas && e.arg < bed.replica_count()) {
        bed.PartitionReplica(e.arg);
      }
      break;
    case FaultKind::kHealReplica:
      if (has_replicas && e.arg < bed.replica_count()) {
        bed.HealReplica(e.arg);
      }
      break;
    case FaultKind::kKillReplica:
      if (has_replicas && e.arg < bed.replica_count()) {
        bed.KillReplica(e.arg);
      }
      break;
    case FaultKind::kReviveReplica:
      if (has_replicas && e.arg < bed.replica_count()) {
        bed.ReviveReplica(e.arg);
      }
      break;
    case FaultKind::kLinkDegrade:
      if (has_replicas && e.arg < bed.replica_count()) {
        bed.SetReplicaLinkLoss(e.arg, 0.2);
      }
      break;
    case FaultKind::kLinkRestore:
      if (has_replicas && e.arg < bed.replica_count()) {
        bed.SetReplicaLinkLoss(e.arg, 0.0);
      }
      break;
    case FaultKind::kKillShard:
    case FaultKind::kRecoverShard:
    case FaultKind::kPartitionShard:
    case FaultKind::kHealShard:
    case FaultKind::kKillCoordinator:
    case FaultKind::kRecoverCoordinator:
      // Fleet kinds: meaningless on a single testbed (see fleet_episode.cc).
      break;
  }
}

Task<void> EpisodeMain(EpisodeState& st) {
  Simulator& sim = st.sim;
  Testbed& bed = st.bed;
  try {
    co_await bed.Start();
    co_await st.kv.Load(bed.db(), 300);
  } catch (...) {
    st.out.violations.push_back("startup failed before any fault");
    co_return;
  }
  SpawnClients(st);

  // Event times are relative to workload start (now), inside [0, run_us].
  const TimePoint start = sim.now();
  for (const FaultEvent& e : st.cfg.events) {
    const TimePoint due = start + Duration::Micros(e.at_us);
    if (due > sim.now()) {
      co_await sim.Sleep(due - sim.now());
    }
    ApplyEvent(st, e);
  }
  const TimePoint horizon = start + Duration::Micros(st.cfg.run_us);
  if (horizon > sim.now()) {
    co_await sim.Sleep(horizon - sim.now());
  }

  // Wind down: stop the current fleet, let any in-flight recovery finish
  // (it may spawn one more fleet — stop that one too).
  *st.stop = true;
  while (st.recovering) {
    co_await st.rec_done.Wait();
  }
  *st.stop = true;

  // Final normalisation: every episode ends with the paper's plug-pull. If
  // the schedule already left the mains out, the episode's own cut stands.
  Trace(st.run.trace, sim, "wind-down (mains=%d db_open=%d)",
        bed.psu().mains_on() ? 1 : 0, bed.db_open() ? 1 : 0);
  sim.EmitTrace("chaos", "wind-down", 0);
  if (bed.psu().mains_on()) {
    bed.CutPower();
  }
  // Frames already on the wire drain into the replicas; devices settle.
  co_await sim.Sleep(Duration::Seconds(1));

  // Freeze the crash state for the recovery-equivalence oracle before the
  // testbed's own recovery (checkpoints, meta flips) mutates the images.
  const rlstor::DiskImage data_snapshot = bed.data_disk().image();
  const rlstor::DiskImage log_snapshot = bed.log_disk_physical().image();

  for (size_t r = 0; r < bed.replica_count(); ++r) {
    bed.ReviveReplica(r);
  }

  // Replication oracle, against the quorum cursor frozen at the cut.
  if (bed.replica_count() > 0) {
    std::vector<const rlrep::ReplicaNode*> replicas;
    replicas.reserve(bed.replica_count());
    for (size_t r = 0; r < bed.replica_count(); ++r) {
      replicas.push_back(&bed.replica(r));
    }
    const rlfault::QuorumAudit audit =
        rlfault::AuditQuorumDurability(*bed.shipper(), replicas);
    st.out.audit_sectors_expected = audit.sectors_expected;
    st.out.audit_sectors_underreplicated = audit.sectors_underreplicated;
    if (!audit.ok()) {
      st.out.violations.push_back("replication: " + audit.Summary());
    }
  }

  // Final recovery; a few attempts in case the tail of the schedule left
  // armed faults or a half-open engine behind.
  bool recovered = false;
  for (int attempt = 0; attempt < 5 && !recovered; ++attempt) {
    try {
      if (st.cfg.restore_from_replica) {
        co_await bed.RestorePowerAndRecoverFromReplica();
      } else {
        co_await bed.RestorePowerAndRecover();
      }
      recovered = true;
    } catch (...) {
      // Retry after a settle delay (below; co_await is illegal in a handler).
    }
    if (!recovered) {
      co_await sim.Sleep(Duration::Millis(200));
    }
  }
  if (!recovered) {
    st.out.violations.push_back("final recovery failed after 5 attempts");
    co_return;
  }
  ++st.out.recoveries;
  co_await RunOracles(st, "final");

  // Recovery-time oracle: recover the frozen crash state on throwaway
  // device clones with sequential and with partitioned redo; the contents,
  // in-doubt set, and replay-work counters must be identical, and both
  // recoveries must land inside the virtual-time budget.
  try {
    rlfault::RecoveryOracleOptions ropts;
    ropts.db = bed.options().db;
    ropts.partitions = 8;
    ropts.data_first_lba = bed.data_first_lba();
    ropts.log_sector_count = bed.log_sector_count();
    const rlfault::RecoveryEquivalence eq =
        co_await rlfault::CheckRecoveryEquivalence(sim, data_snapshot,
                                                   log_snapshot, ropts);
    ++st.out.recovery_equiv_checks;
    if (!eq.equivalent()) {
      ++st.out.recovery_equiv_mismatches;
      st.out.violations.push_back("recovery equivalence: " + eq.Summary());
    }
    if (!eq.within_budget(ropts.budget)) {
      st.out.violations.push_back("recovery budget exceeded: " +
                                  eq.Summary());
    }
    Trace(st.run.trace, sim, "recovery-equivalence %s", eq.Summary().c_str());
  } catch (...) {
    st.out.violations.push_back(
        "recovery-equivalence probe died on the crash images");
  }

  // RapiLog's contract: with the power guard on, the emergency flush drains
  // the buffer inside the hold-up window — buffered-ack loss is a violation.
  // With the guard ablated, loss is the EXPECTED planted failure.
  if (bed.rapilog() != nullptr && st.cfg.power_guard &&
      bed.rapilog()->lost_data()) {
    st.out.violations.push_back("rapilog lost buffered data despite guard");
  }
}

}  // namespace

uint64_t EpisodeOutcome::Hash() const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, committed);
  h = FnvMix(h, machine_deaths);
  h = FnvMix(h, check_failures);
  h = FnvMix(h, recoveries);
  h = FnvMix(h, keys_checked);
  h = FnvMix(h, lost_writes);
  h = FnvMix(h, atomicity_violations);
  h = FnvMix(h, promoted_pending);
  h = FnvMix(h, audit_sectors_expected);
  h = FnvMix(h, audit_sectors_underreplicated);
  h = FnvMix(h, fleet_cross_committed);
  h = FnvMix(h, fleet_unknown_outcomes);
  h = FnvMix(h, recovery_equiv_checks);
  h = FnvMix(h, recovery_equiv_mismatches);
  h = FnvMix(h, static_cast<uint64_t>(end_time_ns));
  h = FnvMix(h, violations.size());
  return h;
}

std::string EpisodeOutcome::Summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "committed=%llu deaths=%llu recoveries=%llu checked=%llu lost=%llu "
      "atomicity=%llu promoted=%llu violations=%zu hash=%016llx",
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(machine_deaths + check_failures),
      static_cast<unsigned long long>(recoveries),
      static_cast<unsigned long long>(keys_checked),
      static_cast<unsigned long long>(lost_writes),
      static_cast<unsigned long long>(atomicity_violations),
      static_cast<unsigned long long>(promoted_pending), violations.size(),
      static_cast<unsigned long long>(Hash()));
  return buf;
}

EpisodeOutcome RunEpisode(const EpisodeConfig& cfg, const RunOptions& run) {
  if (cfg.fleet_shards > 0) {
    return RunFleetEpisode(cfg, run);
  }
  EpisodeOutcome out;
  Simulator sim(cfg.seed);
  // Every episode flies with a recorder armed: a bounded ring of recent
  // trace events, episode-local (so jobs>1 campaigns stay data-race-free),
  // teed in front of any caller-supplied sink. Purely passive — the
  // simulation is bit-identical with or without it.
  rlobs::FlightRecorder flight(512);
  rlobs::TeeSink tee(&flight, run.sink);
  sim.set_tracer(&tee);

  TestbedOptions opts;
  opts.mode = cfg.mode;
  opts.disks = cfg.disks;
  opts.db.pool_pages = 512;
  opts.db.journal_pages = 300;
  opts.db.profile.checkpoint_dirty_pages = 128;
  // Chaos-kill recoveries run partitioned redo; the recovery-equivalence
  // oracle at wind-down cross-checks it against sequential replay.
  opts.db.recovery.partitions = 8;
  opts.rapilog.enable_power_guard = cfg.power_guard;
  if (cfg.replicas > 0) {
    opts.replication.enabled = true;
    opts.replication.replicas = cfg.replicas;
    opts.replication.shipper.mode = cfg.ship_mode;
  }
  Testbed bed(sim, opts);

  rlwork::KvConfig kv_cfg;
  kv_cfg.key_space = 1000;
  kv_cfg.write_fraction = 0.6;
  rlwork::KvWorkload kv(sim, kv_cfg);

  EpisodeState st(sim, bed, kv, cfg, run, out);
  sim.Spawn(EpisodeMain(st), "chaos-episode");
  sim.Run();

  out.committed = static_cast<uint64_t>(kv.stats().committed.value());
  out.machine_deaths =
      static_cast<uint64_t>(kv.stats().machine_deaths.value());
  out.end_time_ns = (sim.now() - TimePoint::Origin()).nanos();
  sim.set_tracer(nullptr);
  if (!out.violations.empty()) {
    out.flight_dump = flight.Dump();
  }
  return out;
}

rlharness::DivergenceReport AuditEpisodeDivergence(const EpisodeConfig& cfg,
                                                   int jobs) {
  const rlharness::DivergenceAuditor auditor;
  return auditor.RunTwice(
      [&cfg](rlsim::TraceEventSink& sink) {
        RunOptions run;
        run.sink = &sink;
        RunEpisode(cfg, run);
      },
      jobs);
}

ShrinkResult Shrink(const EpisodeConfig& failing, int budget) {
  ShrinkResult res;
  res.minimal = failing;
  res.outcome = RunEpisode(failing);
  res.replays_used = 1;
  if (res.outcome.ok()) {
    return res;  // not actually failing; nothing to shrink
  }

  // "Still failing" = any oracle violation, not necessarily the same string:
  // the minimal schedule for the underlying defect is what we are after.
  const auto still_fails = [&res, budget](const EpisodeConfig& cand,
                                          EpisodeOutcome* out) {
    if (res.replays_used >= budget) {
      return false;
    }
    ++res.replays_used;
    *out = RunEpisode(cand);
    return !out->ok();
  };

  // Pass 1: ddmin over the event list.
  size_t chunk = std::max<size_t>(1, res.minimal.events.size() / 2);
  while (res.replays_used < budget) {
    bool removed_any = false;
    for (size_t begin = 0;
         begin < res.minimal.events.size() && res.replays_used < budget;) {
      EpisodeConfig cand = res.minimal;
      const size_t end = std::min(begin + chunk, cand.events.size());
      cand.events.erase(cand.events.begin() + static_cast<long>(begin),
                        cand.events.begin() + static_cast<long>(end));
      EpisodeOutcome out;
      if (still_fails(cand, &out)) {
        res.minimal = std::move(cand);
        res.outcome = std::move(out);
        removed_any = true;  // same begin: the next chunk shifted into place
      } else {
        begin += chunk;
      }
    }
    if (!removed_any) {
      if (chunk == 1) {
        break;
      }
      chunk /= 2;
    }
  }

  // Pass 2: coarsen each surviving timestamp to the roundest grain that
  // still fails, so the minimal schedule reads in human units.
  for (const int64_t grain : {int64_t{100'000}, int64_t{10'000},
                              int64_t{1'000}}) {
    for (size_t i = 0;
         i < res.minimal.events.size() && res.replays_used < budget; ++i) {
      const int64_t rounded = res.minimal.events[i].at_us / grain * grain;
      if (rounded == res.minimal.events[i].at_us || rounded <= 0) {
        continue;
      }
      EpisodeConfig cand = res.minimal;
      cand.events[i].at_us = rounded;
      SortEvents(&cand.events);
      EpisodeOutcome out;
      if (still_fails(cand, &out)) {
        res.minimal = std::move(cand);
        res.outcome = std::move(out);
      }
    }
  }
  return res;
}

ExplorerReport ChaosExplorer::RunCampaign() {
  // Tracing prints to stderr and a sink records one simulator's stream;
  // both only make sense observing a single episode at a time.
  const int jobs =
      (options_.run.trace || options_.run.sink != nullptr) ? 1 : options_.jobs;

  // Phase 1: every episode, fanned out. Each job builds its own Simulator
  // and Testbed from its config; nothing is shared across jobs.
  const size_t n = static_cast<size_t>(options_.episodes);
  std::vector<EpisodeConfig> cfgs(n);
  for (size_t i = 0; i < n; ++i) {
    cfgs[i] = GenerateEpisode(options_.base_seed + i, options_.gen);
  }
  const std::vector<EpisodeOutcome> outcomes =
      rlharness::RunJobs<EpisodeOutcome>(jobs, n, [this, &cfgs](size_t i) {
        return RunEpisode(cfgs[i], options_.run);
      });

  // Index-ordered reduction: the corpus hash chains episode hashes in seed
  // order and failures are collected in seed order, independent of which
  // worker finished first.
  ExplorerReport report;
  uint64_t corpus = kFnvOffset;
  std::vector<size_t> failing;
  for (size_t i = 0; i < n; ++i) {
    ++report.episodes_run;
    corpus = FnvMix(corpus, outcomes[i].Hash());
    if (!outcomes[i].ok()) {
      ++report.violations;
      failing.push_back(i);
    }
  }
  report.corpus_hash = corpus;

  // Phase 2: shrink the failures (independent of each other, so they fan
  // out too; each Shrink replays sequentially and deterministically).
  std::vector<ShrinkResult> shrunk;
  if (options_.shrink) {
    shrunk = rlharness::RunJobs<ShrinkResult>(
        jobs, failing.size(), [this, &cfgs, &failing](size_t k) {
          return Shrink(cfgs[failing[k]], options_.shrink_budget);
        });
  }
  for (size_t k = 0; k < failing.size(); ++k) {
    ShrunkFailure failure;
    failure.original = cfgs[failing[k]];
    if (options_.shrink) {
      failure.shrunk = std::move(shrunk[k]);
    } else {
      failure.shrunk.minimal = cfgs[failing[k]];
      failure.shrunk.outcome = outcomes[failing[k]];
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace rlchaos

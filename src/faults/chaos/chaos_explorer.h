// ChaosExplorer: randomized multi-fault schedules executed end-to-end on the
// Testbed, checked against the durability/consistency oracles, with
// delta-debugging shrinking of failing seeds down to minimal replayable
// schedules (FoundationDB-style simulation testing for this repo).
//
// Each episode is a pure function of its EpisodeConfig: the config seeds the
// simulator, the schedule is fixed up front, and the outcome (including its
// hash) is bit-for-bit reproducible — which is what makes `--replay` and
// shrinking trustworthy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/faults/chaos/schedule.h"
#include "src/harness/divergence_auditor.h"
#include "src/sim/trace.h"

namespace rlchaos {

// Per-run knobs that do NOT belong in the EpisodeConfig (they must not
// change the episode's behaviour, only what is observed about it).
struct RunOptions {
  // Print each applied event and recovery outcome with its virtual
  // timestamp to stderr — the first thing to reach for when a shrunken
  // schedule needs a human explanation. Printing never affects the episode.
  bool trace = false;
  // Optional trace-event sink installed on the episode's simulator for the
  // DivergenceAuditor (src/harness). Null = no recording.
  rlsim::TraceEventSink* sink = nullptr;
};

// Everything observable about one episode, deterministically derived from
// the config. `violations` holds human-readable oracle failures; empty means
// the guarantees held.
struct EpisodeOutcome {
  uint64_t committed = 0;        // workload commits acknowledged
  uint64_t machine_deaths = 0;   // client coroutines unwound by a fault
  uint64_t check_failures = 0;   // clients unwound by a fail-stop invariant
  uint64_t recoveries = 0;       // successful recoveries (incl. the final)
  // Durability-checker accumulation across every verified recovery.
  uint64_t keys_checked = 0;
  uint64_t lost_writes = 0;
  uint64_t atomicity_violations = 0;
  uint64_t promoted_pending = 0;
  // Replication audit (replicated episodes only).
  uint64_t audit_sectors_expected = 0;
  uint64_t audit_sectors_underreplicated = 0;
  // Fleet episodes only (cfg.fleet_shards > 0): cross-shard 2PC traffic and
  // outcomes the atomicity oracle adjudicated. Zero in classic episodes.
  uint64_t fleet_cross_committed = 0;
  uint64_t fleet_unknown_outcomes = 0;  // txns left in doubt by a crash
  // Recovery-equivalence oracle: crash states recovered on device clones
  // under sequential and partitioned redo and compared.
  uint64_t recovery_equiv_checks = 0;
  uint64_t recovery_equiv_mismatches = 0;
  int64_t end_time_ns = 0;  // virtual time consumed by the episode
  std::vector<std::string> violations;
  // Post-mortem: the flight recorder's "last N events before death" dump,
  // filled only when the episode ends with violations. Excluded from Hash()
  // — it is derived observability text, not behaviour.
  std::string flight_dump;
  // Global ids of transactions the fleet atomicity oracle convicted
  // (VerifyResult::violating_tokens), and the flight recorder's causal span
  // chains for them: which client/coordinator/shard spans the failing
  // transactions passed through before the ring cut off. Both are derived
  // observability, excluded from Hash().
  std::vector<uint64_t> violating_gids;
  std::string causal_chain;

  bool ok() const { return violations.empty(); }
  // FNV-1a over every numeric field: two runs of the same config must agree.
  uint64_t Hash() const;
  std::string Summary() const;
};

// Runs one episode to completion on a fresh simulator. Never throws; oracle
// failures and infrastructure breakage land in `violations`. Dispatches to
// the fleet runner when cfg.fleet_shards > 0.
EpisodeOutcome RunEpisode(const EpisodeConfig& cfg,
                          const RunOptions& run = {});

// The fleet (E13) episode runner: cfg.fleet_shards shard testbeds behind a
// 2PC coordinator, cross-shard workload at cfg.cross_ratio, fleet fault
// kinds applied with state guards, and — after wind-down heals and recovers
// everything — the fleet atomicity oracle plus per-shard structural checks.
// RunEpisode forwards here; callable directly by tests.
EpisodeOutcome RunFleetEpisode(const EpisodeConfig& cfg,
                               const RunOptions& run = {});

// Determinism cross-check: executes the episode twice from its seed with a
// trace recorder installed and returns the auditor's verdict — identical
// per-epoch digests, or the first diverging event (see
// src/harness/divergence_auditor.h). jobs >= 2 runs the pair concurrently.
rlharness::DivergenceReport AuditEpisodeDivergence(const EpisodeConfig& cfg,
                                                   int jobs = 1);

struct ShrinkResult {
  EpisodeConfig minimal;
  EpisodeOutcome outcome;  // outcome of `minimal` (still violating)
  int replays_used = 0;
};

// Minimises a failing config: pass 1 is ddmin over the event list (drop
// chunks, halving the chunk size while removals keep the episode failing);
// pass 2 coarsens each surviving timestamp to the roundest grain that still
// fails. Any oracle violation counts as "still failing". `budget` bounds the
// number of episode replays.
ShrinkResult Shrink(const EpisodeConfig& failing, int budget = 250);

struct ExplorerOptions {
  uint64_t base_seed = 1;
  uint64_t episodes = 10;
  GeneratorOptions gen;
  RunOptions run;
  bool shrink = true;
  int shrink_budget = 250;
  // Worker threads for the episode fan-out (src/harness/parallel_runner).
  // Episodes are independent seeded simulations; outcomes are reduced in
  // episode-index order, so the report (hashes, violation order, shrunken
  // schedules) is byte-identical for jobs=1 and jobs=32. Forced to 1 when
  // run.trace or run.sink is set — both observe one episode at a time.
  int jobs = 1;
};

struct ShrunkFailure {
  EpisodeConfig original;
  ShrinkResult shrunk;
};

struct ExplorerReport {
  uint64_t episodes_run = 0;
  uint64_t violations = 0;
  std::vector<ShrunkFailure> failures;
  // FNV-1a chain over every episode's outcome hash: one number that pins the
  // behaviour of the whole corpus.
  uint64_t corpus_hash = 0;

  bool ok() const { return violations == 0; }
};

class ChaosExplorer {
 public:
  explicit ChaosExplorer(ExplorerOptions options) : options_(options) {}

  // Episodes base_seed .. base_seed+episodes-1, fanned across options_.jobs
  // worker threads, outcomes reduced in episode-index order, each failure
  // shrunk deterministically (shrinking itself fans across failures; each
  // shrink is internally sequential and a pure function of its config).
  ExplorerReport RunCampaign();

  // Historical name; same campaign.
  ExplorerReport Run() { return RunCampaign(); }

 private:
  ExplorerOptions options_;
};

}  // namespace rlchaos

// Fleet (E13) chaos episodes: N shard testbeds behind a 2PC coordinator,
// cross-shard load, and fault schedules that kill coordinators and shards
// across the protocol's message boundaries. The oracle is 2PC atomicity
// itself: after wind-down heals and recovers the whole fleet, no transaction
// may be committed on a strict subset of its shards, and every acked commit
// must be fully present.
#include <set>
#include <string>
#include <vector>

#include "src/db/errors.h"
#include "src/faults/chaos/chaos_explorer.h"
#include "src/faults/fleet_checker.h"
#include "src/harness/fleet_testbed.h"
#include "src/obs/flight_recorder.h"
#include "src/sim/check.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/vmm/vm.h"
#include "src/workload/fleet_workload.h"

namespace rlchaos {

namespace {

using rlharness::FleetTestbed;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;

void Trace(bool enabled, const Simulator& sim, const std::string& what) {
  if (!enabled) {
    return;
  }
  std::fprintf(stderr, "[chaos %10lld us] %s\n",
               static_cast<long long>(
                   (sim.now() - TimePoint::Origin()).nanos() / 1000),
               what.c_str());
}

struct FleetEpisodeState {
  Simulator& sim;
  FleetTestbed& fleet;
  rlwork::FleetWorkload& work;
  const EpisodeConfig& cfg;
  const RunOptions& run;
  EpisodeOutcome& out;
  rlfault::FleetChecker checker;
  bool stop = false;
  // In-flight recovery tasks; wind-down waits for them so the final
  // normalisation never races a mid-episode recovery.
  int recoveries_active = 0;
  std::set<size_t> shard_recovering;
  bool coord_recovering = false;
  rlsim::WaitQueue rec_done;

  FleetEpisodeState(Simulator& s, FleetTestbed& f, rlwork::FleetWorkload& w,
                    const EpisodeConfig& c, const RunOptions& r,
                    EpisodeOutcome& o)
      : sim(s), fleet(f), work(w), cfg(c), run(r), out(o), rec_done(s) {}
};

// Clients never touch a shard engine directly — everything goes through the
// coordinator — but a fail-stop invariant tripped by a torn page can still
// unwind a client through Execute; treat it like the classic runner does.
Task<void> ClientTask(FleetEpisodeState& st, int id) {
  try {
    co_await st.work.RunClient(st.fleet.coordinator(), st.fleet.directory(),
                               id, &st.stop, &st.checker);
  } catch (const rlsim::CheckFailure&) {
    ++st.out.check_failures;
  } catch (const rldb::EngineHalted&) {
    ++st.out.machine_deaths;
  } catch (const rlvmm::GuestCrashed&) {
    ++st.out.machine_deaths;
  }
}

Task<void> ShardRecoveryTask(FleetEpisodeState& st, size_t i) {
  st.shard_recovering.insert(i);
  ++st.recoveries_active;
  bool ok = false;
  try {
    co_await st.fleet.RecoverShard(i);
    ok = true;
  } catch (...) {
    // Another fault landed on the recovery; the wind-down retries.
  }
  Trace(st.run.trace, st.sim,
        "shard " + std::to_string(i) + " recovery " +
            (ok ? "succeeded" : "failed"));
  if (ok) {
    ++st.out.recoveries;
  }
  st.shard_recovering.erase(i);
  --st.recoveries_active;
  st.rec_done.NotifyAll();
}

Task<void> CoordRecoveryTask(FleetEpisodeState& st) {
  st.coord_recovering = true;
  ++st.recoveries_active;
  bool ok = false;
  try {
    co_await st.fleet.RecoverCoordinator();
    ok = true;
  } catch (...) {
  }
  Trace(st.run.trace, st.sim,
        std::string("coordinator recovery ") + (ok ? "succeeded" : "failed"));
  if (ok) {
    ++st.out.recoveries;
  }
  st.coord_recovering = false;
  --st.recoveries_active;
  st.rec_done.NotifyAll();
}

// Applies one event, guarded so any subsequence of a valid schedule is
// itself valid (shrinking only removes events). Classic single-testbed
// kinds are deliberate no-ops here.
void ApplyFleetEvent(FleetEpisodeState& st, const FaultEvent& e) {
  FleetTestbed& fleet = st.fleet;
  const size_t shards = fleet.shard_count();
  Trace(st.run.trace, st.sim,
        "event " + ToString(e.kind) + " arg=" + std::to_string(e.arg));
  st.sim.EmitTrace("chaos", ToString(e.kind), e.arg);
  switch (e.kind) {
    case FaultKind::kKillShard:
      fleet.KillShard(e.arg % shards);
      break;
    case FaultKind::kRecoverShard: {
      const size_t i = e.arg % shards;
      if (!fleet.shard_powered(i) && st.shard_recovering.count(i) == 0) {
        st.sim.Spawn(ShardRecoveryTask(st, i), "chaos-shard-recovery");
      }
      break;
    }
    case FaultKind::kPartitionShard:
      fleet.PartitionShard(e.arg % shards);
      break;
    case FaultKind::kHealShard:
      fleet.HealShard(e.arg % shards);
      break;
    case FaultKind::kKillCoordinator:
      fleet.KillCoordinator();
      break;
    case FaultKind::kRecoverCoordinator:
      if (!fleet.coordinator_alive() && !st.coord_recovering) {
        st.sim.Spawn(CoordRecoveryTask(st), "chaos-coord-recovery");
      }
      break;
    default:
      break;  // classic kinds have no fleet meaning
  }
}

Task<void> FleetEpisodeMain(FleetEpisodeState& st) {
  Simulator& sim = st.sim;
  FleetTestbed& fleet = st.fleet;
  try {
    co_await fleet.Start();
  } catch (...) {
    st.out.violations.push_back("fleet startup failed before any fault");
    co_return;
  }
  for (int c = 0; c < 4; ++c) {
    sim.Spawn(ClientTask(st, c), "chaos-fleet-client");
  }

  const TimePoint start = sim.now();
  for (const FaultEvent& e : st.cfg.events) {
    const TimePoint due = start + Duration::Micros(e.at_us);
    if (due > sim.now()) {
      co_await sim.Sleep(due - sim.now());
    }
    ApplyFleetEvent(st, e);
  }
  const TimePoint horizon = start + Duration::Micros(st.cfg.run_us);
  if (horizon > sim.now()) {
    co_await sim.Sleep(horizon - sim.now());
  }

  // Wind-down: stop the load, let in-flight recoveries settle, heal every
  // partition, then bring the whole fleet back with retries.
  st.stop = true;
  while (st.recoveries_active > 0) {
    co_await st.rec_done.Wait();
  }
  Trace(st.run.trace, sim, "wind-down");
  sim.EmitTrace("chaos", "wind-down", 0);
  for (size_t i = 0; i < fleet.shard_count(); ++i) {
    fleet.HealShard(i);
  }

  for (int attempt = 0; attempt < 5 && !fleet.coordinator_alive(); ++attempt) {
    try {
      co_await fleet.RecoverCoordinator();
    } catch (...) {
    }
    if (!fleet.coordinator_alive()) {
      co_await sim.Sleep(Duration::Millis(200));
    }
  }
  if (!fleet.coordinator_alive()) {
    st.out.violations.push_back("final coordinator recovery failed");
    co_return;
  }
  for (size_t i = 0; i < fleet.shard_count(); ++i) {
    for (int attempt = 0; attempt < 5 && fleet.shard_db(i) == nullptr;
         ++attempt) {
      try {
        if (!fleet.shard_powered(i)) {
          co_await fleet.RecoverShard(i);
        } else {
          // Powered but closed: an earlier recovery died partway. Retry the
          // full restore path directly on the bed.
          co_await fleet.shard(i).RestorePowerAndRecover();
        }
      } catch (...) {
      }
      if (fleet.shard_db(i) == nullptr) {
        co_await sim.Sleep(Duration::Millis(200));
      }
    }
    if (fleet.shard_db(i) == nullptr) {
      st.out.violations.push_back("final recovery failed on shard " +
                                  std::to_string(i));
      co_return;
    }
  }
  ++st.out.recoveries;

  // Drain every in-doubt transaction through the resolver/query protocol
  // before judging: a leftover prepared txn is not a verdict, it is an
  // unfinished conversation with the coordinator.
  if (!co_await fleet.ResolveAllInDoubt(Duration::Seconds(30))) {
    st.out.violations.push_back("in-doubt transactions failed to drain");
  }

  std::vector<rldb::Database*> dbs;
  for (size_t i = 0; i < fleet.shard_count(); ++i) {
    dbs.push_back(fleet.shard_db(i));
  }
  try {
    const rlfault::VerifyResult v =
        co_await st.checker.VerifyAfterRecovery(fleet.directory(), dbs);
    st.out.keys_checked += v.keys_checked;
    st.out.lost_writes += v.lost_writes;
    st.out.atomicity_violations += v.atomicity_violations;
    st.out.promoted_pending += v.promoted_pending;
    st.out.violating_gids.insert(st.out.violating_gids.end(),
                                 v.violating_tokens.begin(),
                                 v.violating_tokens.end());
    if (!v.ok()) {
      st.out.violations.push_back("fleet oracle: " + v.Summary());
    }
  } catch (const rlsim::CheckFailure& e) {
    st.out.violations.push_back(std::string("fleet verify died: ") + e.what());
  }
  for (size_t i = 0; i < fleet.shard_count(); ++i) {
    try {
      co_await fleet.shard_db(i)->CheckTreeStructure();
    } catch (const rlsim::CheckFailure& e) {
      st.out.violations.push_back("shard " + std::to_string(i) +
                                  " tree invariant: " + e.what());
    }
  }
  co_await fleet.Shutdown();
}

}  // namespace

EpisodeOutcome RunFleetEpisode(const EpisodeConfig& cfg,
                               const RunOptions& run) {
  EpisodeOutcome out;
  Simulator sim(cfg.seed);
  rlobs::FlightRecorder flight(512);
  rlobs::TeeSink tee(&flight, run.sink);
  sim.set_tracer(&tee);

  rlharness::FleetOptions fopt;
  fopt.shards = cfg.fleet_shards;
  fopt.shard.mode = cfg.mode;
  fopt.shard.disks = cfg.disks;
  fopt.shard.db.pool_pages = 512;
  fopt.shard.db.journal_pages = 300;
  fopt.shard.db.profile.checkpoint_dirty_pages = 128;
  // Shard recovery after chaos kills uses partitioned redo, same as the
  // classic episodes (equivalence is asserted there on the cloned images).
  fopt.shard.db.recovery.partitions = 8;
  fopt.shard.rapilog.enable_power_guard = cfg.power_guard;
  FleetTestbed fleet(sim, fopt);

  rlwork::FleetConfig wcfg;
  wcfg.cross_shard_probability = cfg.cross_ratio;
  wcfg.ops_per_txn = 3;
  rlwork::FleetWorkload work(sim, wcfg);

  FleetEpisodeState st(sim, fleet, work, cfg, run, out);
  sim.Spawn(FleetEpisodeMain(st), "chaos-fleet-episode");
  sim.Run();

  out.committed = static_cast<uint64_t>(work.stats().committed.value());
  out.fleet_cross_committed =
      static_cast<uint64_t>(work.stats().cross_committed.value());
  out.fleet_unknown_outcomes =
      static_cast<uint64_t>(work.stats().unknown.value());
  out.end_time_ns = (sim.now() - TimePoint::Origin()).nanos();
  sim.set_tracer(nullptr);
  if (!out.violations.empty()) {
    out.flight_dump = flight.Dump();
    // Causal post-mortem: for each transaction the oracle convicted, dump
    // the span trees that carried its global id — the 2PC conversation the
    // ring still remembers for the transaction that broke the guarantee.
    for (const uint64_t gid : out.violating_gids) {
      out.causal_chain += flight.DumpCausalChain(static_cast<int64_t>(gid));
    }
  }
  return out;
}

}  // namespace rlchaos

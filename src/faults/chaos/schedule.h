// Chaos schedules: a fully deterministic description of one fault-injection
// episode — topology (deployment mode, disk setup, replication), workload
// length, and a timed list of fault events. A schedule is the unit the
// explorer generates from a seed, the shrinker minimises, and the replay
// file format round-trips, so a failing run is reproducible bit-for-bit from
// a short text file.
//
// Event times are microseconds relative to workload start (after the initial
// load completes). The runner applies each event when the virtual clock
// reaches it, with state guards (e.g. a power cut is a no-op while mains are
// already out) so that shrinking — which only removes events — can never
// produce an inapplicable schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/testbed.h"
#include "src/replica/log_shipper.h"

namespace rlchaos {

enum class FaultKind {
  kPowerCut,          // pull the plug on the primary
  kPowerRestore,      // mains return; the runner drives recovery
  kGuestCrash,        // kill the guest OS/DBMS only
  kGuestRecover,      // reboot the guest and reopen the database
  kLogDiskFault,      // arg = number of log-disk writes to fail (torn)
  kDataDiskFault,     // arg = number of data-disk writes to fail (torn)
  kPartitionReplica,  // arg = replica index; link goes down
  kHealReplica,       // arg = replica index; link comes back
  kKillReplica,       // arg = replica index; disk powers off, link down
  kReviveReplica,     // arg = replica index; disk powers on, link up
  kLinkDegrade,       // arg = replica index; link becomes lossy
  kLinkRestore,       // arg = replica index; link loss removed
  // Fleet episodes only (EpisodeConfig::fleet_shards > 0); no-ops in the
  // classic single-testbed runner so shrinking stays closed over the kinds.
  kKillShard,           // arg = shard index; power cut on that shard
  kRecoverShard,        // arg = shard index; power + crash recovery
  kPartitionShard,      // arg = shard index; coord<->shard link down
  kHealShard,           // arg = shard index; link back up
  kKillCoordinator,     // decision-log disk power + volatile state
  kRecoverCoordinator,  // disk power back, decision log rescanned
};

std::string ToString(FaultKind k);
// Returns false if `s` names no kind.
bool FaultKindFromString(const std::string& s, FaultKind* out);

struct FaultEvent {
  int64_t at_us = 0;
  FaultKind kind = FaultKind::kPowerCut;
  uint32_t arg = 0;

  bool operator==(const FaultEvent&) const = default;
};

struct EpisodeConfig {
  uint64_t seed = 1;
  rlharness::DeploymentMode mode = rlharness::DeploymentMode::kRapiLog;
  rlharness::DiskSetup disks = rlharness::DiskSetup::kSharedHdd;
  size_t replicas = 0;  // 0 = unreplicated
  rlrep::ShipMode ship_mode = rlrep::ShipMode::kAsync;
  // Final recovery restores the log from the best replica instead of the
  // primary's disk. Only sound for quorum episodes whose primary dies in its
  // first power epoch (see GenerateEpisode).
  bool restore_from_replica = false;
  // RapiLog's power guard (the ablation plants a violation by disabling it).
  bool power_guard = true;
  int64_t run_us = 300'000;  // workload window; events land inside it
  // Fleet topology (E13): > 0 runs the episode on a FleetTestbed of this
  // many shards behind a 2PC coordinator instead of a single Testbed, with
  // the fleet atomicity oracle. Serialised as the v2 schedule format; plain
  // (fleet_shards == 0) schedules stay byte-identical v1.
  size_t fleet_shards = 0;
  // Cross-shard transaction probability for fleet episodes.
  double cross_ratio = 0.3;
  std::vector<FaultEvent> events;

  bool operator==(const EpisodeConfig&) const = default;
};

// Canonical order: by time, ties broken by kind then arg, so serialisation
// and shrinking are deterministic.
void SortEvents(std::vector<FaultEvent>* events);

// Text round-trip (the `--replay` file format, versioned).
std::string Serialize(const EpisodeConfig& cfg);
// Returns false and sets *error on malformed input.
bool Parse(const std::string& text, EpisodeConfig* out, std::string* error);

struct GeneratorOptions {
  bool allow_replication = true;
  bool power_guard = true;
  // Pin the deployment to RapiLog instead of sampling a mode.
  bool force_rapilog = false;
  int min_faults = 1;   // fault motifs per episode (a motif is 1-4 events)
  int max_faults = 5;
  int64_t run_us_min = 250'000;
  int64_t run_us_max = 450'000;
  // > 0 generates fleet episodes (see EpisodeConfig::fleet_shards): RapiLog
  // mode, no per-shard replication, fleet fault motifs (shard power cycles,
  // shard partitions, coordinator kills) aimed at 2PC message boundaries.
  size_t fleet_shards = 0;
  // Cross-shard probability for generated fleet episodes; negative samples
  // one of {0.1, 0.3, 0.6} per seed.
  double cross_ratio = -1.0;
};

// Deterministically derives a schedule from the seed: same seed (and
// options), same schedule — the episode seed also seeds the simulator, so
// the whole run is a pure function of it.
EpisodeConfig GenerateEpisode(uint64_t seed, const GeneratorOptions& opts);

}  // namespace rlchaos

// Fleet-level atomicity and durability oracle for the sharded topology.
//
// The model is the same as DurabilityChecker's — acknowledged transactions
// must be fully present after recovery, unresolved ones all-or-nothing —
// but a transaction's writes may span shards, so "all-or-nothing" becomes
// the 2PC atomicity guarantee itself: after any schedule of crashes and
// partitions, no transaction may be committed on a strict subset of its
// shards. Reads route each key to its owning shard's recovered engine
// through the ShardDirectory.
//
// Outcome mapping for callers driving TxnCoordinator::Execute:
//   kCommitted -> OnCommitAcked   (promise made; must survive)
//   kAborted   -> OnAborted       (model unchanged; the engine's no-steal
//                                  design means aborts leave no trace)
//   kUnknown   -> leave pending   (resolved by VerifyAfterRecovery, which
//                                  promotes fully-applied ones and flags
//                                  definite partial applications)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/db/database.h"
#include "src/faults/durability_checker.h"
#include "src/shard/shard_directory.h"
#include "src/sim/task.h"

namespace rlfault {

class FleetChecker {
 public:
  // Call before handing the transaction to the coordinator.
  void OnTxnAttempt(uint64_t token, std::vector<TrackedWrite> writes);

  // The coordinator acked the commit: the writes are now promised.
  void OnCommitAcked(uint64_t token);

  // The coordinator reported a definite abort.
  void OnAborted(uint64_t token);

  // After the fleet is healed and every shard recovered: verifies the model
  // against the recovered shards. Pending (kUnknown-outcome) transactions
  // are resolved in ascending token order — fully applied across all their
  // shards promotes them into the model; a definite partial application
  // counts as an atomicity violation. `dbs[i]` must be shard i's live
  // engine for every shard in the directory.
  rlsim::Task<VerifyResult> VerifyAfterRecovery(
      const rlshard::ShardDirectory& directory,
      const std::vector<rldb::Database*>& dbs);

  size_t pending_count() const { return pending_.size(); }
  size_t model_size() const { return committed_.size(); }

 private:
  std::map<uint64_t, std::optional<std::vector<uint8_t>>> committed_;
  std::unordered_map<uint64_t, std::vector<TrackedWrite>> pending_;
};

}  // namespace rlfault

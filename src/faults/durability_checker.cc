#include "src/faults/durability_checker.h"

#include <array>
#include <cstdio>
#include <map>
#include <utility>

#include "src/sim/check.h"
#include "src/sim/crc32.h"
#include "src/sim/ordered.h"
#include "src/storage/disk_image.h"

namespace rlfault {

using rlsim::Task;

std::string VerifyResult::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "checked=%llu lost=%llu atomicity_violations=%llu "
                "promoted_inflight=%llu -> %s",
                static_cast<unsigned long long>(keys_checked),
                static_cast<unsigned long long>(lost_writes),
                static_cast<unsigned long long>(atomicity_violations),
                static_cast<unsigned long long>(promoted_pending),
                ok() ? "OK" : "DURABILITY VIOLATED");
  return buf;
}

void DurabilityChecker::OnCommitAttempt(uint64_t token,
                                        std::vector<TrackedWrite> writes) {
  RL_CHECK(!pending_.contains(token));
  pending_.emplace(token, std::move(writes));
}

void DurabilityChecker::OnCommitAcked(uint64_t token) {
  const auto it = pending_.find(token);
  RL_CHECK_MSG(it != pending_.end(), "ack for unknown commit token");
  for (const TrackedWrite& w : it->second) {
    if (w.is_delete) {
      committed_[w.key] = std::nullopt;
    } else {
      committed_[w.key] = w.value;
    }
  }
  pending_.erase(it);
}

void DurabilityChecker::OnAborted(uint64_t token) { pending_.erase(token); }

Task<VerifyResult> DurabilityChecker::VerifyAfterRecovery(
    rldb::Database& db) {
  VerifyResult result;

  // Resolve in-flight commits first: each one either fully landed (its
  // commit record was durable even though the ack never reached the client)
  // or must be entirely absent. Resolve in ascending token order: the hash
  // map's iteration order must not decide which promoted commit wins a key
  // both touched, nor the order of the verification reads below.
  for (const uint64_t token : rlsim::SortedKeys(pending_)) {
    const std::vector<TrackedWrite>& writes = pending_.at(token);
    size_t applied = 0;
    for (const TrackedWrite& w : writes) {
      std::vector<uint8_t> got;
      const bool found = co_await db.ReadCommitted(w.key, &got);
      const bool matches =
          w.is_delete ? !found : (found && got == w.value);
      if (matches) {
        ++applied;
      }
    }
    if (applied == writes.size()) {
      ++result.promoted_pending;
      for (const TrackedWrite& w : writes) {
        if (w.is_delete) {
          committed_[w.key] = std::nullopt;
        } else {
          committed_[w.key] = w.value;
        }
      }
    } else if (applied != 0) {
      // Partial application would be an atomicity violation — unless the
      // "applied" subset coincides with the prior committed values, which we
      // cannot distinguish per-key; count only definite violations where a
      // non-prior value appeared.
      size_t definite = 0;
      for (const TrackedWrite& w : writes) {
        std::vector<uint8_t> got;
        const bool found = co_await db.ReadCommitted(w.key, &got);
        const auto prior = committed_.find(w.key);
        const bool matches_prior =
            prior == committed_.end()
                ? !found
                : (prior->second.has_value()
                       ? (found && got == *prior->second)
                       : !found);
        const bool matches_new =
            w.is_delete ? !found : (found && got == w.value);
        if (matches_new && !matches_prior) {
          ++definite;
        }
      }
      if (definite != 0) {
        ++result.atomicity_violations;
      }
    }
  }
  pending_.clear();

  // Every acknowledged write must be present.
  for (const auto& [key, expected] : committed_) {
    ++result.keys_checked;
    std::vector<uint8_t> got;
    const bool found = co_await db.ReadCommitted(key, &got);
    const bool matches = expected.has_value() ? (found && got == *expected)
                                              : !found;
    if (!matches) {
      ++result.lost_writes;
    }
  }
  co_return result;
}

std::string ReplicaAudit::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "sectors expected=%llu ok=%llu missing=%llu mismatched=%llu "
                "-> %s",
                static_cast<unsigned long long>(sectors_expected),
                static_cast<unsigned long long>(sectors_ok),
                static_cast<unsigned long long>(sectors_missing),
                static_cast<unsigned long long>(sectors_mismatched),
                ok() ? "OK" : "REPLICA DURABILITY VIOLATED");
  return buf;
}

namespace {

// True if `seq` fell in a RESET gap: shipped, later crossed by the quorum
// cursor via an epoch fast-forward, but never genuinely quorum-acked.
bool InResetGap(const std::vector<std::pair<uint64_t, uint64_t>>& gaps,
                uint64_t seq) {
  for (const auto& [lo, hi] : gaps) {
    if (seq >= lo && seq < hi) {
      return true;
    }
  }
  return false;
}

}  // namespace

ReplicaAudit AuditReplicaDurability(const rlrep::LogShipper& shipper,
                                    const rlrep::ReplicaNode& replica) {
  // Replay the shipped history in sequence order to build each sector's
  // version list (WAL tail rewrites ship the same LBA at several sequence
  // numbers). A sector is audited if any version of it was quorum-acked.
  const uint64_t cursor = shipper.audit_quorum_cursor();
  // sector -> (seq, CRC-32C) in ascending seq order.
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>> versions;
  for (const rlrep::ShippedBlockMeta& block : shipper.shipped_blocks()) {
    for (size_t i = 0; i < block.sector_crcs.size(); ++i) {
      versions[block.lba + i].emplace_back(block.seq, block.sector_crcs[i]);
    }
  }

  ReplicaAudit audit;
  const rlstor::DiskImage& image = replica.disk().image();
  std::array<uint8_t, rlstor::kSectorSize> buf;
  for (const auto& [sector, history] : versions) {
    // Newest genuinely quorum-acked version of this sector, if any (versions
    // in a RESET gap are below the cursor without having been acked).
    size_t acked = history.size();
    for (size_t i = 0; i < history.size(); ++i) {
      if (history[i].first < cursor &&
          !InResetGap(shipper.reset_gaps(), history[i].first)) {
        acked = i;
      }
    }
    if (acked == history.size()) {
      continue;  // nothing acked for this sector; nothing is owed
    }
    ++audit.sectors_expected;
    if (image.state(sector) != rlstor::SectorState::kDurable) {
      ++audit.sectors_missing;
      continue;
    }
    // The replica must hold the newest acked version — or a NEWER shipped
    // one: frames in flight at the power cut may land afterwards, and a
    // later version of a WAL block only appends records to it, so it still
    // contains everything that was acked.
    image.ReadDurable(sector, buf);
    const uint32_t got = rlsim::Crc32c(buf);
    bool matched = false;
    for (size_t i = acked; i < history.size(); ++i) {
      if (history[i].second == got) {
        matched = true;
        break;
      }
    }
    if (matched) {
      ++audit.sectors_ok;
    } else {
      ++audit.sectors_mismatched;
    }
  }
  return audit;
}

std::string QuorumAudit::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "sectors expected=%llu ok=%llu underreplicated=%llu -> %s",
                static_cast<unsigned long long>(sectors_expected),
                static_cast<unsigned long long>(sectors_ok),
                static_cast<unsigned long long>(sectors_underreplicated),
                ok() ? "OK" : "QUORUM DURABILITY VIOLATED");
  return buf;
}

QuorumAudit AuditQuorumDurability(
    const rlrep::LogShipper& shipper,
    const std::vector<const rlrep::ReplicaNode*>& replicas) {
  const uint64_t cursor = shipper.audit_quorum_cursor();
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>> versions;
  for (const rlrep::ShippedBlockMeta& block : shipper.shipped_blocks()) {
    for (size_t i = 0; i < block.sector_crcs.size(); ++i) {
      versions[block.lba + i].emplace_back(block.seq, block.sector_crcs[i]);
    }
  }

  QuorumAudit audit;
  const size_t quorum = shipper.quorum_size();
  std::array<uint8_t, rlstor::kSectorSize> buf;
  for (const auto& [sector, history] : versions) {
    size_t acked = history.size();
    for (size_t i = 0; i < history.size(); ++i) {
      if (history[i].first < cursor &&
          !InResetGap(shipper.reset_gaps(), history[i].first)) {
        acked = i;
      }
    }
    if (acked == history.size()) {
      continue;
    }
    ++audit.sectors_expected;
    size_t holders = 0;
    for (const rlrep::ReplicaNode* replica : replicas) {
      const rlstor::DiskImage& image = replica->disk().image();
      if (image.state(sector) != rlstor::SectorState::kDurable) {
        continue;
      }
      image.ReadDurable(sector, buf);
      const uint32_t got = rlsim::Crc32c(buf);
      for (size_t i = acked; i < history.size(); ++i) {
        if (history[i].second == got) {
          ++holders;
          break;
        }
      }
    }
    if (holders >= quorum) {
      ++audit.sectors_ok;
    } else {
      ++audit.sectors_underreplicated;
    }
  }
  return audit;
}

}  // namespace rlfault

#include "src/faults/durability_checker.h"

#include <cstdio>

#include "src/sim/check.h"

namespace rlfault {

using rlsim::Task;

std::string VerifyResult::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "checked=%llu lost=%llu atomicity_violations=%llu "
                "promoted_inflight=%llu -> %s",
                static_cast<unsigned long long>(keys_checked),
                static_cast<unsigned long long>(lost_writes),
                static_cast<unsigned long long>(atomicity_violations),
                static_cast<unsigned long long>(promoted_pending),
                ok() ? "OK" : "DURABILITY VIOLATED");
  return buf;
}

void DurabilityChecker::OnCommitAttempt(uint64_t token,
                                        std::vector<TrackedWrite> writes) {
  RL_CHECK(!pending_.contains(token));
  pending_.emplace(token, std::move(writes));
}

void DurabilityChecker::OnCommitAcked(uint64_t token) {
  const auto it = pending_.find(token);
  RL_CHECK_MSG(it != pending_.end(), "ack for unknown commit token");
  for (const TrackedWrite& w : it->second) {
    if (w.is_delete) {
      committed_[w.key] = std::nullopt;
    } else {
      committed_[w.key] = w.value;
    }
  }
  pending_.erase(it);
}

void DurabilityChecker::OnAborted(uint64_t token) { pending_.erase(token); }

Task<VerifyResult> DurabilityChecker::VerifyAfterRecovery(
    rldb::Database& db) {
  VerifyResult result;

  // Resolve in-flight commits first: each one either fully landed (its
  // commit record was durable even though the ack never reached the client)
  // or must be entirely absent.
  for (const auto& [token, writes] : pending_) {
    size_t applied = 0;
    for (const TrackedWrite& w : writes) {
      std::vector<uint8_t> got;
      const bool found = co_await db.ReadCommitted(w.key, &got);
      const bool matches =
          w.is_delete ? !found : (found && got == w.value);
      if (matches) {
        ++applied;
      }
    }
    if (applied == writes.size()) {
      ++result.promoted_pending;
      for (const TrackedWrite& w : writes) {
        if (w.is_delete) {
          committed_[w.key] = std::nullopt;
        } else {
          committed_[w.key] = w.value;
        }
      }
    } else if (applied != 0) {
      // Partial application would be an atomicity violation — unless the
      // "applied" subset coincides with the prior committed values, which we
      // cannot distinguish per-key; count only definite violations where a
      // non-prior value appeared.
      size_t definite = 0;
      for (const TrackedWrite& w : writes) {
        std::vector<uint8_t> got;
        const bool found = co_await db.ReadCommitted(w.key, &got);
        const auto prior = committed_.find(w.key);
        const bool matches_prior =
            prior == committed_.end()
                ? !found
                : (prior->second.has_value()
                       ? (found && got == *prior->second)
                       : !found);
        const bool matches_new =
            w.is_delete ? !found : (found && got == w.value);
        if (matches_new && !matches_prior) {
          ++definite;
        }
      }
      if (definite != 0) {
        ++result.atomicity_violations;
      }
    }
  }
  pending_.clear();

  // Every acknowledged write must be present.
  for (const auto& [key, expected] : committed_) {
    ++result.keys_checked;
    std::vector<uint8_t> got;
    const bool found = co_await db.ReadCommitted(key, &got);
    const bool matches = expected.has_value() ? (found && got == *expected)
                                              : !found;
    if (!matches) {
      ++result.lost_writes;
    }
  }
  co_return result;
}

}  // namespace rlfault

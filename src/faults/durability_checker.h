// Tracks what the database promised (acknowledged commits) and verifies the
// promise after a crash: every acknowledged write is present after recovery
// (unless overwritten by a later acknowledged commit), commits in flight at
// the crash are all-or-nothing, and nothing uncommitted appears.
//
// This is the paper's plug-pull experiment turned into a machine-checkable
// oracle that can run hundreds of randomised trials.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/database.h"
#include "src/sim/task.h"

namespace rlfault {

struct TrackedWrite {
  uint64_t key = 0;
  bool is_delete = false;
  std::vector<uint8_t> value;
};

struct VerifyResult {
  uint64_t keys_checked = 0;
  uint64_t lost_writes = 0;        // acked write missing or wrong after crash
  uint64_t atomicity_violations = 0;  // in-flight commit applied partially
  uint64_t promoted_pending = 0;   // in-flight commits that did land

  bool ok() const { return lost_writes == 0 && atomicity_violations == 0; }
  std::string Summary() const;
};

class DurabilityChecker {
 public:
  // Call immediately before Database::Commit with the transaction's writes.
  void OnCommitAttempt(uint64_t token, std::vector<TrackedWrite> writes);

  // Call when Commit returned kOk: the writes are now promised durable.
  void OnCommitAcked(uint64_t token);

  // Call when the transaction aborted (or its machine died before Commit
  // was even attempted is equivalent to never calling OnCommitAttempt).
  void OnAborted(uint64_t token);

  // After recovery: verifies the model against the database, resolves the
  // in-flight set (promoting commits that made it to disk), and leaves the
  // model consistent with the recovered state for the next campaign round.
  rlsim::Task<VerifyResult> VerifyAfterRecovery(rldb::Database& db);

  size_t pending_count() const { return pending_.size(); }
  size_t model_size() const { return committed_.size(); }

 private:
  // key -> latest acknowledged value (nullopt = acknowledged delete).
  std::map<uint64_t, std::optional<std::vector<uint8_t>>> committed_;
  std::unordered_map<uint64_t, std::vector<TrackedWrite>> pending_;
};

}  // namespace rlfault

// Tracks what the database promised (acknowledged commits) and verifies the
// promise after a crash: every acknowledged write is present after recovery
// (unless overwritten by a later acknowledged commit), commits in flight at
// the crash are all-or-nothing, and nothing uncommitted appears.
//
// This is the paper's plug-pull experiment turned into a machine-checkable
// oracle that can run hundreds of randomised trials.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/database.h"
#include "src/replica/log_shipper.h"
#include "src/replica/replica_node.h"
#include "src/sim/task.h"

namespace rlfault {

struct TrackedWrite {
  uint64_t key = 0;
  bool is_delete = false;
  std::vector<uint8_t> value;
};

struct VerifyResult {
  uint64_t keys_checked = 0;
  uint64_t lost_writes = 0;        // acked write missing or wrong after crash
  uint64_t atomicity_violations = 0;  // in-flight commit applied partially
  uint64_t promoted_pending = 0;   // in-flight commits that did land
  // Transaction tokens (workload global ids) behind the atomicity
  // violations, in ascending order — the hook the chaos flight recorder
  // uses to dump each failing transaction's causal span chain.
  std::vector<uint64_t> violating_tokens;

  bool ok() const { return lost_writes == 0 && atomicity_violations == 0; }
  std::string Summary() const;
};

class DurabilityChecker {
 public:
  // Call immediately before Database::Commit with the transaction's writes.
  void OnCommitAttempt(uint64_t token, std::vector<TrackedWrite> writes);

  // Call when Commit returned kOk: the writes are now promised durable.
  void OnCommitAcked(uint64_t token);

  // Call when the transaction aborted (or its machine died before Commit
  // was even attempted is equivalent to never calling OnCommitAttempt).
  void OnAborted(uint64_t token);

  // After recovery: verifies the model against the database, resolves the
  // in-flight set (promoting commits that made it to disk), and leaves the
  // model consistent with the recovered state for the next campaign round.
  rlsim::Task<VerifyResult> VerifyAfterRecovery(rldb::Database& db);

  size_t pending_count() const { return pending_.size(); }
  size_t model_size() const { return committed_.size(); }

 private:
  // key -> latest acknowledged value (nullopt = acknowledged delete).
  std::map<uint64_t, std::optional<std::vector<uint8_t>>> committed_;
  std::unordered_map<uint64_t, std::vector<TrackedWrite>> pending_;
};

// --- Replicated-durability oracle (src/replica) ------------------------------

// Block-level verdict on one replica: does its disk image durably hold,
// bit-for-bit, every log block the primary quorum-acknowledged before it
// died? (The shipper's append-only audit log supplies per-sector CRCs of
// everything shipped; the quorum cursor is frozen at the instant of the
// primary's power loss.)
struct ReplicaAudit {
  uint64_t sectors_expected = 0;
  uint64_t sectors_ok = 0;
  uint64_t sectors_missing = 0;     // not durable on the replica's medium
  uint64_t sectors_mismatched = 0;  // durable but wrong contents

  bool ok() const { return sectors_missing == 0 && sectors_mismatched == 0; }
  std::string Summary() const;
};

// Verifies `replica` against the quorum-acknowledged shipped prefix. A
// majority of replicas must individually pass for the quorum-ack guarantee
// to hold; any single passing replica suffices to restore the log.
//
// Newest-version semantics: when the same sector was shipped more than once
// (WAL tail rewrites), the replica must hold the newest quorum-acked version
// — or a newer shipped one, since frames in flight at the cut may still land
// and a later version of a WAL block only appends to the acked records.
ReplicaAudit AuditReplicaDurability(const rlrep::LogShipper& shipper,
                                    const rlrep::ReplicaNode& replica);

// Per-sector quorum verdict across the whole replica set: every sector the
// primary quorum-acknowledged must be durably held (newest-acked-or-newer,
// as above) by at least `shipper.quorum_size()` replicas. This is the right
// oracle under fault schedules that kill or partition individual replicas:
// no single replica need hold everything — different sectors may be covered
// by different replica subsets — but each sector's quorum must survive.
struct QuorumAudit {
  uint64_t sectors_expected = 0;
  uint64_t sectors_ok = 0;
  uint64_t sectors_underreplicated = 0;  // held by fewer than quorum replicas

  bool ok() const { return sectors_underreplicated == 0; }
  std::string Summary() const;
};

QuorumAudit AuditQuorumDurability(
    const rlrep::LogShipper& shipper,
    const std::vector<const rlrep::ReplicaNode*>& replicas);

}  // namespace rlfault

#include "src/faults/recovery_oracle.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "src/db/cpu_context.h"
#include "src/sim/check.h"
#include "src/storage/block_device.h"
#include "src/storage/disk_model.h"

namespace rlfault {
namespace {

using rlsim::Task;

// A fresh powered device whose durable medium holds a window of the source
// image's durable sectors: [first_lba, first_lba + sector_count) shifted
// down to LBA 0. Volatile-cache contents are deliberately dropped — the
// clone is exactly what the crash left on stable storage (torn sectors read
// back their corruption pattern and land in the clone as such).
std::unique_ptr<rlstor::SimBlockDevice> CloneDurableWindow(
    rlsim::Simulator& sim, const rlstor::DiskImage& src, uint64_t first_lba,
    uint64_t sector_count, const char* name) {
  rlstor::SimBlockDevice::Options opts;
  opts.geometry.sector_count = sector_count;
  opts.name = name;
  auto dev = std::make_unique<rlstor::SimBlockDevice>(
      sim, opts, rlstor::MakeDefaultSsd());
  std::vector<uint8_t> buf(rlstor::kSectorSize);
  for (const uint64_t sector : src.DurableSectorList()) {
    if (sector < first_lba || sector >= first_lba + sector_count) {
      continue;
    }
    src.ReadDurable(sector, buf);
    dev->image().WriteDurable(sector - first_lba, buf);
  }
  return dev;
}

Task<RecoveryProbe> RunProbe(rlsim::Simulator& sim,
                             const rlstor::DiskImage& data_image,
                             const rlstor::DiskImage& log_image,
                             const RecoveryOracleOptions& options,
                             uint32_t partitions, const char* tag) {
  auto data_dev = CloneDurableWindow(
      sim, data_image, options.data_first_lba,
      data_image.sector_count() - options.data_first_lba, tag);
  auto log_dev =
      CloneDurableWindow(sim, log_image, 0, options.log_sector_count, tag);

  rldb::NativeCpu cpu(sim);
  rldb::DbOptions dbo = options.db;
  dbo.recovery.partitions = partitions;
  dbo.recovery.jobs = 0;  // one worker per stream

  const rlsim::TimePoint open_start = sim.now();
  auto db =
      co_await rldb::Database::Open(sim, cpu, *data_dev, *log_dev, dbo);

  RecoveryProbe probe;
  probe.recovery_time = sim.now() - open_start;
  probe.content_hash = co_await db->ContentHash();
  probe.committed_count = co_await db->CommittedCount();
  probe.in_doubt_global_ids = db->InDoubtGlobalIds();
  probe.recovered_records = db->stats().recovered_records.value();
  probe.redo_skipped_by_horizon = db->stats().redo_skipped_by_horizon.value();
  RL_CHECK_MSG(db->stats().journal_header_reads.value() == 1,
               "recovery must read the journal header exactly once, read "
                   << db->stats().journal_header_reads.value() << " times");
  co_await db->CheckTreeStructure();
  co_await db->Close();
  co_return probe;
}

}  // namespace

std::string RecoveryEquivalence::Summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "seq{hash=%016llx n=%llu replayed=%lld skipped=%lld t=%lldus} "
      "part{hash=%016llx n=%llu replayed=%lld skipped=%lld t=%lldus}",
      static_cast<unsigned long long>(sequential.content_hash),
      static_cast<unsigned long long>(sequential.committed_count),
      static_cast<long long>(sequential.recovered_records),
      static_cast<long long>(sequential.redo_skipped_by_horizon),
      static_cast<long long>(sequential.recovery_time.micros()),
      static_cast<unsigned long long>(partitioned.content_hash),
      static_cast<unsigned long long>(partitioned.committed_count),
      static_cast<long long>(partitioned.recovered_records),
      static_cast<long long>(partitioned.redo_skipped_by_horizon),
      static_cast<long long>(partitioned.recovery_time.micros()));
  return buf;
}

Task<RecoveryEquivalence> CheckRecoveryEquivalence(
    rlsim::Simulator& sim, const rlstor::DiskImage& data_image,
    const rlstor::DiskImage& log_image, RecoveryOracleOptions options) {
  RL_CHECK(options.log_sector_count > 0);
  RL_CHECK(options.data_first_lba < data_image.sector_count());
  RecoveryEquivalence eq;
  eq.sequential = co_await RunProbe(sim, data_image, log_image, options,
                                    /*partitions=*/1, "oracle-seq");
  eq.partitioned = co_await RunProbe(sim, data_image, log_image, options,
                                     options.partitions, "oracle-part");
  co_return eq;
}

}  // namespace rlfault

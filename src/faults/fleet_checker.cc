#include "src/faults/fleet_checker.h"

#include <utility>

#include "src/sim/check.h"
#include "src/sim/ordered.h"

namespace rlfault {

using rlsim::Task;

namespace {

// Routes a committed-state read to the key's owning shard.
Task<bool> ReadKey(const rlshard::ShardDirectory& directory,
                   const std::vector<rldb::Database*>& dbs, uint64_t key,
                   std::vector<uint8_t>* out) {
  rldb::Database* db = dbs.at(directory.ShardOf(key));
  RL_CHECK_MSG(db != nullptr, "fleet verify needs every shard recovered");
  co_return co_await db->ReadCommitted(key, out);
}

}  // namespace

void FleetChecker::OnTxnAttempt(uint64_t token,
                                std::vector<TrackedWrite> writes) {
  RL_CHECK(!pending_.contains(token));
  pending_.emplace(token, std::move(writes));
}

void FleetChecker::OnCommitAcked(uint64_t token) {
  const auto it = pending_.find(token);
  RL_CHECK_MSG(it != pending_.end(), "ack for unknown txn token");
  for (const TrackedWrite& w : it->second) {
    if (w.is_delete) {
      committed_[w.key] = std::nullopt;
    } else {
      committed_[w.key] = w.value;
    }
  }
  pending_.erase(it);
}

void FleetChecker::OnAborted(uint64_t token) { pending_.erase(token); }

Task<VerifyResult> FleetChecker::VerifyAfterRecovery(
    const rlshard::ShardDirectory& directory,
    const std::vector<rldb::Database*>& dbs) {
  VerifyResult result;

  // Resolve unknown-outcome transactions in ascending token order (the hash
  // map's iteration order must not decide which promoted transaction wins a
  // key both touched). Each either committed everywhere — decision record
  // durable even though the ack never arrived — or must be absent
  // everywhere; the cross-shard partial case is exactly a 2PC atomicity
  // violation.
  for (const uint64_t token : rlsim::SortedKeys(pending_)) {
    const std::vector<TrackedWrite>& writes = pending_.at(token);
    size_t applied = 0;
    for (const TrackedWrite& w : writes) {
      std::vector<uint8_t> got;
      const bool found = co_await ReadKey(directory, dbs, w.key, &got);
      const bool matches = w.is_delete ? !found : (found && got == w.value);
      if (matches) {
        ++applied;
      }
    }
    if (applied == writes.size()) {
      ++result.promoted_pending;
      for (const TrackedWrite& w : writes) {
        if (w.is_delete) {
          committed_[w.key] = std::nullopt;
        } else {
          committed_[w.key] = w.value;
        }
      }
    } else if (applied != 0) {
      // As in DurabilityChecker: a write "matching" the new value may really
      // be the untouched prior value, so only count keys where a non-prior
      // value definitely appeared.
      size_t definite = 0;
      for (const TrackedWrite& w : writes) {
        std::vector<uint8_t> got;
        const bool found = co_await ReadKey(directory, dbs, w.key, &got);
        const auto prior = committed_.find(w.key);
        const bool matches_prior =
            prior == committed_.end()
                ? !found
                : (prior->second.has_value() ? (found && got == *prior->second)
                                             : !found);
        const bool matches_new =
            w.is_delete ? !found : (found && got == w.value);
        if (matches_new && !matches_prior) {
          ++definite;
        }
      }
      if (definite != 0) {
        ++result.atomicity_violations;
        result.violating_tokens.push_back(token);
      }
    }
  }
  pending_.clear();

  // Every acknowledged write must be present on its owning shard.
  for (const auto& [key, expected] : committed_) {
    ++result.keys_checked;
    std::vector<uint8_t> got;
    const bool found = co_await ReadKey(directory, dbs, key, &got);
    const bool matches =
        expected.has_value() ? (found && got == *expected) : !found;
    if (!matches) {
      ++result.lost_writes;
    }
  }
  co_return result;
}

}  // namespace rlfault

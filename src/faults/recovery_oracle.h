// Recovery-equivalence and recovery-time oracle: given the durable disk
// state a crash left behind, recover it twice — once with the classic
// sequential redo, once with partitioned parallel redo — on throwaway
// device clones, and demand that both produce the same committed contents,
// the same in-doubt 2PC set, the same replay-work counters, and finish
// inside a virtual-time budget.
//
// The clones make the probe side-effect free: the testbed's own devices
// (and whatever its own recovery is about to do to them) are untouched, so
// the oracle can run inside every chaos episode without perturbing it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/storage/disk_image.h"

namespace rlfault {

// What one recovery of the cloned crash state observed.
struct RecoveryProbe {
  uint64_t content_hash = 0;     // Database::ContentHash after recovery
  uint64_t committed_count = 0;
  std::vector<uint64_t> in_doubt_global_ids;
  int64_t recovered_records = 0;
  int64_t redo_skipped_by_horizon = 0;
  rlsim::Duration recovery_time;  // virtual time inside Database::Open
};

struct RecoveryEquivalence {
  RecoveryProbe sequential;   // RecoveryOptions{partitions = 1}
  RecoveryProbe partitioned;  // RecoveryOptions{partitions = K}

  // The contents and the replay-work accounting must agree; the two redo
  // modes may only differ in virtual recovery time.
  bool equivalent() const {
    return sequential.content_hash == partitioned.content_hash &&
           sequential.committed_count == partitioned.committed_count &&
           sequential.in_doubt_global_ids == partitioned.in_doubt_global_ids &&
           sequential.recovered_records == partitioned.recovered_records &&
           sequential.redo_skipped_by_horizon ==
               partitioned.redo_skipped_by_horizon;
  }
  bool within_budget(rlsim::Duration budget) const {
    return sequential.recovery_time <= budget &&
           partitioned.recovery_time <= budget;
  }
  std::string Summary() const;
};

struct RecoveryOracleOptions {
  // Engine options of the database that wrote the images (profile and pool
  // geometry must match; the recovery knobs inside are overridden per probe).
  rldb::DbOptions db;
  // Partition count for the partitioned probe.
  uint32_t partitions = 8;
  // Where the engine's data LBA 0 sits on the physical data image (the data
  // partition's first sector: non-zero on the shared-spindle setup).
  uint64_t data_first_lba = 0;
  // Log region length: the first `log_sector_count` sectors of the log
  // image. On the shared-spindle setup the log image IS the data image and
  // this prefix is the log partition.
  uint64_t log_sector_count = 0;
  // Virtual-time ceiling for either probe. Generous by design: the chaos
  // corpus has arbitrary WAL lengths, so this catches hangs and pathological
  // blow-ups, not modest slowdowns (the strict scaling assertions live in
  // recovery_time_bound_test with a controlled WAL).
  rlsim::Duration budget = rlsim::Duration::Seconds(30);
};

// Clones the durable sectors of the crashed images onto fresh SSD-backed
// devices and runs the two recovery probes back-to-back in `sim`. Throws
// whatever a genuinely unrecoverable image makes Database::Open throw.
rlsim::Task<RecoveryEquivalence> CheckRecoveryEquivalence(
    rlsim::Simulator& sim, const rlstor::DiskImage& data_image,
    const rlstor::DiskImage& log_image, RecoveryOracleOptions options);

}  // namespace rlfault

// Electrical power model.
//
// RapiLog's power-cut guarantee is an energy-budget argument: when mains
// fail, the PSU's bulk capacitors keep the rails up for a hold-up window
// (ATX mandates >= 16 ms at full load; lighter loads stretch it
// proportionally, and a UPS stretches it to minutes). A power-fail signal is
// raised almost immediately on AC loss, so software gets
//   window = hold-up - warning latency
// of guaranteed execution to flush volatile state. PowerSupply models
// exactly that: CutMains() raises OnPowerFailWarning(remaining) on every
// registered sink, then drops the rails (OnPowerDown()) when the window
// expires.
#pragma once

#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace rlpow {

// A component that cares about power events. Callbacks run at the instant of
// the event on the simulator's clock.
class PowerSink {
 public:
  virtual ~PowerSink() = default;

  // Mains lost; rails stay up for `time_remaining` more simulated time.
  virtual void OnPowerFailWarning(rlsim::Duration time_remaining) {
    (void)time_remaining;
  }

  // Rails dropped. Volatile state is gone after this returns.
  virtual void OnPowerDown() = 0;

  // Rails are back (recovery phase begins).
  virtual void OnPowerRestore() {}

  // Mains returned within the hold-up window: the outage was absorbed, the
  // rails never dropped, and any emergency posture should stand down.
  virtual void OnOutageAbsorbed() {}
};

struct PsuParams {
  // ATX spec: >= 16 ms hold-up at full rated load.
  rlsim::Duration holdup_at_full_load = rlsim::Duration::Millis(16);
  double full_load_watts = 400.0;
  // What the machine actually draws; the stored energy lasts longer at
  // lighter loads.
  double system_load_watts = 200.0;
  // AC-loss detection + interrupt delivery to software.
  rlsim::Duration warning_latency = rlsim::Duration::Micros(200);
  // Optional UPS carrying the load after the PSU caps would be exhausted.
  // Zero means no UPS.
  rlsim::Duration ups_runtime = rlsim::Duration::Zero();
};

class PowerSupply {
 public:
  PowerSupply(rlsim::Simulator& sim, PsuParams params);

  // Sinks must outlive the PowerSupply. Notification order = registration
  // order (register the trusted layer before the guest).
  void Register(PowerSink* sink);

  // Simulates pulling the plug. Idempotent while mains are out.
  void CutMains();

  // Mains return. If the rails had dropped they come back up and sinks see
  // OnPowerRestore(); if the cut is undone within the hold-up window the
  // outage is absorbed (no OnPowerDown ever fires).
  void RestoreMains();

  bool mains_on() const { return mains_on_; }
  bool rails_on() const { return rails_on_; }

  // Rail survival time after an AC cut: capacitor energy scaled by actual
  // load, plus UPS runtime.
  rlsim::Duration HoldupWindow() const;

  // What software can rely on after the warning interrupt arrives.
  rlsim::Duration GuaranteedWindowAfterWarning() const;

  const PsuParams& params() const { return params_; }

 private:
  void DeliverWarning(uint64_t outage_id);
  void DropRails(uint64_t outage_id);

  rlsim::Simulator& sim_;
  PsuParams params_;
  std::vector<PowerSink*> sinks_;
  bool mains_on_ = true;
  bool rails_on_ = true;
  // Distinguishes outages so stale scheduled callbacks from an absorbed cut
  // do nothing.
  uint64_t outage_id_ = 0;
};

}  // namespace rlpow

#include "src/power/power.h"

#include <algorithm>

#include "src/sim/check.h"

namespace rlpow {

using rlsim::Duration;

PowerSupply::PowerSupply(rlsim::Simulator& sim, PsuParams params)
    : sim_(sim), params_(params) {
  RL_CHECK(params_.full_load_watts > 0);
  RL_CHECK(params_.system_load_watts > 0);
  RL_CHECK(params_.system_load_watts <= params_.full_load_watts);
  RL_CHECK(params_.holdup_at_full_load > Duration::Zero());
  RL_CHECK(params_.warning_latency >= Duration::Zero());
  RL_CHECK_MSG(params_.warning_latency < HoldupWindow(),
               "warning would arrive after the rails drop");
}

void PowerSupply::Register(PowerSink* sink) {
  RL_CHECK(sink != nullptr);
  RL_CHECK(std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end());
  sinks_.push_back(sink);
}

Duration PowerSupply::HoldupWindow() const {
  // Stored energy E = P_full * T_holdup; at load P the rails last E / P.
  const double scale = params_.full_load_watts / params_.system_load_watts;
  return params_.holdup_at_full_load * scale + params_.ups_runtime;
}

Duration PowerSupply::GuaranteedWindowAfterWarning() const {
  return HoldupWindow() - params_.warning_latency;
}

void PowerSupply::CutMains() {
  if (!mains_on_) {
    return;
  }
  mains_on_ = false;
  const uint64_t id = ++outage_id_;
  sim_.EmitTrace("psu", "mains-cut", static_cast<uint32_t>(id));
  sim_.Schedule(params_.warning_latency, [this, id] { DeliverWarning(id); });
  sim_.Schedule(HoldupWindow(), [this, id] { DropRails(id); });
}

void PowerSupply::DeliverWarning(uint64_t outage_id) {
  if (mains_on_ || outage_id != outage_id_) {
    return;  // outage was absorbed before the warning fired
  }
  const Duration remaining = HoldupWindow() - params_.warning_latency;
  sim_.EmitTrace("psu", "power-fail-warning",
                 static_cast<uint32_t>(remaining.micros()));
  for (PowerSink* sink : sinks_) {
    sink->OnPowerFailWarning(remaining);
  }
}

void PowerSupply::DropRails(uint64_t outage_id) {
  if (mains_on_ || outage_id != outage_id_ || !rails_on_) {
    return;
  }
  rails_on_ = false;
  sim_.EmitTrace("psu", "rails-down", static_cast<uint32_t>(outage_id));
  for (PowerSink* sink : sinks_) {
    sink->OnPowerDown();
  }
}

void PowerSupply::RestoreMains() {
  if (mains_on_) {
    return;
  }
  mains_on_ = true;
  ++outage_id_;  // invalidate scheduled warning/drop from the cut
  if (!rails_on_) {
    rails_on_ = true;
    sim_.EmitTrace("psu", "mains-restore", static_cast<uint32_t>(outage_id_));
    for (PowerSink* sink : sinks_) {
      sink->OnPowerRestore();
    }
  } else {
    sim_.EmitTrace("psu", "outage-absorbed",
                   static_cast<uint32_t>(outage_id_));
    for (PowerSink* sink : sinks_) {
      sink->OnOutageAbsorbed();
    }
  }
}

}  // namespace rlpow

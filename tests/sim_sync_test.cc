#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace rlsim {
namespace {

TEST(SimEventTest, WaiterWakesOnSet) {
  Simulator sim;
  SimEvent event(sim);
  TimePoint woke;
  sim.Spawn([](Simulator& s, SimEvent& e, TimePoint& out) -> Task<void> {
    co_await e.Wait();
    out = s.now();
  }(sim, event, woke));
  sim.Schedule(Duration::Millis(7), [&] { event.Set(); });
  sim.Run();
  EXPECT_EQ(woke, TimePoint::Origin() + Duration::Millis(7));
}

TEST(SimEventTest, AlreadySetDoesNotBlock) {
  Simulator sim;
  SimEvent event(sim);
  event.Set();
  bool ran = false;
  sim.Spawn([](SimEvent& e, bool& r) -> Task<void> {
    co_await e.Wait();
    r = true;
  }(event, ran));
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimEventTest, BroadcastWakesAllWaiters) {
  Simulator sim;
  SimEvent event(sim);
  int woken = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Spawn([](SimEvent& e, int& w) -> Task<void> {
      co_await e.Wait();
      ++w;
    }(event, woken));
  }
  sim.Schedule(Duration::Millis(1), [&] { event.Set(); });
  sim.Run();
  EXPECT_EQ(woken, 10);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 8; ++i) {
    sim.Spawn([](Simulator& s, Semaphore& sm, int& cur, int& mx) -> Task<void> {
      co_await sm.Acquire();
      ++cur;
      mx = std::max(mx, cur);
      co_await s.Sleep(Duration::Millis(1));
      --cur;
      sm.Release();
    }(sim, sem, concurrent, max_concurrent));
  }
  sim.Run();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, TryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(SimMutexTest, MutualExclusionAndFifo) {
  Simulator sim;
  SimMutex mutex(sim);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn([](Simulator& s, SimMutex& m, std::vector<int>& o,
                 int id) -> Task<void> {
      auto guard = co_await m.Lock();
      o.push_back(id);
      co_await s.Sleep(Duration::Millis(1));
      o.push_back(id);
    }(sim, mutex, order, i));
  }
  sim.Run();
  ASSERT_EQ(order.size(), 10u);
  // Entries come in adjacent pairs: no interleaving inside the critical
  // section, and FIFO admission order.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(2 * i)], i);
    EXPECT_EQ(order[static_cast<size_t>(2 * i + 1)], i);
  }
  EXPECT_FALSE(mutex.locked());
}

TEST(SimMutexTest, GuardReleasesEarly) {
  Simulator sim;
  SimMutex mutex(sim);
  sim.Spawn([](SimMutex& m) -> Task<void> {
    auto guard = co_await m.Lock();
    guard.Release();
    // Re-acquirable immediately after release.
    auto guard2 = co_await m.Lock();
  }(mutex));
  sim.Run();
  EXPECT_FALSE(mutex.locked());
}

TEST(CompletionTest, WaiterGetsValue) {
  Simulator sim;
  Completion<int> done(sim);
  int got = 0;
  sim.Spawn([](Completion<int>& c, int& out) -> Task<void> {
    out = co_await c.Wait();
  }(done, got));
  sim.Schedule(Duration::Millis(3), [&] { done.Complete(77); });
  sim.Run();
  EXPECT_EQ(got, 77);
  EXPECT_TRUE(done.completed());
  EXPECT_EQ(done.value(), 77);
}

TEST(CompletionTest, LateWaiterSeesValueImmediately) {
  Simulator sim;
  Completion<std::string> done(sim);
  done.Complete("ready");
  std::string got;
  sim.Spawn([](Completion<std::string>& c, std::string& out) -> Task<void> {
    out = co_await c.Wait();
  }(done, got));
  sim.Run();
  EXPECT_EQ(got, "ready");
}

TEST(CompletionTest, DoubleCompleteFails) {
  Simulator sim;
  Completion<int> done(sim);
  done.Complete(1);
  EXPECT_THROW(done.Complete(2), CheckFailure);
}

TEST(ChannelTest, FifoDelivery) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  std::vector<int> received;
  sim.Spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    while (true) {
      auto v = co_await c.Receive();
      if (!v) {
        break;
      }
      out.push_back(*v);
    }
  }(ch, received));
  sim.Spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await c.Send(i);
      co_await s.Sleep(Duration::Micros(10));
    }
    c.Close();
  }(sim, ch));
  sim.Run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST(ChannelTest, BoundedCapacityBlocksSender) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  TimePoint third_send_done;
  sim.Spawn([](Simulator& s, Channel<int>& c, TimePoint& out) -> Task<void> {
    co_await c.Send(1);
    co_await c.Send(2);
    co_await c.Send(3);  // blocks until a receive frees a slot
    out = s.now();
  }(sim, ch, third_send_done));
  sim.Spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    co_await s.Sleep(Duration::Millis(5));
    co_await c.Receive();
  }(sim, ch));
  sim.Run();
  EXPECT_EQ(third_send_done, TimePoint::Origin() + Duration::Millis(5));
}

TEST(ChannelTest, TrySendRespectsCapacity) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  EXPECT_TRUE(ch.TrySend(1));
  EXPECT_FALSE(ch.TrySend(2));
}

TEST(ChannelTest, CloseDrainsThenSignals) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  EXPECT_TRUE(ch.TrySend(7));
  ch.Close();
  std::vector<std::optional<int>> got;
  sim.Spawn([](Channel<int>& c, std::vector<std::optional<int>>& out)
                -> Task<void> {
    out.push_back(co_await c.Receive());
    out.push_back(co_await c.Receive());
  }(ch, got));
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::optional<int>(7));
  EXPECT_EQ(got[1], std::nullopt);
}

TEST(TaskGroupTest, JoinWaitsForAll) {
  Simulator sim;
  TaskGroup group(sim);
  int completed = 0;
  TimePoint join_time;
  for (int i = 1; i <= 4; ++i) {
    group.Spawn([](Simulator& s, int ms, int& done) -> Task<void> {
      co_await s.Sleep(Duration::Millis(ms));
      ++done;
    }(sim, i, completed));
  }
  sim.Spawn([](Simulator& s, TaskGroup& g, TimePoint& out) -> Task<void> {
    co_await g.Join();
    out = s.now();
  }(sim, group, join_time));
  sim.Run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(join_time, TimePoint::Origin() + Duration::Millis(4));
}

TEST(TaskGroupTest, ChildExceptionRethrownAtJoin) {
  Simulator sim;
  TaskGroup group(sim);
  group.Spawn([](Simulator& s) -> Task<void> {
    co_await s.Sleep(Duration::Millis(1));
    throw std::runtime_error("child failed");
  }(sim));
  bool caught = false;
  sim.Spawn([](TaskGroup& g, bool& c) -> Task<void> {
    try {
      co_await g.Join();
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(group, caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

TEST(WaitQueueTest, NotifyOneWakesSingleWaiter) {
  Simulator sim;
  WaitQueue wq(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](WaitQueue& q, int& w) -> Task<void> {
      co_await q.Wait();
      ++w;
    }(wq, woken));
  }
  sim.Schedule(Duration::Millis(1), [&] { wq.NotifyOne(); });
  sim.Run();
  EXPECT_EQ(woken, 1);
  EXPECT_EQ(wq.waiter_count(), 2u);
  wq.NotifyAll();
  sim.Run();
  EXPECT_EQ(woken, 3);
}

}  // namespace
}  // namespace rlsim

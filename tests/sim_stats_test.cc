#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace rlsim {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5);
  c.Add(-2);
  EXPECT_EQ(c.value(), 3);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, Empty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  // 42 lies in a bucket of width 2 at this magnitude: [42,43].
  EXPECT_GE(h.Percentile(50), 42);
  EXPECT_LE(h.Percentile(50), 43);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  // Values below 16 are bucketed exactly.
  EXPECT_EQ(h.Percentile(100.0 / 16.0), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
}

TEST(HistogramTest, PercentileMonotonic) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    h.Record(rng.UniformInt(0, 1'000'000));
  }
  int64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  Histogram h;
  const int64_t value = 123'456'789;
  h.Record(value);
  const int64_t p = h.Percentile(50);
  // Log-linear bucketing guarantees <= 1/16 relative error.
  EXPECT_GE(p, value);
  EXPECT_LE(p, value + value / 8);
}

TEST(HistogramTest, UniformMedianApprox) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    h.Record(rng.UniformInt(0, 1000));
  }
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 40);
  EXPECT_NEAR(h.Mean(), 500, 10);
}

TEST(HistogramTest, NegativeValueRejected) {
  Histogram h;
  EXPECT_THROW(h.Record(-1), CheckFailure);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10);
    b.Record(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.Mean(), 505.0, 1.0);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 5);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, StdDevApprox) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 200'000; ++i) {
    h.Record(static_cast<int64_t>(std::max(0.0, rng.Normal(1000, 100))));
  }
  EXPECT_NEAR(h.StdDev(), 100.0, 5.0);
}

TEST(HistogramTest, DurationRecording) {
  Histogram h;
  h.RecordDuration(Duration::Millis(5));
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.PercentileDuration(50), Duration::Millis(5));
  EXPECT_LE(h.PercentileDuration(50), Duration::Millis(6));
}

TEST(HistogramTest, SummaryNonEmpty) {
  Histogram h;
  h.Record(100);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
  EXPECT_NE(h.DurationSummary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, RecordAfterResetReseedsExtremes) {
  // Regression guard for testbed reuse across bench phases: a Reset must
  // leave the histogram indistinguishable from a fresh one, including the
  // min/max seeding path and the bucket array (a stale bucket would skew
  // every percentile of the next phase).
  Histogram h;
  h.Record(3);
  h.Record(1'000'000);
  h.Reset();
  h.Record(500);
  h.Record(700);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), 500);
  EXPECT_EQ(h.max(), 700);
  EXPECT_NEAR(h.Mean(), 600.0, 0.01);
  // All mass is in [500, 700]: no percentile may see the pre-Reset values.
  EXPECT_GE(h.Percentile(1), 500);
  EXPECT_LE(h.Percentile(100), 700 + 700 / 8);
}

TEST(CounterTest, ResetAcrossPhases) {
  Counter c;
  c.Add(41);
  c.Reset();
  c.Add();
  EXPECT_EQ(c.value(), 1);
}

TEST(StatsRegistryTest, FormatsSortedByName) {
  Counter writes;
  writes.Add(7);
  Counter drops;  // zero stays visible: a zero is evidence, not noise
  Histogram latency;
  latency.Record(100);

  StatsRegistry registry;
  registry.RegisterCounter("net.writes", &writes);
  registry.RegisterCounter("net.drops", &drops);
  registry.RegisterHistogram("disk.latency", &latency);
  EXPECT_EQ(registry.size(), 3u);

  const std::string out = registry.Format();
  const size_t disk_pos = out.find("disk.latency");
  const size_t drops_pos = out.find("net.drops");
  const size_t writes_pos = out.find("net.writes");
  ASSERT_NE(disk_pos, std::string::npos);
  ASSERT_NE(drops_pos, std::string::npos);
  ASSERT_NE(writes_pos, std::string::npos);
  EXPECT_LT(disk_pos, drops_pos);
  EXPECT_LT(drops_pos, writes_pos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("n=1"), std::string::npos);
}

TEST(StatsRegistryTest, LiveValuesNotSnapshots) {
  // The registry holds pointers: Format() must reflect the stat's value at
  // format time, not at registration time.
  Counter c;
  StatsRegistry registry;
  registry.RegisterCounter("c", &c);
  c.Add(5);
  EXPECT_NE(registry.Format().find("5"), std::string::npos);
}

TEST(StatsRegistryTest, UnregisterPrefixDropsOnlyThatComponent) {
  Counter a;
  Counter b;
  Histogram h;
  StatsRegistry registry;
  registry.RegisterCounter("ship.blocks", &a);
  registry.RegisterHistogram("ship.lag", &h);
  registry.RegisterCounter("net.sent", &b);
  registry.UnregisterPrefix("ship.");
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Format().find("ship."), std::string::npos);
  EXPECT_NE(registry.Format().find("net.sent"), std::string::npos);
}

TEST(StatsRegistryTest, DuplicateNameRejected) {
  Counter a;
  Counter b;
  StatsRegistry registry;
  registry.RegisterCounter("x", &a);
  EXPECT_THROW(registry.RegisterCounter("x", &b), CheckFailure);
}

TEST(RateMeterTest, PerSecond) {
  RateMeter m;
  m.Start(TimePoint::Origin());
  m.Tick(500);
  const TimePoint later = TimePoint::Origin() + Duration::Seconds(2);
  EXPECT_DOUBLE_EQ(m.PerSecond(later), 250.0);
  EXPECT_EQ(m.events(), 500);
}

TEST(RateMeterTest, ZeroWindowSafe) {
  RateMeter m;
  m.Start(TimePoint::Origin());
  m.Tick();
  EXPECT_DOUBLE_EQ(m.PerSecond(TimePoint::Origin()), 0.0);
}

}  // namespace
}  // namespace rlsim

#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace rlsim {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5);
  c.Add(-2);
  EXPECT_EQ(c.value(), 3);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, Empty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  // 42 lies in a bucket of width 2 at this magnitude: [42,43].
  EXPECT_GE(h.Percentile(50), 42);
  EXPECT_LE(h.Percentile(50), 43);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  // Values below 16 are bucketed exactly.
  EXPECT_EQ(h.Percentile(100.0 / 16.0), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
}

TEST(HistogramTest, PercentileMonotonic) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    h.Record(rng.UniformInt(0, 1'000'000));
  }
  int64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  Histogram h;
  const int64_t value = 123'456'789;
  h.Record(value);
  const int64_t p = h.Percentile(50);
  // Log-linear bucketing guarantees <= 1/16 relative error.
  EXPECT_GE(p, value);
  EXPECT_LE(p, value + value / 8);
}

TEST(HistogramTest, UniformMedianApprox) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    h.Record(rng.UniformInt(0, 1000));
  }
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 40);
  EXPECT_NEAR(h.Mean(), 500, 10);
}

TEST(HistogramTest, NegativeValueRejected) {
  Histogram h;
  EXPECT_THROW(h.Record(-1), CheckFailure);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10);
    b.Record(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.Mean(), 505.0, 1.0);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 5);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, StdDevApprox) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 200'000; ++i) {
    h.Record(static_cast<int64_t>(std::max(0.0, rng.Normal(1000, 100))));
  }
  EXPECT_NEAR(h.StdDev(), 100.0, 5.0);
}

TEST(HistogramTest, DurationRecording) {
  Histogram h;
  h.RecordDuration(Duration::Millis(5));
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.PercentileDuration(50), Duration::Millis(5));
  EXPECT_LE(h.PercentileDuration(50), Duration::Millis(6));
}

TEST(HistogramTest, SummaryNonEmpty) {
  Histogram h;
  h.Record(100);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
  EXPECT_NE(h.DurationSummary().find("n=1"), std::string::npos);
}

TEST(RateMeterTest, PerSecond) {
  RateMeter m;
  m.Start(TimePoint::Origin());
  m.Tick(500);
  const TimePoint later = TimePoint::Origin() + Duration::Seconds(2);
  EXPECT_DOUBLE_EQ(m.PerSecond(later), 250.0);
  EXPECT_EQ(m.events(), 500);
}

TEST(RateMeterTest, ZeroWindowSafe) {
  RateMeter m;
  m.Start(TimePoint::Origin());
  m.Tick();
  EXPECT_DOUBLE_EQ(m.PerSecond(TimePoint::Origin()), 0.0);
}

}  // namespace
}  // namespace rlsim

#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include "src/sim/check.h"
#include "src/sim/rng.h"

namespace rlsim {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5);
  c.Add(-2);
  EXPECT_EQ(c.value(), 3);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, Empty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, EmptyMinMaxIsAnError) {
  // Regression: min()/max() used to report the zero-initialised defaults as
  // if they were observations; an empty histogram must refuse instead.
  Histogram h;
  EXPECT_THROW(h.min(), CheckFailure);
  EXPECT_THROW(h.max(), CheckFailure);
  h.Record(7);
  EXPECT_EQ(h.min(), 7);
  h.Reset();
  EXPECT_THROW(h.min(), CheckFailure);
}

TEST(HistogramTest, EmptySummaryRendersExplicitly) {
  Histogram h;
  EXPECT_EQ(h.Summary(), "n=0 (empty)");
  EXPECT_EQ(h.DurationSummary(), "n=0 (empty)");
  h.Record(1);
  EXPECT_EQ(h.Summary().find("(empty)"), std::string::npos);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  // 42 lies in a bucket of width 2 at this magnitude: [42,43].
  EXPECT_GE(h.Percentile(50), 42);
  EXPECT_LE(h.Percentile(50), 43);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  // Values below 16 are bucketed exactly.
  EXPECT_EQ(h.Percentile(100.0 / 16.0), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
}

TEST(HistogramTest, PercentileMonotonic) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    h.Record(rng.UniformInt(0, 1'000'000));
  }
  int64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  Histogram h;
  const int64_t value = 123'456'789;
  h.Record(value);
  const int64_t p = h.Percentile(50);
  // Log-linear bucketing guarantees <= 1/16 relative error.
  EXPECT_GE(p, value);
  EXPECT_LE(p, value + value / 8);
}

TEST(HistogramTest, UniformMedianApprox) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    h.Record(rng.UniformInt(0, 1000));
  }
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 40);
  EXPECT_NEAR(h.Mean(), 500, 10);
}

TEST(HistogramTest, NegativeValueRejected) {
  Histogram h;
  EXPECT_THROW(h.Record(-1), CheckFailure);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10);
    b.Record(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.Mean(), 505.0, 1.0);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 5);
}

TEST(HistogramTest, MergePreservesCountSumAndPercentileMonotonicity) {
  // Merging two populated histograms must behave exactly as if every sample
  // had been recorded into one: count and sum add up, and percentiles stay
  // (a) monotone in p and (b) within bucket error of the direct recording.
  Histogram a;
  Histogram b;
  Histogram direct;
  Rng rng(17);
  int64_t expected_sum = 0;
  for (int i = 0; i < 5'000; ++i) {
    const int64_t va = rng.UniformInt(0, 100'000);
    const int64_t vb = rng.UniformInt(50'000, 5'000'000);
    a.Record(va);
    b.Record(vb);
    direct.Record(va);
    direct.Record(vb);
    expected_sum += va + vb;
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 10'000);
  EXPECT_EQ(a.count(), direct.count());
  EXPECT_DOUBLE_EQ(a.Mean() * static_cast<double>(a.count()),
                   static_cast<double>(expected_sum));
  EXPECT_EQ(a.min(), direct.min());
  EXPECT_EQ(a.max(), direct.max());
  int64_t prev = 0;
  for (double p : {0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.9, 100.0}) {
    const int64_t merged_p = a.Percentile(p);
    EXPECT_GE(merged_p, prev) << "p=" << p;
    EXPECT_EQ(merged_p, direct.Percentile(p)) << "p=" << p;
    prev = merged_p;
  }
}

TEST(HistogramTest, PercentileIsBucketUpperBound) {
  // The documented contract: Percentile(p) returns an upper bound of the
  // bucket holding the p-th observation — never below the true value, and
  // never more than one sub-bucket width (1/16 relative) above it.
  Histogram h;
  for (const int64_t v : {1'000, 33'333, 700'000, 12'345'678}) {
    Histogram single;
    single.Record(v);
    const int64_t p100 = single.Percentile(100);
    EXPECT_GE(p100, v);
    EXPECT_LE(p100, v + v / 8);
    h.Record(v);
  }
  // With all four recorded, p100 caps at the recorded max.
  EXPECT_LE(h.Percentile(100), h.max());
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, StdDevApprox) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 200'000; ++i) {
    h.Record(static_cast<int64_t>(std::max(0.0, rng.Normal(1000, 100))));
  }
  EXPECT_NEAR(h.StdDev(), 100.0, 5.0);
}

TEST(HistogramTest, DurationRecording) {
  Histogram h;
  h.RecordDuration(Duration::Millis(5));
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.PercentileDuration(50), Duration::Millis(5));
  EXPECT_LE(h.PercentileDuration(50), Duration::Millis(6));
}

TEST(HistogramTest, SummaryNonEmpty) {
  Histogram h;
  h.Record(100);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
  EXPECT_NE(h.DurationSummary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, RecordAfterResetReseedsExtremes) {
  // Regression guard for testbed reuse across bench phases: a Reset must
  // leave the histogram indistinguishable from a fresh one, including the
  // min/max seeding path and the bucket array (a stale bucket would skew
  // every percentile of the next phase).
  Histogram h;
  h.Record(3);
  h.Record(1'000'000);
  h.Reset();
  h.Record(500);
  h.Record(700);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), 500);
  EXPECT_EQ(h.max(), 700);
  EXPECT_NEAR(h.Mean(), 600.0, 0.01);
  // All mass is in [500, 700]: no percentile may see the pre-Reset values.
  EXPECT_GE(h.Percentile(1), 500);
  EXPECT_LE(h.Percentile(100), 700 + 700 / 8);
}

TEST(CounterTest, ResetAcrossPhases) {
  Counter c;
  c.Add(41);
  c.Reset();
  c.Add();
  EXPECT_EQ(c.value(), 1);
}

TEST(StatsRegistryTest, FormatsSortedByName) {
  Counter writes;
  writes.Add(7);
  Counter drops;  // zero stays visible: a zero is evidence, not noise
  Histogram latency;
  latency.Record(100);

  StatsRegistry registry;
  registry.RegisterCounter("net.writes", &writes);
  registry.RegisterCounter("net.drops", &drops);
  registry.RegisterHistogram("disk.latency", &latency);
  EXPECT_EQ(registry.size(), 3u);

  const std::string out = registry.Format();
  const size_t disk_pos = out.find("disk.latency");
  const size_t drops_pos = out.find("net.drops");
  const size_t writes_pos = out.find("net.writes");
  ASSERT_NE(disk_pos, std::string::npos);
  ASSERT_NE(drops_pos, std::string::npos);
  ASSERT_NE(writes_pos, std::string::npos);
  EXPECT_LT(disk_pos, drops_pos);
  EXPECT_LT(drops_pos, writes_pos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("n=1"), std::string::npos);
}

TEST(StatsRegistryTest, LiveValuesNotSnapshots) {
  // The registry holds pointers: Format() must reflect the stat's value at
  // format time, not at registration time.
  Counter c;
  StatsRegistry registry;
  registry.RegisterCounter("c", &c);
  c.Add(5);
  EXPECT_NE(registry.Format().find("5"), std::string::npos);
}

TEST(StatsRegistryTest, UnregisterPrefixDropsOnlyThatComponent) {
  Counter a;
  Counter b;
  Histogram h;
  StatsRegistry registry;
  registry.RegisterCounter("ship.blocks", &a);
  registry.RegisterHistogram("ship.lag", &h);
  registry.RegisterCounter("net.sent", &b);
  registry.UnregisterPrefix("ship.");
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Format().find("ship."), std::string::npos);
  EXPECT_NE(registry.Format().find("net.sent"), std::string::npos);
}

TEST(StatsRegistryTest, UnregisterPrefixRemovesHistogramsToo) {
  // Histograms registered under the prefix must go as well — teardown that
  // only purged counters would leave a dangling histogram pointer behind.
  Counter c;
  Histogram h1;
  Histogram h2;
  StatsRegistry registry;
  registry.RegisterHistogram("disk.write_latency", &h1);
  registry.RegisterHistogram("disk.read_latency", &h2);
  registry.RegisterCounter("disk.writes", &c);
  EXPECT_EQ(registry.size(), 3u);
  registry.UnregisterPrefix("disk.");
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Format(), "");
  // Re-registering the same names must succeed: nothing lingers.
  registry.RegisterHistogram("disk.write_latency", &h1);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(StatsRegistryTest, ToJsonRendersCountersAndHistograms) {
  Counter writes;
  writes.Add(7);
  Histogram latency;
  latency.Record(100);
  Histogram idle;  // stays empty
  StatsRegistry registry;
  registry.RegisterCounter("net.writes", &writes);
  registry.RegisterHistogram("disk.latency", &latency);
  registry.RegisterHistogram("disk.idle", &idle);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"net.writes\":7"), std::string::npos);
  EXPECT_NE(json.find("\"disk.idle\":{\"count\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"disk.latency\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // Name-sorted: disk.* precedes net.*.
  EXPECT_LT(json.find("disk.idle"), json.find("net.writes"));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(StatsRegistryTest, DuplicateNameRejected) {
  Counter a;
  Counter b;
  StatsRegistry registry;
  registry.RegisterCounter("x", &a);
  EXPECT_THROW(registry.RegisterCounter("x", &b), CheckFailure);
}

TEST(RateMeterTest, PerSecond) {
  RateMeter m;
  m.Start(TimePoint::Origin());
  m.Tick(500);
  const TimePoint later = TimePoint::Origin() + Duration::Seconds(2);
  ASSERT_TRUE(m.PerSecond(later).has_value());
  EXPECT_DOUBLE_EQ(*m.PerSecond(later), 250.0);
  EXPECT_EQ(m.events(), 500);
}

TEST(RateMeterTest, NoWindowIsDistinctFromZeroRate) {
  // "No measurement window" (never started, or zero-length window) must be
  // distinguishable from a real measured rate of zero.
  RateMeter m;
  EXPECT_FALSE(m.started());
  EXPECT_FALSE(m.PerSecond(TimePoint::Origin() + Duration::Seconds(1))
                   .has_value());  // never started
  m.Start(TimePoint::Origin());
  EXPECT_TRUE(m.started());
  m.Tick();
  EXPECT_FALSE(m.PerSecond(TimePoint::Origin()).has_value());  // zero window
  // A positive window with zero events is a genuine zero rate.
  RateMeter quiet;
  quiet.Start(TimePoint::Origin());
  const auto rate = quiet.PerSecond(TimePoint::Origin() + Duration::Seconds(1));
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(*rate, 0.0);
}

}  // namespace
}  // namespace rlsim

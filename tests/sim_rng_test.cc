#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/check.h"

namespace rlsim {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(9);
  EXPECT_THROW(rng.UniformInt(3, -3), CheckFailure);
}

TEST(RngTest, ExponentialMeanApprox) {
  Rng rng(11);
  const double mean = 4.0;
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(mean);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, mean, 0.1);
}

TEST(RngTest, NormalMomentsApprox) {
  Rng rng(13);
  const int n = 200'000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream should not simply mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(ZipfianTest, InRangeAndSkewed) {
  Rng rng(31);
  ZipfianGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  // Rank 0 should be far hotter than the median rank.
  EXPECT_GT(counts[0], 20 * std::max(counts[500], 1));
}

TEST(ZipfianTest, LowThetaIsFlatter) {
  Rng rng(33);
  ZipfianGenerator mild(1000, 0.2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++counts[mild.Next(rng)];
  }
  int tail = 0;
  for (int i = 500; i < 1000; ++i) {
    tail += counts[i];
  }
  // With theta=0.2 the cold half still receives a sizeable share.
  EXPECT_GT(tail, 20'000);
}

TEST(DiscreteDistributionTest, RespectsWeights) {
  Rng rng(41);
  DiscreteDistribution dist({0.45, 0.43, 0.04, 0.04, 0.04});
  std::vector<int> counts(5, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[dist.Next(rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.45, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.43, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.04, 0.01);
}

TEST(DiscreteDistributionTest, SingleBucket) {
  Rng rng(43);
  DiscreteDistribution dist({1.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dist.Next(rng), 0u);
  }
}

TEST(DiscreteDistributionTest, RejectsAllZeroWeights) {
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), CheckFailure);
}

}  // namespace
}  // namespace rlsim

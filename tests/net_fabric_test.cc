#include "src/net/network_fabric.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace rlnet {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;

std::vector<uint8_t> Payload(uint8_t tag, size_t size = 64) {
  std::vector<uint8_t> p(size, tag);
  return p;
}

TEST(NetworkFabricTest, DeliversWithBaseLatencyAndTxTime) {
  Simulator sim;
  NetworkFabric fabric(sim);
  fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");
  LinkParams params;
  params.base_latency = Duration::Millis(1);
  params.bandwidth_mbps = 1.0;  // 1 MB/s -> 1000 bytes take 1 ms
  fabric.Connect("a", "b", params);

  TimePoint arrival;
  sim.Spawn([](Endpoint& ep, TimePoint& out, Simulator& s) -> Task<void> {
    Message m = co_await ep.Receive();
    out = s.now();
  }(b, arrival, sim));
  ASSERT_TRUE(fabric.Send("a", "b", Payload(1, 1000)));
  sim.Run();

  // 1 ms serialisation + 1 ms propagation.
  EXPECT_EQ(arrival, TimePoint::Origin() + Duration::Millis(2));
  EXPECT_EQ(fabric.stats().messages_delivered.value(), 1);
}

TEST(NetworkFabricTest, InOrderDeliveryUnderJitter) {
  // With heavy jitter, per-link delivery must still be FIFO.
  Simulator sim(7);
  NetworkFabric fabric(sim);
  fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");
  LinkParams params;
  params.jitter = Duration::Millis(50);
  fabric.Connect("a", "b", params);

  std::vector<uint8_t> order;
  sim.Spawn([](Endpoint& ep, std::vector<uint8_t>& out) -> Task<void> {
    for (int i = 0; i < 32; ++i) {
      Message m = co_await ep.Receive();
      out.push_back(m.payload.front());
    }
  }(b, order));
  for (uint8_t i = 0; i < 32; ++i) {
    fabric.Send("a", "b", Payload(i));
  }
  sim.Run();

  ASSERT_EQ(order.size(), 32u);
  for (uint8_t i = 0; i < 32; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(NetworkFabricTest, DeterministicFromSeed) {
  // Same seed -> bit-identical arrival schedule, including which messages a
  // lossy link drops. Different seed -> (with overwhelming probability for
  // this workload) a different schedule.
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    NetworkFabric fabric(sim);
    fabric.CreateEndpoint("a");
    Endpoint& b = fabric.CreateEndpoint("b");
    LinkParams params;
    params.jitter = Duration::Millis(3);
    params.drop_probability = 0.3;
    fabric.Connect("a", "b", params);

    std::vector<int64_t> arrivals;
    sim.Spawn([](Endpoint& ep, std::vector<int64_t>& out,
                 Simulator& s) -> Task<void> {
      while (true) {
        Message m = co_await ep.Receive();
        out.push_back((s.now() - TimePoint::Origin()).nanos());
      }
    }(b, arrivals, sim));
    for (uint8_t i = 0; i < 64; ++i) {
      fabric.Send("a", "b", Payload(i));
    }
    sim.RunFor(Duration::Seconds(1));
    return arrivals;
  };

  const std::vector<int64_t> first = run(11);
  const std::vector<int64_t> second = run(11);
  const std::vector<int64_t> other = run(12);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 64u);  // some messages were dropped
}

TEST(NetworkFabricTest, IndependentLinksDoNotShareRandomness) {
  // Traffic on one lossy link must not perturb another link's arrivals.
  auto run = [](bool extra_traffic) {
    Simulator sim(3);
    NetworkFabric fabric(sim);
    fabric.CreateEndpoint("a");
    Endpoint& b = fabric.CreateEndpoint("b");
    fabric.CreateEndpoint("c");
    LinkParams jittery;
    jittery.jitter = Duration::Millis(2);
    fabric.Connect("a", "b", jittery);
    fabric.Connect("a", "c", jittery);

    std::vector<int64_t> arrivals;
    sim.Spawn([](Endpoint& ep, std::vector<int64_t>& out,
                 Simulator& s) -> Task<void> {
      for (int i = 0; i < 16; ++i) {
        co_await ep.Receive();
        out.push_back((s.now() - TimePoint::Origin()).nanos());
      }
    }(b, arrivals, sim));
    for (uint8_t i = 0; i < 16; ++i) {
      fabric.Send("a", "b", Payload(i));
      if (extra_traffic) {
        fabric.Send("a", "c", Payload(i));
      }
    }
    sim.RunFor(Duration::Seconds(1));
    return arrivals;
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(NetworkFabricTest, PartitionBlackholesAndHeals) {
  Simulator sim;
  NetworkFabric fabric(sim);
  fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");
  fabric.Connect("a", "b", LinkParams{});

  fabric.SetLinkUp("a", "b", false);
  EXPECT_FALSE(fabric.link_up("a", "b"));
  EXPECT_FALSE(fabric.Send("a", "b", Payload(1)));
  sim.Run();
  EXPECT_EQ(b.pending(), 0u);
  EXPECT_EQ(fabric.stats().messages_blackholed.value(), 1);

  fabric.SetLinkUp("a", "b", true);
  EXPECT_TRUE(fabric.Send("a", "b", Payload(2)));
  sim.Run();
  ASSERT_EQ(b.pending(), 1u);
  Message m;
  ASSERT_TRUE(b.TryReceive(&m));
  EXPECT_EQ(m.payload.front(), 2);
  EXPECT_EQ(m.from, "a");
}

TEST(NetworkFabricTest, InFlightMessagesSurviveAPartition) {
  // Cutting the link blackholes new sends only; what is already on the wire
  // still arrives.
  Simulator sim;
  NetworkFabric fabric(sim);
  fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");
  LinkParams params;
  params.base_latency = Duration::Millis(5);
  fabric.Connect("a", "b", params);

  EXPECT_TRUE(fabric.Send("a", "b", Payload(1)));
  fabric.SetLinkUp("a", "b", false);
  sim.Run();
  EXPECT_EQ(b.pending(), 1u);
}

TEST(NetworkFabricTest, SerialisationQueueing) {
  // Two back-to-back sends: the second queues behind the first's tx time.
  Simulator sim;
  NetworkFabric fabric(sim);
  fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");
  LinkParams params;
  params.base_latency = Duration::Zero();
  params.bandwidth_mbps = 1.0;  // 1000 bytes = 1 ms
  fabric.Connect("a", "b", params);

  std::vector<int64_t> arrivals;
  sim.Spawn([](Endpoint& ep, std::vector<int64_t>& out,
               Simulator& s) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      co_await ep.Receive();
      out.push_back((s.now() - TimePoint::Origin()).nanos());
    }
  }(b, arrivals, sim));
  fabric.Send("a", "b", Payload(1, 1000));
  fabric.Send("a", "b", Payload(2, 1000));
  sim.Run();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Duration::Millis(1).nanos());
  EXPECT_EQ(arrivals[1], Duration::Millis(2).nanos());
}

}  // namespace
}  // namespace rlnet

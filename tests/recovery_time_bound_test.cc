// Recovery-time bounds in virtual time. Two deterministic claims:
//
//  1. Scaling: on a long redo-only WAL (no checkpoint since format), recovery
//     time is nonincreasing in the partition count and at least halves by
//     K=8 — the redo CPU cost overlaps across worker coroutines while the
//     recovered state stays bit-identical.
//  2. Fuzzy horizons: with an old in-doubt transaction pinning the replay
//     point far behind the last checkpoint, per-slice horizons let recovery
//     skip the already-checkpointed records on every slice the pinned txn
//     never touched; the single global horizon replays them all. Same final
//     contents either way, strictly less replay work under fuzzy.
//
// Everything runs on the simulator's virtual clock, so the measured times
// are exact and the assertions are deterministic, not flaky wall-clock
// thresholds.
#include "src/db/database.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

constexpr uint64_t kKeySpace = 400;

std::vector<uint8_t> MakeValue(const EngineProfile& profile, uint64_t salt) {
  std::vector<uint8_t> v(profile.value_bytes);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(salt * 131 + i * 7);
  }
  return v;
}

struct RecoveryMeasurement {
  Duration time;  // virtual time spent inside the recovering Open
  uint64_t content_hash = 0;
  int64_t recovered_records = 0;
  int64_t redo_skipped_by_horizon = 0;
  std::vector<uint64_t> in_doubt;
};

enum class CrashState {
  // ~2000 multi-op txns, never checkpointed: the whole WAL replays.
  kLongWal,
  // One early prepared-in-doubt txn pinning the replay point, then a burst
  // of commits, a checkpoint, and a short post-checkpoint tail.
  kPinnedCheckpoint,
};

// Builds the seeded crash state from scratch (pre-crash phase is a pure
// function of `state`, so every recovery mode sees bit-identical images),
// then recovers with the given options and measures the reopen.
RecoveryMeasurement MeasureRecovery(CrashState state, uint32_t partitions,
                        bool use_fuzzy_horizons) {
  Simulator sim(7);
  NativeCpu cpu(sim);
  SimBlockDevice data(sim,
                      SimBlockDevice::Options{.geometry = {.sector_count =
                                                               1 << 18},
                                              .cache_policy =
                                                  WriteCachePolicy::kWriteBack,
                                              .name = "data"},
                      rlstor::MakeDefaultSsd());
  SimBlockDevice log(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 18},
                                             .cache_policy =
                                                 WriteCachePolicy::kWriteBack,
                                             .name = "log"},
                     rlstor::MakeDefaultSsd());
  DbOptions options;
  options.profile = PostgresLikeProfile();
  // High enough that the small key space never trips the dirty-page
  // throttle: the only checkpoints are the ones the scenario issues.
  options.profile.checkpoint_dirty_pages = 128;
  options.pool_pages = 512;
  options.journal_pages = 300;

  DbOptions recover_options = options;
  recover_options.recovery.partitions = partitions;
  recover_options.recovery.use_fuzzy_horizons = use_fuzzy_horizons;
  RecoveryMeasurement m;
  sim.Spawn([](Simulator& s, NativeCpu& c, SimBlockDevice& d,
               SimBlockDevice& l, DbOptions opt, DbOptions ropt, CrashState st,
               RecoveryMeasurement& out) -> Task<void> {
    auto db = co_await Database::Open(s, c, d, l, opt);
    const EngineProfile& profile = db->options().profile;
    if (st == CrashState::kLongWal) {
      for (uint64_t t = 0; t < 2000; ++t) {
        const uint64_t txn = db->Begin();
        for (uint64_t o = 0; o < 8; ++o) {
          co_await db->Put(txn, (t * 8 + o) % kKeySpace,
                           MakeValue(profile, t * 8 + o));
        }
        co_await db->Commit(txn);
      }
    } else {
      // The pin: prepared, never resolved. Its first_lsn anchors the
      // replay point; only its own slices stay hot in the fuzzy header.
      const uint64_t pin = db->Begin();
      co_await db->Put(pin, 399, MakeValue(profile, 399));
      co_await db->Prepare(pin, /*global_id=*/4242);
      for (uint64_t t = 0; t < 200; ++t) {
        const uint64_t txn = db->Begin();
        for (uint64_t o = 0; o < 4; ++o) {
          co_await db->Put(txn, (t * 4 + o) % 199,
                           MakeValue(profile, t * 4 + o));
        }
        co_await db->Commit(txn);
      }
      co_await db->Checkpoint();
      for (uint64_t t = 0; t < 20; ++t) {
        const uint64_t txn = db->Begin();
        co_await db->Put(txn, t % 199, MakeValue(profile, 5000 + t));
        co_await db->Commit(txn);
      }
    }
    // Mains failure: device caches drop, the dead engine is torn down in
    // the dark, then power returns and the reopen is the measured recovery.
    d.PowerLoss();
    l.PowerLoss();
    co_await db->Close();
    db.reset();
    d.PowerRestore();
    l.PowerRestore();

    const rlsim::TimePoint before = s.now();
    db = co_await Database::Open(s, c, d, l, ropt);
    out.time = s.now() - before;
    out.content_hash = co_await db->ContentHash();
    out.recovered_records = db->stats().recovered_records.value();
    out.redo_skipped_by_horizon =
        db->stats().redo_skipped_by_horizon.value();
    out.in_doubt = db->InDoubtGlobalIds();
    EXPECT_EQ(db->stats().journal_header_reads.value(), 1);
    co_await db->CheckTreeStructure();
    co_await db->Close();
  }(sim, cpu, data, log, options, recover_options, state, m));
  sim.Run();
  return m;
}

TEST(RecoveryTimeBoundTest, PartitionedRedoScalesSubLinearly) {
  const uint32_t ks[] = {1, 2, 4, 8};
  RecoveryMeasurement m[4];
  for (size_t i = 0; i < 4; ++i) {
    m[i] = MeasureRecovery(CrashState::kLongWal, ks[i], /*use_fuzzy_horizons=*/true);
  }
  // The workload is 2000 txns x 8 updates: the whole WAL is live redo work.
  ASSERT_GE(m[0].recovered_records, 16000);
  for (size_t i = 1; i < 4; ++i) {
    // Identical recovered state at every K...
    EXPECT_EQ(m[i].content_hash, m[0].content_hash) << "K=" << ks[i];
    EXPECT_EQ(m[i].recovered_records, m[0].recovered_records)
        << "K=" << ks[i];
    // ...and never slower than the next-coarser partitioning.
    EXPECT_LE(m[i].time.nanos(), m[i - 1].time.nanos())
        << "K=" << ks[i] << " took " << m[i].time.micros() << "us vs "
        << m[i - 1].time.micros() << "us at K=" << ks[i - 1];
  }
  // The headline bound: 8 partitions at least halve sequential recovery.
  EXPECT_LE(m[3].time.nanos() * 2, m[0].time.nanos())
      << "K=8 " << m[3].time.micros() << "us vs sequential "
      << m[0].time.micros() << "us";
}

TEST(RecoveryTimeBoundTest, FuzzyHorizonsStrictlyReduceReplayWork) {
  const RecoveryMeasurement fuzzy =
      MeasureRecovery(CrashState::kPinnedCheckpoint, 4, /*use_fuzzy_horizons=*/true);
  const RecoveryMeasurement global =
      MeasureRecovery(CrashState::kPinnedCheckpoint, 4, /*use_fuzzy_horizons=*/false);

  // Same crash images, same recovered state.
  EXPECT_EQ(fuzzy.content_hash, global.content_hash);
  ASSERT_EQ(fuzzy.in_doubt, std::vector<uint64_t>{4242});
  EXPECT_EQ(global.in_doubt, fuzzy.in_doubt);

  // The global horizon sits at the pinned replay point, so every scanned
  // committed record replays; per-slice horizons retire the checkpointed
  // burst on all slices the pinned txn never touched.
  EXPECT_EQ(global.redo_skipped_by_horizon, 0);
  EXPECT_GT(fuzzy.redo_skipped_by_horizon, 0);
  EXPECT_LT(fuzzy.recovered_records, global.recovered_records);
  // And the skipped work is exactly the delta in replayed records.
  EXPECT_EQ(fuzzy.recovered_records + fuzzy.redo_skipped_by_horizon,
            global.recovered_records + global.redo_skipped_by_horizon);
}

}  // namespace
}  // namespace rldb

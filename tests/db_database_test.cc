// End-to-end engine tests: transactions, durability, checkpointing, and
// crash recovery against real simulated devices.
#include "src/db/database.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

struct EngineFixture {
  explicit EngineFixture(EngineProfile profile = PostgresLikeProfile(),
                         DurabilityMode mode = DurabilityMode::kSync)
      : cpu(sim),
        data(sim,
             SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20},
                                     .cache_policy =
                                         WriteCachePolicy::kWriteBack,
                                     .name = "data"},
             rlstor::MakeDefaultSsd()),
        log(sim,
            SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20},
                                    .cache_policy =
                                        WriteCachePolicy::kWriteBack,
                                    .name = "log"},
            rlstor::MakeDefaultSsd()) {
    options.profile = profile;
    options.durability = mode;
    options.pool_pages = 1024;
    options.journal_pages = 600;
    options.profile.checkpoint_dirty_pages = 256;
  }

  Task<void> OpenDb() {
    db = co_await Database::Open(sim, cpu, data, log, options);
  }

  std::vector<uint8_t> Value(uint64_t seed) const {
    std::vector<uint8_t> v(options.profile.value_bytes);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 7);
    }
    return v;
  }

  // Simulates a machine crash: in-memory engine state is discarded and the
  // database is re-opened from the (simulated) disks.
  Task<void> CrashAndReopen() {
    if (db != nullptr) {
      co_await db->Close();
      db.reset();
    }
    co_await OpenDb();
  }

  // Simulates a mains failure: devices lose power (volatile caches dropped),
  // the engine is torn down while everything is dark, then power returns and
  // the database recovers from the disks.
  Task<void> PowerFailAndReopen() {
    data.PowerLoss();
    log.PowerLoss();
    if (db != nullptr) {
      co_await db->Close();
      db.reset();
    }
    data.PowerRestore();
    log.PowerRestore();
    co_await OpenDb();
  }

  Simulator sim;
  NativeCpu cpu;
  SimBlockDevice data;
  SimBlockDevice log;
  DbOptions options;
  std::unique_ptr<Database> db;
};

TEST(DatabaseTest, FreshOpenAndBasicCommit) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t txn = fx.db->Begin();
    EXPECT_EQ(co_await fx.db->Put(txn, 1, fx.Value(1)), DbStatus::kOk);
    EXPECT_EQ(co_await fx.db->Put(txn, 2, fx.Value(2)), DbStatus::kOk);
    EXPECT_EQ(co_await fx.db->Commit(txn), DbStatus::kOk);
    std::vector<uint8_t> got;
    EXPECT_TRUE(co_await fx.db->ReadCommitted(1, &got));
    EXPECT_EQ(got, fx.Value(1));
    EXPECT_EQ(co_await fx.db->CommittedCount(), 2u);
  }(f));
  f.sim.Run();
  EXPECT_EQ(f.db->stats().commits.value(), 1);
}

TEST(DatabaseTest, ReadYourOwnWrites) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t txn = fx.db->Begin();
    co_await fx.db->Put(txn, 5, fx.Value(50));
    std::vector<uint8_t> got;
    EXPECT_EQ(co_await fx.db->Get(txn, 5, &got), DbStatus::kOk);
    EXPECT_EQ(got, fx.Value(50));
    co_await fx.db->Remove(txn, 5);
    EXPECT_EQ(co_await fx.db->Get(txn, 5, &got), DbStatus::kNotFound);
    co_await fx.db->Abort(txn);
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, AbortDiscardsWrites) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t txn = fx.db->Begin();
    co_await fx.db->Put(txn, 9, fx.Value(9));
    co_await fx.db->Abort(txn);
    EXPECT_FALSE(co_await fx.db->ReadCommitted(9, nullptr));
    EXPECT_EQ(fx.db->active_txns(), 0u);
  }(f));
  f.sim.Run();
  EXPECT_EQ(f.db->stats().aborts.value(), 1);
}

TEST(DatabaseTest, UncommittedInvisibleToOthers) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t t1 = fx.db->Begin();
    co_await fx.db->Put(t1, 77, fx.Value(1));
    // Committed state does not include t1's write until commit.
    EXPECT_FALSE(co_await fx.db->ReadCommitted(77, nullptr));
    co_await fx.db->Commit(t1);
    EXPECT_TRUE(co_await fx.db->ReadCommitted(77, nullptr));
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, LockConflictTimesOutAndAborts) {
  EngineProfile p = PostgresLikeProfile();
  p.lock_timeout = Duration::Millis(5);
  EngineFixture f(p);
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t t1 = fx.db->Begin();
    co_await fx.db->Put(t1, 3, fx.Value(3));
    const uint64_t t2 = fx.db->Begin();
    const DbStatus st = co_await fx.db->Put(t2, 3, fx.Value(4));
    EXPECT_EQ(st, DbStatus::kLockTimeout);
    // t2 was auto-aborted; t1 can still commit.
    EXPECT_EQ(co_await fx.db->Commit(t1), DbStatus::kOk);
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, CommittedDataSurvivesCleanReopen) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    for (uint64_t k = 0; k < 50; ++k) {
      const uint64_t txn = fx.db->Begin();
      co_await fx.db->Put(txn, k, fx.Value(k));
      EXPECT_EQ(co_await fx.db->Commit(txn), DbStatus::kOk);
    }
    co_await fx.CrashAndReopen();
    EXPECT_EQ(co_await fx.db->CommittedCount(), 50u);
    for (uint64_t k = 0; k < 50; ++k) {
      std::vector<uint8_t> got;
      EXPECT_TRUE(co_await fx.db->ReadCommitted(k, &got)) << k;
      EXPECT_EQ(got, fx.Value(k));
    }
    co_await fx.db->CheckTreeStructure();
  }(f));
  f.sim.Run();
  EXPECT_GT(f.db->stats().recovered_records.value(), 0);
}

TEST(DatabaseTest, PowerLossAfterCommitAckPreservesData) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t txn = fx.db->Begin();
    co_await fx.db->Put(txn, 123, fx.Value(9));
    EXPECT_EQ(co_await fx.db->Commit(txn), DbStatus::kOk);
    // Power cut: volatile device caches dropped, engine memory gone.
    co_await fx.PowerFailAndReopen();
    std::vector<uint8_t> got;
    EXPECT_TRUE(co_await fx.db->ReadCommitted(123, &got));
    EXPECT_EQ(got, fx.Value(9));
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, UncommittedNeverSurvivesCrash) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t committed = fx.db->Begin();
    co_await fx.db->Put(committed, 1, fx.Value(1));
    co_await fx.db->Commit(committed);
    const uint64_t open_txn = fx.db->Begin();
    co_await fx.db->Put(open_txn, 2, fx.Value(2));
    // Crash with open_txn still uncommitted.
    co_await fx.PowerFailAndReopen();
    EXPECT_TRUE(co_await fx.db->ReadCommitted(1, nullptr));
    EXPECT_FALSE(co_await fx.db->ReadCommitted(2, nullptr));
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, CheckpointBoundsReplayWork) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    for (uint64_t k = 0; k < 100; ++k) {
      const uint64_t txn = fx.db->Begin();
      co_await fx.db->Put(txn, k, fx.Value(k));
      co_await fx.db->Commit(txn);
    }
    co_await fx.db->Checkpoint();
    const int64_t checkpoints_before = fx.db->stats().checkpoints.value();
    EXPECT_GE(checkpoints_before, 1);
    co_await fx.CrashAndReopen();
    // Everything was checkpointed: replay work is bounded by the records in
    // the checkpoint's (partial) tail block, not the whole 100-txn history.
    EXPECT_LT(fx.db->stats().recovered_records.value(), 10);
    EXPECT_EQ(co_await fx.db->CommittedCount(), 100u);
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, RepeatedCrashReopenIsIdempotent) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    for (uint64_t k = 0; k < 30; ++k) {
      const uint64_t txn = fx.db->Begin();
      co_await fx.db->Put(txn, k, fx.Value(k));
      co_await fx.db->Commit(txn);
    }
    for (int round = 0; round < 3; ++round) {
      co_await fx.CrashAndReopen();
      EXPECT_EQ(co_await fx.db->CommittedCount(), 30u) << "round " << round;
      co_await fx.db->CheckTreeStructure();
    }
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, OverwritesRecoverToLatestValue) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    for (uint64_t round = 1; round <= 5; ++round) {
      const uint64_t txn = fx.db->Begin();
      co_await fx.db->Put(txn, 42, fx.Value(round * 100));
      co_await fx.db->Commit(txn);
    }
    co_await fx.CrashAndReopen();
    std::vector<uint8_t> got;
    EXPECT_TRUE(co_await fx.db->ReadCommitted(42, &got));
    EXPECT_EQ(got, fx.Value(500));
    EXPECT_EQ(co_await fx.db->CommittedCount(), 1u);
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, DeletesRecover) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    uint64_t txn = fx.db->Begin();
    co_await fx.db->Put(txn, 1, fx.Value(1));
    co_await fx.db->Put(txn, 2, fx.Value(2));
    co_await fx.db->Commit(txn);
    txn = fx.db->Begin();
    co_await fx.db->Remove(txn, 1);
    co_await fx.db->Commit(txn);
    co_await fx.CrashAndReopen();
    EXPECT_FALSE(co_await fx.db->ReadCommitted(1, nullptr));
    EXPECT_TRUE(co_await fx.db->ReadCommitted(2, nullptr));
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, AsyncUnsafeModeCanLoseAckedCommits) {
  EngineFixture f(PostgresLikeProfile(), DurabilityMode::kAsyncUnsafe);
  bool lost_something = false;
  f.sim.Spawn([](EngineFixture& fx, bool& lost) -> Task<void> {
    co_await fx.OpenDb();
    // Commit a burst and cut power immediately: with async commit some
    // acknowledged transactions have not reached the log device.
    for (uint64_t k = 0; k < 50; ++k) {
      const uint64_t txn = fx.db->Begin();
      co_await fx.db->Put(txn, k, fx.Value(k));
      EXPECT_EQ(co_await fx.db->Commit(txn), DbStatus::kOk);
    }
    co_await fx.PowerFailAndReopen();
    const uint64_t survived = co_await fx.db->CommittedCount();
    lost = survived < 50;
  }(f, lost_something));
  f.sim.Run();
  EXPECT_TRUE(lost_something);
}

TEST(DatabaseTest, ManyConcurrentClientsRandomWorkload) {
  EngineFixture f;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    rlsim::TaskGroup group(fx.sim);
    auto expected = std::make_shared<std::map<uint64_t, uint64_t>>();
    for (int c = 0; c < 8; ++c) {
      group.Spawn([](EngineFixture& fx2, int client,
                     std::shared_ptr<std::map<uint64_t, uint64_t>> exp)
                      -> Task<void> {
        rlsim::Rng rng(static_cast<uint64_t>(client) + 99);
        for (int i = 0; i < 40; ++i) {
          // Disjoint key ranges per client: no lock conflicts, so every
          // transaction commits and the expected map is exact.
          const uint64_t key =
              static_cast<uint64_t>(client) * 1000 + rng.NextBelow(100);
          const uint64_t seed = rng.Next() % 1000;
          const uint64_t txn = fx2.db->Begin();
          EXPECT_EQ(co_await fx2.db->Put(txn, key, fx2.Value(seed)),
                    DbStatus::kOk);
          EXPECT_EQ(co_await fx2.db->Commit(txn), DbStatus::kOk);
          (*exp)[key] = seed;
        }
      }(fx, c, expected));
    }
    co_await group.Join();
    co_await fx.CrashAndReopen();
    EXPECT_EQ(co_await fx.db->CommittedCount(), expected->size());
    for (const auto& [key, seed] : *expected) {
      std::vector<uint8_t> got;
      EXPECT_TRUE(co_await fx.db->ReadCommitted(key, &got)) << key;
      EXPECT_EQ(got, fx.Value(seed)) << key;
    }
    co_await fx.db->CheckTreeStructure();
  }(f));
  f.sim.Run();
}

TEST(DatabaseTest, LargeWorkloadTriggersAutomaticCheckpoints) {
  EngineProfile p = PostgresLikeProfile();
  p.checkpoint_dirty_pages = 32;
  EngineFixture f(p);
  f.options.profile.checkpoint_dirty_pages = 32;
  f.sim.Spawn([](EngineFixture& fx) -> Task<void> {
    co_await fx.OpenDb();
    for (uint64_t k = 0; k < 3000; ++k) {
      const uint64_t txn = fx.db->Begin();
      co_await fx.db->Put(txn, k * 977 % 100000, fx.Value(k));
      co_await fx.db->Commit(txn);
    }
  }(f));
  f.sim.Run();
  EXPECT_GT(f.db->stats().checkpoints.value(), 0);
}

}  // namespace
}  // namespace rldb

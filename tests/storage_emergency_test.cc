// Emergency-seal semantics: when the trusted layer seals a device for the
// emergency flush, queued and future non-FUA requests fail fast and the
// FUA drain gets the actuator almost immediately.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rlstor {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;

std::vector<uint8_t> Buf(size_t bytes, uint8_t fill) {
  return std::vector<uint8_t>(bytes, fill);
}

TEST(EmergencyModeTest, NonFuaRejectedImmediately) {
  Simulator sim;
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 16}},
                     MakeDefaultHdd());
  dev.EnterEmergencyMode();
  BlockStatus w = BlockStatus::kOk;
  BlockStatus r = BlockStatus::kOk;
  BlockStatus fl = BlockStatus::kOk;
  std::vector<uint8_t> out(512);
  sim.Spawn([](SimBlockDevice& d, BlockStatus& a, BlockStatus& b,
               BlockStatus& c, std::vector<uint8_t>& o) -> Task<void> {
    a = co_await d.Write(0, Buf(512, 1), /*fua=*/false);
    b = co_await d.Read(0, o);
    c = co_await d.Flush();
  }(dev, w, r, fl, out));
  sim.Run();
  EXPECT_EQ(w, BlockStatus::kDeviceOff);
  EXPECT_EQ(r, BlockStatus::kDeviceOff);
  EXPECT_EQ(fl, BlockStatus::kDeviceOff);
}

TEST(EmergencyModeTest, FuaWritesStillServiced) {
  Simulator sim;
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 16}},
                     MakeDefaultHdd());
  dev.EnterEmergencyMode();
  BlockStatus st = BlockStatus::kDeviceOff;
  sim.Spawn([](SimBlockDevice& d, BlockStatus& out) -> Task<void> {
    out = co_await d.Write(100, Buf(4096, 2), /*fua=*/true);
  }(dev, st));
  sim.Run();
  EXPECT_EQ(st, BlockStatus::kOk);
  EXPECT_TRUE(dev.image().IsDurable(100));
}

TEST(EmergencyModeTest, QueuedRequestsAbandonTheActuator) {
  Simulator sim;
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 20}},
                     MakeDefaultHdd());
  // Queue a pile of slow mechanical reads, then seal the device and issue
  // the emergency FUA write. It must not wait for the whole queue.
  TimePoint fua_done;
  int reads_failed = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Spawn([](SimBlockDevice& d, int idx, int& failed) -> Task<void> {
      std::vector<uint8_t> out(512);
      const BlockStatus st =
          co_await d.Read(static_cast<uint64_t>(idx) * 100'000, out);
      if (st != BlockStatus::kOk) {
        ++failed;
      }
    }(dev, i, reads_failed));
  }
  sim.Spawn([](Simulator& s, SimBlockDevice& d, TimePoint& done) -> Task<void> {
    co_await s.Sleep(Duration::Millis(1));  // let the reads queue up
    d.EnterEmergencyMode();
    co_await d.Write(0, Buf(8192, 3), /*fua=*/true);
    done = s.now();
  }(sim, dev, fua_done));
  sim.Run();
  // At most one in-flight mechanical read (~<=17 ms) plus the write itself
  // could delay us; ten queued reads (~100+ ms) must not.
  EXPECT_LT(fua_done - TimePoint::Origin(), Duration::Millis(45));
  EXPECT_GE(reads_failed, 8);  // the queued ones were discarded
}

TEST(EmergencyModeTest, PowerRestoreClearsSeal) {
  Simulator sim;
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 16}},
                     MakeDefaultHdd());
  dev.EnterEmergencyMode();
  dev.PowerLoss();
  dev.PowerRestore();
  EXPECT_FALSE(dev.emergency_mode());
  BlockStatus st = BlockStatus::kDeviceOff;
  sim.Spawn([](SimBlockDevice& d, BlockStatus& out) -> Task<void> {
    out = co_await d.Write(0, Buf(512, 1), /*fua=*/false);
  }(dev, st));
  sim.Run();
  EXPECT_EQ(st, BlockStatus::kOk);
}

TEST(EmergencyModeTest, ExplicitExitClearsSeal) {
  Simulator sim;
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 16}},
                     MakeDefaultHdd());
  dev.EnterEmergencyMode();
  dev.ExitEmergencyMode();
  EXPECT_FALSE(dev.emergency_mode());
}

TEST(EmergencyModeTest, DestageHaltsDuringEmergency) {
  Simulator sim;
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 16}},
                     MakeDefaultHdd());
  sim.Spawn([](Simulator& s, SimBlockDevice& d) -> Task<void> {
    co_await d.Write(0, Buf(4096, 1), /*fua=*/false);  // volatile cache
    d.EnterEmergencyMode();
    co_await s.Sleep(Duration::Seconds(1));
    // The destage loop must not have hardened it (the spindle belongs to
    // the emergency flush; the cache is doomed anyway).
    EXPECT_GT(d.dirty_sectors(), 0u);
  }(sim, dev));
  sim.Run();
}

}  // namespace
}  // namespace rlstor

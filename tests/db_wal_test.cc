#include "src/db/wal.h"

#include <gtest/gtest.h>

#include "src/db/profile.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

TEST(LogRecordCodecTest, RoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.lsn = 42;
  rec.txn_id = 7;
  rec.key = 0xDEADBEEF;
  rec.value = {1, 2, 3, 4, 5};
  const auto wire = EncodeRecord(rec);
  size_t offset = 0;
  const auto decoded = DecodeRecord(wire, &offset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->lsn, 42u);
  EXPECT_EQ(decoded->txn_id, 7u);
  EXPECT_EQ(decoded->key, 0xDEADBEEFu);
  EXPECT_EQ(decoded->value, rec.value);
  EXPECT_EQ(offset, wire.size());
}

TEST(LogRecordCodecTest, CorruptionDetected) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.lsn = 1;
  rec.txn_id = 1;
  auto wire = EncodeRecord(rec);
  wire[10] ^= 0xFF;
  size_t offset = 0;
  EXPECT_FALSE(DecodeRecord(wire, &offset).has_value());
}

TEST(LogRecordCodecTest, TruncationDetected) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.value.resize(50, 9);
  auto wire = EncodeRecord(rec);
  wire.resize(wire.size() - 10);
  size_t offset = 0;
  EXPECT_FALSE(DecodeRecord(wire, &offset).has_value());
}

TEST(LogRecordCodecTest, SequenceDecodes) {
  std::vector<uint8_t> stream;
  for (uint64_t i = 1; i <= 10; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.lsn = i;
    rec.txn_id = 1;
    rec.key = i * 100;
    rec.value = {static_cast<uint8_t>(i)};
    const auto wire = EncodeRecord(rec);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  size_t offset = 0;
  uint64_t expect = 1;
  while (auto rec = DecodeRecord(stream, &offset)) {
    EXPECT_EQ(rec->lsn, expect);
    EXPECT_EQ(rec->key, expect * 100);
    ++expect;
  }
  EXPECT_EQ(expect, 11u);
}

struct WalFixture {
  explicit WalFixture(EngineProfile profile = PostgresLikeProfile(),
                      DurabilityMode mode = DurabilityMode::kSync,
                      WriteCachePolicy policy = WriteCachePolicy::kWriteBack)
      : dev(sim,
            SimBlockDevice::Options{.geometry = {.sector_count = 1 << 18},
                                    .cache_policy = policy,
                                    .name = "wal-dev"},
            rlstor::MakeDefaultHdd()),
        writer(sim, dev, profile, mode),
        profile_(profile) {
    writer.ResumeAt(0, 1);
  }

  LogRecord MakeUpdate(uint64_t txn, uint64_t key, uint8_t fill,
                       size_t vlen = 64) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.txn_id = txn;
    rec.key = key;
    rec.value.assign(vlen, fill);
    return rec;
  }

  Simulator sim;
  SimBlockDevice dev;
  LogWriter writer;
  EngineProfile profile_;
};

TEST(LogWriterTest, AppendAssignsMonotonicLsns) {
  WalFixture f;
  const uint64_t a = f.writer.Append(f.MakeUpdate(1, 10, 1));
  const uint64_t b = f.writer.Append(f.MakeUpdate(1, 11, 2));
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(f.writer.next_lsn(), b + 1);
}

TEST(LogWriterTest, WaitDurableBlocksUntilFlushed) {
  WalFixture f;
  TimePoint done;
  f.sim.Spawn([](Simulator& s, WalFixture& fx, TimePoint& out) -> Task<void> {
    const uint64_t lsn = fx.writer.Append(fx.MakeUpdate(1, 1, 1));
    co_await fx.writer.WaitDurable(lsn);
    out = s.now();
    EXPECT_GE(fx.writer.durable_lsn(), lsn);
  }(f.sim, f, done));
  f.sim.Run();
  // A mechanical write happened: not instantaneous.
  EXPECT_GT(done - TimePoint::Origin(), Duration::Micros(30));
}

TEST(LogWriterTest, DurableDataSurvivesPowerLoss) {
  WalFixture f;
  f.sim.Spawn([](WalFixture& fx) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      const uint64_t lsn = fx.writer.Append(
          fx.MakeUpdate(1, static_cast<uint64_t>(i), 3));
      co_await fx.writer.WaitDurable(lsn);
    }
    fx.dev.PowerLoss();
  }(f));
  f.sim.Run();
  f.dev.PowerRestore();
  // Scan what is on the medium: all 20 updates must be there.
  LogScanResult result;
  f.sim.Spawn([](WalFixture& fx, LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(fx.dev, fx.profile_, 0);
  }(f, result));
  f.sim.Run();
  EXPECT_EQ(result.records.size(), 20u);
  for (size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].lsn, i + 1);
  }
}

TEST(LogWriterTest, UnflushedTailLostButPrefixValid) {
  WalFixture f(PostgresLikeProfile(), DurabilityMode::kAsyncUnsafe);
  f.sim.Spawn([](Simulator& s, WalFixture& fx) -> Task<void> {
    // Async mode: appends never wait. Cut power quickly; some suffix of the
    // records will be lost.
    for (int i = 0; i < 200; ++i) {
      fx.writer.Append(fx.MakeUpdate(1, static_cast<uint64_t>(i), 4, 256));
      co_await s.Sleep(Duration::Micros(20));
    }
    fx.dev.PowerLoss();
  }(f.sim, f));
  f.sim.Run();
  f.dev.PowerRestore();
  LogScanResult result;
  f.sim.Spawn([](WalFixture& fx, LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(fx.dev, fx.profile_, 0);
  }(f, result));
  f.sim.Run();
  EXPECT_LT(result.records.size(), 200u);  // something was lost
  // What survived is a dense LSN prefix.
  for (size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].lsn, i + 1);
  }
}

TEST(LogWriterTest, GroupCommitBatchesConcurrentCommitters) {
  EngineProfile p = InnodbLikeProfile();
  p.group_commit_window = Duration::Micros(200);
  WalFixture f(p);
  int done = 0;
  for (int c = 0; c < 10; ++c) {
    f.sim.Spawn([](WalFixture& fx, int id, int& out) -> Task<void> {
      const uint64_t lsn = fx.writer.Append(
          fx.MakeUpdate(static_cast<uint64_t>(id), 1, 1));
      co_await fx.writer.WaitDurable(lsn);
      ++out;
    }(f, c, done));
  }
  f.sim.Run();
  EXPECT_EQ(done, 10);
  // All ten commits shared very few flush cycles.
  EXPECT_LE(f.writer.stats().flush_cycles.value(), 3);
}

TEST(LogWriterTest, RecordsSpanMultipleBlocks) {
  EngineProfile p = InnodbLikeProfile();  // 512-byte blocks
  WalFixture f(p);
  f.sim.Spawn([](WalFixture& fx) -> Task<void> {
    // Each record ~100 bytes: forces many block seals.
    uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
      last = fx.writer.Append(fx.MakeUpdate(1, static_cast<uint64_t>(i), 5));
    }
    co_await fx.writer.WaitDurable(last);
  }(f));
  f.sim.Run();
  LogScanResult result;
  f.sim.Spawn([](WalFixture& fx, LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(fx.dev, fx.profile_, 0);
  }(f, result));
  f.sim.Run();
  EXPECT_EQ(result.records.size(), 50u);
  EXPECT_GT(result.next_block, 5u);
}

TEST(LogWriterTest, ResumeContinuesFromScan) {
  WalFixture f;
  f.sim.Spawn([](WalFixture& fx) -> Task<void> {
    const uint64_t lsn = fx.writer.Append(fx.MakeUpdate(1, 1, 1));
    co_await fx.writer.WaitDurable(lsn);
  }(f));
  f.sim.Run();

  // Second writer resumes after scanning.
  LogScanResult scan;
  f.sim.Spawn([](WalFixture& fx, LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(fx.dev, fx.profile_, 0);
  }(f, scan));
  f.sim.Run();

  LogWriter writer2(f.sim, f.dev, f.profile_, DurabilityMode::kSync);
  writer2.ResumeAt(scan.next_block, scan.next_lsn);
  f.sim.Spawn([](WalFixture& fx, LogWriter& w) -> Task<void> {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn_id = 2;
    const uint64_t lsn = w.Append(std::move(rec));
    co_await w.WaitDurable(lsn);
    (void)fx;
  }(f, writer2));
  f.sim.Run();

  LogScanResult rescan;
  f.sim.Spawn([](WalFixture& fx, LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(fx.dev, fx.profile_, 0);
  }(f, rescan));
  f.sim.Run();
  EXPECT_EQ(rescan.records.size(), 2u);
  EXPECT_EQ(rescan.records.back().txn_id, 2u);
  EXPECT_EQ(rescan.records.back().lsn, scan.next_lsn);
}

}  // namespace
}  // namespace rldb

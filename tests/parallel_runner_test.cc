// The deterministic job pool's contract (src/harness/parallel_runner):
// results land in job-index order at any worker count, every job runs
// exactly once, degenerate job counts clamp sanely, and when jobs throw,
// every job still runs and the lowest-index exception is the one rethrown
// (so the surfaced error does not depend on thread scheduling).
#include "src/harness/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

TEST(ParallelRunnerTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(rlharness::DefaultJobs(), 1);
}

TEST(ParallelRunnerTest, ResultsInIndexOrderAtAnyJobCount) {
  const std::vector<int> expected = [] {
    std::vector<int> v;
    for (int i = 0; i < 100; ++i) v.push_back(i * i);
    return v;
  }();
  for (int jobs : {1, 2, 3, 8, 64}) {
    const std::vector<int> results = rlharness::RunJobs<int>(
        jobs, 100, [](size_t i) { return static_cast<int>(i * i); });
    EXPECT_EQ(results, expected) << "jobs=" << jobs;
  }
}

TEST(ParallelRunnerTest, EveryIndexRunsExactlyOnce) {
  constexpr size_t kJobs = 200;
  std::vector<std::atomic<int>> counts(kJobs);
  rlharness::RunIndexedJobs(8, kJobs, [&counts](size_t i) {
    counts[i].fetch_add(1);
  });
  for (size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelRunnerTest, DegenerateJobCountsClamp) {
  // jobs <= 0 runs inline; jobs > n must not spawn idle workers or skip
  // items. Both still produce the full, ordered result vector.
  for (int jobs : {-4, 0, 1, 16}) {
    const std::vector<size_t> results =
        rlharness::RunJobs<size_t>(jobs, 3, [](size_t i) { return i + 1; });
    EXPECT_EQ(results, (std::vector<size_t>{1, 2, 3})) << "jobs=" << jobs;
  }
}

TEST(ParallelRunnerTest, EmptyJobListIsANoOp) {
  const std::vector<int> results =
      rlharness::RunJobs<int>(8, 0, [](size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ParallelRunnerTest, LowestIndexExceptionWinsAndAllJobsRun) {
  for (int jobs : {1, 8}) {
    std::vector<std::atomic<int>> ran(32);
    try {
      rlharness::RunIndexedJobs(jobs, 32, [&ran](size_t i) {
        ran[i].fetch_add(1);
        if (i == 17 || i == 5 || i == 30) {
          throw std::runtime_error("job " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      // Deterministic error surfacing: index 5's exception, regardless of
      // which worker hit its failure first.
      EXPECT_STREQ(e.what(), "job 5") << "jobs=" << jobs;
    }
    for (size_t i = 0; i < ran.size(); ++i) {
      EXPECT_EQ(ran[i].load(), 1) << "index " << i << " jobs=" << jobs;
    }
  }
}

}  // namespace

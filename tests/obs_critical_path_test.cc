#include "src/obs/critical_path.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/span_tracer.h"
#include "src/sim/simulator.h"

namespace rlobs {
namespace {

using rlsim::Duration;
using rlsim::Simulator;

SpanNode Node(uint64_t id, uint64_t parent, int64_t begin, int64_t end,
              const char* kind) {
  SpanNode n;
  n.id = id;
  n.parent = parent;
  n.begin_ns = begin;
  n.end_ns = end;
  n.actor = "x";
  n.kind = kind;
  return n;
}

const CriticalEdge* EdgeOf(const CriticalPathClass& cls,
                           const std::string& kind) {
  for (const CriticalEdge& e : cls.edges) {
    if (e.kind == kind) {
      return &e;
    }
  }
  return nullptr;
}

// The 2PC shape the tentpole cares about: root spans the whole txn, the
// prepare phase (with a slow shard underneath) ends before the decision
// fanout, and the gap between them is the coordinator's decision-log fsync.
// The walk must resume at the root after spending the decision subtree so
// the prepare subtree still gets its share.
TEST(CriticalPathTest, BackwardWalkCoversSiblingsAndSumsToRootDuration) {
  const std::vector<SpanNode> spans = {
      Node(1, 0, 0, 100, "2pc-execute"),
      Node(2, 1, 10, 60, "2pc-prepare"),
      Node(3, 1, 70, 90, "2pc-decide"),
      Node(4, 2, 15, 55, "shard-prepare"),
  };
  const CriticalPathReport r = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(r.classes.size(), 1u);
  const CriticalPathClass& cls = r.classes[0];
  EXPECT_EQ(cls.root_kind, "2pc-execute");
  EXPECT_EQ(cls.roots, 1u);
  EXPECT_EQ(cls.total_ns, 100);

  // Hand-computed walk: [90,100] root fanout tail, [70,90] decide, [60,70]
  // root fsync gap, [55,60] prepare tail, [15,55] shard-prepare, [10,15]
  // prepare head, [0,10] root head.
  ASSERT_EQ(cls.edges.size(), 4u);
  EXPECT_EQ(cls.edges[0].kind, "shard-prepare");
  EXPECT_EQ(cls.edges[0].total_ns, 40);
  EXPECT_EQ(cls.edges[0].count, 1u);
  EXPECT_EQ(cls.edges[1].kind, "2pc-execute");
  EXPECT_EQ(cls.edges[1].total_ns, 30);
  EXPECT_EQ(cls.edges[1].count, 3u);
  EXPECT_EQ(cls.edges[2].kind, "2pc-decide");
  EXPECT_EQ(cls.edges[2].total_ns, 20);
  EXPECT_EQ(cls.edges[3].kind, "2pc-prepare");
  EXPECT_EQ(cls.edges[3].total_ns, 10);
  EXPECT_EQ(cls.edges[3].count, 2u);

  int64_t sum = 0;
  for (const CriticalEdge& e : cls.edges) {
    sum += e.total_ns;
  }
  EXPECT_EQ(sum, cls.total_ns);
}

TEST(CriticalPathTest, ZeroDurationChildIsConsumedOnce) {
  // A zero-duration child ending exactly at the cursor must not be picked
  // twice (the walk would never terminate).
  const std::vector<SpanNode> spans = {
      Node(1, 0, 0, 10, "root"),
      Node(2, 1, 5, 5, "blip"),
  };
  const CriticalPathReport r = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(r.classes.size(), 1u);
  const CriticalPathClass& cls = r.classes[0];
  EXPECT_EQ(cls.total_ns, 10);
  const CriticalEdge* root = EdgeOf(cls, "root");
  const CriticalEdge* blip = EdgeOf(cls, "blip");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(blip, nullptr);
  EXPECT_EQ(root->total_ns, 10);
  EXPECT_EQ(blip->total_ns, 0);
  EXPECT_EQ(blip->count, 1u);
}

TEST(CriticalPathTest, UnresolvableParentBecomesItsOwnRoot) {
  // Tracing enabled mid-run: the parent span was never recorded, so the
  // child is analyzed as a root of its own class.
  const std::vector<SpanNode> spans = {
      Node(7, 99, 10, 30, "shard-prepare"),
  };
  const CriticalPathReport r = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(r.classes.size(), 1u);
  EXPECT_EQ(r.classes[0].root_kind, "shard-prepare");
  EXPECT_EQ(r.classes[0].roots, 1u);
  EXPECT_EQ(r.classes[0].total_ns, 20);
}

TEST(CriticalPathTest, RootsOfOneKindAggregateAcrossTrees) {
  const std::vector<SpanNode> spans = {
      Node(1, 0, 0, 50, "txn"),   Node(2, 1, 10, 40, "prepare"),
      Node(3, 0, 100, 130, "txn"), Node(4, 3, 105, 125, "prepare"),
  };
  const CriticalPathReport r = AnalyzeCriticalPaths(spans);
  ASSERT_EQ(r.classes.size(), 1u);
  const CriticalPathClass& cls = r.classes[0];
  EXPECT_EQ(cls.roots, 2u);
  EXPECT_EQ(cls.total_ns, 80);
  const CriticalEdge* prepare = EdgeOf(cls, "prepare");
  ASSERT_NE(prepare, nullptr);
  EXPECT_EQ(prepare->total_ns, 50);  // 30 + 20
  EXPECT_EQ(prepare->count, 2u);
}

TEST(CriticalPathTest, CollectSpansPairsAndClosesOpenSpans) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);
  uint64_t root_id = 0;
  sim.Schedule(Duration::Micros(1), [&] {
    root_id = sim.EmitSpanBegin("coord", "txn", 5);
    sim.EmitSpanBegin("coord", "stuck", 0, root_id);  // never ended
  });
  sim.Schedule(Duration::Micros(4), [&] {
    sim.EmitSpanEnd(root_id, "coord", "txn");
  });
  sim.Run();

  const std::vector<SpanNode> spans = CollectSpans(tracer);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, "txn");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].begin_ns, Duration::Micros(1).nanos());
  EXPECT_EQ(spans[0].end_ns, Duration::Micros(4).nanos());
  EXPECT_EQ(spans[1].kind, "stuck");
  EXPECT_EQ(spans[1].parent, root_id);
  // Open span closed at the last recorded timestamp (exporter convention).
  EXPECT_EQ(spans[1].end_ns, Duration::Micros(4).nanos());
}

TEST(CriticalPathTest, FormatAndJsonAreStableShapes) {
  const std::vector<SpanNode> spans = {
      Node(1, 0, 0, 1000, "txn"),
      Node(2, 1, 200, 800, "prepare"),
  };
  const CriticalPathReport r = AnalyzeCriticalPaths(spans);
  const std::string text = FormatCriticalPath(r);
  EXPECT_NE(text.find("critical path: txn (1 root, total "),
            std::string::npos);
  EXPECT_NE(text.find("prepare"), std::string::npos);
  const std::string json = CriticalPathJson(r);
  EXPECT_NE(json.find("{\"critical_path\":[{\"class\":\"txn\",\"roots\":1,"
                      "\"total_ns\":1000,"),
            std::string::npos);
  EXPECT_NE(json.find("{\"kind\":\"prepare\",\"count\":1,\"total_ns\":600,"),
            std::string::npos);
  EXPECT_NE(json.find("\"share\":0.6000"), std::string::npos);

  EXPECT_EQ(FormatCriticalPath(AnalyzeCriticalPaths({})),
            "critical path: no spans recorded\n");
}

}  // namespace
}  // namespace rlobs

#include "tests/testlib/campaign_util.h"

namespace rltest {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

rlharness::TestbedOptions CampaignOptions(rlharness::DeploymentMode mode,
                                          rlharness::DiskSetup disks) {
  rlharness::TestbedOptions opts;
  opts.mode = mode;
  opts.disks = disks;
  opts.db.pool_pages = 512;
  opts.db.journal_pages = 300;
  opts.db.profile.checkpoint_dirty_pages = 128;
  return opts;
}

rlharness::TestbedOptions ReplicatedCampaignOptions(
    rlharness::DeploymentMode mode, rlrep::ShipMode ship, size_t replicas) {
  rlharness::TestbedOptions opt;
  opt.mode = mode;
  opt.disks = rlharness::DiskSetup::kSsdLog;
  opt.db.profile = rldb::PostgresLikeProfile();
  opt.db.pool_pages = 512;
  opt.db.journal_pages = 300;
  opt.db.profile.checkpoint_dirty_pages = 128;
  opt.replication.enabled = true;
  opt.replication.replicas = replicas;
  opt.replication.shipper.mode = ship;
  return opt;
}

rlwork::KvConfig WriteHeavyKv() {
  return rlwork::KvConfig{.key_space = 2000, .write_fraction = 1.0,
                          .ops_per_txn = 2};
}

std::shared_ptr<bool> SpawnFleet(Simulator& sim, rlwork::KvWorkload& kv,
                                 rldb::Database& db, int id_base, int count,
                                 rlfault::DurabilityChecker* checker) {
  auto stop = std::make_shared<bool>(false);
  for (int c = 0; c < count; ++c) {
    sim.Spawn(kv.RunClient(db, id_base + c, stop.get(), checker));
  }
  return stop;
}

CampaignResult RunSeededCampaign(uint64_t seed, rlsim::TraceEventSink* sink) {
  // Client RNG streams derive from their ids; fold the seed in so different
  // seeds run genuinely different workloads, not just different cut times.
  Simulator sim(seed);
  sim.set_tracer(sink);
  rlharness::TestbedOptions opts =
      CampaignOptions(rlharness::DeploymentMode::kRapiLog,
                      rlharness::DiskSetup::kSharedHdd);
  rlharness::Testbed bed(sim, opts);
  rlwork::KvWorkload kv(sim, rlwork::KvConfig{.key_space = 1000});
  rlfault::DurabilityChecker checker;
  CampaignResult result;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk,
               CampaignResult& out) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 200);
    const int id_base = static_cast<int>(s.rng().UniformInt(0, 1 << 20)) * 8;
    auto stop = SpawnFleet(s, w, b.db(), id_base, 4, &chk);
    co_await s.Sleep(Duration::Millis(s.rng().UniformInt(80, 250)));
    b.CutPower();
    *stop = true;
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecover();
    out.verdict = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, kv, checker, result));
  sim.Run();
  result.committed = kv.stats().committed.value();
  return result;
}

}  // namespace rltest

// Shared plumbing for the fault-campaign tests: the standard small-engine
// testbed tuning (small pool + journal so checkpoints and recovery actually
// exercise their paths inside a sub-second episode), write-heavy workload
// configs, client-fleet spawning, and the canonical seeded one-cut campaign
// used by the determinism tests.
//
// Keep behaviour-preserving: these helpers encode exactly the option values
// the campaign tests have always used, so extracting them must not change
// any test's event stream.
#pragma once

#include <cstdint>
#include <memory>

#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/workload/kv_workload.h"

namespace rltest {

// Small-engine tuning on top of the given deployment: 512-page pool,
// 300-page journal, checkpoint at 128 dirty pages.
rlharness::TestbedOptions CampaignOptions(rlharness::DeploymentMode mode,
                                          rlharness::DiskSetup disks);

// The replication campaigns' deployment: SSD log, Postgres-like profile,
// the same small-engine tuning, and `replicas` nodes in `ship` mode.
rlharness::TestbedOptions ReplicatedCampaignOptions(
    rlharness::DeploymentMode mode, rlrep::ShipMode ship, size_t replicas);

// 100% writes, 2 ops per transaction: every commit is a durability promise.
rlwork::KvConfig WriteHeavyKv();

// Spawns `count` workload clients with ids id_base..id_base+count-1 sharing
// one stop flag (returned; set *flag = true to wind the fleet down). Client
// ids seed the per-client RNG streams, so callers that care about exact
// reproduction must keep passing the ids they always used.
std::shared_ptr<bool> SpawnFleet(rlsim::Simulator& sim,
                                 rlwork::KvWorkload& kv, rldb::Database& db,
                                 int id_base, int count,
                                 rlfault::DurabilityChecker* checker);

struct CampaignResult {
  rlfault::VerifyResult verdict;
  int64_t committed = 0;
};

// The canonical seeded campaign: RapiLog on a shared HDD, four clients, one
// power cut at a seed-derived instant, recover, verify. Same seed, same
// result — the determinism property the sweep tests pin. An optional trace
// sink is installed on the simulator for the divergence-audit tests.
CampaignResult RunSeededCampaign(uint64_t seed,
                                 rlsim::TraceEventSink* sink = nullptr);

}  // namespace rltest

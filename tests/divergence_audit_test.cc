// DivergenceAuditor tests: same-seed double-runs of the real scenarios are
// bit-identical, and a deliberately planted source of nondeterminism is
// caught with the right first-divergence event.
#include "src/harness/divergence_auditor.h"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "src/faults/chaos/chaos_explorer.h"
#include "src/faults/chaos/schedule.h"
#include "src/sim/crc32.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "tests/testlib/campaign_util.h"

namespace {

using rlharness::DivergenceAuditor;
using rlharness::DivergenceReport;
using rlharness::EpochDigest;
using rlharness::FoldEpochs;
using rlharness::TraceEvent;
using rlharness::TraceRecorder;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

// --- Compare mechanics on hand-built streams ------------------------------

TraceEvent Ev(int64_t us, const char* kind, uint32_t crc) {
  return TraceEvent{us * 1000, "test", kind, crc};
}

TEST(DivergenceCompare, IdenticalStreams) {
  const std::vector<TraceEvent> a = {Ev(10, "x", 1), Ev(250, "y", 2)};
  const DivergenceAuditor auditor;
  const DivergenceReport report = auditor.Compare(a, a);
  EXPECT_TRUE(report.identical);
  EXPECT_EQ(report.events_a, 2u);
}

TEST(DivergenceCompare, PinpointsFirstDifferingEvent) {
  const std::vector<TraceEvent> a = {Ev(10, "x", 1), Ev(250, "y", 2),
                                     Ev(260, "z", 3)};
  std::vector<TraceEvent> b = a;
  b[1].payload_crc = 99;  // same time/actor/kind, different payload
  const DivergenceReport report = DivergenceAuditor().Compare(a, b);
  EXPECT_FALSE(report.identical);
  EXPECT_EQ(report.first_diverging_event, 1u);
  // 250us with the default 100ms epoch -> epoch 0; use a 100us epoch to
  // check the epoch arithmetic too.
  const DivergenceReport fine = DivergenceAuditor(100'000).Compare(a, b);
  EXPECT_EQ(fine.first_bad_epoch, 2);
}

TEST(DivergenceCompare, TruncatedStreamDivergesAtEndOfShorterRun) {
  const std::vector<TraceEvent> a = {Ev(10, "x", 1), Ev(20, "y", 2)};
  const std::vector<TraceEvent> b = {Ev(10, "x", 1)};
  const DivergenceReport report = DivergenceAuditor().Compare(a, b);
  EXPECT_FALSE(report.identical);
  EXPECT_EQ(report.first_diverging_event, 1u);
  EXPECT_EQ(report.event_b, "<end of stream>");
}

TEST(DivergenceCompare, FoldEpochsPartitionsByVirtualTime) {
  const std::vector<TraceEvent> events = {
      Ev(10, "a", 1), Ev(90'000, "b", 2), Ev(150'000, "c", 3)};
  const std::vector<EpochDigest> epochs = FoldEpochs(events, 100'000'000);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].epoch_index, 0);
  EXPECT_EQ(epochs[0].events, 2u);
  EXPECT_EQ(epochs[1].epoch_index, 1);
  EXPECT_EQ(epochs[1].events, 1u);
}

// --- The real scenarios are reproducible ----------------------------------

TEST(DivergenceAudit, SeededCampaignSameSeedSameDigests) {
  TraceRecorder first;
  TraceRecorder second;
  rltest::RunSeededCampaign(11, &first);
  rltest::RunSeededCampaign(11, &second);
  // The campaign cuts power mid-write-burst: it must produce real trace
  // traffic, or this test would vacuously pass on empty streams.
  ASSERT_GT(first.events().size(), 10u);
  const DivergenceReport report =
      DivergenceAuditor().Compare(first.events(), second.events());
  EXPECT_TRUE(report.identical) << report.Summary();
}

TEST(DivergenceAudit, DifferentSeedsActuallyDiverge) {
  // Sanity check on the instrument itself: the auditor is only trustworthy
  // if it CAN see a difference when the runs genuinely differ.
  TraceRecorder first;
  TraceRecorder second;
  rltest::RunSeededCampaign(11, &first);
  rltest::RunSeededCampaign(12, &second);
  const DivergenceReport report =
      DivergenceAuditor().Compare(first.events(), second.events());
  EXPECT_FALSE(report.identical);
}

rlchaos::EpisodeConfig FindEpisode(bool replicated) {
  const rlchaos::GeneratorOptions gen;
  for (uint64_t seed = 1; seed < 256; ++seed) {
    const rlchaos::EpisodeConfig cfg = rlchaos::GenerateEpisode(seed, gen);
    if ((cfg.replicas > 0) == replicated && !cfg.events.empty()) {
      return cfg;
    }
  }
  ADD_FAILURE() << "no " << (replicated ? "replicated" : "single-node")
                << " episode in seeds 1..255";
  return rlchaos::GenerateEpisode(1, gen);
}

TEST(DivergenceAudit, PlainChaosEpisodeSameSeedSameDigests) {
  const DivergenceReport report =
      rlchaos::AuditEpisodeDivergence(FindEpisode(/*replicated=*/false));
  EXPECT_TRUE(report.identical) << report.Summary();
  EXPECT_GT(report.events_a, 0u);
}

TEST(DivergenceAudit, ReplicatedChaosEpisodeSameSeedSameDigests) {
  const DivergenceReport report =
      rlchaos::AuditEpisodeDivergence(FindEpisode(/*replicated=*/true));
  EXPECT_TRUE(report.identical) << report.Summary();
  EXPECT_GT(report.events_a, 0u);
}

// --- Planted nondeterminism is caught -------------------------------------

// Keeps every node from every run alive, so a later run's allocations are
// guaranteed to land at addresses different from (all still-live) earlier
// runs' nodes. This is the test-only stand-in for the classic bug: pointer
// values from a hash container leaking into the event stream.
std::vector<std::unique_ptr<uint64_t>>& KeepAlive() {
  static std::vector<std::unique_ptr<uint64_t>> nodes;
  return nodes;
}

// A tiny scenario with a planted defect: the second trace event folds
// unordered_set-of-pointer contents (iteration order AND pointer bits are
// run-dependent) into its payload CRC. Events one and three are clean.
void PlantedScenario(rlsim::TraceEventSink& sink) {
  Simulator sim(7);
  sim.set_tracer(&sink);
  sim.Spawn([](Simulator& s) -> Task<void> {
    co_await s.Sleep(Duration::Millis(1));
    s.EmitTrace("planted", "clean-step", 1234);

    std::unordered_set<const uint64_t*> keys;
    for (uint64_t i = 0; i < 8; ++i) {
      KeepAlive().push_back(std::make_unique<uint64_t>(i));
      keys.insert(KeepAlive().back().get());
    }
    uint32_t crc = 0;
    for (const uint64_t* p : keys) {
      crc = rlsim::Crc32c(
          {reinterpret_cast<const uint8_t*>(&p), sizeof(p)}, crc);
    }
    co_await s.Sleep(Duration::Millis(1));
    s.EmitTrace("planted", "unordered-leak", crc);

    co_await s.Sleep(Duration::Millis(1));
    s.EmitTrace("planted", "after", 5678);
  }(sim));
  sim.Run();
}

TEST(DivergenceAudit, PlantedUnorderedLeakIsCaughtAtTheRightEvent) {
  const DivergenceReport report = DivergenceAuditor().RunTwice(PlantedScenario);
  ASSERT_FALSE(report.identical)
      << "planted pointer-dependent payload was not detected";
  // Event 0 is clean in both runs; the leak is event 1, and the report must
  // say so (not merely "the streams differ somewhere").
  EXPECT_EQ(report.first_diverging_event, 1u);
  EXPECT_NE(report.event_a.find("unordered-leak"), std::string::npos)
      << report.Summary();
  EXPECT_EQ(report.events_a, 3u);
  EXPECT_EQ(report.events_b, 3u);
}

}  // namespace

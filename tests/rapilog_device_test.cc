#include "src/rapilog/rapilog_device.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/power/power.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rapilog {
namespace {

using rlpow::PowerSupply;
using rlpow::PsuParams;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;
using rlstor::BlockStatus;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

// Adapter: powers a SimBlockDevice off/on with the rails.
class DiskPowerAdapter : public rlpow::PowerSink {
 public:
  explicit DiskPowerAdapter(SimBlockDevice& dev) : dev_(dev) {}
  void OnPowerDown() override { dev_.PowerLoss(); }
  void OnPowerRestore() override { dev_.PowerRestore(); }

 private:
  SimBlockDevice& dev_;
};

struct Fixture {
  explicit Fixture(RapiLogOptions options = {}, PsuParams psu_params = {})
      : psu(sim, psu_params),
        disk(sim,
             SimBlockDevice::Options{
                 .geometry = {.sector_count = 1 << 18},
                 .cache_policy = WriteCachePolicy::kWriteBack,
                 .name = "log-disk"},
             rlstor::MakeDefaultHdd()),
        disk_power(disk),
        rapilog(sim, psu, disk, options) {
    // RapiLog registered first (by the ctor above), then the disk: on power
    // down the guard has already run its course by the time rails drop.
    psu.Register(&disk_power);
  }

  Simulator sim;
  PowerSupply psu;
  SimBlockDevice disk;
  DiskPowerAdapter disk_power;
  RapiLogDevice rapilog;
};

std::vector<uint8_t> Block(size_t bytes, uint8_t fill) {
  return std::vector<uint8_t>(bytes, fill);
}

TEST(RapiLogDeviceTest, AckIsImmediate) {
  Fixture f;
  Duration ack_latency;
  f.sim.Spawn([](Simulator& s, RapiLogDevice& d, Duration& lat) -> Task<void> {
    const TimePoint t0 = s.now();
    const BlockStatus st = co_await d.Write(0, Block(4096, 1), false);
    lat = s.now() - t0;
    EXPECT_EQ(st, BlockStatus::kOk);
  }(f.sim, f.rapilog, ack_latency));
  f.sim.Run();
  // Microseconds, not a disk revolution.
  EXPECT_LT(ack_latency, Duration::Micros(10));
}

TEST(RapiLogDeviceTest, FlushIsNearlyFree) {
  Fixture f;
  Duration flush_latency;
  f.sim.Spawn([](Simulator& s, RapiLogDevice& d, Duration& lat) -> Task<void> {
    co_await d.Write(0, Block(4096, 1), false);
    const TimePoint t0 = s.now();
    const BlockStatus st = co_await d.Flush();
    lat = s.now() - t0;
    EXPECT_EQ(st, BlockStatus::kOk);
  }(f.sim, f.rapilog, flush_latency));
  f.sim.RunFor(Duration::Millis(1));
  EXPECT_LT(flush_latency, Duration::Micros(5));
}

TEST(RapiLogDeviceTest, DrainEventuallyWritesThrough) {
  Fixture f;
  f.sim.Spawn([](RapiLogDevice& d) -> Task<void> {
    for (uint64_t i = 0; i < 8; ++i) {
      co_await d.Write(i * 8, Block(4096, static_cast<uint8_t>(i)), false);
    }
  }(f.rapilog));
  f.sim.Run();  // quiescence: drain finishes
  EXPECT_EQ(f.rapilog.buffered_bytes(), 0u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(f.disk.image().IsDurable(i * 8)) << i;
  }
  EXPECT_GE(f.rapilog.stats().drained_writes.value(), 8);
}

TEST(RapiLogDeviceTest, ReadYourWritesBeforeDrain) {
  Fixture f;
  std::vector<uint8_t> got(4096);
  f.sim.Spawn([](RapiLogDevice& d, std::vector<uint8_t>& out) -> Task<void> {
    co_await d.Write(16, Block(4096, 0xAA), false);
    // Read immediately: data is still only in the trusted buffer.
    const BlockStatus st = co_await d.Read(16, out);
    EXPECT_EQ(st, BlockStatus::kOk);
  }(f.rapilog, got));
  f.sim.Run();
  EXPECT_EQ(got, Block(4096, 0xAA));
}

TEST(RapiLogDeviceTest, TailBlockAbsorption) {
  Fixture f;
  f.sim.Spawn([](RapiLogDevice& d) -> Task<void> {
    // Rewrite the same tail block five times (group-commit pattern).
    for (int v = 0; v < 5; ++v) {
      co_await d.Write(100, Block(512, static_cast<uint8_t>(v)), false);
    }
  }(f.rapilog));
  f.sim.RunFor(Duration::Micros(50));  // before any mechanical write lands
  EXPECT_GE(f.rapilog.stats().absorbed_writes.value(), 3);
  f.sim.Run();
  // Final version is what reached the disk.
  std::vector<uint8_t> out(512);
  f.disk.image().ReadDurable(100, out);
  EXPECT_EQ(out, Block(512, 4));
}

TEST(RapiLogDeviceTest, BudgetDerivedFromPowerWindow) {
  PsuParams psu;
  psu.holdup_at_full_load = Duration::Millis(16);
  psu.full_load_watts = 400;
  psu.system_load_watts = 200;  // 32 ms window
  psu.warning_latency = Duration::Micros(200);
  RapiLogOptions opt;
  opt.worst_case_drain_mbps = 40.0;
  opt.safety_factor = 0.5;
  opt.drain_start_reserve = Duration::Millis(20);
  Fixture f(opt, psu);
  // Window after warning = 32 ms - 0.2 ms; 20 ms reserved for the in-flight
  // request + the drain's first seek; (11.8 ms * 0.5) * 40 MB/s = ~236 KB.
  EXPECT_NEAR(static_cast<double>(f.rapilog.max_buffer_bytes()), 236'000,
              10'000);
}

TEST(RapiLogDeviceTest, AdmissionControlBlocksWhenFull) {
  RapiLogOptions opt;
  opt.max_buffer_bytes_override = 16 * 1024;
  Fixture f(opt);
  TimePoint fifth_write_done;
  f.sim.Spawn([](Simulator& s, RapiLogDevice& d, TimePoint& t) -> Task<void> {
    // 4 x 4 KiB fills the 16 KiB budget; the 5th must wait for a drain.
    // (LBA 1000 puts the first block mid-rotation, so the drain's mechanical
    // write costs real rotational latency.)
    for (int i = 0; i < 5; ++i) {
      co_await d.Write(1000 + static_cast<uint64_t>(i) * 8, Block(4096, 1),
                       false);
    }
    t = s.now();
  }(f.sim, f.rapilog, fifth_write_done));
  f.sim.Run();
  // The fifth ack had to wait for at least one mechanical write (> 500 us).
  EXPECT_GT(fifth_write_done - TimePoint::Origin(), Duration::Micros(500));
  EXPECT_LE(f.rapilog.stats().buffer_occupancy.max(), 16 * 1024);
}

TEST(RapiLogDeviceTest, PowerCutWithGuardLosesNothing) {
  Fixture f;
  f.sim.Spawn([](Simulator& s, Fixture& fx) -> Task<void> {
    for (uint64_t i = 0; i < 32; ++i) {
      co_await fx.rapilog.Write(i * 8, Block(4096, static_cast<uint8_t>(i)),
                                false);
    }
    // Cut mains while plenty is still buffered.
    fx.psu.CutMains();
    co_await s.Sleep(Duration::Zero());
  }(f.sim, f));
  f.sim.Run();
  EXPECT_FALSE(f.rapilog.lost_data());
  EXPECT_FALSE(f.disk.powered());
  // Every acknowledged sector is durable on the medium.
  for (uint64_t i = 0; i < 32; ++i) {
    for (uint64_t s = 0; s < 8; ++s) {
      EXPECT_TRUE(f.disk.image().IsDurable(i * 8 + s)) << i << "," << s;
    }
  }
}

TEST(RapiLogDeviceTest, PowerCutWithoutGuardLosesData) {
  RapiLogOptions opt;
  opt.enable_power_guard = false;
  // Long queue + tiny hold-up: drain cannot finish in time.
  opt.max_buffer_bytes_override = 8 * 1024 * 1024;
  PsuParams psu;
  psu.holdup_at_full_load = Duration::Millis(16);
  psu.system_load_watts = 390;  // ~16.4 ms window
  Fixture f(opt, psu);
  f.sim.Spawn([](Simulator& s, Fixture& fx) -> Task<void> {
    for (uint64_t i = 0; i < 512; ++i) {
      // Scattered (non-sequential) blocks: drain pays seeks.
      co_await fx.rapilog.Write((i * 337) % 4096 * 8, Block(4096, 1), false);
    }
    fx.psu.CutMains();
    co_await s.Sleep(Duration::Zero());
  }(f.sim, f));
  f.sim.Run();
  EXPECT_TRUE(f.rapilog.lost_data());
  EXPECT_GT(f.rapilog.stats().lost_bytes.value(), 0);
}

TEST(RapiLogDeviceTest, WritesDuringEmergencyAreNotAcked) {
  Fixture f;
  BlockStatus late_status = BlockStatus::kOk;
  f.sim.Spawn([](Simulator& s, Fixture& fx, BlockStatus& out) -> Task<void> {
    co_await fx.rapilog.Write(0, Block(512, 1), false);
    fx.psu.CutMains();
    // Wait until the warning has fired.
    co_await s.Sleep(Duration::Millis(1));
    out = co_await fx.rapilog.Write(8, Block(512, 2), false);
  }(f.sim, f, late_status));
  f.sim.Run();
  EXPECT_EQ(late_status, BlockStatus::kDeviceOff);
}

TEST(RapiLogDeviceTest, QuiesceWaitsForEmptyBuffer) {
  Fixture f;
  uint64_t buffered_at_quiesce = 1;
  f.sim.Spawn([](Fixture& fx, uint64_t& out) -> Task<void> {
    for (uint64_t i = 0; i < 16; ++i) {
      co_await fx.rapilog.Write(i * 8, Block(4096, 3), false);
    }
    co_await fx.rapilog.Quiesce();
    out = fx.rapilog.buffered_bytes();
  }(f, buffered_at_quiesce));
  f.sim.Run();
  EXPECT_EQ(buffered_at_quiesce, 0u);
}

TEST(RapiLogDeviceTest, SurvivesRestoreAndContinues) {
  Fixture f;
  f.sim.Spawn([](Simulator& s, Fixture& fx) -> Task<void> {
    co_await fx.rapilog.Write(0, Block(512, 1), false);
    fx.psu.CutMains();
    co_await s.Sleep(fx.psu.HoldupWindow() + Duration::Millis(1));
    fx.psu.RestoreMains();
    const BlockStatus st = co_await fx.rapilog.Write(8, Block(512, 2), false);
    EXPECT_EQ(st, BlockStatus::kOk);
  }(f.sim, f));
  f.sim.Run();
  EXPECT_FALSE(f.rapilog.lost_data());
  EXPECT_TRUE(f.disk.image().IsDurable(8));
}

TEST(RapiLogDeviceTest, MisalignedWriteRejected) {
  Fixture f;
  BlockStatus st = BlockStatus::kOk;
  f.sim.Spawn([](RapiLogDevice& d, BlockStatus& out) -> Task<void> {
    out = co_await d.Write(0, Block(100, 1), false);
  }(f.rapilog, st));
  f.sim.Run();
  EXPECT_EQ(st, BlockStatus::kOutOfRange);
}

}  // namespace
}  // namespace rapilog

#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace rlsim {
namespace {

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::Nanos(5).nanos(), 5);
  EXPECT_EQ(Duration::Micros(5).nanos(), 5'000);
  EXPECT_EQ(Duration::Millis(5).nanos(), 5'000'000);
  EXPECT_EQ(Duration::Seconds(5).nanos(), 5'000'000'000);
  EXPECT_EQ(Duration::SecondsF(0.5).nanos(), 500'000'000);
  EXPECT_EQ(Duration::Zero().nanos(), 0);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Millis(3);
  const Duration b = Duration::Millis(2);
  EXPECT_EQ((a + b).millis(), 5);
  EXPECT_EQ((a - b).millis(), 1);
  EXPECT_EQ((a * 4).millis(), 12);
  EXPECT_EQ((a / 3).millis(), 1);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
  EXPECT_EQ((-a).millis(), -3);
}

TEST(DurationTest, ScalarDoubleMultiply) {
  EXPECT_EQ((Duration::Seconds(1) * 0.25).millis(), 250);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Micros(999), Duration::Millis(1));
  EXPECT_EQ(Duration::Micros(1000), Duration::Millis(1));
  EXPECT_GT(Duration::Seconds(1), Duration::Millis(999));
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = Duration::Millis(1);
  d += Duration::Millis(2);
  EXPECT_EQ(d.millis(), 3);
  d -= Duration::Millis(1);
  EXPECT_EQ(d.millis(), 2);
}

TEST(DurationTest, FloatConversions) {
  EXPECT_DOUBLE_EQ(Duration::Millis(1500).ToSecondsF(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::Micros(1500).ToMillisF(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::Nanos(1500).ToMicrosF(), 1.5);
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t0 = TimePoint::Origin();
  const TimePoint t1 = t0 + Duration::Seconds(2);
  EXPECT_EQ((t1 - t0).ToSecondsF(), 2.0);
  EXPECT_EQ((t1 - Duration::Seconds(1)).nanos(), 1'000'000'000);
  TimePoint t = t0;
  t += Duration::Millis(5);
  EXPECT_EQ(t.nanos(), 5'000'000);
}

TEST(TimePointTest, Ordering) {
  const TimePoint a = TimePoint::FromNanos(10);
  const TimePoint b = TimePoint::FromNanos(20);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint::FromNanos(10));
  EXPECT_LT(a, TimePoint::Max());
}

TEST(TimeToString, Formats) {
  EXPECT_EQ(ToString(Duration::Nanos(500)), "500ns");
  EXPECT_EQ(ToString(Duration::Micros(12)), "12.000us");
  EXPECT_EQ(ToString(Duration::Millis(3)), "3.000ms");
  EXPECT_EQ(ToString(Duration::Seconds(2)), "2.000s");
}

}  // namespace
}  // namespace rlsim

// Seeded RC103: kCommit has no explicit value, so inserting a kind above
// it would silently renumber the on-disk format.
#pragma once

#include <cstdint>

namespace rldb {

enum class LogRecordType : uint8_t {
  kUpdate = 1,
  kCommit,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kUpdate;
  uint64_t key = 0;
};

class Wal {
 public:
  uint64_t Append(LogRecord rec);
  void WaitDurable(uint64_t lsn);
};

}  // namespace rldb

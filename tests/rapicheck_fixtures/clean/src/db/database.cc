#include "src/db/wal.h"

namespace rldb {

class Database {
 public:
  void Apply(const LogRecord& rec) {
    switch (rec.type) {
      case LogRecordType::kUpdate:
        applied_++;
        break;
      case LogRecordType::kCommit:
        committed_++;
        break;
    }
  }

  uint64_t Commit(uint64_t key) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.key = key;
    const uint64_t lsn = wal_.Append(rec);
    wal_.WaitDurable(lsn);
    return lsn;
  }

  void Update(uint64_t key) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.key = key;
    const uint64_t lsn = wal_.Append(rec);
    wal_.WaitDurable(lsn);
  }

 private:
  Wal wal_;
  uint64_t applied_ = 0;
  uint64_t committed_ = 0;
};

}  // namespace rldb

// Seeded RC203: the prepare handler acknowledges receipt internally but
// never constructs the kVote reply — the coordinator would wait forever.
#include "src/shard/wire.h"

namespace rlshard {

class ShardNode {
 public:
  void Receive(const WireMessage& msg) {
    switch (msg.type) {
      case MsgType::kPrepareReq:
        HandlePrepare(msg);
        break;
      case MsgType::kVote:
        unexpected_++;
        break;
    }
  }

 private:
  void HandlePrepare(const WireMessage& msg) {
    prepared_ = msg.global_id;
  }

  // Produces the reply kind, but nothing on the Receive path ever calls it.
  void NudgeVote(uint64_t global_id) {
    WireMessage vote;
    vote.type = MsgType::kVote;
    vote.global_id = global_id;
    Send(vote);
  }

  void Send(const WireMessage& msg);

  uint64_t prepared_ = 0;
  uint64_t unexpected_ = 0;
};

}  // namespace rlshard

// Seeded RC101: the redo switch in database.cc misses kDelete and has no
// default.
#pragma once

#include <cstdint>

namespace rldb {

enum class LogRecordType : uint8_t {
  kUpdate = 1,
  kDelete = 2,
  kCommit = 3,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kUpdate;
  uint64_t key = 0;
};

class Wal {
 public:
  uint64_t Append(LogRecord rec);
  void WaitDurable(uint64_t lsn);
};

}  // namespace rldb

#include "src/shard/wire.h"

namespace rlshard {

class TxnCoordinator {
 public:
  void Begin(uint64_t global_id) {
    WireMessage req;
    req.type = MsgType::kPrepareReq;
    req.global_id = global_id;
    Send(req);
  }

  void Receive(const WireMessage& msg) {
    switch (msg.type) {
      case MsgType::kVote:
        votes_++;
        break;
      case MsgType::kPrepareReq:
        unexpected_++;
        break;
    }
  }

 private:
  void Send(const WireMessage& msg);

  uint64_t votes_ = 0;
  uint64_t unexpected_ = 0;
};

}  // namespace rlshard

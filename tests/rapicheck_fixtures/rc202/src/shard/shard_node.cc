// Seeded RC202: the endpoint's dispatch swallows unlisted protocol kinds
// in a `default:` — a new MsgType would be ignored instead of failing
// closed.
#include "src/shard/wire.h"

namespace rlshard {

class ShardNode {
 public:
  void Receive(const WireMessage& msg) {
    switch (msg.type) {
      case MsgType::kPrepareReq:
        HandlePrepare(msg);
        break;
      default:
        break;
    }
  }

 private:
  void HandlePrepare(const WireMessage& msg) {
    WireMessage vote;
    vote.type = MsgType::kVote;
    vote.global_id = msg.global_id;
    Send(vote);
  }

  void Send(const WireMessage& msg);
};

}  // namespace rlshard

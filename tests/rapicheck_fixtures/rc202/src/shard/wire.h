#pragma once

#include <cstdint>

namespace rlshard {

enum class MsgType : uint8_t {
  kPrepareReq = 1,
  kVote = 2,
};

struct WireMessage {
  MsgType type = MsgType::kPrepareReq;
  uint64_t global_id = 0;
};

}  // namespace rlshard

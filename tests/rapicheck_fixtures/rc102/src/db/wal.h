// Seeded RC102: kReserved is produced (database.cc) but never consumed —
// no case label or comparison ever reads it.
#pragma once

#include <cstdint>

namespace rldb {

enum class LogRecordType : uint8_t {
  kUpdate = 1,
  kReserved = 2,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kUpdate;
  uint64_t key = 0;
};

class Wal {
 public:
  uint64_t Append(LogRecord rec);
  void WaitDurable(uint64_t lsn);
};

}  // namespace rldb

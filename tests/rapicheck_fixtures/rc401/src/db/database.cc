// Seeded RC401: Checkpoint takes checkpoint_mutex_ then apply_mutex_;
// Apply takes them in the opposite order — a classic ABBA deadlock.
#include <cstdint>

namespace rldb {

class Mutex {
 public:
  int Lock();
};

class Database {
 public:
  void Checkpoint() {
    auto a = checkpoint_mutex_->Lock();
    auto b = apply_mutex_->Lock();
    FlushPages();
  }

  void Apply() {
    auto a = apply_mutex_->Lock();
    auto b = checkpoint_mutex_->Lock();
    FlushPages();
  }

 private:
  void FlushPages();

  Mutex* checkpoint_mutex_ = nullptr;
  Mutex* apply_mutex_ = nullptr;
};

}  // namespace rldb

// Seeded RC104: the redo path partitions by kRedoSlices in one place but
// open-codes 64 in another — the two can drift apart.
#include "src/db/wal.h"

namespace rldb {

class Database {
 public:
  void Apply(const LogRecord& rec) {
    switch (rec.type) {
      case LogRecordType::kUpdate:
        slice_counts_[rec.key % kRedoSlices]++;
        break;
      case LogRecordType::kCommit:
        committed_++;
        break;
    }
  }

  void ResetSlices() {
    for (int i = 0; i < 64; ++i) {
      slice_counts_[i] = 0;
    }
  }

  uint64_t Commit(uint64_t key) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.key = key;
    const uint64_t lsn = wal_.Append(rec);
    wal_.WaitDurable(lsn);
    return lsn;
  }

  void Update(uint64_t key) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.key = key;
    const uint64_t lsn = wal_.Append(rec);
    wal_.WaitDurable(lsn);
  }

 private:
  Wal wal_;
  uint64_t slice_counts_[kRedoSlices] = {};
  uint64_t committed_ = 0;
};

}  // namespace rldb

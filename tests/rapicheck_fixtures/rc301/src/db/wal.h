// Minimal WAL surface satisfying every RC contract: explicit on-disk
// values, every kind produced and consumed, redo switch exhaustive.
#pragma once

#include <cstdint>

namespace rldb {

inline constexpr int kRedoSlices = 64;

enum class LogRecordType : uint8_t {
  kUpdate = 1,
  kCommit = 2,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kUpdate;
  uint64_t key = 0;
};

class Wal {
 public:
  uint64_t Append(LogRecord rec);
  void WaitDurable(uint64_t lsn);
};

}  // namespace rldb

// Seeded RC201: QueryAnswer's dispatch switch lives in txn_coordinator.cc,
// but the contract registers src/shard/shard_node.cc as its handler — the
// kinds have no case label where the protocol says they must be handled.
#pragma once

#include <cstdint>

namespace rlshard {

enum class MsgType : uint8_t {
  kPrepareReq = 1,
  kVote = 2,
};

enum class QueryAnswer : uint8_t {
  kAbort = 0,
  kCommit = 1,
};

struct WireMessage {
  MsgType type = MsgType::kPrepareReq;
  uint64_t global_id = 0;
  uint8_t flag = 0;
};

}  // namespace rlshard

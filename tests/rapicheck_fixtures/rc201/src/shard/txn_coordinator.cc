#include "src/shard/wire.h"

namespace rlshard {

class TxnCoordinator {
 public:
  void Begin(uint64_t global_id) {
    WireMessage req;
    req.type = MsgType::kPrepareReq;
    req.global_id = global_id;
    Send(req);
  }

  void Receive(const WireMessage& msg) {
    switch (msg.type) {
      case MsgType::kVote:
        votes_++;
        break;
      case MsgType::kPrepareReq:
        unexpected_++;
        break;
    }
  }

  uint8_t AnswerQuery(uint64_t global_id) {
    QueryAnswer answer = QueryAnswer::kAbort;
    if (IsCommitted(global_id)) {
      answer = QueryAnswer::kCommit;
    }
    return static_cast<uint8_t>(answer);
  }

  // The dispatch over the answer lives here — but the QueryAnswer contract
  // names shard_node.cc as the handler, so this coverage does not count.
  void OnAnswer(QueryAnswer answer) {
    switch (answer) {
      case QueryAnswer::kAbort:
        aborts_++;
        break;
      case QueryAnswer::kCommit:
        commits_++;
        break;
    }
  }

 private:
  bool IsCommitted(uint64_t global_id);
  void Send(const WireMessage& msg);

  uint64_t votes_ = 0;
  uint64_t unexpected_ = 0;
  uint64_t aborts_ = 0;
  uint64_t commits_ = 0;
};

}  // namespace rlshard

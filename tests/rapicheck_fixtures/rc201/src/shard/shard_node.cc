#include "src/shard/wire.h"

namespace rlshard {

class ShardNode {
 public:
  void Receive(const WireMessage& msg) {
    switch (msg.type) {
      case MsgType::kPrepareReq:
        HandlePrepare(msg);
        break;
      case MsgType::kVote:
        unexpected_++;
        break;
    }
  }

 private:
  void HandlePrepare(const WireMessage& msg) {
    WireMessage vote;
    vote.type = MsgType::kVote;
    vote.global_id = msg.global_id;
    Send(vote);
  }

  void Send(const WireMessage& msg);

  uint64_t unexpected_ = 0;
};

}  // namespace rlshard

#include "src/power/power.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/check.h"
#include "src/sim/simulator.h"

namespace rlpow {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::TimePoint;

class RecordingSink : public PowerSink {
 public:
  void OnPowerFailWarning(Duration remaining) override {
    warnings.push_back(remaining);
  }
  void OnPowerDown() override { ++downs; }
  void OnPowerRestore() override { ++restores; }

  std::vector<Duration> warnings;
  int downs = 0;
  int restores = 0;
};

TEST(PowerSupplyTest, HoldupScalesWithLoad) {
  Simulator sim;
  PsuParams p;
  p.holdup_at_full_load = Duration::Millis(16);
  p.full_load_watts = 400;
  p.system_load_watts = 200;
  PowerSupply psu(sim, p);
  // Half load -> double hold-up.
  EXPECT_EQ(psu.HoldupWindow().millis(), 32);
}

TEST(PowerSupplyTest, UpsExtendsWindow) {
  Simulator sim;
  PsuParams p;
  p.ups_runtime = Duration::Seconds(60);
  PowerSupply psu(sim, p);
  EXPECT_GT(psu.HoldupWindow(), Duration::Seconds(60));
}

TEST(PowerSupplyTest, WarningThenDownSequence) {
  Simulator sim;
  PsuParams p;
  p.warning_latency = Duration::Micros(200);
  PowerSupply psu(sim, p);
  RecordingSink sink;
  psu.Register(&sink);

  psu.CutMains();
  EXPECT_FALSE(psu.mains_on());
  EXPECT_TRUE(psu.rails_on());

  sim.RunUntil(TimePoint::Origin() + Duration::Micros(300));
  ASSERT_EQ(sink.warnings.size(), 1u);
  EXPECT_EQ(sink.warnings[0], psu.GuaranteedWindowAfterWarning());
  EXPECT_EQ(sink.downs, 0);
  EXPECT_TRUE(psu.rails_on());

  sim.Run();
  EXPECT_EQ(sink.downs, 1);
  EXPECT_FALSE(psu.rails_on());
}

TEST(PowerSupplyTest, RailsDropExactlyAtHoldup) {
  Simulator sim;
  PowerSupply psu(sim, PsuParams{});
  RecordingSink sink;
  psu.Register(&sink);
  const Duration window = psu.HoldupWindow();
  psu.CutMains();
  sim.RunUntil(TimePoint::Origin() + window - Duration::Nanos(1));
  EXPECT_TRUE(psu.rails_on());
  sim.RunUntil(TimePoint::Origin() + window);
  EXPECT_FALSE(psu.rails_on());
}

TEST(PowerSupplyTest, ShortOutageAbsorbed) {
  Simulator sim;
  PowerSupply psu(sim, PsuParams{});
  RecordingSink sink;
  psu.Register(&sink);
  psu.CutMains();
  // Mains return within the hold-up window: no power-down, no restore event,
  // and the stale scheduled callbacks are ignored.
  sim.RunUntil(TimePoint::Origin() + Duration::Millis(1));
  psu.RestoreMains();
  sim.Run();
  EXPECT_EQ(sink.downs, 0);
  EXPECT_EQ(sink.restores, 0);
  EXPECT_TRUE(psu.rails_on());
}

TEST(PowerSupplyTest, RestoreAfterDownFiresRestore) {
  Simulator sim;
  PowerSupply psu(sim, PsuParams{});
  RecordingSink sink;
  psu.Register(&sink);
  psu.CutMains();
  sim.Run();
  EXPECT_EQ(sink.downs, 1);
  psu.RestoreMains();
  EXPECT_EQ(sink.restores, 1);
  EXPECT_TRUE(psu.rails_on());
  EXPECT_TRUE(psu.mains_on());
}

TEST(PowerSupplyTest, CutIsIdempotentWhileOut) {
  Simulator sim;
  PowerSupply psu(sim, PsuParams{});
  RecordingSink sink;
  psu.Register(&sink);
  psu.CutMains();
  psu.CutMains();
  sim.Run();
  EXPECT_EQ(sink.warnings.size(), 1u);
  EXPECT_EQ(sink.downs, 1);
}

TEST(PowerSupplyTest, SecondOutageAfterRestoreWorks) {
  Simulator sim;
  PowerSupply psu(sim, PsuParams{});
  RecordingSink sink;
  psu.Register(&sink);
  psu.CutMains();
  sim.Run();
  psu.RestoreMains();
  psu.CutMains();
  sim.Run();
  EXPECT_EQ(sink.downs, 2);
  EXPECT_EQ(sink.warnings.size(), 2u);
}

TEST(PowerSupplyTest, SinksNotifiedInRegistrationOrder) {
  Simulator sim;
  PowerSupply psu(sim, PsuParams{});
  std::vector<int> order;
  class OrderSink : public PowerSink {
   public:
    OrderSink(std::vector<int>& o, int id) : order_(o), id_(id) {}
    void OnPowerDown() override { order_.push_back(id_); }

   private:
    std::vector<int>& order_;
    int id_;
  };
  OrderSink a(order, 1);
  OrderSink b(order, 2);
  psu.Register(&a);
  psu.Register(&b);
  psu.CutMains();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PowerSupplyTest, InvalidParamsRejected) {
  Simulator sim;
  PsuParams p;
  p.system_load_watts = 0;
  EXPECT_THROW(PowerSupply(sim, p), rlsim::CheckFailure);
  PsuParams q;
  q.warning_latency = Duration::Seconds(10);
  EXPECT_THROW(PowerSupply(sim, q), rlsim::CheckFailure);
}

TEST(PowerSupplyTest, DoubleRegistrationRejected) {
  Simulator sim;
  PowerSupply psu(sim, PsuParams{});
  RecordingSink sink;
  psu.Register(&sink);
  EXPECT_THROW(psu.Register(&sink), rlsim::CheckFailure);
}

}  // namespace
}  // namespace rlpow

#include "src/storage/block_device.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace rlstor {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;

std::vector<uint8_t> Pattern(size_t bytes, uint8_t fill) {
  return std::vector<uint8_t>(bytes, fill);
}

SimBlockDevice::Options SmallDisk(WriteCachePolicy policy) {
  SimBlockDevice::Options opts;
  opts.geometry.sector_count = 1 << 20;  // 512 MiB
  opts.cache_policy = policy;
  return opts;
}

TEST(BlockDeviceTest, WriteThenReadBack) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  BlockStatus wst = BlockStatus::kDeviceOff;
  std::vector<uint8_t> got(4096);
  sim.Spawn([](SimBlockDevice& d, BlockStatus& ws,
               std::vector<uint8_t>& out) -> Task<void> {
    const auto data = Pattern(4096, 0x5A);
    ws = co_await d.Write(100, data, /*fua=*/false);
    co_await d.Read(100, out);
  }(dev, wst, got));
  sim.Run();
  EXPECT_EQ(wst, BlockStatus::kOk);
  EXPECT_EQ(got, Pattern(4096, 0x5A));
}

TEST(BlockDeviceTest, CachedWriteIsFastButVolatile) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  Duration write_latency;
  sim.Spawn([](Simulator& s, SimBlockDevice& d, Duration& lat) -> Task<void> {
    const TimePoint start = s.now();
    co_await d.Write(100, Pattern(4096, 1), /*fua=*/false);
    lat = s.now() - start;
    // Cut power right after the ack, before any destage completes.
    d.PowerLoss();
  }(sim, dev, write_latency));
  sim.Run();
  EXPECT_LT(write_latency, Duration::Millis(1));
  // The acknowledged data did not survive: the sector reverted to unwritten.
  EXPECT_EQ(dev.image().state(100), SectorState::kUnwritten);
}

TEST(BlockDeviceTest, FuaWriteIsSlowButDurable) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  Duration write_latency;
  sim.Spawn([](Simulator& s, SimBlockDevice& d, Duration& lat) -> Task<void> {
    const TimePoint start = s.now();
    co_await d.Write(100, Pattern(4096, 1), /*fua=*/true);
    lat = s.now() - start;
    d.PowerLoss();
  }(sim, dev, write_latency));
  sim.Run();
  // Mechanical access: far slower than a cache transfer (tens of µs).
  EXPECT_GT(write_latency, Duration::Micros(200));
  EXPECT_TRUE(dev.image().IsDurable(100));
}

TEST(BlockDeviceTest, FlushHardensCachedWrites) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  BlockStatus flush_status = BlockStatus::kDeviceOff;
  sim.Spawn([](SimBlockDevice& d, BlockStatus& fs) -> Task<void> {
    for (uint64_t i = 0; i < 10; ++i) {
      co_await d.Write(100 + i * 8, Pattern(512, 2), /*fua=*/false);
    }
    fs = co_await d.Flush();
    d.PowerLoss();
  }(dev, flush_status));
  sim.Run();
  EXPECT_EQ(flush_status, BlockStatus::kOk);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(dev.image().IsDurable(100 + i * 8)) << i;
  }
}

TEST(BlockDeviceTest, WriteThroughIsDurableWithoutFlush) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteThrough),
                     MakeDefaultHdd());
  sim.Spawn([](SimBlockDevice& d) -> Task<void> {
    co_await d.Write(50, Pattern(512, 3), /*fua=*/false);
    d.PowerLoss();
  }(dev));
  sim.Run();
  EXPECT_TRUE(dev.image().IsDurable(50));
}

TEST(BlockDeviceTest, BbwcIsFastAndDurable) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kBatteryBackedWriteBack),
                     MakeDefaultHdd());
  Duration write_latency;
  sim.Spawn([](Simulator& s, SimBlockDevice& d, Duration& lat) -> Task<void> {
    const TimePoint start = s.now();
    co_await d.Write(70, Pattern(4096, 4), /*fua=*/false);
    lat = s.now() - start;
    d.PowerLoss();
  }(sim, dev, write_latency));
  sim.Run();
  EXPECT_LT(write_latency, Duration::Millis(1));
  EXPECT_TRUE(dev.image().IsDurable(70));
}

TEST(BlockDeviceTest, DestageEventuallyHardensWithoutFlush) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  sim.Spawn([](SimBlockDevice& d) -> Task<void> {
    co_await d.Write(200, Pattern(8192, 5), /*fua=*/false);
  }(dev));
  sim.Run();  // run to quiescence: destage loop drains the cache
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(dev.image().IsDurable(200 + i)) << i;
  }
  EXPECT_EQ(dev.dirty_sectors(), 0u);
  EXPECT_GE(dev.stats().destaged_sectors.value(), 16);
}

TEST(BlockDeviceTest, RequestsAfterPowerLossFail) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  BlockStatus w = BlockStatus::kOk;
  BlockStatus r = BlockStatus::kOk;
  BlockStatus f = BlockStatus::kOk;
  dev.PowerLoss();
  std::vector<uint8_t> out(512);
  sim.Spawn([](SimBlockDevice& d, BlockStatus& w2, BlockStatus& r2,
               BlockStatus& f2, std::vector<uint8_t>& o) -> Task<void> {
    w2 = co_await d.Write(1, Pattern(512, 1), false);
    r2 = co_await d.Read(1, o);
    f2 = co_await d.Flush();
  }(dev, w, r, f, out));
  sim.Run();
  EXPECT_EQ(w, BlockStatus::kDeviceOff);
  EXPECT_EQ(r, BlockStatus::kDeviceOff);
  EXPECT_EQ(f, BlockStatus::kDeviceOff);
  EXPECT_EQ(dev.stats().failed_requests.value(), 3);
}

TEST(BlockDeviceTest, PowerRestoreRevivesDevice) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  dev.PowerLoss();
  dev.PowerRestore();
  BlockStatus w = BlockStatus::kDeviceOff;
  sim.Spawn([](SimBlockDevice& d, BlockStatus& ws) -> Task<void> {
    ws = co_await d.Write(1, Pattern(512, 1), false);
  }(dev, w));
  sim.Run();
  EXPECT_EQ(w, BlockStatus::kOk);
}

TEST(BlockDeviceTest, OutOfRangeRejected) {
  Simulator sim;
  SimBlockDevice::Options opts = SmallDisk(WriteCachePolicy::kWriteBack);
  opts.geometry.sector_count = 16;
  SimBlockDevice dev(sim, opts, MakeDefaultHdd());
  BlockStatus w1 = BlockStatus::kOk;
  BlockStatus w2 = BlockStatus::kOk;
  sim.Spawn([](SimBlockDevice& d, BlockStatus& a, BlockStatus& b)
                -> Task<void> {
    a = co_await d.Write(16, Pattern(512, 1), false);   // past the end
    b = co_await d.Write(15, Pattern(1024, 1), false);  // straddles the end
  }(dev, w1, w2));
  sim.Run();
  EXPECT_EQ(w1, BlockStatus::kOutOfRange);
  EXPECT_EQ(w2, BlockStatus::kOutOfRange);
}

TEST(BlockDeviceTest, MisalignedSizeRejected) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  BlockStatus w = BlockStatus::kOk;
  sim.Spawn([](SimBlockDevice& d, BlockStatus& ws) -> Task<void> {
    ws = co_await d.Write(0, Pattern(100, 1), false);
  }(dev, w));
  sim.Run();
  EXPECT_EQ(w, BlockStatus::kOutOfRange);
}

TEST(BlockDeviceTest, SequentialCachedWritesThroughputReasonable) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteBack),
                     MakeDefaultHdd());
  // 16 MiB of sequential cached writes should complete far faster than the
  // medium could do them synchronously at random.
  const TimePoint start = sim.now();
  sim.Spawn([](SimBlockDevice& d) -> Task<void> {
    const auto chunk = Pattern(64 * 1024, 6);
    for (uint64_t i = 0; i < 256; ++i) {
      co_await d.Write(i * 128, chunk, false);
    }
    co_await d.Flush();
  }(dev));
  sim.Run();
  const Duration elapsed = sim.now() - start;
  // 16 MiB at ~media rate (about 1 MiB per 8.3 ms revolution) is ~140 ms;
  // allow generous headroom but far less than random-access time.
  EXPECT_LT(elapsed, Duration::Millis(500));
  EXPECT_GT(elapsed, Duration::Millis(50));
}

TEST(BlockDeviceTest, SyncCommitPatternLimitedByRotation) {
  Simulator sim;
  SimBlockDevice dev(sim, SmallDisk(WriteCachePolicy::kWriteThrough),
                     MakeDefaultHdd());
  // Sequential-append FUA writes with think time between them: each one
  // should wait for the platter, i.e. ~one commit per revolution.
  int commits = 0;
  sim.Spawn([](Simulator& s, SimBlockDevice& d, int& n) -> Task<void> {
    uint64_t lba = 0;
    for (int i = 0; i < 50; ++i) {
      co_await s.Sleep(Duration::Micros(300));  // "transaction work"
      co_await d.Write(lba, Pattern(512, 7), /*fua=*/true);
      lba += 1;
      ++n;
    }
  }(sim, dev, commits));
  sim.Run();
  EXPECT_EQ(commits, 50);
  const double seconds = sim.now().ToSecondsF();
  const double commits_per_sec = commits / seconds;
  // 7200 rpm = 120 revolutions/s. Expect commit rate in that ballpark and
  // definitely nowhere near cache speeds.
  EXPECT_LT(commits_per_sec, 200.0);
  EXPECT_GT(commits_per_sec, 60.0);
}

}  // namespace
}  // namespace rlstor

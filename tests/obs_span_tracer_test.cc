#include "src/obs/span_tracer.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/chrome_trace.h"
#include "src/sim/simulator.h"

namespace rlobs {
namespace {

using rlsim::Duration;
using rlsim::Simulator;

TEST(SpanTracerTest, RecordsInstantsAndSpans) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);

  sim.Schedule(Duration::Micros(1), [&] {
    sim.EmitTrace("disk", "power-loss", 7);
    const uint64_t id = sim.EmitSpanBegin("wal", "commit-wait", 42);
    EXPECT_NE(id, 0u);
    sim.EmitSpanEnd(id, "wal", "commit-wait", 43);
  });
  sim.Run();

  ASSERT_EQ(tracer.records().size(), 3u);
  const auto& recs = tracer.records();
  EXPECT_EQ(recs[0].type, SpanTracer::EventType::kInstant);
  EXPECT_EQ(tracer.name(recs[0].actor), "disk");
  EXPECT_EQ(tracer.name(recs[0].kind), "power-loss");
  EXPECT_EQ(recs[0].arg, 7);
  EXPECT_EQ(recs[1].type, SpanTracer::EventType::kBegin);
  EXPECT_EQ(recs[1].arg, 42);
  EXPECT_EQ(recs[2].type, SpanTracer::EventType::kEnd);
  EXPECT_EQ(recs[2].arg, 43);
  EXPECT_EQ(recs[1].span_id, recs[2].span_id);
  EXPECT_EQ(recs[1].at_ns, Duration::Micros(1).nanos());
}

TEST(SpanTracerTest, SpanScopeClosesOnDestruction) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);

  sim.Schedule(Duration::Micros(1), [&] {
    rlsim::SpanScope scope(sim, "wal", "flush-cycle", 1);
    scope.set_end_arg(9);
  });
  sim.Run();

  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].type, SpanTracer::EventType::kBegin);
  EXPECT_EQ(tracer.records()[1].type, SpanTracer::EventType::kEnd);
  EXPECT_EQ(tracer.records()[1].arg, 9);
}

TEST(SpanTracerTest, NoTracerMeansNoSpanIdsAndNoCost) {
  Simulator sim;  // no tracer installed
  sim.Schedule(Duration::Micros(1), [&] {
    EXPECT_EQ(sim.EmitSpanBegin("wal", "commit-wait"), 0u);
    sim.EmitSpanEnd(0, "wal", "commit-wait");  // accepted no-op
  });
  sim.Run();
  // Regression for the span-id leak: an untraced run must never move the
  // allocator, or enabling tracing mid-run would change ids already handed
  // out (and the "tracing is free" determinism claim would be a lie).
  EXPECT_EQ(sim.span_ids_allocated(), 0u);
}

TEST(SpanTracerTest, MidRunTracerInstallAllocatesOnlyWhileInstalled) {
  Simulator sim;
  SpanTracer tracer;
  sim.Schedule(Duration::Micros(1), [&] {
    EXPECT_EQ(sim.EmitSpanBegin("wal", "untraced"), 0u);
  });
  sim.Schedule(Duration::Micros(2), [&] { sim.set_tracer(&tracer); });
  sim.Schedule(Duration::Micros(3), [&] {
    const uint64_t id = sim.EmitSpanBegin("wal", "traced");
    EXPECT_EQ(id, 1u);  // first id ever allocated, despite the earlier span
    sim.EmitSpanEnd(id, "wal", "traced");
  });
  sim.Schedule(Duration::Micros(4), [&] { sim.set_tracer(nullptr); });
  sim.Schedule(Duration::Micros(5), [&] {
    EXPECT_EQ(sim.EmitSpanBegin("wal", "untraced-again"), 0u);
  });
  sim.Run();
  EXPECT_EQ(sim.span_ids_allocated(), 1u);
}

TEST(SpanTracerTest, ParentIdIsRecordedAndExported) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);
  sim.Schedule(Duration::Micros(1), [&] {
    rlsim::SpanScope root(sim, "coord", "2pc-execute", 5);
    ASSERT_NE(root.id(), 0u);
    rlsim::SpanScope child(sim, "shard", "shard-prepare", 5, root.id());
    EXPECT_NE(child.id(), root.id());
  });
  sim.Run();

  ASSERT_EQ(tracer.records().size(), 4u);
  const auto& recs = tracer.records();
  EXPECT_EQ(recs[0].parent, 0u);                // root begin
  EXPECT_EQ(recs[1].parent, recs[0].span_id);   // child begin
  const std::string json = ExportChromeTrace(tracer);
  EXPECT_NE(json.find("\"parent\":" + std::to_string(recs[0].span_id)),
            std::string::npos);
}

TEST(SpanTracerTest, InterningDeduplicatesNames) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);
  sim.Schedule(Duration::Micros(1), [&] {
    for (int i = 0; i < 100; ++i) {
      sim.EmitTrace("disk", "destage", static_cast<uint32_t>(i));
    }
  });
  sim.Run();
  EXPECT_EQ(tracer.records().size(), 100u);
  EXPECT_EQ(tracer.name_count(), 2u);  // "disk", "destage"
}

// Recording the same seeded run twice must export byte-identical JSON —
// the determinism contract tracing rides on.
TEST(SpanTracerTest, SameRunExportsIdenticalTraces) {
  auto run = [] {
    Simulator sim(1234);
    SpanTracer tracer;
    sim.set_tracer(&tracer);
    for (int i = 1; i <= 20; ++i) {
      sim.Schedule(Duration::Micros(i), [&sim, i] {
        const uint64_t id =
            sim.EmitSpanBegin(i % 2 ? "wal" : "disk", "op", i);
        sim.EmitTrace("psu", "tick", static_cast<uint32_t>(i));
        sim.EmitSpanEnd(id, i % 2 ? "wal" : "disk", "op", i);
      });
    }
    sim.Run();
    return ExportChromeTrace(tracer);
  };
  EXPECT_EQ(run(), run());
}

TEST(ChromeTraceTest, ExportShapeAndPidAssignment) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);
  sim.Schedule(Duration::Micros(5), [&] {
    // "alpha" emits after "zeta", but pids are assigned in sorted name
    // order, so alpha must still get pid 1.
    const uint64_t z = sim.EmitSpanBegin("zeta", "z-op");
    sim.EmitSpanEnd(z, "zeta", "z-op");
    sim.EmitTrace("alpha", "a-instant", 1);
  });
  sim.Run();

  const std::string json = ExportChromeTrace(tracer);
  EXPECT_NE(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // alpha sorts first -> pid 1; zeta -> pid 2.
  EXPECT_NE(json.find("\"args\":{\"name\":\"alpha\"}"), std::string::npos);
  const size_t alpha_meta = json.find("\"pid\":1,\"tid\":0,\"args\":{\"name\":\"alpha\"}");
  const size_t zeta_meta = json.find("\"pid\":2,\"tid\":0,\"args\":{\"name\":\"zeta\"}");
  EXPECT_NE(alpha_meta, std::string::npos);
  EXPECT_NE(zeta_meta, std::string::npos);
}

TEST(ChromeTraceTest, UnmatchedBeginIsClosedAtLastTimestamp) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);
  sim.Schedule(Duration::Micros(1), [&] {
    sim.EmitSpanBegin("wal", "stuck-op");  // never ended
  });
  sim.Schedule(Duration::Micros(9), [&] { sim.EmitTrace("wal", "later", 0); });
  sim.Run();

  const std::string json = ExportChromeTrace(tracer);
  // Closed at 9us: begin ts 1.000, dur 8.000.
  EXPECT_NE(json.find("\"ts\":1.000,\"dur\":8.000"), std::string::npos);
}

TEST(ChromeTraceTest, OverlappingSpansLandOnDistinctLanes) {
  Simulator sim;
  SpanTracer tracer;
  sim.set_tracer(&tracer);
  uint64_t a = 0;
  sim.Schedule(Duration::Micros(1), [&] {
    a = sim.EmitSpanBegin("disk", "io-a");
  });
  sim.Schedule(Duration::Micros(2), [&] {
    const uint64_t b = sim.EmitSpanBegin("disk", "io-b");
    sim.EmitSpanEnd(b, "disk", "io-b");
  });
  sim.Schedule(Duration::Micros(3), [&] {
    sim.EmitSpanEnd(a, "disk", "io-a");
  });
  sim.Run();

  const std::string json = ExportChromeTrace(tracer);
  // io-a occupies lane 1 over [1us,3us]; io-b overlaps it and must move to
  // lane 2 of the same pid.
  EXPECT_NE(json.find("\"name\":\"io-a\",\"ph\":\"X\",\"pid\":1,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"io-b\",\"ph\":\"X\",\"pid\":1,\"tid\":2"),
            std::string::npos);
}

}  // namespace
}  // namespace rlobs

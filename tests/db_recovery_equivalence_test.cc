// Property test for partitioned parallel redo: for a sweep of seeded
// workload/crash mixes — commits, aborts, deletes, prepared-in-doubt 2PC
// txns, mid-run checkpoints, torn log tails — recovery with K redo
// partitions (K in {1,2,4,8}) must produce exactly the same committed
// contents, in-doubt set, and replay-work accounting as the classic
// sequential replay. The pre-crash phase is a pure function of the seed, so
// each (seed, K) re-run crashes on bit-identical disk images and only the
// recovery path differs.
//
// Also the regression home for the journal-header fix: recovery reads the
// header page exactly once, shared by the replay decision, the embedded
// metadata, and the fuzzy horizons.
#include "src/db/database.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/db/errors.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

constexpr uint64_t kKeySpace = 400;

// Everything recovery must reproduce identically at any partition count.
struct Fingerprint {
  uint64_t content_hash = 0;
  uint64_t committed_count = 0;
  std::vector<uint64_t> in_doubt;
  int64_t recovered_records = 0;
  int64_t redo_skipped_by_horizon = 0;
  int64_t in_doubt_recovered = 0;

  bool operator==(const Fingerprint&) const = default;
};

std::vector<uint8_t> MakeValue(const EngineProfile& profile, uint64_t seed) {
  std::vector<uint8_t> v(profile.value_bytes);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(seed * 131 + i * 7);
  }
  return v;
}

// One client streaming randomized transactions until the plug is pulled.
// Lock timeouts abort the transaction inside Put/Remove; EngineHalted is
// the machine dying under us — both are normal ends here.
Task<void> Workload(Simulator& sim, Database& db, uint64_t seed,
                    const bool* stop) {
  rlsim::Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const EngineProfile& profile = db.options().profile;
  int prepares_left = (seed % 3 == 0) ? 2 : 0;
  try {
    while (!*stop) {
      const uint64_t txn = db.Begin();
      const int ops = 1 + static_cast<int>(rng.Next() % 5);
      bool dead = false;
      for (int o = 0; o < ops && !dead; ++o) {
        const uint64_t key = rng.Next() % kKeySpace;
        const DbStatus st =
            (rng.Next() % 8 == 0)
                ? co_await db.Remove(txn, key)
                : co_await db.Put(txn, key, MakeValue(profile, rng.Next()));
        dead = st == DbStatus::kLockTimeout;
      }
      if (dead) {
        continue;  // the engine already aborted the txn
      }
      if (rng.Next() % 10 == 0) {
        co_await db.Abort(txn);
        continue;
      }
      if (prepares_left > 0 && rng.Next() % 4 == 0) {
        --prepares_left;
        // Left in doubt on purpose: pins the replay point far back, which
        // is exactly the state the fuzzy per-slice horizons pay off in.
        co_await db.Prepare(txn, /*global_id=*/1000 + rng.Next() % 1000);
        continue;
      }
      co_await db.Commit(txn);
      if (rng.Next() % 25 == 0) {
        co_await db.Checkpoint();
      }
      co_await sim.Sleep(Duration::Micros(rng.Next() % 200));
    }
  } catch (const EngineHalted&) {
  }
}

// Runs the seeded workload, pulls the plug at a seed-derived instant,
// optionally tears the newest durable log sector, then recovers with the
// given partition count and fingerprints the result.
Fingerprint RunScenario(uint64_t seed, uint32_t partitions) {
  Simulator sim(seed);
  NativeCpu cpu(sim);
  SimBlockDevice data(sim,
                      SimBlockDevice::Options{.geometry = {.sector_count =
                                                               1 << 18},
                                              .cache_policy =
                                                  WriteCachePolicy::kWriteBack,
                                              .name = "data"},
                      rlstor::MakeDefaultSsd());
  SimBlockDevice log(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 18},
                                             .cache_policy =
                                                 WriteCachePolicy::kWriteBack,
                                             .name = "log"},
                     rlstor::MakeDefaultSsd());
  DbOptions options;
  options.profile = PostgresLikeProfile();
  options.profile.checkpoint_dirty_pages = 64;
  options.pool_pages = 256;
  options.journal_pages = 200;

  std::unique_ptr<Database> db;
  bool stop = false;
  sim.Spawn([](Simulator& s, NativeCpu& c, SimBlockDevice& d,
               SimBlockDevice& l, DbOptions opt, std::unique_ptr<Database>& out,
               uint64_t sd, const bool* st) -> Task<void> {
    out = co_await Database::Open(s, c, d, l, opt);
    for (int w = 0; w < 3; ++w) {
      s.Spawn(Workload(s, *out, sd * 7 + w, st), "equiv-client");
    }
  }(sim, cpu, data, log, options, db, seed, &stop));

  // Crash instant varies with the seed so the sweep hits fresh-format,
  // mid-checkpoint, and long-log states alike.
  sim.RunFor(Duration::Millis(20 + seed % 60));
  data.PowerLoss();
  log.PowerLoss();
  stop = true;
  sim.Run();  // drain: clients unwind with EngineHalted

  // Torn tail for a third of the seeds: scribble the newest durable log
  // sector. ScanLog must salvage the valid prefix identically in all modes.
  if (seed % 3 == 1) {
    const auto durable = log.image().DurableSectorList();
    if (!durable.empty()) {
      std::vector<uint8_t> junk(rlstor::kSectorSize);
      for (size_t i = 0; i < junk.size(); ++i) {
        junk[i] = static_cast<uint8_t>(seed + i * 13);
      }
      log.image().WriteDurable(durable.back(), junk);
    }
  }

  // Tear down the dead engine and recover with the requested partitioning.
  sim.Spawn([](std::unique_ptr<Database>& d) -> Task<void> {
    co_await d->Close();
    d.reset();
  }(db));
  sim.Run();
  data.PowerRestore();
  log.PowerRestore();

  DbOptions recover_options = options;
  recover_options.recovery.partitions = partitions;
  Fingerprint fp;
  sim.Spawn([](Simulator& s, NativeCpu& c, SimBlockDevice& d,
               SimBlockDevice& l, DbOptions opt,
               Fingerprint& out) -> Task<void> {
    auto rdb = co_await Database::Open(s, c, d, l, opt);
    out.content_hash = co_await rdb->ContentHash();
    out.committed_count = co_await rdb->CommittedCount();
    out.in_doubt = rdb->InDoubtGlobalIds();
    out.recovered_records = rdb->stats().recovered_records.value();
    out.redo_skipped_by_horizon =
        rdb->stats().redo_skipped_by_horizon.value();
    out.in_doubt_recovered = rdb->stats().in_doubt_recovered.value();
    // The journal-header regression: exactly one header page read per
    // recovery, shared by every consumer.
    EXPECT_EQ(rdb->stats().journal_header_reads.value(), 1);
    co_await rdb->CheckTreeStructure();
    co_await rdb->Close();
  }(sim, cpu, data, log, recover_options, fp));
  sim.Run();
  return fp;
}

TEST(RecoveryEquivalenceTest, PartitionCountNeverChangesTheRecoveredState) {
  constexpr uint64_t kSeeds = 200;
  const uint32_t partition_counts[] = {1, 2, 4, 8};
  uint64_t nonempty = 0;
  uint64_t with_in_doubt = 0;
  uint64_t with_horizon_skips = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Fingerprint base = RunScenario(seed, partition_counts[0]);
    for (size_t k = 1; k < std::size(partition_counts); ++k) {
      const Fingerprint got = RunScenario(seed, partition_counts[k]);
      ASSERT_EQ(base, got)
          << "seed " << seed << ": K=" << partition_counts[k]
          << " diverged from sequential (hash " << std::hex
          << got.content_hash << " vs " << base.content_hash << ")";
    }
    nonempty += base.committed_count > 0 ? 1 : 0;
    with_in_doubt += base.in_doubt.empty() ? 0 : 1;
    with_horizon_skips += base.redo_skipped_by_horizon > 0 ? 1 : 0;
  }
  // The sweep must actually exercise the interesting states, not vacuously
  // compare empty databases.
  EXPECT_GT(nonempty, kSeeds / 2);
  EXPECT_GT(with_in_doubt, 10u);
  EXPECT_GT(with_horizon_skips, 10u);
}

// Same-state determinism at a fixed K: partitioned recovery is itself a
// pure function of the disk images (prerequisite for the byte-identical
// claim at any worker count).
TEST(RecoveryEquivalenceTest, PartitionedRecoveryIsDeterministic) {
  for (uint64_t seed : {3u, 14u, 59u}) {
    const Fingerprint a = RunScenario(seed, 8);
    const Fingerprint b = RunScenario(seed, 8);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rldb

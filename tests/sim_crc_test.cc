// CRC-32C: the slice-by-8 production implementation must agree with the
// one-byte-at-a-time table-driven reference for every input — all small
// lengths (covering every tail-loop count), unaligned starts, random
// payloads, seed chaining — plus the standard known-answer vector.
#include "src/sim/crc32.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/sim/rng.h"

namespace {

std::span<const uint8_t> Bytes(const char* s) {
  return {reinterpret_cast<const uint8_t*>(s), std::strlen(s)};
}

TEST(Crc32cTest, KnownAnswerVector) {
  // The canonical CRC-32C check value (RFC 3720 appendix / every
  // implementation's self-test): crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(rlsim::Crc32c(Bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(rlsim::Crc32cTableDriven(Bytes("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(rlsim::Crc32c({}), 0u);
  EXPECT_EQ(rlsim::Crc32c({}), rlsim::Crc32cTableDriven({}));
  // An empty update must preserve any seed, not reset it.
  EXPECT_EQ(rlsim::Crc32c({}, 0xDEADBEEF), 0xDEADBEEFu);
  EXPECT_EQ(rlsim::Crc32cTableDriven({}, 0xDEADBEEF), 0xDEADBEEFu);
}

TEST(Crc32cTest, SliceBy8MatchesTableOnEveryLength) {
  // 0..129 covers: pure tail loop (<8), exactly one word, word+tail for
  // every tail size, and many words. Random payloads so table symmetry
  // can't mask a byte-order bug.
  rlsim::Rng rng(7);
  std::vector<uint8_t> buf(130);
  for (uint8_t& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  for (size_t len = 0; len <= buf.size(); ++len) {
    const std::span<const uint8_t> data(buf.data(), len);
    EXPECT_EQ(rlsim::Crc32c(data), rlsim::Crc32cTableDriven(data))
        << "length " << len;
  }
}

TEST(Crc32cTest, UnalignedStartsMatch) {
  // The word loop uses memcpy loads; verify every misalignment of the
  // buffer start against the reference.
  rlsim::Rng rng(11);
  std::vector<uint8_t> buf(64 + 16);
  for (uint8_t& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  for (size_t offset = 0; offset < 16; ++offset) {
    const std::span<const uint8_t> data(buf.data() + offset, 64);
    EXPECT_EQ(rlsim::Crc32c(data), rlsim::Crc32cTableDriven(data))
        << "offset " << offset;
  }
}

TEST(Crc32cTest, SeedsAndChainingMatch) {
  rlsim::Rng rng(13);
  std::vector<uint8_t> buf(257);
  for (uint8_t& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const std::span<const uint8_t> all(buf);
  for (uint32_t seed : {0u, 1u, 0xFFFFFFFFu, 0x12345678u}) {
    EXPECT_EQ(rlsim::Crc32c(all, seed),
              rlsim::Crc32cTableDriven(all, seed))
        << "seed " << seed;
  }
  // Feeding a split buffer through the seed parameter equals one pass, for
  // both implementations and any cut point (this is what WAL record
  // verification relies on).
  for (size_t cut : {0u, 1u, 7u, 8u, 9u, 128u, 256u, 257u}) {
    const std::span<const uint8_t> head(buf.data(), cut);
    const std::span<const uint8_t> tail(buf.data() + cut, buf.size() - cut);
    EXPECT_EQ(rlsim::Crc32c(tail, rlsim::Crc32c(head)), rlsim::Crc32c(all))
        << "cut " << cut;
    EXPECT_EQ(rlsim::Crc32cTableDriven(tail, rlsim::Crc32cTableDriven(head)),
              rlsim::Crc32cTableDriven(all))
        << "cut " << cut;
  }
}

TEST(Crc32cTest, LargeRandomBuffersMatch) {
  rlsim::Rng rng(17);
  for (size_t size : {4096u, 4097u, 4099u, 65536u + 3u}) {
    std::vector<uint8_t> buf(size);
    for (uint8_t& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_EQ(rlsim::Crc32c(buf), rlsim::Crc32cTableDriven(buf))
        << "size " << size;
  }
}

}  // namespace

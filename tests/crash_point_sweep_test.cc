// Property sweeps over fault timing.
//
// 1. WAL prefix property: cut device power at a sweep of instants while a
//    writer streams records; whatever recovery scans back must be a dense
//    LSN prefix, and must include everything whose WaitDurable completed
//    before the cut.
// 2. Full-testbed determinism: the same seed reproduces a fault campaign
//    bit-for-bit (commit counts and verification results identical).
// 3. UPS configuration: with a UPS the RapiLog budget is effectively
//    unbounded and the guarantee still holds.
#include <gtest/gtest.h>

#include <memory>

#include "src/db/errors.h"
#include "src/db/wal.h"
#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"
#include "src/workload/kv_workload.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;
using rlstor::SimBlockDevice;

class WalCrashPointTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(WalCrashPointTest, ValidPrefixAtEveryCutInstant) {
  const Duration cut_at = Duration::Micros(GetParam());
  Simulator sim(3);
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 18}},
                     rlstor::MakeDefaultHdd());
  const EngineProfile profile = InnodbLikeProfile();  // 512-byte blocks
  LogWriter writer(sim, dev, profile, DurabilityMode::kSync);
  writer.ResumeAt(0, 1);

  uint64_t acked_durable_lsn = 0;
  // A writer streaming small records and tracking what was acked durable.
  sim.Spawn([](Simulator& s, LogWriter& w, uint64_t& acked) -> Task<void> {
    try {
      for (int i = 0; i < 10'000; ++i) {
        LogRecord rec;
        rec.type = LogRecordType::kUpdate;
        rec.txn_id = 1;
        rec.key = static_cast<uint64_t>(i);
        rec.value.assign(48, static_cast<uint8_t>(i));
        const uint64_t lsn = w.Append(std::move(rec));
        co_await w.WaitDurable(lsn);
        acked = lsn;
        co_await s.Sleep(Duration::Micros(50));
      }
    } catch (const EngineHalted&) {
      // Writer shut down mid-wait; fine.
    }
  }(sim, writer, acked_durable_lsn));

  sim.Schedule(cut_at, [&dev] { dev.PowerLoss(); });
  sim.RunFor(cut_at + Duration::Seconds(1));

  // Recover: scan the durable medium.
  dev.PowerRestore();
  LogScanResult scan;
  sim.Spawn([](SimBlockDevice& d, const EngineProfile& p,
               LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(d, p, 0);
  }(dev, profile, scan));
  sim.Run();

  // Dense LSN prefix.
  for (size_t i = 0; i < scan.records.size(); ++i) {
    ASSERT_EQ(scan.records[i].lsn, i + 1);
  }
  // Everything acknowledged durable before the cut is present.
  EXPECT_GE(scan.records.size(), acked_durable_lsn)
      << "acked-durable records missing after cut at " << GetParam() << "us";
}

INSTANTIATE_TEST_SUITE_P(CutInstants, WalCrashPointTest,
                         ::testing::Values(100, 1'000, 5'000, 9'137, 17'000,
                                           33'000, 50'000, 77'777, 120'000,
                                           250'000));

rlfault::VerifyResult RunSeededCampaign(uint64_t seed, int64_t* committed) {
  // Client RNG streams derive from their ids; fold the seed in so different
  // seeds run genuinely different workloads, not just different cut times.
  Simulator sim(seed);
  rlharness::TestbedOptions opts;
  opts.mode = rlharness::DeploymentMode::kRapiLog;
  opts.disks = rlharness::DiskSetup::kSharedHdd;
  opts.db.pool_pages = 512;
  opts.db.journal_pages = 300;
  opts.db.profile.checkpoint_dirty_pages = 128;
  rlharness::Testbed bed(sim, opts);
  rlwork::KvWorkload kv(sim, rlwork::KvConfig{.key_space = 1000});
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk,
               rlfault::VerifyResult& out) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 200);
    auto stop = std::make_shared<bool>(false);
    const int id_base = static_cast<int>(s.rng().UniformInt(0, 1 << 20)) * 8;
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), id_base + c, stop.get(), &chk));
    }
    co_await s.Sleep(Duration::Millis(s.rng().UniformInt(80, 250)));
    b.CutPower();
    *stop = true;
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecover();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, kv, checker, verdict));
  sim.Run();
  *committed = kv.stats().committed.value();
  return verdict;
}

TEST(DeterminismTest, SameSeedSameCampaignOutcome) {
  int64_t committed_a = 0;
  int64_t committed_b = 0;
  const auto a = RunSeededCampaign(1234, &committed_a);
  const auto b = RunSeededCampaign(1234, &committed_b);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(committed_a, committed_b);
  EXPECT_EQ(a.keys_checked, b.keys_checked);
  EXPECT_GT(committed_a, 0);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  int64_t committed_a = 0;
  int64_t committed_b = 0;
  RunSeededCampaign(1, &committed_a);
  RunSeededCampaign(2, &committed_b);
  EXPECT_NE(committed_a, committed_b);
}

TEST(UpsTest, UpsGivesEffectivelyUnboundedBudgetAndKeepsGuarantee) {
  Simulator sim(9);
  rlharness::TestbedOptions opts;
  opts.mode = rlharness::DeploymentMode::kRapiLog;
  opts.disks = rlharness::DiskSetup::kSharedHdd;
  opts.psu.ups_runtime = Duration::Seconds(60);
  opts.db.pool_pages = 512;
  opts.db.journal_pages = 300;
  opts.db.profile.checkpoint_dirty_pages = 128;
  rlharness::Testbed bed(sim, opts);
  EXPECT_GT(bed.rapilog()->max_buffer_bytes(), 1024ull * 1024 * 1024);

  rlwork::KvWorkload kv(sim, rlwork::KvConfig{.key_space = 1000});
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk,
               rlfault::VerifyResult& out) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 200);
    auto stop = std::make_shared<bool>(false);
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), c, stop.get(), &chk));
    }
    co_await s.Sleep(Duration::Millis(200));
    b.CutPower();
    *stop = true;
    // The UPS carries the drain for up to a minute; then rails drop.
    co_await s.Sleep(Duration::Seconds(70));
    co_await b.RestorePowerAndRecover();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, kv, checker, verdict));
  sim.Run();
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
  EXPECT_FALSE(bed.rapilog()->lost_data());
}

}  // namespace
}  // namespace rldb

// Property sweeps over fault timing.
//
// 1. WAL prefix property: cut device power at a sweep of instants while a
//    writer streams records; whatever recovery scans back must be a dense
//    LSN prefix, and must include everything whose WaitDurable completed
//    before the cut.
// 2. Full-testbed determinism: the same seed reproduces a fault campaign
//    bit-for-bit (commit counts and verification results identical).
// 3. UPS configuration: with a UPS the RapiLog budget is effectively
//    unbounded and the guarantee still holds.
// 4. Replicated sweep: quorum-ack shipping across a sweep of cut instants —
//    at every instant a majority of replicas holds every acked sector and
//    recovery from the best replica image loses nothing.
#include <gtest/gtest.h>

#include <memory>

#include "src/db/errors.h"
#include "src/db/wal.h"
#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"
#include "src/workload/kv_workload.h"
#include "tests/testlib/campaign_util.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;
using rlstor::SimBlockDevice;

class WalCrashPointTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(WalCrashPointTest, ValidPrefixAtEveryCutInstant) {
  const Duration cut_at = Duration::Micros(GetParam());
  Simulator sim(3);
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 18}},
                     rlstor::MakeDefaultHdd());
  const EngineProfile profile = InnodbLikeProfile();  // 512-byte blocks
  LogWriter writer(sim, dev, profile, DurabilityMode::kSync);
  writer.ResumeAt(0, 1);

  uint64_t acked_durable_lsn = 0;
  // A writer streaming small records and tracking what was acked durable.
  sim.Spawn([](Simulator& s, LogWriter& w, uint64_t& acked) -> Task<void> {
    try {
      for (int i = 0; i < 10'000; ++i) {
        LogRecord rec;
        rec.type = LogRecordType::kUpdate;
        rec.txn_id = 1;
        rec.key = static_cast<uint64_t>(i);
        rec.value.assign(48, static_cast<uint8_t>(i));
        const uint64_t lsn = w.Append(std::move(rec));
        co_await w.WaitDurable(lsn);
        acked = lsn;
        co_await s.Sleep(Duration::Micros(50));
      }
    } catch (const EngineHalted&) {
      // Writer shut down mid-wait; fine.
    }
  }(sim, writer, acked_durable_lsn));

  sim.Schedule(cut_at, [&dev] { dev.PowerLoss(); });
  sim.RunFor(cut_at + Duration::Seconds(1));

  // Recover: scan the durable medium.
  dev.PowerRestore();
  LogScanResult scan;
  sim.Spawn([](SimBlockDevice& d, const EngineProfile& p,
               LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(d, p, 0);
  }(dev, profile, scan));
  sim.Run();

  // Dense LSN prefix.
  for (size_t i = 0; i < scan.records.size(); ++i) {
    ASSERT_EQ(scan.records[i].lsn, i + 1);
  }
  // Everything acknowledged durable before the cut is present.
  EXPECT_GE(scan.records.size(), acked_durable_lsn)
      << "acked-durable records missing after cut at " << GetParam() << "us";
}

INSTANTIATE_TEST_SUITE_P(CutInstants, WalCrashPointTest,
                         ::testing::Values(100, 1'000, 5'000, 9'137, 17'000,
                                           33'000, 50'000, 77'777, 120'000,
                                           250'000));

TEST(DeterminismTest, SameSeedSameCampaignOutcome) {
  const auto a = rltest::RunSeededCampaign(1234);
  const auto b = rltest::RunSeededCampaign(1234);
  EXPECT_TRUE(a.verdict.ok());
  EXPECT_TRUE(b.verdict.ok());
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.verdict.keys_checked, b.verdict.keys_checked);
  EXPECT_GT(a.committed, 0);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const auto a = rltest::RunSeededCampaign(1);
  const auto b = rltest::RunSeededCampaign(2);
  EXPECT_NE(a.committed, b.committed);
}

TEST(UpsTest, UpsGivesEffectivelyUnboundedBudgetAndKeepsGuarantee) {
  Simulator sim(9);
  rlharness::TestbedOptions opts =
      rltest::CampaignOptions(rlharness::DeploymentMode::kRapiLog,
                              rlharness::DiskSetup::kSharedHdd);
  opts.psu.ups_runtime = Duration::Seconds(60);
  rlharness::Testbed bed(sim, opts);
  EXPECT_GT(bed.rapilog()->max_buffer_bytes(), 1024ull * 1024 * 1024);

  rlwork::KvWorkload kv(sim, rlwork::KvConfig{.key_space = 1000});
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk,
               rlfault::VerifyResult& out) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 200);
    auto stop = rltest::SpawnFleet(s, w, b.db(), 0, 4, &chk);
    co_await s.Sleep(Duration::Millis(200));
    b.CutPower();
    *stop = true;
    // The UPS carries the drain for up to a minute; then rails drop.
    co_await s.Sleep(Duration::Seconds(70));
    co_await b.RestorePowerAndRecover();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, kv, checker, verdict));
  sim.Run();
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
  EXPECT_FALSE(bed.rapilog()->lost_data());
}

// 4. Replicated sweep: the quorum-ack topology under the same
// cut-at-every-instant discipline. At each instant: the frozen quorum cursor
// is honoured by at least a majority of replicas (per-sector audit), and
// restoring from the best replica image loses no acked commit.
class ReplicatedCrashPointTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ReplicatedCrashPointTest, QuorumHoldsAtEveryCutInstant) {
  const Duration cut_at = Duration::Millis(GetParam());
  Simulator sim(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  rlharness::TestbedOptions opt = rltest::ReplicatedCampaignOptions(
      rlharness::DeploymentMode::kNative, rlrep::ShipMode::kQuorumAck,
      /*replicas=*/3);
  rlharness::Testbed bed(sim, opt);
  rlwork::KvWorkload kv(sim, rltest::WriteHeavyKv());
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  size_t replicas_passing = 0;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, Duration cut,
               rlfault::VerifyResult& out, size_t& passing) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 300);
    auto stop = rltest::SpawnFleet(s, w, b.db(), 0, 4, &chk);
    co_await s.Sleep(cut);
    b.CutPower();
    *stop = true;
    // Frames already on the wire drain into the replicas; then audit the
    // quorum promise against the cursor frozen at the cut.
    co_await s.Sleep(Duration::Seconds(1));
    for (size_t r = 0; r < b.replica_count(); ++r) {
      if (rlfault::AuditReplicaDurability(*b.shipper(), b.replica(r)).ok()) {
        ++passing;
      }
    }
    co_await b.RestorePowerAndRecoverFromReplica();
    out = co_await chk.VerifyAfterRecovery(b.db());
    co_await b.db().CheckTreeStructure();
  }(sim, bed, kv, checker, cut_at, verdict, replicas_passing));
  sim.Run();

  EXPECT_GE(replicas_passing, bed.shipper()->quorum_size());
  EXPECT_GT(verdict.keys_checked, 0u);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
}

INSTANTIATE_TEST_SUITE_P(CutInstants, ReplicatedCrashPointTest,
                         ::testing::Values(60, 130, 275, 410, 590));

// 5. Redo-mode sweep: every cut instant is recovered twice — classic
// sequential replay and partitioned parallel redo — on bit-identical crash
// images (the pre-crash phase is a pure function of the seed and the
// recovery knobs only exist on the reopen path). The two recoveries must
// agree on the durability verdict, the commit count, and the full committed
// contents.
struct RedoModeOutcome {
  rlfault::VerifyResult verdict;
  int64_t committed = 0;
  uint64_t content_hash = 0;
  int64_t recovered_records = 0;
  int64_t redo_skipped_by_horizon = 0;
};

RedoModeOutcome RunRedoModeEpisode(int64_t cut_ms, uint32_t partitions) {
  Simulator sim(static_cast<uint64_t>(cut_ms) * 2654435761u + 5);
  rlharness::TestbedOptions opt = rltest::CampaignOptions(
      rlharness::DeploymentMode::kRapiLog, rlharness::DiskSetup::kSharedHdd);
  opt.db.recovery.partitions = partitions;
  rlharness::Testbed bed(sim, opt);
  rlwork::KvWorkload kv(sim, rltest::WriteHeavyKv());
  rlfault::DurabilityChecker checker;
  RedoModeOutcome out;
  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, Duration cut,
               RedoModeOutcome& res) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 200);
    auto stop = rltest::SpawnFleet(s, w, b.db(), 0, 4, &chk);
    co_await s.Sleep(cut);
    b.CutPower();
    *stop = true;
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecover();
    res.verdict = co_await chk.VerifyAfterRecovery(b.db());
    res.content_hash = co_await b.db().ContentHash();
    res.recovered_records = b.db().stats().recovered_records.value();
    res.redo_skipped_by_horizon =
        b.db().stats().redo_skipped_by_horizon.value();
    co_await b.db().CheckTreeStructure();
  }(sim, bed, kv, checker, Duration::Millis(cut_ms), out));
  sim.Run();
  out.committed = kv.stats().committed.value();
  return out;
}

class RedoModeCrashPointTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(RedoModeCrashPointTest, BothRedoModesAgreeAtEveryCutInstant) {
  const RedoModeOutcome seq = RunRedoModeEpisode(GetParam(), 1);
  const RedoModeOutcome part = RunRedoModeEpisode(GetParam(), 8);
  EXPECT_TRUE(seq.verdict.ok()) << seq.verdict.Summary();
  EXPECT_TRUE(part.verdict.ok()) << part.verdict.Summary();
  // Identical pre-crash images must yield identical workloads...
  EXPECT_EQ(seq.committed, part.committed);
  EXPECT_GT(seq.committed, 0);
  EXPECT_EQ(seq.verdict.keys_checked, part.verdict.keys_checked);
  // ...and identical recovered state and replay accounting.
  EXPECT_EQ(seq.content_hash, part.content_hash);
  EXPECT_EQ(seq.recovered_records, part.recovered_records);
  EXPECT_EQ(seq.redo_skipped_by_horizon, part.redo_skipped_by_horizon);
}

INSTANTIATE_TEST_SUITE_P(CutInstants, RedoModeCrashPointTest,
                         ::testing::Values(80, 140, 230, 350, 520));

}  // namespace
}  // namespace rldb

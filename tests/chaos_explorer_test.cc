// Chaos explorer: schedule format round-trip, episode determinism, a small
// bounded corpus that must hold every oracle, and the planted-violation
// pipeline (power-guard ablation found, shrunk to a minimal schedule, and
// replayed bit-for-bit).
#include <gtest/gtest.h>

#include <string>

#include "src/faults/chaos/chaos_explorer.h"
#include "src/faults/chaos/schedule.h"

namespace rlchaos {
namespace {

TEST(ChaosScheduleTest, SerializeParseRoundTrip) {
  GeneratorOptions gen;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const EpisodeConfig cfg = GenerateEpisode(seed, gen);
    EpisodeConfig back;
    std::string error;
    ASSERT_TRUE(Parse(Serialize(cfg), &back, &error)) << error;
    EXPECT_EQ(cfg, back) << "seed " << seed;
  }
}

TEST(ChaosScheduleTest, ParseRejectsMalformedInput) {
  EpisodeConfig cfg;
  std::string error;
  EXPECT_FALSE(Parse("", &cfg, &error));
  EXPECT_FALSE(Parse("not-a-schedule v1\nend\n", &cfg, &error));
  EXPECT_FALSE(Parse("rapilog-chaos-schedule v1\nseed 1\n", &cfg, &error))
      << "missing end marker must be rejected";
  EXPECT_FALSE(Parse(
      "rapilog-chaos-schedule v1\nevent 10 warp-core-breach 0\nend\n", &cfg,
      &error));
  EXPECT_FALSE(
      Parse("rapilog-chaos-schedule v1\nflux-capacitance 88\nend\n", &cfg,
            &error));
}

TEST(ChaosScheduleTest, GenerationIsDeterministic) {
  GeneratorOptions gen;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    EXPECT_EQ(GenerateEpisode(seed, gen), GenerateEpisode(seed, gen));
  }
}

TEST(ChaosEpisodeTest, SameConfigSameOutcomeHash) {
  // A replicated multi-fault episode — the widest code path — must be a
  // pure function of its config.
  GeneratorOptions gen;
  EpisodeConfig cfg;
  for (uint64_t seed = 1;; ++seed) {
    cfg = GenerateEpisode(seed, gen);
    if (cfg.replicas > 0 && cfg.events.size() >= 4) {
      break;
    }
    ASSERT_LT(seed, 200u) << "generator never produced a replicated episode";
  }
  const EpisodeOutcome a = RunEpisode(cfg);
  const EpisodeOutcome b = RunEpisode(cfg);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(ChaosExplorerTest, BoundedCorpusHoldsEveryOracle) {
  // The PR-gate corpus: a handful of randomized multi-fault episodes across
  // deployment modes, disk setups, and replication topologies. Every oracle
  // must hold; a violation here is a real durability bug (or a regression
  // in the harness's fault semantics) and the report names the seed.
  ExplorerOptions opts;
  opts.base_seed = 1;
  opts.episodes = 6;
  const ExplorerReport report = ChaosExplorer(opts).Run();
  EXPECT_EQ(report.episodes_run, 6u);
  EXPECT_TRUE(report.ok()) << report.violations << " violating episodes; "
                           << "first failing seed "
                           << (report.failures.empty()
                                   ? 0
                                   : report.failures[0].original.seed);
  EXPECT_NE(report.corpus_hash, 0u);
}

TEST(ChaosExplorerTest, AblationFoundShrunkAndReplayable) {
  // Plant the known violation: RapiLog with the power guard disabled loses
  // acked commits when a cut lands inside recovery/checkpoint churn. The
  // explorer must find it, shrink it to at most 3 fault events, and the
  // minimal schedule must replay bit-for-bit.
  ExplorerOptions opts;
  opts.base_seed = 16;  // first guard-off failure in the nightly seed walk
  opts.episodes = 1;
  opts.gen.power_guard = false;
  opts.gen.force_rapilog = true;
  opts.gen.allow_replication = false;
  opts.gen.run_us_min = 600'000;
  opts.gen.run_us_max = 900'000;
  const ExplorerReport report = ChaosExplorer(opts).Run();
  ASSERT_EQ(report.failures.size(), 1u)
      << "the planted guard-off violation was not found";
  const ShrunkFailure& f = report.failures[0];
  EXPECT_FALSE(f.shrunk.outcome.ok());
  EXPECT_LE(f.shrunk.minimal.events.size(), 3u)
      << Serialize(f.shrunk.minimal);
  EXPECT_GT(f.shrunk.outcome.lost_writes, 0u);

  // Replay: serialize, parse back, re-run — identical outcome hash.
  EpisodeConfig replayed;
  std::string error;
  ASSERT_TRUE(Parse(Serialize(f.shrunk.minimal), &replayed, &error)) << error;
  const EpisodeOutcome again = RunEpisode(replayed);
  EXPECT_EQ(again.Hash(), f.shrunk.outcome.Hash());
  EXPECT_EQ(again.violations, f.shrunk.outcome.violations);

  // And the same schedule with the guard re-enabled is clean: the violation
  // is the ablation's, not the harness's.
  EpisodeConfig guarded = f.shrunk.minimal;
  guarded.power_guard = true;
  EXPECT_TRUE(RunEpisode(guarded).ok());
}

}  // namespace
}  // namespace rlchaos

// Regression tests for engine teardown after faults: Database::Close must
// unwind every parked client coroutine (lock waiters, durability waiters,
// dirty-page throttle, pending page reads) so that no frame still
// referencing the engine survives into simulator teardown.
//
// These tests guard against two bugs found by the E8 campaign:
//   * lock waiters resumed by their stale timeout events after the engine
//     was freed (use-after-free into the lock table), and
//   * a commit parked forever on a pending-read completion whose reader
//     unwound with an exception — its apply-mutex guard then released into
//     freed memory at simulator destruction.
#include <gtest/gtest.h>

#include <memory>

#include "src/db/database.h"
#include "src/db/errors.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;

struct Fixture {
  Fixture()
      : sim(std::make_unique<Simulator>()),
        cpu(std::make_unique<NativeCpu>(*sim)),
        data(std::make_unique<SimBlockDevice>(
            *sim,
            SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20},
                                    .name = "data"},
            rlstor::MakeDefaultSsd())),
        log(std::make_unique<SimBlockDevice>(
            *sim,
            SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20},
                                    .name = "log"},
            rlstor::MakeDefaultSsd())) {}

  Task<void> OpenDb() {
    DbOptions opts;
    opts.pool_pages = 256;
    opts.journal_pages = 150;
    opts.profile.checkpoint_dirty_pages = 64;
    db = co_await Database::Open(*sim, *cpu, *data, *log, opts);
  }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<NativeCpu> cpu;
  std::unique_ptr<SimBlockDevice> data;
  std::unique_ptr<SimBlockDevice> log;
  std::unique_ptr<Database> db;
};

TEST(TeardownTest, CloseUnparksDurabilityAndLockWaiters) {
  Fixture f;
  int unwound = 0;
  int still_parked_markers = 0;
  f.sim->Spawn([](Fixture& fx, int& done, int& parked) -> Task<void> {
    co_await fx.OpenDb();
    // Kill the log device: commits can never become durable.
    fx.log->PowerLoss();
    // Client 1 blocks in WaitDurable; clients 2..N queue on client 1's lock.
    for (int i = 0; i < 6; ++i) {
      fx.sim->Spawn([](Fixture& fx2, int& d, int& p) -> Task<void> {
        ++p;
        try {
          const uint64_t txn = fx2.db->Begin();
          std::vector<uint8_t> v(fx2.db->options().profile.value_bytes, 1);
          const DbStatus put = co_await fx2.db->Put(txn, 42, v);
          if (put == DbStatus::kOk) {
            co_await fx2.db->Commit(txn);
          }
        } catch (const EngineHalted&) {
        }
        --p;
        ++d;
      }(fx, done, parked));
    }
    co_await fx.sim->Sleep(Duration::Millis(50));
    co_await fx.db->Close();
    co_await fx.sim->Sleep(Duration::Seconds(2));
  }(f, unwound, still_parked_markers));
  f.sim->Run();
  f.db.reset();
  // All six clients finished one way or another; none still parked.
  EXPECT_EQ(unwound, 6);
  EXPECT_EQ(still_parked_markers, 0);
  // Destroying the simulator with the engine already gone must be safe.
  f.sim.reset();
}

TEST(TeardownTest, PendingReadExceptionReleasesWaiters) {
  Fixture f;
  int finished = 0;
  f.sim->Spawn([](Fixture& fx, int& done) -> Task<void> {
    co_await fx.OpenDb();
    // Populate enough data that reads miss the pool.
    for (uint64_t k = 0; k < 500; ++k) {
      const uint64_t txn = fx.db->Begin();
      std::vector<uint8_t> v(fx.db->options().profile.value_bytes, 2);
      co_await fx.db->Put(txn, k, v);
      co_await fx.db->Commit(txn);
    }
    co_await fx.db->Checkpoint();
    // Force the hot pages out by churning the (small) pool.
    for (uint64_t k = 0; k < 500; ++k) {
      co_await fx.db->ReadCommitted(k, nullptr);
    }
    // Two readers race to the same cold page while the data device dies
    // mid-read: the first reader's exception must resolve the pending-read
    // record so the second unwinds too instead of parking forever.
    for (int i = 0; i < 4; ++i) {
      fx.sim->Spawn([](Fixture& fx2, int& d) -> Task<void> {
        try {
          co_await fx2.db->ReadCommitted(3, nullptr);
        } catch (const EngineHalted&) {
        }
        ++d;
      }(fx, done));
    }
    fx.sim->Schedule(Duration::Micros(10), [&fx] { fx.data->PowerLoss(); });
    co_await fx.sim->Sleep(Duration::Seconds(1));
    co_await fx.db->Close();
  }(f, finished));
  f.sim->Run();
  EXPECT_EQ(finished, 4);
  f.db.reset();
  f.sim.reset();
}

}  // namespace
}  // namespace rldb

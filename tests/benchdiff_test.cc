#include "tools/benchdiff/benchdiff.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace benchdiff {
namespace {

std::vector<Metric> MustParse(const std::string& text) {
  std::vector<Metric> out;
  std::string error;
  EXPECT_TRUE(ParseBenchJson(text, &out, &error)) << error;
  return out;
}

int CountRule(const std::vector<lintlib::Finding>& findings,
              const std::string& rule) {
  int n = 0;
  for (const lintlib::Finding& f : findings) {
    n += f.rule == rule ? 1 : 0;
  }
  return n;
}

TEST(BenchdiffParseTest, ParsesWriterShapedJson) {
  const std::vector<Metric> m = MustParse(
      "{\"bench\":\"e13_fleet\",\"metrics\":["
      "{\"name\":\"e13.s2.txns_per_sec\",\"value\":1234.5,\"unit\":\"1/s\"},"
      "{\"name\":\"e13.s2.aborts\",\"value\":7,\"unit\":\"count\"}]}");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].name, "e13.s2.txns_per_sec");
  EXPECT_DOUBLE_EQ(m[0].value, 1234.5);
  EXPECT_EQ(m[0].unit, "1/s");
  EXPECT_EQ(m[1].name, "e13.s2.aborts");
  EXPECT_DOUBLE_EQ(m[1].value, 7.0);
}

TEST(BenchdiffParseTest, SkipsNestedRawBlocksAfterMetricsArray) {
  // BenchJsonWriter::AddRaw appends nested arrays-of-objects after the
  // metrics array; their "name" keys must not be parsed as metrics.
  const std::vector<Metric> m = MustParse(
      "{\"metrics\":["
      "{\"name\":\"real\",\"value\":1,\"unit\":\"count\"}],"
      "\"snapshots_steady\":[{\"name\":\"fake\",\"value\":9,"
      "\"unit\":\"count\"}]}");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].name, "real");
}

TEST(BenchdiffParseTest, RejectsMalformedInput) {
  std::vector<Metric> out;
  std::string error;
  EXPECT_FALSE(ParseBenchJson("{}", &out, &error));
  EXPECT_FALSE(ParseBenchJson("{\"metrics\":[", &out, &error));
  EXPECT_FALSE(ParseBenchJson("{\"metrics\":[]}", &out, &error));
  EXPECT_FALSE(ParseBenchJson(
      "{\"metrics\":[{\"name\":\"x\",\"value\":abc,\"unit\":\"u\"}]}", &out,
      &error));
}

TEST(BenchdiffDiffTest, InBandMetricsProduceNoFindings) {
  const std::vector<Metric> base = {{"tps", 100.0, "1/s"}};
  const std::vector<Metric> fresh = {{"tps", 120.0, "1/s"}};
  DiffOptions opts;  // default 0.35 band: |120-100| = 20 <= 35
  const auto findings = DiffBench(base, fresh, opts, "fresh.json");
  EXPECT_TRUE(findings.empty());
  EXPECT_FALSE(HasErrors(findings));
}

TEST(BenchdiffDiffTest, OutOfBandIsBlockingError) {
  const std::vector<Metric> base = {{"tps", 100.0, "1/s"}};
  const std::vector<Metric> fresh = {{"tps", 200.0, "1/s"}};
  const auto findings = DiffBench(base, fresh, DiffOptions{}, "fresh.json");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "BD001");
  EXPECT_EQ(findings[0].severity, "error");
  EXPECT_TRUE(HasErrors(findings));
}

TEST(BenchdiffDiffTest, PerMetricOverrideBeatsDefault) {
  const std::vector<Metric> base = {{"wall", 100.0, "s"},
                                    {"virt", 100.0, "us"}};
  const std::vector<Metric> fresh = {{"wall", 120.0, "s"},
                                     {"virt", 101.0, "us"}};
  DiffOptions opts;
  opts.overrides["virt"] = 0.0;  // deterministic metric: exact match only
  const auto findings = DiffBench(base, fresh, opts, "fresh.json");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "BD001");
  EXPECT_NE(findings[0].message.find("virt"), std::string::npos);
}

TEST(BenchdiffDiffTest, UnitChangeIsError) {
  const std::vector<Metric> base = {{"lat", 5.0, "ms"}};
  const std::vector<Metric> fresh = {{"lat", 5.0, "us"}};
  const auto findings = DiffBench(base, fresh, DiffOptions{}, "fresh.json");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "BD001");
  EXPECT_NE(findings[0].message.find("changed unit"), std::string::npos);
}

TEST(BenchdiffDiffTest, MissingAndNewMetricsAreWarnings) {
  const std::vector<Metric> base = {{"gone", 1.0, "count"}};
  const std::vector<Metric> fresh = {{"added", 2.0, "count"}};
  const auto findings = DiffBench(base, fresh, DiffOptions{}, "fresh.json");
  EXPECT_EQ(CountRule(findings, "BD002"), 1);
  EXPECT_EQ(CountRule(findings, "BD003"), 1);
  EXPECT_FALSE(HasErrors(findings));  // warnings never block
}

TEST(BenchdiffDiffTest, ZeroBaselineToleratesOnlyZero) {
  const std::vector<Metric> base = {{"violations", 0.0, "count"}};
  const std::vector<Metric> same = {{"violations", 0.0, "count"}};
  const std::vector<Metric> moved = {{"violations", 1.0, "count"}};
  EXPECT_FALSE(HasErrors(DiffBench(base, same, DiffOptions{}, "f")));
  EXPECT_TRUE(HasErrors(DiffBench(base, moved, DiffOptions{}, "f")));
}

}  // namespace
}  // namespace benchdiff

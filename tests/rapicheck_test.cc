// rapicheck tests: the cross-file model parses this repo's idioms, each RC
// rule fires on its seeded fixture tree (tests/rapicheck_fixtures/) and
// stays quiet on the clean tree, and pragmas suppress findings.
#include "tools/rapicheck/rapicheck.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "tools/lintlib/lintlib.h"

namespace {

using lintlib::Finding;
using rapicheck::AnalyzeSources;
using rapicheck::BuildModel;
using rapicheck::Config;
using rapicheck::DefaultConfig;
using rapicheck::Model;

// Runs the full pipeline (walk, strip, model, analyze with DefaultConfig)
// over one fixture tree.
std::vector<Finding> RunTree(const std::string& tree) {
  std::string error;
  const std::vector<std::string> files = lintlib::CollectFiles(
      {std::string(RAPICHECK_FIXTURE_DIR) + "/" + tree}, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_FALSE(files.empty()) << "no files under fixture tree " << tree;
  std::vector<lintlib::SourceFile> sources;
  for (const std::string& file : files) {
    std::string contents;
    EXPECT_TRUE(lintlib::ReadFile(file, &contents)) << file;
    sources.push_back(lintlib::StripSource(file, contents, "rapicheck:"));
  }
  return rapicheck::Analyze(BuildModel(std::move(sources)), DefaultConfig());
}

int CountRule(const std::vector<Finding>& findings, const char* rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

Model ModelOf(const char* path, const char* source) {
  std::vector<lintlib::SourceFile> files;
  files.push_back(lintlib::StripSource(path, source, "rapicheck:"));
  return BuildModel(std::move(files));
}

// --- Model construction -----------------------------------------------------

TEST(RapicheckModel, ParsesEnumWithExplicitValues) {
  const Model m = ModelOf("src/db/wal.h",
                          "enum class LogRecordType : uint8_t {\n"
                          "  kUpdate = 1,\n"
                          "  kCommit = 2,\n"
                          "  kImplicit,\n"
                          "};\n");
  const rapicheck::EnumDef* def = m.FindEnum("LogRecordType");
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->scoped);
  ASSERT_EQ(def->enumerators.size(), 3u);
  EXPECT_EQ(def->enumerators[0].name, "kUpdate");
  EXPECT_TRUE(def->enumerators[0].value_known);
  EXPECT_EQ(def->enumerators[0].value, 1);
  EXPECT_EQ(def->enumerators[1].line, 3);
  EXPECT_FALSE(def->enumerators[2].has_value);
}

TEST(RapicheckModel, ResolvesSwitchEnumAndCases) {
  const Model m = ModelOf("src/db/x.cc",
                          "void F(LogRecord rec) {\n"
                          "  switch (rec.type) {\n"
                          "    case LogRecordType::kUpdate:\n"
                          "      break;\n"
                          "    default:\n"
                          "      break;\n"
                          "  }\n"
                          "}\n");
  ASSERT_EQ(m.switches.size(), 1u);
  EXPECT_EQ(m.switches[0].enum_name, "LogRecordType");
  ASSERT_EQ(m.switches[0].cases.size(), 1u);
  EXPECT_EQ(m.switches[0].cases[0], "kUpdate");
  EXPECT_TRUE(m.switches[0].has_default);
  EXPECT_EQ(m.switches[0].default_line, 5);
}

TEST(RapicheckModel, RecordsFunctionCallAndLockEvents) {
  const Model m = ModelOf("src/db/x.cc",
                          "void Database::Commit() {\n"
                          "  auto guard = co_await apply_mutex_->Lock();\n"
                          "  Flush(1);\n"
                          "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "Database::Commit");
  bool saw_acquire = false;
  bool saw_flush_call = false;
  for (const rapicheck::FuncEvent& e : m.functions[0].events) {
    if (e.kind == rapicheck::FuncEvent::Kind::kAcquire &&
        e.name == "apply_mutex_") {
      saw_acquire = true;
      EXPECT_TRUE(e.scoped_lock);
    }
    if (e.kind == rapicheck::FuncEvent::Kind::kCall && e.name == "Flush") {
      saw_flush_call = true;
    }
  }
  EXPECT_TRUE(saw_acquire);
  EXPECT_TRUE(saw_flush_call);
}

TEST(RapicheckModel, ClassifiesEnumUses) {
  const Model m = ModelOf("src/db/x.cc",
                          "void F(LogRecord rec) {\n"
                          "  rec.type = LogRecordType::kCommit;\n"
                          "  if (rec.type == LogRecordType::kUpdate) {\n"
                          "    return;\n"
                          "  }\n"
                          "}\n");
  ASSERT_EQ(m.uses.size(), 2u);
  EXPECT_EQ(m.uses[0].kind, rapicheck::EnumUse::Kind::kProduce);
  EXPECT_EQ(m.uses[0].enumerator, "kCommit");
  EXPECT_EQ(m.uses[1].kind, rapicheck::EnumUse::Kind::kCompare);
  EXPECT_EQ(m.uses[1].enumerator, "kUpdate");
}

// --- Fixture trees: one seeded violation per family -------------------------

TEST(RapicheckFixtures, CleanTreeHasNoFindings) {
  const auto findings = RunTree("clean");
  EXPECT_TRUE(findings.empty()) << lintlib::FormatText(findings);
}

TEST(RapicheckFixtures, Rc101MissingSwitchCase) {
  const auto findings = RunTree("rc101");
  EXPECT_EQ(CountRule(findings, "RC101"), 1) << lintlib::FormatText(findings);
  // The uncased kind is also unhandled in the registered handler file.
  EXPECT_EQ(CountRule(findings, "RC201"), 1);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(RapicheckFixtures, Rc102UnconsumedRecordKind) {
  const auto findings = RunTree("rc102");
  EXPECT_EQ(CountRule(findings, "RC102"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(CountRule(findings, "RC201"), 1);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(RapicheckFixtures, Rc103ImplicitOnDiskValue) {
  const auto findings = RunTree("rc103");
  EXPECT_EQ(CountRule(findings, "RC103"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(RapicheckFixtures, Rc104OpenCodedConstant) {
  const auto findings = RunTree("rc104");
  EXPECT_EQ(CountRule(findings, "RC104"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, "warning");
}

TEST(RapicheckFixtures, Rc201HandlerInWrongFile) {
  const auto findings = RunTree("rc201");
  EXPECT_EQ(CountRule(findings, "RC201"), 2) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(RapicheckFixtures, Rc202SilentProtocolDefault) {
  const auto findings = RunTree("rc202");
  EXPECT_EQ(CountRule(findings, "RC202"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(RapicheckFixtures, Rc203UnreachableReply) {
  const auto findings = RunTree("rc203");
  EXPECT_EQ(CountRule(findings, "RC203"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(RapicheckFixtures, Rc301AckBeforeDurability) {
  const auto findings = RunTree("rc301");
  EXPECT_EQ(CountRule(findings, "RC301"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(RapicheckFixtures, Rc302CommitRecordNotAwaited) {
  const auto findings = RunTree("rc302");
  EXPECT_EQ(CountRule(findings, "RC302"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(RapicheckFixtures, Rc401LockOrderCycle) {
  const auto findings = RunTree("rc401");
  EXPECT_EQ(CountRule(findings, "RC401"), 1) << lintlib::FormatText(findings);
  EXPECT_EQ(findings.size(), 1u);
}

// --- Pragmas and rule semantics ---------------------------------------------

TEST(RapicheckRules, CaseOkPragmaSuppressesRc101) {
  const auto findings = AnalyzeSources(
      {{"src/db/wal.h",
        "enum class LogRecordType : uint8_t {\n"
        "  kUpdate = 1,\n"
        "  kCommit = 2,\n"
        "};\n"},
       {"src/db/database.cc",
        "void F(LogRecord rec) {\n"
        "  // rapicheck: case-ok (redo subset: commits handled upstream)\n"
        "  switch (rec.type) {\n"
        "    case LogRecordType::kUpdate:\n"
        "      break;\n"
        "  }\n"
        "}\n"}},
      DefaultConfig());
  EXPECT_EQ(CountRule(findings, "RC101"), 0) << lintlib::FormatText(findings);
}

TEST(RapicheckRules, Rc101FiresWithoutPragma) {
  const auto findings = AnalyzeSources(
      {{"src/db/wal.h",
        "enum class LogRecordType : uint8_t {\n"
        "  kUpdate = 1,\n"
        "  kCommit = 2,\n"
        "};\n"},
       {"src/db/database.cc",
        "void F(LogRecord rec) {\n"
        "  switch (rec.type) {\n"
        "    case LogRecordType::kUpdate:\n"
        "      break;\n"
        "  }\n"
        "}\n"}},
      DefaultConfig());
  EXPECT_EQ(CountRule(findings, "RC101"), 1) << lintlib::FormatText(findings);
}

TEST(RapicheckRules, TransitiveDurabilitySatisfiesRc301) {
  // The ack's durability point is reached through a helper: Commit calls
  // LogDecision, which awaits WaitDurable — the closure must see it.
  const auto findings = AnalyzeSources(
      {{"src/db/database.cc",
        "void Database::LogDecision(uint64_t lsn) {\n"
        "  wal_.WaitDurable(lsn);\n"
        "}\n"
        "void Database::Commit(uint64_t lsn) {\n"
        "  LogDecision(lsn);\n"
        "  stats_.commits.Add();\n"
        "}\n"}},
      DefaultConfig());
  EXPECT_EQ(CountRule(findings, "RC301"), 0) << lintlib::FormatText(findings);
}

TEST(RapicheckRules, ScopedGuardDeathBreaksLockChains) {
  // The first guard dies with its block, so the second acquisition does
  // not create a held-while edge and there is no cycle.
  const auto findings = AnalyzeSources(
      {{"src/db/a.cc",
        "void Database::A() {\n"
        "  {\n"
        "    auto g = co_await apply_mutex_->Lock();\n"
        "    Touch();\n"
        "  }\n"
        "  auto h = co_await checkpoint_mutex_->Lock();\n"
        "}\n"
        "void Database::B() {\n"
        "  {\n"
        "    auto g = co_await checkpoint_mutex_->Lock();\n"
        "    Touch();\n"
        "  }\n"
        "  auto h = co_await apply_mutex_->Lock();\n"
        "}\n"}},
      DefaultConfig());
  EXPECT_EQ(CountRule(findings, "RC401"), 0) << lintlib::FormatText(findings);
}

TEST(RapicheckRules, RulesTableCoversAllFourFamilies) {
  const auto& rules = rapicheck::Rules();
  ASSERT_EQ(rules.size(), 10u);
  EXPECT_STREQ(rules.front().id, "RC101");
  EXPECT_STREQ(rules.back().id, "RC401");
}

TEST(RapicheckRules, FindingsCarryBaselineCrcs) {
  const auto findings = RunTree("rc101");
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_NE(f.crc, 0u) << f.rule << " at " << f.file << ":" << f.line;
  }
  // Baseline round-trip through lintlib keys on those CRCs.
  const std::string serialized =
      lintlib::SerializeBaseline(findings, "rapicheck");
  std::vector<lintlib::BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(lintlib::ParseBaseline(serialized, &entries, &error)) << error;
  const auto remaining = lintlib::ApplyBaseline(findings, entries);
  EXPECT_TRUE(remaining.empty()) << lintlib::FormatText(remaining);
}

}  // namespace

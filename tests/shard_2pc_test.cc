// Two-phase commit over the fleet topology: wire protocol, coordinator
// state machine (commit / abort / fast-path), presumed-abort recovery from
// a torn coordinator log, and a 200-seed crash-point sweep that kills
// coordinators and shards across 2PC message boundaries and checks the
// fleet atomicity oracle after every schedule.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/faults/fleet_checker.h"
#include "src/harness/fleet_testbed.h"
#include "src/shard/shard_directory.h"
#include "src/shard/wire.h"
#include "src/sim/simulator.h"
#include "src/workload/fleet_workload.h"
#include "src/workload/tpcc_lite.h"

namespace rlharness {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlshard::MsgType;
using rlshard::ShardOps;
using rlshard::TxnOutcome;
using rlshard::WireMessage;
using rlshard::WireOp;

FleetOptions SmallFleet(size_t shards) {
  FleetOptions opt;
  opt.shards = shards;
  opt.key_space = 1 << 20;
  opt.shard.mode = DeploymentMode::kRapiLog;
  opt.shard.disks = DiskSetup::kSharedHdd;
  opt.shard.db.profile = rldb::PostgresLikeProfile();
  opt.shard.db.pool_pages = 512;
  opt.shard.db.journal_pages = 300;
  opt.shard.db.profile.checkpoint_dirty_pages = 128;
  return opt;
}

// One WireOp writing `key` with a deterministic value.
WireOp Op(uint64_t key) {
  WireOp op;
  op.key = key;
  // The engine stores fixed-size row slots; match the profile's value size.
  op.value = rlwork::RowValue(96, key, key * 31);
  return op;
}

// Reads `key` on the shard that owns it; true if present with Op(key)'s
// value.
Task<bool> HasKey(FleetTestbed& fleet, uint64_t key) {
  rldb::Database* db = fleet.shard_db(fleet.directory().ShardOf(key));
  RL_CHECK(db != nullptr);
  std::vector<uint8_t> got;
  const bool found = co_await db->ReadCommitted(key, &got);
  co_return found && got == Op(key).value;
}

// --- Wire protocol -----------------------------------------------------------

TEST(WireTest, RoundTripsAllFields) {
  WireMessage msg = WireMessage::Make(MsgType::kPrepareReq, 0x1234'5678'9abcull,
                                      1);
  msg.ops.push_back(Op(7));
  msg.ops.push_back(WireOp{.is_delete = true, .key = 99, .value = {}});

  const std::vector<uint8_t> bytes = EncodeMessage(msg);
  WireMessage back;
  ASSERT_TRUE(DecodeMessage(bytes, &back));
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.global_id, msg.global_id);
  EXPECT_EQ(back.flag, msg.flag);
  ASSERT_EQ(back.ops.size(), 2u);
  EXPECT_EQ(back.ops[0].key, 7u);
  EXPECT_EQ(back.ops[0].value, msg.ops[0].value);
  EXPECT_TRUE(back.ops[1].is_delete);
}

TEST(WireTest, RejectsGarbage) {
  WireMessage out;
  EXPECT_FALSE(DecodeMessage(std::vector<uint8_t>{}, &out));
  EXPECT_FALSE(DecodeMessage(std::vector<uint8_t>{0xff, 0x01}, &out));
  // Truncated valid message.
  WireMessage msg = WireMessage::Make(MsgType::kVote, 42, 1);
  std::vector<uint8_t> bytes = EncodeMessage(msg);
  bytes.pop_back();
  EXPECT_FALSE(DecodeMessage(bytes, &out));
  // Trailing garbage.
  bytes = EncodeMessage(msg);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeMessage(bytes, &out));
}

TEST(DirectoryTest, PartitionsKeySpace) {
  rlshard::ShardDirectory dir(4, 1000);
  EXPECT_EQ(dir.ShardOf(0), 0u);
  EXPECT_EQ(dir.ShardOf(249), 0u);
  EXPECT_EQ(dir.ShardOf(250), 1u);
  EXPECT_EQ(dir.ShardOf(999), 3u);  // remainder folds into the last shard
  EXPECT_EQ(dir.RangeEnd(3), 1000u);
  for (size_t s = 0; s < 4; ++s) {
    for (uint64_t k = dir.RangeBegin(s); k < dir.RangeEnd(s); k += 83) {
      EXPECT_EQ(dir.ShardOf(k), s);
    }
  }
}

// --- Coordinator state machine ----------------------------------------------

TEST(TwoPcTest, CrossShardCommitLandsOnBothShards) {
  Simulator sim;
  FleetTestbed fleet(sim, SmallFleet(2));
  const uint64_t k0 = 10, k1 = (1 << 19) + 10;  // shard 0 / shard 1
  TxnOutcome outcome = TxnOutcome::kUnknown;
  bool has0 = false, has1 = false;
  sim.Spawn([](Simulator&, FleetTestbed& f, uint64_t a, uint64_t b,
               TxnOutcome& out, bool& ha, bool& hb) -> Task<void> {
    co_await f.Start();
    std::vector<ShardOps> parts;
    parts.push_back(ShardOps{.shard = 0, .ops = {Op(a)}});
    parts.push_back(ShardOps{.shard = 1, .ops = {Op(b)}});
    out = co_await f.coordinator().Execute(1, std::move(parts));
    EXPECT_TRUE(co_await f.ResolveAllInDoubt(Duration::Seconds(5)));
    ha = co_await HasKey(f, a);
    hb = co_await HasKey(f, b);
    co_await f.Shutdown();
  }(sim, fleet, k0, k1, outcome, has0, has1));
  sim.Run();
  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
  EXPECT_EQ(fleet.coordinator().stats().cross_shard.value(), 1);
  EXPECT_EQ(fleet.coordinator().decision_log().stats().decisions_logged.value(),
            1);
}

TEST(TwoPcTest, SingleShardUsesFastPath) {
  Simulator sim;
  FleetTestbed fleet(sim, SmallFleet(2));
  TxnOutcome outcome = TxnOutcome::kUnknown;
  bool has = false;
  sim.Spawn([](Simulator&, FleetTestbed& f, TxnOutcome& out,
               bool& h) -> Task<void> {
    co_await f.Start();
    std::vector<ShardOps> parts;
    parts.push_back(ShardOps{.shard = 0, .ops = {Op(5)}});
    out = co_await f.coordinator().Execute(2, std::move(parts));
    h = co_await HasKey(f, 5);
    co_await f.Shutdown();
  }(sim, fleet, outcome, has));
  sim.Run();
  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(has);
  EXPECT_EQ(fleet.coordinator().stats().single_shard.value(), 1);
  // The fast path must not touch the decision log.
  EXPECT_EQ(fleet.coordinator().decision_log().stats().decisions_logged.value(),
            0);
}

TEST(TwoPcTest, PartitionedParticipantAbortsAtomically) {
  Simulator sim;
  FleetTestbed fleet(sim, SmallFleet(2));
  const uint64_t k0 = 20, k1 = (1 << 19) + 20;
  TxnOutcome outcome = TxnOutcome::kCommitted;
  bool has0 = true, has1 = true;
  sim.Spawn([](Simulator&, FleetTestbed& f, uint64_t a, uint64_t b,
               TxnOutcome& out, bool& ha, bool& hb) -> Task<void> {
    co_await f.Start();
    f.PartitionShard(1);  // shard 1 never sees the prepare
    std::vector<ShardOps> parts;
    parts.push_back(ShardOps{.shard = 0, .ops = {Op(a)}});
    parts.push_back(ShardOps{.shard = 1, .ops = {Op(b)}});
    out = co_await f.coordinator().Execute(3, std::move(parts));
    f.HealShard(1);
    EXPECT_TRUE(co_await f.ResolveAllInDoubt(Duration::Seconds(5)));
    ha = co_await HasKey(f, a);
    hb = co_await HasKey(f, b);
    co_await f.Shutdown();
  }(sim, fleet, k0, k1, outcome, has0, has1));
  sim.Run();
  EXPECT_EQ(outcome, TxnOutcome::kAborted);
  EXPECT_FALSE(has0);  // shard 0 prepared, then resolved to abort
  EXPECT_FALSE(has1);
  EXPECT_EQ(fleet.coordinator().stats().vote_timeouts.value(), 1);
  // No decision record for a presumed abort.
  EXPECT_EQ(fleet.coordinator().decision_log().stats().decisions_logged.value(),
            0);
}

// --- Presumed-abort recovery from a dead coordinator -------------------------

TEST(TwoPcTest, CoordinatorCrashMidDecisionResolvesConsistently) {
  // Kill the coordinator at offsets sweeping the whole 2PC window — before
  // the prepares land, mid-vote, mid-decision-write (torn decision-log
  // tail), and after the decision is durable. Every offset must resolve
  // consistently; at least one must catch the protocol in flight.
  int unknowns = 0;
  for (const int64_t kill_us : {50, 200, 500, 1000, 2000, 4000, 8000}) {
    Simulator sim;
    FleetTestbed fleet(sim, SmallFleet(2));
    const uint64_t k0 = 30, k1 = (1 << 19) + 30;
    TxnOutcome outcome = TxnOutcome::kAborted;
    bool has0 = false, has1 = true, resolved = false;
    sim.Spawn([](Simulator& s, FleetTestbed& f, uint64_t a, uint64_t b,
                 int64_t at_us, TxnOutcome& out, bool& ha, bool& hb,
                 bool& res) -> Task<void> {
      co_await f.Start();
      std::vector<ShardOps> parts;
      parts.push_back(ShardOps{.shard = 0, .ops = {Op(a)}});
      parts.push_back(ShardOps{.shard = 1, .ops = {Op(b)}});
      s.Schedule(Duration::Micros(at_us), [&f] { f.KillCoordinator(); });
      out = co_await f.coordinator().Execute(4, std::move(parts));
      co_await s.Sleep(Duration::Millis(50));
      if (!f.coordinator_alive()) {
        co_await f.RecoverCoordinator();
      }
      // The shards' in-doubt resolvers query the recovered coordinator,
      // which answers from the decision log (commit) or presumes abort.
      res = co_await f.ResolveAllInDoubt(Duration::Seconds(10));
      ha = co_await HasKey(f, a);
      hb = co_await HasKey(f, b);
      co_await f.Shutdown();
    }(sim, fleet, k0, k1, kill_us, outcome, has0, has1, resolved));
    sim.Run();
    // A coordinator crash can never manufacture an abort ack: the outcome is
    // either a durably-decided commit or unknown.
    EXPECT_NE(outcome, TxnOutcome::kAborted) << "kill at " << kill_us << "us";
    EXPECT_TRUE(resolved) << "kill at " << kill_us << "us";
    EXPECT_EQ(has0, has1) << "kill at " << kill_us << "us";  // atomic
    if (outcome == TxnOutcome::kCommitted) {
      // Acked commit must survive the crash on both shards.
      EXPECT_TRUE(has0) << "kill at " << kill_us << "us";
    } else {
      ++unknowns;
    }
  }
  // The sweep must actually have caught the protocol mid-flight.
  EXPECT_GT(unknowns, 0);
}

TEST(TwoPcTest, InDoubtParticipantSurvivesOwnCrashAndResolves) {
  Simulator sim;
  FleetTestbed fleet(sim, SmallFleet(2));
  const uint64_t k0 = 40, k1 = (1 << 19) + 40;
  TxnOutcome outcome = TxnOutcome::kUnknown;
  bool has0 = false, has1 = false, resolved = false;
  sim.Spawn([](Simulator& s, FleetTestbed& f, uint64_t a, uint64_t b,
               TxnOutcome& out, bool& ha, bool& hb,
               bool& res) -> Task<void> {
    co_await f.Start();
    // Partition shard 0 from the decision push: it prepares (votes yes),
    // then loses power before any decision can reach it.
    std::vector<ShardOps> parts;
    parts.push_back(ShardOps{.shard = 0, .ops = {Op(a)}});
    parts.push_back(ShardOps{.shard = 1, .ops = {Op(b)}});
    s.Schedule(Duration::Millis(30), [&f] { f.KillShard(0); });
    out = co_await f.coordinator().Execute(5, std::move(parts));
    co_await s.Sleep(Duration::Millis(100));
    co_await f.RecoverShard(0);
    res = co_await f.ResolveAllInDoubt(Duration::Seconds(10));
    ha = co_await HasKey(f, a);
    hb = co_await HasKey(f, b);
    co_await f.Shutdown();
  }(sim, fleet, k0, k1, outcome, has0, has1, resolved));
  sim.Run();
  EXPECT_TRUE(resolved);
  EXPECT_EQ(has0, has1);  // atomic either way
  if (outcome == TxnOutcome::kCommitted) {
    // If the client was acked, the crashed shard must have re-learned the
    // commit from its prepare record plus the coordinator's decision log.
    EXPECT_TRUE(has0);
  }
}

// --- Explicit dispatch (regression for rapicheck RC202/RC102) -----------------
// The endpoint switches enumerate every MsgType explicitly: kinds addressed
// to the other role land in an unexpected_msgs counter instead of a silent
// `default:`, and QueryAnswer::kAbort is consumed by name in the shard's
// resolution path rather than falling out of an if-chain.

TEST(DispatchTest, CleanRunRoutesEveryMessageExplicitly) {
  Simulator sim;
  FleetTestbed fleet(sim, SmallFleet(2));
  const uint64_t k0 = 60, k1 = (1 << 19) + 60;
  TxnOutcome outcome = TxnOutcome::kUnknown;
  sim.Spawn([](Simulator&, FleetTestbed& f, uint64_t a, uint64_t b,
               TxnOutcome& out) -> Task<void> {
    co_await f.Start();
    std::vector<ShardOps> parts;
    parts.push_back(ShardOps{.shard = 0, .ops = {Op(a)}});
    parts.push_back(ShardOps{.shard = 1, .ops = {Op(b)}});
    out = co_await f.coordinator().Execute(7, std::move(parts));
    EXPECT_TRUE(co_await f.ResolveAllInDoubt(Duration::Seconds(5)));
    co_await f.Shutdown();
  }(sim, fleet, k0, k1, outcome));
  sim.Run();
  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(fleet.coordinator().stats().unexpected_msgs.value(), 0);
  for (size_t i = 0; i < fleet.shard_count(); ++i) {
    EXPECT_EQ(fleet.node(i).stats().unexpected_msgs.value(), 0);
  }
}

TEST(DispatchTest, PresumedAbortAnswerResolvesPreparedShard) {
  Simulator sim;
  FleetTestbed fleet(sim, SmallFleet(2));
  const uint64_t k0 = 61, k1 = (1 << 19) + 61;
  TxnOutcome outcome = TxnOutcome::kAborted;
  bool has0 = true, resolved = false;
  sim.Spawn([](Simulator& s, FleetTestbed& f, uint64_t a, uint64_t b,
               TxnOutcome& out, bool& ha, bool& res) -> Task<void> {
    co_await f.Start();
    // Shard 1 never sees its prepare, and the coordinator dies well before
    // the 400ms vote timeout — after shard 0 has prepared, before any
    // decision exists or can be pushed. The recovered coordinator has no
    // pending state and nothing in the decision log, so shard 0 must learn
    // the outcome through a query answered QueryAnswer::kAbort.
    f.PartitionShard(1);
    std::vector<ShardOps> parts;
    parts.push_back(ShardOps{.shard = 0, .ops = {Op(a)}});
    parts.push_back(ShardOps{.shard = 1, .ops = {Op(b)}});
    s.Schedule(Duration::Millis(30), [&f] { f.KillCoordinator(); });
    out = co_await f.coordinator().Execute(8, std::move(parts));
    co_await s.Sleep(Duration::Millis(50));
    co_await f.RecoverCoordinator();
    f.HealShard(1);
    res = co_await f.ResolveAllInDoubt(Duration::Seconds(10));
    ha = co_await HasKey(f, a);
    co_await f.Shutdown();
  }(sim, fleet, k0, k1, outcome, has0, resolved));
  sim.Run();
  EXPECT_EQ(outcome, TxnOutcome::kUnknown);
  EXPECT_TRUE(resolved);
  EXPECT_FALSE(has0);
  EXPECT_GE(fleet.node(0).stats().resolved_by_query.value(), 1);
  EXPECT_EQ(fleet.node(0).stats().unexpected_msgs.value(), 0);
}

// --- Stats registry: many testbeds, one process -------------------------------

TEST(FleetStatsTest, TwoReplicatedTestbedsShareOneRegistry) {
  Simulator sim;
  TestbedOptions base;
  base.mode = DeploymentMode::kRapiLog;
  base.disks = DiskSetup::kSharedHdd;
  base.db.profile = rldb::PostgresLikeProfile();
  base.replication.enabled = true;
  TestbedOptions a = base;
  a.instance = "alpha.";
  TestbedOptions b = base;
  b.instance = "beta.";
  Testbed bed_a(sim, a);
  Testbed bed_b(sim, b);
  rlsim::StatsRegistry registry;
  bed_a.RegisterReplicationStats(registry);
  // Before instance prefixes this second registration aborted on duplicate
  // "net." / "ship." / "replica-N." names.
  bed_b.RegisterReplicationStats(registry);
  const std::string text = registry.Format();
  EXPECT_NE(text.find("alpha.net."), std::string::npos);
  EXPECT_NE(text.find("beta.net."), std::string::npos);
  EXPECT_NE(text.find("alpha.replica-0."), std::string::npos);
  EXPECT_NE(text.find("beta.replica-0."), std::string::npos);
}

TEST(FleetStatsTest, FleetRegistersEveryShardDistinctly) {
  Simulator sim;
  FleetTestbed fleet(sim, SmallFleet(3));
  rlsim::StatsRegistry registry;
  fleet.RegisterStats(registry);
  const std::string text = registry.Format();
  EXPECT_NE(text.find("coord.committed"), std::string::npos);
  EXPECT_NE(text.find("shard-0.2pc."), std::string::npos);
  EXPECT_NE(text.find("shard-2.2pc."), std::string::npos);
  EXPECT_NE(text.find("fleet.net."), std::string::npos);
}

// --- 200-seed crash-point sweep ----------------------------------------------

// Everything a crash episode must reproduce regardless of how the shards
// replay their logs: the oracle verdict, the in-doubt transactions each
// shard reinstates from its prepare records (captured before the resolver
// drains them), and the full committed contents per shard.
struct FleetCrashOutcome {
  rlfault::VerifyResult verdict;
  std::vector<std::vector<uint64_t>> in_doubt;  // per shard, pre-resolution
  std::vector<uint64_t> shard_hashes;
};

// One episode: a 2-shard fleet under cross-shard load; at a seeded instant a
// seeded fault (coordinator kill / shard kill / partition) fires — the
// instant sweeps across all 2PC message boundaries as seeds vary. After
// wind-down and full recovery, the fleet atomicity oracle must hold.
// `partitions` selects the shards' redo mode on every recovery (mid-episode
// and final alike); it must never change anything this returns.
FleetCrashOutcome RunCrashEpisode(uint64_t seed, uint32_t partitions = 1) {
  Simulator sim;
  FleetOptions opt = SmallFleet(2);
  opt.shard.db.recovery.partitions = partitions;
  FleetTestbed fleet(sim, opt);
  rlwork::FleetConfig wcfg;
  wcfg.cross_shard_probability = 0.6;
  wcfg.ops_per_txn = 3;
  rlwork::FleetWorkload work(sim, wcfg);
  rlfault::FleetChecker checker;
  FleetCrashOutcome result;
  bool stop = false;

  sim.Spawn([](Simulator& s, FleetTestbed& f, rlwork::FleetWorkload& w,
               rlfault::FleetChecker& ck, FleetCrashOutcome& res,
               bool& stop_flag, uint64_t sd) -> Task<void> {
    co_await f.Start();
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(f.coordinator(), f.directory(), c, &stop_flag,
                          &ck));
    }
    rlsim::Rng rng(sd * 0x9e3779b97f4a7c15ull + 1);
    // Fault instant: anywhere in the first 400ms of load — prepares, votes,
    // decision writes and decision pushes are all in flight in this window.
    const Duration at = Duration::Micros(1000 + rng.NextBelow(400'000));
    const uint64_t kind = rng.NextBelow(3);
    const size_t victim = rng.NextBelow(2);
    co_await s.Sleep(at);
    switch (kind) {
      case 0:
        f.KillCoordinator();
        break;
      case 1:
        f.KillShard(victim);
        break;
      default:
        f.PartitionShard(victim);
        break;
    }
    co_await s.Sleep(Duration::Millis(150));
    // Wind-down: stop load, heal everything, recover everyone, drain doubt.
    stop_flag = true;
    co_await s.Sleep(Duration::Millis(50));
    for (size_t i = 0; i < f.shard_count(); ++i) {
      f.HealShard(i);
    }
    co_await f.RecoverCoordinator();
    for (size_t i = 0; i < f.shard_count(); ++i) {
      co_await f.RecoverShard(i);
    }
    // The in-doubt sets the shards rebuilt from their prepare records —
    // snapshotted before the resolver drains them, because reinstatement is
    // part of recovery and must not depend on the redo mode.
    for (size_t i = 0; i < f.shard_count(); ++i) {
      res.in_doubt.push_back(f.shard_db(i)->InDoubtGlobalIds());
    }
    EXPECT_TRUE(co_await f.ResolveAllInDoubt(Duration::Seconds(20)))
        << "seed " << sd << ": in-doubt transactions never drained";
    std::vector<rldb::Database*> dbs;
    for (size_t i = 0; i < f.shard_count(); ++i) {
      dbs.push_back(f.shard_db(i));
    }
    res.verdict = co_await ck.VerifyAfterRecovery(f.directory(), dbs);
    for (size_t i = 0; i < f.shard_count(); ++i) {
      res.shard_hashes.push_back(co_await f.shard_db(i)->ContentHash());
    }
    co_await f.Shutdown();
  }(sim, fleet, work, checker, result, stop, seed));
  sim.Run();
  return result;
}

TEST(TwoPcCrashSweepTest, AtomicityHoldsAcross200Seeds) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const rlfault::VerifyResult r = RunCrashEpisode(seed).verdict;
    EXPECT_EQ(r.atomicity_violations, 0u) << "seed " << seed;
    EXPECT_EQ(r.lost_writes, 0u) << "seed " << seed << ": " << r.Summary();
  }
}

TEST(TwoPcCrashSweepTest, RedoModeNeverChangesTheOutcome) {
  // Same seeds, both redo modes: the fault fires at the same virtual
  // instant on the same fleet, so the crash images are bit-identical and
  // the diff isolates the recovery path. Verdict, reinstated in-doubt sets,
  // and per-shard contents must all match — a partitioned replay that
  // dropped or reordered a prepare record would show up here first.
  uint64_t episodes_with_doubt = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const FleetCrashOutcome seq = RunCrashEpisode(seed, 1);
    const FleetCrashOutcome part = RunCrashEpisode(seed, 8);
    EXPECT_EQ(seq.verdict.atomicity_violations, 0u) << "seed " << seed;
    EXPECT_EQ(part.verdict.atomicity_violations, 0u) << "seed " << seed;
    EXPECT_EQ(seq.verdict.lost_writes, part.verdict.lost_writes)
        << "seed " << seed;
    EXPECT_EQ(seq.verdict.keys_checked, part.verdict.keys_checked)
        << "seed " << seed;
    ASSERT_EQ(seq.in_doubt, part.in_doubt)
        << "seed " << seed << ": in-doubt reinstatement diverged";
    ASSERT_EQ(seq.shard_hashes, part.shard_hashes)
        << "seed " << seed << ": recovered contents diverged";
    for (const auto& shard : seq.in_doubt) {
      if (!shard.empty()) {
        ++episodes_with_doubt;
        break;
      }
    }
  }
  // The sweep must actually catch prepared transactions in flight.
  EXPECT_GT(episodes_with_doubt, 5u);
}

}  // namespace
}  // namespace rlharness

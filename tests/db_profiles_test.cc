// Parameterised engine-profile sweep: the full commit/crash/recover cycle
// must hold for every profile (page size, log block size, group commit) and
// both data-device types.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/db/database.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;

enum class DevKind { kHdd, kSsd };

struct Params {
  const char* profile_name;
  DevKind dev;
  uint64_t seed;
};

EngineProfile ProfileByName(const std::string& name) {
  if (name == "pg-like") {
    return PostgresLikeProfile();
  }
  if (name == "innodb-like") {
    return InnodbLikeProfile();
  }
  return CommercialLikeProfile();
}

class ProfileSweepTest
    : public ::testing::TestWithParam<std::tuple<const char*, int, uint64_t>> {
};

TEST_P(ProfileSweepTest, CommitCrashRecoverAcrossProfiles) {
  const EngineProfile profile = ProfileByName(std::get<0>(GetParam()));
  const DevKind kind = std::get<1>(GetParam()) == 0 ? DevKind::kHdd
                                                    : DevKind::kSsd;
  const uint64_t seed = std::get<2>(GetParam());

  Simulator sim(seed);
  NativeCpu cpu(sim);
  auto make_dev = [&](const char* name) {
    return std::make_unique<SimBlockDevice>(
        sim,
        SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20},
                                .name = name},
        kind == DevKind::kHdd ? rlstor::MakeDefaultHdd()
                              : rlstor::MakeDefaultSsd());
  };
  auto data = make_dev("data");
  auto log = make_dev("log");

  DbOptions options;
  options.profile = profile;
  options.pool_pages = 512;
  options.journal_pages = 300;
  options.profile.checkpoint_dirty_pages = 100;

  sim.Spawn([](Simulator& s, NativeCpu& cpu2, SimBlockDevice& d,
               SimBlockDevice& l, DbOptions opts, uint64_t sd) -> Task<void> {
    auto db = co_await Database::Open(s, cpu2, d, l, opts);
    rlsim::Rng rng(sd);
    std::map<uint64_t, uint64_t> model;  // key -> value seed
    const uint32_t vb = opts.profile.value_bytes;
    auto value_of = [vb](uint64_t key, uint64_t vseed) {
      std::vector<uint8_t> v(vb);
      for (size_t i = 0; i < v.size(); ++i) {
        v[i] = static_cast<uint8_t>(key * 13 + vseed * 7 + i);
      }
      return v;
    };

    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 150; ++i) {
        const uint64_t key = rng.NextBelow(400);
        const uint64_t txn = db->Begin();
        if (rng.Chance(0.15) && model.contains(key)) {
          EXPECT_EQ(co_await db->Remove(txn, key), DbStatus::kOk);
          EXPECT_EQ(co_await db->Commit(txn), DbStatus::kOk);
          model.erase(key);
        } else {
          const uint64_t vseed = rng.Next() % 1000;
          EXPECT_EQ(co_await db->Put(txn, key, value_of(key, vseed)),
                    DbStatus::kOk);
          EXPECT_EQ(co_await db->Commit(txn), DbStatus::kOk);
          model[key] = vseed;
        }
      }
      // Power-fail: volatile caches dropped, engine memory gone.
      d.PowerLoss();
      l.PowerLoss();
      co_await db->Close();
      db.reset();
      d.PowerRestore();
      l.PowerRestore();
      db = co_await Database::Open(s, cpu2, d, l, opts);

      EXPECT_EQ(co_await db->CommittedCount(), model.size())
          << "round " << round;
      for (const auto& [key, vseed] : model) {
        std::vector<uint8_t> got;
        EXPECT_TRUE(co_await db->ReadCommitted(key, &got)) << key;
        EXPECT_EQ(got, value_of(key, vseed)) << key;
      }
      co_await db->CheckTreeStructure();
    }
    co_await db->Close();
  }(sim, cpu, *data, *log, options, seed));
  sim.Run();
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesDevicesSeeds, ProfileSweepTest,
    ::testing::Combine(::testing::Values("pg-like", "innodb-like",
                                         "commercial-like"),
                       ::testing::Values(0, 1),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace rldb

// Distributed-tracing contract tests over the fleet (E13) episode runner:
//
//  1. Trace neutrality: attaching a SpanTracer sink to an episode must not
//     change its outcome hash — across a 200-seed corpus. This is the
//     episode-level half of the "tracing on vs off is byte-identical"
//     claim (the CI smoke diff covers the bench-level half).
//  2. Assembled multi-node traces are well formed: the Chrome export of a
//     traced fleet episode passes tracecheck including the parent-link
//     rules (TC006 resolvable parents, TC007 no cycles), and the causal
//     tree actually stitches client, coordinator and shard spans together.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "src/faults/chaos/chaos_explorer.h"
#include "src/faults/chaos/schedule.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/critical_path.h"
#include "src/obs/span_tracer.h"
#include "tools/tracecheck/tracecheck.h"

namespace rlchaos {
namespace {

EpisodeConfig SmallFleetConfig(uint64_t seed) {
  GeneratorOptions gen;
  gen.fleet_shards = 2;
  gen.min_faults = 1;
  gen.max_faults = 2;
  gen.run_us_min = 40'000;
  gen.run_us_max = 80'000;
  gen.cross_ratio = 0.6;  // make cross-shard 2PC trees the common case
  return GenerateEpisode(seed, gen);
}

TEST(FleetTraceTest, TwoHundredSeedsAreHashNeutralUnderTracing) {
  uint64_t total_records = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const EpisodeConfig cfg = SmallFleetConfig(seed);
    const EpisodeOutcome plain = RunFleetEpisode(cfg);

    rlobs::SpanTracer tracer;
    RunOptions run;
    run.sink = &tracer;
    const EpisodeOutcome traced = RunFleetEpisode(cfg, run);

    ASSERT_EQ(plain.Hash(), traced.Hash()) << "seed " << seed;
    ASSERT_EQ(plain.committed, traced.committed) << "seed " << seed;
    ASSERT_EQ(plain.end_time_ns, traced.end_time_ns) << "seed " << seed;
    total_records += tracer.records().size();
  }
  // The corpus must actually exercise tracing, or the comparison is vacuous.
  EXPECT_GT(total_records, 0u);
}

TEST(FleetTraceTest, AssembledTraceIsWellFormedAndStitchesNodes) {
  const EpisodeConfig cfg = SmallFleetConfig(3);
  rlobs::SpanTracer tracer;
  RunOptions run;
  run.sink = &tracer;
  const EpisodeOutcome out = RunFleetEpisode(cfg, run);
  ASSERT_GT(tracer.records().size(), 0u);
  (void)out;

  const std::string json = rlobs::ExportChromeTrace(tracer);
  const tracecheck::Report r = tracecheck::CheckTraceText(json, "fleet");
  EXPECT_TRUE(r.ok()) << tracecheck::FormatReport(r, "fleet");

  // The causal tree must actually cross node boundaries: client roots,
  // coordinator children, shard grandchildren, with resolvable parents.
  const std::vector<rlobs::SpanNode> spans = tracecheck::ExtractSpans(json);
  std::set<std::string> kinds;
  size_t parented = 0;
  for (const rlobs::SpanNode& s : spans) {
    kinds.insert(s.kind);
    parented += s.parent != 0 ? 1 : 0;
  }
  EXPECT_GT(parented, 0u);
  EXPECT_TRUE(kinds.contains("client-txn"));
  EXPECT_TRUE(kinds.contains("2pc-execute"));
  EXPECT_TRUE(kinds.contains("shard-prepare"));

  // And the critical-path analyzer must see client-txn as a root class
  // whose edges include remote (shard-side) time.
  const rlobs::CriticalPathReport cp = rlobs::AnalyzeCriticalPaths(spans);
  bool found_client_class = false;
  for (const rlobs::CriticalPathClass& cls : cp.classes) {
    if (cls.root_kind == "client-txn") {
      found_client_class = true;
      EXPECT_GT(cls.roots, 0u);
      EXPECT_GT(cls.total_ns, 0);
    }
  }
  EXPECT_TRUE(found_client_class);
}

}  // namespace
}  // namespace rlchaos

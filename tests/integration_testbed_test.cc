// Full-stack integration: power supply + disks + microkernel + VMM +
// RapiLog + database engine + workloads, across the paper's deployment
// configurations, including crash and power-cut durability campaigns.
#include <gtest/gtest.h>

#include <memory>

#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/workload/kv_workload.h"
#include "src/workload/tpcc_lite.h"

namespace rlharness {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;

TestbedOptions SmallOptions(DeploymentMode mode, DiskSetup disks) {
  TestbedOptions opt;
  opt.mode = mode;
  opt.disks = disks;
  opt.db.profile = rldb::PostgresLikeProfile();
  opt.db.pool_pages = 512;
  opt.db.journal_pages = 300;
  opt.db.profile.checkpoint_dirty_pages = 128;
  return opt;
}

rlwork::TpccConfig SmallTpcc() {
  rlwork::TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 30;
  cfg.items = 300;
  return cfg;
}

class ModeTest : public ::testing::TestWithParam<DeploymentMode> {};

TEST_P(ModeTest, TpccRunsAndRecoversCleanly) {
  Simulator sim;
  Testbed bed(sim, SmallOptions(GetParam(), DiskSetup::kSharedHdd));
  rlwork::TpccLite tpcc(sim, SmallTpcc());
  bool stop = false;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w,
               bool& stop_flag) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
    }
    co_await s.Sleep(Duration::Seconds(2));
    stop_flag = true;
  }(sim, bed, tpcc, stop));
  sim.Run();
  EXPECT_GT(tpcc.stats().committed.value(), 50);
  EXPECT_EQ(tpcc.stats().machine_deaths.value(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeTest,
                         ::testing::Values(DeploymentMode::kNative,
                                           DeploymentMode::kVirt,
                                           DeploymentMode::kRapiLog,
                                           DeploymentMode::kUnsafeAsync));

TEST(TestbedTest, RapiLogFasterThanVirtOnSharedHdd) {
  auto run = [](DeploymentMode mode) {
    Simulator sim;
    Testbed bed(sim, SmallOptions(mode, DiskSetup::kSharedHdd));
    rlwork::TpccLite tpcc(sim, SmallTpcc());
    bool stop = false;
    sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w,
                 bool& stop_flag) -> Task<void> {
      co_await b.Start();
      co_await w.LoadInitial(b.db());
      for (int c = 0; c < 8; ++c) {
        s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
      }
      co_await s.Sleep(Duration::Seconds(3));
      stop_flag = true;
    }(sim, bed, tpcc, stop));
    sim.Run();
    return tpcc.stats().committed.value();
  };
  const int64_t virt = run(DeploymentMode::kVirt);
  const int64_t rapi = run(DeploymentMode::kRapiLog);
  // The headline result: RapiLog beats synchronous logging on a shared
  // rotating disk by a comfortable margin.
  EXPECT_GT(rapi, virt * 3 / 2) << "virt=" << virt << " rapilog=" << rapi;
}

TEST(TestbedTest, GuestCrashLosesNoAckedCommits) {
  Simulator sim;
  Testbed bed(sim, SmallOptions(DeploymentMode::kRapiLog,
                                DiskSetup::kSharedHdd));
  rlwork::TpccLite tpcc(sim, SmallTpcc());
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  bool stop = false;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w,
               rlfault::DurabilityChecker& chk, rlfault::VerifyResult& out,
               bool& stop_flag) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, &chk));
    }
    co_await s.Sleep(Duration::Millis(700));
    b.CrashGuest();
    stop_flag = true;
    co_await s.Sleep(Duration::Millis(1));
    co_await b.RecoverAfterGuestCrash();
    out = co_await chk.VerifyAfterRecovery(b.db());
    co_await b.db().CheckTreeStructure();
  }(sim, bed, tpcc, checker, verdict, stop));
  sim.Run();
  EXPECT_GT(verdict.keys_checked, 0u);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
  EXPECT_FALSE(bed.rapilog()->lost_data());
}

TEST(TestbedTest, PowerCutLosesNoAckedCommitsWithRapiLog) {
  Simulator sim;
  Testbed bed(sim, SmallOptions(DeploymentMode::kRapiLog,
                                DiskSetup::kSharedHdd));
  rlwork::TpccLite tpcc(sim, SmallTpcc());
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  bool stop = false;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w,
               rlfault::DurabilityChecker& chk, rlfault::VerifyResult& out,
               bool& stop_flag) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, &chk));
    }
    co_await s.Sleep(Duration::Millis(700));
    b.CutPower();
    stop_flag = true;
    // Past the hold-up window: rails down, then power returns.
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecover();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, tpcc, checker, verdict, stop));
  sim.Run();
  EXPECT_GT(verdict.keys_checked, 0u);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
  EXPECT_FALSE(bed.rapilog()->lost_data());
}

TEST(TestbedTest, PowerCutNativeSyncAlsoSafe) {
  // Synchronous native logging is the safety baseline: it must also lose
  // nothing (it is just slow).
  Simulator sim;
  Testbed bed(sim, SmallOptions(DeploymentMode::kNative,
                                DiskSetup::kSharedHdd));
  rlwork::TpccLite tpcc(sim, SmallTpcc());
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  bool stop = false;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w,
               rlfault::DurabilityChecker& chk, rlfault::VerifyResult& out,
               bool& stop_flag) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, &chk));
    }
    co_await s.Sleep(Duration::Millis(700));
    b.CutPower();
    stop_flag = true;
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecover();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, tpcc, checker, verdict, stop));
  sim.Run();
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
}

TEST(TestbedTest, PowerCutUnsafeAsyncLosesData) {
  Simulator sim;
  Testbed bed(sim, SmallOptions(DeploymentMode::kUnsafeAsync,
                                DiskSetup::kSharedHdd));
  rlwork::KvWorkload kv(sim, rlwork::KvConfig{.key_space = 2000,
                                              .write_fraction = 1.0,
                                              .ops_per_txn = 2});
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  bool stop = false;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, rlfault::VerifyResult& out,
               bool& stop_flag) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 500);
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, &chk));
    }
    co_await s.Sleep(Duration::Millis(500));
    b.CutPower();
    stop_flag = true;
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecover();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, kv, checker, verdict, stop));
  sim.Run();
  // Async commit acknowledges before the log reaches the disk: acked
  // transactions die with the volatile state.
  EXPECT_GT(verdict.lost_writes, 0u) << verdict.Summary();
}

TEST(TestbedTest, RepeatedGuestCrashCampaign) {
  Simulator sim;
  Testbed bed(sim, SmallOptions(DeploymentMode::kRapiLog,
                                DiskSetup::kSeparateHdd));
  rlwork::KvWorkload kv(sim, rlwork::KvConfig{.key_space = 1000});
  rlfault::DurabilityChecker checker;
  int bad_rounds = 0;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, int& bad) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 200);
    rlsim::Rng rng(2024);
    for (int round = 0; round < 5; ++round) {
      auto stop = std::make_shared<bool>(false);
      for (int c = 0; c < 3; ++c) {
        s.Spawn(w.RunClient(b.db(), round * 10 + c, stop.get(), &chk));
      }
      co_await s.Sleep(Duration::Millis(
          static_cast<int64_t>(rng.UniformInt(50, 400))));
      b.CrashGuest();
      *stop = true;
      co_await s.Sleep(Duration::Millis(1));
      co_await b.RecoverAfterGuestCrash();
      const auto verdict = co_await chk.VerifyAfterRecovery(b.db());
      if (!verdict.ok()) {
        ++bad;
      }
    }
  }(sim, bed, kv, checker, bad_rounds));
  sim.Run();
  EXPECT_EQ(bad_rounds, 0);
  EXPECT_FALSE(bed.rapilog()->lost_data());
}

TEST(TestbedTest, DiskSetupsAllWork) {
  for (const DiskSetup setup :
       {DiskSetup::kSharedHdd, DiskSetup::kSeparateHdd, DiskSetup::kBbwc,
        DiskSetup::kSsdLog}) {
    Simulator sim;
    Testbed bed(sim, SmallOptions(DeploymentMode::kRapiLog, setup));
    rlwork::TpccLite tpcc(sim, SmallTpcc());
    bool stop = false;
    sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w,
                 bool& stop_flag) -> Task<void> {
      co_await b.Start();
      co_await w.LoadInitial(b.db());
      for (int c = 0; c < 2; ++c) {
        s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
      }
      co_await s.Sleep(Duration::Millis(500));
      stop_flag = true;
    }(sim, bed, tpcc, stop));
    sim.Run();
    EXPECT_GT(tpcc.stats().committed.value(), 10)
        << "setup " << ToString(setup);
  }
}

}  // namespace
}  // namespace rlharness

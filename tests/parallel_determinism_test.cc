// Determinism of the parallel experiment fan-out: a chaos campaign and a
// TPC-C sweep must produce identical aggregate results at any --jobs count
// and across repeated runs at the same count. Parallelism may only change
// wall-clock, never a reported number — that is the contract DESIGN.md's
// determinism section pins and CI's perf-smoke job re-checks end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/faults/chaos/chaos_explorer.h"
#include "src/faults/chaos/schedule.h"

namespace {

using rlchaos::ChaosExplorer;
using rlchaos::ExplorerOptions;
using rlchaos::ExplorerReport;

ExplorerReport RunCampaignWithJobs(int jobs) {
  ExplorerOptions opts;
  opts.base_seed = 1;
  opts.episodes = 8;
  opts.jobs = jobs;
  return ChaosExplorer(opts).RunCampaign();
}

TEST(ParallelCampaignTest, CleanCampaignIdenticalAcrossJobCounts) {
  const ExplorerReport baseline = RunCampaignWithJobs(1);
  EXPECT_EQ(baseline.episodes_run, 8u);
  EXPECT_NE(baseline.corpus_hash, 0u);
  for (int jobs : {2, 8}) {
    const ExplorerReport report = RunCampaignWithJobs(jobs);
    EXPECT_EQ(report.episodes_run, baseline.episodes_run) << "jobs=" << jobs;
    EXPECT_EQ(report.violations, baseline.violations) << "jobs=" << jobs;
    EXPECT_EQ(report.corpus_hash, baseline.corpus_hash) << "jobs=" << jobs;
    EXPECT_EQ(report.failures.size(), baseline.failures.size())
        << "jobs=" << jobs;
  }
}

TEST(ParallelCampaignTest, RepeatedRunsAtSameJobCountAreIdentical) {
  const ExplorerReport a = RunCampaignWithJobs(8);
  const ExplorerReport b = RunCampaignWithJobs(8);
  EXPECT_EQ(a.corpus_hash, b.corpus_hash);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(ParallelCampaignTest, FailingCampaignShrinksIdenticallyAcrossJobs) {
  // The planted power-guard ablation (seed 16 fails, neighbours stay clean)
  // exercises the failure-collection and shrink fan-out: the minimal
  // schedule, its outcome hash, and the replay count must not depend on the
  // worker count that found the failure.
  const auto run = [](int jobs) {
    ExplorerOptions opts;
    opts.base_seed = 14;
    opts.episodes = 3;
    opts.jobs = jobs;
    opts.gen.power_guard = false;
    opts.gen.force_rapilog = true;
    opts.gen.allow_replication = false;
    opts.gen.run_us_min = 600'000;
    opts.gen.run_us_max = 900'000;
    return ChaosExplorer(opts).RunCampaign();
  };
  const ExplorerReport seq = run(1);
  ASSERT_EQ(seq.failures.size(), 1u);
  EXPECT_EQ(seq.failures[0].original.seed, 16u);

  const ExplorerReport par = run(4);
  ASSERT_EQ(par.failures.size(), 1u);
  EXPECT_EQ(par.corpus_hash, seq.corpus_hash);
  EXPECT_EQ(rlchaos::Serialize(par.failures[0].shrunk.minimal),
            rlchaos::Serialize(seq.failures[0].shrunk.minimal));
  EXPECT_EQ(par.failures[0].shrunk.outcome.Hash(),
            seq.failures[0].shrunk.outcome.Hash());
  EXPECT_EQ(par.failures[0].shrunk.replays_used,
            seq.failures[0].shrunk.replays_used);
}

TEST(ParallelSweepTest, TpccCellsIdenticalAcrossJobCounts) {
  // A miniature E2-style sweep (short windows keep it test-sized). Every
  // reported field — throughput, latency percentiles, abort counts — must
  // be bit-identical across job counts and match the serial runner.
  std::vector<rlbench::TpccRunConfig> cells;
  for (int clients : {2, 4}) {
    for (rlharness::DeploymentMode mode :
         {rlharness::DeploymentMode::kNative,
          rlharness::DeploymentMode::kRapiLog}) {
      rlbench::TpccRunConfig cfg;
      cfg.testbed = rlbench::DefaultTestbed(
          mode, rlharness::DiskSetup::kSharedHdd, rldb::PostgresLikeProfile());
      cfg.tpcc = rlbench::DefaultTpcc();
      cfg.clients = clients;
      cfg.warmup = rlsim::Duration::Millis(100);
      cfg.measure = rlsim::Duration::Millis(400);
      cells.push_back(cfg);
    }
  }
  const std::vector<rlbench::RunResult> seq = rlbench::RunTpccMany(cells, 1);
  const std::vector<rlbench::RunResult> par = rlbench::RunTpccMany(cells, 4);
  ASSERT_EQ(seq.size(), cells.size());
  ASSERT_EQ(par.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(par[i].txns_per_sec, seq[i].txns_per_sec) << "cell " << i;
    EXPECT_EQ(par[i].new_orders_per_sec, seq[i].new_orders_per_sec)
        << "cell " << i;
    EXPECT_EQ(par[i].committed, seq[i].committed) << "cell " << i;
    EXPECT_EQ(par[i].lock_aborts, seq[i].lock_aborts) << "cell " << i;
    EXPECT_EQ(par[i].p50, seq[i].p50) << "cell " << i;
    EXPECT_EQ(par[i].p95, seq[i].p95) << "cell " << i;
    EXPECT_EQ(par[i].p99, seq[i].p99) << "cell " << i;
    EXPECT_EQ(par[i].mean, seq[i].mean) << "cell " << i;
    // And the parallel path is the serial path: cell i equals RunTpcc alone.
    const rlbench::RunResult direct = rlbench::RunTpcc(cells[i]);
    EXPECT_EQ(par[i].committed, direct.committed) << "cell " << i;
    EXPECT_EQ(par[i].txns_per_sec, direct.txns_per_sec) << "cell " << i;
  }
}

}  // namespace

#include "src/vmm/virtual_block_device.h"
#include "src/vmm/vm.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/microkernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rlvmm {
namespace {

using rlkern::Kernel;
using rlkern::KernelStatus;
using rlkern::ObjectType;
using rlkern::SlotAddr;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;
using rlstor::BlockStatus;

TEST(VirtualMachineTest, ComputeChargesOverhead) {
  Simulator sim;
  VmParams p;
  p.cpu_overhead = 1.5;
  VirtualMachine vm(sim, p);
  sim.Spawn([](VirtualMachine& v) -> Task<void> {
    co_await v.Compute(Duration::Millis(10));
  }(vm));
  sim.Run();
  EXPECT_EQ(sim.now(), TimePoint::Origin() + Duration::Millis(15));
}

TEST(VirtualMachineTest, CrashUnwindsGuestWork) {
  Simulator sim;
  VirtualMachine vm(sim, VmParams{});
  bool crashed_seen = false;
  bool finished = false;
  sim.Spawn([](VirtualMachine& v, bool& crashed, bool& done) -> Task<void> {
    try {
      co_await v.Compute(Duration::Millis(10));
      done = true;
    } catch (const GuestCrashed&) {
      crashed = true;
    }
  }(vm, crashed_seen, finished));
  sim.Schedule(Duration::Millis(5), [&] { vm.Crash(); });
  sim.Run();
  EXPECT_TRUE(crashed_seen);
  EXPECT_FALSE(finished);
}

TEST(VirtualMachineTest, ResetBumpsIncarnation) {
  Simulator sim;
  VirtualMachine vm(sim, VmParams{});
  const uint64_t before = vm.incarnation();
  vm.Crash();
  vm.Reset();
  EXPECT_EQ(vm.incarnation(), before + 1);
  EXPECT_TRUE(vm.running());
}

TEST(VirtualMachineTest, StaleIncarnationDetected) {
  Simulator sim;
  VirtualMachine vm(sim, VmParams{});
  const uint64_t old = vm.incarnation();
  vm.Crash();
  vm.Reset();
  EXPECT_THROW(vm.CheckAlive(old), GuestCrashed);
  vm.CheckAlive(vm.incarnation());  // current one is fine
}

TEST(VirtualMachineTest, CrashCallbacksFire) {
  Simulator sim;
  VirtualMachine vm(sim, VmParams{});
  int fired = 0;
  vm.OnCrash([&] { ++fired; });
  vm.OnCrash([&] { ++fired; });
  vm.Crash();
  vm.Crash();  // idempotent
  EXPECT_EQ(fired, 2);
}

// Full paravirtual stack: guest -> VM exit -> kernel IPC -> backend ->
// physical disk, and back.
struct StackFixture {
  StackFixture()
      : kernel(sim),
        vm(sim, VmParams{}),
        disk(sim,
             rlstor::SimBlockDevice::Options{
                 .geometry = {.sector_count = 1 << 16},
                 .cache_policy = rlstor::WriteCachePolicy::kWriteBack},
             rlstor::MakeDefaultHdd()) {
    root = kernel.BootstrapCNode(64);
    EXPECT_EQ(kernel.BootstrapUntyped(root, 0, 1 << 20), KernelStatus::kOk);
    EXPECT_EQ(kernel.Retype(SlotAddr{root, 0}, ObjectType::kEndpoint, 0, root,
                            1, 1),
              KernelStatus::kOk);
    backend = std::make_unique<BlockBackend>(sim, kernel, SlotAddr{root, 1},
                                             disk);
    backend->Start();
    vdisk = std::make_unique<VirtualBlockDevice>(sim, vm, kernel,
                                                 SlotAddr{root, 1},
                                                 disk.geometry());
  }

  Simulator sim;
  Kernel kernel;
  VirtualMachine vm;
  rlstor::SimBlockDevice disk;
  rlkern::ObjectId root = rlkern::kNullObject;
  std::unique_ptr<BlockBackend> backend;
  std::unique_ptr<VirtualBlockDevice> vdisk;
};

TEST(VirtualBlockDeviceTest, WriteReadRoundTrip) {
  StackFixture f;
  BlockStatus wst = BlockStatus::kDeviceOff;
  BlockStatus rst = BlockStatus::kDeviceOff;
  std::vector<uint8_t> got(1024);
  f.sim.Spawn([](VirtualBlockDevice& d, BlockStatus& w, BlockStatus& r,
                 std::vector<uint8_t>& out) -> Task<void> {
    const std::vector<uint8_t> data(1024, 0x42);
    w = co_await d.Write(10, data, false);
    r = co_await d.Read(10, out);
  }(*f.vdisk, wst, rst, got));
  f.sim.Run();
  EXPECT_EQ(wst, BlockStatus::kOk);
  EXPECT_EQ(rst, BlockStatus::kOk);
  EXPECT_EQ(got, std::vector<uint8_t>(1024, 0x42));
  EXPECT_EQ(f.backend->requests_served(), 2u);
}

TEST(VirtualBlockDeviceTest, VirtualisationAddsLatency) {
  StackFixture f;
  Duration direct_latency;
  Duration virt_latency;
  f.sim.Spawn([](Simulator& s, StackFixture& fx, Duration& direct,
                 Duration& virt) -> Task<void> {
    const std::vector<uint8_t> data(512, 1);
    TimePoint t0 = s.now();
    co_await fx.disk.Write(0, data, false);
    direct = s.now() - t0;
    t0 = s.now();
    co_await fx.vdisk->Write(8, data, false);
    virt = s.now() - t0;
  }(f.sim, f, direct_latency, virt_latency));
  f.sim.Run();
  EXPECT_GT(virt_latency, direct_latency);
  // Overhead is microseconds, not milliseconds.
  EXPECT_LT(virt_latency - direct_latency, Duration::Micros(50));
}

TEST(VirtualBlockDeviceTest, FlushForwardedToBackend) {
  StackFixture f;
  BlockStatus fst = BlockStatus::kDeviceOff;
  f.sim.Spawn([](VirtualBlockDevice& d, BlockStatus& out) -> Task<void> {
    co_await d.Write(0, std::vector<uint8_t>(512, 9), false);
    out = co_await d.Flush();
  }(*f.vdisk, fst));
  f.sim.Run();
  EXPECT_EQ(fst, BlockStatus::kOk);
  EXPECT_TRUE(f.disk.image().IsDurable(0));
}

TEST(VirtualBlockDeviceTest, GuestCrashDuringIoUnwinds) {
  StackFixture f;
  bool crashed_seen = false;
  f.sim.Spawn([](VirtualBlockDevice& d, bool& crashed) -> Task<void> {
    try {
      // FUA write: slow mechanical path so the crash lands mid-request.
      co_await d.Write(0, std::vector<uint8_t>(512, 7), /*fua=*/true);
    } catch (const GuestCrashed&) {
      crashed = true;
    }
  }(*f.vdisk, crashed_seen));
  f.sim.Schedule(Duration::Micros(100), [&] { f.vm.Crash(); });
  f.sim.Run();
  EXPECT_TRUE(crashed_seen);
  // The write had left the guest before the crash: it still lands.
  EXPECT_TRUE(f.disk.image().IsDurable(0));
}

TEST(VirtualBlockDeviceTest, ErrorStatusPropagates) {
  StackFixture f;
  BlockStatus st = BlockStatus::kOk;
  f.sim.Spawn([](VirtualBlockDevice& d, BlockStatus& out) -> Task<void> {
    // Beyond the 1<<16-sector disk.
    out = co_await d.Write(1 << 20, std::vector<uint8_t>(512, 1), false);
  }(*f.vdisk, st));
  f.sim.Run();
  EXPECT_EQ(st, BlockStatus::kOutOfRange);
}

TEST(VirtualBlockDeviceTest, ConcurrentRequestsAllComplete) {
  StackFixture f;
  int completed = 0;
  for (int i = 0; i < 16; ++i) {
    f.sim.Spawn([](VirtualBlockDevice& d, int idx, int& done) -> Task<void> {
      const std::vector<uint8_t> data(512, static_cast<uint8_t>(idx));
      const BlockStatus st =
          co_await d.Write(static_cast<uint64_t>(idx) * 16, data, false);
      EXPECT_EQ(st, BlockStatus::kOk);
      ++done;
    }(*f.vdisk, i, completed));
  }
  f.sim.Run();
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(f.backend->requests_served(), 16u);
}

}  // namespace
}  // namespace rlvmm

#include "src/workload/tpcc_lite.h"
#include "src/workload/kv_workload.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rlwork {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;

TEST(KeyEncodingTest, FieldsDoNotCollide) {
  const uint64_t a = MakeKey(Table::kCustomer, 1, 2, 3);
  EXPECT_NE(a, MakeKey(Table::kStock, 1, 2, 3));
  EXPECT_NE(a, MakeKey(Table::kCustomer, 2, 2, 3));
  EXPECT_NE(a, MakeKey(Table::kCustomer, 1, 3, 3));
  EXPECT_NE(a, MakeKey(Table::kCustomer, 1, 2, 4));
}

TEST(RowValueTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(RowValue(96, 1, 2), RowValue(96, 1, 2));
  EXPECT_NE(RowValue(96, 1, 2), RowValue(96, 1, 3));
  EXPECT_NE(RowValue(96, 1, 2), RowValue(96, 2, 2));
  EXPECT_EQ(RowValue(96, 1, 2).size(), 96u);
}

struct DbFixture {
  DbFixture()
      : cpu(sim),
        data(sim,
             SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20}},
             rlstor::MakeDefaultSsd()),
        log(sim,
            SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20}},
            rlstor::MakeDefaultSsd()) {}

  Task<void> OpenDb() {
    rldb::DbOptions opts;
    opts.pool_pages = 1024;
    opts.journal_pages = 600;
    opts.profile.checkpoint_dirty_pages = 256;
    db = co_await rldb::Database::Open(sim, cpu, data, log, opts);
  }

  Simulator sim;
  rldb::NativeCpu cpu;
  SimBlockDevice data;
  SimBlockDevice log;
  std::unique_ptr<rldb::Database> db;
};

TEST(TpccLiteTest, LoadsAndRunsMixedClients) {
  DbFixture f;
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 20;
  cfg.items = 200;
  TpccLite tpcc(f.sim, cfg);
  bool stop = false;
  f.sim.Spawn([](DbFixture& fx, TpccLite& w, bool& stop_flag) -> Task<void> {
    co_await fx.OpenDb();
    co_await w.LoadInitial(*fx.db);
    // Everything loaded: districts + customers + stock.
    const uint64_t expected = 4 + 4 * 20 + 200;
    EXPECT_EQ(co_await fx.db->CommittedCount(), expected);
    for (int c = 0; c < 4; ++c) {
      fx.sim.Spawn(w.RunClient(*fx.db, c, &stop_flag, nullptr));
    }
    co_await fx.sim.Sleep(Duration::Seconds(1));
    stop_flag = true;
  }(f, tpcc, stop));
  f.sim.Run();
  EXPECT_GT(tpcc.stats().committed.value(), 100);
  EXPECT_GT(tpcc.stats().new_orders.value(), 10);
  EXPECT_GT(tpcc.stats().payments.value(), 10);
  EXPECT_GT(tpcc.stats().read_only.value(), 0);
}

TEST(TpccLiteTest, CheckerSeesConsistentState) {
  DbFixture f;
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 10;
  cfg.items = 100;
  TpccLite tpcc(f.sim, cfg);
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  bool stop = false;
  f.sim.Spawn([](DbFixture& fx, TpccLite& w, rlfault::DurabilityChecker& chk,
                 rlfault::VerifyResult& out, bool& stop_flag) -> Task<void> {
    co_await fx.OpenDb();
    co_await w.LoadInitial(*fx.db);
    for (int c = 0; c < 3; ++c) {
      fx.sim.Spawn(w.RunClient(*fx.db, c, &stop_flag, &chk));
    }
    co_await fx.sim.Sleep(Duration::Millis(500));
    stop_flag = true;
    co_await fx.sim.Sleep(Duration::Millis(50));
    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, tpcc, checker, verdict, stop));
  f.sim.Run();
  EXPECT_GT(verdict.keys_checked, 0u);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
}

TEST(KvWorkloadTest, RunsAndVerifies) {
  DbFixture f;
  KvWorkload kv(f.sim, KvConfig{.key_space = 500, .zipf_theta = 0.9});
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  bool stop = false;
  f.sim.Spawn([](DbFixture& fx, KvWorkload& w, rlfault::DurabilityChecker& chk,
                 rlfault::VerifyResult& out, bool& stop_flag) -> Task<void> {
    co_await fx.OpenDb();
    co_await w.Load(*fx.db, 200);
    for (int c = 0; c < 4; ++c) {
      fx.sim.Spawn(w.RunClient(*fx.db, c, &stop_flag, &chk));
    }
    co_await fx.sim.Sleep(Duration::Millis(500));
    stop_flag = true;
    co_await fx.sim.Sleep(Duration::Millis(50));
    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, kv, checker, verdict, stop));
  f.sim.Run();
  EXPECT_GT(kv.stats().committed.value(), 50);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
}

TEST(LogStressTest, MeasuresCommitRate) {
  DbFixture f;
  LogStress stress(f.sim);
  bool stop = false;
  f.sim.Spawn([](DbFixture& fx, LogStress& w, bool& stop_flag) -> Task<void> {
    co_await fx.OpenDb();
    for (int c = 0; c < 2; ++c) {
      fx.sim.Spawn(w.RunClient(*fx.db, c, &stop_flag));
    }
    co_await fx.sim.Sleep(Duration::Millis(300));
    stop_flag = true;
  }(f, stress, stop));
  f.sim.Run();
  EXPECT_GT(stress.stats().committed.value(), 100);
}

}  // namespace
}  // namespace rlwork

#include "src/storage/disk_model.h"

#include <gtest/gtest.h>

#include "src/storage/block.h"

namespace rlstor {
namespace {

using rlsim::Duration;
using rlsim::TimePoint;

TEST(HddModelTest, RotationPeriod7200Rpm) {
  HddParams p;
  p.rpm = 7200;
  EXPECT_NEAR(p.RotationPeriod().ToMillisF(), 8.333, 0.01);
}

TEST(HddModelTest, RandomAccessCostsSeekPlusRotation) {
  HddModel hdd(HddParams{});
  // A far seek from cylinder 0.
  const uint64_t far_lba = 50'000ull * 2048ull;
  const Duration t = hdd.ReadTime(TimePoint::Origin(), far_lba, 16);
  // At least several milliseconds (seek dominates), below the sum of maxima.
  EXPECT_GT(t, Duration::Millis(5));
  EXPECT_LT(t, Duration::Millis(30));
}

TEST(HddModelTest, BackToBackSequentialIsFast) {
  HddModel hdd(HddParams{});
  TimePoint now = TimePoint::Origin();
  // Position the head with an initial access.
  now += hdd.WriteTime(now, 1000, 16);
  // Immediately write the next contiguous 16 sectors: platter is right at
  // them, so latency is essentially transfer only.
  const Duration t = hdd.WriteTime(now, 1016, 16);
  const Duration transfer_only =
      HddParams{}.RotationPeriod() * (16.0 / 2048.0);
  EXPECT_LT(t, transfer_only + Duration::Micros(200));
}

TEST(HddModelTest, PacedSequentialWritesPayNearlyFullRotation) {
  HddModel hdd(HddParams{});
  TimePoint now = TimePoint::Origin();
  now += hdd.WriteTime(now, 1000, 16);
  // Let a fraction of a rotation pass (think time between commits), then
  // write the next block: the platter has moved past it, so the write waits
  // most of a revolution.
  now += Duration::Micros(500);
  const Duration t = hdd.WriteTime(now, 1016, 16);
  const Duration rotation = HddParams{}.RotationPeriod();
  EXPECT_GT(t, rotation * 0.8);
  EXPECT_LT(t, rotation * 1.2);
}

TEST(HddModelTest, SeekTimeMonotonicInDistance) {
  HddModel hdd(HddParams{});
  TimePoint now = TimePoint::Origin();
  hdd.ReadTime(now, 0, 1);  // park at cylinder 0
  HddModel hdd2(HddParams{});
  hdd2.ReadTime(now, 0, 1);
  const Duration near = hdd.ReadTime(now, 100ull * 2048ull, 1);
  const Duration far = hdd2.ReadTime(now, 90'000ull * 2048ull, 1);
  // Compare seek components by stripping identical max rotational bounds:
  // a far seek's upper bound exceeds a near seek's upper bound.
  EXPECT_GT(far + HddParams{}.RotationPeriod(), near);
}

TEST(HddModelTest, CacheTransferIsMicroseconds) {
  HddModel hdd(HddParams{});
  const Duration t = hdd.CacheTransferTime(16);  // 8 KiB
  EXPECT_LT(t, Duration::Micros(200));
  EXPECT_GT(t, Duration::Zero());
}

TEST(HddModelTest, TransferScalesWithLength) {
  HddModel a(HddParams{});
  HddModel b(HddParams{});
  TimePoint now = TimePoint::Origin();
  a.WriteTime(now, 0, 1);
  b.WriteTime(now, 0, 1);
  // Continue sequentially so rotational wait is ~zero; length dominates.
  const Duration t_short = a.WriteTime(now + Duration::Millis(100), 2048, 16);
  const Duration t_long = b.WriteTime(now + Duration::Millis(100), 2048, 1024);
  EXPECT_GT(t_long, t_short);
}

TEST(SsdModelTest, NoPositionDependence) {
  SsdModel ssd(SsdParams{});
  const TimePoint now = TimePoint::Origin();
  const Duration a = ssd.ReadTime(now, 0, 16);
  const Duration b = ssd.ReadTime(now, 1'000'000, 16);
  EXPECT_EQ(a.nanos(), b.nanos());
}

TEST(SsdModelTest, WriteSlowerThanRead) {
  SsdModel ssd(SsdParams{});
  const TimePoint now = TimePoint::Origin();
  EXPECT_GT(ssd.WriteTime(now, 0, 16), ssd.ReadTime(now, 0, 16));
}

TEST(SsdModelTest, OrdersOfMagnitudeFasterThanHddRandom) {
  SsdModel ssd(SsdParams{});
  HddModel hdd(HddParams{});
  const TimePoint now = TimePoint::Origin();
  const Duration ssd_t = ssd.WriteTime(now, 12345678, 16);
  const Duration hdd_t = hdd.WriteTime(now, 12345678ull * 100, 16);
  EXPECT_LT(ssd_t * 10, hdd_t);
}

TEST(FactoryTest, DefaultsConstruct) {
  EXPECT_EQ(MakeDefaultHdd()->name(), "hdd");
  EXPECT_EQ(MakeDefaultSsd()->name(), "ssd");
}

}  // namespace
}  // namespace rlstor

#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/task.h"

namespace rlsim {
namespace {

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::Origin());
}

TEST(SimulatorTest, ScheduleAdvancesClock) {
  Simulator sim;
  TimePoint seen;
  sim.Schedule(Duration::Millis(5), [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_EQ(seen, TimePoint::Origin() + Duration::Millis(5));
  EXPECT_EQ(sim.now(), TimePoint::Origin() + Duration::Millis(5));
}

TEST(SimulatorTest, EventsRunInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Duration::Millis(3), [&] { order.push_back(3); });
  sim.Schedule(Duration::Millis(1), [&] { order.push_back(1); });
  sim.Schedule(Duration::Millis(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Duration::Millis(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] {
    sim.Schedule(Duration::Millis(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().nanos(), Duration::Millis(2).nanos());
}

TEST(SimulatorTest, SchedulingInThePastFails) {
  Simulator sim;
  EXPECT_THROW(sim.Schedule(Duration::Millis(-1), [] {}), CheckFailure);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] { ++fired; });
  sim.Schedule(Duration::Millis(10), [&] { ++fired; });
  sim.RunUntil(TimePoint::Origin() + Duration::Millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::Origin() + Duration::Millis(5));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Duration::Millis(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

Task<int> Return42() { co_return 42; }

Task<int> AddOne(Simulator& sim) {
  co_await sim.Sleep(Duration::Millis(1));
  const int v = co_await Return42();
  co_return v + 1;
}

TEST(SimulatorTest, SpawnedTaskRunsAndCompletes) {
  Simulator sim;
  int result = 0;
  sim.Spawn([](Simulator& s, int& out) -> Task<void> {
    out = co_await AddOne(s);
  }(sim, result));
  sim.Run();
  EXPECT_EQ(result, 43);
  EXPECT_EQ(sim.pending_tasks(), 0u);
}

TEST(SimulatorTest, SleepAdvancesVirtualTimeOnly) {
  Simulator sim;
  TimePoint woke;
  sim.Spawn([](Simulator& s, TimePoint& out) -> Task<void> {
    co_await s.Sleep(Duration::Seconds(3600));
    out = s.now();
  }(sim, woke));
  sim.Run();
  EXPECT_EQ(woke, TimePoint::Origin() + Duration::Seconds(3600));
}

TEST(SimulatorTest, ZeroSleepYields) {
  Simulator sim;
  std::vector<int> order;
  // Spawn starts the task synchronously: it records 1 and parks its wakeup
  // behind the already-queued event recording 2.
  sim.Schedule(Duration::Zero(), [&] { order.push_back(2); });
  sim.Spawn([](Simulator& s, std::vector<int>& o) -> Task<void> {
    o.push_back(1);
    co_await s.Sleep(Duration::Zero());
    o.push_back(3);
  }(sim, order));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ManyInterleavedTasks) {
  Simulator sim;
  int total = 0;
  for (int i = 0; i < 100; ++i) {
    sim.Spawn([](Simulator& s, int delay, int& sum) -> Task<void> {
      for (int k = 0; k < 10; ++k) {
        co_await s.Sleep(Duration::Micros(delay));
        ++sum;
      }
    }(sim, i + 1, total));
  }
  sim.Run();
  EXPECT_EQ(total, 1000);
}

TEST(SimulatorTest, TaskExceptionPropagatesFromRun) {
  Simulator sim;
  sim.Spawn([](Simulator& s) -> Task<void> {
    co_await s.Sleep(Duration::Millis(1));
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.Run(), std::runtime_error);
}

TEST(SimulatorTest, AwaitedTaskExceptionReachesParent) {
  Simulator sim;
  bool caught = false;
  sim.Spawn([](Simulator& s, bool& c) -> Task<void> {
    try {
      co_await [](Simulator& s2) -> Task<void> {
        co_await s2.Sleep(Duration::Millis(1));
        throw std::runtime_error("child boom");
      }(s);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(sim, caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<int64_t> trace;
    for (int i = 0; i < 10; ++i) {
      sim.Spawn([](Simulator& s, std::vector<int64_t>& t) -> Task<void> {
        Rng rng = s.rng().Fork();
        for (int k = 0; k < 20; ++k) {
          co_await s.Sleep(Duration::Micros(rng.UniformInt(1, 50)));
          t.push_back(s.now().nanos());
        }
      }(sim, trace));
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(SimulatorTest, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Duration::Millis(i + 1), [] {});
  }
  EXPECT_EQ(sim.Run(), 5u);
}

}  // namespace
}  // namespace rlsim

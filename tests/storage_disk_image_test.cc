#include "src/storage/disk_image.h"

#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "src/sim/check.h"

namespace rlstor {
namespace {

using SectorBuf = std::array<uint8_t, kSectorSize>;

SectorBuf Pattern(uint8_t fill) {
  SectorBuf buf;
  buf.fill(fill);
  return buf;
}

TEST(DiskImageTest, UnwrittenReadsZero) {
  DiskImage img(100);
  SectorBuf out = Pattern(0xFF);
  img.Read(5, out);
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(img.state(5), SectorState::kUnwritten);
  EXPECT_TRUE(img.IsDurable(5));
}

TEST(DiskImageTest, CachedWriteReadsBackButNotDurable) {
  DiskImage img(100);
  const SectorBuf data = Pattern(0xAB);
  img.WriteCached(3, data);
  SectorBuf out{};
  img.Read(3, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(img.state(3), SectorState::kCachedVolatile);
  EXPECT_FALSE(img.IsDurable(3));
  // The durable medium still reads as zero.
  img.ReadDurable(3, out);
  EXPECT_EQ(out, Pattern(0));
}

TEST(DiskImageTest, DurableWriteSurvivesPowerLoss) {
  DiskImage img(100);
  const SectorBuf data = Pattern(0xCD);
  img.WriteDurable(7, data);
  img.PowerLoss();
  SectorBuf out{};
  img.Read(7, out);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(img.IsDurable(7));
}

TEST(DiskImageTest, CachedWriteLostOnPowerLoss) {
  DiskImage img(100);
  img.WriteCached(7, Pattern(0xCD));
  img.PowerLoss();
  SectorBuf out{};
  img.Read(7, out);
  EXPECT_EQ(out, Pattern(0));
  EXPECT_EQ(img.state(7), SectorState::kUnwritten);
}

TEST(DiskImageTest, HardenMakesCachedDurable) {
  DiskImage img(100);
  const SectorBuf data = Pattern(0x11);
  img.WriteCached(9, data);
  img.Harden(9);
  EXPECT_EQ(img.state(9), SectorState::kDurable);
  img.PowerLoss();
  SectorBuf out{};
  img.Read(9, out);
  EXPECT_EQ(out, data);
}

TEST(DiskImageTest, HardenAllFlushesEverything) {
  DiskImage img(100);
  for (uint64_t s = 0; s < 20; ++s) {
    img.WriteCached(s, Pattern(static_cast<uint8_t>(s)));
  }
  EXPECT_EQ(img.cached_sector_count(), 20u);
  img.HardenAll();
  EXPECT_EQ(img.cached_sector_count(), 0u);
  for (uint64_t s = 0; s < 20; ++s) {
    EXPECT_EQ(img.state(s), SectorState::kDurable);
  }
}

TEST(DiskImageTest, HardenOfNonCachedIsNoOp) {
  DiskImage img(100);
  img.Harden(3);
  EXPECT_EQ(img.state(3), SectorState::kUnwritten);
}

TEST(DiskImageTest, CacheShadowsDurableUntilHardened) {
  DiskImage img(100);
  img.WriteDurable(4, Pattern(0x01));
  img.WriteCached(4, Pattern(0x02));
  SectorBuf out{};
  img.Read(4, out);
  EXPECT_EQ(out, Pattern(0x02));  // newest wins
  img.ReadDurable(4, out);
  EXPECT_EQ(out, Pattern(0x01));  // medium still has old version
  img.PowerLoss();
  img.Read(4, out);
  EXPECT_EQ(out, Pattern(0x01));  // cached version lost
}

TEST(DiskImageTest, TornSectorMarkedAndCorrupted) {
  DiskImage img(100);
  img.WriteDurable(12, Pattern(0x55));
  img.PowerLoss(/*torn_sector=*/12);
  EXPECT_EQ(img.state(12), SectorState::kTorn);
  EXPECT_FALSE(img.IsDurable(12));
  SectorBuf out{};
  img.Read(12, out);
  EXPECT_NE(out, Pattern(0x55));
}

TEST(DiskImageTest, RewriteClearsTornState) {
  DiskImage img(100);
  img.PowerLoss(/*torn_sector=*/12);
  EXPECT_EQ(img.state(12), SectorState::kTorn);
  img.WriteDurable(12, Pattern(0x66));
  EXPECT_EQ(img.state(12), SectorState::kDurable);
}

TEST(DiskImageTest, OutOfRangeRejected) {
  DiskImage img(10);
  SectorBuf buf{};
  EXPECT_THROW(img.Read(10, buf), rlsim::CheckFailure);
  EXPECT_THROW(img.WriteDurable(11, buf), rlsim::CheckFailure);
  EXPECT_THROW(img.WriteCached(100, buf), rlsim::CheckFailure);
}

TEST(DiskImageTest, CachedBytesAccounting) {
  DiskImage img(100);
  img.WriteCached(1, Pattern(1));
  img.WriteCached(2, Pattern(2));
  img.WriteCached(1, Pattern(3));  // overwrite, no growth
  EXPECT_EQ(img.cached_sector_count(), 2u);
  EXPECT_EQ(img.cached_bytes(), 2u * kSectorSize);
}

}  // namespace
}  // namespace rlstor

// Property test: WAL recovery under random corruption of the last log
// sector. A power cut tears whatever write was in flight, and the in-flight
// write is always the tail block — so recovery must tolerate arbitrary
// damage to the newest sector: garbage contents, or a handful of flipped
// bits that a real torn write would leave behind.
//
// Oracle (valid-prefix): the scan returns a dense LSN prefix of exactly what
// the writer appended — no invented or altered records (the block CRC is the
// defence), and nothing missing except records living in the corrupted tail
// block itself.
#include <gtest/gtest.h>

#include <vector>

#include "src/db/wal.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::kSectorSize;
using rlstor::SimBlockDevice;

// A 512-byte block holds at most ~11 of our records (smallest encoding is
// 35 bytes of framing + 8 bytes of value); 16 is a safe ceiling on how many
// records corrupting one block may take out.
constexpr size_t kMaxRecordsPerBlock = 16;

void RunTornTailCase(uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  Simulator sim(seed);
  SimBlockDevice dev(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 16}},
                     rlstor::MakeDefaultSsd());
  const EngineProfile profile = InnodbLikeProfile();  // 512-byte blocks
  LogWriter writer(sim, dev, profile, DurabilityMode::kSync);
  writer.ResumeAt(0, 1);

  // Case-local RNG, independent of the simulator's streams.
  rlsim::Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  const int appends = static_cast<int>(rng.UniformInt(40, 250));
  std::vector<LogRecord> appended;
  appended.reserve(static_cast<size_t>(appends));
  for (int i = 0; i < appends; ++i) {
    LogRecord rec;
    rec.type = rng.Chance(0.1) ? LogRecordType::kCommit
                               : LogRecordType::kUpdate;
    rec.txn_id = static_cast<uint64_t>(i) / 4 + 1;
    rec.key = rng.UniformInt(0, 5000);
    if (rec.type == LogRecordType::kUpdate) {
      rec.value.assign(rng.UniformInt(8, 120),
                       static_cast<uint8_t>(rng.UniformInt(0, 255)));
    }
    appended.push_back(rec);
  }

  sim.Spawn([](Simulator& s, LogWriter& w, rlsim::Rng& r,
               std::vector<LogRecord>& recs) -> Task<void> {
    for (LogRecord& rec : recs) {
      const uint64_t lsn = w.Append(rec);
      rec.lsn = lsn;
      co_await w.WaitDurable(lsn);
      if (r.Chance(0.3)) {
        co_await s.Sleep(Duration::Micros(r.UniformInt(10, 300)));
      }
    }
    co_await w.Shutdown();
  }(sim, writer, rng, appended));
  sim.Run();
  ASSERT_EQ(writer.durable_lsn(), static_cast<uint64_t>(appends));

  // Power-cycle: the volatile write cache dies, the durable medium stays.
  dev.PowerLoss();
  dev.PowerRestore();

  // Corrupt the newest durable sector — the tail block a real cut would
  // have torn mid-write.
  const std::vector<uint64_t> durable = dev.image().DurableSectorList();
  ASSERT_FALSE(durable.empty());
  const uint64_t tail = durable.back();
  std::vector<uint8_t> sector(kSectorSize);
  dev.image().ReadDurable(tail, sector);
  if (rng.Chance(0.5)) {
    // Total garbage: the drive wrote noise.
    for (uint8_t& b : sector) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
  } else {
    // A few flipped bits: the subtler corruption CRCs exist to catch.
    const int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      const uint64_t bit = rng.UniformInt(0, kSectorSize * 8 - 1);
      sector[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  dev.image().WriteDurable(tail, sector);

  LogScanResult scan;
  sim.Spawn([](SimBlockDevice& d, const EngineProfile& p,
               LogScanResult& out) -> Task<void> {
    out = co_await ScanLog(d, p, 0);
  }(dev, profile, scan));
  sim.Run();

  // Dense prefix, and every surviving record is bit-for-bit what was
  // appended — corruption may truncate history, never rewrite it.
  ASSERT_LE(scan.records.size(), appended.size());
  for (size_t i = 0; i < scan.records.size(); ++i) {
    ASSERT_EQ(scan.records[i].lsn, i + 1);
    EXPECT_EQ(scan.records[i].type, appended[i].type);
    EXPECT_EQ(scan.records[i].txn_id, appended[i].txn_id);
    EXPECT_EQ(scan.records[i].key, appended[i].key);
    EXPECT_EQ(scan.records[i].value, appended[i].value);
  }
  // Only records inside the one corrupted block may be missing.
  EXPECT_GE(scan.records.size() + kMaxRecordsPerBlock, appended.size())
      << "corrupting the tail sector must not take out earlier blocks";
}

TEST(WalTornTailTest, ValidPrefixUnderRandomTailCorruption) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    RunTornTailCase(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace rldb

#include "src/obs/trace_context.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/net/network_fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace rlobs {
namespace {

TEST(TraceContextTest, EncodeDecodeRoundTrips) {
  TraceContext ctx;
  ctx.trace_id = 0x1122334455667788ull;
  ctx.parent_span = 42;
  ctx.origin_ns = -7;  // origin predates epoch in clamped recovery replays
  const std::vector<uint8_t> blob = ctx.Encode();
  ASSERT_EQ(blob.size(), 28u);
  EXPECT_EQ(TraceContext::Decode(blob), ctx);
}

TEST(TraceContextTest, InvalidContextEncodesEmpty) {
  TraceContext ctx;  // trace_id 0 == invalid
  ctx.parent_span = 9;
  EXPECT_FALSE(ctx.valid());
  EXPECT_TRUE(ctx.Encode().empty());
}

TEST(TraceContextTest, MalformedBlobsDecodeInvalid) {
  EXPECT_FALSE(TraceContext::Decode({}).valid());
  EXPECT_FALSE(TraceContext::Decode(std::vector<uint8_t>(27, 1)).valid());
  EXPECT_FALSE(TraceContext::Decode(std::vector<uint8_t>(29, 1)).valid());
  // Right size, wrong magic.
  std::vector<uint8_t> blob(28, 0);
  blob[8] = 1;  // nonzero trace id so only the magic is at fault
  EXPECT_FALSE(TraceContext::Decode(blob).valid());
  // Corrupting the magic of a valid blob must also invalidate it.
  TraceContext ctx;
  ctx.trace_id = 5;
  std::vector<uint8_t> good = ctx.Encode();
  good[0] ^= 0xff;
  EXPECT_FALSE(TraceContext::Decode(good).valid());
}

// The determinism contract: attaching a trace-context extension must not
// change what the network model observes — no bytes accounted, no change to
// serialisation time, identical delivery schedule.
TEST(TraceContextTest, FrameExtensionIsInvisibleToTheNetworkModel) {
  struct Observed {
    uint64_t bytes = 0;
    int64_t delivered_at = 0;
  };
  auto run = [](bool with_ext) {
    rlsim::Simulator sim(99);
    rlnet::NetworkFabric net(sim);
    net.CreateEndpoint("a");
    rlnet::Endpoint& b = net.CreateEndpoint("b");
    rlnet::LinkParams slow;
    slow.bandwidth_mbps = 1.0;  // make tx time dominate so padding would show
    net.Connect("a", "b", slow);

    TraceContext ctx;
    ctx.trace_id = 7;
    ctx.parent_span = 7;
    ctx.origin_ns = 123;

    std::vector<uint8_t> payload(4096, 0xab);
    if (with_ext) {
      net.Send("a", "b", payload, ctx.Encode());
    } else {
      net.Send("a", "b", payload);
    }

    Observed obs;
    // Parameters, not captures: the lambda object dies before the coroutine
    // finishes (same idiom as net_fabric_test).
    sim.Spawn([](rlnet::Endpoint& ep, rlsim::Simulator& s, Observed& out,
                 const TraceContext& want, bool expect_ext)
                  -> rlsim::Task<void> {
      const rlnet::Message msg = co_await ep.Receive();
      out.delivered_at = s.now().nanos();
      EXPECT_EQ(msg.ext.empty(), !expect_ext);
      if (expect_ext) {
        EXPECT_EQ(TraceContext::Decode(msg.ext), want);
      }
    }(b, sim, obs, ctx, with_ext));
    sim.Run();
    obs.bytes = net.stats().bytes_sent.value();
    return obs;
  };

  const Observed plain = run(false);
  const Observed traced = run(true);
  EXPECT_EQ(plain.bytes, traced.bytes);
  EXPECT_EQ(plain.delivered_at, traced.delivered_at);
  EXPECT_EQ(plain.bytes, 4096u);
}

}  // namespace
}  // namespace rlobs

#include "src/microkernel/kernel.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace rlkern {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

constexpr size_t kRootSlots = 256;
constexpr CPtr kUntypedSlot = 0;

struct Fixture {
  Fixture() : kernel(sim) {
    root = kernel.BootstrapCNode(kRootSlots);
    EXPECT_EQ(kernel.BootstrapUntyped(root, kUntypedSlot, 1 << 20),
              KernelStatus::kOk);
  }

  SlotAddr Slot(CPtr i) const { return SlotAddr{root, i}; }

  Simulator sim;
  Kernel kernel;
  ObjectId root = kNullObject;
};

TEST(KernelTest, BootstrapInvariantsHold) {
  Fixture f;
  f.kernel.CheckInvariants();
  Capability cap;
  ASSERT_EQ(f.kernel.Lookup(f.Slot(kUntypedSlot), &cap), KernelStatus::kOk);
  EXPECT_EQ(cap.type, ObjectType::kUntyped);
}

TEST(KernelTest, RetypeCreatesEndpoints) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 4),
            KernelStatus::kOk);
  for (CPtr i = 10; i < 14; ++i) {
    Capability cap;
    ASSERT_EQ(f.kernel.Lookup(f.Slot(i), &cap), KernelStatus::kOk);
    EXPECT_EQ(cap.type, ObjectType::kEndpoint);
    EXPECT_TRUE(cap.rights.read && cap.rights.write);
  }
  f.kernel.CheckInvariants();
}

TEST(KernelTest, RetypeIntoOccupiedSlotFails) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  EXPECT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kSlotOccupied);
  f.kernel.CheckInvariants();
}

TEST(KernelTest, RetypeExhaustsUntyped) {
  Fixture f;
  // Region is 1 MiB; TCBs are 1 KiB each; slot space limits us anyway, so
  // use frames of 128 KiB: 8 fit, the 9th does not.
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kFrame,
                            128 * 1024, f.root, 20, 8),
            KernelStatus::kOk);
  EXPECT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kFrame,
                            128 * 1024, f.root, 40, 1),
            KernelStatus::kOutOfMemory);
  f.kernel.CheckInvariants();
}

TEST(KernelTest, MintShrinksRightsOnly) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  // Shrink to send-only: fine.
  ASSERT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(11), CapRights::WriteOnly(), 7),
            KernelStatus::kOk);
  Capability cap;
  ASSERT_EQ(f.kernel.Lookup(f.Slot(11), &cap), KernelStatus::kOk);
  EXPECT_EQ(cap.badge, 7u);
  EXPECT_FALSE(cap.rights.read);
  // Attempt to widen from the minted (write-only) cap: rejected.
  EXPECT_EQ(f.kernel.Mint(f.Slot(11), f.Slot(12), CapRights::All(), 0),
            KernelStatus::kNoRights);
  // Re-badging a badged capability: rejected.
  EXPECT_EQ(f.kernel.Mint(f.Slot(11), f.Slot(12), CapRights::WriteOnly(), 9),
            KernelStatus::kInvalidArgument);
  f.kernel.CheckInvariants();
}

TEST(KernelTest, BadgeOnFrameRejected) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kFrame, 4096,
                            f.root, 10, 1),
            KernelStatus::kOk);
  EXPECT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(11), CapRights::All(), 3),
            KernelStatus::kInvalidArgument);
}

TEST(KernelTest, DeleteLastCapDestroysObject) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  Capability cap;
  ASSERT_EQ(f.kernel.Lookup(f.Slot(10), &cap), KernelStatus::kOk);
  const ObjectId ep = cap.object;
  ASSERT_EQ(f.kernel.Copy(f.Slot(10), f.Slot(11)), KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Delete(f.Slot(10)), KernelStatus::kOk);
  EXPECT_TRUE(f.kernel.ObjectAlive(ep));  // copy still references it
  ASSERT_EQ(f.kernel.Delete(f.Slot(11)), KernelStatus::kOk);
  EXPECT_FALSE(f.kernel.ObjectAlive(ep));
  f.kernel.CheckInvariants();
}

TEST(KernelTest, RevokeRemovesDerivedTree) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(11), CapRights::WriteOnly(), 1),
            KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Copy(f.Slot(11), f.Slot(12)), KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Revoke(f.Slot(10)), KernelStatus::kOk);
  // Derived caps gone, original remains.
  EXPECT_EQ(f.kernel.Lookup(f.Slot(11), nullptr), KernelStatus::kEmptySlot);
  EXPECT_EQ(f.kernel.Lookup(f.Slot(12), nullptr), KernelStatus::kEmptySlot);
  EXPECT_EQ(f.kernel.Lookup(f.Slot(10), nullptr), KernelStatus::kOk);
  f.kernel.CheckInvariants();
}

TEST(KernelTest, RevokeUntypedReclaimsRegion) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kFrame,
                            512 * 1024, f.root, 10, 2),
            KernelStatus::kOk);
  // Region full now.
  EXPECT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kFrame, 4096,
                            f.root, 30, 1),
            KernelStatus::kOutOfMemory);
  ASSERT_EQ(f.kernel.Revoke(f.Slot(kUntypedSlot)), KernelStatus::kOk);
  EXPECT_EQ(f.kernel.Lookup(f.Slot(10), nullptr), KernelStatus::kEmptySlot);
  // Watermark reset: retype works again.
  EXPECT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kFrame, 4096,
                            f.root, 30, 1),
            KernelStatus::kOk);
  f.kernel.CheckInvariants();
}

TEST(KernelTest, SendRecvRendezvous) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  Received got;
  KernelStatus recv_st = KernelStatus::kInvalidArgument;
  KernelStatus send_st = KernelStatus::kInvalidArgument;
  f.sim.Spawn([](Kernel& k, SlotAddr ep, Received& out,
                 KernelStatus& st) -> Task<void> {
    st = co_await k.Recv(ep, &out);
  }(f.kernel, f.Slot(10), got, recv_st));
  f.sim.Spawn([](Kernel& k, SlotAddr ep, KernelStatus& st) -> Task<void> {
    IpcMessage msg;
    msg.label = 42;
    msg.words = {1, 2, 3};
    st = co_await k.Send(ep, std::move(msg));
  }(f.kernel, f.Slot(10), send_st));
  f.sim.Run();
  EXPECT_EQ(recv_st, KernelStatus::kOk);
  EXPECT_EQ(send_st, KernelStatus::kOk);
  EXPECT_EQ(got.message.label, 42u);
  EXPECT_EQ(got.message.words, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_FALSE(got.reply.valid());
  EXPECT_EQ(f.kernel.ipc_count(), 1u);
}

TEST(KernelTest, SendBlocksUntilReceiverArrives) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  rlsim::TimePoint send_done;
  f.sim.Spawn([](Simulator& s, Kernel& k, SlotAddr ep,
                 rlsim::TimePoint& done) -> Task<void> {
    IpcMessage msg;  // named: GCC 12 mishandles non-trivial prvalue args to coroutines
    co_await k.Send(ep, std::move(msg));
    done = s.now();
  }(f.sim, f.kernel, f.Slot(10), send_done));
  f.sim.Spawn([](Simulator& s, Kernel& k, SlotAddr ep) -> Task<void> {
    co_await s.Sleep(Duration::Millis(5));
    Received got;
    co_await k.Recv(ep, &got);
  }(f.sim, f.kernel, f.Slot(10)));
  f.sim.Run();
  EXPECT_GE(send_done, rlsim::TimePoint::Origin() + Duration::Millis(5));
}

TEST(KernelTest, BadgedSendIdentifiesClient) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(11), CapRights::WriteOnly(), 99),
            KernelStatus::kOk);
  Received got;
  KernelStatus recv_st = KernelStatus::kInvalidArgument;
  f.sim.Spawn([](Kernel& k, SlotAddr ep, Received& out,
                 KernelStatus& st) -> Task<void> {
    st = co_await k.Recv(ep, &out);
  }(f.kernel, f.Slot(10), got, recv_st));
  f.sim.Spawn([](Kernel& k, SlotAddr ep) -> Task<void> {
    IpcMessage msg;  // named: GCC 12 mishandles non-trivial prvalue args to coroutines
    co_await k.Send(ep, std::move(msg));
  }(f.kernel, f.Slot(11)));
  f.sim.Run();
  EXPECT_EQ(recv_st, KernelStatus::kOk);
  EXPECT_EQ(got.message.sender_badge, 99u);
}

TEST(KernelTest, CallReplyRoundTrip) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  // Server: receive, double the word, reply.
  f.sim.Spawn([](Kernel& k, SlotAddr ep) -> Task<void> {
    Received got;
    co_await k.Recv(ep, &got);
    IpcMessage reply;
    reply.words = {got.message.words[0] * 2};
    k.Reply(got.reply, std::move(reply));
  }(f.kernel, f.Slot(10)));
  IpcMessage reply;
  KernelStatus call_st = KernelStatus::kInvalidArgument;
  f.sim.Spawn([](Kernel& k, SlotAddr ep, IpcMessage& out,
                 KernelStatus& st) -> Task<void> {
    IpcMessage msg;
    msg.words = {21};
    st = co_await k.Call(ep, std::move(msg), &out);
  }(f.kernel, f.Slot(10), reply, call_st));
  f.sim.Run();
  EXPECT_EQ(call_st, KernelStatus::kOk);
  ASSERT_EQ(reply.words.size(), 1u);
  EXPECT_EQ(reply.words[0], 42u);
}

TEST(KernelTest, SendWithoutWriteRightFails) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(11), CapRights::ReadOnly(), 0),
            KernelStatus::kOk);
  KernelStatus st = KernelStatus::kOk;
  f.sim.Spawn([](Kernel& k, SlotAddr ep, KernelStatus& out) -> Task<void> {
    IpcMessage msg;  // named: GCC 12 mishandles non-trivial prvalue args to coroutines
    out = co_await k.Send(ep, std::move(msg));
  }(f.kernel, f.Slot(11), st));
  f.sim.Run();
  EXPECT_EQ(st, KernelStatus::kNoRights);
}

TEST(KernelTest, SendToFrameCapFails) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kFrame, 4096,
                            f.root, 10, 1),
            KernelStatus::kOk);
  KernelStatus st = KernelStatus::kOk;
  f.sim.Spawn([](Kernel& k, SlotAddr ep, KernelStatus& out) -> Task<void> {
    IpcMessage msg;  // named: GCC 12 mishandles non-trivial prvalue args to coroutines
    out = co_await k.Send(ep, std::move(msg));
  }(f.kernel, f.Slot(10), st));
  f.sim.Run();
  EXPECT_EQ(st, KernelStatus::kTypeMismatch);
}

TEST(KernelTest, NotificationSignalWaitPoll) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kNotification,
                            0, f.root, 10, 1),
            KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(11), CapRights::WriteOnly(), 0b100),
            KernelStatus::kOk);
  uint64_t bits = 0;
  KernelStatus wait_st = KernelStatus::kInvalidArgument;
  f.sim.Spawn([](Kernel& k, SlotAddr n, uint64_t& out,
                 KernelStatus& st) -> Task<void> {
    st = co_await k.Wait(n, &out);
  }(f.kernel, f.Slot(10), bits, wait_st));
  f.sim.Schedule(Duration::Millis(1), [&] {
    EXPECT_EQ(f.kernel.Signal(f.Slot(11)), KernelStatus::kOk);
  });
  f.sim.Run();
  EXPECT_EQ(wait_st, KernelStatus::kOk);
  EXPECT_EQ(bits, 0b100u);
  // Word was cleared by Wait.
  uint64_t polled = 123;
  EXPECT_EQ(f.kernel.Poll(f.Slot(10), &polled), KernelStatus::kOk);
  EXPECT_EQ(polled, 0u);
}

TEST(KernelTest, NotificationBadgesAccumulate) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kNotification,
                            0, f.root, 10, 1),
            KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(11), CapRights::WriteOnly(), 0b01),
            KernelStatus::kOk);
  ASSERT_EQ(f.kernel.Mint(f.Slot(10), f.Slot(12), CapRights::WriteOnly(), 0b10),
            KernelStatus::kOk);
  EXPECT_EQ(f.kernel.Signal(f.Slot(11)), KernelStatus::kOk);
  EXPECT_EQ(f.kernel.Signal(f.Slot(12)), KernelStatus::kOk);
  uint64_t bits = 0;
  EXPECT_EQ(f.kernel.Poll(f.Slot(10), &bits), KernelStatus::kOk);
  EXPECT_EQ(bits, 0b11u);
}

TEST(KernelTest, IpcCostsSimulatedTime) {
  Fixture f;
  ASSERT_EQ(f.kernel.Retype(f.Slot(kUntypedSlot), ObjectType::kEndpoint, 0,
                            f.root, 10, 1),
            KernelStatus::kOk);
  f.sim.Spawn([](Kernel& k, SlotAddr ep) -> Task<void> {
    Received got;
    co_await k.Recv(ep, &got);
  }(f.kernel, f.Slot(10)));
  f.sim.Spawn([](Kernel& k, SlotAddr ep) -> Task<void> {
    IpcMessage msg;  // named: GCC 12 mishandles non-trivial prvalue args to coroutines
    co_await k.Send(ep, std::move(msg));
  }(f.kernel, f.Slot(10)));
  f.sim.Run();
  EXPECT_GT(f.sim.now(), rlsim::TimePoint::Origin());
  EXPECT_LT(f.sim.now() - rlsim::TimePoint::Origin(), Duration::Micros(10));
}

TEST(KernelTest, InvalidSlotOperations) {
  Fixture f;
  EXPECT_EQ(f.kernel.Delete(SlotAddr{f.root, 9999}),
            KernelStatus::kInvalidSlot);
  EXPECT_EQ(f.kernel.Delete(f.Slot(50)), KernelStatus::kEmptySlot);
  EXPECT_EQ(f.kernel.Lookup(SlotAddr{kNullObject, 0}, nullptr),
            KernelStatus::kInvalidSlot);
}

}  // namespace
}  // namespace rlkern

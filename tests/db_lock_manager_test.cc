#include "src/db/lock_manager.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace rldb {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlsim::TimePoint;

TEST(LockManagerTest, UncontendedAcquire) {
  Simulator sim;
  LockManager lm(sim, Duration::Millis(100));
  bool got = false;
  sim.Spawn([](LockManager& l, bool& out) -> Task<void> {
    out = co_await l.Acquire(1, 42);
  }(lm, got));
  sim.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(lm.held_count(1), 1u);
}

TEST(LockManagerTest, ReentrantForHolder) {
  Simulator sim;
  LockManager lm(sim, Duration::Millis(100));
  sim.Spawn([](LockManager& l) -> Task<void> {
    EXPECT_TRUE(co_await l.Acquire(1, 42));
    EXPECT_TRUE(co_await l.Acquire(1, 42));
  }(lm));
  sim.Run();
  EXPECT_EQ(lm.held_count(1), 1u);
}

TEST(LockManagerTest, ContendedWaitsForRelease) {
  Simulator sim;
  LockManager lm(sim, Duration::Millis(100));
  TimePoint second_acquired;
  sim.Spawn([](Simulator& s, LockManager& l) -> Task<void> {
    co_await l.Acquire(1, 7);
    co_await s.Sleep(Duration::Millis(5));
    l.ReleaseAll(1);
  }(sim, lm));
  sim.Spawn([](Simulator& s, LockManager& l, TimePoint& out) -> Task<void> {
    co_await s.Sleep(Duration::Millis(1));
    EXPECT_TRUE(co_await l.Acquire(2, 7));
    out = s.now();
  }(sim, lm, second_acquired));
  sim.Run();
  EXPECT_EQ(second_acquired, TimePoint::Origin() + Duration::Millis(5));
  EXPECT_EQ(lm.held_count(2), 1u);
}

TEST(LockManagerTest, FifoHandoff) {
  Simulator sim;
  LockManager lm(sim, Duration::Seconds(10));
  std::vector<int> order;
  sim.Spawn([](Simulator& s, LockManager& l) -> Task<void> {
    co_await l.Acquire(1, 9);
    co_await s.Sleep(Duration::Millis(3));
    l.ReleaseAll(1);
  }(sim, lm));
  for (int i = 2; i <= 5; ++i) {
    sim.Spawn([](Simulator& s, LockManager& l, int id,
                 std::vector<int>& out) -> Task<void> {
      co_await s.Sleep(Duration::Micros(id));  // deterministic queue order
      co_await l.Acquire(static_cast<uint64_t>(id), 9);
      out.push_back(id);
      co_await s.Sleep(Duration::Millis(1));
      l.ReleaseAll(static_cast<uint64_t>(id));
    }(sim, lm, i, order));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 5}));
}

TEST(LockManagerTest, TimeoutReturnsFalse) {
  Simulator sim;
  LockManager lm(sim, Duration::Millis(10));
  bool second = true;
  sim.Spawn([](LockManager& l) -> Task<void> {
    co_await l.Acquire(1, 5);
    // Holder never releases.
  }(lm));
  sim.Spawn([](Simulator& s, LockManager& l, bool& out) -> Task<void> {
    co_await s.Sleep(Duration::Millis(1));
    out = co_await l.Acquire(2, 5);
  }(sim, lm, second));
  sim.Run();
  EXPECT_FALSE(second);
  EXPECT_EQ(lm.stats().timeouts.value(), 1);
  EXPECT_EQ(lm.held_count(2), 0u);
}

TEST(LockManagerTest, TimedOutWaiterSkippedOnRelease) {
  Simulator sim;
  LockManager lm(sim, Duration::Millis(10));
  bool third = false;
  sim.Spawn([](Simulator& s, LockManager& l) -> Task<void> {
    co_await l.Acquire(1, 5);
    co_await s.Sleep(Duration::Millis(50));  // outlive waiter 2's patience
    l.ReleaseAll(1);
  }(sim, lm));
  sim.Spawn([](Simulator& s, LockManager& l) -> Task<void> {
    co_await s.Sleep(Duration::Millis(1));
    EXPECT_FALSE(co_await l.Acquire(2, 5));  // times out at 11 ms
  }(sim, lm));
  sim.Spawn([](Simulator& s, LockManager& l, bool& out) -> Task<void> {
    co_await s.Sleep(Duration::Millis(45));
    // Acquired at 50 ms when txn 1 releases; inside the 10 ms timeout.
    out = co_await l.Acquire(3, 5);
  }(sim, lm, third));
  sim.Run();
  EXPECT_TRUE(third);
}

TEST(LockManagerTest, DeadlockBrokenByTimeout) {
  Simulator sim;
  LockManager lm(sim, Duration::Millis(20));
  int timeouts = 0;
  int successes = 0;
  // Classic AB-BA deadlock.
  sim.Spawn([](Simulator& s, LockManager& l, int& to, int& ok) -> Task<void> {
    co_await l.Acquire(1, 100);
    co_await s.Sleep(Duration::Millis(1));
    if (co_await l.Acquire(1, 200)) {
      ++ok;
    } else {
      ++to;
    }
    l.ReleaseAll(1);
  }(sim, lm, timeouts, successes));
  sim.Spawn([](Simulator& s, LockManager& l, int& to, int& ok) -> Task<void> {
    co_await l.Acquire(2, 200);
    co_await s.Sleep(Duration::Millis(1));
    if (co_await l.Acquire(2, 100)) {
      ++ok;
    } else {
      ++to;
    }
    l.ReleaseAll(2);
  }(sim, lm, timeouts, successes));
  sim.Run();
  // At least one side timed out, and afterwards both locks are free.
  EXPECT_GE(timeouts, 1);
  bool free = false;
  sim.Spawn([](LockManager& l, bool& out) -> Task<void> {
    out = co_await l.Acquire(3, 100) && co_await l.Acquire(3, 200);
    l.ReleaseAll(3);
  }(lm, free));
  sim.Run();
  EXPECT_TRUE(free);
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  Simulator sim;
  LockManager lm(sim, Duration::Millis(100));
  sim.Spawn([](LockManager& l) -> Task<void> {
    for (uint64_t k = 0; k < 10; ++k) {
      co_await l.Acquire(1, k);
    }
    EXPECT_EQ(l.held_count(1), 10u);
    l.ReleaseAll(1);
    EXPECT_EQ(l.held_count(1), 0u);
    // Another txn can take them all immediately.
    for (uint64_t k = 0; k < 10; ++k) {
      EXPECT_TRUE(co_await l.Acquire(2, k));
    }
  }(lm));
  sim.Run();
}

}  // namespace
}  // namespace rldb

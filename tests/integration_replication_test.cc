// Full-stack replication: primary testbed + NetworkFabric + LogShipper +
// ReplicaNodes, exercising the E11 scenarios end to end — quorum-acked
// commits surviving total primary loss, async-mode loss bounded by lag, and
// partition/heal catch-up.
#include <gtest/gtest.h>

#include <cstddef>

#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/workload/kv_workload.h"
#include "tests/testlib/campaign_util.h"

namespace rlharness {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

TEST(ReplicationIntegrationTest, QuorumCommitsSurviveTotalPrimaryLoss) {
  // The headline: the primary dies mid-shipment over lossy links, its log
  // disk is treated as lost with it, and the database recovers from a
  // replica's disk image without losing one acked commit.
  Simulator sim;
  TestbedOptions opt =
      rltest::ReplicatedCampaignOptions(DeploymentMode::kNative,
                                        rlrep::ShipMode::kQuorumAck,
                                        /*replicas=*/3);
  opt.replication.link.drop_probability = 0.05;
  Testbed bed(sim, opt);
  rlwork::KvWorkload kv(sim, rltest::WriteHeavyKv());
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  size_t replicas_passing_audit = 0;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, rlfault::VerifyResult& out,
               size_t& passing) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 500);
    auto stop = rltest::SpawnFleet(s, w, b.db(), 0, 4, &chk);
    co_await s.Sleep(Duration::Millis(700));
    b.CutPower();
    *stop = true;
    // Rails are down; frames already on the wire drain into the replicas.
    co_await s.Sleep(Duration::Seconds(1));
    for (size_t r = 0; r < b.replica_count(); ++r) {
      const auto audit =
          rlfault::AuditReplicaDurability(*b.shipper(), b.replica(r));
      EXPECT_GT(audit.sectors_expected, 0u);
      if (audit.ok()) {
        ++passing;
      }
    }
    co_await b.RestorePowerAndRecoverFromReplica();
    out = co_await chk.VerifyAfterRecovery(b.db());
    co_await b.db().CheckTreeStructure();
  }(sim, bed, kv, checker, verdict, replicas_passing_audit));
  sim.Run();

  EXPECT_GT(verdict.keys_checked, 0u);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
  // The mode's contract is that a majority holds every acked commit.
  EXPECT_GE(replicas_passing_audit, bed.shipper()->quorum_size());
  EXPECT_GT(bed.shipper()->next_seq(), 0u);
}

TEST(ReplicationIntegrationTest, AsyncLossIsBoundedByReplicationLag) {
  // Async mode: partition every replica, keep committing (the primary never
  // blocks on the network), then lose the primary. Restoring from a replica
  // can only recover the pre-partition prefix — the commits in the lag
  // window are gone, which is exactly the bounded guarantee async offers.
  Simulator sim;
  Testbed bed(sim,
              rltest::ReplicatedCampaignOptions(DeploymentMode::kNative,
                                rlrep::ShipMode::kAsync, /*replicas=*/2));
  rlwork::KvWorkload kv(sim, rltest::WriteHeavyKv());
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  uint64_t lag_at_cut = 0;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, rlfault::VerifyResult& out,
               uint64_t& lag) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 300);
    auto stop = rltest::SpawnFleet(s, w, b.db(), 0, 4, &chk);
    co_await s.Sleep(Duration::Millis(300));
    b.PartitionReplica(0);
    b.PartitionReplica(1);
    co_await s.Sleep(Duration::Millis(300));
    lag = b.shipper()->next_seq() - b.shipper()->quorum_cursor();
    b.CutPower();
    *stop = true;
    co_await s.Sleep(Duration::Seconds(1));
    b.HealReplica(0);
    b.HealReplica(1);
    co_await b.RestorePowerAndRecoverFromReplica();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, kv, checker, verdict, lag_at_cut));
  sim.Run();

  EXPECT_GT(lag_at_cut, 0u);
  EXPECT_GT(verdict.lost_writes, 0u) << verdict.Summary();
  // But everything quorum-acked before the partition is still there: each
  // replica individually passes the audit against the frozen quorum cursor.
  for (size_t r = 0; r < bed.replica_count(); ++r) {
    const auto audit =
        rlfault::AuditReplicaDurability(*bed.shipper(), bed.replica(r));
    EXPECT_TRUE(audit.ok()) << "replica " << r << ": " << audit.Summary();
  }
}

TEST(ReplicationIntegrationTest, PartitionedReplicaCatchesUpAfterHeal) {
  Simulator sim;
  Testbed bed(sim,
              rltest::ReplicatedCampaignOptions(DeploymentMode::kNative,
                                rlrep::ShipMode::kQuorumAck, /*replicas=*/3));
  rlwork::KvWorkload kv(sim, rltest::WriteHeavyKv());
  uint64_t cursor_while_partitioned = 0;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::KvWorkload& w,
               uint64_t& partitioned_cursor) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 300);
    auto stop = rltest::SpawnFleet(s, w, b.db(), 0, 4, nullptr);
    co_await s.Sleep(Duration::Millis(200));
    b.PartitionReplica(2);
    co_await s.Sleep(Duration::Millis(400));
    partitioned_cursor = b.replica(2).cursor();
    b.HealReplica(2);
    co_await s.Sleep(Duration::Millis(400));
    *stop = true;
  }(sim, bed, kv, cursor_while_partitioned));
  sim.Run();

  // It fell behind during the partition and retransmission closed the gap.
  EXPECT_LT(cursor_while_partitioned, bed.shipper()->next_seq());
  EXPECT_EQ(bed.replica(2).cursor(), bed.shipper()->next_seq());
  EXPECT_GT(bed.shipper()->stats().retransmits.value(), 0);
  for (size_t r = 0; r < bed.replica_count(); ++r) {
    const auto audit =
        rlfault::AuditReplicaDurability(*bed.shipper(), bed.replica(r));
    EXPECT_TRUE(audit.ok()) << "replica " << r << ": " << audit.Summary();
  }
}

TEST(ReplicationIntegrationTest, RapiLogWithQuorumReplicationRecovers) {
  // The shipper sits above RapiLog: commits are locally guarded by the
  // trusted layer AND quorum-replicated. Recovery from the replica image
  // after a power cut must lose nothing.
  Simulator sim;
  Testbed bed(sim,
              rltest::ReplicatedCampaignOptions(DeploymentMode::kRapiLog,
                                rlrep::ShipMode::kQuorumAck, /*replicas=*/3));
  rlwork::KvWorkload kv(sim, rltest::WriteHeavyKv());
  rlfault::DurabilityChecker checker;
  rlfault::VerifyResult verdict;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk,
               rlfault::VerifyResult& out) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 300);
    auto stop = rltest::SpawnFleet(s, w, b.db(), 0, 4, &chk);
    co_await s.Sleep(Duration::Millis(600));
    b.CutPower();
    *stop = true;
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecoverFromReplica();
    out = co_await chk.VerifyAfterRecovery(b.db());
  }(sim, bed, kv, checker, verdict));
  sim.Run();

  EXPECT_GT(verdict.keys_checked, 0u);
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
}

}  // namespace
}  // namespace rlharness

#include "src/faults/durability_checker.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/storage/block_device.h"
#include "src/workload/tpcc_lite.h"

namespace rlfault {
namespace {

using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;
using rlwork::RowValue;

struct Fixture {
  Fixture()
      : cpu(sim),
        data(sim,
             SimBlockDevice::Options{.geometry = {.sector_count = 1 << 19}},
             rlstor::MakeDefaultSsd()),
        log(sim,
            SimBlockDevice::Options{.geometry = {.sector_count = 1 << 19}},
            rlstor::MakeDefaultSsd()) {}

  Task<void> OpenDb() {
    rldb::DbOptions opts;
    opts.pool_pages = 256;
    opts.journal_pages = 150;
    opts.profile.checkpoint_dirty_pages = 64;
    db = co_await rldb::Database::Open(sim, cpu, data, log, opts);
  }

  std::vector<uint8_t> Value(uint64_t key, uint64_t seed) {
    return RowValue(db->options().profile.value_bytes, key, seed);
  }

  Simulator sim;
  rldb::NativeCpu cpu;
  SimBlockDevice data;
  SimBlockDevice log;
  std::unique_ptr<rldb::Database> db;
};

TEST(DurabilityCheckerTest, CleanCommitVerifies) {
  Fixture f;
  DurabilityChecker checker;
  VerifyResult verdict;
  f.sim.Spawn([](Fixture& fx, DurabilityChecker& chk,
                 VerifyResult& out) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t txn = fx.db->Begin();
    const auto value = fx.Value(1, 42);
    co_await fx.db->Put(txn, 1, value);
    chk.OnCommitAttempt(1, {TrackedWrite{.key = 1, .value = value}});
    EXPECT_EQ(co_await fx.db->Commit(txn), rldb::DbStatus::kOk);
    chk.OnCommitAcked(1);
    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, checker, verdict));
  f.sim.Run();
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.keys_checked, 1u);
}

TEST(DurabilityCheckerTest, DetectsLostWrite) {
  Fixture f;
  DurabilityChecker checker;
  VerifyResult verdict;
  f.sim.Spawn([](Fixture& fx, DurabilityChecker& chk,
                 VerifyResult& out) -> Task<void> {
    co_await fx.OpenDb();
    // Claim a commit was acked that never actually happened.
    chk.OnCommitAttempt(1, {TrackedWrite{.key = 5, .value = fx.Value(5, 1)}});
    chk.OnCommitAcked(1);
    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, checker, verdict));
  f.sim.Run();
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.lost_writes, 1u);
}

TEST(DurabilityCheckerTest, AbortedTxnNotChecked) {
  Fixture f;
  DurabilityChecker checker;
  VerifyResult verdict;
  f.sim.Spawn([](Fixture& fx, DurabilityChecker& chk,
                 VerifyResult& out) -> Task<void> {
    co_await fx.OpenDb();
    chk.OnCommitAttempt(1, {TrackedWrite{.key = 9, .value = fx.Value(9, 1)}});
    chk.OnAborted(1);
    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, checker, verdict));
  f.sim.Run();
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.keys_checked, 0u);
}

TEST(DurabilityCheckerTest, InFlightCommitThatLandedIsPromoted) {
  Fixture f;
  DurabilityChecker checker;
  VerifyResult verdict;
  f.sim.Spawn([](Fixture& fx, DurabilityChecker& chk,
                 VerifyResult& out) -> Task<void> {
    co_await fx.OpenDb();
    const uint64_t txn = fx.db->Begin();
    const auto value = fx.Value(3, 77);
    co_await fx.db->Put(txn, 3, value);
    chk.OnCommitAttempt(7, {TrackedWrite{.key = 3, .value = value}});
    EXPECT_EQ(co_await fx.db->Commit(txn), rldb::DbStatus::kOk);
    // Ack "lost" (crash between durability and the client seeing it):
    // no OnCommitAcked call. Verification resolves it as landed.
    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, checker, verdict));
  f.sim.Run();
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.promoted_pending, 1u);
  // Promotion folds it into the model: a later verify checks it.
  EXPECT_EQ(checker.model_size(), 1u);
}

TEST(DurabilityCheckerTest, InFlightCommitThatDidNotLandIsDropped) {
  Fixture f;
  DurabilityChecker checker;
  VerifyResult verdict;
  f.sim.Spawn([](Fixture& fx, DurabilityChecker& chk,
                 VerifyResult& out) -> Task<void> {
    co_await fx.OpenDb();
    chk.OnCommitAttempt(7, {TrackedWrite{.key = 3, .value = fx.Value(3, 1)}});
    // Machine died before the commit record went out: key 3 absent.
    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, checker, verdict));
  f.sim.Run();
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.promoted_pending, 0u);
  EXPECT_EQ(checker.pending_count(), 0u);
}

TEST(DurabilityCheckerTest, DeleteTracking) {
  Fixture f;
  DurabilityChecker checker;
  VerifyResult verdict;
  f.sim.Spawn([](Fixture& fx, DurabilityChecker& chk,
                 VerifyResult& out) -> Task<void> {
    co_await fx.OpenDb();
    uint64_t txn = fx.db->Begin();
    const auto value = fx.Value(4, 1);
    co_await fx.db->Put(txn, 4, value);
    chk.OnCommitAttempt(1, {TrackedWrite{.key = 4, .value = value}});
    co_await fx.db->Commit(txn);
    chk.OnCommitAcked(1);

    txn = fx.db->Begin();
    co_await fx.db->Remove(txn, 4);
    chk.OnCommitAttempt(2, {TrackedWrite{.key = 4, .is_delete = true}});
    co_await fx.db->Commit(txn);
    chk.OnCommitAcked(2);

    out = co_await chk.VerifyAfterRecovery(*fx.db);
  }(f, checker, verdict));
  f.sim.Run();
  EXPECT_TRUE(verdict.ok()) << verdict.Summary();
}

}  // namespace
}  // namespace rlfault

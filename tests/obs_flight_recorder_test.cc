#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/span_tracer.h"
#include "src/sim/simulator.h"

namespace rlobs {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::TimePoint;

TEST(FlightRecorderTest, KeepsEverythingBelowCapacity) {
  FlightRecorder rec(8);
  rec.OnTraceEvent(TimePoint::Origin() + Duration::Micros(1), "disk",
                   "destage", 1);
  rec.OnSpanBegin(TimePoint::Origin() + Duration::Micros(2), "wal",
                  "commit-wait", 1, 0, 10);
  rec.OnSpanEnd(TimePoint::Origin() + Duration::Micros(3), "wal",
                "commit-wait", 1, 11);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_events(), 3u);

  const std::string dump = rec.Dump();
  EXPECT_NE(dump.find("last 3 of 3 events"), std::string::npos);
  EXPECT_NE(dump.find("disk/destage"), std::string::npos);
  EXPECT_NE(dump.find("wal/commit-wait"), std::string::npos);
  // Begin and end markers with the span id.
  EXPECT_NE(dump.find(" B "), std::string::npos);
  EXPECT_NE(dump.find(" E "), std::string::npos);
  EXPECT_NE(dump.find("span=1"), std::string::npos);
}

TEST(FlightRecorderTest, RingDropsOldestBeyondCapacity) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.OnTraceEvent(TimePoint::Origin() + Duration::Micros(i), "a",
                     "ev" + std::to_string(i), 0);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_events(), 10u);

  const std::string dump = rec.Dump();
  EXPECT_NE(dump.find("last 4 of 10 events"), std::string::npos);
  EXPECT_EQ(dump.find("a/ev5"), std::string::npos);  // overwritten
  EXPECT_NE(dump.find("a/ev6"), std::string::npos);  // oldest survivor
  EXPECT_NE(dump.find("a/ev9"), std::string::npos);  // newest
  // Oldest-to-newest order.
  EXPECT_LT(dump.find("a/ev6"), dump.find("a/ev9"));
}

TEST(FlightRecorderTest, LongNamesAreTruncatedNotCorrupted) {
  FlightRecorder rec(2);
  const std::string long_actor(64, 'x');
  rec.OnTraceEvent(TimePoint::Origin(), long_actor, "k", 0);
  const std::string dump = rec.Dump();
  // 23 chars + NUL fit the fixed-width field.
  EXPECT_NE(dump.find(std::string(23, 'x') + "/k"), std::string::npos);
  EXPECT_EQ(dump.find(std::string(24, 'x')), std::string::npos);
}

TEST(FlightRecorderTest, ClearEmptiesTheRing) {
  FlightRecorder rec(4);
  rec.OnTraceEvent(TimePoint::Origin(), "a", "b", 0);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_NE(rec.Dump().find("last 0 of 0 events"), std::string::npos);
}

TEST(FlightRecorderTest, CausalChainFollowsParentLinksAndFiltersByArg) {
  FlightRecorder rec(32);
  const TimePoint t0 = TimePoint::Origin();
  // Tree for gid 77: coordinator root -> shard child (the child carries the
  // gid; the root is pulled in via the parent link). Span 9 is unrelated.
  rec.OnSpanBegin(t0 + Duration::Micros(1), "coord", "2pc-execute", 1, 0, 77);
  rec.OnSpanBegin(t0 + Duration::Micros(2), "shard-0", "shard-prepare", 2, 1,
                  77);
  rec.OnSpanBegin(t0 + Duration::Micros(3), "other", "io-write", 9, 0, 5);
  rec.OnSpanEnd(t0 + Duration::Micros(4), "shard-0", "shard-prepare", 2, 77);
  rec.OnSpanEnd(t0 + Duration::Micros(5), "other", "io-write", 9, 0);
  rec.OnSpanEnd(t0 + Duration::Micros(6), "coord", "2pc-execute", 1, 77);

  const std::string chain = rec.DumpCausalChain(77);
  EXPECT_NE(chain.find("coord/2pc-execute"), std::string::npos);
  EXPECT_NE(chain.find("shard-0/shard-prepare"), std::string::npos);
  EXPECT_EQ(chain.find("other/io-write"), std::string::npos);
  // Span events only, begin before end, per-tree.
  EXPECT_LT(chain.find("coord/2pc-execute"),
            chain.find("shard-0/shard-prepare"));

  EXPECT_EQ(rec.DumpCausalChain(999), "");
}

TEST(TeeSinkTest, ForwardsToBothSinks) {
  SpanTracer full;
  FlightRecorder ring(4);
  TeeSink tee(&ring, &full);

  Simulator sim;
  sim.set_tracer(&tee);
  sim.Schedule(Duration::Micros(1), [&] {
    const uint64_t id = sim.EmitSpanBegin("wal", "op", 5);
    sim.EmitTrace("psu", "mains-cut", 0);
    sim.EmitSpanEnd(id, "wal", "op", 6);
  });
  sim.Run();

  EXPECT_EQ(full.records().size(), 3u);
  EXPECT_EQ(ring.total_events(), 3u);
}

TEST(TeeSinkTest, NullSecondaryIsAllowed) {
  FlightRecorder ring(4);
  TeeSink tee(&ring, nullptr);
  tee.OnTraceEvent(TimePoint::Origin(), "a", "b", 0);
  tee.OnSpanBegin(TimePoint::Origin(), "a", "b", 1, 0, 0);
  tee.OnSpanEnd(TimePoint::Origin(), "a", "b", 1, 0);
  EXPECT_EQ(ring.total_events(), 3u);
}

}  // namespace
}  // namespace rlobs

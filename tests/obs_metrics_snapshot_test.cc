#include "src/obs/metrics_snapshot.h"

#include <gtest/gtest.h>

#include <string>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace rlobs {
namespace {

using rlsim::Counter;
using rlsim::Duration;
using rlsim::Simulator;

TEST(MetricsSnapshotTest, SamplesAtFixedVirtualIntervals) {
  Simulator sim;
  Counter ticks;
  rlsim::StatsRegistry registry;
  registry.RegisterCounter("ticks", &ticks);

  bool stop = false;
  MetricsSnapshotter snap(sim, registry, Duration::Millis(10));
  snap.Start(&stop);

  // A workload that bumps the counter every 4 ms and stops at 35 ms.
  for (int i = 1; i <= 8; ++i) {
    sim.Schedule(Duration::Millis(4 * i), [&] { ticks.Add(); });
  }
  sim.Schedule(Duration::Millis(35), [&] { stop = true; });
  sim.Run();

  // Snapshots at 10/20/30 ms; the 40 ms tick sees stop and exits.
  ASSERT_EQ(snap.snapshots().size(), 3u);
  EXPECT_EQ(snap.snapshots()[0].at_ns, Duration::Millis(10).nanos());
  EXPECT_EQ(snap.snapshots()[1].at_ns, Duration::Millis(20).nanos());
  EXPECT_EQ(snap.snapshots()[2].at_ns, Duration::Millis(30).nanos());
  // Each snapshot captured the counter as of its instant: 2, 5, 7 ticks.
  EXPECT_NE(snap.snapshots()[0].json.find("\"ticks\":2"), std::string::npos);
  EXPECT_NE(snap.snapshots()[1].json.find("\"ticks\":5"), std::string::npos);
  EXPECT_NE(snap.snapshots()[2].json.find("\"ticks\":7"), std::string::npos);
}

TEST(MetricsSnapshotTest, StopBeforeFirstTickYieldsEmptySeries) {
  Simulator sim;
  rlsim::StatsRegistry registry;
  bool stop = false;
  MetricsSnapshotter snap(sim, registry, Duration::Millis(10));
  snap.Start(&stop);
  sim.Schedule(Duration::Millis(1), [&] { stop = true; });
  sim.Run();
  EXPECT_TRUE(snap.snapshots().empty());
  EXPECT_EQ(snap.ToJson(), "[\n]");
}

TEST(MetricsSnapshotTest, ToJsonWrapsSnapshotsWithTimestamps) {
  Simulator sim;
  Counter c;
  rlsim::StatsRegistry registry;
  registry.RegisterCounter("c", &c);
  bool stop = false;
  MetricsSnapshotter snap(sim, registry, Duration::Millis(5));
  snap.Start(&stop);
  sim.Schedule(Duration::Millis(12), [&] { stop = true; });
  sim.Run();

  const std::string json = snap.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("{\"t_ns\":5000000,\"stats\":{\"c\":0}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"t_ns\":10000000,\"stats\":{\"c\":0}}"),
            std::string::npos);
}

// The same seeded run with and without a snapshotter attached must leave the
// observed state identical: sampling is passive.
TEST(MetricsSnapshotTest, SamplingDoesNotPerturbTheRun) {
  auto run = [](bool with_snapshotter) {
    Simulator sim(99);
    Counter work;
    rlsim::StatsRegistry registry;
    registry.RegisterCounter("work", &work);
    bool stop = false;
    MetricsSnapshotter snap(sim, registry, Duration::Millis(3));
    if (with_snapshotter) {
      snap.Start(&stop);
    }
    for (int i = 1; i <= 50; ++i) {
      sim.Schedule(Duration::Millis(i), [&sim, &work] {
        work.Add(static_cast<int64_t>(sim.rng().Next() % 7));
      });
    }
    sim.Schedule(Duration::Millis(51), [&] { stop = true; });
    sim.Run();
    return work.value();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace rlobs

#include "src/db/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/db/buffer_pool.h"
#include "src/db/layout.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace rldb {
namespace {

using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

constexpr uint32_t kValueBytes = 32;

struct TreeFixture {
  explicit TreeFixture(uint32_t page_bytes = 4096, uint32_t frames = 4096)
      : dev(sim,
            SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20},
                                    .cache_policy =
                                        WriteCachePolicy::kWriteBack},
            rlstor::MakeDefaultSsd()),
        pool(sim, dev, page_bytes, frames),
        tree(pool, kValueBytes, &next_free_page) {}

  std::vector<uint8_t> Value(uint64_t seed) const {
    std::vector<uint8_t> v(kValueBytes);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<uint8_t>(seed * 31 + i);
    }
    return v;
  }

  Simulator sim;
  SimBlockDevice dev;
  BufferPool pool;
  uint64_t next_free_page = 100;  // pages below are "journal"
  BTree tree;
};

TEST(BTreeTest, EmptyTreeGetMisses) {
  TreeFixture f;
  bool found = true;
  f.sim.Spawn([](TreeFixture& fx, bool& out) -> Task<void> {
    const uint64_t root = fx.tree.CreateEmpty();
    out = co_await fx.tree.Get(root, 42, nullptr);
  }(f, found));
  f.sim.Run();
  EXPECT_FALSE(found);
}

TEST(BTreeTest, PutGetSingle) {
  TreeFixture f;
  std::vector<uint8_t> got;
  f.sim.Spawn([](TreeFixture& fx, std::vector<uint8_t>& out) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    root = co_await fx.tree.Put(root, 42, fx.Value(7));
    const bool found = co_await fx.tree.Get(root, 42, &out);
    EXPECT_TRUE(found);
  }(f, got));
  f.sim.Run();
  EXPECT_EQ(got, f.Value(7));
}

TEST(BTreeTest, OverwriteReplacesValue) {
  TreeFixture f;
  std::vector<uint8_t> got;
  f.sim.Spawn([](TreeFixture& fx, std::vector<uint8_t>& out) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    root = co_await fx.tree.Put(root, 1, fx.Value(1));
    root = co_await fx.tree.Put(root, 1, fx.Value(2));
    co_await fx.tree.Get(root, 1, &out);
    EXPECT_EQ(co_await fx.tree.Count(root), 1u);
  }(f, got));
  f.sim.Run();
  EXPECT_EQ(got, f.Value(2));
}

TEST(BTreeTest, RemoveDeletes) {
  TreeFixture f;
  f.sim.Spawn([](TreeFixture& fx) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    root = co_await fx.tree.Put(root, 5, fx.Value(5));
    root = co_await fx.tree.Put(root, 6, fx.Value(6));
    root = co_await fx.tree.Remove(root, 5);
    EXPECT_FALSE(co_await fx.tree.Get(root, 5, nullptr));
    EXPECT_TRUE(co_await fx.tree.Get(root, 6, nullptr));
    EXPECT_EQ(co_await fx.tree.Count(root), 1u);
  }(f));
  f.sim.Run();
}

TEST(BTreeTest, RemoveMissingIsNoOp) {
  TreeFixture f;
  f.sim.Spawn([](TreeFixture& fx) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    root = co_await fx.tree.Put(root, 1, fx.Value(1));
    root = co_await fx.tree.Remove(root, 99);
    EXPECT_EQ(co_await fx.tree.Count(root), 1u);
  }(f));
  f.sim.Run();
}

TEST(BTreeTest, SequentialInsertSplitsAndStaysOrdered) {
  TreeFixture f;
  f.sim.Spawn([](TreeFixture& fx) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    const uint64_t n = fx.tree.leaf_capacity() * 20ull;
    for (uint64_t k = 1; k <= n; ++k) {
      root = co_await fx.tree.Put(root, k, fx.Value(k));
    }
    EXPECT_EQ(co_await fx.tree.Count(root), n);
    co_await fx.tree.CheckStructure(root);
    // Spot-check lookups.
    for (uint64_t k = 1; k <= n; k += 37) {
      std::vector<uint8_t> v;
      EXPECT_TRUE(co_await fx.tree.Get(root, k, &v));
      EXPECT_EQ(v, fx.Value(k));
    }
  }(f));
  f.sim.Run();
}

TEST(BTreeTest, ReverseInsert) {
  TreeFixture f;
  f.sim.Spawn([](TreeFixture& fx) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    const uint64_t n = fx.tree.leaf_capacity() * 10ull;
    for (uint64_t k = n; k >= 1; --k) {
      root = co_await fx.tree.Put(root, k, fx.Value(k));
    }
    EXPECT_EQ(co_await fx.tree.Count(root), n);
    co_await fx.tree.CheckStructure(root);
  }(f));
  f.sim.Run();
}

TEST(BTreeTest, ScanRangeInOrder) {
  TreeFixture f;
  std::vector<uint64_t> seen;
  f.sim.Spawn([](TreeFixture& fx, std::vector<uint64_t>& out) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    for (uint64_t k = 0; k < 500; ++k) {
      root = co_await fx.tree.Put(root, k * 2, fx.Value(k));  // even keys
    }
    co_await fx.tree.Scan(root, 100, 200,
                          [&out](uint64_t k, std::span<const uint8_t>) {
                            out.push_back(k);
                            return true;
                          });
  }(f, seen));
  f.sim.Run();
  ASSERT_EQ(seen.size(), 51u);  // 100..200 even
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 200u);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1]);
  }
}

TEST(BTreeTest, ScanEarlyStop) {
  TreeFixture f;
  int visited = 0;
  f.sim.Spawn([](TreeFixture& fx, int& out) -> Task<void> {
    uint64_t root = fx.tree.CreateEmpty();
    for (uint64_t k = 0; k < 100; ++k) {
      root = co_await fx.tree.Put(root, k, fx.Value(k));
    }
    co_await fx.tree.Scan(root, 0, UINT64_MAX,
                          [&out](uint64_t, std::span<const uint8_t>) {
                            return ++out < 10;
                          });
  }(f, visited));
  f.sim.Run();
  EXPECT_EQ(visited, 10);
}

// Property sweep: random workloads vs a reference std::map, across page
// sizes (different fan-outs exercise different split patterns).
class BTreeRandomTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(BTreeRandomTest, MatchesReferenceModel) {
  const uint32_t page_bytes = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  TreeFixture f(page_bytes);
  f.sim.Spawn([](TreeFixture& fx, uint64_t sd) -> Task<void> {
    rlsim::Rng rng(sd);
    std::map<uint64_t, std::vector<uint8_t>> reference;
    uint64_t root = fx.tree.CreateEmpty();
    for (int op = 0; op < 4000; ++op) {
      const uint64_t key = rng.NextBelow(800);
      const double dice = rng.NextDouble();
      if (dice < 0.65) {
        const auto value = fx.Value(rng.Next());
        root = co_await fx.tree.Put(root, key, value);
        reference[key] = value;
      } else if (dice < 0.85) {
        root = co_await fx.tree.Remove(root, key);
        reference.erase(key);
      } else {
        std::vector<uint8_t> got;
        const bool found = co_await fx.tree.Get(root, key, &got);
        const auto it = reference.find(key);
        EXPECT_EQ(found, it != reference.end()) << "key " << key;
        if (found && it != reference.end()) {
          EXPECT_EQ(got, it->second);
        }
      }
    }
    EXPECT_EQ(co_await fx.tree.Count(root), reference.size());
    co_await fx.tree.CheckStructure(root);
    // Full containment check.
    for (const auto& [key, value] : reference) {
      std::vector<uint8_t> got;
      EXPECT_TRUE(co_await fx.tree.Get(root, key, &got)) << key;
      EXPECT_EQ(got, value);
    }
  }(f, seed));
  f.sim.Run();
}

INSTANTIATE_TEST_SUITE_P(
    PagesAndSeeds, BTreeRandomTest,
    ::testing::Combine(::testing::Values(1024u, 4096u, 8192u),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace rldb

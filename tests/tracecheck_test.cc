#include "tools/tracecheck/tracecheck.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/chrome_trace.h"
#include "src/obs/span_tracer.h"
#include "src/sim/simulator.h"

namespace tracecheck {
namespace {

constexpr const char* kHeader =
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

std::string Wrap(const std::string& body) {
  return std::string(kHeader) + body + "]}\n";
}

const char* kMeta1 =
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
    "\"args\":{\"name\":\"wal\"}},\n";

bool HasRule(const Report& r, const std::string& rule) {
  for (const Problem& p : r.problems) {
    if (p.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(ParseMicrosTest, HandlesIntegerAndFractionalMicros) {
  int64_t ns = 0;
  EXPECT_TRUE(ParseMicrosToNanos("12.345", &ns));
  EXPECT_EQ(ns, 12345);
  EXPECT_TRUE(ParseMicrosToNanos("0.001", &ns));
  EXPECT_EQ(ns, 1);
  EXPECT_TRUE(ParseMicrosToNanos("7", &ns));
  EXPECT_EQ(ns, 7000);
  EXPECT_TRUE(ParseMicrosToNanos("3.5", &ns));
  EXPECT_EQ(ns, 3500);
  EXPECT_FALSE(ParseMicrosToNanos("", &ns));
  EXPECT_FALSE(ParseMicrosToNanos("1.2.3", &ns));
  EXPECT_FALSE(ParseMicrosToNanos("abc", &ns));
}

TEST(TracecheckTest, AcceptsAMinimalValidTrace) {
  const Report r = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"commit-wait\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":2.000,\"args\":{\"arg\":0,\"end_arg\":0,"
           "\"span_id\":1}},\n"
           "{\"name\":\"mains-cut\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
           "\"tid\":0,\"ts\":5.000,\"args\":{\"crc\":0}}\n"),
      "test");
  EXPECT_TRUE(r.ok()) << FormatReport(r, "test");
  EXPECT_EQ(r.spans, 1);
  EXPECT_EQ(r.instants, 1);
  EXPECT_EQ(r.metadata, 1);
  EXPECT_EQ(r.pids, 1);
}

TEST(TracecheckTest, RejectsMissingHeaderAndFooter) {
  EXPECT_TRUE(HasRule(CheckTraceText("not a trace\n", "t"), "TC001"));
  EXPECT_TRUE(
      HasRule(CheckTraceText(std::string(kHeader) + "{}\n", "t"), "TC001"));
}

TEST(TracecheckTest, RejectsEventsMissingRequiredFields) {
  // X event with no dur.
  const Report r1 = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"op\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"args\":{}}\n"),
      "t");
  EXPECT_TRUE(HasRule(r1, "TC002"));
  // Instant with no scope.
  const Report r2 = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"op\",\"ph\":\"i\",\"pid\":1,\"tid\":0,"
           "\"ts\":1.000,\"args\":{}}\n"),
      "t");
  EXPECT_TRUE(HasRule(r2, "TC002"));
  // Unknown phase.
  const Report r3 = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"op\",\"ph\":\"Q\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000}\n"),
      "t");
  EXPECT_TRUE(HasRule(r3, "TC002"));
}

TEST(TracecheckTest, RejectsBackwardsTimestamps) {
  const Report r = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"a\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,"
           "\"ts\":5.000,\"args\":{\"crc\":0}},\n"
           "{\"name\":\"b\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,"
           "\"ts\":4.999,\"args\":{\"crc\":0}}\n"),
      "t");
  EXPECT_TRUE(HasRule(r, "TC003"));
}

TEST(TracecheckTest, RejectsOverlappingSpansOnOneLane) {
  const Report r = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":5.000,\"args\":{}},\n"
           "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":3.000,\"dur\":1.000,\"args\":{}}\n"),
      "t");
  EXPECT_TRUE(HasRule(r, "TC004"));

  // Same spans on different lanes: fine.
  const Report ok = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":5.000,\"args\":{}},\n"
           "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":2,"
           "\"ts\":3.000,\"dur\":1.000,\"args\":{}}\n"),
      "t");
  EXPECT_TRUE(ok.ok()) << FormatReport(ok, "t");

  // Back-to-back on one lane (begin == previous end): fine.
  const Report touch = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":2.000,\"args\":{}},\n"
           "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":3.000,\"dur\":1.000,\"args\":{}}\n"),
      "t");
  EXPECT_TRUE(touch.ok()) << FormatReport(touch, "t");
}

TEST(TracecheckTest, RejectsPidsWithoutMetadata) {
  const Report r = CheckTraceText(
      Wrap("{\"name\":\"a\",\"ph\":\"i\",\"s\":\"t\",\"pid\":3,\"tid\":0,"
           "\"ts\":1.000,\"args\":{\"crc\":0}}\n"),
      "t");
  EXPECT_TRUE(HasRule(r, "TC005"));
}

TEST(TracecheckTest, AcceptsResolvableParentLinks) {
  // span 2 parents under span 1 (same file, different lanes) — well formed.
  const Report r = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"2pc-execute\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":9.000,\"args\":{\"span_id\":1}},\n"
           "{\"name\":\"shard-prepare\",\"ph\":\"X\",\"pid\":1,\"tid\":2,"
           "\"ts\":2.000,\"dur\":3.000,\"args\":{\"span_id\":2,"
           "\"parent\":1}}\n"),
      "t");
  EXPECT_TRUE(r.ok()) << FormatReport(r, "t");
  EXPECT_EQ(r.spans, 2);
}

TEST(TracecheckTest, RejectsUnresolvableParent) {
  const Report r = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"orphan\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":2.000,\"args\":{\"span_id\":7,"
           "\"parent\":99}}\n"),
      "t");
  EXPECT_TRUE(HasRule(r, "TC006"));
  EXPECT_FALSE(HasRule(r, "TC007"));
}

TEST(TracecheckTest, RejectsParentCycles) {
  // 1 -> 2 -> 1: both parents resolve, but the chain never reaches a root.
  const Report r = CheckTraceText(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":2.000,\"args\":{\"span_id\":1,"
           "\"parent\":2}},\n"
           "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":2,"
           "\"ts\":1.000,\"dur\":2.000,\"args\":{\"span_id\":2,"
           "\"parent\":1}}\n"),
      "t");
  EXPECT_FALSE(HasRule(r, "TC006"));
  EXPECT_TRUE(HasRule(r, "TC007"));
  // One report per cycle, not one per member.
  int tc007 = 0;
  for (const Problem& p : r.problems) {
    tc007 += p.rule == "TC007" ? 1 : 0;
  }
  EXPECT_EQ(tc007, 1);
}

TEST(TracecheckTest, ExtractSpansLiftsParentedSpans) {
  const std::vector<rlobs::SpanNode> spans = ExtractSpans(
      Wrap(std::string(kMeta1) +
           "{\"name\":\"root\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
           "\"ts\":1.000,\"dur\":9.000,\"args\":{\"span_id\":1}},\n"
           "{\"name\":\"child\",\"ph\":\"X\",\"pid\":2,\"tid\":1,"
           "\"ts\":2.000,\"dur\":3.000,\"args\":{\"span_id\":2,"
           "\"parent\":1}}\n"));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].kind, "root");
  EXPECT_EQ(spans[0].actor, "wal");
  EXPECT_EQ(spans[0].begin_ns, 1000);
  EXPECT_EQ(spans[0].end_ns, 10000);
  EXPECT_EQ(spans[1].id, 2u);
  EXPECT_EQ(spans[1].parent, 1u);
  // pid 2 has no process_name metadata: synthesized actor name.
  EXPECT_EQ(spans[1].actor, "pid-2");
}

// End-to-end: everything the real exporter produces must validate. This is
// the same check CI runs against --trace-out artifacts.
TEST(TracecheckTest, RealExporterOutputValidates) {
  rlsim::Simulator sim(7);
  rlobs::SpanTracer tracer;
  sim.set_tracer(&tracer);
  for (int i = 1; i <= 200; ++i) {
    sim.Schedule(rlsim::Duration::Micros(i), [&sim, i] {
      const char* actor = i % 3 == 0 ? "wal" : (i % 3 == 1 ? "disk" : "psu");
      const uint64_t id = sim.EmitSpanBegin(actor, "op", i);
      if (i % 5 == 0) {
        sim.EmitTrace(actor, "instant", static_cast<uint32_t>(i));
      }
      sim.EmitSpanEnd(id, actor, "op", i + 1);
    });
  }
  // One deliberately overlapping pair (same actor) to exercise lanes, and
  // one span left open so the exporter has to close it.
  uint64_t open_id = 0;
  sim.Schedule(rlsim::Duration::Micros(300), [&] {
    open_id = sim.EmitSpanBegin("wal", "long-op");
    const uint64_t inner = sim.EmitSpanBegin("wal", "inner-op");
    sim.EmitSpanEnd(inner, "wal", "inner-op");
  });
  sim.Schedule(rlsim::Duration::Micros(400), [&] {
    sim.EmitTrace("wal", "end-marker", 0);
  });
  sim.Run();

  const Report r =
      CheckTraceText(rlobs::ExportChromeTrace(tracer), "exported");
  EXPECT_TRUE(r.ok()) << FormatReport(r, "exported");
  EXPECT_EQ(r.spans, 202);
  EXPECT_GT(r.pids, 1);
}

}  // namespace
}  // namespace tracecheck

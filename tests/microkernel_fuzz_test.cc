// Randomised capability-operation fuzzing: apply thousands of random
// Retype/Mint/Copy/Delete/Revoke operations and check every kernel invariant
// after each one. This is the runtime stand-in for the "verified kernel"
// property the paper leverages.
#include <gtest/gtest.h>

#include <vector>

#include "src/microkernel/kernel.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace rlkern {
namespace {

constexpr size_t kSlots = 128;

class KernelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelFuzzTest, InvariantsSurviveRandomCapOps) {
  rlsim::Simulator sim;
  Kernel kernel(sim);
  const ObjectId root = kernel.BootstrapCNode(kSlots);
  ASSERT_EQ(kernel.BootstrapUntyped(root, 0, 1 << 20), KernelStatus::kOk);

  rlsim::Rng rng(GetParam());
  auto slot = [&](CPtr i) { return SlotAddr{root, i}; };
  auto random_slot = [&] {
    return slot(static_cast<CPtr>(rng.NextBelow(kSlots)));
  };

  int ok_ops = 0;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextBelow(6);
    KernelStatus st = KernelStatus::kOk;
    switch (op) {
      case 0: {  // retype a random object type into a random slot
        static constexpr ObjectType kTypes[] = {
            ObjectType::kEndpoint, ObjectType::kNotification,
            ObjectType::kFrame, ObjectType::kTcb};
        const ObjectType type = kTypes[rng.NextBelow(4)];
        st = kernel.Retype(slot(0), type, 4096, root,
                           1 + rng.NextBelow(kSlots - 1), 1);
        break;
      }
      case 1: {  // mint with random rights/badge
        CapRights rights;
        rights.read = rng.Chance(0.5);
        rights.write = rng.Chance(0.5);
        rights.grant = rng.Chance(0.2);
        st = kernel.Mint(random_slot(), random_slot(), rights,
                         rng.NextBelow(4));
        break;
      }
      case 2:
        st = kernel.Copy(random_slot(), random_slot());
        break;
      case 3: {
        // Never delete the root untyped cap (slot 0) — everything else fair.
        const SlotAddr victim = slot(1 + rng.NextBelow(kSlots - 1));
        st = kernel.Delete(victim);
        break;
      }
      case 4: {
        const SlotAddr victim = slot(1 + rng.NextBelow(kSlots - 1));
        st = kernel.Revoke(victim);
        break;
      }
      case 5:
        st = kernel.Revoke(slot(0));  // reclaim the whole region
        break;
    }
    if (st == KernelStatus::kOk) {
      ++ok_ops;
    }
    ASSERT_NO_THROW(kernel.CheckInvariants()) << "step " << step;
  }
  // The sequence must have actually exercised the kernel.
  EXPECT_GT(ok_ops, 300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(KernelIpcStressTest, ManyClientsOneServer) {
  rlsim::Simulator sim;
  Kernel kernel(sim);
  const ObjectId root = kernel.BootstrapCNode(kSlots);
  ASSERT_EQ(kernel.BootstrapUntyped(root, 0, 1 << 20), KernelStatus::kOk);
  ASSERT_EQ(kernel.Retype(SlotAddr{root, 0}, ObjectType::kEndpoint, 0, root,
                          1, 1),
            KernelStatus::kOk);
  const SlotAddr ep{root, 1};

  // Badged caps, one per client.
  constexpr int kClients = 16;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(kernel.Mint(ep, SlotAddr{root, static_cast<CPtr>(10 + c)},
                          CapRights::WriteOnly(), static_cast<Badge>(c + 1)),
              KernelStatus::kOk);
  }

  std::vector<int> served_per_client(kClients, 0);
  constexpr int kCallsPerClient = 50;

  // Server loop.
  sim.Spawn([](Kernel& k, SlotAddr e, std::vector<int>& served)
                -> rlsim::Task<void> {
    for (int i = 0; i < kClients * kCallsPerClient; ++i) {
      Received got;
      const KernelStatus st = co_await k.Recv(e, &got);
      EXPECT_EQ(st, KernelStatus::kOk);
      EXPECT_GE(got.message.sender_badge, 1u);
      EXPECT_LE(got.message.sender_badge, static_cast<Badge>(kClients));
      ++served[got.message.sender_badge - 1];
      IpcMessage reply;
      reply.words = {got.message.words[0] + 1};
      k.Reply(got.reply, std::move(reply));
    }
  }(kernel, ep, served_per_client));

  // Clients.
  for (int c = 0; c < kClients; ++c) {
    sim.Spawn([](rlsim::Simulator& s, Kernel& k, SlotAddr my_ep,
                 int id) -> rlsim::Task<void> {
      rlsim::Rng rng(static_cast<uint64_t>(id) + 777);
      for (int i = 0; i < kCallsPerClient; ++i) {
        co_await s.Sleep(rlsim::Duration::Micros(rng.UniformInt(1, 20)));
        IpcMessage msg;
        msg.words = {static_cast<uint64_t>(i)};
        IpcMessage reply;
        const KernelStatus st = co_await k.Call(my_ep, std::move(msg), &reply);
        EXPECT_EQ(st, KernelStatus::kOk);
        EXPECT_EQ(reply.words[0], static_cast<uint64_t>(i) + 1);
      }
    }(sim, kernel, SlotAddr{root, static_cast<CPtr>(10 + c)}, c));
  }

  sim.Run();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(served_per_client[static_cast<size_t>(c)], kCallsPerClient);
  }
  kernel.CheckInvariants();
}

}  // namespace
}  // namespace rlkern

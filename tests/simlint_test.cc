// Unit tests for the simlint determinism linter: every rule fires on a
// minimal fixture with the right id and line, the matching pragma suppresses
// it, and baselines round-trip byte-identically.
#include "tools/simlint/simlint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using simlint::Finding;
using simlint::LintSource;

// One finding with the given rule at the given 1-based line.
void ExpectOnly(const std::vector<Finding>& findings, const char* rule,
                int line) {
  ASSERT_EQ(findings.size(), 1u) << simlint::FormatText(findings);
  EXPECT_EQ(findings[0].rule, rule);
  EXPECT_EQ(findings[0].line, line);
  EXPECT_FALSE(findings[0].message.empty());
  EXPECT_FALSE(findings[0].hint.empty());
}

void ExpectClean(const std::vector<Finding>& findings) {
  EXPECT_TRUE(findings.empty()) << simlint::FormatText(findings);
}

// --- SL001 wall-clock / entropy -------------------------------------------

TEST(SimlintSL001, SteadyClockFires) {
  ExpectOnly(LintSource("src/sim/foo.cc",
                        "void F() {\n"
                        "  auto t = std::chrono::steady_clock::now();\n"
                        "}\n"),
             "SL001", 2);
}

TEST(SimlintSL001, RandAndSrandFire) {
  const auto findings = LintSource("bench/foo.cc",
                                   "int F() {\n"
                                   "  srand(42);\n"
                                   "  return rand();\n"
                                   "}\n");
  ASSERT_EQ(findings.size(), 2u) << simlint::FormatText(findings);
  EXPECT_EQ(findings[0].rule, "SL001");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].rule, "SL001");
  EXPECT_EQ(findings[1].line, 3);
}

TEST(SimlintSL001, RandomDeviceAndTimeFire) {
  ExpectOnly(LintSource("src/db/x.cc", "std::random_device rd;\n"), "SL001",
             1);
  ExpectOnly(LintSource("src/db/x.cc",
                        "int64_t F() { return time(nullptr); }\n"),
             "SL001", 1);
}

TEST(SimlintSL001, MemberCallsAndIdentifiersAreNotFlagged) {
  // cfg.time() is a member accessor, run_time( is a different identifier,
  // and prose in comments/strings never counts.
  ExpectClean(LintSource("src/sim/foo.cc",
                         "void F(Config cfg) {\n"
                         "  auto a = cfg.time();\n"
                         "  auto b = run_time(cfg);\n"
                         "  // steady_clock is banned here\n"
                         "  const char* s = \"rand() in a string\";\n"
                         "  (void)a; (void)b; (void)s;\n"
                         "}\n"));
}

TEST(SimlintSL001, PragmaSuppresses) {
  ExpectClean(LintSource("src/sim/foo.cc",
                         "// simlint: clock-ok (host-side tool, not sim)\n"
                         "auto t = std::chrono::steady_clock::now();\n"));
}

// --- SL002 ambient state --------------------------------------------------

TEST(SimlintSL002, GetenvFiresInCoreDirs) {
  ExpectOnly(LintSource("src/faults/foo.cc",
                        "bool Trace() { return std::getenv(\"T\"); }\n"),
             "SL002", 1);
}

TEST(SimlintSL002, GetenvOutsideCoreDirsIsNotFlagged) {
  ExpectClean(LintSource("src/db/foo.cc",
                         "bool Trace() { return std::getenv(\"T\"); }\n"));
}

TEST(SimlintSL002, MutableStaticFires) {
  ExpectOnly(LintSource("src/sim/foo.cc", "static int hit_count = 0;\n"),
             "SL002", 1);
}

TEST(SimlintSL002, ConstStaticAndFunctionsAreNotFlagged) {
  ExpectClean(LintSource("src/sim/foo.cc",
                         "static constexpr int kMax = 3;\n"
                         "static const char* Name() { return \"x\"; }\n"
                         "static int Helper(int v);\n"));
}

TEST(SimlintSL002, PragmaSuppresses) {
  ExpectClean(
      LintSource("src/rapilog/foo.cc",
                 "// simlint: static-ok (write-once registration table)\n"
                 "static int table = 0;\n"));
}

// --- SL003 unordered iteration --------------------------------------------

constexpr const char* kUnorderedLoop =
    "std::unordered_map<uint64_t, int> pending_;\n"
    "void F() {\n"
    "  for (const auto& [k, v] : pending_) {\n"
    "  }\n"
    "}\n";

TEST(SimlintSL003, RangeForOverMemberFires) {
  ExpectOnly(LintSource("src/db/foo.cc", kUnorderedLoop), "SL003", 3);
}

TEST(SimlintSL003, IteratorLoopFires) {
  ExpectOnly(LintSource("src/db/foo.cc",
                        "std::unordered_set<int> live_;\n"
                        "void F() {\n"
                        "  for (auto it = live_.begin(); it != live_.end();"
                        " ++it) {\n"
                        "  }\n"
                        "}\n"),
             "SL003", 3);
}

TEST(SimlintSL003, OutsideSrcIsNotFlagged) {
  ExpectClean(LintSource("tests/foo.cc", kUnorderedLoop));
}

TEST(SimlintSL003, PragmaSuppresses) {
  ExpectClean(LintSource("src/db/foo.cc",
                         "std::unordered_map<uint64_t, int> pending_;\n"
                         "void F() {\n"
                         "  // simlint: ordered-ok (order-independent fold)\n"
                         "  for (const auto& [k, v] : pending_) {\n"
                         "  }\n"
                         "}\n"));
}

TEST(SimlintSL003, MultiLineJustificationCommentStillSuppresses) {
  ExpectClean(LintSource("src/db/foo.cc",
                         "std::unordered_map<uint64_t, int> pending_;\n"
                         "void F() {\n"
                         "  // simlint: ordered-ok (a justification long\n"
                         "  // enough to wrap onto a second comment line)\n"
                         "  for (const auto& [k, v] : pending_) {\n"
                         "  }\n"
                         "}\n"));
}

TEST(SimlintSL003, SortedSnapshotIsTheBlessedPattern) {
  // Iterating SortedKeys(pending_) does not touch the container's own
  // iteration order, so the rule stays quiet.
  ExpectClean(LintSource("src/db/foo.cc",
                         "std::unordered_map<uint64_t, int> pending_;\n"
                         "void F() {\n"
                         "  for (uint64_t k : rlsim::SortedKeys(pending_)) {\n"
                         "  }\n"
                         "}\n"));
}

// --- SL004 pointer-keyed ordering -----------------------------------------

TEST(SimlintSL004, PointerKeyedMapFires) {
  ExpectOnly(LintSource("src/db/foo.cc", "std::map<Node*, int> by_node_;\n"),
             "SL004", 1);
}

TEST(SimlintSL004, PointerSetFires) {
  ExpectOnly(LintSource("src/db/foo.cc",
                        "std::set<const Txn*> waiters_;\n"),
             "SL004", 1);
}

TEST(SimlintSL004, ValueKeysAreNotFlagged) {
  ExpectClean(
      LintSource("src/db/foo.cc",
                 "std::map<std::string, const Counter*> counters_;\n"
                 "std::set<uint64_t> keys_;\n"));
}

TEST(SimlintSL004, PragmaSuppresses) {
  ExpectClean(LintSource(
      "src/db/foo.cc",
      "// simlint: ptr-ok (ordering never observed; used as a set)\n"
      "std::map<Node*, int> by_node_;\n"));
}

// --- SL005 raw new/delete -------------------------------------------------

TEST(SimlintSL005, RawNewAndDeleteFire) {
  const auto findings = LintSource("src/db/foo.cc",
                                   "void F() {\n"
                                   "  int* p = new int;\n"
                                   "  delete p;\n"
                                   "}\n");
  ASSERT_EQ(findings.size(), 2u) << simlint::FormatText(findings);
  EXPECT_EQ(findings[0].rule, "SL005");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
}

TEST(SimlintSL005, DeletedFunctionsAreNotFlagged) {
  ExpectClean(LintSource("src/db/foo.cc",
                         "struct S {\n"
                         "  S(const S&) = delete;\n"
                         "  S& operator=(const S&) = delete;\n"
                         "};\n"));
}

TEST(SimlintSL005, TestsAreExempt) {
  ExpectClean(LintSource("tests/foo.cc", "int* p = new int;\n"));
}

TEST(SimlintSL005, PragmaSuppresses) {
  ExpectClean(LintSource("src/db/foo.cc",
                         "// simlint: new-ok (immediately owned)\n"
                         "Database* db = new Database();\n"));
}

// --- SL006 float accumulation ---------------------------------------------

TEST(SimlintSL006, FloatAccumulatorFires) {
  ExpectOnly(LintSource("src/sim/foo.cc",
                        "double sum_ = 0;\n"
                        "void Add(double v) { sum_ += v; }\n"),
             "SL006", 2);
}

TEST(SimlintSL006, IntegerAccumulatorIsNotFlagged) {
  ExpectClean(LintSource("src/sim/foo.cc",
                         "int64_t count_ = 0;\n"
                         "void Add() { count_ += 1; }\n"));
}

TEST(SimlintSL006, PragmaSuppresses) {
  ExpectClean(
      LintSource("src/sim/foo.cc",
                 "double sum_ = 0;\n"
                 "// simlint: float-ok (fixed order one-shot setup)\n"
                 "void Add(double v) { sum_ += v; }\n"));
}

// --- SL007 thread primitives ----------------------------------------------

TEST(SimlintSL007, ThreadInSimCoreFires) {
  ExpectOnly(LintSource("src/sim/foo.cc",
                        "void F() {\n"
                        "  std::thread t([] {});\n"
                        "}\n"),
             "SL007", 2);
}

TEST(SimlintSL007, MutexAndAsyncFire) {
  const auto findings = LintSource("src/db/foo.cc",
                                   "std::mutex mu_;\n"
                                   "auto f = std::async([] {});\n");
  ASSERT_EQ(findings.size(), 2u) << simlint::FormatText(findings);
  EXPECT_EQ(findings[0].rule, "SL007");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].rule, "SL007");
  EXPECT_EQ(findings[1].line, 2);
}

TEST(SimlintSL007, FiresAcrossTheCoreDirs) {
  for (const char* path :
       {"src/storage/foo.cc", "src/net/foo.cc", "src/replica/foo.cc"}) {
    ExpectOnly(LintSource(path, "std::condition_variable cv_;\n"), "SL007",
               1);
  }
}

TEST(SimlintSL007, ParallelRunnerAndToolsAreExempt) {
  ExpectClean(LintSource("src/harness/parallel_runner.cc",
                         "std::vector<std::thread> pool;\n"));
  ExpectClean(LintSource("src/harness/parallel_runner.h",
                         "// spawns std::thread workers\n"
                         "int DefaultJobs();\n"));
  ExpectClean(LintSource("tools/foo/foo.cc", "std::mutex mu_;\n"));
  ExpectClean(LintSource("tests/foo.cc", "std::thread t([] {});\n"));
}

TEST(SimlintSL007, UnrelatedIdentifiersAreNotFlagged) {
  // A member named `thread` or prose in comments must not trip the rule;
  // only the std:: primitives themselves do.
  ExpectClean(LintSource("src/sim/foo.cc",
                         "int thread = 0;\n"
                         "// std::thread is banned here\n"
                         "const char* s = \"std::mutex in a string\";\n"));
}

TEST(SimlintSL007, PragmaSuppresses) {
  ExpectClean(
      LintSource("src/harness/foo.cc",
                 "// simlint: thread-ok (host-side progress reporter)\n"
                 "std::thread reporter_;\n"));
}

// --- Pragmas / stripping behaviour ----------------------------------------

TEST(SimlintStrip, WrongPragmaTagDoesNotSuppress) {
  // ordered-ok does not excuse a clock: suppression is per-rule.
  const auto findings =
      LintSource("src/sim/foo.cc",
                 "// simlint: ordered-ok (wrong tag)\n"
                 "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "SL001");
}

TEST(SimlintStrip, BannedTokensInsideStringsAndCommentsAreIgnored) {
  ExpectClean(LintSource(
      "src/sim/foo.cc",
      "/* steady_clock rand() getenv new delete */\n"
      "const char* doc = \"for (x : pending_) steady_clock\";\n"));
}

// --- Baseline -------------------------------------------------------------

TEST(SimlintBaseline, RoundTripsByteIdentically) {
  const auto findings = LintSource("src/db/foo.cc",
                                   "std::map<Node*, int> by_node_;\n"
                                   "void F() {\n"
                                   "  int* p = new int;\n"
                                   "  int* q = new int;\n"
                                   "}\n");
  ASSERT_EQ(findings.size(), 3u);
  const std::string text = simlint::SerializeBaseline(findings);

  std::vector<simlint::BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(simlint::ParseBaseline(text, &entries, &error)) << error;
  EXPECT_EQ(simlint::SerializeBaseline(entries), text);
}

TEST(SimlintBaseline, SuppressesExactlyTheBaselinedFindings) {
  const char* old_code =
      "void F() {\n"
      "  int* p = new int;\n"
      "}\n";
  const auto old_findings = LintSource("src/db/foo.cc", old_code);
  ASSERT_EQ(old_findings.size(), 1u);

  std::vector<simlint::BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(simlint::ParseBaseline(simlint::SerializeBaseline(old_findings),
                                     &entries, &error))
      << error;

  // Same file, the old finding moved down a line (baseline still matches via
  // the line-content CRC) and a brand-new one appeared.
  const char* new_code =
      "void F() {\n"
      "  // a new comment shifts everything down\n"
      "  int* p = new int;\n"
      "  delete p;\n"
      "}\n";
  const auto fresh = simlint::ApplyBaseline(
      LintSource("src/db/foo.cc", new_code), entries);
  ASSERT_EQ(fresh.size(), 1u) << simlint::FormatText(fresh);
  EXPECT_EQ(fresh[0].line, 4);  // only the new `delete p;` survives
}

TEST(SimlintBaseline, RejectsMalformedLines) {
  std::vector<simlint::BaselineEntry> entries;
  std::string error;
  EXPECT_FALSE(simlint::ParseBaseline("SL001 only-two-fields\n", &entries,
                                      &error));
  EXPECT_FALSE(error.empty());
}

// --- Output formats -------------------------------------------------------

TEST(SimlintOutput, JsonContainsEveryField) {
  const auto findings =
      LintSource("src/db/foo.cc", "void F() { int* p = new int; }\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = simlint::FormatJson(findings);
  EXPECT_NE(json.find("\"rule\":\"SL005\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"file\":\"src/db/foo.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total\":1"), std::string::npos);
}

TEST(SimlintOutput, GithubAnnotationsNameTheFile) {
  const auto findings =
      LintSource("src/sim/foo.cc", "std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string gh = simlint::FormatGithub(findings);
  EXPECT_NE(gh.find("::error file=src/sim/foo.cc,line=1"), std::string::npos)
      << gh;
}

// --- SL008 wire/persistent byte punning -----------------------------------

TEST(SimlintSL008, ReinterpretCastInWireDirFires) {
  ExpectOnly(LintSource("src/db/wal.cc",
                        "void F(uint64_t k, uint8_t* out) {\n"
                        "  auto* p = reinterpret_cast<const uint8_t*>(&k);\n"
                        "  out[0] = p[0];\n"
                        "}\n"),
             "SL008", 2);
}

TEST(SimlintSL008, MemcpyThroughObjectAddressFires) {
  ExpectOnly(LintSource("src/shard/decision_log.cc",
                        "void F(uint64_t v, uint8_t* out) {\n"
                        "  memcpy(out, &v, sizeof(v));\n"
                        "}\n"),
             "SL008", 2);
}

TEST(SimlintSL008, ByteSpanMemcpyIsFine) {
  // memcpy between byte buffers (no & in the arguments) is representation
  // free and allowed.
  ExpectClean(LintSource("src/db/btree.cc",
                         "void F(uint8_t* dst, const uint8_t* src) {\n"
                         "  memcpy(dst, src, 16);\n"
                         "}\n"));
}

TEST(SimlintSL008, SanctionedCodecFilesAreExempt) {
  const char* body =
      "void F(uint64_t v, uint8_t* out) {\n"
      "  memcpy(out, &v, sizeof(v));\n"
      "}\n";
  ExpectClean(LintSource("src/db/layout.h", body));
  ExpectClean(LintSource("src/shard/wire.cc", body));
  ExpectClean(LintSource("src/shard/wire.h", body));
}

TEST(SimlintSL008, OutsideWireDirsNotFlagged) {
  ExpectClean(LintSource("src/sim/crc32.cc",
                         "void F(uint64_t v, uint8_t* out) {\n"
                         "  memcpy(out, &v, sizeof(v));\n"
                         "}\n"));
}

TEST(SimlintSL008, WireOkPragmaSuppresses) {
  ExpectClean(LintSource(
      "src/db/layout2.cc",
      "void F(uint64_t v, uint8_t* out) {\n"
      "  // simlint: wire-ok (fixed-width scratch, never persisted)\n"
      "  memcpy(out, &v, sizeof(v));\n"
      "}\n"));
}

TEST(SimlintRules, TableListsAllEightRules) {
  ASSERT_EQ(simlint::Rules().size(), 8u);
  EXPECT_STREQ(simlint::Rules()[0].id, "SL001");
  EXPECT_STREQ(simlint::Rules()[6].id, "SL007");
  EXPECT_STREQ(simlint::Rules()[7].id, "SL008");
}

}  // namespace

// Cross-configuration durability campaign, parameterised over deployment
// mode × disk setup × fault type: the paper's guarantee must hold in every
// safe configuration, not just the headline one.
#include <gtest/gtest.h>

#include <memory>

#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/workload/kv_workload.h"
#include "tests/testlib/campaign_util.h"

namespace rlharness {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

enum class Fault { kPowerCut, kGuestCrash };

using CampaignParams = std::tuple<DeploymentMode, DiskSetup, int /*Fault*/>;

class DurabilityCampaignTest
    : public ::testing::TestWithParam<CampaignParams> {};

TEST_P(DurabilityCampaignTest, NoAckedCommitLost) {
  const DeploymentMode mode = std::get<0>(GetParam());
  const DiskSetup disks = std::get<1>(GetParam());
  const Fault fault = static_cast<Fault>(std::get<2>(GetParam()));
  if (fault == Fault::kGuestCrash && mode == DeploymentMode::kNative) {
    GTEST_SKIP() << "native deployment has no guest to crash";
  }

  Simulator sim(static_cast<uint64_t>(std::get<2>(GetParam())) * 31 +
                static_cast<uint64_t>(disks) * 7 +
                static_cast<uint64_t>(mode));
  Testbed bed(sim, rltest::CampaignOptions(mode, disks));

  rlwork::KvConfig kv_cfg;
  kv_cfg.key_space = 2000;
  kv_cfg.write_fraction = 0.6;
  rlwork::KvWorkload kv(sim, kv_cfg);
  rlfault::DurabilityChecker checker;
  int bad_rounds = 0;

  sim.Spawn([](Simulator& s, Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, Fault f,
               int& bad) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 300);
    rlsim::Rng rng(s.rng().Fork());
    for (int round = 0; round < 3; ++round) {
      auto stop = rltest::SpawnFleet(s, w, b.db(), round * 10, 4, &chk);
      co_await s.Sleep(Duration::Millis(rng.UniformInt(40, 250)));
      if (f == Fault::kPowerCut) {
        b.CutPower();
        *stop = true;
        co_await s.Sleep(Duration::Seconds(1));
        co_await b.RestorePowerAndRecover();
      } else {
        b.CrashGuest();
        *stop = true;
        co_await b.RecoverAfterGuestCrash();
      }
      const auto verdict = co_await chk.VerifyAfterRecovery(b.db());
      if (!verdict.ok()) {
        ++bad;
        ADD_FAILURE() << "round " << round << ": " << verdict.Summary();
      }
    }
  }(sim, bed, kv, checker, fault, bad_rounds));
  sim.Run();
  EXPECT_EQ(bad_rounds, 0);
  if (bed.rapilog() != nullptr) {
    EXPECT_FALSE(bed.rapilog()->lost_data());
  }
}

// kUnsafeAsync deliberately excluded: it is the configuration that MAY lose
// data (verified separately in the integration test and E8).
INSTANTIATE_TEST_SUITE_P(
    AllSafeConfigs, DurabilityCampaignTest,
    ::testing::Combine(::testing::Values(DeploymentMode::kNative,
                                         DeploymentMode::kVirt,
                                         DeploymentMode::kRapiLog),
                       ::testing::Values(DiskSetup::kSharedHdd,
                                         DiskSetup::kSeparateHdd,
                                         DiskSetup::kBbwc,
                                         DiskSetup::kSsdLog),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace rlharness

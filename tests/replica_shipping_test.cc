#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network_fabric.h"
#include "src/replica/log_shipper.h"
#include "src/replica/replica_node.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"
#include "src/storage/disk_image.h"
#include "src/storage/disk_model.h"

namespace rlrep {
namespace {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::BlockStatus;
using rlstor::kSectorSize;
using rlstor::SimBlockDevice;

constexpr uint64_t kSectors = 4096;
constexpr size_t kBlockSectors = 8;

// Primary-side log device + fabric + N replicas, assembled like the harness
// does but without the guest stack in the way.
struct Rig {
  Simulator sim;
  rlnet::NetworkFabric fabric;
  std::unique_ptr<SimBlockDevice> local;
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::unique_ptr<LogShipper> shipper;

  Rig(size_t replica_count, ShipMode mode, rlnet::LinkParams link,
      uint64_t seed = 42)
      : sim(seed), fabric(sim) {
    SimBlockDevice::Options opts;
    opts.geometry.sector_count = kSectors;
    opts.cache_policy = rlstor::WriteCachePolicy::kWriteBack;
    opts.name = "primary-log";
    local = std::make_unique<SimBlockDevice>(sim, opts,
                                             rlstor::MakeDefaultSsd());
    ReplicaOptions ropts;
    ropts.sector_count = kSectors;
    std::vector<std::string> names;
    for (size_t r = 0; r < replica_count; ++r) {
      names.push_back("replica-" + std::to_string(r));
      replicas.push_back(std::make_unique<ReplicaNode>(
          sim, fabric, names.back(), "primary", ropts));
    }
    ShipperOptions sopts;
    sopts.mode = mode;
    shipper = std::make_unique<LogShipper>(sim, fabric, "primary", names,
                                           *local, sopts);
    for (const std::string& name : names) {
      fabric.Connect("primary", name, link);
    }
  }
};

std::vector<uint8_t> PatternBlock(uint64_t tag) {
  std::vector<uint8_t> block(kBlockSectors * kSectorSize);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<uint8_t>(tag * 131 + i);
  }
  return block;
}

// Writes `count` pattern blocks back to back, then flushes.
Task<void> WriteBlocks(LogShipper& shipper, int count, bool* done) {
  for (int i = 0; i < count; ++i) {
    const std::vector<uint8_t> block = PatternBlock(i);
    const BlockStatus st = co_await shipper.Write(
        static_cast<uint64_t>(i) * kBlockSectors, block, /*fua=*/false);
    EXPECT_EQ(st, BlockStatus::kOk);
  }
  EXPECT_EQ(co_await shipper.Flush(), BlockStatus::kOk);
  *done = true;
}

// Sector-exact check of a replica's durable image against the pattern.
void ExpectReplicaHoldsBlocks(const ReplicaNode& replica, int count) {
  std::array<uint8_t, kSectorSize> sector;
  for (int i = 0; i < count; ++i) {
    const std::vector<uint8_t> block = PatternBlock(i);
    for (size_t s = 0; s < kBlockSectors; ++s) {
      const uint64_t lba = i * kBlockSectors + s;
      ASSERT_EQ(replica.disk().image().state(lba),
                rlstor::SectorState::kDurable)
          << "replica " << replica.name() << " lba " << lba;
      replica.disk().image().ReadDurable(lba, sector);
      EXPECT_TRUE(std::equal(sector.begin(), sector.end(),
                             block.begin() + s * kSectorSize))
          << "replica " << replica.name() << " lba " << lba;
    }
  }
}

TEST(LogShipperTest, AsyncReplicatesEverythingEventually) {
  Rig rig(2, ShipMode::kAsync, rlnet::LinkParams{});
  bool done = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 20, &done));
  rig.sim.Run();

  EXPECT_TRUE(done);
  EXPECT_EQ(rig.shipper->next_seq(), 20u);
  EXPECT_EQ(rig.shipper->quorum_cursor(), 20u);
  for (const auto& replica : rig.replicas) {
    EXPECT_EQ(replica->cursor(), 20u);
    ExpectReplicaHoldsBlocks(*replica, 20);
  }
}

TEST(LogShipperTest, AsyncNeverBlocksOnADeadLink) {
  // Both replicas unreachable: async commits must still complete at local
  // disk speed, with the lag visible through the cursors.
  Rig rig(2, ShipMode::kAsync, rlnet::LinkParams{});
  rig.fabric.SetLinkUp("primary", "replica-0", false);
  rig.fabric.SetLinkUp("primary", "replica-1", false);
  bool done = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 10, &done));
  rig.sim.RunFor(Duration::Seconds(1));

  EXPECT_TRUE(done);
  EXPECT_EQ(rig.shipper->next_seq(), 10u);
  EXPECT_EQ(rig.shipper->quorum_cursor(), 0u);
  EXPECT_EQ(rig.replicas[0]->cursor(), 0u);
}

TEST(LogShipperTest, QuorumFlushWaitsForMajority) {
  // 3 replicas, one partitioned: 2/3 is a majority, so commits proceed.
  Rig rig(3, ShipMode::kQuorumAck, rlnet::LinkParams{});
  rig.fabric.SetLinkUp("primary", "replica-2", false);
  bool done = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 10, &done));
  rig.sim.RunFor(Duration::Seconds(1));

  EXPECT_TRUE(done);
  EXPECT_GE(rig.shipper->quorum_cursor(), 10u);
  EXPECT_EQ(rig.replicas[0]->cursor(), 10u);
  EXPECT_EQ(rig.replicas[1]->cursor(), 10u);
  EXPECT_EQ(rig.replicas[2]->cursor(), 0u);
}

TEST(LogShipperTest, QuorumFlushBlocksWithoutMajorityUntilHeal) {
  // 2 of 3 replicas partitioned: no majority, Flush must stall; healing one
  // link restores the quorum and unblocks it.
  Rig rig(3, ShipMode::kQuorumAck, rlnet::LinkParams{});
  rig.fabric.SetLinkUp("primary", "replica-1", false);
  rig.fabric.SetLinkUp("primary", "replica-2", false);
  bool done = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 5, &done));
  rig.sim.RunFor(Duration::Seconds(1));
  EXPECT_FALSE(done);

  rig.fabric.SetLinkUp("primary", "replica-1", true);
  rig.sim.RunFor(Duration::Seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.replicas[1]->cursor(), 5u);
  ExpectReplicaHoldsBlocks(*rig.replicas[1], 5);
  // Catch-up went through the retransmission path.
  EXPECT_GT(rig.shipper->stats().retransmits.value(), 0);
}

TEST(LogShipperTest, LossyLinkIsHealedByRetransmission) {
  rlnet::LinkParams lossy;
  lossy.drop_probability = 0.25;
  Rig rig(2, ShipMode::kQuorumAck, lossy, /*seed=*/9);
  bool done = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 30, &done));
  rig.sim.Run();

  EXPECT_TRUE(done);
  EXPECT_GT(rig.shipper->stats().retransmits.value(), 0);
  for (const auto& replica : rig.replicas) {
    EXPECT_EQ(replica->cursor(), 30u);
    ExpectReplicaHoldsBlocks(*replica, 30);
  }
}

TEST(LogShipperTest, DuplicateShipsAreIdempotent) {
  // Retransmissions on a lossy link produce duplicates at the receiver; the
  // cursor discipline must absorb them without corrupting the image.
  rlnet::LinkParams lossy;
  lossy.drop_probability = 0.4;
  Rig rig(1, ShipMode::kQuorumAck, lossy, /*seed=*/21);
  bool done = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 25, &done));
  rig.sim.Run();

  EXPECT_TRUE(done);
  const ReplicaNode& replica = *rig.replicas[0];
  EXPECT_EQ(replica.cursor(), 25u);
  EXPECT_EQ(replica.stats().blocks_applied.value(), 25);
  EXPECT_GT(replica.stats().duplicates.value() + replica.stats().gaps.value(),
            0);
  ExpectReplicaHoldsBlocks(replica, 25);
}

TEST(LogShipperTest, RewritesOfTheSameLbaConvergeToNewest) {
  // WAL tail behaviour: the same block address is shipped repeatedly with
  // different contents; replicas must end up with the newest version.
  Rig rig(2, ShipMode::kQuorumAck, rlnet::LinkParams{});
  bool done = false;
  rig.sim.Spawn([](LogShipper& shipper, bool& d) -> Task<void> {
    for (int v = 0; v < 6; ++v) {
      const std::vector<uint8_t> block = PatternBlock(100 + v);
      EXPECT_EQ(co_await shipper.Write(0, block, /*fua=*/true),
                BlockStatus::kOk);
    }
    d = true;
  }(*rig.shipper, done));
  rig.sim.Run();

  EXPECT_TRUE(done);
  const std::vector<uint8_t> expected = PatternBlock(105);
  std::array<uint8_t, kSectorSize> sector;
  for (size_t s = 0; s < kBlockSectors; ++s) {
    rig.replicas[0]->disk().image().ReadDurable(s, sector);
    EXPECT_TRUE(std::equal(sector.begin(), sector.end(),
                           expected.begin() + s * kSectorSize));
  }
}

TEST(LogShipperTest, PowerCycleResetsLaggingReplicas) {
  // A replica partitioned across a primary power cycle cannot be caught up
  // by retransmission (the window died with the primary): it must be RESET
  // past the gap and then track new traffic again.
  Rig rig(2, ShipMode::kAsync, rlnet::LinkParams{});
  rig.fabric.SetLinkUp("primary", "replica-1", false);
  bool phase1 = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 8, &phase1));
  rig.sim.RunFor(Duration::Seconds(1));
  EXPECT_TRUE(phase1);
  EXPECT_EQ(rig.replicas[1]->cursor(), 0u);

  rig.shipper->PowerLoss();
  rig.sim.RunFor(Duration::Millis(100));
  rig.shipper->PowerRestore();
  rig.fabric.SetLinkUp("primary", "replica-1", true);
  rig.sim.RunFor(Duration::Seconds(5));

  // The lagging replica jumped the unrecoverable gap...
  EXPECT_EQ(rig.replicas[1]->cursor(), 8u);
  EXPECT_GT(rig.replicas[1]->stats().resets.value(), 0);

  // ...and applies fresh traffic shipped after the restore.
  bool phase2 = false;
  rig.sim.Spawn([](LogShipper& shipper, bool& d) -> Task<void> {
    const std::vector<uint8_t> block = PatternBlock(77);
    EXPECT_EQ(co_await shipper.Write(512, block, /*fua=*/false),
              BlockStatus::kOk);
    EXPECT_EQ(co_await shipper.Flush(), BlockStatus::kOk);
    d = true;
  }(*rig.shipper, phase2));
  rig.sim.Run();
  EXPECT_TRUE(phase2);
  EXPECT_EQ(rig.replicas[1]->cursor(), 9u);
}

TEST(LogShipperTest, AuditCursorFreezesAtPowerLoss) {
  Rig rig(2, ShipMode::kQuorumAck, rlnet::LinkParams{});
  bool done = false;
  rig.sim.Spawn(WriteBlocks(*rig.shipper, 12, &done));
  rig.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.shipper->audit_quorum_cursor(), 12u);

  rig.shipper->PowerLoss();
  EXPECT_EQ(rig.shipper->audit_quorum_cursor(), 12u);
  rig.shipper->PowerRestore();
  rig.sim.RunFor(Duration::Seconds(1));
  // Still frozen at the cut: the promise being audited is the one that was
  // outstanding when the machine died.
  EXPECT_EQ(rig.shipper->audit_quorum_cursor(), 12u);
  EXPECT_EQ(rig.shipper->shipped_blocks().size(), 12u);
}

TEST(LogShipperTest, WritesWhilePoweredOffFail) {
  Rig rig(1, ShipMode::kAsync, rlnet::LinkParams{});
  rig.shipper->PowerLoss();
  bool done = false;
  rig.sim.Spawn([](LogShipper& shipper, bool& d) -> Task<void> {
    const std::vector<uint8_t> block = PatternBlock(0);
    EXPECT_EQ(co_await shipper.Write(0, block, false),
              BlockStatus::kDeviceOff);
    EXPECT_EQ(co_await shipper.Flush(), BlockStatus::kDeviceOff);
    d = true;
  }(*rig.shipper, done));
  rig.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.shipper->next_seq(), 0u);
}

}  // namespace
}  // namespace rlrep

#include "src/storage/partition.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace rlstor {
namespace {

using rlsim::Simulator;
using rlsim::Task;

struct Fixture {
  Fixture()
      : disk(sim,
             SimBlockDevice::Options{.geometry = {.sector_count = 1000}},
             MakeDefaultSsd()),
        low(disk, 0, 100),
        high(disk, 100, 900) {}

  Simulator sim;
  SimBlockDevice disk;
  PartitionDevice low;
  PartitionDevice high;
};

std::vector<uint8_t> Buf(uint8_t fill) {
  return std::vector<uint8_t>(kSectorSize, fill);
}

TEST(PartitionTest, GeometryIsWindowed) {
  Fixture f;
  EXPECT_EQ(f.low.geometry().sector_count, 100u);
  EXPECT_EQ(f.high.geometry().sector_count, 900u);
}

TEST(PartitionTest, LbaTranslation) {
  Fixture f;
  f.sim.Spawn([](Fixture& fx) -> Task<void> {
    co_await fx.low.Write(5, Buf(0xAA), true);
    co_await fx.high.Write(5, Buf(0xBB), true);
  }(f));
  f.sim.Run();
  std::vector<uint8_t> got(kSectorSize);
  f.disk.image().Read(5, got);
  EXPECT_EQ(got, Buf(0xAA));
  f.disk.image().Read(105, got);
  EXPECT_EQ(got, Buf(0xBB));
}

TEST(PartitionTest, PartitionsDoNotOverlap) {
  Fixture f;
  f.sim.Spawn([](Fixture& fx) -> Task<void> {
    co_await fx.low.Write(99, Buf(1), true);
    co_await fx.high.Write(0, Buf(2), true);
    std::vector<uint8_t> a(kSectorSize);
    std::vector<uint8_t> b(kSectorSize);
    co_await fx.low.Read(99, a);
    co_await fx.high.Read(0, b);
    EXPECT_EQ(a, Buf(1));
    EXPECT_EQ(b, Buf(2));
  }(f));
  f.sim.Run();
}

TEST(PartitionTest, OutOfRangeRejectedAtPartitionBoundary) {
  Fixture f;
  BlockStatus w1 = BlockStatus::kOk;
  BlockStatus w2 = BlockStatus::kOk;
  f.sim.Spawn([](Fixture& fx, BlockStatus& a, BlockStatus& b) -> Task<void> {
    a = co_await fx.low.Write(100, Buf(1), true);  // one past the window
    std::vector<uint8_t> two(2 * kSectorSize, 1);
    b = co_await fx.low.Write(99, two, true);  // straddles the boundary
  }(f, w1, w2));
  f.sim.Run();
  EXPECT_EQ(w1, BlockStatus::kOutOfRange);
  EXPECT_EQ(w2, BlockStatus::kOutOfRange);
}

TEST(PartitionTest, ConstructionBeyondParentRejected) {
  Fixture f;
  EXPECT_THROW(PartitionDevice(f.disk, 900, 200), rlsim::CheckFailure);
}

TEST(PartitionTest, EmergencyModePropagatesToParent) {
  Fixture f;
  f.low.EnterEmergencyMode();
  EXPECT_TRUE(f.disk.emergency_mode());
  // Non-FUA traffic through the *other* partition is rejected too (one
  // spindle, one emergency).
  BlockStatus st = BlockStatus::kOk;
  f.sim.Spawn([](Fixture& fx, BlockStatus& out) -> Task<void> {
    out = co_await fx.high.Write(1, Buf(3), /*fua=*/false);
  }(f, st));
  f.sim.Run();
  EXPECT_EQ(st, BlockStatus::kDeviceOff);
}

TEST(PartitionTest, FlushReachesParent) {
  Fixture f;
  f.sim.Spawn([](Fixture& fx) -> Task<void> {
    co_await fx.low.Write(1, Buf(7), /*fua=*/false);
    co_await fx.low.Flush();
  }(f));
  f.sim.Run();
  EXPECT_TRUE(f.disk.image().IsDurable(1));
}

}  // namespace
}  // namespace rlstor

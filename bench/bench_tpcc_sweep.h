// Shared driver for E2/E3/E4: TPC-C throughput vs client count for one
// engine profile, across deployment modes, on a shared rotating disk.
//
// The sweep is a matrix of independent seeded runs, so the cells fan out
// across `jobs` worker threads (bench_common::RunTpccMany); results come
// back in cell order and the printed table is byte-identical at any job
// count.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/parallel_runner.h"

namespace rlbench {

inline void RunTpccClientSweep(const char* experiment,
                               const rldb::EngineProfile& profile,
                               int jobs = 1) {
  const std::vector<int> client_counts = {1, 2, 4, 8, 16, 32};
  const struct {
    const char* name;
    rlharness::DeploymentMode mode;
  } arms[] = {
      {"native", rlharness::DeploymentMode::kNative},
      {"virt", rlharness::DeploymentMode::kVirt},
      {"rapilog", rlharness::DeploymentMode::kRapiLog},
      {"unsafe", rlharness::DeploymentMode::kUnsafeAsync},
  };

  // Build the full (clients x arm) cell list up front, row-major, so the
  // fan-out covers the whole matrix and the reduction below just walks it
  // in order.
  std::vector<TpccRunConfig> cells;
  for (int clients : client_counts) {
    for (const auto& arm : arms) {
      TpccRunConfig cfg;
      cfg.testbed = DefaultTestbed(arm.mode,
                                   rlharness::DiskSetup::kSharedHdd, profile);
      cfg.tpcc = DefaultTpcc();
      cfg.clients = clients;
      cells.push_back(cfg);
    }
  }
  const std::vector<RunResult> results = RunTpccMany(cells, jobs);

  PrintHeader(std::string(experiment) + ": TPC-C-lite throughput (txns/s) " +
              "vs clients, profile=" + profile.name + ", shared HDD");
  Table table;
  table.Row({"clients", "native", "virt", "rapilog", "unsafe", "rapi/virt"});
  for (size_t row = 0; row < client_counts.size(); ++row) {
    const RunResult* r = &results[row * 4];
    table.Row({Fmt(client_counts[row], "%.0f"), Fmt(r[0].txns_per_sec, "%.0f"),
               Fmt(r[1].txns_per_sec, "%.0f"), Fmt(r[2].txns_per_sec, "%.0f"),
               Fmt(r[3].txns_per_sec, "%.0f"),
               Fmt(r[1].txns_per_sec > 0
                       ? r[2].txns_per_sec / r[1].txns_per_sec
                       : 0,
                   "%.2fx")});
  }
  table.Print();
  std::printf(
      "\nExpected shape: rapilog >= virt everywhere, approaching the unsafe "
      "upper bound;\nnative vs virt gap is the virtualisation overhead.\n");
}

// Shared argv handling for the sweep binaries: `--jobs N` (0 = all cores).
inline int SweepJobsFromArgs(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (jobs <= 0) {
        jobs = rlharness::DefaultJobs();
      }
    }
  }
  return jobs;
}

}  // namespace rlbench

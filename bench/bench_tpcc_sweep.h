// Shared driver for E2/E3/E4: TPC-C throughput vs client count for one
// engine profile, across deployment modes, on a shared rotating disk.
#pragma once

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace rlbench {

inline void RunTpccClientSweep(const char* experiment,
                               const rldb::EngineProfile& profile) {
  const std::vector<int> client_counts = {1, 2, 4, 8, 16, 32};
  const struct {
    const char* name;
    rlharness::DeploymentMode mode;
  } arms[] = {
      {"native", rlharness::DeploymentMode::kNative},
      {"virt", rlharness::DeploymentMode::kVirt},
      {"rapilog", rlharness::DeploymentMode::kRapiLog},
      {"unsafe", rlharness::DeploymentMode::kUnsafeAsync},
  };

  PrintHeader(std::string(experiment) + ": TPC-C-lite throughput (txns/s) " +
              "vs clients, profile=" + profile.name + ", shared HDD");
  PrintRow({"clients", "native", "virt", "rapilog", "unsafe", "rapi/virt"});

  for (int clients : client_counts) {
    std::vector<double> rates;
    for (const auto& arm : arms) {
      TpccRunConfig cfg;
      cfg.testbed = DefaultTestbed(arm.mode,
                                   rlharness::DiskSetup::kSharedHdd, profile);
      cfg.tpcc = DefaultTpcc();
      cfg.clients = clients;
      const RunResult result = RunTpcc(cfg);
      rates.push_back(result.txns_per_sec);
    }
    PrintRow({Fmt(clients, "%.0f"), Fmt(rates[0], "%.0f"),
              Fmt(rates[1], "%.0f"), Fmt(rates[2], "%.0f"),
              Fmt(rates[3], "%.0f"),
              Fmt(rates[1] > 0 ? rates[2] / rates[1] : 0, "%.2fx")});
  }
  std::printf(
      "\nExpected shape: rapilog >= virt everywhere, approaching the unsafe "
      "upper bound;\nnative vs virt gap is the virtualisation overhead.\n");
}

}  // namespace rlbench

#include "bench/bench_common.h"

#include <algorithm>
#include <fstream>

#include "src/harness/parallel_runner.h"

namespace rlbench {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

rlharness::TestbedOptions DefaultTestbed(rlharness::DeploymentMode mode,
                                         rlharness::DiskSetup disks,
                                         const rldb::EngineProfile& profile) {
  rlharness::TestbedOptions opt;
  opt.mode = mode;
  opt.disks = disks;
  opt.db.profile = profile;
  opt.db.pool_pages = 2048;
  opt.db.journal_pages = 1200;
  opt.db.profile.checkpoint_dirty_pages = 512;
  // A database server under OLTP load draws well below the PSU rating;
  // 120 W against a 400 W supply gives a ~53 ms hold-up window.
  opt.psu.system_load_watts = 120;
  return opt;
}

rlwork::TpccConfig DefaultTpcc() {
  rlwork::TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 8;
  cfg.customers_per_district = 50;
  cfg.items = 1000;
  cfg.think_time = rlsim::Duration::Micros(300);
  return cfg;
}

RunResult RunTpcc(const TpccRunConfig& config) {
  Simulator sim(config.seed);
  rlharness::Testbed bed(sim, config.testbed);
  rlwork::TpccLite tpcc(sim, config.tpcc);
  bool stop = false;
  RunResult result;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::TpccLite& w,
               const TpccRunConfig& cfg, RunResult& out,
               bool& stop_flag) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    for (int c = 0; c < cfg.clients; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
    }
    co_await s.Sleep(cfg.warmup);
    // Steady state: restart the measurement window.
    w.stats().committed.Reset();
    w.stats().new_orders.Reset();
    w.stats().lock_aborts.Reset();
    w.stats().txn_latency.Reset();
    const rlsim::TimePoint t0 = s.now();
    co_await s.Sleep(cfg.measure);
    const double seconds = (s.now() - t0).ToSecondsF();
    stop_flag = true;

    out.committed = w.stats().committed.value();
    out.lock_aborts = w.stats().lock_aborts.value();
    out.txns_per_sec = static_cast<double>(out.committed) / seconds;
    out.new_orders_per_sec =
        static_cast<double>(w.stats().new_orders.value()) / seconds;
    out.p50 = w.stats().txn_latency.PercentileDuration(50);
    out.p95 = w.stats().txn_latency.PercentileDuration(95);
    out.p99 = w.stats().txn_latency.PercentileDuration(99);
    out.mean = rlsim::Duration::Nanos(
        static_cast<int64_t>(w.stats().txn_latency.Mean()));
  }(sim, bed, tpcc, config, result, stop));

  sim.Run();
  return result;
}

std::vector<RunResult> RunTpccMany(const std::vector<TpccRunConfig>& configs,
                                   int jobs) {
  return rlharness::RunJobs<RunResult>(
      jobs, configs.size(), [&configs](size_t i) {
        return RunTpcc(configs[i]);
      });
}

void Table::Row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      // No padding after the last cell: keeps lines free of trailing blanks.
      if (c + 1 == row.size()) {
        std::printf("%s", row[c].c_str());
      } else {
        std::printf("%-*s", static_cast<int>(widths[c]) + 2, row[c].c_str());
      }
    }
    std::printf("\n");
  }
  rows_.clear();
}

void BenchJsonWriter::Add(const std::string& name, double value,
                          const std::string& unit) {
  metrics_.push_back(Metric{name, value, unit});
}

std::string BenchJsonWriter::ToString() const {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    if (i > 0) {
      out += ",";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", m.value);
    out += "{\"name\":\"" + m.name + "\",\"value\":" + buf + ",\"unit\":\"" +
           m.unit + "\"}";
  }
  out += "]}\n";
  return out;
}

bool BenchJsonWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << ToString();
  return true;
}

}  // namespace rlbench

#include "bench/bench_common.h"

#include <algorithm>
#include <fstream>
#include <optional>

#include "src/harness/parallel_runner.h"
#include "src/obs/metrics_snapshot.h"

namespace rlbench {

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

namespace {

// Registers the commit-path and workload stats a snapshot series should
// track. The registry does not own anything; every registrant is a member of
// `bed`/`tpcc`, which outlive the simulation.
void RegisterBenchStats(rlharness::Testbed& bed, rlwork::TpccLite& tpcc,
                        rlsim::StatsRegistry& registry) {
  registry.RegisterCounter("tpcc.committed", &tpcc.stats().committed);
  registry.RegisterCounter("tpcc.lock_aborts", &tpcc.stats().lock_aborts);
  registry.RegisterHistogram("tpcc.txn_latency", &tpcc.stats().txn_latency,
                             /*as_duration=*/true);
  const rldb::LogWriter::Stats& wal = bed.db().log_writer().stats();
  registry.RegisterCounter("wal.flush_cycles", &wal.flush_cycles);
  registry.RegisterCounter("wal.blocks_written", &wal.blocks_written);
  registry.RegisterHistogram("wal.commit_wait", &wal.commit_wait,
                             /*as_duration=*/true);
  if (bed.guest_log_dev() != nullptr) {
    registry.RegisterHistogram("vblk.log.request_latency",
                               &bed.guest_log_dev()->stats().request_latency,
                               /*as_duration=*/true);
  }
  if (bed.rapilog() != nullptr) {
    registry.RegisterHistogram("rapilog.ack_latency",
                               &bed.rapilog()->stats().ack_latency,
                               /*as_duration=*/true);
    registry.RegisterHistogram("rapilog.buffer_occupancy",
                               &bed.rapilog()->stats().buffer_occupancy);
  }
  registry.RegisterHistogram("logdisk.write_latency",
                             &bed.log_disk_physical().stats().write_latency,
                             /*as_duration=*/true);
  registry.RegisterHistogram("logdisk.flush_latency",
                             &bed.log_disk_physical().stats().flush_latency,
                             /*as_duration=*/true);
  bed.RegisterReplicationStats(registry);
}

// Restarts the per-stage histograms at the warmup boundary so StageStats
// covers the same steady-state window as the workload counters.
void ResetStageStats(rlharness::Testbed& bed) {
  bed.db().log_writer().stats().commit_wait.Reset();
  if (bed.guest_log_dev() != nullptr) {
    bed.guest_log_dev()->stats().request_latency.Reset();
  }
  if (bed.rapilog() != nullptr) {
    bed.rapilog()->stats().ack_latency.Reset();
  }
  bed.log_disk_physical().stats().write_latency.Reset();
  bed.log_disk_physical().stats().flush_latency.Reset();
}

void CollectStageStats(rlharness::Testbed& bed, StageStats& out) {
  out.guest_commit_wait = bed.db().log_writer().stats().commit_wait;
  if (bed.guest_log_dev() != nullptr) {
    out.vmm_request = bed.guest_log_dev()->stats().request_latency;
  }
  if (bed.rapilog() != nullptr) {
    out.buffer_ack = bed.rapilog()->stats().ack_latency;
  }
  out.medium_write = bed.log_disk_physical().stats().write_latency;
  out.device_flush = bed.log_disk_physical().stats().flush_latency;
}

}  // namespace

rlharness::TestbedOptions DefaultTestbed(rlharness::DeploymentMode mode,
                                         rlharness::DiskSetup disks,
                                         const rldb::EngineProfile& profile) {
  rlharness::TestbedOptions opt;
  opt.mode = mode;
  opt.disks = disks;
  opt.db.profile = profile;
  opt.db.pool_pages = 2048;
  opt.db.journal_pages = 1200;
  opt.db.profile.checkpoint_dirty_pages = 512;
  // A database server under OLTP load draws well below the PSU rating;
  // 120 W against a 400 W supply gives a ~53 ms hold-up window.
  opt.psu.system_load_watts = 120;
  return opt;
}

rlwork::TpccConfig DefaultTpcc() {
  rlwork::TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 8;
  cfg.customers_per_district = 50;
  cfg.items = 1000;
  cfg.think_time = rlsim::Duration::Micros(300);
  return cfg;
}

RunResult RunTpcc(const TpccRunConfig& config) {
  Simulator sim(config.seed);
  sim.set_tracer(config.sink);
  rlharness::Testbed bed(sim, config.testbed);
  rlwork::TpccLite tpcc(sim, config.tpcc);
  bool stop = false;
  RunResult result;
  rlsim::StatsRegistry registry;
  std::optional<rlobs::MetricsSnapshotter> snapshotter;
  if (config.snapshot_every > Duration::Zero()) {
    snapshotter.emplace(sim, registry, config.snapshot_every);
  }

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::TpccLite& w,
               const TpccRunConfig& cfg, RunResult& out, bool& stop_flag,
               rlsim::StatsRegistry& reg,
               rlobs::MetricsSnapshotter* snap) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    for (int c = 0; c < cfg.clients; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
    }
    co_await s.Sleep(cfg.warmup);
    // Steady state: restart the measurement window.
    w.stats().committed.Reset();
    w.stats().new_orders.Reset();
    w.stats().lock_aborts.Reset();
    w.stats().txn_latency.Reset();
    ResetStageStats(b);
    if (snap != nullptr) {
      RegisterBenchStats(b, w, reg);
      snap->Start(&stop_flag);
    }
    const rlsim::TimePoint t0 = s.now();
    co_await s.Sleep(cfg.measure);
    const double seconds = (s.now() - t0).ToSecondsF();
    stop_flag = true;

    out.committed = w.stats().committed.value();
    out.lock_aborts = w.stats().lock_aborts.value();
    out.txns_per_sec = static_cast<double>(out.committed) / seconds;
    out.new_orders_per_sec =
        static_cast<double>(w.stats().new_orders.value()) / seconds;
    out.p50 = w.stats().txn_latency.PercentileDuration(50);
    out.p95 = w.stats().txn_latency.PercentileDuration(95);
    out.p99 = w.stats().txn_latency.PercentileDuration(99);
    out.mean = rlsim::Duration::Nanos(
        static_cast<int64_t>(w.stats().txn_latency.Mean()));
    CollectStageStats(b, out.stages);
  }(sim, bed, tpcc, config, result, stop, registry,
    snapshotter ? &*snapshotter : nullptr));

  sim.Run();
  sim.set_tracer(nullptr);
  if (snapshotter) {
    result.snapshots_json = snapshotter->ToJson();
  }
  return result;
}

std::vector<RunResult> RunTpccMany(const std::vector<TpccRunConfig>& configs,
                                   int jobs) {
  return rlharness::RunJobs<RunResult>(
      jobs, configs.size(), [&configs](size_t i) {
        return RunTpcc(configs[i]);
      });
}

void Table::Row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      // No padding after the last cell: keeps lines free of trailing blanks.
      if (c + 1 == row.size()) {
        std::printf("%s", row[c].c_str());
      } else {
        std::printf("%-*s", static_cast<int>(widths[c]) + 2, row[c].c_str());
      }
    }
    std::printf("\n");
  }
  rows_.clear();
}

void BenchJsonWriter::Add(const std::string& name, double value,
                          const std::string& unit) {
  metrics_.push_back(Metric{name, value, unit});
}

void BenchJsonWriter::AddRaw(const std::string& name,
                             const std::string& json) {
  raw_.emplace_back(name, json);
}

std::string BenchJsonWriter::ToString() const {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    if (i > 0) {
      out += ",";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", m.value);
    out += "{\"name\":\"" + m.name + "\",\"value\":" + buf + ",\"unit\":\"" +
           m.unit + "\"}";
  }
  out += "]";
  for (const auto& [name, json] : raw_) {
    out += ",\"" + name + "\":" + json;
  }
  out += "}\n";
  return out;
}

bool BenchJsonWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << ToString();
  return true;
}

}  // namespace rlbench
